GO ?= go

.PHONY: ci fmt vet build test race bench chaos vuln

# ci is the full verification gate: formatting, static checks, build,
# the race-enabled test suite, the fault-injection suite, and a
# best-effort vulnerability scan.
ci: fmt vet build race chaos vuln

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# chaos runs the fault-injection and pathological-input suites under
# the race detector: panic containment, strict-mode aborts, input
# guards, and goroutine-leak checks.
chaos:
	$(GO) test -race -timeout 10m -run 'Chaos|Fault|Panic|Pathological|Lenient|Diagnostics|Guard|Limits|Binary|Oversize|DepthCap|LineBudget|EmptyCorpus' ./...

# vuln scans dependencies with govulncheck when it is installed; the
# scan is best-effort and never fails the build (the tool may be
# absent or need network access).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck reported issues (non-fatal)"; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
