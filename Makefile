GO ?= go

.PHONY: ci fmt vet build test race bench

# ci is the full verification gate: formatting, static checks, build,
# and the race-enabled test suite.
ci: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
