GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke chaos serve-smoke reload-smoke fleet-smoke dist-smoke learn-dist-smoke vuln

# ci is the full verification gate: formatting, static checks, build,
# the race-enabled test suite, the fault-injection suite, a smoke run
# of the benchmark harness, a smoke run of the HTTP service, the
# crash-recovery/hot-reload smoke, the fleet-scale sharded-check
# smoke, the worker-process shard backend smoke, the sharded
# map-reduce learning smoke, and a best-effort vulnerability scan.
ci: fmt vet build race chaos bench-smoke serve-smoke reload-smoke fleet-smoke dist-smoke learn-dist-smoke vuln

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# chaos runs the fault-injection and pathological-input suites under
# the race detector: panic containment, strict-mode aborts, input
# guards, and goroutine-leak checks.
chaos:
	$(GO) test -race -timeout 10m -run 'Chaos|Fault|Panic|Pathological|Lenient|Diagnostics|Guard|Limits|Binary|Oversize|DepthCap|LineBudget|EmptyCorpus|Poison|Warm|Artifact|Incremental|Corrupt|Concurrent|Registry|Singleflight|Eviction|Bundle|Reload|Rollback|Journal|Recover|Shard|Combiner|Fleet|Worker|Dist|Frame|Accumulator|Straggler' ./...

# serve-smoke boots the resident HTTP service under the race detector
# and drives it over real sockets: one-shot/served output identity, the
# 64-client singleflight compile gate, and the CLI serve command's
# full start-request-drain lifecycle.
serve-smoke:
	$(GO) test -race -timeout 5m -count=1 -run 'TestServeSmoke|TestServeConcurrentBurstCompilesOnce|TestServeCommand' ./internal/server ./cmd/concord

# reload-smoke is the crash-safety gate: a real daemon is SIGKILLed
# mid-learn and a successor over the same bundle directory must
# recover the last-known-good serving set and the interrupted job;
# plus the in-process hot-reload-under-load and restart-recovery
# suites, all under the race detector.
reload-smoke:
	$(GO) test -race -timeout 5m -count=1 -run 'TestReloadSmokeKillRecover|TestServeRestart|TestServeReloadUnderLoad|TestServeBundle' ./cmd/concord ./internal/server

# fleet-smoke is the fleet-scale sharded-check gate under the race
# detector: shard-count differential identity ({1,3,16} shards,
# byte-identical reports), warm-shard artifact replay, monotonic
# global progress, shard/config panic containment in both lenient and
# strict modes, the map-reduce unique combiner, the 10k-device
# generation-plan uniqueness suite, and the sharded server batch and
# CLI paths.
fleet-smoke:
	$(GO) test -race -timeout 10m -count=1 -run 'TestSharded|TestShardOptionsValidate|TestChaosShard|TestUniqueCombiner|TestFleet|TestServeShardedCheckBatch' ./internal/core ./internal/contracts ./internal/synth ./internal/server ./cmd/concord

# dist-smoke is the worker-process shard backend gate under the race
# detector: cross-backend differential identity (process vs. in-process
# at {1,3,16} shards × {1,4} workers), warm-cache replay across the
# process boundary, worker-crash chaos (SIGKILL mid-shard, retry then
# containment; corrupt result frames rejected by checksum and retried),
# straggler speculation, no-orphan/no-leak drain, the wire-frame fuzz
# corpus, and the server/CLI process-backend paths.
dist-smoke:
	$(GO) test -race -timeout 10m -count=1 -run 'TestDist|TestChaosDist|TestProcessBackend|TestWire|TestReadFrame|TestFrame|FuzzShardFrame|TestMakeShardsProperty|TestServeProcessBackendBatch|TestCheckShardBackendProcess' ./internal/core ./internal/shardrpc ./internal/artifact ./internal/server ./cmd/concord

# learn-dist-smoke is the fleet-scale sharded learning gate under the
# race detector: the in-process shard-count differential ({1,2,3,16}
# shards mining byte-identical learned sets), the process-backend learn
# grid ({1,3,16} shards x {1,4} workers), the accumulator merge-law
# property tests (associativity and shard-order insensitivity under
# randomized splits), the CCSL learn-frame wire round-trip and fuzz
# seeds, learn chaos (lost shards in lenient and strict modes, corrupt
# result frames, crash-retry, straggler speculation, per-config panic
# containment), global learn progress monotonicity, and the server's
# sharded learn-job validation and equivalence paths.
learn-dist-smoke:
	$(GO) test -race -timeout 10m -count=1 -run 'TestShardedLearn|TestChaosShardedLearn|TestDistLearn|TestChaosDistLearn|TestAccumulator|TestImportAccumulator|TestLearnWire|TestLearnResult|FuzzLearnFrame|TestServeLearnShardValidation|TestServeShardedLearn' ./internal/core ./internal/mining ./internal/shardrpc ./internal/server

# vuln scans dependencies with govulncheck when it is installed; the
# scan is best-effort and never fails the build (the tool may be
# absent or need network access).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck reported issues (non-fatal)"; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# bench reproduces the committed BENCH_PR10.json — the learn phase
# (fast lex/intern/mining path vs. the string-keyed baseline), the
# check phase (compiled engine vs. the pre-PR linear scan), the warm
# phase (incremental run over a populated artifact cache vs. the cold
# path), the serve phase (concurrent HTTP clients against the
# resident service, with compile-once, output-identity, and
# hot-reload-soak gates: 50 bundle swaps under load must drop zero
# requests and leave served output byte-identical), and the fleet
# phase (one check run over a 10k-device generated fleet, unsharded
# vs. sharded, with byte-identity and streaming-peak-heap gates; the
# ≥3x worker-scaling gate arms only on hosts with ≥8-way parallelism)
# and the dist phase (the same fleet tiers through the worker-process
# shard backend: identity grid, per-shard dispatch overhead, and the
# ≥2x multi-process scaling gate, likewise armed only on ≥8-way
# hosts) and the learn-fleet phase (one whole-fleet Learn run
# unsharded vs. sharded on both backends: a {1,3,16}-shard two-backend
# byte-identity grid, the streaming-peak-heap gate, and a ≥2x
# worker-scaling gate armed only on ≥8-way hosts) — and runs the Go
# micro-benchmarks. Both are pinned — fixed
# GOMAXPROCS, fixed iteration counts — so numbers are comparable
# across machines of the same class and across runs.
BENCH_GOMAXPROCS ?= 4

bench:
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -bench=. -benchtime=1x -count=1 -run=^$$ .
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) run ./cmd/concord bench -count 3 -out BENCH_PR10.json

# bench-smoke is the ci gate: a fast, tiny-scale run of the bench
# harness that still cross-checks output equality on every corpus in
# all seven phases — the mined contract set must be byte-identical
# between the fast and baseline learn paths, check violations
# identical between the compiled and linear engines, the warm
# (incremental, cache-replayed) run identical to both cold paths,
# the served responses identical to the one-shot engine with exactly
# one compile across the client burst, the sharded fleet runs
# byte-identical to unsharded with a lower streaming peak heap, the
# worker-process backend byte-identical across its whole identity
# grid, and every sharded learn byte-identical to the unsharded mine
# on both backends (the harness fails on any divergence).
bench-smoke:
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) run ./cmd/concord bench -scale 0.1 -fleet-scale 0.02 -count 1 -out $${TMPDIR:-/tmp}/concord_bench_smoke.json
