// Package score implements Concord's dynamic scoring for relational
// contracts (§3.5). Each relation instance is scored by how unlikely it
// is to arise coincidentally (instance-level informativeness), and
// scores are aggregated across distinct values so that contracts
// generalizing over diverse instances outrank those repeating a single
// coincidence (diversity-based aggregation).
package score

import (
	"math/big"
	"sort"

	"concord/internal/netdata"
)

// Value assigns an informativeness score in [0, 10] to a single data
// value. Higher scores mean the value is less likely to match another
// value by chance:
//
//   - the default prefix 0.0.0.0/0 (or ::/0) scores 0 because it contains
//     every address; more specific prefixes score proportionally to their
//     length;
//   - small integers (0-10) are ubiquitous in configurations and score
//     low, with a step function increasing toward large, rare values;
//   - addresses and MAC values are high-entropy and score high;
//   - booleans carry almost no information;
//   - strings score with length, capped.
func Value(v netdata.Value) float64 {
	switch t := v.(type) {
	case netdata.Prefix:
		if t.Len() == 0 {
			return 0
		}
		return 10 * float64(t.Len()) / float64(t.Bits())
	case netdata.Num:
		return numScore(t.Big())
	case netdata.Hex:
		if i, ok := t.Int64(); ok {
			return numScore(big.NewInt(i))
		}
		return 8
	case netdata.Bool:
		return 0.5
	case netdata.IP:
		return 8
	case netdata.MAC:
		return 9
	case netdata.Str:
		// Digit-only strings (str() of numbers, decimal suffixes) carry
		// the same information as the number they spell; scoring them by
		// length would inflate ubiquitous small values like "10".
		if n, ok := new(big.Int).SetString(string(t), 10); ok && len(t) > 0 {
			return numScore(n)
		}
		n := len(t)
		switch {
		case n == 0:
			return 0
		case n == 1:
			return 1
		case n <= 3:
			return 3
		case n <= 8:
			return 6
		default:
			return 8
		}
	default:
		return 1
	}
}

// numScore is the paper's step function: distance from zero is a proxy
// for rarity (3852 is less likely to co-occur randomly than 1).
func numScore(i *big.Int) float64 {
	abs := new(big.Int).Abs(i)
	switch {
	case abs.Cmp(big.NewInt(10)) <= 0:
		return 0.5
	case abs.Cmp(big.NewInt(100)) <= 0:
		return 2
	case abs.Cmp(big.NewInt(1000)) <= 0:
		return 4
	case abs.Cmp(big.NewInt(100000)) <= 0:
		return 6
	default:
		return 8
	}
}

// Aggregator accumulates the diversity-weighted score of one candidate
// contract: every *distinct* left-hand-side value contributes its
// informativeness once, so a rule holding for {5, 6, 9, 11} accumulates
// four contributions while one repeating 5 accumulates a single one.
// Totals are summed in sorted key order so results are deterministic
// regardless of insertion order.
type Aggregator struct {
	scores map[string]float64
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{scores: make(map[string]float64)}
}

// Add records one relation instance whose left-hand side value is v.
// Duplicate values (by canonical key) are ignored.
func (a *Aggregator) Add(v netdata.Value) {
	a.AddInstance(v.Key(), Value(v))
}

// AddInstance records one relation instance by explicit key and score,
// for callers that score an instance as a function of both operands
// (e.g. min of the two informativeness scores). Duplicate keys keep the
// larger score — the same normalization Merge applies — so a total is a
// pure function of the instance multiset, independent of the order
// configurations are folded or how they are split across shards.
func (a *Aggregator) AddInstance(key string, s float64) {
	if cur, ok := a.scores[key]; ok && cur >= s {
		return
	}
	a.scores[key] = s
}

// Total returns the cumulative diversity-weighted score.
func (a *Aggregator) Total() float64 {
	keys := make([]string, 0, len(a.scores))
	for k := range a.scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += a.scores[k]
	}
	return total
}

// Distinct returns the number of distinct values scored.
func (a *Aggregator) Distinct() int { return len(a.scores) }

// Entry is one (value key, score) contribution of an aggregator.
type Entry struct {
	Key   string
	Score float64
}

// Entries returns the aggregator's contributions sorted by key: the
// canonical serialized form, deterministic regardless of insertion
// order. An aggregator rebuilt by AddInstance over the entries is
// equivalent to the original.
func (a *Aggregator) Entries() []Entry {
	out := make([]Entry, 0, len(a.scores))
	for k, s := range a.scores {
		out = append(out, Entry{Key: k, Score: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Merge folds another aggregator's instances into a. Keys present in
// both keep the larger score so merging is commutative.
func (a *Aggregator) Merge(b *Aggregator) {
	for k, s := range b.scores {
		if cur, ok := a.scores[k]; !ok || s > cur {
			a.scores[k] = s
		}
	}
}
