package score

import (
	"testing"

	"concord/internal/netdata"
)

func TestDefaultPrefixScoresZero(t *testing.T) {
	p, _ := netdata.ParsePrefix4("0.0.0.0/0")
	if Value(p) != 0 {
		t.Errorf("score(0.0.0.0/0) = %v, want 0", Value(p))
	}
	p6, _ := netdata.ParsePrefix6("::/0")
	if Value(p6) != 0 {
		t.Errorf("score(::/0) = %v, want 0", Value(p6))
	}
}

func TestSpecificPrefixScoresHigher(t *testing.T) {
	p8, _ := netdata.ParsePrefix4("10.0.0.0/8")
	p24, _ := netdata.ParsePrefix4("10.1.2.0/24")
	p32, _ := netdata.ParsePrefix4("10.1.2.3/32")
	if !(Value(p8) < Value(p24) && Value(p24) < Value(p32)) {
		t.Errorf("prefix scores not monotone: /8=%v /24=%v /32=%v",
			Value(p8), Value(p24), Value(p32))
	}
	if Value(p32) != 10 {
		t.Errorf("score(/32) = %v, want 10", Value(p32))
	}
}

func TestNumStepFunction(t *testing.T) {
	small := Value(netdata.NewNum(1))
	medium := Value(netdata.NewNum(64))
	port := Value(netdata.NewNum(3394))
	huge := Value(netdata.NewNum(3000000))
	if !(small < medium && medium < port && port < huge) {
		t.Errorf("num scores not monotone: %v %v %v %v", small, medium, port, huge)
	}
}

func TestHighEntropyValues(t *testing.T) {
	ip, _ := netdata.ParseIP4("10.14.14.34")
	mac, _ := netdata.ParseMAC("00:00:0c:d3:00:6e")
	if Value(ip) < 5 || Value(mac) < 5 {
		t.Error("addresses should score high")
	}
	if Value(netdata.Bool(true)) > 1 {
		t.Error("booleans should score near zero")
	}
}

func TestStrScores(t *testing.T) {
	if Value(netdata.Str("")) != 0 {
		t.Error("empty string should score 0")
	}
	if !(Value(netdata.Str("ab")) < Value(netdata.Str("et-0/0/1-long"))) {
		t.Error("longer strings should score higher")
	}
}

func TestAggregatorDiversity(t *testing.T) {
	a := NewAggregator()
	v := netdata.NewNum(3394)
	a.Add(v)
	a.Add(v)
	a.Add(v)
	if a.Distinct() != 1 {
		t.Errorf("Distinct = %d, want 1", a.Distinct())
	}
	single := a.Total()

	b := NewAggregator()
	b.Add(netdata.NewNum(3394))
	b.Add(netdata.NewNum(2817))
	b.Add(netdata.NewNum(9451))
	if b.Total() <= single {
		t.Errorf("diverse rule (%v) should outscore repeated rule (%v)", b.Total(), single)
	}
	if b.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", b.Distinct())
	}
}

func TestAggregatorSpuriousExample(t *testing.T) {
	// The paper's example: a contract whose only evidence is the default
	// prefix should accumulate no score at all.
	a := NewAggregator()
	p, _ := netdata.ParsePrefix4("0.0.0.0/0")
	a.Add(p)
	if a.Total() != 0 {
		t.Errorf("Total = %v, want 0", a.Total())
	}
}

func TestHexAndDigitStringScores(t *testing.T) {
	h, _ := netdata.ParseHex("0x2f")
	if Value(h) <= 0 {
		t.Error("hex literal should score positively")
	}
	// Digit-only strings score like the number they spell.
	if Value(netdata.Str("10")) != Value(netdata.NewNum(10)) {
		t.Error("digit string and number should score equally")
	}
	if Value(netdata.Str("10251")) != Value(netdata.NewNum(10251)) {
		t.Error("digit string and number should score equally")
	}
	// Hex-looking strings with letters keep string scoring.
	if Value(netdata.Str("6e")) == Value(netdata.NewNum(6)) {
		t.Error("non-decimal string should not use numeric scoring")
	}
}

func TestAggregatorMerge(t *testing.T) {
	a := NewAggregator()
	a.AddInstance("x", 5)
	a.AddInstance("y", 3)
	b := NewAggregator()
	b.AddInstance("y", 7) // higher score for the same key wins
	b.AddInstance("z", 2)
	a.Merge(b)
	if a.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", a.Distinct())
	}
	if got := a.Total(); got != 5+7+2 {
		t.Errorf("Total = %v, want 14", got)
	}
	// Merge is commutative on totals.
	c := NewAggregator()
	c.AddInstance("y", 7)
	c.AddInstance("z", 2)
	d := NewAggregator()
	d.AddInstance("x", 5)
	d.AddInstance("y", 3)
	c.Merge(d)
	if c.Total() != a.Total() {
		t.Errorf("merge not commutative: %v vs %v", c.Total(), a.Total())
	}
}
