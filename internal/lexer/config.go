package lexer

import "concord/internal/intern"

// Line is one processed configuration line: the original source text,
// its context-embedded form, and the extracted typed pattern and
// parameters. Pattern identity (the Pattern field) includes the
// embedded context, so identical leaf commands under different parents
// are distinct patterns, per §3.1 of the paper.
type Line struct {
	// File names the source configuration (or metadata) file.
	File string
	// Num is the 1-based line number in the original file.
	Num int
	// Raw is the original source line with surrounding whitespace
	// trimmed.
	Raw string
	// Text is the context-embedded line that was lexed, e.g.
	// "/interface Loopback[num]/ip address 10.14.14.34". Context
	// segments use untyped placeholders; the leaf retains original text.
	Text string
	// Pattern is the canonical pattern key: embedded context plus the
	// untyped leaf pattern. Lines with equal Pattern match the same
	// contract patterns.
	Pattern string
	// PatternID is Pattern's dense ID in the run's intern table (see
	// Config.Interns); 0 means "not interned" (hand-constructed lines),
	// in which case consumers fall back to keying on the string.
	PatternID int32
	// Display is the context plus the named leaf pattern, e.g.
	// ".../rd [a:ip4]:[b:num]", used when rendering contracts.
	Display string
	// Params holds the leaf's extracted parameters in order. Context
	// segments never bind parameters (paper §3.2).
	Params []Param
	// Meta marks lines appended from external metadata files (§3.7).
	// Ordering contracts never span a meta boundary.
	Meta bool
}

// Config is one processed configuration: a device's worth of lines plus
// any appended metadata lines.
type Config struct {
	// Name identifies the configuration (usually the file name).
	Name string
	// Lines lists the processed lines in file order; metadata lines, if
	// any, follow the configuration's own lines.
	Lines []Line
	// SourceLines counts the non-blank lines of the original
	// configuration file (excluding metadata), the denominator for
	// coverage.
	SourceLines int
	// Skipped marks a configuration the input guards rejected entirely
	// (oversized or binary content); such configs carry no lines and are
	// dropped from the corpus with a diagnostic.
	Skipped bool
	// Interns is the run's string intern table that assigned the
	// PatternID values on this config's lines. All configs of one
	// processed corpus share one table; it travels with the configs so
	// the miner and the check compiler can translate between IDs and
	// pattern strings. Nil for hand-constructed configs.
	Interns *intern.Table
}

// ParamIndex returns the index of the parameter with the given name, or
// -1 if absent.
func (l *Line) ParamIndex(name string) int {
	for i := range l.Params {
		if l.Params[i].Name == name {
			return i
		}
	}
	return -1
}
