package lexer

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestLexCachedMatchesLexAndCountsStats(t *testing.T) {
	lx := MustNew()
	c := NewCache(1 << 10)
	lines := []string{
		"ip address 10.0.0.1 255.255.255.0",
		"interface eth0",
		"ip address 10.0.0.1 255.255.255.0", // repeat -> hit
		"",
	}
	want := map[string]Lexed{}
	for _, ln := range lines {
		want[ln] = lx.Lex(ln)
	}
	for _, ln := range lines {
		if got := lx.LexCached(c, ln); !reflect.DeepEqual(got, want[ln]) {
			t.Fatalf("LexCached(%q) = %+v, want %+v", ln, got, want[ln])
		}
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("Stats() = (%d hits, %d misses), want (1, 3)", hits, misses)
	}
}

func TestLexCachedNilCache(t *testing.T) {
	lx := MustNew()
	line := "rd 10.0.0.1:65001"
	if got, want := lx.LexCached(nil, line), lx.Lex(line); !reflect.DeepEqual(got, want) {
		t.Fatalf("LexCached(nil) = %+v, want %+v", got, want)
	}
}

func TestCacheCapacitySaturation(t *testing.T) {
	lx := MustNew()
	// Tiny cache: capacity rounds to at least one entry per shard, so
	// flooding it far past capacity must keep lexing correct (extra
	// entries are simply not inserted) and never grow without bound.
	c := NewCache(cacheShards)
	for i := 0; i < 10*cacheShards; i++ {
		ln := fmt.Sprintf("vlan %d name seg-%d", i, i)
		if got, want := lx.LexCached(c, ln), lx.Lex(ln); !reflect.DeepEqual(got, want) {
			t.Fatalf("LexCached(%q) diverged after saturation", ln)
		}
	}
	total := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		total += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	if total > cacheShards {
		t.Fatalf("cache holds %d entries, capacity %d", total, cacheShards)
	}
}

func TestCacheConcurrentAgreement(t *testing.T) {
	lx := MustNew()
	c := NewCache(0) // 0 -> default size
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = fmt.Sprintf("neighbor 10.0.%d.%d remote-as %d", i/8, i%8, 65000+i)
	}
	want := make([]Lexed, len(lines))
	for i, ln := range lines {
		want[i] = lx.Lex(ln)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, ln := range lines {
					if got := lx.LexCached(c, ln); !reflect.DeepEqual(got, want[i]) {
						select {
						case errs <- fmt.Sprintf("LexCached(%q) = %+v, want %+v", ln, got, want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	hits, misses := c.Stats()
	if hits+misses != 8*50*64 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*50*64)
	}
}
