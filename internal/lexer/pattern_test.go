package lexer

import (
	"testing"
)

func TestTypeAgnostic(t *testing.T) {
	cases := map[string]string{
		"ip address [ip4]":                   "ip address [?]",
		"ip address [ip6]":                   "ip address [?]",
		"/interface Loopback[num]/mtu [num]": "/interface Loopback[?]/mtu [?]",
		"no placeholders":                    "no placeholders",
		"rd [ip4]:[num]":                     "rd [?]:[?]",
		"user [iface] and [descr]":           "user [?] and [?]",
	}
	for in, want := range cases {
		if got := TypeAgnostic(in); got != want {
			t.Errorf("TypeAgnostic(%q) = %q, want %q", in, got, want)
		}
	}
	// ip4 and ip6 versions of the same command collapse together.
	if TypeAgnostic("ip address [ip4]") != TypeAgnostic("ip address [ip6]") {
		t.Error("type variants should share the agnostic form")
	}
}

func TestPlaceholderTypes(t *testing.T) {
	got := PlaceholderTypes("rd [ip4]:[num] via [mac]")
	want := []string{"ip4", "num", "mac"}
	if len(got) != len(want) {
		t.Fatalf("PlaceholderTypes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PlaceholderTypes[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(PlaceholderTypes("plain text")) != 0 {
		t.Error("plain text has no placeholders")
	}
}
