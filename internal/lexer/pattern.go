package lexer

import (
	"regexp"
	"strings"
)

// VarName returns the i-th parameter variable name used in displayed
// patterns: a..z, then v26, v27, ...
func VarName(i int) string { return varName(i) }

var placeholderRE = regexp.MustCompile(`\[[A-Za-z][A-Za-z0-9]*\]`)

// TypeAgnostic rewrites an untyped pattern so that every typed
// placeholder becomes the wildcard [?]. It is the representation used by
// type contracts (§3.4): both "ip address [ip4]" and "ip address [ip6]"
// map to "ip address [?]".
func TypeAgnostic(untyped string) string {
	return placeholderRE.ReplaceAllString(untyped, "[?]")
}

// PlaceholderTypes returns the type names of the placeholders in an
// untyped pattern, in order.
func PlaceholderTypes(untyped string) []string {
	matches := placeholderRE.FindAllString(untyped, -1)
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = strings.TrimSuffix(strings.TrimPrefix(m, "["), "]")
	}
	return out
}
