package lexer

import (
	"sync"
	"sync/atomic"
)

// DefaultCacheEntries is the default capacity of a memoization Cache.
// Network corpora repeat lines heavily (the same commands recur across
// thousands of devices), so a quarter-million distinct lines covers
// even large corpora; a Lexed entry is small (two strings aliasing
// pattern text plus a short Param slice).
const DefaultCacheEntries = 1 << 18

// cacheShards is the shard count of the cache; a power of two so shard
// selection is a mask. Sharding keeps the read-mostly fast path free of
// contention when the format layer lexes files from parallel workers.
const cacheShards = 64

// Cache memoizes Lex results keyed on raw line text, so each distinct
// line in a corpus is lexed once instead of once per occurrence. It is
// safe for concurrent use.
//
// A Cache's entries are only valid for the Lexer that produced them:
// create one cache per (lexer, run) pair and never share it across
// lexers with different token specs. The engine creates a fresh cache
// per processed corpus (per-run lifetime, like the intern table).
//
// When the cache is full it stops inserting rather than evicting; Lex
// is a pure function of the line, so a saturated cache only costs
// misses, never wrong results.
type Cache struct {
	shards      [cacheShards]cacheShard
	perShardCap int
	hits        atomic.Int64
	misses      atomic.Int64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]Lexed
}

// NewCache returns a cache holding up to maxEntries distinct lines;
// maxEntries <= 0 selects DefaultCacheEntries.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	c := &Cache{perShardCap: (maxEntries + cacheShards - 1) / cacheShards}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Lexed)
	}
	return c
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// cacheHash is a 64-bit FNV-1a over the line text.
func cacheHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// LexCached is Lex through the memoization cache. A nil cache degrades
// to plain Lex. Cached results share their Params slice across callers;
// treat returned Params as immutable (the pipeline only reads them).
func (lx *Lexer) LexCached(c *Cache, line string) Lexed {
	if c == nil {
		return lx.Lex(line)
	}
	sh := &c.shards[cacheHash(line)&(cacheShards-1)]
	sh.mu.RLock()
	res, ok := sh.m[line]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return res
	}
	c.misses.Add(1)
	res = lx.Lex(line)
	sh.mu.Lock()
	if len(sh.m) < c.perShardCap {
		// Key on a clone: line usually aliases a whole file's contents,
		// and caching the substring would pin the file in memory.
		sh.m[cloneString(line)] = res
	}
	sh.mu.Unlock()
	return res
}

// cloneString returns a copy of s that shares no backing storage.
func cloneString(s string) string {
	return string(append([]byte(nil), s...))
}
