// Package lexer implements Concord's pattern and value extraction
// (§3.2). It separates each configuration line into a typed pattern — the
// line text with data values replaced by typed placeholders such as
// [num] or [ip4] — and an ordered parameter map binding fresh variable
// names (a, b, c, ...) to parsed values.
//
// Built-in token types cover the network data types from Table 1 of the
// paper (numbers, hex literals, booleans, MAC addresses, IPv4/IPv6
// addresses and prefixes). Users extend the lexer with custom regular
// expressions for domain objects such as interface names; user tokens
// take precedence over built-ins.
package lexer

import (
	"fmt"
	"regexp"
	"sort"

	"concord/internal/netdata"
)

// TokenSpec describes one token type: a name used in pattern
// placeholders, a regular expression locating candidate spans, and an
// optional parser that validates the span and produces a typed value.
// Parse failures make the lexer fall through to the next token type at
// the same position, so loose regexes are safe.
type TokenSpec struct {
	// Name appears in placeholders, e.g. "iface" renders as [iface].
	Name string
	// Pattern is an RE2 regular expression matching candidate spans.
	Pattern string
	// Parse validates a candidate span and converts it to a value. If
	// nil, every span is accepted as a netdata.Str.
	Parse func(string) (netdata.Value, error)
	// NoDigitBefore rejects spans immediately preceded by an ASCII
	// digit, preventing numeric tokens from starting mid-number.
	NoDigitBefore bool
	// WordBoundary rejects spans whose neighboring characters are
	// letters, digits, or underscores (used for keyword-like tokens such
	// as booleans).
	WordBoundary bool
}

type compiledSpec struct {
	TokenSpec
	re *regexp.Regexp
}

// Lexer extracts typed patterns and parameter values from configuration
// lines. It is safe for concurrent use after construction.
type Lexer struct {
	specs []compiledSpec
}

// Builtin returns the built-in token specifications, ordered by matching
// precedence (most specific first). The set mirrors Table 1 of the
// paper; the hex token requires a 0x prefix so that leading-zero decimal
// numbers are not misclassified.
func Builtin() []TokenSpec {
	return []TokenSpec{
		{
			Name:    "pfx6",
			Pattern: `[0-9a-fA-F]{0,4}(?::[0-9a-fA-F]{0,4}){1,8}(?:\.[0-9]{1,3}){0,3}/[0-9]{1,3}`,
			Parse:   func(s string) (netdata.Value, error) { return netdata.ParsePrefix6(s) },
		},
		{
			Name:    "ip6",
			Pattern: `[0-9a-fA-F]{0,4}(?::[0-9a-fA-F]{0,4}){1,8}(?:\.[0-9]{1,3}){0,3}`,
			Parse:   func(s string) (netdata.Value, error) { return netdata.ParseIP6(s) },
		},
		{
			Name:    "mac",
			Pattern: `[0-9a-fA-F]{1,2}(?::[0-9a-fA-F]{1,2}){5}`,
			Parse:   func(s string) (netdata.Value, error) { return netdata.ParseMAC(s) },
		},
		{
			Name:          "pfx4",
			Pattern:       `[0-9]{1,3}(?:\.[0-9]{1,3}){3}/[0-9]{1,2}`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParsePrefix4(s) },
			NoDigitBefore: true,
		},
		{
			Name:          "ip4",
			Pattern:       `[0-9]{1,3}(?:\.[0-9]{1,3}){3}`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParseIP4(s) },
			NoDigitBefore: true,
		},
		{
			Name:          "hex",
			Pattern:       `0[xX][0-9a-fA-F]+`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParseHex(s) },
			NoDigitBefore: true,
		},
		{
			Name:         "bool",
			Pattern:      `true|false`,
			Parse:        func(s string) (netdata.Value, error) { return netdata.ParseBool(s) },
			WordBoundary: true,
		},
		{
			Name:          "num",
			Pattern:       `[0-9]+`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParseNum(s) },
			NoDigitBefore: true,
		},
	}
}

// New compiles a lexer with the given user token specifications, which
// take precedence over the built-ins.
func New(user ...TokenSpec) (*Lexer, error) {
	lx := &Lexer{}
	for _, spec := range append(append([]TokenSpec{}, user...), Builtin()...) {
		if spec.Name == "" {
			return nil, fmt.Errorf("lexer: token spec with empty name")
		}
		re, err := regexp.Compile(spec.Pattern)
		if err != nil {
			return nil, fmt.Errorf("lexer: token %s: %w", spec.Name, err)
		}
		lx.specs = append(lx.specs, compiledSpec{TokenSpec: spec, re: re})
	}
	return lx, nil
}

// MustNew is New for known-good specs; it panics on error.
func MustNew(user ...TokenSpec) *Lexer {
	lx, err := New(user...)
	if err != nil {
		panic(err)
	}
	return lx
}

// Param is one extracted parameter of a lexed line.
type Param struct {
	// Name is the fresh variable ("a", "b", ...) in extraction order.
	Name string
	// Type is the token type name (e.g. "num", "ip4", "iface").
	Type string
	// Value is the parsed typed value.
	Value netdata.Value
}

// Lexed is the result of lexing one line of text.
type Lexed struct {
	// Untyped is the canonical pattern with anonymous placeholders,
	// e.g. "rd [ip4]:[num]". Two lines with equal Untyped (and equal
	// context) share a pattern.
	Untyped string
	// Display carries parameter names, e.g. "rd [a:ip4]:[b:num]".
	Display string
	// Params lists the extracted parameters in order of appearance.
	Params []Param
}

type span struct {
	start, end int
	spec       int
	value      netdata.Value
}

// varName returns the i-th fresh variable name: a..z then v26, v27, ...
func varName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("v%d", i)
}

// MaxParamsPerLine bounds the parameters extracted from a single line.
// Real configuration commands carry a handful of values; the cap keeps
// adversarial inputs (megabyte single-line files) from exploding the
// relational candidate space downstream.
const MaxParamsPerLine = 64

// MaxLexLine is the lexer's own backstop on line length: Lex silently
// truncates longer inputs before matching. The format layer truncates
// at its configurable (much smaller) limit first and records a
// diagnostic; this constant only protects direct Lex callers from
// pathological single-line inputs.
const MaxLexLine = 1 << 20

// Lex extracts the typed pattern and parameters from a single line of
// text. Matching is greedy left to right; at each position the
// highest-precedence token whose span parses successfully wins.
func (lx *Lexer) Lex(line string) Lexed {
	if len(line) > MaxLexLine {
		line = line[:MaxLexLine]
	}
	// Collect candidate spans from every spec, then resolve overlaps by
	// position and precedence.
	var candidates []span
	for si := range lx.specs {
		spec := &lx.specs[si]
		for _, loc := range spec.re.FindAllStringIndex(line, -1) {
			start, end := loc[0], loc[1]
			if start == end {
				continue
			}
			if spec.NoDigitBefore && start > 0 && isDigit(line[start-1]) {
				continue
			}
			if spec.WordBoundary {
				if start > 0 && isWordByte(line[start-1]) {
					continue
				}
				if end < len(line) && isWordByte(line[end]) {
					continue
				}
			}
			var v netdata.Value
			if spec.Parse != nil {
				parsed, err := spec.Parse(line[start:end])
				if err != nil {
					continue
				}
				v = parsed
			} else {
				v = netdata.Str(line[start:end])
			}
			candidates = append(candidates, span{start: start, end: end, spec: si, value: v})
		}
	}
	// Stable resolution: earlier start first; at equal start, higher
	// precedence (lower spec index) first; ties broken by longer span.
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.spec != b.spec {
			return a.spec < b.spec
		}
		return a.end > b.end
	})

	var chosen []span
	pos := 0
	for _, c := range candidates {
		if c.start < pos {
			continue
		}
		if len(chosen) >= MaxParamsPerLine {
			break
		}
		chosen = append(chosen, c)
		pos = c.end
	}

	var untyped, display []byte
	params := make([]Param, 0, len(chosen))
	prev := 0
	for _, c := range chosen {
		name := varName(len(params))
		typ := lx.specs[c.spec].Name
		untyped = append(untyped, line[prev:c.start]...)
		display = append(display, line[prev:c.start]...)
		untyped = append(untyped, '[')
		untyped = append(untyped, typ...)
		untyped = append(untyped, ']')
		display = append(display, '[')
		display = append(display, name...)
		display = append(display, ':')
		display = append(display, typ...)
		display = append(display, ']')
		params = append(params, Param{Name: name, Type: typ, Value: c.value})
		prev = c.end
	}
	untyped = append(untyped, line[prev:]...)
	display = append(display, line[prev:]...)
	return Lexed{Untyped: string(untyped), Display: string(display), Params: params}
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isWordByte(b byte) bool {
	return b == '_' || isDigit(b) ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
