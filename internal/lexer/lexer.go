// Package lexer implements Concord's pattern and value extraction
// (§3.2). It separates each configuration line into a typed pattern — the
// line text with data values replaced by typed placeholders such as
// [num] or [ip4] — and an ordered parameter map binding fresh variable
// names (a, b, c, ...) to parsed values.
//
// Built-in token types cover the network data types from Table 1 of the
// paper (numbers, hex literals, booleans, MAC addresses, IPv4/IPv6
// addresses and prefixes). Users extend the lexer with custom regular
// expressions for domain objects such as interface names; user tokens
// take precedence over built-ins.
//
// Two matching strategies produce identical results. Lex is the default
// single left-to-right scan: each spec carries a byte-class prefilter
// (the conservative set of bytes a match can start with) and an
// anchored form of its regex, so at most positions most specs are
// dismissed with a bitmap test and no regex runs at all. LexLinear is
// the pre-optimization strategy — every spec's FindAllStringIndex over
// the whole line followed by a global sort — kept as the differential
// baseline. The memoization Cache (see LexCached) sits above either.
package lexer

import (
	"fmt"
	"regexp"
	"slices"
	"sync"
	"unicode/utf8"

	"concord/internal/netdata"
)

// TokenSpec describes one token type: a name used in pattern
// placeholders, a regular expression locating candidate spans, and an
// optional parser that validates the span and produces a typed value.
// Parse failures make the lexer fall through to the next token type at
// the same position, so loose regexes are safe.
type TokenSpec struct {
	// Name appears in placeholders, e.g. "iface" renders as [iface].
	Name string
	// Pattern is an RE2 regular expression matching candidate spans.
	Pattern string
	// Parse validates a candidate span and converts it to a value. If
	// nil, every span is accepted as a netdata.Str.
	Parse func(string) (netdata.Value, error)
	// NoDigitBefore rejects spans immediately preceded by an ASCII
	// digit, preventing numeric tokens from starting mid-number.
	NoDigitBefore bool
	// WordBoundary rejects spans whose neighboring characters are
	// letters, digits, or underscores (used for keyword-like tokens such
	// as booleans).
	WordBoundary bool
}

type compiledSpec struct {
	TokenSpec
	re *regexp.Regexp
	// anchored is the pattern wrapped in \A(?:...), used by the scan's
	// per-position probes; a probe at offset p answers "does a match
	// start exactly here" without letting the engine retry later
	// positions the prefilter already dismissed.
	anchored *regexp.Regexp
	pf       prefilter
}

// Lexer extracts typed patterns and parameter values from configuration
// lines. It is safe for concurrent use after construction.
type Lexer struct {
	specs []compiledSpec
}

// Builtin returns the built-in token specifications, ordered by matching
// precedence (most specific first). The set mirrors Table 1 of the
// paper; the hex token requires a 0x prefix so that leading-zero decimal
// numbers are not misclassified.
func Builtin() []TokenSpec {
	return []TokenSpec{
		{
			Name:    "pfx6",
			Pattern: `[0-9a-fA-F]{0,4}(?::[0-9a-fA-F]{0,4}){1,8}(?:\.[0-9]{1,3}){0,3}/[0-9]{1,3}`,
			Parse:   func(s string) (netdata.Value, error) { return netdata.ParsePrefix6(s) },
		},
		{
			Name:    "ip6",
			Pattern: `[0-9a-fA-F]{0,4}(?::[0-9a-fA-F]{0,4}){1,8}(?:\.[0-9]{1,3}){0,3}`,
			Parse:   func(s string) (netdata.Value, error) { return netdata.ParseIP6(s) },
		},
		{
			Name:    "mac",
			Pattern: `[0-9a-fA-F]{1,2}(?::[0-9a-fA-F]{1,2}){5}`,
			Parse:   func(s string) (netdata.Value, error) { return netdata.ParseMAC(s) },
		},
		{
			Name:          "pfx4",
			Pattern:       `[0-9]{1,3}(?:\.[0-9]{1,3}){3}/[0-9]{1,2}`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParsePrefix4(s) },
			NoDigitBefore: true,
		},
		{
			Name:          "ip4",
			Pattern:       `[0-9]{1,3}(?:\.[0-9]{1,3}){3}`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParseIP4(s) },
			NoDigitBefore: true,
		},
		{
			Name:          "hex",
			Pattern:       `0[xX][0-9a-fA-F]+`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParseHex(s) },
			NoDigitBefore: true,
		},
		{
			Name:         "bool",
			Pattern:      `true|false`,
			Parse:        func(s string) (netdata.Value, error) { return netdata.ParseBool(s) },
			WordBoundary: true,
		},
		{
			Name:          "num",
			Pattern:       `[0-9]+`,
			Parse:         func(s string) (netdata.Value, error) { return netdata.ParseNum(s) },
			NoDigitBefore: true,
		},
	}
}

// New compiles a lexer with the given user token specifications, which
// take precedence over the built-ins.
func New(user ...TokenSpec) (*Lexer, error) {
	lx := &Lexer{}
	for _, spec := range append(append([]TokenSpec{}, user...), Builtin()...) {
		if spec.Name == "" {
			return nil, fmt.Errorf("lexer: token spec with empty name")
		}
		re, err := regexp.Compile(spec.Pattern)
		if err != nil {
			return nil, fmt.Errorf("lexer: token %s: %w", spec.Name, err)
		}
		anchored, err := regexp.Compile(`\A(?:` + spec.Pattern + `)`)
		if err != nil {
			// A pattern that compiles alone but not inside a group (never
			// the case for valid RE2) falls back to the pre-scan strategy.
			anchored = nil
		}
		cs := compiledSpec{TokenSpec: spec, re: re, anchored: anchored, pf: buildPrefilter(spec.Pattern)}
		if cs.anchored == nil {
			cs.pf.usable = false
			cs.pf.sliceSafe = false
		}
		lx.specs = append(lx.specs, cs)
	}
	return lx, nil
}

// MustNew is New for known-good specs; it panics on error.
func MustNew(user ...TokenSpec) *Lexer {
	lx, err := New(user...)
	if err != nil {
		panic(err)
	}
	return lx
}

// Param is one extracted parameter of a lexed line.
type Param struct {
	// Name is the fresh variable ("a", "b", ...) in extraction order.
	Name string
	// Type is the token type name (e.g. "num", "ip4", "iface").
	Type string
	// Value is the parsed typed value.
	Value netdata.Value
}

// Lexed is the result of lexing one line of text.
type Lexed struct {
	// Untyped is the canonical pattern with anonymous placeholders,
	// e.g. "rd [ip4]:[num]". Two lines with equal Untyped (and equal
	// context) share a pattern.
	Untyped string
	// Display carries parameter names, e.g. "rd [a:ip4]:[b:num]".
	Display string
	// Params lists the extracted parameters in order of appearance.
	// Results returned through a Cache share this slice across callers;
	// treat it as immutable.
	Params []Param
}

type span struct {
	start, end int
	spec       int
	value      netdata.Value
}

// varName returns the i-th fresh variable name: a..z then v26, v27, ...
func varName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("v%d", i)
}

// MaxParamsPerLine bounds the parameters extracted from a single line.
// Real configuration commands carry a handful of values; the cap keeps
// adversarial inputs (megabyte single-line files) from exploding the
// relational candidate space downstream.
const MaxParamsPerLine = 64

// MaxLexLine is the lexer's own backstop on line length: Lex silently
// truncates longer inputs before matching. The format layer truncates
// at its configurable (much smaller) limit first and records a
// diagnostic; this constant only protects direct Lex callers from
// pathological single-line inputs.
const MaxLexLine = 1 << 20

// scratch is the pooled per-call working state shared by both matching
// strategies; nothing in it escapes a Lex call (output strings and the
// Params slice are freshly built).
type scratch struct {
	cursors []cursor
	cands   []span
	spans   []span
	untyped []byte
	display []byte
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// cursor is one spec's lazy match iterator over the line: it yields the
// spec's guard-passing, parse-passing spans in exactly the order the
// pre-scan FindAllStringIndex pass produced them, computing each on
// demand.
type cursor struct {
	start, end int
	value      netdata.Value
	done       bool
	searchFrom int
	// Specs whose pattern carries position anchors (^, \b, ...) cannot
	// be matched against line suffixes; they precompute the full match
	// list instead.
	eagerInit bool
	eager     [][]int
	eagerAt   int
}

// Lex extracts the typed pattern and parameters from a single line of
// text. Matching is greedy left to right; at each position the
// highest-precedence token whose span parses successfully wins.
//
// Lex is the optimized single-pass scan; LexLinear is the equivalent
// baseline. Both resolve overlaps identically: earliest start first,
// then highest precedence (lowest spec index).
func (lx *Lexer) Lex(line string) Lexed {
	if len(line) > MaxLexLine {
		line = line[:MaxLexLine]
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	ns := len(lx.specs)
	if cap(sc.cursors) < ns {
		sc.cursors = make([]cursor, ns)
	}
	cursors := sc.cursors[:ns]
	for si := range cursors {
		cursors[si] = cursor{}
		lx.advanceCursor(&cursors[si], si, line)
	}
	chosen := sc.spans[:0]
	pos := 0
	for len(chosen) < MaxParamsPerLine {
		best := -1
		for si := range cursors {
			c := &cursors[si]
			// Candidates overlapping already-chosen text are discarded
			// per spec, preserving each spec's own non-overlapping match
			// sequence (a skipped span still consumes its text for that
			// spec, exactly as in the pre-scan strategy).
			for !c.done && c.start < pos {
				lx.advanceCursor(c, si, line)
			}
			if c.done {
				continue
			}
			if best < 0 || c.start < cursors[best].start {
				best = si
			}
		}
		if best < 0 {
			break
		}
		c := &cursors[best]
		chosen = append(chosen, span{start: c.start, end: c.end, spec: best, value: c.value})
		pos = c.end
		lx.advanceCursor(c, best, line)
	}
	res := lx.render(line, chosen, sc)
	sc.spans = chosen[:0]
	return res
}

// advanceCursor moves a cursor to its spec's next accepted span, or
// marks it done. Guard or parse failures discard the span but consume
// its text (search resumes at the span's end), mirroring how the
// baseline's FindAllStringIndex never revisits a matched region.
func (lx *Lexer) advanceCursor(c *cursor, si int, line string) {
	spec := &lx.specs[si]
	if !spec.pf.sliceSafe {
		lx.advanceEager(c, spec, line)
		return
	}
	from := c.searchFrom
	for from < len(line) {
		var start, end int
		if spec.pf.usable {
			for from < len(line) && !spec.pf.first.has(line[from]) {
				from++
			}
			if from >= len(line) {
				break
			}
			loc := spec.anchored.FindStringIndex(line[from:])
			if loc == nil {
				from++
				continue
			}
			start, end = from, from+loc[1]
		} else {
			loc := spec.re.FindStringIndex(line[from:])
			if loc == nil {
				break
			}
			start, end = from+loc[0], from+loc[1]
		}
		if start == end {
			// Empty match: never a candidate; advance one rune like the
			// baseline's FindAll does.
			_, w := utf8.DecodeRuneInString(line[start:])
			if w == 0 {
				w = 1
			}
			from = start + w
			continue
		}
		if v, ok := lx.accept(spec, line, start, end); ok {
			c.start, c.end, c.value = start, end, v
			c.searchFrom = end
			return
		}
		from = end
	}
	c.done = true
}

// advanceEager drives a cursor for anchor-carrying specs from a
// precomputed FindAllStringIndex match list.
func (lx *Lexer) advanceEager(c *cursor, spec *compiledSpec, line string) {
	if !c.eagerInit {
		c.eagerInit = true
		c.eager = spec.re.FindAllStringIndex(line, -1)
	}
	for c.eagerAt < len(c.eager) {
		loc := c.eager[c.eagerAt]
		c.eagerAt++
		if loc[0] == loc[1] {
			continue
		}
		if v, ok := lx.accept(spec, line, loc[0], loc[1]); ok {
			c.start, c.end, c.value = loc[0], loc[1], v
			return
		}
	}
	c.done = true
}

// accept applies a spec's span guards and parser.
func (lx *Lexer) accept(spec *compiledSpec, line string, start, end int) (netdata.Value, bool) {
	if spec.NoDigitBefore && start > 0 && isDigit(line[start-1]) {
		return nil, false
	}
	if spec.WordBoundary {
		if start > 0 && isWordByte(line[start-1]) {
			return nil, false
		}
		if end < len(line) && isWordByte(line[end]) {
			return nil, false
		}
	}
	if spec.Parse != nil {
		v, err := spec.Parse(line[start:end])
		if err != nil {
			return nil, false
		}
		return v, true
	}
	return netdata.Str(line[start:end]), true
}

// LexLinear is the pre-optimization matching strategy: every spec's
// matches are collected over the whole line, globally sorted, and
// resolved by position and precedence. It produces output identical to
// Lex and is kept as the differential baseline (see FuzzLex and the
// learn-path golden tests).
func (lx *Lexer) LexLinear(line string) Lexed {
	if len(line) > MaxLexLine {
		line = line[:MaxLexLine]
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	// Collect candidate spans from every spec, then resolve overlaps by
	// position and precedence.
	candidates := sc.cands[:0]
	for si := range lx.specs {
		spec := &lx.specs[si]
		for _, loc := range spec.re.FindAllStringIndex(line, -1) {
			start, end := loc[0], loc[1]
			if start == end {
				continue
			}
			v, ok := lx.accept(spec, line, start, end)
			if !ok {
				continue
			}
			candidates = append(candidates, span{start: start, end: end, spec: si, value: v})
		}
	}
	// Stable resolution: earlier start first; at equal start, higher
	// precedence (lower spec index) first; ties broken by longer span.
	slices.SortFunc(candidates, func(a, b span) int {
		if a.start != b.start {
			return a.start - b.start
		}
		if a.spec != b.spec {
			return a.spec - b.spec
		}
		return b.end - a.end
	})

	chosen := sc.spans[:0]
	pos := 0
	for _, c := range candidates {
		if c.start < pos {
			continue
		}
		if len(chosen) >= MaxParamsPerLine {
			break
		}
		chosen = append(chosen, c)
		pos = c.end
	}
	res := lx.render(line, chosen, sc)
	sc.cands = candidates[:0]
	sc.spans = chosen[:0]
	return res
}

// render builds the Lexed result from resolved spans, writing the
// pattern strings through the pooled byte buffers.
func (lx *Lexer) render(line string, chosen []span, sc *scratch) Lexed {
	if len(chosen) == 0 {
		return Lexed{Untyped: line, Display: line}
	}
	untyped := sc.untyped[:0]
	display := sc.display[:0]
	params := make([]Param, 0, len(chosen))
	prev := 0
	for _, c := range chosen {
		name := varName(len(params))
		typ := lx.specs[c.spec].Name
		untyped = append(untyped, line[prev:c.start]...)
		display = append(display, line[prev:c.start]...)
		untyped = append(untyped, '[')
		untyped = append(untyped, typ...)
		untyped = append(untyped, ']')
		display = append(display, '[')
		display = append(display, name...)
		display = append(display, ':')
		display = append(display, typ...)
		display = append(display, ']')
		params = append(params, Param{Name: name, Type: typ, Value: c.value})
		prev = c.end
	}
	untyped = append(untyped, line[prev:]...)
	display = append(display, line[prev:]...)
	sc.untyped = untyped[:0]
	sc.display = display[:0]
	return Lexed{Untyped: string(untyped), Display: string(display), Params: params}
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isWordByte(b byte) bool {
	return b == '_' || isDigit(b) ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
