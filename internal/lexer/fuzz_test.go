package lexer

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzLex cross-checks the three lexing entry points against each
// other and validates the placeholder structure of the output:
//
//   - Lex (single-pass prefiltered scan) must agree exactly with
//     LexLinear (the eager find-all + sort fallback) — this is the
//     differential oracle for the PR 4 scan rewrite.
//   - LexCached must agree with Lex on both the filling call (miss)
//     and the repeat call (hit), so cached results are
//     indistinguishable from fresh ones.
//   - Untyped and Display must round-trip: Display is Untyped with
//     each placeholder "[type]" widened to "[name:type]" in parameter
//     order, with all literal bytes (including literal brackets in
//     the input) identical between the two.
func FuzzLex(f *testing.F) {
	seeds := []string{
		"",
		"interface GigabitEthernet0/0/1",
		"ip address 192.168.1.1 255.255.255.0",
		"rd 10.0.0.1:65001",
		"neighbor 2001:db8::1 remote-as 65000",
		"mac 00:1a:2b:3c:4d:5e vlan 120",
		"route 10.0.0.0/8 via 10.1.1.1",
		"snmp user 0x8f3a enable true",
		"x [num] 5",   // literal placeholder text colliding with a real one
		"a [a:num] 7", // literal display-style placeholder
		"[[num]]",     // nested brackets
		"num 18446744073709551615 -42 3.14",
		"\x00\xff\xfe broken \x80 utf8",
		strings.Repeat("10.0.0.1 ", 40),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	lx := MustNew()
	cache := NewCache(1 << 12)

	f.Fuzz(func(t *testing.T, line string) {
		if len(line) > MaxLexLine {
			line = line[:MaxLexLine]
		}
		got := lx.Lex(line)
		lin := lx.LexLinear(line)
		if !reflect.DeepEqual(got, lin) {
			t.Fatalf("Lex != LexLinear for %q:\n scan:   %+v\n linear: %+v", line, got, lin)
		}
		miss := lx.LexCached(cache, line)
		if !reflect.DeepEqual(got, miss) {
			t.Fatalf("LexCached (fill) != Lex for %q:\n cached: %+v\n fresh:  %+v", line, miss, got)
		}
		hit := lx.LexCached(cache, line)
		if !reflect.DeepEqual(got, hit) {
			t.Fatalf("LexCached (hit) != Lex for %q:\n cached: %+v\n fresh:  %+v", line, hit, got)
		}
		if !roundTrips(got.Untyped, got.Display, got.Params) {
			t.Fatalf("Untyped/Display placeholder mismatch for %q:\n untyped: %q\n display: %q\n params:  %+v",
				line, got.Untyped, got.Display, got.Params)
		}
		if len(got.Params) == 0 && (got.Untyped != line || got.Display != line) {
			t.Fatalf("no params but output differs from input for %q: %+v", line, got)
		}
	})
}

// roundTrips reports whether d equals u with each "[type]" placeholder
// (one per params entry, in order) widened to "[name:type]". Literal
// input bytes that happen to look like placeholders make the greedy
// alignment ambiguous, so this is a memoized two-pointer match: at
// state (i, k), u[i:] must align with d[i+delta(k):] while consuming
// params[k:], where delta(k) is the extra display width ("name:") of
// the first k placeholders.
func roundTrips(u, d string, params []Param) bool {
	delta := make([]int, len(params)+1)
	for k, p := range params {
		delta[k+1] = delta[k] + len(p.Name) + 1
	}
	type state struct{ i, k int }
	memo := make(map[state]bool)
	var match func(i, k int) bool
	match = func(i, k int) bool {
		st := state{i, k}
		if v, ok := memo[st]; ok {
			return v
		}
		memo[st] = false // cycle guard; overwritten below
		j := i + delta[k]
		var res bool
		if i == len(u) {
			res = k == len(params) && j == len(d)
		} else {
			if k < len(params) {
				up := "[" + params[k].Type + "]"
				dp := "[" + params[k].Name + ":" + params[k].Type + "]"
				if strings.HasPrefix(u[i:], up) && strings.HasPrefix(d[j:], dp) {
					res = match(i+len(up), k+1)
				}
			}
			if !res && j < len(d) && u[i] == d[j] {
				res = match(i+1, k)
			}
		}
		memo[st] = res
		return res
	}
	return match(0, 0)
}
