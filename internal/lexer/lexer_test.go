package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"concord/internal/netdata"
)

func lex(t *testing.T, line string) Lexed {
	t.Helper()
	return MustNew().Lex(line)
}

func TestLexIPAddress(t *testing.T) {
	got := lex(t, "ip address 10.14.14.34")
	if got.Untyped != "ip address [ip4]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	if got.Display != "ip address [a:ip4]" {
		t.Errorf("Display = %q", got.Display)
	}
	if len(got.Params) != 1 || got.Params[0].Value.Key() != "ip4:10.14.14.34" {
		t.Errorf("Params = %+v", got.Params)
	}
}

func TestLexPrefixBeatsIP(t *testing.T) {
	got := lex(t, "seq 10 permit 10.14.14.34/32")
	if got.Untyped != "seq [num] permit [pfx4]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	if len(got.Params) != 2 {
		t.Fatalf("Params = %+v", got.Params)
	}
	if got.Params[0].Value.Key() != "num:10" {
		t.Errorf("param a = %v", got.Params[0].Value)
	}
	if got.Params[1].Value.Key() != "pfx4:10.14.14.34/32" {
		t.Errorf("param b = %v", got.Params[1].Value)
	}
}

func TestLexMAC(t *testing.T) {
	got := lex(t, "route-target import 00:00:0c:d3:00:6e")
	if got.Untyped != "route-target import [mac]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	if got.Params[0].Value.Kind() != netdata.KindMAC {
		t.Errorf("kind = %v", got.Params[0].Value.Kind())
	}
}

func TestLexRouteDistinguisher(t *testing.T) {
	// The paper's unconventional rd syntax: ip:num.
	got := lex(t, "rd 10.14.14.117:10251")
	if got.Untyped != "rd [ip4]:[num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	if got.Display != "rd [a:ip4]:[b:num]" {
		t.Errorf("Display = %q", got.Display)
	}
}

func TestLexTrailingNumberInWord(t *testing.T) {
	// Numbers embedded at the end of identifiers are extracted
	// (hostname DEV1 -> hostname DEV[num], Figure 3).
	got := lex(t, "hostname DEV1")
	if got.Untyped != "hostname DEV[num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	got = lex(t, "interface Port-Channel110")
	if got.Untyped != "interface Port-Channel[num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	if v, ok := got.Params[0].Value.(netdata.Num); !ok {
		t.Errorf("value = %#v", got.Params[0].Value)
	} else if i, _ := v.Int64(); i != 110 {
		t.Errorf("value = %v", v)
	}
}

func TestLexZero(t *testing.T) {
	got := lex(t, "interface Loopback0")
	if got.Untyped != "interface Loopback[num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
}

func TestLexIPv6(t *testing.T) {
	// Note: the trailing digit of "ipv6" is itself extracted as a num,
	// exactly as the paper's lexer extracts the 1 from "DEV1".
	got := lex(t, "ipv6 address 2001:db8::1")
	if got.Untyped != "ipv[num] address [ip6]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	got = lex(t, "ipv6 route 2001:db8::/32 null0")
	if got.Untyped != "ipv[num] route [pfx6] null[num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
}

func TestLexBoolBoundary(t *testing.T) {
	got := lex(t, "shutdown false")
	if got.Untyped != "shutdown [bool]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	got = lex(t, "set truex")
	if strings.Contains(got.Untyped, "[bool]") {
		t.Errorf("bool matched inside a word: %q", got.Untyped)
	}
}

func TestLexHex(t *testing.T) {
	got := lex(t, "key 0x1f2e")
	if got.Untyped != "key [hex]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	// Leading-zero decimals are numbers, not hex.
	got = lex(t, "seq 010")
	if got.Untyped != "seq [num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
}

func TestLexInvalidIPFallsBack(t *testing.T) {
	// 300.1.2.3 is not a valid IPv4 address; digits fall back to nums.
	got := lex(t, "x 300.1.2.3")
	if strings.Contains(got.Untyped, "[ip4]") {
		t.Errorf("invalid IP lexed as ip4: %q", got.Untyped)
	}
	if got.Untyped != "x [num].[num].[num].[num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
}

func TestLexNoTokens(t *testing.T) {
	got := lex(t, "evpn ether-segment")
	if got.Untyped != "evpn ether-segment" || len(got.Params) != 0 {
		t.Errorf("got %q, %d params", got.Untyped, len(got.Params))
	}
}

func TestLexEmpty(t *testing.T) {
	got := lex(t, "")
	if got.Untyped != "" || len(got.Params) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestUserTokenPrecedence(t *testing.T) {
	lx := MustNew(TokenSpec{
		Name:    "iface",
		Pattern: `(?:[eE]t|ae)-?[0-9]+(?:/[0-9]+)*`,
	})
	got := lx.Lex("interface et-0/0/1 mtu 9000")
	if got.Untyped != "interface [iface] mtu [num]" {
		t.Errorf("Untyped = %q", got.Untyped)
	}
	if got.Params[0].Type != "iface" || got.Params[0].Value.Key() != "str:et-0/0/1" {
		t.Errorf("param = %+v", got.Params[0])
	}
}

func TestUserTokenParseFailureFallsThrough(t *testing.T) {
	lx := MustNew(TokenSpec{
		Name:    "even",
		Pattern: `[0-9]+`,
		Parse: func(s string) (netdata.Value, error) {
			n, err := netdata.ParseNum(s)
			if err != nil {
				return nil, err
			}
			if i, ok := n.Int64(); !ok || i%2 != 0 {
				return nil, errOdd
			}
			return n, nil
		},
	})
	got := lx.Lex("vlan 250")
	if got.Untyped != "vlan [even]" {
		t.Errorf("even: %q", got.Untyped)
	}
	got = lx.Lex("vlan 251")
	if got.Untyped != "vlan [num]" {
		t.Errorf("odd should fall back to num: %q", got.Untyped)
	}
}

var errOdd = &oddError{}

type oddError struct{}

func (*oddError) Error() string { return "odd" }

func TestNewRejectsBadSpecs(t *testing.T) {
	if _, err := New(TokenSpec{Name: "", Pattern: "x"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(TokenSpec{Name: "bad", Pattern: "("}); err == nil {
		t.Error("invalid regex accepted")
	}
}

func TestVarNames(t *testing.T) {
	if varName(0) != "a" || varName(25) != "z" || varName(26) != "v26" {
		t.Error("varName sequence wrong")
	}
}

func TestLexFigure3Corpus(t *testing.T) {
	// End-to-end check of the Figure 1/3 lines.
	cases := map[string]string{
		"hostname DEV1":                         "hostname DEV[num]",
		"interface Loopback0":                   "interface Loopback[num]",
		"ip address 10.14.14.34":                "ip address [ip4]",
		"interface Port-Channel11":              "interface Port-Channel[num]",
		"evpn ether-segment":                    "evpn ether-segment",
		"route-target import 00:00:0c:d3:00:0b": "route-target import [mac]",
		"ip prefix-list loopback":               "ip prefix-list loopback",
		"seq 10 permit 10.14.14.34/32":          "seq [num] permit [pfx4]",
		"seq 20 permit 0.0.0.0/0":               "seq [num] permit [pfx4]",
		"router bgp 65015":                      "router bgp [num]",
		"maximum-paths 64 ecmp 64":              "maximum-paths [num] ecmp [num]",
		"vlan 251":                              "vlan [num]",
		"rd 10.14.14.117:10251":                 "rd [ip4]:[num]",
	}
	lx := MustNew()
	for in, want := range cases {
		if got := lx.Lex(in); got.Untyped != want {
			t.Errorf("Lex(%q) = %q, want %q", in, got.Untyped, want)
		}
	}
}

func TestLexNeverPanicsAndPreservesLiterals(t *testing.T) {
	// Property: lexing arbitrary text never panics, and substituting
	// parameter display strings back into the pattern placeholders
	// reconstructs a string whose literal (non-placeholder) content
	// matches the original length budget. We settle for the weaker
	// invariant that the number of placeholders equals len(Params).
	lx := MustNew()
	f := func(s string) bool {
		got := lx.Lex(s)
		return strings.Count(got.Display, ":") >= len(got.Params) &&
			countPlaceholders(got.Untyped) >= len(got.Params)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func countPlaceholders(pattern string) int {
	n := 0
	for _, typ := range []string{"num", "hex", "bool", "mac", "ip4", "ip6", "pfx4", "pfx6"} {
		n += strings.Count(pattern, "["+typ+"]")
	}
	return n
}

func TestLineParamIndex(t *testing.T) {
	l := Line{Params: []Param{{Name: "a"}, {Name: "b"}}}
	if l.ParamIndex("b") != 1 || l.ParamIndex("z") != -1 {
		t.Error("ParamIndex wrong")
	}
}
