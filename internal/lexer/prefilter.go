package lexer

import (
	"math/bits"
	"regexp/syntax"
	"unicode"
	"unicode/utf8"
)

// byteSet is a 256-bit membership bitmap over byte values.
type byteSet [4]uint64

func (s *byteSet) add(b byte)      { s[b>>6] |= 1 << (b & 63) }
func (s *byteSet) has(b byte) bool { return s[b>>6]&(1<<(b&63)) != 0 }
func (s *byteSet) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		s.add(byte(b))
	}
}
func (s *byteSet) count() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// prefilter is the per-spec byte-class dispatch table driving the
// single-pass scan: a conservative superset of the bytes any match of
// the spec's pattern can start with. Positions whose byte is outside
// the set are skipped with zero regex work; plausible positions are
// probed with the spec's anchored regex.
type prefilter struct {
	first byteSet
	// usable reports whether the first-byte set is sound and selective
	// enough to drive anchored probing. When false the scan falls back
	// to unanchored leftmost search for this spec (identical results,
	// no per-position dispatch).
	usable bool
	// sliceSafe reports that the pattern contains no position anchors
	// (^, $, \A, \z, \b, \B), so matching against a line suffix is
	// equivalent to matching against the whole line at that offset.
	// Anchor-carrying user patterns are matched with the pre-scan
	// FindAll strategy to preserve exact semantics.
	sliceSafe bool
}

// maxUsableFirstBytes caps the selectivity threshold: a first-byte set
// covering nearly the whole byte space filters nothing, so the scan
// uses the unanchored path instead of probing every position.
const maxUsableFirstBytes = 200

// buildPrefilter analyzes a pattern's syntax tree. It never fails: an
// unanalyzable or unselective pattern yields an unusable prefilter and
// the scan degrades gracefully.
func buildPrefilter(pattern string) prefilter {
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		return prefilter{} // unreachable: regexp.Compile already succeeded
	}
	a := analysis{}
	canEmpty := a.walk(re)
	pf := prefilter{first: a.first, sliceSafe: !a.anchored}
	pf.usable = pf.sliceSafe && !a.unknown && !canEmpty &&
		pf.first.count() <= maxUsableFirstBytes
	return pf
}

type analysis struct {
	first    byteSet
	unknown  bool // saw an op we cannot reason about
	anchored bool // saw a position anchor or word boundary
}

// addRune marks the first byte of a rune's UTF-8 encoding. Runes at or
// above 0x80 conservatively mark the whole high-byte range: Go's
// regexp decodes invalid UTF-8 bytes as U+FFFD, so any byte >= 0x80
// can begin a rune that a wide character class matches.
func (a *analysis) addRune(r rune) {
	if r < utf8.RuneSelf {
		a.first.add(byte(r))
		return
	}
	a.first.addRange(0x80, 0xFF)
}

func (a *analysis) addFoldedRune(r rune) {
	a.addRune(r)
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		a.addRune(f)
	}
}

// walk accumulates the bytes a match of re can start with and reports
// whether re can match the empty string. The set is conservative: it
// may contain bytes no match starts with, never the reverse.
func (a *analysis) walk(re *syntax.Regexp) (canEmpty bool) {
	switch re.Op {
	case syntax.OpNoMatch:
		return false
	case syntax.OpEmptyMatch:
		return true
	case syntax.OpLiteral:
		if len(re.Rune) == 0 {
			return true
		}
		if re.Flags&syntax.FoldCase != 0 {
			a.addFoldedRune(re.Rune[0])
		} else {
			a.addRune(re.Rune[0])
		}
		return false
	case syntax.OpCharClass:
		for i := 0; i+1 < len(re.Rune); i += 2 {
			lo, hi := re.Rune[i], re.Rune[i+1]
			if lo >= utf8.RuneSelf {
				a.first.addRange(0x80, 0xFF)
				continue
			}
			if hi >= utf8.RuneSelf {
				a.first.addRange(0x80, 0xFF)
				hi = utf8.RuneSelf - 1
			}
			a.first.addRange(byte(lo), byte(hi))
		}
		return len(re.Rune) == 0
	case syntax.OpAnyChar:
		a.first.addRange(0x00, 0xFF)
		return false
	case syntax.OpAnyCharNotNL:
		// Invalid UTF-8 decodes as U+FFFD, never '\n', so excluding the
		// newline byte is sound.
		a.first.addRange(0x00, '\n'-1)
		a.first.addRange('\n'+1, 0xFF)
		return false
	case syntax.OpBeginLine, syntax.OpEndLine, syntax.OpBeginText, syntax.OpEndText,
		syntax.OpWordBoundary, syntax.OpNoWordBoundary:
		a.anchored = true
		return true
	case syntax.OpCapture:
		return a.walk(re.Sub[0])
	case syntax.OpStar, syntax.OpQuest:
		a.walk(re.Sub[0])
		return true
	case syntax.OpPlus:
		return a.walk(re.Sub[0])
	case syntax.OpRepeat:
		sub := a.walk(re.Sub[0])
		return sub || re.Min == 0
	case syntax.OpConcat:
		empty := true
		for _, sub := range re.Sub {
			if !a.walk(sub) {
				empty = false
				// Later elements cannot contribute first bytes, but an
				// anchor or unknown op inside them still matters; scan the
				// whole concat for soundness flags only (idempotent for
				// the elements already walked).
				a.walkFlagsOnly(re.Sub)
				break
			}
		}
		return empty
	case syntax.OpAlternate:
		empty := false
		for _, sub := range re.Sub {
			if a.walk(sub) {
				empty = true
			}
		}
		return empty
	default:
		a.unknown = true
		return true
	}
}

// walkFlagsOnly scans subtrees only for soundness flags (anchors,
// unknown ops) without adding first bytes: once a concat element cannot
// match empty, later elements never start a match, but an anchor inside
// them still disqualifies suffix-sliced matching.
func (a *analysis) walkFlagsOnly(subs []*syntax.Regexp) {
	var scan func(re *syntax.Regexp)
	scan = func(re *syntax.Regexp) {
		switch re.Op {
		case syntax.OpBeginLine, syntax.OpEndLine, syntax.OpBeginText, syntax.OpEndText,
			syntax.OpWordBoundary, syntax.OpNoWordBoundary:
			a.anchored = true
		case syntax.OpLiteral, syntax.OpCharClass, syntax.OpAnyChar, syntax.OpAnyCharNotNL,
			syntax.OpEmptyMatch, syntax.OpNoMatch:
		case syntax.OpCapture, syntax.OpStar, syntax.OpQuest, syntax.OpPlus,
			syntax.OpRepeat, syntax.OpConcat, syntax.OpAlternate:
			for _, sub := range re.Sub {
				scan(sub)
			}
		default:
			a.unknown = true
		}
	}
	for _, sub := range subs {
		scan(sub)
	}
}
