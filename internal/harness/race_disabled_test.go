//go:build !race

package harness

const raceEnabled = false
