//go:build race

package harness

// raceEnabled reports whether the race detector instruments this build;
// the slowest experiment tests skip themselves under its ~10x slowdown.
const raceEnabled = true
