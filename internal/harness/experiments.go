package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/expert"
	"concord/internal/mining"
	"concord/internal/stats"
	"concord/internal/synth"
)

// Table3 regenerates the dataset-overview table: lines, patterns,
// parameters, and learn/check runtimes per role.
func (r *Runner) Table3(w io.Writer, roles []string) error {
	t := &table{header: []string{"Dataset", "Lines", "(exact)", "Patterns", "Parameters", "Learn", "Check"}}
	for _, name := range roles {
		res, err := r.Role(name)
		if err != nil {
			return err
		}
		t.add(name,
			fmtMagnitude(res.Stats.Lines),
			fmt.Sprintf("%d", res.Stats.Lines),
			fmt.Sprintf("%d", res.Stats.Patterns),
			fmt.Sprintf("%d", res.Stats.Parameters),
			fmtDuration(res.LearnTime),
			fmtDuration(res.CheckTime))
	}
	fmt.Fprintln(w, "Table 3: dataset overview (learn and check runtime per dataset)")
	t.write(w)
	return nil
}

// ScalingPoint is one measurement of Figure 6.
type ScalingPoint struct {
	FracConfigs float64
	FracRuntime float64
	Runtime     time.Duration
}

// Figure6 measures the scaling trend: subsets of one role's
// configurations are learned+checked and runtimes are normalized against
// the full run. A near-diagonal series demonstrates linear scaling.
func (r *Runner) Figure6(w io.Writer, roleName string, steps int) ([]ScalingPoint, error) {
	spec, ok := synth.RoleByName(roleName, r.Scale)
	if !ok {
		return nil, fmt.Errorf("harness: unknown role %q", roleName)
	}
	ds := synth.Generate(spec)
	srcs, meta := sources(ds)
	eng, err := core.New(r.Opts)
	if err != nil {
		return nil, err
	}
	run := func(n int) (time.Duration, error) {
		start := time.Now()
		lr, err := eng.Learn(srcs[:n], meta)
		if err != nil {
			return 0, err
		}
		if _, err := eng.Check(lr.Set, srcs[:n], meta); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	var points []ScalingPoint
	for s := 1; s <= steps; s++ {
		n := len(srcs) * s / steps
		if n < 1 {
			n = 1
		}
		d, err := run(n)
		if err != nil {
			return nil, err
		}
		points = append(points, ScalingPoint{
			FracConfigs: float64(n) / float64(len(srcs)),
			Runtime:     d,
		})
	}
	full := points[len(points)-1].Runtime.Seconds()
	for i := range points {
		if full > 0 {
			points[i].FracRuntime = points[i].Runtime.Seconds() / full
		}
	}
	fmt.Fprintf(w, "Figure 6: scaling trend on %s (normalized runtime vs normalized configs)\n", roleName)
	t := &table{header: []string{"FracConfigs", "FracRuntime", "Runtime"}}
	for _, p := range points {
		t.add(fmt.Sprintf("%.2f", p.FracConfigs), fmt.Sprintf("%.2f", p.FracRuntime), fmtDuration(p.Runtime))
	}
	t.write(w)
	return points, nil
}

// Table4 regenerates contracts-learned counts and total coverage per
// role and category (Present, Ord, Type, Unq, Seq, Relational E/C/A,
// Cov%).
func (r *Runner) Table4(w io.Writer, roles []string) error {
	t := &table{header: []string{"Dataset", "Present", "Ord", "Type", "Unq", "Seq", "Rel-E", "Rel-C", "Rel-A", "Cov"}}
	for _, name := range roles {
		res, err := r.Role(name)
		if err != nil {
			return err
		}
		eq, co, af := relSplit(res.Set)
		t.add(name,
			fmt.Sprintf("%d", res.Set.Count(contracts.CatPresent)),
			fmt.Sprintf("%d", res.Set.Count(contracts.CatOrdering)),
			fmt.Sprintf("%d", res.Set.Count(contracts.CatType)),
			fmt.Sprintf("%d", res.Set.Count(contracts.CatUnique)),
			fmt.Sprintf("%d", res.Set.Count(contracts.CatSequence)),
			fmt.Sprintf("%d", eq), fmt.Sprintf("%d", co), fmt.Sprintf("%d", af),
			fmt.Sprintf("%.1f%%", res.Check.Coverage.Percent()))
	}
	fmt.Fprintln(w, "Table 4: contracts learned and coverage per dataset")
	t.write(w)
	return nil
}

// Table5 regenerates per-category coverage percentages.
func (r *Runner) Table5(w io.Writer, roles []string) error {
	t := &table{header: []string{"Dataset", "Present", "Ord", "Unq", "Seq", "Relation"}}
	for _, name := range roles {
		res, err := r.Role(name)
		if err != nil {
			return err
		}
		cov := &res.Check.Coverage
		t.add(name,
			fmt.Sprintf("%.1f%%", cov.CategoryPercent(contracts.CatPresent)),
			fmt.Sprintf("%.1f%%", cov.CategoryPercent(contracts.CatOrdering)),
			fmt.Sprintf("%.1f%%", cov.CategoryPercent(contracts.CatUnique)),
			fmt.Sprintf("%.1f%%", cov.CategoryPercent(contracts.CatSequence)),
			fmt.Sprintf("%.1f%%", cov.CategoryPercent(contracts.CatRelation)))
	}
	fmt.Fprintln(w, "Table 5: coverage by contract category (type contracts cover no lines by definition)")
	t.write(w)
	return nil
}

// AblationPoint is one bar group of Figure 7.
type AblationPoint struct {
	Role      string
	Baseline  float64 // coverage without context embedding
	Context   float64 // + context embedding
	Constants float64 // + constant learning
}

// Figure7 measures the effect of context embedding and constant learning
// on coverage per role.
func (r *Runner) Figure7(w io.Writer, roles []string) ([]AblationPoint, error) {
	var points []AblationPoint
	for _, name := range roles {
		spec, ok := synth.RoleByName(name, r.Scale)
		if !ok {
			return nil, fmt.Errorf("harness: unknown role %q", name)
		}
		ds := synth.Generate(spec)
		srcs, meta := sources(ds)
		coverage := func(embed, constants bool) (float64, error) {
			opts := r.Opts
			opts.ContextEmbedding = embed
			opts.ConstantLearning = constants
			eng, err := core.New(opts)
			if err != nil {
				return 0, err
			}
			lr, err := eng.Learn(srcs, meta)
			if err != nil {
				return 0, err
			}
			cr, err := eng.Check(lr.Set, srcs, meta)
			if err != nil {
				return 0, err
			}
			return cr.Coverage.Percent(), nil
		}
		base, err := coverage(false, false)
		if err != nil {
			return nil, err
		}
		ctx, err := coverage(true, false)
		if err != nil {
			return nil, err
		}
		cons, err := coverage(true, true)
		if err != nil {
			return nil, err
		}
		points = append(points, AblationPoint{Role: name, Baseline: base, Context: ctx, Constants: cons})
	}
	fmt.Fprintln(w, "Figure 7: effect of context embedding and constant learning on coverage")
	t := &table{header: []string{"Dataset", "Baseline", "+Context", "+Constants"}}
	for _, p := range points {
		t.add(p.Role,
			fmt.Sprintf("%.1f%%", p.Baseline),
			fmt.Sprintf("%.1f%%", p.Context),
			fmt.Sprintf("%.1f%%", p.Constants))
	}
	t.write(w)
	return points, nil
}

// Figure8 reports the contract minimization reduction factor per role.
func (r *Runner) Figure8(w io.Writer, roles []string) (map[string]float64, error) {
	out := make(map[string]float64)
	t := &table{header: []string{"Dataset", "Before", "After", "Reduction"}}
	for _, name := range roles {
		res, err := r.Role(name)
		if err != nil {
			return nil, err
		}
		f := res.Minimization.ReductionFactor()
		out[name] = f
		t.add(name,
			fmt.Sprintf("%d", res.Minimization.Before),
			fmt.Sprintf("%d", res.Minimization.After),
			fmt.Sprintf("%.2fx", f))
	}
	fmt.Fprintln(w, "Figure 8: relational contract minimization per dataset")
	t.write(w)
	return out, nil
}

// categoryColumns defines the precision/review columns shared by Tables
// 6, 7, and Figure 9: the five simple categories plus the three
// relational splits.
type categoryColumn struct {
	label   string
	collect func(set *contracts.Set) []contracts.Contract
}

func categoryColumns() []categoryColumn {
	return []categoryColumn{
		{"Present", func(s *contracts.Set) []contracts.Contract { return collectByCategory(s, contracts.CatPresent) }},
		{"Ord", func(s *contracts.Set) []contracts.Contract { return collectByCategory(s, contracts.CatOrdering) }},
		{"Type", func(s *contracts.Set) []contracts.Contract { return collectByCategory(s, contracts.CatType) }},
		{"Unq", func(s *contracts.Set) []contracts.Contract { return collectByCategory(s, contracts.CatUnique) }},
		{"Seq", func(s *contracts.Set) []contracts.Contract { return collectByCategory(s, contracts.CatSequence) }},
		{"Rel-E", func(s *contracts.Set) []contracts.Contract { return collectByRel(s, "equals") }},
		{"Rel-C", func(s *contracts.Set) []contracts.Contract { return collectByRel(s, "contains") }},
		{"Rel-A", func(s *contracts.Set) []contracts.Contract { return collectByRel(s, "affix") }},
	}
}

// networkContracts merges the learned contracts and manifests of a set
// of roles (the paper aggregates Edge and WAN).
func (r *Runner) networkContracts(roles []string) (*contracts.Set, []*synth.Manifest, error) {
	merged := &contracts.Set{}
	var manifests []*synth.Manifest
	for _, name := range roles {
		res, err := r.Role(name)
		if err != nil {
			return nil, nil, err
		}
		merged.Contracts = append(merged.Contracts, res.Set.Contracts...)
		manifests = append(manifests, res.Dataset.Truth)
	}
	return merged, manifests, nil
}

// anyTrue reports whether any manifest classifies the contract true.
func anyTrue(ms []*synth.Manifest, c contracts.Contract) bool {
	for _, m := range ms {
		if m.IsTrue(c) {
			return true
		}
	}
	return false
}

// mergedManifest builds a manifest-like classifier across roles.
type mergedManifest struct{ ms []*synth.Manifest }

func (m *mergedManifest) IsTrue(c contracts.Contract) bool { return anyTrue(m.ms, c) }

// ReviewRow is one network × category entry of Table 6.
type ReviewRow struct {
	Network    string
	Category   string
	Population int
	Estimate   float64 // reviewer's initial precision estimate
	Samples    int     // n_adj
	Margin     float64 // achieved error E
}

// Table6 reproduces the sample-size computation: the simulated reviewer
// scores every learned contract, the score distribution yields an
// initial precision estimate, and the adjusted sample size n_adj and
// achieved margin E follow from the 95%-confidence formula with finite
// population correction, capped at 150 reviews per category.
func (r *Runner) Table6(w io.Writer) ([]ReviewRow, error) {
	var rows []ReviewRow
	for _, net := range []struct {
		name  string
		roles []string
	}{{"Edge", EdgeRoles()}, {"WAN", WANRoles()}} {
		set, manifests, err := r.networkContracts(net.roles)
		if err != nil {
			return nil, err
		}
		reviewer := expert.New(&mergedManifest{ms: manifests})
		for _, col := range categoryColumns() {
			cs := col.collect(set)
			if len(cs) == 0 {
				continue
			}
			p := reviewer.EstimatePrecision(cs)
			plan := stats.PlanReview(p, len(cs), 150, 10)
			rows = append(rows, ReviewRow{
				Network: net.name, Category: col.label,
				Population: plan.Population, Estimate: p,
				Samples: plan.Samples, Margin: plan.Margin,
			})
		}
	}
	fmt.Fprintln(w, "Table 6: manual review sample sizes (95% confidence, review capped at 150)")
	t := &table{header: []string{"Network", "Category", "N", "Estimate", "n_adj", "E"}}
	for _, row := range rows {
		t.add(row.Network, row.Category,
			fmt.Sprintf("%d", row.Population),
			fmt.Sprintf("%.2f", row.Estimate),
			fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%.0f%%", 100*row.Margin))
	}
	t.write(w)
	return rows, nil
}

// Figure9 prints the reviewer score CDFs per category and network.
func (r *Runner) Figure9(w io.Writer) (map[string][10]float64, error) {
	out := make(map[string][10]float64)
	fmt.Fprintln(w, "Figure 9: reviewer score CDFs (score 10 down to 1)")
	t := &table{header: []string{"Network", "Category", "10", "9", "8", "7", "6", "5", "4", "3", "2", "1"}}
	for _, net := range []struct {
		name  string
		roles []string
	}{{"Edge", EdgeRoles()}, {"WAN", WANRoles()}} {
		set, manifests, err := r.networkContracts(net.roles)
		if err != nil {
			return nil, err
		}
		reviewer := expert.New(&mergedManifest{ms: manifests})
		for _, col := range categoryColumns() {
			cs := col.collect(set)
			if len(cs) == 0 {
				continue
			}
			cdf := reviewer.CDF(cs)
			out[net.name+"/"+col.label] = cdf
			cells := []string{net.name, col.label}
			for _, v := range cdf {
				cells = append(cells, fmt.Sprintf("%.2f", v))
			}
			t.add(cells...)
		}
	}
	t.write(w)
	return out, nil
}

// PrecisionRow is one network × category entry of Table 7.
type PrecisionRow struct {
	Network   string
	Category  string
	Precision float64
	TP, Total int
}

// Table7 reproduces precision: every learned contract is adjudicated
// against the generator's ground-truth manifest (the synthetic
// counterpart of the paper's manual review, and strictly more reliable
// than sampling).
func (r *Runner) Table7(w io.Writer) ([]PrecisionRow, error) {
	var rows []PrecisionRow
	for _, net := range []struct {
		name  string
		roles []string
	}{{"Edge", EdgeRoles()}, {"WAN", WANRoles()}} {
		set, manifests, err := r.networkContracts(net.roles)
		if err != nil {
			return nil, err
		}
		for _, col := range categoryColumns() {
			cs := col.collect(set)
			if len(cs) == 0 {
				continue
			}
			tp := 0
			for _, c := range cs {
				if anyTrue(manifests, c) {
					tp++
				}
			}
			rows = append(rows, PrecisionRow{
				Network: net.name, Category: col.label,
				Precision: float64(tp) / float64(len(cs)), TP: tp, Total: len(cs),
			})
		}
	}
	fmt.Fprintln(w, "Table 7: precision per contract category (%)")
	t := &table{header: []string{"Network", "Category", "Precision", "TP", "Total"}}
	for _, row := range rows {
		t.add(row.Network, row.Category,
			fmt.Sprintf("%.0f%%", 100*row.Precision),
			fmt.Sprintf("%d", row.TP), fmt.Sprintf("%d", row.Total))
	}
	t.write(w)
	return rows, nil
}

// Table8 prints a selection of intuitive learned contracts with their
// English descriptions, matched through the ground-truth manifest.
func (r *Runner) Table8(w io.Writer, perNetwork int) error {
	fmt.Fprintln(w, "Table 8: example learned contracts")
	for _, net := range []struct {
		name  string
		roles []string
	}{{"Edge", EdgeRoles()}, {"WAN", WANRoles()}} {
		set, manifests, err := r.networkContracts(net.roles)
		if err != nil {
			return err
		}
		shown := 0
		seen := map[string]bool{}
		for _, c := range set.Contracts {
			if shown >= perNetwork {
				break
			}
			if c.Category() != contracts.CatRelation && c.Category() != contracts.CatUnique {
				continue
			}
			desc := describe(manifests, c)
			if desc == "" || seen[desc] {
				continue
			}
			seen[desc] = true
			shown++
			fmt.Fprintf(w, "[%s] %s\n", net.name, desc)
			for _, line := range strings.Split(c.String(), "\n") {
				fmt.Fprintf(w, "    %s\n", line)
			}
		}
	}
	return nil
}

// describe finds the planted-rule description matching a contract.
func describe(ms []*synth.Manifest, c contracts.Contract) string {
	for _, m := range ms {
		if d := m.Describe(c); d != "" {
			return d
		}
	}
	return ""
}

// OptimizationResult reports the §5.2 ablation: indexed vs. brute-force
// relational mining.
type OptimizationResult struct {
	Role       string
	Configs    int
	Lines      int
	Indexed    time.Duration
	BruteForce time.Duration
	TimedOut   bool
}

// Optimization runs the relation-index ablation on one role with the
// given brute-force timeout. The paper observed non-termination within
// one hour on every WAN dataset; any realistic timeout demonstrates the
// same blow-up.
func (r *Runner) Optimization(w io.Writer, roleName string, timeout time.Duration) (*OptimizationResult, error) {
	spec, ok := synth.RoleByName(roleName, r.Scale)
	if !ok {
		return nil, fmt.Errorf("harness: unknown role %q", roleName)
	}
	ds := synth.Generate(spec)
	srcs, meta := sources(ds)
	eng, err := core.New(r.Opts)
	if err != nil {
		return nil, err
	}
	cfgs, pstats := eng.Process(srcs, meta)

	m := mining.New(mining.Options{
		Support:        r.Opts.Support,
		Confidence:     r.Opts.Confidence,
		ScoreThreshold: r.Opts.ScoreThreshold,
		Categories:     map[contracts.Category]bool{contracts.CatRelation: true},
	})
	start := time.Now()
	m.Mine(cfgs)
	indexed := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start = time.Now()
	_, bfErr := m.MineRelationalBruteForce(ctx, cfgs)
	brute := time.Since(start)

	res := &OptimizationResult{
		Role: roleName, Configs: pstats.Configs, Lines: pstats.Lines,
		Indexed: indexed, BruteForce: brute, TimedOut: bfErr != nil,
	}
	fmt.Fprintf(w, "Optimization ablation on %s (%d configs, %d lines):\n", roleName, res.Configs, res.Lines)
	fmt.Fprintf(w, "  relation-index mining: %v\n", indexed.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Fprintf(w, "  brute-force mining:    timed out after %v (paper: non-termination within 1h)\n", timeout)
	} else {
		fmt.Fprintf(w, "  brute-force mining:    %v (%.1fx slower)\n",
			brute.Round(time.Millisecond), brute.Seconds()/indexed.Seconds())
	}
	return res, nil
}

// IncidentResult reports one §5.5 replay.
type IncidentResult struct {
	Name     string
	Caught   bool
	Category contracts.Category
	Detail   string
}

// Incidents replays the paper's three production incidents against
// contracts learned from the edge role.
func (r *Runner) Incidents(w io.Writer) ([]IncidentResult, error) {
	res, err := r.Role("E1")
	if err != nil {
		return nil, err
	}
	srcs, meta := sources(res.Dataset)
	eng, err := core.New(r.Opts)
	if err != nil {
		return nil, err
	}
	victim := string(srcs[0].Text)

	type incident struct {
		name   string
		mutate func(string) (string, bool)
		expect func(v contracts.Violation) bool
	}
	incidents := []incident{
		{
			name:   "Example 1: missing route aggregation",
			mutate: func(s string) (string, bool) { return synth.InjectMissingAggregate(s) },
			expect: func(v contracts.Violation) bool {
				return strings.Contains(v.Contract, "aggregate-address")
			},
		},
		{
			name:   "Example 2: MAC broadcast loop (rogue vlans vs. metadata)",
			mutate: func(s string) (string, bool) { return synth.InjectRogueVlans(s, []int{4901, 4902}) },
			expect: func(v contracts.Violation) bool {
				return v.Category == contracts.CatRelation && strings.Contains(v.Contract, "@meta")
			},
		},
		{
			name:   "Example 3: multiple VRFs (broken ordering)",
			mutate: func(s string) (string, bool) { return synth.InjectVRFOrderBreak(s) },
			expect: func(v contracts.Violation) bool {
				return v.Category == contracts.CatOrdering && strings.Contains(v.Contract, "redistribute connected")
			},
		},
	}
	var out []IncidentResult
	fmt.Fprintln(w, "Incident replays (§5.5):")
	for _, inc := range incidents {
		bad, ok := inc.mutate(victim)
		if !ok {
			return nil, fmt.Errorf("harness: injection failed for %s", inc.name)
		}
		cr, err := eng.Check(res.Set, []core.Source{{Name: "incident.cfg", Text: []byte(bad)}}, meta)
		if err != nil {
			return nil, err
		}
		ir := IncidentResult{Name: inc.name}
		for _, v := range cr.Violations {
			if inc.expect(v) {
				ir.Caught = true
				ir.Category = v.Category
				ir.Detail = v.Detail
				break
			}
		}
		out = append(out, ir)
		status := "MISSED"
		if ir.Caught {
			status = fmt.Sprintf("caught by a %s contract (%s)", ir.Category, ir.Detail)
		}
		fmt.Fprintf(w, "  %-55s %s\n", inc.name+":", status)
	}
	return out, nil
}
