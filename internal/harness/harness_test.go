package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sharedRunner is reused across experiment tests so cached role results
// are computed once; tests must not mutate it.
var sharedRunner = NewRunner(0.25)

// testRunner returns the shared small-scale runner.
func testRunner() *Runner { return sharedRunner }

func TestTable3(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	if err := r.Table3(&buf, []string{"E1", "W8"}); err != nil {
		t.Fatalf("Table3: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Dataset", "E1", "W8", "Learn", "Check", "O(10^"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6LinearScaling(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	points, err := r.Figure6(&buf, "E2", 4)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	last := points[len(points)-1]
	if last.FracConfigs != 1 || last.FracRuntime != 1 {
		t.Errorf("final point not normalized: %+v", last)
	}
	// Monotone non-decreasing runtime and no worse than quadratic blowup
	// at the smallest fraction (linear trend).
	for i := 1; i < len(points); i++ {
		if points[i].Runtime < points[i-1].Runtime/2 {
			t.Errorf("runtime wildly non-monotone: %+v", points)
		}
	}
}

func TestTable4And5Coverage(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	if err := r.Table4(&buf, []string{"E1"}); err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if err := r.Table5(&buf, []string{"E1"}); err != nil {
		t.Fatalf("Table5: %v", err)
	}
	res, err := r.Role("E1")
	if err != nil {
		t.Fatal(err)
	}
	// Edge coverage should be the majority of lines (paper: >84%).
	if res.Check.Coverage.Percent() < 60 {
		t.Errorf("E1 coverage = %.1f%%", res.Check.Coverage.Percent())
	}
	// Contracts exist in the core categories.
	if res.Set.Len() == 0 {
		t.Fatal("no contracts")
	}
}

func TestFigure7AblationImprovesCoverage(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	points, err := r.Figure7(&buf, []string{"E1", "W8"})
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	byRole := map[string]AblationPoint{}
	for _, p := range points {
		byRole[p.Role] = p
	}
	// Context embedding helps the hierarchical edge dataset...
	e1 := byRole["E1"]
	if e1.Context <= e1.Baseline {
		t.Errorf("E1: context embedding did not improve coverage: %+v", e1)
	}
	// ...but cannot help the flat WAN role (paper observes the same for
	// W4-W8).
	w8 := byRole["W8"]
	if w8.Context > w8.Baseline+1 {
		t.Errorf("W8: flat syntax should not benefit from embedding: %+v", w8)
	}
	// Constant learning never hurts.
	for _, p := range points {
		if p.Constants < p.Context-0.001 {
			t.Errorf("%s: constants reduced coverage: %+v", p.Role, p)
		}
	}
}

func TestFigure8Minimization(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	factors, err := r.Figure8(&buf, []string{"E1", "W1"})
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	for role, f := range factors {
		if f < 1.2 {
			t.Errorf("%s: reduction factor = %.2f, want > 1.2", role, f)
		}
	}
}

func TestTable6SampleSizes(t *testing.T) {
	if raceEnabled {
		t.Skip("Table6 learns all ten roles (~90s uninstrumented); the race detector's slowdown exceeds the test timeout")
	}
	r := testRunner()
	var buf bytes.Buffer
	rows, err := r.Table6(&buf)
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		if row.Samples > row.Population {
			t.Errorf("%s/%s: samples exceed population: %+v", row.Network, row.Category, row)
		}
		if row.Samples > 150 {
			t.Errorf("%s/%s: review cap exceeded: %+v", row.Network, row.Category, row)
		}
		if row.Margin > 0.101 {
			t.Errorf("%s/%s: error rate above 10%%: %+v", row.Network, row.Category, row)
		}
	}
}

func TestFigure9CDFs(t *testing.T) {
	if raceEnabled {
		t.Skip("Figure9 learns all ten roles; the race detector's slowdown exceeds the test timeout")
	}
	r := testRunner()
	var buf bytes.Buffer
	cdfs, err := r.Figure9(&buf)
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if len(cdfs) == 0 {
		t.Fatal("no CDFs")
	}
	for key, cdf := range cdfs {
		if cdf[9] < 0.999 {
			t.Errorf("%s: CDF does not reach 1: %v", key, cdf)
		}
		for i := 1; i < 10; i++ {
			if cdf[i] < cdf[i-1]-1e-9 {
				t.Errorf("%s: CDF not monotone: %v", key, cdf)
			}
		}
	}
}

func TestTable7PrecisionShape(t *testing.T) {
	if raceEnabled {
		t.Skip("Table7 learns all ten roles; the race detector's slowdown exceeds the test timeout")
	}
	r := testRunner()
	var buf bytes.Buffer
	rows, err := r.Table7(&buf)
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	get := func(network, cat string) (PrecisionRow, bool) {
		for _, row := range rows {
			if row.Network == network && row.Category == cat {
				return row, true
			}
		}
		return PrecisionRow{}, false
	}
	// The paper's qualitative results: present and sequence at 100%,
	// ordering markedly lower (fixed emission order), the rest high.
	for _, network := range []string{"Edge", "WAN"} {
		if row, ok := get(network, "Present"); ok && row.Precision < 0.999 {
			t.Errorf("%s present precision = %.2f, want 1.0", network, row.Precision)
		}
		if row, ok := get(network, "Seq"); ok && row.Precision < 0.999 {
			t.Errorf("%s sequence precision = %.2f, want 1.0", network, row.Precision)
		}
		ord, okO := get(network, "Ord")
		relE, okE := get(network, "Rel-E")
		if okO && okE && ord.Precision >= relE.Precision {
			t.Errorf("%s: ordering precision (%.2f) should be the low outlier vs equality (%.2f)",
				network, ord.Precision, relE.Precision)
		}
		// The small test scale has proportionally more coincidences than
		// the full-scale run (which measures 0.72-0.94); assert the band
		// rather than the full-scale value.
		if okE && relE.Precision < 0.6 {
			t.Errorf("%s equality precision = %.2f, want high", network, relE.Precision)
		}
		if row, ok := get(network, "Unq"); ok && row.Precision < 0.6 {
			t.Errorf("%s unique precision = %.2f", network, row.Precision)
		}
	}
}

func TestTable8Examples(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	if err := r.Table8(&buf, 3); err != nil {
		t.Fatalf("Table8: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "[Edge]") || !strings.Contains(out, "[WAN]") {
		t.Errorf("Table8 missing networks:\n%s", out)
	}
	if !strings.Contains(out, "forall l1 ~") && !strings.Contains(out, "unique(") {
		t.Errorf("Table8 shows no contracts:\n%s", out)
	}
}

func TestOptimizationAblation(t *testing.T) {
	r := NewRunner(0.2)
	var buf bytes.Buffer
	res, err := r.Optimization(&buf, "E1", 30*time.Second)
	if err != nil {
		t.Fatalf("Optimization: %v", err)
	}
	if !res.TimedOut && res.BruteForce < res.Indexed {
		t.Errorf("brute force faster than indexed mining: %+v", res)
	}
}

func TestIncidents(t *testing.T) {
	r := NewRunner(0.6)
	var buf bytes.Buffer
	results, err := r.Incidents(&buf)
	if err != nil {
		t.Fatalf("Incidents: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, ir := range results {
		if !ir.Caught {
			t.Errorf("incident not caught: %s", ir.Name)
		}
	}
}

func TestRunnerCachesRoles(t *testing.T) {
	r := testRunner()
	a, err := r.Role("E1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Role("E1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("role result not cached")
	}
	if _, err := r.Role("nope"); err == nil {
		t.Error("unknown role accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{header: []string{"A", "LongHeader"}}
	tb.add("x", "1")
	tb.add("longer-cell", "2")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows align to the widest cell per column.
	if !strings.HasPrefix(lines[3], "longer-cell  2") {
		t.Errorf("row = %q", lines[3])
	}
	if !strings.HasPrefix(lines[0], "A            LongHeader") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtMagnitude(622500); got != "O(10^6)" {
		t.Errorf("fmtMagnitude(622500) = %q", got)
	}
	if got := fmtMagnitude(1928); got != "O(10^3)" {
		t.Errorf("fmtMagnitude(1928) = %q", got)
	}
	if got := fmtMagnitude(0); got != "O(10^0)" {
		t.Errorf("fmtMagnitude(0) = %q", got)
	}
	if got := fmtDuration(1516 * time.Millisecond); got != "1.5s" {
		t.Errorf("fmtDuration = %q", got)
	}
}
