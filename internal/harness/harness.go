// Package harness reproduces the paper's evaluation: it generates the
// synthetic datasets, runs Concord over them, and regenerates every
// table and figure of §5 (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers).
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/minimize"
	"concord/internal/synth"
	"concord/internal/telemetry"
)

// RoleResult is one dataset's full evaluation artifact.
type RoleResult struct {
	Role         synth.RoleSpec
	Dataset      *synth.Dataset
	Stats        core.ProcessStats
	LearnTime    time.Duration
	CheckTime    time.Duration
	Set          *contracts.Set
	Check        *core.CheckResult
	Minimization minimize.Result
	// Telemetry holds the per-stage spans and counters of the learn and
	// check runs, for experiments that attribute time within the
	// pipeline rather than around it.
	Telemetry *telemetry.Recorder
}

// Runner executes and caches per-role evaluations so that experiments
// sharing a dataset do not recompute it.
type Runner struct {
	// Scale multiplies dataset sizes (1.0 reproduces the full
	// evaluation; tests and benchmarks use smaller values).
	Scale float64
	// Opts configures the engine; zero value selects defaults.
	Opts core.Options

	results map[string]*RoleResult
}

// NewRunner builds a runner at the given scale with default options.
func NewRunner(scale float64) *Runner {
	return &Runner{Scale: scale, Opts: core.DefaultOptions()}
}

// sources converts a dataset to engine inputs.
func sources(ds *synth.Dataset) (srcs, meta []core.Source) {
	for _, f := range ds.Configs {
		srcs = append(srcs, core.Source{Name: f.Name, Text: f.Text})
	}
	for _, f := range ds.Meta {
		meta = append(meta, core.Source{Name: f.Name, Text: f.Text})
	}
	return srcs, meta
}

// Role runs (or returns the cached) evaluation of one dataset role:
// generate, learn (timed), then check the training corpus against the
// learned contracts (timed), mirroring the paper's Table 3 methodology.
func (r *Runner) Role(name string) (*RoleResult, error) {
	if res, ok := r.results[name]; ok {
		return res, nil
	}
	spec, ok := synth.RoleByName(name, r.Scale)
	if !ok {
		return nil, fmt.Errorf("harness: unknown role %q", name)
	}
	ds := synth.Generate(spec)
	srcs, meta := sources(ds)
	rec := telemetry.NewRecorder()
	opts := r.Opts
	opts.Telemetry = rec
	eng, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	start := time.Now()
	lr, err := eng.LearnContext(ctx, srcs, meta)
	if err != nil {
		return nil, err
	}
	learnTime := time.Since(start)
	start = time.Now()
	cr, err := eng.CheckContext(ctx, lr.Set, srcs, meta)
	if err != nil {
		return nil, err
	}
	checkTime := time.Since(start)
	res := &RoleResult{
		Role:         spec,
		Dataset:      ds,
		Stats:        lr.Stats,
		LearnTime:    learnTime,
		CheckTime:    checkTime,
		Set:          lr.Set,
		Check:        cr,
		Minimization: lr.Minimization,
		Telemetry:    rec,
	}
	if r.results == nil {
		r.results = make(map[string]*RoleResult)
	}
	r.results[name] = res
	return res, nil
}

// AllRoles returns every Table 3 role name in order.
func AllRoles() []string {
	var names []string
	for _, spec := range synth.Roles(1) {
		names = append(names, spec.Name)
	}
	return names
}

// EdgeRoles returns the mobile edge datacenter roles.
func EdgeRoles() []string { return []string{"E1", "E2"} }

// WANRoles returns the wide-area roles.
func WANRoles() []string {
	return []string{"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"}
}

// table is a simple aligned-column text renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

// fmtDuration renders a duration the way Table 3 does (0.1s, 16.0s).
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// fmtMagnitude renders a line count as its nearest order of magnitude,
// matching the anonymized "O(10^k)" column of Table 3 (622k lines reads
// as O(10^6), not O(10^5)).
func fmtMagnitude(lines int) string {
	if lines <= 0 {
		return "O(10^0)"
	}
	k := int(math.Round(math.Log10(float64(lines))))
	return fmt.Sprintf("O(10^%d)", k)
}

// relSplit counts relational contracts by the paper's E/C/A columns
// (equality, contains, affix).
func relSplit(set *contracts.Set) (eq, co, af int) {
	for _, c := range set.Contracts {
		r, ok := c.(*contracts.Relational)
		if !ok {
			continue
		}
		switch r.Rel {
		case "equals":
			eq++
		case "contains":
			co++
		default:
			af++
		}
	}
	return eq, co, af
}

// collectByCategory gathers a set's contracts for one category in
// deterministic order.
func collectByCategory(set *contracts.Set, cat contracts.Category) []contracts.Contract {
	var out []contracts.Contract
	for _, c := range set.Contracts {
		if c.Category() == cat {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// collectByRel gathers relational contracts for one of the E/C/A splits
// ("equals", "contains", "affix").
func collectByRel(set *contracts.Set, rel string) []contracts.Contract {
	var out []contracts.Contract
	for _, c := range set.Contracts {
		r, ok := c.(*contracts.Relational)
		if !ok {
			continue
		}
		isAffix := r.Rel == "startswith" || r.Rel == "endswith"
		if (rel == "affix" && isAffix) || string(r.Rel) == rel {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}
