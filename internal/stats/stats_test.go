package stats

import (
	"math"
	"testing"
)

func TestSampleSizeTextbook(t *testing.T) {
	// p=0.5, 95%, E=5% is the classic 384.16.
	n := SampleSize(0.5, Z95, 0.05)
	if math.Abs(n-384.16) > 0.01 {
		t.Errorf("SampleSize = %v, want 384.16", n)
	}
	// Extreme proportions need fewer samples.
	if SampleSize(0.95, Z95, 0.05) >= n {
		t.Error("p=0.95 should need fewer samples than p=0.5")
	}
}

func TestFPC(t *testing.T) {
	// Infinite population: no correction. Small population: strong one.
	n := 384.16
	if FPC(n, 1000000) >= n {
		t.Error("FPC should shrink n")
	}
	small := FPC(n, 100)
	if small >= 100 {
		t.Errorf("FPC(384, 100) = %v, should be below the population", small)
	}
}

func TestAdjustedSampleSize(t *testing.T) {
	// The paper reviews ~102 present contracts for the edge dataset
	// (population ~1010, p high). Sanity-check the same ballpark: with
	// p=0.93, N=1010 the adjusted size lands below 150.
	n := AdjustedSampleSize(0.93, Z95, 0.05, 1010)
	if n < 50 || n > 150 {
		t.Errorf("AdjustedSampleSize = %d, want within [50,150]", n)
	}
	if AdjustedSampleSize(0.5, Z95, 0.05, 10) > 10 {
		t.Error("sample size exceeded population")
	}
	if AdjustedSampleSize(0.5, Z95, 0.05, 0) != 0 {
		t.Error("empty population should need no samples")
	}
}

func TestMarginOfError(t *testing.T) {
	// Reviewing everything gives (near) zero margin.
	if m := MarginOfError(0.5, Z95, 100, 100); m != 0 {
		t.Errorf("full census margin = %v, want 0", m)
	}
	// Capping the sample raises the margin but keeps it under 10% for
	// the paper's ordered-contract scenario (large population, 150
	// samples, p around 0.5).
	m := MarginOfError(0.5, Z95, 150, 22313)
	if m <= 0.05 || m >= 0.10 {
		t.Errorf("capped margin = %v, want in (5%%, 10%%)", m)
	}
	if MarginOfError(0.5, Z95, 0, 100) != 1 {
		t.Error("zero samples should return max margin")
	}
}

func TestPlanReview(t *testing.T) {
	// Tiny categories are reviewed exhaustively.
	p := PlanReview(0.9, 9, 150, 10)
	if p.Samples != 9 || p.Margin != 0 {
		t.Errorf("tiny category plan = %+v", p)
	}
	// Large categories are capped at 150 with a raised margin.
	p = PlanReview(0.5, 22313, 150, 10)
	if p.Samples != 150 {
		t.Errorf("capped plan = %+v", p)
	}
	if p.Margin <= 0.05 || p.Margin > 0.10 {
		t.Errorf("capped margin = %v", p.Margin)
	}
	// Mid-size: below the cap.
	p = PlanReview(0.93, 1010, 150, 10)
	if p.Samples >= 150 || p.Samples < 10 {
		t.Errorf("mid plan = %+v", p)
	}
	if PlanReview(0.5, 0, 150, 10).Samples != 0 {
		t.Error("empty population plan should be empty")
	}
}

func TestMonotonicity(t *testing.T) {
	// Larger margins need fewer samples; larger populations need more.
	if SampleSize(0.5, Z95, 0.10) >= SampleSize(0.5, Z95, 0.05) {
		t.Error("sample size should fall with margin")
	}
	if AdjustedSampleSize(0.5, Z95, 0.05, 100) > AdjustedSampleSize(0.5, Z95, 0.05, 10000) {
		t.Error("adjusted size should grow with population")
	}
}
