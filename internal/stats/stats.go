// Package stats implements the sampling statistics of the paper's
// precision evaluation (§5.4, Table 6): the sample size required to
// estimate a proportion at a given confidence level and margin of error,
// the finite population correction, and the inverse computation of the
// achieved margin when the review budget is capped.
package stats

import "math"

// Z95 is the z-score for a 95% confidence level.
const Z95 = 1.96

// SampleSize returns n = Z^2 * p * (1-p) / E^2, the number of samples
// needed to estimate a true-positive proportion p with margin of error E
// at the confidence level implied by z.
func SampleSize(p, z, e float64) float64 {
	return z * z * p * (1 - p) / (e * e)
}

// FPC applies the finite population correction for a population of N:
// n_adj = n / (1 + n/N).
func FPC(n float64, population int) float64 {
	if population <= 0 {
		return 0
	}
	return n / (1 + n/float64(population))
}

// AdjustedSampleSize combines SampleSize and FPC, rounding up to a whole
// number of samples and never exceeding the population.
func AdjustedSampleSize(p, z, e float64, population int) int {
	if population <= 0 {
		return 0
	}
	n := FPC(SampleSize(p, z, e), population)
	adj := int(math.Ceil(n))
	if adj > population {
		adj = population
	}
	if adj < 1 {
		adj = 1
	}
	return adj
}

// MarginOfError inverts the sample-size formula with the finite
// population correction: given a sample of n from a population of N and
// an estimated proportion p, it returns the achieved margin E. This is
// how the paper reports the slightly increased error rates after capping
// manual review at 150 contracts per category.
func MarginOfError(p, z float64, n, population int) float64 {
	if n <= 0 || population <= 0 {
		return 1
	}
	// FPC on the variance: E = z * sqrt(p(1-p)/n * (N-n)/(N-1)).
	fpc := 1.0
	if population > 1 {
		fpc = float64(population-n) / float64(population-1)
		if fpc < 0 {
			fpc = 0
		}
	}
	return z * math.Sqrt(p*(1-p)/float64(n)*fpc)
}

// PlanReview computes the paper's review plan for one contract category:
// the adjusted sample size for the target margin, capped at cap, and the
// achieved margin at the capped size. Populations smaller than minAll
// are reviewed exhaustively (the paper reviews all categories with fewer
// than 10 contracts).
type ReviewPlan struct {
	// Population is the number of learned contracts in the category.
	Population int
	// Samples is the number of contracts to review manually.
	Samples int
	// Margin is the achieved margin of error at that sample count.
	Margin float64
}

// PlanReview returns the review plan given an initial precision estimate
// p (e.g. from LLM scoring), target margin e, review cap, and the
// exhaustive-review threshold minAll.
func PlanReview(p float64, population, cap, minAll int) ReviewPlan {
	if population <= 0 {
		return ReviewPlan{}
	}
	if population < minAll {
		return ReviewPlan{Population: population, Samples: population, Margin: 0}
	}
	n := AdjustedSampleSize(p, Z95, 0.05, population)
	if cap > 0 && n > cap {
		n = cap
	}
	margin := MarginOfError(p, Z95, n, population)
	if n == population {
		margin = 0
	}
	return ReviewPlan{Population: population, Samples: n, Margin: margin}
}
