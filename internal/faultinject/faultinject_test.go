package faultinject

import (
	"sync"
	"testing"
)

func TestAtWithoutHooksIsNoop(t *testing.T) {
	Reset()
	At("core.process.source", "r1.cfg") // must not panic or block
}

func TestSetFiresOnlyAtPoint(t *testing.T) {
	defer Reset()
	var calls []string
	Set("p.a", func(key string) { calls = append(calls, "a:"+key) })
	At("p.a", "k1")
	At("p.b", "k2") // no hook registered here
	if len(calls) != 1 || calls[0] != "a:k1" {
		t.Errorf("calls = %v", calls)
	}
}

func TestSetNilRemoves(t *testing.T) {
	defer Reset()
	fired := false
	Set("p", func(string) { fired = true })
	Set("p", nil)
	At("p", "k")
	if fired {
		t.Error("removed hook fired")
	}
	if active.Load() != 0 {
		t.Errorf("active = %d after removal", active.Load())
	}
	// Removing an absent point must not underflow the active counter.
	Set("absent", nil)
	if active.Load() != 0 {
		t.Errorf("active = %d after removing absent point", active.Load())
	}
}

func TestResetClearsEverything(t *testing.T) {
	Set("p1", func(string) { t.Error("fired after Reset") })
	Set("p2", func(string) { t.Error("fired after Reset") })
	Reset()
	At("p1", "k")
	At("p2", "k")
}

func TestPanicOnTargetsKeys(t *testing.T) {
	defer Reset()
	Set("p", PanicOn("boom", "bad1", "bad2"))
	At("p", "good") // no panic
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recover = %v, want boom", r)
		}
	}()
	At("p", "bad2")
}

func TestConcurrentAt(t *testing.T) {
	defer Reset()
	var mu sync.Mutex
	n := 0
	Set("p", func(string) { mu.Lock(); n++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				At("p", "k")
			}
		}()
	}
	wg.Wait()
	if n != 800 {
		t.Errorf("hook fired %d times, want 800", n)
	}
}
