// Package faultinject is a test-only hook registry for chaos testing
// the pipeline's fault containment. Production code marks named
// injection points with At; tests register hooks with Set that panic,
// return injected errors (by panicking with an error value, which
// containment preserves as the diagnostic's cause), or delay. With no
// hooks registered — the only state production ever runs in — At is a
// single atomic load.
//
// Points are named "package.stage.unit", e.g. "core.process.source".
// The key passed to At identifies the unit instance (a source name, a
// configuration name, a contract ID), so hooks can target specific
// inputs deterministically.
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	mu     sync.RWMutex
	active atomic.Int32
	hooks  map[string]func(key string)
)

// Set registers fn at a named injection point, replacing any previous
// hook there; a nil fn removes the point's hook. Hooks may be invoked
// concurrently from pipeline workers and must be safe for concurrent
// use. Tests should pair Set with a deferred Reset.
func Set(point string, fn func(key string)) {
	mu.Lock()
	defer mu.Unlock()
	if fn == nil {
		if hooks != nil {
			if _, ok := hooks[point]; ok {
				delete(hooks, point)
				active.Add(-1)
			}
		}
		return
	}
	if hooks == nil {
		hooks = make(map[string]func(key string))
	}
	if _, ok := hooks[point]; !ok {
		active.Add(1)
	}
	hooks[point] = fn
}

// Reset removes every registered hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	active.Store(0)
}

// At invokes the hook registered at point, if any, with the unit key.
// The fast path (no hooks registered anywhere) is one atomic load.
func At(point, key string) {
	if active.Load() == 0 {
		return
	}
	mu.RLock()
	fn := hooks[point]
	mu.RUnlock()
	if fn != nil {
		fn(key)
	}
}

// PanicOn returns a hook that panics with value v when invoked with any
// of the listed keys, a convenience for chaos tests targeting specific
// sources.
func PanicOn(v any, keys ...string) func(key string) {
	targets := make(map[string]bool, len(keys))
	for _, k := range keys {
		targets[k] = true
	}
	return func(key string) {
		if targets[key] {
			panic(v)
		}
	}
}
