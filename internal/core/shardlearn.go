// Fleet-scale sharded learn driver: map-reduce over the mine pipeline.
//
// Learning over 10k+ configurations has the same memory problem the
// sharded check driver solves — the unsharded path lexes the whole
// fleet before mining starts. The sharded learn driver partitions the
// corpus into the same deterministic contiguous shards, and each shard
// streams: every configuration is processed, folded into the shard's
// mining.StatsAccumulator (statistics plus relational candidate
// evidence), and released, so peak heap is bounded by the
// configurations in flight, not fleet size. Accumulators merge in
// shard order — every aggregate is additive or max-normalized (see the
// merge laws in internal/mining/accumulator.go) — and the category
// miners run once over the merged evidence, producing a learned set
// byte-identical to an unsharded run at any shard count.
//
// The shard boundary is (sources, shared corpus state) in and a
// learnShardResult out, mirroring the check driver's boundary, so the
// worker-process backend slots in behind runLearnShard by serializing
// an exported AccumulatorState (see shardlearnproc.go) without
// touching the merge.
package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/mining"
	"concord/internal/telemetry"
)

// learnShardResult is what crosses the learn shard boundary back to
// the merge: the shard's mining accumulator plus the plain corpus
// statistics ProcessStats needs. Nothing references the shard's lexed
// configurations.
type learnShardResult struct {
	acc      *mining.StatsAccumulator
	skipped  int
	lines    int
	patterns map[string]int
}

// learnShardedContext is the fleet-scale implementation behind
// LearnContext when Options sharding is active. Its learned set is
// byte-identical to the unsharded path: shards fold the same per-config
// statistics the unsharded passes compute, the accumulator merge is
// associative and order-normalized, and the miners run once over the
// merged evidence.
func (e *Engine) learnShardedContext(ctx context.Context, dc *diag.Collector, sources, meta []Source) (*LearnResult, error) {
	spProc := e.opts.Telemetry.StartSpan(string(telemetry.StageProcess))
	cr, err := e.newCorpusRun(dc, meta)
	if err != nil {
		spProc.EndCount(0)
		return nil, err
	}
	// One miner serves every shard: accumulators are shard-private, and
	// the shared intern table is concurrency-safe, exactly as it is
	// under the unsharded worker pool.
	m := e.newLearnMiner(dc, nil)
	// Process and mine interleave inside shards, so both stage spans
	// cover the sharded run's wall window. Progress totals are the full
	// corpus for both stages: configurations dropped before mining
	// still tick the mine counter, keeping (done, total) monotonic and
	// exact regardless of shard interleaving.
	spMine := e.opts.Telemetry.StartSpan(string(telemetry.StageMine))
	procProg := &progressCounter{e: e, stage: telemetry.StageProcess, total: len(sources)}
	mineProg := &progressCounter{e: e, stage: telemetry.StageMine, total: len(sources)}
	shards := makeShards(sources, e.opts.Shards)
	e.opts.Telemetry.Add("mine.shard_dispatches", int64(len(shards)))
	results := make([]*learnShardResult, len(shards))
	if e.opts.ShardBackend == ShardBackendProcess {
		err = e.runLearnShardsProcess(ctx, dc, meta, cr, m, shards, results, procProg, mineProg)
	} else {
		err = runShardPool(e, ctx, dc, telemetry.StageMine, shards, results, func(sh shard) (*learnShardResult, error) {
			return e.runLearnShard(ctx, dc, cr, m, sh, procProg, mineProg)
		})
	}
	cr.emitCacheStats(e)
	spProc.EndCount(len(sources))
	if err != nil {
		spMine.EndCount(0)
		return nil, err
	}
	if e.opts.Strict {
		if jerr := diag.Join(dc.All()); jerr != nil {
			spMine.EndCount(0)
			return nil, fmt.Errorf("core: strict mode: %w", jerr)
		}
	}
	acc, pstats := e.mergeLearnShards(m, cr, shards, results)
	set, err := m.MineAccumulated(ctx, acc)
	spMine.EndCount(len(sources))
	if err != nil {
		return nil, err
	}
	return e.finishLearn(ctx, dc, set, pstats)
}

// runLearnShard streams one shard: each configuration is processed,
// folded into the shard's accumulator, and released before the next
// starts. The faultinject site "core.shard" (keyed by shard index)
// models a shard lost whole, exactly as in the check driver.
func (e *Engine) runLearnShard(ctx context.Context, dc *diag.Collector, cr *corpusRun, m *mining.Miner, sh shard, procProg, mineProg *progressCounter) (*learnShardResult, error) {
	faultinject.At("core.shard", strconv.Itoa(sh.index))
	sp := e.opts.Telemetry.StartSpan(fmt.Sprintf("dist.learn[%d]", sh.index))
	res := &learnShardResult{
		acc:      m.NewStatsAccumulator(cr.interns),
		patterns: make(map[string]int),
	}
	for _, src := range sh.sources {
		if err := ctx.Err(); err != nil {
			sp.EndCount(0)
			return res, err
		}
		if err := e.learnShardStep(dc, cr, src, res, procProg, mineProg); err != nil {
			sp.EndCount(0)
			return res, err
		}
	}
	sp.EndCount(len(sh.sources))
	return res, nil
}

// learnShardStep runs one configuration through process and fold. Both
// phases contain faults at per-config granularity, matching the
// unsharded pipeline: processing panics are contained here, the fold's
// statistics and relational scans contain their own (see
// Miner.statsOneConfig and StatsAccumulator.Fold); strict surfaces any
// fault as an error that aborts the run.
func (e *Engine) learnShardStep(dc *diag.Collector, cr *corpusRun, src Source, res *learnShardResult, procProg, mineProg *progressCounter) error {
	cfg, _, err := e.shardProcess(dc, cr, src)
	procProg.tick()
	if err != nil {
		return err
	}
	if cfg == nil {
		res.skipped++
		mineProg.tick() // never reaches the fold; keep the global total exact
		return nil
	}
	res.lines += cfg.SourceLines
	addPatternStats(res.patterns, cfg)
	err = res.acc.Fold(cfg)
	mineProg.tick()
	return err
}

// mergeLearnShards reduces per-shard accumulators in shard order and
// aggregates the corpus statistics, emitting the same corpus gauges the
// unsharded processContext sets. A shard lost to lenient containment
// contributes only its skip count. Merge wall time is recorded as
// mine.merge_ns.
func (e *Engine) mergeLearnShards(m *mining.Miner, cr *corpusRun, shards []shard, results []*learnShardResult) (*mining.StatsAccumulator, ProcessStats) {
	start := time.Now()
	acc := m.NewStatsAccumulator(cr.interns)
	pstats := ProcessStats{}
	patterns := make(map[string]int)
	for i, sr := range results {
		if sr == nil {
			pstats.Skipped += len(shards[i].sources)
			continue
		}
		pstats.Configs += sr.acc.NConfigs()
		pstats.Skipped += sr.skipped
		pstats.Lines += sr.lines
		for p, n := range sr.patterns {
			if v, ok := patterns[p]; !ok || n > v {
				patterns[p] = n
			}
		}
		acc.Merge(sr.acc)
	}
	pstats.Patterns = len(patterns)
	for _, n := range patterns {
		pstats.Parameters += n
	}
	e.opts.Telemetry.Add("mine.merge_ns", time.Since(start).Nanoseconds())
	e.opts.Telemetry.SetGauge("corpus.configs", float64(pstats.Configs))
	e.opts.Telemetry.SetGauge("corpus.skipped", float64(pstats.Skipped))
	e.opts.Telemetry.SetGauge("corpus.lines", float64(pstats.Lines))
	e.opts.Telemetry.SetGauge("corpus.patterns", float64(pstats.Patterns))
	return acc, pstats
}
