package core

import (
	"context"
	"sort"

	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// LineCoverage reports the coverage status of one configuration line
// (§3.9: "Concord summarizes the percent of configuration lines covered
// and also reports the coverage of each line").
type LineCoverage struct {
	// File is the configuration name.
	File string `json:"file"`
	// Line is the 1-based line number in the original file.
	Line int `json:"line"`
	// Raw is the original line text.
	Raw string `json:"raw"`
	// Covered reports whether removing the line would violate at least
	// one contract.
	Covered bool `json:"covered"`
	// Categories lists the contract categories covering the line.
	Categories []contracts.Category `json:"categories,omitempty"`
}

// CoverageLines computes per-line coverage detail for every source
// configuration under the given contract set. Metadata lines are
// excluded. Results are ordered by file then line. It is
// CoverageLinesContext with a background context.
func (e *Engine) CoverageLines(set *contracts.Set, sources, meta []Source) ([]LineCoverage, error) {
	return e.CoverageLinesContext(context.Background(), set, sources, meta)
}

// CoverageLinesContext is CoverageLines under a cancellable context.
func (e *Engine) CoverageLinesContext(ctx context.Context, set *contracts.Set, sources, meta []Source) ([]LineCoverage, error) {
	dc := diag.New()
	defer e.opts.Diagnostics.Merge(dc)
	cfgs, _, _, err := e.processContext(ctx, dc, sources, meta)
	if err != nil {
		return nil, err
	}
	return e.coverageLinesWith(ctx, dc, e.newChecker(set, dc, sharedInterns(cfgs)), cfgs)
}

// coverageLinesWith is the checker-parameterized implementation behind
// CoverageLinesContext; registry entries pass their shared compiled
// checker (forked with request-scoped sinks) instead of compiling anew.
func (e *Engine) coverageLinesWith(ctx context.Context, dc *diag.Collector, checker *contracts.Checker, cfgs []*lexer.Config) ([]LineCoverage, error) {
	perCfg := make([][]LineCoverage, len(cfgs))
	sp := e.opts.Telemetry.StartSpan(string(telemetry.StageCoverage))
	err := e.forEachCtx(ctx, dc, telemetry.StageCoverage, len(cfgs),
		func(i int) string { return cfgs[i].Name },
		func(i int) {
			cov := checker.Coverage(cfgs[i])
			var out []LineCoverage
			for li := range cfgs[i].Lines {
				line := &cfgs[i].Lines[li]
				if line.Meta {
					continue
				}
				lc := LineCoverage{
					File:    cfgs[i].Name,
					Line:    line.Num,
					Raw:     line.Raw,
					Covered: cov.Covered[li],
				}
				for _, cat := range contracts.Categories() {
					if cov.ByCategory[cat][li] {
						lc.Categories = append(lc.Categories, cat)
					}
				}
				out = append(out, lc)
			}
			sort.Slice(out, func(a, b int) bool { return out[a].Line < out[b].Line })
			perCfg[i] = out
		})
	sp.EndCount(len(cfgs))
	if err != nil {
		return nil, err
	}
	var all []LineCoverage
	for _, lines := range perCfg {
		all = append(all, lines...)
	}
	return all, nil
}
