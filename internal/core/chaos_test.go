package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"concord/internal/diag"
	"concord/internal/faultinject"
)

// chaosSources builds a homogeneous corpus of n small configurations
// with enough shared structure for every miner category to engage.
func chaosSources(n int) []Source {
	var out []Source
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%02d.cfg", i)
		text := fmt.Sprintf(
			"hostname r%02d\n"+
				"interface Loopback0\n"+
				"   ip address 10.0.%d.1\n"+
				"router bgp 65000\n"+
				"   router-id 10.0.%d.1\n"+
				"   vlan %d\n",
			i, i, i, 100+10*i)
		out = append(out, Source{Name: name, Text: []byte(text)})
	}
	return out
}

// contractIDs flattens a learned set to a sorted-comparable string.
func contractIDs(lr *LearnResult) string {
	ids := make([]string, 0, lr.Set.Len())
	for _, c := range lr.Set.Contracts {
		ids = append(ids, c.ID())
	}
	return strings.Join(ids, "\n")
}

// assertNoLeak polls until the goroutine count returns to the baseline.
func assertNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosLearnContainsProcessFaults is the headline containment
// scenario: 3 of 20 sources panic their processing worker; learning
// completes on the 17 survivors, reports exactly 3 source-scoped error
// diagnostics, matches a direct run over the healthy sources, and
// leaks no goroutines.
func TestChaosLearnContainsProcessFaults(t *testing.T) {
	defer faultinject.Reset()
	srcs := chaosSources(20)
	faulty := map[string]bool{"r03.cfg": true, "r07.cfg": true, "r11.cfg": true}
	injected := errors.New("injected process fault")
	faultinject.Set("core.process.source", faultinject.PanicOn(injected, "r03.cfg", "r07.cfg", "r11.cfg"))

	opts := DefaultOptions()
	opts.Parallelism = 4
	before := runtime.NumGoroutine()
	lr, err := MustNew(opts).Learn(srcs, nil)
	if err != nil {
		t.Fatalf("Learn = %v, want containment", err)
	}
	assertNoLeak(t, before)
	if lr.Stats.Configs != 17 || lr.Stats.Skipped != 3 {
		t.Errorf("Stats = %d configs, %d skipped; want 17, 3", lr.Stats.Configs, lr.Stats.Skipped)
	}
	if len(lr.Diagnostics) != 3 {
		t.Fatalf("diagnostics = %d, want 3: %+v", len(lr.Diagnostics), lr.Diagnostics)
	}
	seen := map[string]bool{}
	for _, d := range lr.Diagnostics {
		if d.Severity != diag.SevError || d.Stage != "process" {
			t.Errorf("diagnostic = %+v, want process-stage error", d)
		}
		if !faulty[d.Source] {
			t.Errorf("diagnostic attributed to %q, not a faulty source", d.Source)
		}
		if !errors.Is(d.AsError(), injected) {
			t.Errorf("diagnostic lost the injected cause: %v", d.AsError())
		}
		if d.Stack == "" {
			t.Error("diagnostic missing panic stack")
		}
		seen[d.Source] = true
	}
	if len(seen) != 3 {
		t.Errorf("diagnostics cover %d distinct sources, want 3", len(seen))
	}

	// The survivors' result is identical to learning the 17 healthy
	// sources directly with no faults in play.
	faultinject.Reset()
	var healthy []Source
	for _, s := range srcs {
		if !faulty[s.Name] {
			healthy = append(healthy, s)
		}
	}
	want, err := MustNew(opts).Learn(healthy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantIDs := contractIDs(lr), contractIDs(want); got != wantIDs {
		t.Errorf("contained run learned a different set:\ngot:\n%s\nwant:\n%s", got, wantIDs)
	}
}

// TestChaosLearnStrictFailsFast asserts strict mode converts the first
// injected fault into an error carrying the cause, with no partial
// result and no leaked workers.
func TestChaosLearnStrictFailsFast(t *testing.T) {
	defer faultinject.Reset()
	injected := errors.New("injected process fault")
	faultinject.Set("core.process.source", faultinject.PanicOn(injected, "r05.cfg"))

	opts := DefaultOptions()
	opts.Parallelism = 4
	opts.Strict = true
	before := runtime.NumGoroutine()
	lr, err := MustNew(opts).Learn(chaosSources(20), nil)
	assertNoLeak(t, before)
	if err == nil {
		t.Fatal("strict Learn succeeded despite injected fault")
	}
	if lr != nil {
		t.Error("strict Learn returned a partial result alongside the error")
	}
	if !errors.Is(err, injected) {
		t.Errorf("strict error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "r05.cfg") {
		t.Errorf("strict error does not name the faulty source: %v", err)
	}
}

// TestChaosMiningFaultContained injects a panic into one
// configuration's relational-mining pass: learning still succeeds,
// records a mine-stage diagnostic for that configuration, and the
// corpus statistics are unaffected (the source processed fine).
func TestChaosMiningFaultContained(t *testing.T) {
	defer faultinject.Reset()
	injected := errors.New("injected mining fault")
	faultinject.Set("mining.relational.config", faultinject.PanicOn(injected, "r04.cfg"))

	for _, parallelism := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Parallelism = parallelism
		lr, err := MustNew(opts).Learn(chaosSources(20), nil)
		if err != nil {
			t.Fatalf("parallelism %d: Learn = %v", parallelism, err)
		}
		if lr.Stats.Configs != 20 || lr.Stats.Skipped != 0 {
			t.Errorf("parallelism %d: stats = %+v", parallelism, lr.Stats)
		}
		var mineDiags []diag.Diagnostic
		for _, d := range lr.Diagnostics {
			if d.Stage == "mine" {
				mineDiags = append(mineDiags, d)
			}
		}
		if len(mineDiags) != 1 || mineDiags[0].Source != "r04.cfg" {
			t.Errorf("parallelism %d: mine diagnostics = %+v, want one for r04.cfg",
				parallelism, mineDiags)
		}
	}
}

// TestChaosMiningStrictAborts asserts the parallel relational miner
// propagates an injected fault as an error in strict mode.
func TestChaosMiningStrictAborts(t *testing.T) {
	defer faultinject.Reset()
	injected := errors.New("injected mining fault")
	faultinject.Set("mining.relational.config", faultinject.PanicOn(injected, "r04.cfg"))
	opts := DefaultOptions()
	opts.Parallelism = 4
	opts.Strict = true
	before := runtime.NumGoroutine()
	_, err := MustNew(opts).Learn(chaosSources(20), nil)
	assertNoLeak(t, before)
	if err == nil || !errors.Is(err, injected) {
		t.Fatalf("strict Learn = %v, want injected mining fault", err)
	}
}

// TestChaosCheckFaultContained injects a panic into one
// configuration's check pass: checking completes, that configuration
// is absent from coverage, and a check-stage diagnostic names it.
func TestChaosCheckFaultContained(t *testing.T) {
	defer faultinject.Reset()
	srcs := chaosSources(20)
	opts := DefaultOptions()
	opts.Parallelism = 4
	eng := MustNew(opts)
	lr, err := eng.Learn(srcs, nil)
	if err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected check fault")
	faultinject.Set("core.check.config", faultinject.PanicOn(injected, "r09.cfg"))
	cr, err := eng.Check(lr.Set, srcs, nil)
	if err != nil {
		t.Fatalf("Check = %v, want containment", err)
	}
	if len(cr.Diagnostics) != 1 || cr.Diagnostics[0].Source != "r09.cfg" {
		t.Fatalf("diagnostics = %+v, want one for r09.cfg", cr.Diagnostics)
	}
	if got := string(cr.Diagnostics[0].Stage); got != "check" {
		t.Errorf("diagnostic stage = %q", got)
	}
	if len(cr.Coverage.PerConfig) != 19 {
		t.Errorf("coverage covers %d configs, want 19", len(cr.Coverage.PerConfig))
	}
	for _, cc := range cr.Coverage.PerConfig {
		if cc.Name == "r09.cfg" {
			t.Error("faulty config still present in coverage")
		}
	}
}

// TestChaosMetaFaultContained injects a panic into metadata
// processing: lenient runs drop the metadata file with a diagnostic,
// strict runs abort.
func TestChaosMetaFaultContained(t *testing.T) {
	defer faultinject.Reset()
	injected := errors.New("injected meta fault")
	faultinject.Set("core.process.meta", faultinject.PanicOn(injected, "m.json"))
	meta := []Source{{Name: "m.json", Text: []byte(`{"a": 1}`)}}

	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), meta)
	if err != nil {
		t.Fatalf("Learn = %v, want containment", err)
	}
	if len(lr.Diagnostics) != 1 || lr.Diagnostics[0].Source != "m.json" {
		t.Errorf("diagnostics = %+v, want one for m.json", lr.Diagnostics)
	}

	opts := DefaultOptions()
	opts.Strict = true
	if _, err := MustNew(opts).Learn(chaosSources(20), meta); !errors.Is(err, injected) {
		t.Errorf("strict Learn = %v, want injected meta fault", err)
	}
}

// TestDiagnosticsAggregateAcrossRuns verifies a caller-attached
// collector accumulates while each result still carries only its own
// run's diagnostics.
func TestDiagnosticsAggregateAcrossRuns(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("core.process.source",
		faultinject.PanicOn(errors.New("injected"), "r01.cfg"))
	opts := DefaultOptions()
	opts.Diagnostics = diag.New()
	eng := MustNew(opts)
	for i := 0; i < 3; i++ {
		lr, err := eng.Learn(chaosSources(8), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr.Diagnostics) != 1 {
			t.Fatalf("run %d: result diagnostics = %d, want 1", i, len(lr.Diagnostics))
		}
	}
	if got := opts.Diagnostics.Len(); got != 3 {
		t.Errorf("aggregated diagnostics = %d, want 3", got)
	}
}
