package core

import (
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"concord/internal/contracts"
	"concord/internal/diag"
)

// registryFixture learns a contract set from the chaos corpus and
// returns it with a test corpus and the baseline one-shot check result.
func registryFixture(t *testing.T) (*contracts.Set, []Source, *CheckResult) {
	t.Helper()
	train := chaosSources(20)
	test := chaosSources(6)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	return lr.Set, test, cold
}

// TestRegistrySingleflight is the compile-once-serve-many gate: 64
// goroutines acquire one not-yet-resident contract set concurrently
// and each runs a check; the registry must compile exactly once, hand
// every caller the same entry, and every check must match the one-shot
// engine byte for byte. Run under -race, this also proves the shared
// compiled state is data-race free.
func TestRegistrySingleflight(t *testing.T) {
	set, test, cold := registryFixture(t)
	reg, err := NewEngineRegistry(DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 64
	entries := make([]*RegistryEntry, clients)
	results := make([]*CheckResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			en, err := reg.Acquire(context.Background(), set)
			if err != nil {
				errs[i] = err
				return
			}
			entries[i] = en
			results[i], errs[i] = en.CheckContext(context.Background(), test, nil, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if entries[i] != entries[0] {
			t.Fatalf("client %d got a different entry than client 0", i)
		}
		assertSameCheck(t, "singleflight", results[i], cold)
	}
	st := reg.Stats()
	if st.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (singleflight)", st.Compiles)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if st.Misses != 1 || st.Hits != clients-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, clients-1)
	}
}

// TestRegistryFingerprintStability: the same set always keys the same
// entry, and a changed set keys a different one.
func TestRegistryFingerprintStability(t *testing.T) {
	set, _, _ := registryFixture(t)
	reg, err := NewEngineRegistry(DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := reg.Fingerprint(set)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := reg.Fingerprint(set)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint unstable: %s != %s", fp1, fp2)
	}
	if set.Len() < 2 {
		t.Fatalf("learned set too small (%d) to derive a second set", set.Len())
	}
	smaller := &contracts.Set{Contracts: set.Contracts[:set.Len()-1]}
	fp3, err := reg.Fingerprint(smaller)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Error("distinct contract sets share a fingerprint")
	}

	en, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if en.Fingerprint() != fp1 {
		t.Errorf("entry fingerprint = %s, want %s", en.Fingerprint(), fp1)
	}
	byFP, err := reg.AcquireByFingerprint(context.Background(), fp1)
	if err != nil {
		t.Fatal(err)
	}
	if byFP != en {
		t.Error("AcquireByFingerprint returned a different entry")
	}
	if _, err := reg.AcquireByFingerprint(context.Background(), fp3); !errors.Is(err, ErrUnknownFingerprint) {
		t.Errorf("AcquireByFingerprint(non-resident) = %v, want ErrUnknownFingerprint", err)
	}
	if _, err := reg.AcquireByFingerprint(context.Background(), "zz"); !errors.Is(err, ErrUnknownFingerprint) {
		t.Errorf("AcquireByFingerprint(malformed) = %v, want ErrUnknownFingerprint", err)
	}
}

// TestRegistryLRUEvictionMidRequest bounds the registry at one entry,
// acquires a second set to evict the first, and proves the evicted
// entry's in-flight holder still completes correctly: eviction drops
// only the registry's reference, never live state.
func TestRegistryLRUEvictionMidRequest(t *testing.T) {
	set, test, cold := registryFixture(t)
	if set.Len() < 2 {
		t.Fatalf("learned set too small (%d) to derive a second set", set.Len())
	}
	other := &contracts.Set{Contracts: set.Contracts[:set.Len()-1]}

	reg, err := NewEngineRegistry(DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Acquire(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("after second acquire: %+v, want 1 eviction and 1 entry", st)
	}
	// The first entry is gone from the registry...
	if _, err := reg.AcquireByFingerprint(context.Background(), first.Fingerprint()); !errors.Is(err, ErrUnknownFingerprint) {
		t.Errorf("evicted fingerprint still resident: %v", err)
	}
	// ...but the holder's reference still serves correct results.
	got, err := first.CheckContext(context.Background(), test, nil, nil)
	if err != nil {
		t.Fatalf("CheckContext on evicted entry = %v", err)
	}
	assertSameCheck(t, "evicted-entry", got, cold)

	// Re-acquiring the evicted set compiles it anew.
	again, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if again == first {
		t.Error("re-acquire after eviction returned the stale entry")
	}
	if c := reg.Stats().Compiles; c != 3 {
		t.Errorf("compiles = %d, want 3 (set, other, set again)", c)
	}
}

// TestRegistryResidentStateStaysWarm: a second request through the same
// entry reuses the resident lexer cache and intern table rather than
// rebuilding them, and still matches the one-shot engine.
func TestRegistryResidentStateStaysWarm(t *testing.T) {
	set, test, cold := registryFixture(t)
	reg, err := NewEngineRegistry(DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	en, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := en.CheckContext(context.Background(), test, nil, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		assertSameCheck(t, "warm-request", got, cold)
	}
	if c := reg.Stats().Compiles; c != 1 {
		t.Errorf("compiles = %d after 3 requests, want 1", c)
	}
	lines, err := en.CoverageLinesContext(context.Background(), test, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustNew(DefaultOptions()).CoverageLines(set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("resident coverage diverges from one-shot:\n got %+v\nwant %+v", lines, want)
	}
}

// TestRegistryCancelledAcquire: a caller whose context is already
// cancelled gets ctx.Err back instead of blocking on the compile.
func TestRegistryCancelledAcquire(t *testing.T) {
	set, _, _ := registryFixture(t)
	reg, err := NewEngineRegistry(DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reg.Acquire(ctx, set); !errors.Is(err, context.Canceled) {
		t.Errorf("Acquire(cancelled) = %v, want context.Canceled", err)
	}
}

// TestChaosRegistryPoisonedCacheStaysCorrect extends the cache
// poisoning chaos suite to the resident path: registry entries sharing
// a poisoned artifact cache must fall back cold, answer byte-identical
// results, and surface the corruption as warning diagnostics in the
// per-request result — a damaged cache degrades a resident server's
// speed, never its answers.
func TestChaosRegistryPoisonedCacheStaysCorrect(t *testing.T) {
	set, test, cold := registryFixture(t)
	cache := openTestCache(t)
	opts := DefaultOptions()
	opts.Parallelism = 4
	opts.Artifacts = cache
	opts.Incremental = true

	reg, err := NewEngineRegistry(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	en, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the cache through the resident path, then poison every
	// entry on disk.
	if _, err := en.CheckContext(context.Background(), test, nil, nil); err != nil {
		t.Fatal(err)
	}
	files := cacheEntryFiles(t, cache)
	if len(files) == 0 {
		t.Fatal("populate run wrote no cache entries")
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("poisoned"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	before := runtime.NumGoroutine()
	got, err := en.CheckContext(context.Background(), test, nil, nil)
	if err != nil {
		t.Fatalf("CheckContext with poisoned cache = %v, want fallback", err)
	}
	assertNoLeak(t, before)
	assertSameCheck(t, "registry-poisoned", got, cold)
	var warns int
	for _, d := range got.Diagnostics {
		if d.Stage != "artifact" || d.Severity != diag.SevWarn {
			t.Errorf("unexpected diagnostic: %+v", d)
			continue
		}
		warns++
	}
	if warns == 0 {
		t.Error("poisoned cache produced no artifact diagnostics")
	}

	// The fallback repaired the entries: the next request is clean.
	again, err := en.CheckContext(context.Background(), test, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "registry-repaired", again, cold)
	if len(again.Diagnostics) != 0 {
		t.Errorf("post-repair diagnostics: %+v", again.Diagnostics)
	}
}

// TestRegistryRejectsNegativeSize covers the constructor's validation.
func TestRegistryRejectsNegativeSize(t *testing.T) {
	if _, err := NewEngineRegistry(DefaultOptions(), -1); err == nil {
		t.Fatal("NewEngineRegistry accepted a negative size")
	}
	reg, err := NewEngineRegistry(DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if reg.max != DefaultRegistryEntries {
		t.Errorf("default size = %d, want %d", reg.max, DefaultRegistryEntries)
	}
}

// TestRegistryPinBlocksEviction: a pinned entry (the serving default, a
// live job result) is never LRU-evicted no matter how many other sets
// arrive; once unpinned it competes like any other entry again.
func TestRegistryPinBlocksEviction(t *testing.T) {
	set, test, cold := registryFixture(t)
	if set.Len() < 3 {
		t.Fatalf("learned set too small (%d) to derive variant sets", set.Len())
	}
	other := &contracts.Set{Contracts: set.Contracts[:set.Len()-1]}
	third := &contracts.Set{Contracts: set.Contracts[:set.Len()-2]}

	reg, err := NewEngineRegistry(DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	en, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	reg.Pin(en)
	if _, err := reg.Acquire(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	// The pinned entry must still be fingerprint-addressable.
	if _, err := reg.AcquireByFingerprint(context.Background(), en.Fingerprint()); err != nil {
		t.Fatalf("pinned entry lost to eviction: %v", err)
	}
	if st := reg.Stats(); st.Pinned != 1 {
		t.Fatalf("stats.Pinned = %d, want 1 (%+v)", st.Pinned, st)
	}
	// And it serves byte-identical results while pinned under pressure.
	got, err := en.CheckContext(context.Background(), test, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "pinned-entry", got, cold)

	reg.Unpin(en)
	if st := reg.Stats(); st.Pinned != 0 {
		t.Fatalf("stats.Pinned = %d after Unpin, want 0", st.Pinned)
	}
	// Unpinned, it is evictable again: a newcomer displaces it.
	if _, err := reg.Acquire(context.Background(), third); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AcquireByFingerprint(context.Background(), en.Fingerprint()); !errors.Is(err, ErrUnknownFingerprint) {
		t.Errorf("unpinned entry survived eviction pressure: %v", err)
	}
}

// TestRegistryPinReinsertsEvicted: pinning an entry that was already
// evicted restores its fingerprint addressability (the hot-swap path
// pins the new default before unpinning the old, so a pin can race an
// eviction).
func TestRegistryPinReinsertsEvicted(t *testing.T) {
	set, _, _ := registryFixture(t)
	if set.Len() < 2 {
		t.Fatalf("learned set too small (%d) to derive a second set", set.Len())
	}
	other := &contracts.Set{Contracts: set.Contracts[:set.Len()-1]}
	reg, err := NewEngineRegistry(DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	en, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Acquire(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AcquireByFingerprint(context.Background(), en.Fingerprint()); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("expected %s evicted before pin: %v", en.Fingerprint(), err)
	}
	reg.Pin(en)
	defer reg.Unpin(en)
	if _, err := reg.AcquireByFingerprint(context.Background(), en.Fingerprint()); err != nil {
		t.Fatalf("pin did not restore evicted entry: %v", err)
	}
}

// TestRegistryUnpinBelowZeroPanics: unbalanced Unpin is a programming
// error, not a silent counter underflow.
func TestRegistryUnpinBelowZeroPanics(t *testing.T) {
	set, _, _ := registryFixture(t)
	reg, err := NewEngineRegistry(DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	en, err := reg.Acquire(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Unpin below zero did not panic")
		}
	}()
	reg.Unpin(en)
}
