package core

import (
	"bytes"
	"strings"
	"testing"

	"concord/internal/diag"
)

// pathologicalCases are hostile inputs the pipeline must degrade on —
// not crash, not hang, not poison the rest of the corpus.
func pathologicalCases() []struct {
	name     string
	text     []byte
	skipped  bool // file dropped from the corpus entirely
	severity diag.Severity
	contains string // expected fragment of the diagnostic message
} {
	binary := append([]byte("ELF\x00\x00\x00\x01"), bytes.Repeat([]byte{0xff, 0x00, 0x7f}, 512)...)
	mojibake := bytes.Repeat([]byte{0xfe, 0xfd, 0xfc}, 1024)
	hugeLine := append([]byte("hostname "), bytes.Repeat([]byte("x"), 10<<20)...)
	var deep bytes.Buffer
	for i := 0; i < 1000; i++ {
		deep.WriteString(strings.Repeat(" ", i))
		deep.WriteString("level\n")
	}
	return []struct {
		name     string
		text     []byte
		skipped  bool
		severity diag.Severity
		contains string
	}{
		{"binary.bin", binary, true, diag.SevError, "binary"},
		{"mojibake.cfg", mojibake, true, diag.SevError, "binary"},
		{"hugeline.cfg", hugeLine, false, diag.SevWarn, "truncated"},
		{"deep.cfg", deep.Bytes(), false, diag.SevWarn, "depth capped"},
	}
}

// TestPathologicalInputsDegrade feeds each hostile file through Learn
// alongside a healthy corpus: learning succeeds, the healthy sources
// are unaffected, and the degradation is reported as a diagnostic
// naming the file.
func TestPathologicalInputsDegrade(t *testing.T) {
	for _, tc := range pathologicalCases() {
		t.Run(tc.name, func(t *testing.T) {
			srcs := append(chaosSources(6), Source{Name: tc.name, Text: tc.text})
			lr, err := MustNew(DefaultOptions()).Learn(srcs, nil)
			if err != nil {
				t.Fatalf("Learn = %v, want degraded success", err)
			}
			wantConfigs, wantSkipped := 7, 0
			if tc.skipped {
				wantConfigs, wantSkipped = 6, 1
			}
			if lr.Stats.Configs != wantConfigs || lr.Stats.Skipped != wantSkipped {
				t.Errorf("stats = %d configs, %d skipped; want %d, %d",
					lr.Stats.Configs, lr.Stats.Skipped, wantConfigs, wantSkipped)
			}
			var found bool
			for _, d := range lr.Diagnostics {
				if d.Source != tc.name {
					t.Errorf("diagnostic for unexpected source: %+v", d)
					continue
				}
				found = true
				if d.Severity != tc.severity || !strings.Contains(d.Message, tc.contains) {
					t.Errorf("diagnostic = %+v, want severity %v containing %q",
						d, tc.severity, tc.contains)
				}
			}
			if !found {
				t.Errorf("no diagnostic named %s: %+v", tc.name, lr.Diagnostics)
			}
		})
	}
}

// TestPathologicalInputsStrict asserts strict mode refuses to silently
// degrade: every hostile input becomes a hard error naming the file.
func TestPathologicalInputsStrict(t *testing.T) {
	for _, tc := range pathologicalCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Strict = true
			srcs := append(chaosSources(6), Source{Name: tc.name, Text: tc.text})
			_, err := MustNew(opts).Learn(srcs, nil)
			if err == nil {
				t.Fatal("strict Learn succeeded on pathological input")
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("strict error does not name the file: %v", err)
			}
		})
	}
}

// TestOversizeFileSkipped drives the MaxFileSize guard with a shrunken
// limit so the test does not allocate 64 MiB.
func TestOversizeFileSkipped(t *testing.T) {
	opts := DefaultOptions()
	opts.Limits.MaxFileSize = 1 << 10
	srcs := append(chaosSources(6),
		Source{Name: "big.cfg", Text: bytes.Repeat([]byte("interface Ethernet1\n"), 200)})
	lr, err := MustNew(opts).Learn(srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Stats.Configs != 6 || lr.Stats.Skipped != 1 {
		t.Errorf("stats = %+v, want big.cfg skipped", lr.Stats)
	}
	if len(lr.Diagnostics) != 1 || lr.Diagnostics[0].Source != "big.cfg" ||
		lr.Diagnostics[0].Severity != diag.SevError {
		t.Errorf("diagnostics = %+v", lr.Diagnostics)
	}
}

// TestLineBudgetCapped drives the MaxLines guard with a shrunken limit.
func TestLineBudgetCapped(t *testing.T) {
	opts := DefaultOptions()
	opts.Limits.MaxLines = 4
	srcs := append(chaosSources(6),
		Source{Name: "many.cfg", Text: bytes.Repeat([]byte("vlan 10\n"), 50)})
	lr, err := MustNew(opts).Learn(srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range lr.Diagnostics {
		if d.Source == "many.cfg" && strings.Contains(d.Message, "line budget") {
			found = true
		}
	}
	if !found {
		t.Errorf("no line-budget diagnostic: %+v", lr.Diagnostics)
	}
}

// TestEmptyCorpus asserts learning and checking over zero sources
// complete without error or contracts.
func TestEmptyCorpus(t *testing.T) {
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(nil, nil)
	if err != nil {
		t.Fatalf("Learn(nil) = %v", err)
	}
	if lr.Set.Len() != 0 || lr.Stats.Configs != 0 || len(lr.Diagnostics) != 0 {
		t.Errorf("empty corpus learned %d contracts, stats %+v", lr.Set.Len(), lr.Stats)
	}
	cr, err := eng.Check(lr.Set, nil, nil)
	if err != nil {
		t.Fatalf("Check(empty) = %v", err)
	}
	if len(cr.Violations) != 0 {
		t.Errorf("empty check reported violations: %+v", cr.Violations)
	}
}

// TestPathologicalCheck runs Check (not just Learn) over a corpus with
// a hostile file: the healthy configs are still checked and the binary
// file is reported, not crashed on.
func TestPathologicalCheck(t *testing.T) {
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(chaosSources(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	srcs := append(chaosSources(8),
		Source{Name: "junk.bin", Text: bytes.Repeat([]byte{0x00, 0xff}, 4096)})
	cr, err := eng.Check(lr.Set, srcs, nil)
	if err != nil {
		t.Fatalf("Check = %v, want degraded success", err)
	}
	if len(cr.Coverage.PerConfig) != 8 {
		t.Errorf("coverage covers %d configs, want 8", len(cr.Coverage.PerConfig))
	}
	var found bool
	for _, d := range cr.Diagnostics {
		if d.Source == "junk.bin" {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic for junk.bin: %+v", cr.Diagnostics)
	}
}
