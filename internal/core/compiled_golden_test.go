package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"concord/internal/contracts"
	"concord/internal/lexer"
	"concord/internal/synth"
)

// goldenCorpus builds the acceptance corpus: a W4 wide-area role at
// scale 0.75 (210 configs), with contracts learned from a 40-config
// subset (~1500 contracts). Both counts exceed the PR's ≥200 floor.
func goldenCorpus(t *testing.T) ([]*lexer.Config, ProcessStats, *LearnResult) {
	t.Helper()
	role, ok := synth.RoleByName("W4", 0.75)
	if !ok {
		t.Fatal("unknown synth role W4")
	}
	ds := synth.Generate(role)
	var srcs []Source
	for _, f := range ds.Configs {
		srcs = append(srcs, Source{Name: f.Name, Text: f.Text})
	}
	eng := MustNew(DefaultOptions())
	cfgs, pstats, err := eng.ProcessContext(context.Background(), srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := eng.LearnProcessed(cfgs[:40], pstats)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) < 200 || lr.Set.Len() < 200 {
		t.Fatalf("corpus too small for acceptance: %d configs, %d contracts (need ≥200 each)",
			len(cfgs), lr.Set.Len())
	}
	return cfgs, pstats, lr
}

// TestCompiledGoldenMatchesLinear is the end-to-end golden comparison
// behind the PR's acceptance criterion: over ≥200 configs and ≥200
// contracts, the compiled (indexed) check path must produce output
// identical to the pre-PR linear scan — same violations in the same
// order, same coverage summary.
func TestCompiledGoldenMatchesLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second corpus; skipped in -short mode")
	}
	cfgs, pstats, lr := goldenCorpus(t)

	run := func(linear bool) *CheckResult {
		opts := DefaultOptions()
		opts.LinearScan = linear
		cr, err := MustNew(opts).CheckProcessed(lr.Set, cfgs, pstats)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	want := run(true)
	got := run(false)
	if len(want.Violations) == 0 {
		t.Fatal("golden corpus produced no violations; comparison is vacuous")
	}
	if !reflect.DeepEqual(want.Violations, got.Violations) {
		t.Errorf("violations differ: linear=%d compiled=%d", len(want.Violations), len(got.Violations))
		for i := range want.Violations {
			if i < len(got.Violations) && !reflect.DeepEqual(want.Violations[i], got.Violations[i]) {
				t.Errorf("first divergence at %d:\nlinear   = %+v\ncompiled = %+v",
					i, want.Violations[i], got.Violations[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(want.Coverage, got.Coverage) {
		t.Errorf("coverage differs:\nlinear   = %+v\ncompiled = %+v", want.Coverage, got.Coverage)
	}
}

// TestCheckAllDeterministic asserts byte-identical JSON output across
// repeated parallel runs: the sharded worker pool and the compiled
// engine's map-ordered buckets must not leak scheduling order into the
// report (ties are broken by file, line, then contract ID).
func TestCheckAllDeterministic(t *testing.T) {
	role, ok := synth.RoleByName("W4", 0.25)
	if !ok {
		t.Fatal("unknown synth role W4")
	}
	ds := synth.Generate(role)
	var srcs []Source
	for _, f := range ds.Configs {
		srcs = append(srcs, Source{Name: f.Name, Text: f.Text})
	}
	eng := MustNew(DefaultOptions())
	cfgs, pstats, err := eng.ProcessContext(context.Background(), srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := eng.LearnProcessed(cfgs[:20], pstats)
	if err != nil {
		t.Fatal(err)
	}

	marshal := func(cr *CheckResult) []byte {
		data, err := json.Marshal(struct {
			Violations []contracts.Violation `json:"violations"`
			Coverage   CoverageSummary       `json:"coverage"`
		}{cr.Violations, cr.Coverage})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	opts := DefaultOptions()
	opts.Parallelism = 8
	var first []byte
	for run := 0; run < 3; run++ {
		cr, err := MustNew(opts).CheckProcessed(lr.Set, cfgs, pstats)
		if err != nil {
			t.Fatal(err)
		}
		data := marshal(cr)
		if run == 0 {
			first = data
			if len(cr.Violations) == 0 {
				t.Log("warning: corpus produced no violations; determinism check covers coverage only")
			}
			continue
		}
		if !bytes.Equal(first, data) {
			t.Fatalf("run %d JSON differs from run 0 (%d vs %d bytes)", run, len(data), len(first))
		}
	}
}
