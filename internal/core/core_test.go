package core

import (
	"strings"
	"testing"

	"concord/internal/contracts"
	"concord/internal/lexer"
	"concord/internal/synth"
)

// edgeSources generates a scaled edge dataset as engine inputs.
func edgeSources(t *testing.T, name string, scale float64) ([]Source, []Source, *synth.Dataset) {
	t.Helper()
	role, ok := synth.RoleByName(name, scale)
	if !ok {
		t.Fatalf("role %s not found", name)
	}
	ds := synth.Generate(role)
	var srcs, meta []Source
	for _, f := range ds.Configs {
		srcs = append(srcs, Source{Name: f.Name, Text: f.Text})
	}
	for _, f := range ds.Meta {
		meta = append(meta, Source{Name: f.Name, Text: f.Text})
	}
	return srcs, meta, ds
}

func TestLearnAndCheckCleanCorpus(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if lr.Set.Len() == 0 {
		t.Fatal("no contracts learned")
	}
	if lr.Stats.Configs != len(srcs) || lr.Stats.Lines == 0 || lr.Stats.Patterns == 0 {
		t.Errorf("stats = %+v", lr.Stats)
	}
	cr, err := eng.Check(lr.Set, srcs, meta)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, v := range cr.Violations {
		if v.Category != contracts.CatOrdering {
			t.Errorf("clean corpus violated: %+v", v)
		}
	}
	if cr.Coverage.Percent() < 50 {
		t.Errorf("coverage = %.1f%%, want majority", cr.Coverage.Percent())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	seq := DefaultOptions()
	seq.Parallelism = 1
	par := DefaultOptions()
	par.Parallelism = 4
	a, err := MustNew(seq).Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustNew(par).Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if a.Set.Len() != b.Set.Len() {
		t.Fatalf("parallel learned %d contracts, sequential %d", b.Set.Len(), a.Set.Len())
	}
	for i := range a.Set.Contracts {
		if a.Set.Contracts[i].ID() != b.Set.Contracts[i].ID() {
			t.Fatalf("contract %d differs: %s vs %s", i,
				a.Set.Contracts[i].ID(), b.Set.Contracts[i].ID())
		}
	}
}

// TestIncidentReplays reproduces the three §5.5 incidents: Concord
// learns from known-good configurations and must flag each injected
// regression.
func TestIncidentReplays(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.8)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name, text string) []contracts.Violation {
		t.Helper()
		cr, err := eng.Check(lr.Set, []Source{{Name: name, Text: []byte(text)}}, meta)
		if err != nil {
			t.Fatal(err)
		}
		return cr.Violations
	}
	victim := string(srcs[0].Text)

	t.Run("MissingAggregate", func(t *testing.T) {
		bad, ok := synth.InjectMissingAggregate(victim)
		if !ok {
			t.Fatal("injection failed")
		}
		vs := check("incident1.cfg", bad)
		found := false
		for _, v := range vs {
			if v.Category == contracts.CatRelation && strings.Contains(v.Contract, "aggregate-address") {
				found = true
			}
			if v.Category == contracts.CatPresent && strings.Contains(v.Contract, "aggregate-address") {
				found = true
			}
		}
		if !found {
			t.Errorf("missing aggregate not flagged; violations: %d", len(vs))
		}
	})

	t.Run("RogueVlans", func(t *testing.T) {
		bad, ok := synth.InjectRogueVlans(victim, []int{4901, 4902})
		if !ok {
			t.Fatal("injection failed")
		}
		vs := check("incident2.cfg", bad)
		found := false
		for _, v := range vs {
			if v.Category == contracts.CatRelation && strings.Contains(v.Contract, "@meta") {
				found = true
			}
		}
		if !found {
			t.Errorf("rogue vlans not flagged by a metadata contract; violations: %+v", summarize(vs))
		}
	})

	t.Run("VRFOrderBreak", func(t *testing.T) {
		bad, ok := synth.InjectVRFOrderBreak(victim)
		if !ok {
			t.Fatal("injection failed")
		}
		vs := check("incident3.cfg", bad)
		found := false
		for _, v := range vs {
			if v.Category == contracts.CatOrdering && strings.Contains(v.Contract, "redistribute connected") {
				found = true
			}
		}
		if !found {
			t.Errorf("order break not flagged; violations: %+v", summarize(vs))
		}
	})
}

func summarize(vs []contracts.Violation) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, string(v.Category)+"@"+v.File)
	}
	return out
}

func TestMutationsAreDetected(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.8)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	trials := 0
	for seed := int64(1); seed <= 10; seed++ {
		for _, kind := range synth.Mutations() {
			bad, _, ok := synth.Mutate(string(srcs[1].Text), kind, seed)
			if !ok {
				continue
			}
			trials++
			cr, err := eng.Check(lr.Set, []Source{{Name: "mut.cfg", Text: []byte(bad)}}, meta)
			if err != nil {
				t.Fatal(err)
			}
			if len(cr.Violations) > 0 {
				detected++
			}
		}
	}
	if trials == 0 {
		t.Fatal("no mutations applied")
	}
	// Not every random mutation must be caught (coverage is ~85%), but
	// the majority should be.
	if float64(detected)/float64(trials) < 0.6 {
		t.Errorf("detected %d/%d mutations", detected, trials)
	}
}

func TestMetadataRelationsLearned(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range lr.Set.Contracts {
		if r, ok := c.(*contracts.Relational); ok &&
			strings.Contains(r.Pattern2, "@meta") && strings.Contains(r.Pattern1, "vlan [num]") {
			found = true
		}
	}
	if !found {
		t.Error("no vlan/metadata contract learned")
	}
}

func TestCheckWithoutMetadataStillWorks(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Checking without the metadata: @meta patterns are absent, so the
	// metadata relation fires for every vlan line.
	cr, err := eng.Check(lr.Set, srcs[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	sawMeta := false
	for _, v := range cr.Violations {
		if strings.Contains(v.Contract, "@meta") {
			sawMeta = true
		}
	}
	if !sawMeta {
		t.Error("missing metadata should violate metadata contracts")
	}
}

func TestEngineRejectsBadUserTokens(t *testing.T) {
	opts := DefaultOptions()
	opts.UserTokens = []lexer.TokenSpec{{Name: "bad", Pattern: "("}}
	if _, err := New(opts); err == nil {
		t.Error("invalid user token accepted")
	}
}

func TestCategoriesOption(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	opts := DefaultOptions()
	opts.Categories = []contracts.Category{contracts.CatPresent}
	lr, err := MustNew(opts).Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Set.Count(contracts.CatPresent) == 0 {
		t.Error("present mining disabled")
	}
	for _, c := range lr.Set.Contracts {
		if c.Category() != contracts.CatPresent {
			t.Errorf("category filter leaked %s", c.Category())
		}
	}
}

func TestMinimizationToggle(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	on := DefaultOptions()
	off := DefaultOptions()
	off.Minimize = false
	lrOn, err := MustNew(on).Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	lrOff, err := MustNew(off).Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if lrOn.Set.Count(contracts.CatRelation) >= lrOff.Set.Count(contracts.CatRelation) {
		t.Errorf("minimization did not reduce: %d vs %d",
			lrOn.Set.Count(contracts.CatRelation), lrOff.Set.Count(contracts.CatRelation))
	}
	if lrOn.Minimization.ReductionFactor() <= 1 {
		t.Errorf("reduction factor = %v", lrOn.Minimization.ReductionFactor())
	}
	if lrOff.Minimization.Before != 0 {
		t.Error("minimization ran despite being disabled")
	}
}

func TestProcessStats(t *testing.T) {
	eng := MustNew(DefaultOptions())
	cfgs, st := eng.Process([]Source{
		{Name: "a", Text: []byte("hostname A1\nvlan 2\n")},
		{Name: "b", Text: []byte("hostname B2\nvlan 3\n")},
	}, nil)
	if len(cfgs) != 2 || st.Lines != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// hostname A[num]/B[num] differ as patterns; vlan [num] shared.
	if st.Patterns != 3 {
		t.Errorf("patterns = %d, want 3", st.Patterns)
	}
	if st.Parameters != 3 {
		t.Errorf("parameters = %d, want 3", st.Parameters)
	}
}

func TestEmptyInputs(t *testing.T) {
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(nil, nil)
	if err != nil || lr.Set.Len() != 0 {
		t.Errorf("empty learn: %v, %d contracts", err, lr.Set.Len())
	}
	cr, err := eng.Check(lr.Set, nil, nil)
	if err != nil || len(cr.Violations) != 0 {
		t.Errorf("empty check: %v, %d violations", err, len(cr.Violations))
	}
}
