package core

import (
	"strings"
	"testing"

	"concord/internal/contracts"
)

// TestCoverageSoundness validates the §3.9 definition end to end: a line
// reported as covered must, when removed from the raw configuration,
// produce at least one contract violation. The analytic coverage
// computation (sole matches, adjacency simulation, sole witnesses,
// sequence breaks) must agree with actually deleting the line and
// re-running the checker.
func TestCoverageSoundness(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.8)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	checker := contracts.NewChecker(lr.Set)

	cfgs, _ := eng.Process(srcs[:1], meta)
	cfg := cfgs[0]
	cov := checker.Coverage(cfg)
	if len(cov.Covered) == 0 {
		t.Fatal("nothing covered")
	}

	raw := strings.Split(string(srcs[0].Text), "\n")
	tested := 0
	for li := range cov.Covered {
		if tested >= 60 {
			break
		}
		line := cfg.Lines[li]
		if line.Meta {
			t.Fatalf("metadata line %d marked covered", li)
		}
		// Skip block headers: removing one reparents its children, a case
		// the analytic coverage deliberately approximates (see
		// contracts.Checker.Coverage).
		if li+1 < len(cfg.Lines) && strings.HasPrefix(cfg.Lines[li+1].Pattern, line.Pattern+"/") {
			continue
		}
		// Remove the raw source line and re-check the mutated config.
		mutated := make([]string, 0, len(raw)-1)
		mutated = append(mutated, raw[:line.Num-1]...)
		mutated = append(mutated, raw[line.Num:]...)
		cr, err := eng.Check(lr.Set, []Source{
			{Name: "mutated.cfg", Text: []byte(strings.Join(mutated, "\n"))},
		}, meta)
		if err != nil {
			t.Fatal(err)
		}
		if len(cr.Violations) == 0 {
			t.Errorf("line %d (%q) is covered but its removal violates nothing",
				line.Num, line.Raw)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no covered lines tested")
	}
}

// TestCoverageExcludesMeta ensures metadata lines never count toward
// coverage numerators or denominators.
func TestCoverageExcludesMeta(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := eng.Check(lr.Set, srcs[:1], meta)
	if err != nil {
		t.Fatal(err)
	}
	cfgs, _ := eng.Process(srcs[:1], meta)
	nonMeta := 0
	for _, l := range cfgs[0].Lines {
		if !l.Meta {
			nonMeta++
		}
	}
	if cr.Coverage.TotalLines > nonMeta {
		t.Errorf("coverage denominator %d exceeds non-meta lines %d",
			cr.Coverage.TotalLines, nonMeta)
	}
	if cr.Coverage.CoveredLines > cr.Coverage.TotalLines {
		t.Errorf("covered %d > total %d", cr.Coverage.CoveredLines, cr.Coverage.TotalLines)
	}
}

// TestRobustnessOnHostileInputs feeds the full pipeline degenerate
// inputs: empty files, binary junk, enormous single lines, deeply nested
// indentation, and malformed JSON. Nothing may panic and results must be
// well-formed.
func TestRobustnessOnHostileInputs(t *testing.T) {
	hostile := []Source{
		{Name: "empty", Text: nil},
		{Name: "blank", Text: []byte("\n\n\n  \n\t\n")},
		{Name: "binary", Text: []byte{0x00, 0xff, 0x1b, 0x07, '\n', 'a', '\n'}},
		{Name: "longline", Text: []byte(strings.Repeat("10.0.0.1 ", 5000) + "\n")},
		{Name: "deep", Text: []byte(deepIndent(200))},
		{Name: "badjson", Text: []byte(`{"a": [1, 2, {"b": }`)},
		{Name: "unicode", Text: []byte("héllo wörld 10.0.0.1\n‮10.0.0.2\n")},
	}
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(hostile, hostile)
	if err != nil {
		t.Fatalf("Learn on hostile inputs: %v", err)
	}
	if _, err := eng.Check(lr.Set, hostile, hostile); err != nil {
		t.Fatalf("Check on hostile inputs: %v", err)
	}
}

func deepIndent(depth int) string {
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString(strings.Repeat(" ", i))
		sb.WriteString("level\n")
	}
	return sb.String()
}

// TestCoverageLines exercises the per-line coverage API.
func TestCoverageLines(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	eng := MustNew(DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := eng.CoverageLines(lr.Set, srcs[:2], meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no lines")
	}
	covered := 0
	for _, lc := range lines {
		if lc.File == "" || lc.Line <= 0 {
			t.Fatalf("malformed entry: %+v", lc)
		}
		if lc.Covered {
			covered++
			if len(lc.Categories) == 0 {
				t.Errorf("covered line without categories: %+v", lc)
			}
		} else if len(lc.Categories) != 0 {
			t.Errorf("uncovered line with categories: %+v", lc)
		}
	}
	if covered == 0 {
		t.Error("nothing covered")
	}
	// Line numbers are ascending within each file.
	prevFile, prevLine := "", 0
	for _, lc := range lines {
		if lc.File == prevFile && lc.Line < prevLine {
			t.Fatalf("line order broken at %+v", lc)
		}
		prevFile, prevLine = lc.File, lc.Line
	}
}
