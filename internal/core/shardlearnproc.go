// Process-per-shard learn backend (Options.ShardBackendProcess).
//
// The wire boundary is the learn shard boundary of shardlearn.go: a
// worker process streams its corpus slice through process+fold and
// ships back an exported mining.AccumulatorState plus the shard's
// corpus statistics. The parent imports each state against its own
// intern table (intern IDs never cross the boundary meaningfully — the
// codec carries a string dictionary and intern.Translator rebinds
// every reference, see internal/shardrpc/learnwire.go) and hands the
// rebuilt accumulators to the unchanged mergeLearnShards, so the
// learned set stays byte-identical to the in-process and unsharded
// paths. Failure policy is shardproc.go's: transport failures retry
// then fall into shard containment; in-band failures never retry.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"concord/internal/artifact"
	"concord/internal/diag"
	"concord/internal/mining"
	"concord/internal/shardrpc"
	"concord/internal/telemetry"
)

// runLearnShardsProcess is the process-backend twin of the in-process
// learn shard pool: one Job for the run, one Task per shard, executed
// on a shardrpc worker pool via RunLearn, each CCSL frame converted
// back into the *learnShardResult mergeLearnShards consumes.
func (e *Engine) runLearnShardsProcess(ctx context.Context, dc *diag.Collector, meta []Source, cr *corpusRun, m *mining.Miner, shards []shard, results []*learnShardResult, procProg, mineProg *progressCounter) error {
	job, err := e.buildLearnShardJob(meta, cr)
	if err != nil {
		return err
	}
	command, err := e.shardWorkerCommand()
	if err != nil {
		return err
	}
	tasks := make([]shardrpc.Task, len(shards))
	for i, sh := range shards {
		t := shardrpc.Task{Shard: sh.index}
		for _, src := range sh.sources {
			t.Sources = append(t.Sources, shardrpc.NamedBlob{Name: src.Name, Text: src.Text})
		}
		tasks[i] = t
	}
	workers := e.opts.ShardWorkers
	if workers <= 0 {
		workers = e.opts.Parallelism
	}
	popts := shardrpc.PoolOptions{
		Command:    command,
		Workers:    workers,
		MaxRetries: -1,
		FailFast:   e.opts.Strict,
		Telemetry:  e.opts.Telemetry,
		SpanPrefix: "dist.learn",
	}
	if e.dist != nil {
		popts.MaxRetries = e.dist.maxRetries
		popts.SpeculativeMultiple = e.dist.specMultiple
		popts.SpeculativeFloor = e.dist.specFloor
	}
	wres, failures, err := shardrpc.RunLearn(ctx, job, tasks, popts)
	if err != nil {
		return err
	}
	for _, f := range failures {
		label := shardLabel(shards[f.Task])
		if e.opts.Strict {
			return fmt.Errorf("core: %s stage aborted (strict): %s: worker failed after %d attempts: %w",
				telemetry.StageMine, label, f.Attempts, f.Err)
		}
		dc.Add(diag.Diagnostic{
			Severity: diag.SevError,
			Stage:    string(telemetry.StageMine),
			Source:   label,
			Message:  fmt.Sprintf("shard lost: worker failed after %d attempts", f.Attempts),
			Cause:    f.Err,
		})
	}
	for i, wr := range wres {
		if wr == nil {
			continue // failed above, or abandoned by a strict fail-fast
		}
		for _, d := range wr.Diags {
			dc.Add(d)
		}
		if wr.Err != "" {
			return errors.New(wr.Err)
		}
		if wr.Lost {
			// Worker-contained whole-shard panic (lenient): diagnostics
			// are already merged; drop the shard as the in-process pool
			// would.
			e.opts.Telemetry.Add("diag.panics", 1)
			continue
		}
		sr, err := e.wireLearnShardResult(wr, m, cr)
		if err != nil {
			label := shardLabel(shards[i])
			if e.opts.Strict {
				return fmt.Errorf("core: %s stage aborted (strict): %s: %w", telemetry.StageMine, label, err)
			}
			dc.Add(diag.Diagnostic{
				Severity: diag.SevError,
				Stage:    string(telemetry.StageMine),
				Source:   label,
				Message:  "shard lost: malformed worker result",
				Cause:    err,
			})
			continue
		}
		results[i] = sr
		// Progress is exact and global: the worker processed (folded or
		// skipped) every source in its slice, so tick both stage counters
		// once per source.
		for j := 0; j < sr.acc.NConfigs()+sr.skipped; j++ {
			procProg.tick()
			mineProg.tick()
		}
	}
	return nil
}

// buildLearnShardJob serializes the run's learn configuration: the
// shared processing fields plus the resolved mining parameters. Learn
// jobs carry no contract set.
func (e *Engine) buildLearnShardJob(meta []Source, cr *corpusRun) (*shardrpc.Job, error) {
	job, err := e.newShardJobBase(meta, cr)
	if err != nil {
		return nil, err
	}
	job.Learn = true
	job.Support = e.opts.Support
	job.Confidence = e.opts.Confidence
	job.ScoreThreshold = e.opts.ScoreThreshold
	job.MaxFanout = e.opts.MaxFanout
	job.ConstantLearning = e.opts.ConstantLearning
	for _, c := range e.opts.Categories {
		job.Categories = append(job.Categories, string(c))
	}
	return job, nil
}

// wireLearnShardResult rebuilds the in-process learnShardResult from a
// worker's CCSL frame by importing the exported accumulator state
// against the parent's intern table and miner.
func (e *Engine) wireLearnShardResult(wr *shardrpc.LearnResult, m *mining.Miner, cr *corpusRun) (*learnShardResult, error) {
	if wr.State == nil {
		return nil, errors.New("core: worker learn result carries no accumulator state")
	}
	acc, err := m.ImportAccumulator(wr.State, cr.interns)
	if err != nil {
		return nil, err
	}
	sr := &learnShardResult{
		acc:      acc,
		skipped:  wr.Skipped,
		lines:    wr.Lines,
		patterns: make(map[string]int, len(wr.Patterns)),
	}
	for p, n := range wr.Patterns {
		sr.patterns[p] = n
	}
	return sr, nil
}

// --- worker side ---

// runLearn executes one learn shard Task to a LearnResult, containing
// faults the way the in-process pool does: strict faults become
// in-band Err (never retried by the parent), a lenient whole-shard
// panic becomes Lost plus the containment diagnostic.
func (wk *shardWorker) runLearn(t *shardrpc.Task) (res *shardrpc.LearnResult) {
	sh := shard{index: t.Shard}
	for _, s := range t.Sources {
		sh.sources = append(sh.sources, Source{Name: s.Name, Text: s.Text})
	}
	res = &shardrpc.LearnResult{Shard: t.Shard}
	// Progress is parent-side; these counters only satisfy runLearnShard's
	// signature (Progress is nil in a worker, so tick is a no-op).
	procProg := &progressCounter{e: wk.eng, stage: telemetry.StageProcess, total: len(sh.sources)}
	mineProg := &progressCounter{e: wk.eng, stage: telemetry.StageMine, total: len(sh.sources)}
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(string(telemetry.StageMine), shardLabel(sh), r)
			if wk.eng.opts.Strict {
				*res = shardrpc.LearnResult{Shard: t.Shard,
					Err:   fmt.Sprintf("core: %s stage aborted (strict): %v", telemetry.StageMine, d.AsError()),
					Stack: d.Stack}
				return
			}
			*res = shardrpc.LearnResult{Shard: t.Shard, Lost: true, Diags: []diag.Diagnostic{d}}
		}
		res.Diags = append(wk.takeDiags(), res.Diags...)
	}()
	sr, err := wk.eng.runLearnShard(context.Background(), wk.dc, wk.cr, wk.miner, sh, procProg, mineProg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.State = sr.acc.Export()
	res.Skipped = sr.skipped
	res.Lines = sr.lines
	if len(sr.patterns) > 0 {
		res.Patterns = sr.patterns
	}
	return res
}

// writeLearnResult is workerChaos.writeResult for learn frames: the
// same torn-write corruption on the configured shard's first attempt,
// which the parent's checksum must catch and retry, never half-import.
func (c workerChaos) writeLearnResult(w io.Writer, t *shardrpc.Task, res *shardrpc.LearnResult) error {
	if t.Shard != c.corruptShard || t.Attempt != 0 {
		return shardrpc.WriteLearnResult(w, res)
	}
	frame := artifact.EncodeFrame(shardrpc.LearnResultMagic, shardrpc.SchemaVersion, shardrpc.EncodeLearnResult(res))
	frame[len(frame)-1] ^= 0x40
	_, err := w.Write(frame)
	return err
}
