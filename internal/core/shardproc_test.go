package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/telemetry"
)

// TestMain doubles as the shard-worker trampoline: the process pool
// launches this test binary with CONCORD_SHARD_WORKER=1, and the run
// must turn into a worker loop instead of a second test suite.
func TestMain(m *testing.M) {
	if os.Getenv("CONCORD_SHARD_WORKER") == "1" {
		if err := RunShardWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distEngine builds an engine routed through the process backend, with
// this test binary serving as the shard-worker command.
func distEngine(t *testing.T, shards, workers int, mutate func(*Options)) *Engine {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Shards = shards
	opts.ShardWorkers = workers
	opts.ShardBackend = ShardBackendProcess
	opts.ShardWorkerCommand = []string{exe}
	if mutate != nil {
		mutate(&opts)
	}
	eng := MustNew(opts)
	// Speculation off by default: chaos tests below re-enable it with
	// deliberate thresholds, everything else wants determinism.
	eng.dist = &distPolicy{maxRetries: 2, specMultiple: -1}
	return eng
}

// TestDistProcessMatchesInProcess is the cross-backend differential
// gate: at every (shards, workers) combination the process backend
// must serialize byte-identical to the unsharded in-process driver,
// merged cross-config Unique violations included.
func TestDistProcessMatchesInProcess(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(30), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	dup := 0
	for _, v := range base.Violations {
		if strings.Contains(v.Detail, "duplicates") {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("baseline found no cross-config duplicates; the corpus does not exercise the combiner")
	}
	want := checkJSON(t, base)
	for _, shards := range []int{1, 3, 16} {
		for _, workers := range []int{1, 4} {
			rec := telemetry.NewRecorder()
			eng := distEngine(t, shards, workers, func(o *Options) { o.Telemetry = rec })
			got, err := eng.Check(lr.Set, test, nil)
			if err != nil {
				t.Fatalf("process backend %d shards / %d workers: %v", shards, workers, err)
			}
			if gotJSON := checkJSON(t, got); gotJSON != want {
				t.Errorf("%d shards / %d workers diverge from the in-process driver:\n got %s\nwant %s",
					shards, workers, gotJSON, want)
			}
			rep := rec.Snapshot()
			wantShards := int64(shards)
			if shards > len(test) {
				wantShards = int64(len(test))
			}
			if n := rep.Counters["shard.dispatches"]; n != wantShards {
				t.Errorf("%d shards / %d workers: shard.dispatches = %d, want %d", shards, workers, n, wantShards)
			}
			spans := 0
			for _, sp := range rep.Spans {
				if strings.HasPrefix(sp.Name, "dist.shard[") {
					spans++
				}
			}
			if int64(spans) != wantShards {
				t.Errorf("%d shards / %d workers: %d dist.shard spans, want %d", shards, workers, spans, wantShards)
			}
		}
	}
}

// TestDistProcessWarmReplay runs the process backend against a shared
// artifact cache: the cold distributed run must match the in-process
// driver, a second warm distributed run must replay identically, and
// an in-process warm run over the same cache must hit the artifacts
// the workers wrote (proving the fingerprints agree across the
// process boundary).
func TestDistProcessWarmReplay(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(24)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := checkJSON(t, base)

	cache := openTestCache(t)
	shared := func(o *Options) { o.Artifacts = cache; o.Incremental = true }
	cold, err := distEngine(t, 3, 2, shared).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := checkJSON(t, cold); got != want {
		t.Errorf("cold distributed run diverges:\n got %s\nwant %s", got, want)
	}
	warm, err := distEngine(t, 3, 2, shared).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := checkJSON(t, warm); got != want {
		t.Errorf("warm distributed run diverges:\n got %s\nwant %s", got, want)
	}
	// Worker-side counters never reach this process; the proof that
	// workers populated the cache is an in-process warm run hitting it.
	eng, rec := warmEngine(t, cache, true)
	rep, err := eng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "in-process warm after distributed cold", rep, base)
	if hits := rec.Counter("artifact.cache_hits"); hits == 0 {
		t.Error("in-process warm run hit no artifacts; workers did not populate the shared cache")
	}
}

// TestDistWorkerCrashRetried SIGKILLs the worker holding shard 1 on
// its first attempt: the scheduler must respawn and re-dispatch, and
// the final report must be byte-identical to the in-process driver's.
func TestDistWorkerCrashRetried(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_CRASH_SHARD", "1")
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	got, err := distEngine(t, 4, 2, func(o *Options) { o.Telemetry = rec }).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("check with one worker crash = %v, want retried success", err)
	}
	if gotJSON, want := checkJSON(t, got), checkJSON(t, base); gotJSON != want {
		t.Errorf("crash-retried run diverges:\n got %s\nwant %s", gotJSON, want)
	}
	if n := rec.Counter("worker.crashes"); n < 1 {
		t.Errorf("worker.crashes = %d, want >= 1", n)
	}
	if n := rec.Counter("shard.retries"); n < 1 {
		t.Errorf("shard.retries = %d, want >= 1", n)
	}
	if n := rec.Counter("worker.spawns"); n < 2 {
		t.Errorf("worker.spawns = %d, want >= 2 (the crashed worker was replaced)", n)
	}
}

// TestChaosDistWorkerCrashExhausted crashes shard 1's worker on every
// attempt. Lenient mode survives on the other shards with the PR 8
// containment shape (lost shard counted skipped, one diagnostic);
// strict mode fails fast.
func TestChaosDistWorkerCrashExhausted(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_CRASH_SHARD", "1")
	t.Setenv("CONCORD_SHARDRPC_CRASH_MODE", "always")
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)

	got, err := distEngine(t, 4, 2, nil).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("lenient distributed check = %v, want degradation", err)
	}
	if got.Stats.Configs != 30 || got.Stats.Skipped != 10 {
		t.Errorf("stats = %d configs/%d skipped, want 30/10 (one lost shard of 10)", got.Stats.Configs, got.Stats.Skipped)
	}
	found := false
	for _, d := range got.Diagnostics {
		if strings.Contains(d.Message, "worker failed") && strings.Contains(d.Source, "shard 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the lost shard: %+v", got.Diagnostics)
	}

	strict, err := distEngine(t, 4, 2, func(o *Options) { o.Strict = true }).Check(lr.Set, test, nil)
	if err == nil {
		t.Fatalf("strict distributed check completed (%+v), want fail-fast error", strict.Stats)
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("strict error = %v, want strict-mode abort", err)
	}
}

// TestChaosDistCorruptResultFrame makes shard 1's worker emit a
// bit-flipped result frame on the first attempt: the checksum must
// reject it, the shard must be retried, and no wrong bytes may reach
// the report.
func TestChaosDistCorruptResultFrame(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_CORRUPT_SHARD", "1")
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	got, err := distEngine(t, 4, 2, func(o *Options) { o.Telemetry = rec }).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("check with one corrupt frame = %v, want retried success", err)
	}
	if gotJSON, want := checkJSON(t, got), checkJSON(t, base); gotJSON != want {
		t.Errorf("corrupt-frame run diverges:\n got %s\nwant %s", gotJSON, want)
	}
	if n := rec.Counter("shard.retries"); n < 1 {
		t.Errorf("shard.retries = %d, want >= 1 (corrupt frame must trigger a retry)", n)
	}
}

// TestDistStragglerSpeculated stalls shard 0's first attempt well past
// the speculation threshold: a twin attempt must win, the stalled
// original must be killed, and the output must stay byte-identical.
func TestDistStragglerSpeculated(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_STALL_SHARD", "0")
	t.Setenv("CONCORD_SHARDRPC_STALL_MS", "20000")
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	eng := distEngine(t, 4, 2, func(o *Options) { o.Telemetry = rec })
	eng.dist = &distPolicy{maxRetries: 2, specMultiple: 2, specFloor: 100 * time.Millisecond}
	start := time.Now()
	got, err := eng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("check with one straggler = %v, want speculated success", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("run took %v; speculation did not cut the 20s straggler short", elapsed)
	}
	if gotJSON, want := checkJSON(t, got), checkJSON(t, base); gotJSON != want {
		t.Errorf("speculated run diverges:\n got %s\nwant %s", gotJSON, want)
	}
	if n := rec.Counter("shard.speculative_wins"); n != 1 {
		t.Errorf("shard.speculative_wins = %d, want 1", n)
	}
}

// childWorkers scans /proc for live children of this process — after a
// distributed run drains, no worker may be left behind.
func childWorkers(t *testing.T) []int {
	t.Helper()
	entries, err := os.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	me := os.Getpid()
	var kids []int
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		stat, err := os.ReadFile(filepath.Join("/proc", e.Name(), "stat"))
		if err != nil {
			continue // raced with exit
		}
		// Field 4 of /proc/<pid>/stat is the ppid; the comm field (2)
		// is parenthesized and may embed spaces, so scan past it.
		s := string(stat)
		close := strings.LastIndexByte(s, ')')
		if close < 0 {
			continue
		}
		fields := strings.Fields(s[close+1:])
		if len(fields) < 2 {
			continue
		}
		if ppid, err := strconv.Atoi(fields[1]); err == nil && ppid == me {
			kids = append(kids, pid)
		}
	}
	return kids
}

// TestDistNoOrphansNoLeaks runs the process backend twice (clean and
// crashing) and requires every worker process reaped and every
// scheduler goroutine joined once Check returns.
func TestDistNoOrphansNoLeaks(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("orphan scan reads /proc")
	}
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	before := runtime.NumGoroutine()

	if _, err := distEngine(t, 4, 2, nil).Check(lr.Set, test, nil); err != nil {
		t.Fatal(err)
	}
	t.Setenv("CONCORD_SHARDRPC_CRASH_SHARD", "1")
	t.Setenv("CONCORD_SHARDRPC_CRASH_MODE", "always")
	if _, err := distEngine(t, 4, 2, nil).Check(lr.Set, test, nil); err != nil {
		t.Fatal(err)
	}

	assertNoLeak(t, before)
	deadline := time.Now().Add(2 * time.Second)
	for {
		kids := childWorkers(t)
		if len(kids) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker processes orphaned after drain: %v", kids)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestProcessBackendOptionValidation: options that cannot cross a
// process boundary (functions) must be rejected up front, as must an
// unknown backend name.
func TestProcessBackendOptionValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.ShardBackend = "threads"
	if _, err := New(opts); err == nil {
		t.Error("New accepted an unknown shard backend")
	}

	opts = DefaultOptions()
	opts.ShardBackend = ShardBackendProcess
	opts.UserTokens = []lexer.TokenSpec{{
		Name:    "odd",
		Pattern: `odd[0-9]+`,
		Parse:   func(s string) (netdata.Value, error) { return nil, nil },
	}}
	if _, err := New(opts); err == nil {
		t.Error("New accepted a custom Parse func on the process backend")
	}

	opts = DefaultOptions()
	opts.ShardBackend = ShardBackendProcess
	opts.UserTokens = []lexer.TokenSpec{{Name: "esi", Pattern: `esi-[0-9]+`}}
	if _, err := New(opts); err != nil {
		t.Errorf("New rejected a declarative user token on the process backend: %v", err)
	}
}
