package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"concord/internal/telemetry"
)

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Support: -1, Confidence: 0.9},
		{Support: 5, Confidence: -0.5},
		{Support: 5, Confidence: 1.5},
		{Support: 5, Confidence: 0.9, ScoreThreshold: -1},
		{Support: 5, Confidence: 0.9, MaxFanout: -1},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", o)
		}
		if _, err := New(o); err == nil {
			t.Errorf("New accepted %+v", o)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("DefaultOptions rejected: %v", err)
	}
	// The zero Options value still selects defaults in New, preserving
	// the seed behavior relied on by harness callers.
	if _, err := New(Options{}); err != nil {
		t.Errorf("New(Options{}) = %v, want defaults", err)
	}
}

func TestLearnContextCancelledBeforeStart(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.25)
	eng := MustNew(DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.LearnContext(ctx, srcs, meta); !errors.Is(err, context.Canceled) {
		t.Errorf("LearnContext = %v, want context.Canceled", err)
	}
	if _, err := eng.CheckContext(ctx, nil, srcs, meta); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckContext = %v, want context.Canceled", err)
	}
	if _, _, err := eng.ProcessContext(ctx, srcs, meta); !errors.Is(err, context.Canceled) {
		t.Errorf("ProcessContext = %v, want context.Canceled", err)
	}
}

// TestLearnContextCancelledMidMining cancels during the mining stage
// and asserts the pipeline aborts promptly with ctx.Err() and leaks no
// worker goroutines.
func TestLearnContextCancelledMidMining(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	opts := DefaultOptions()
	opts.Parallelism = 4
	before := runtime.NumGoroutine()

	// Cancel as soon as the mining stage reports its first unit of
	// progress, so cancellation lands mid-stage, not before it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts.Progress = func(stage telemetry.Stage, done, total int) {
		if stage == telemetry.StageMine {
			once.Do(cancel)
		}
	}
	eng := MustNew(opts)
	start := time.Now()
	_, err := eng.LearnContext(ctx, srcs, meta)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("LearnContext = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %v", d)
	}

	// Worker goroutines drain synchronously before LearnContext
	// returns; allow the runtime a moment to reap exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCheckContextCancelledMidCheck(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.5)
	opts := DefaultOptions()
	opts.Parallelism = 4
	eng := MustNew(opts)
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts.Progress = func(stage telemetry.Stage, done, total int) {
		if stage == telemetry.StageCheck {
			once.Do(cancel)
		}
	}
	eng2 := MustNew(opts)
	if _, err := eng2.CheckContext(ctx, lr.Set, srcs, meta); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckContext = %v, want context.Canceled", err)
	}
}

// TestProgressReportsEveryStage verifies the Progress hook sees each
// stage complete and that done counts are monotone per stage and reach
// their totals.
func TestProgressReportsEveryStage(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.25)
	opts := DefaultOptions()
	opts.Parallelism = 4
	type prog struct{ done, total int }
	seen := make(map[telemetry.Stage]prog)
	opts.Progress = func(stage telemetry.Stage, done, total int) {
		p := seen[stage]
		if done > p.done {
			p.done = done
		}
		p.total = total
		seen[stage] = p
	}
	eng := MustNew(opts)
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Check(lr.Set, srcs, meta); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []telemetry.Stage{
		telemetry.StageProcess, telemetry.StageMine,
		telemetry.StageMinimize, telemetry.StageCheck,
	} {
		p, ok := seen[stage]
		if !ok {
			t.Errorf("stage %s never reported progress", stage)
			continue
		}
		if p.done != p.total || p.total == 0 {
			t.Errorf("stage %s finished at %d/%d", stage, p.done, p.total)
		}
	}
}

// TestTelemetryCoversPipeline runs learn+check with a recorder and
// asserts the per-stage spans and the miner/checker counters landed.
func TestTelemetryCoversPipeline(t *testing.T) {
	srcs, meta, _ := edgeSources(t, "E1", 0.25)
	opts := DefaultOptions()
	opts.Telemetry = telemetry.NewRecorder()
	eng := MustNew(opts)
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Check(lr.Set, srcs, meta); err != nil {
		t.Fatal(err)
	}
	rep := opts.Telemetry.Snapshot()

	spans := make(map[string]int)
	for _, sp := range rep.Spans {
		spans[sp.Name]++
		if sp.WallMS < 0 {
			t.Errorf("span %s has negative wall time", sp.Name)
		}
	}
	for _, name := range []string{
		"process", "mine", "mine/stats", "mine/present", "mine/ordering",
		"mine/type", "mine/sequence", "mine/unique", "mine/relation",
		"minimize", "check",
	} {
		if spans[name] == 0 {
			t.Errorf("missing span %q (have %v)", name, spans)
		}
	}
	for _, counter := range []string{
		"mine.present.candidates", "mine.present.accepted",
		"mine.relation.candidates", "mine.relation.accepted",
		"check.contracts_evaluated",
	} {
		if rep.Counters[counter] == 0 {
			t.Errorf("counter %q is zero", counter)
		}
	}
	if rep.Gauges["corpus.configs"] != float64(len(srcs)) {
		t.Errorf("corpus.configs gauge = %v, want %d", rep.Gauges["corpus.configs"], len(srcs))
	}
	// Witness-cache instrumentation: the checker must report lookups
	// once at least one relational contract was evaluated.
	if rep.Counters["check.witness_cache.hits"]+rep.Counters["check.witness_cache.misses"] == 0 {
		t.Error("witness cache counters never recorded")
	}
}
