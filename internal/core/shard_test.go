package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"concord/internal/faultinject"
	"concord/internal/telemetry"
)

// shardEngine builds an engine routed through the sharded driver.
func shardEngine(t *testing.T, shards, workers int, mutate func(*Options)) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Shards = shards
	opts.ShardWorkers = workers
	if mutate != nil {
		mutate(&opts)
	}
	return MustNew(opts)
}

// shardCorpus plants violations that only a corpus-wide view can see:
// distant configurations duplicating router-ids and vlans, so any
// shard split separates a witness from its duplicates.
func shardCorpus(n int) []Source {
	srcs := chaosSources(n)
	for i := range srcs {
		if i > 0 && i%7 == 6 {
			// Reuse the router-id of a config several shards away.
			text := string(srcs[i].Text)
			text = strings.Replace(text,
				fmt.Sprintf("router-id 10.0.%d.1", i),
				fmt.Sprintf("router-id 10.0.%d.1", i/7), 1)
			srcs[i].Text = []byte(text)
		}
	}
	return srcs
}

// checkJSON renders a CheckResult the way the CLI does: canonical
// JSON, which is the byte-identity gate between drivers.
func checkJSON(t *testing.T, res *CheckResult) string {
	t.Helper()
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedMatchesUnsharded is the differential gate for the sharded
// driver: for shard counts {1, 3, 16} the full CheckResult — merged
// cross-config Unique violations included — must serialize to JSON
// byte-identical to the unsharded driver's.
func TestShardedMatchesUnsharded(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(30), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	dup := 0
	for _, v := range base.Violations {
		if strings.Contains(v.Detail, "duplicates") {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("baseline found no cross-config duplicates; the corpus does not exercise the combiner")
	}
	want := checkJSON(t, base)
	for _, shards := range []int{1, 3, 16} {
		got, err := shardEngine(t, shards, 4, nil).Check(lr.Set, test, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gj := checkJSON(t, got); gj != want {
			t.Errorf("shards=%d: output diverges from unsharded driver:\n got %s\nwant %s", shards, gj, want)
		}
	}
}

// TestShardedEmptyAndTinyCorpus exercises the partition edges: fewer
// sources than shards, a single source, and an empty corpus.
func TestShardedEmptyAndTinyCorpus(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 3} {
		test := chaosSources(n)
		base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := shardEngine(t, 16, 4, nil).Check(lr.Set, test, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if gj, want := checkJSON(t, got), checkJSON(t, base); gj != want {
			t.Errorf("n=%d: output diverges:\n got %s\nwant %s", n, gj, want)
		}
	}
}

// TestShardedWarmReplayMatchesCold composes sharding with the artifact
// cache: a sharded incremental run over a corpus populated by the
// unsharded driver replays every lex and check artifact and still
// produces identical output — shard boundaries are invisible to the
// cache.
func TestShardedWarmReplayMatchesCold(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(24)
	cold, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t)
	popEng, _ := warmEngine(t, cache, true)
	populate, err := popEng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "populate", populate, cold)

	opts := DefaultOptions()
	opts.Shards = 5
	opts.ShardWorkers = 3
	opts.Artifacts = cache
	opts.Incremental = true
	rec := telemetry.NewRecorder()
	opts.Telemetry = rec
	warm, err := MustNew(opts).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "sharded-warm", warm, cold)
	if gj, want := checkJSON(t, warm), checkJSON(t, cold); gj != want {
		t.Errorf("sharded warm output diverges:\n got %s\nwant %s", gj, want)
	}
	if hits, want := rec.Counter("artifact.cache_hits"), int64(2*len(test)); hits != want {
		t.Errorf("sharded warm cache hits = %d, want %d", hits, want)
	}
	if misses := rec.Counter("artifact.cache_misses"); misses != 0 {
		t.Errorf("sharded warm cache misses = %d, want 0", misses)
	}
	m, err := cache.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Configs) != len(test) {
		t.Fatalf("manifest has %d configs, want %d", len(m.Configs), len(test))
	}
	for i, mc := range m.Configs {
		if mc.Name != test[i].Name {
			t.Fatalf("manifest entry %d = %s, want corpus order (%s)", i, mc.Name, test[i].Name)
		}
		if !mc.LexHit || !mc.CheckHit {
			t.Errorf("manifest entry %s: lex_hit=%v check_hit=%v, want both true", mc.Name, mc.LexHit, mc.CheckHit)
		}
	}
}

// progressLog records Options.Progress callbacks and asserts each
// stage's (done, total) stream is the monotonic global sequence
// 1..total over a constant total.
type progressLog struct {
	mu   sync.Mutex
	seen map[telemetry.Stage][][2]int
}

func newProgressLog() *progressLog {
	return &progressLog{seen: make(map[telemetry.Stage][][2]int)}
}

func (p *progressLog) record(stage telemetry.Stage, done, total int) {
	p.mu.Lock()
	p.seen[stage] = append(p.seen[stage], [2]int{done, total})
	p.mu.Unlock()
}

func (p *progressLog) assertMonotonic(t *testing.T, stage telemetry.Stage, total int) {
	t.Helper()
	p.mu.Lock()
	ticks := p.seen[stage]
	p.mu.Unlock()
	if len(ticks) != total {
		t.Errorf("%s: %d progress ticks, want %d", stage, len(ticks), total)
		return
	}
	for i, tick := range ticks {
		if tick[0] != i+1 {
			t.Errorf("%s: tick %d reported done=%d, want monotonic global %d", stage, i, tick[0], i+1)
			return
		}
		if tick[1] != total {
			t.Errorf("%s: tick %d reported total=%d, want constant %d", stage, i, tick[1], total)
			return
		}
	}
}

// TestShardedProgressMonotonic asserts concurrent shards report one
// global monotonic (done, total) stream per stage — not per-shard
// restarts — and that an incremental (warm) sharded run does the same.
func TestShardedProgressMonotonic(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(60)
	cache := openTestCache(t)
	for _, pass := range []string{"cold", "warm"} {
		plog := newProgressLog()
		opts := DefaultOptions()
		opts.Shards = 7
		opts.ShardWorkers = 4
		opts.Artifacts = cache
		opts.Incremental = true
		opts.Progress = plog.record
		if _, err := MustNew(opts).Check(lr.Set, test, nil); err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		plog.assertMonotonic(t, telemetry.StageProcess, len(test))
		plog.assertMonotonic(t, telemetry.StageCheck, len(test))
	}
}

// TestShardedConcurrentShards drives many shards across many workers
// (run under -race by CI) and checks the merged result is still
// identical to the unsharded driver's.
func TestShardedConcurrentShards(t *testing.T) {
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(96)
	base, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := checkJSON(t, base)
	before := runtime.NumGoroutine()
	got, err := shardEngine(t, 16, 8, nil).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertNoLeak(t, before)
	if gj := checkJSON(t, got); gj != want {
		t.Errorf("concurrent sharded output diverges:\n got %s\nwant %s", gj, want)
	}
}

// TestChaosShardPanicContained injects a panic into one whole shard
// (the faultinject site models a crashed shard worker). Lenient mode
// completes on the surviving shards with one error diagnostic and the
// lost shard's sources counted as skipped; strict mode fails fast.
func TestChaosShardPanicContained(t *testing.T) {
	defer faultinject.Reset()
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(40)
	faultinject.Set("core.shard", faultinject.PanicOn("shard worker crashed", "1"))

	got, err := shardEngine(t, 4, 2, nil).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("lenient sharded check = %v, want degradation", err)
	}
	if got.Stats.Configs != 30 || got.Stats.Skipped != 10 {
		t.Errorf("stats = %d configs/%d skipped, want 30/10 (one lost shard of 10)", got.Stats.Configs, got.Stats.Skipped)
	}
	found := false
	for _, d := range got.Diagnostics {
		if strings.Contains(d.Message, "shard worker crashed") && strings.Contains(d.Source, "shard 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the contained shard panic: %+v", got.Diagnostics)
	}

	strict, err := shardEngine(t, 4, 2, func(o *Options) { o.Strict = true }).Check(lr.Set, test, nil)
	if err == nil {
		t.Fatalf("strict sharded check completed (%+v), want fail-fast error", strict.Stats)
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("strict error = %v, want strict-mode abort", err)
	}
}

// TestChaosShardConfigPanicContained injects a per-config panic inside
// a sharded run: only that configuration is lost, mirroring the
// unsharded worker pool's containment granularity.
func TestChaosShardConfigPanicContained(t *testing.T) {
	defer faultinject.Reset()
	lr, err := MustNew(DefaultOptions()).Learn(chaosSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	test := shardCorpus(24)
	victim := test[13].Name
	faultinject.Set("core.check.config", faultinject.PanicOn("config check crashed", victim))

	got, err := shardEngine(t, 4, 2, nil).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("lenient sharded check = %v, want degradation", err)
	}
	if got.Stats.Configs != len(test) {
		t.Errorf("stats.Configs = %d, want %d (a check panic does not drop the config from the corpus)", got.Stats.Configs, len(test))
	}
	if len(got.Coverage.PerConfig) != len(test)-1 {
		t.Errorf("coverage covers %d configs, want %d (victim excluded)", len(got.Coverage.PerConfig), len(test)-1)
	}
	found := false
	for _, d := range got.Diagnostics {
		if strings.Contains(d.Message, "config check crashed") && d.Source == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the contained config panic: %+v", got.Diagnostics)
	}
}

// TestShardOptionsValidate covers the new knobs' validation and the
// partition helper's edges.
func TestShardOptionsValidate(t *testing.T) {
	for _, bad := range []func(*Options){
		func(o *Options) { o.Shards = -1 },
		func(o *Options) { o.ShardWorkers = -2 },
	} {
		opts := DefaultOptions()
		bad(&opts)
		if _, err := New(opts); err == nil {
			t.Error("New accepted negative shard options")
		}
	}
	srcs := chaosSources(10)
	for _, tc := range []struct{ n, wantShards int }{
		{1, 1}, {3, 3}, {10, 10}, {16, 10}, {0, 1},
	} {
		shards := makeShards(srcs, tc.n)
		if len(shards) != tc.wantShards {
			t.Errorf("makeShards(10, %d) = %d shards, want %d", tc.n, len(shards), tc.wantShards)
		}
		total := 0
		last := ""
		for _, sh := range shards {
			total += len(sh.sources)
			for _, s := range sh.sources {
				if s.Name <= last {
					t.Fatalf("makeShards(10, %d): corpus order broken at %s", tc.n, s.Name)
				}
				last = s.Name
			}
		}
		if total != len(srcs) {
			t.Errorf("makeShards(10, %d) covers %d sources, want %d", tc.n, total, len(srcs))
		}
	}
}

// TestMakeShardsProperty checks the partition invariants over a
// randomized corpus-length/shard-count grid: shards are contiguous
// corpus slices, cover every source exactly once, never exceed the
// requested count, and never differ in size by more than one.
func TestMakeShardsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	type dims struct{ sources, shards int }
	cases := []dims{
		{0, 1}, {0, 5}, {1, 1}, {1, 8}, {2, 3}, {7, 7}, {8, 3}, {40, 16},
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, dims{rng.Intn(300), 1 + rng.Intn(40)})
	}
	for _, tc := range cases {
		srcs := chaosSources(tc.sources)
		shards := makeShards(srcs, tc.shards)
		if len(shards) > tc.shards {
			t.Fatalf("makeShards(%d, %d) produced %d shards", tc.sources, tc.shards, len(shards))
		}
		seen, minSize, maxSize := 0, len(srcs)+1, 0
		for _, sh := range shards {
			n := len(sh.sources)
			if n == 0 {
				t.Fatalf("makeShards(%d, %d): empty shard %d", tc.sources, tc.shards, sh.index)
			}
			// Contiguity and no overlap: each shard must start exactly
			// where the previous one ended (aliasing the corpus slice).
			if &sh.sources[0] != &srcs[seen] {
				t.Fatalf("makeShards(%d, %d): shard %d is not the contiguous continuation at offset %d",
					tc.sources, tc.shards, sh.index, seen)
			}
			seen += n
			if n < minSize {
				minSize = n
			}
			if n > maxSize {
				maxSize = n
			}
		}
		if seen != len(srcs) {
			t.Fatalf("makeShards(%d, %d) covers %d sources", tc.sources, tc.shards, seen)
		}
		if len(shards) > 0 && maxSize-minSize > 1 {
			t.Fatalf("makeShards(%d, %d): size skew %d..%d exceeds 1", tc.sources, tc.shards, minSize, maxSize)
		}
	}
}
