package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"concord/internal/synth"
)

// TestLearnGoldenFastMatchesBaseline is the learn-side golden
// comparison behind PR 4's acceptance criterion: over the W4 synth
// corpus, the fast learn path (memoized single-pass lexer, lex cache,
// interned pattern store, ID-keyed stats and relational tables) must
// mine a contract set that is byte-identical, as JSON, to the baseline
// path (LexLinear, no cache, string-keyed mining).
func TestLearnGoldenFastMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second corpus; skipped in -short mode")
	}
	role, ok := synth.RoleByName("W4", 0.75)
	if !ok {
		t.Fatal("unknown synth role W4")
	}
	ds := synth.Generate(role)
	var srcs []Source
	for _, f := range ds.Configs {
		srcs = append(srcs, Source{Name: f.Name, Text: f.Text})
	}

	run := func(baseline bool) ([]byte, int) {
		opts := DefaultOptions()
		opts.LearnBaseline = baseline
		eng := MustNew(opts)
		cfgs, pstats, err := eng.ProcessContext(context.Background(), srcs, nil)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := eng.LearnProcessed(cfgs[:40], pstats)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(lr.Set)
		if err != nil {
			t.Fatal(err)
		}
		return data, lr.Set.Len()
	}

	want, wantN := run(true)
	got, gotN := run(false)
	if wantN < 200 {
		t.Fatalf("baseline mined only %d contracts; comparison too small to be meaningful", wantN)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("mined contract sets differ: baseline=%d contracts (%d bytes), fast=%d contracts (%d bytes)",
			wantN, len(want), gotN, len(got))
		// Locate the first divergent contract for the failure report.
		var ws, gs []json.RawMessage
		if json.Unmarshal(want, &ws) == nil && json.Unmarshal(got, &gs) == nil {
			n := min(len(ws), len(gs))
			for i := 0; i < n; i++ {
				if !bytes.Equal(ws[i], gs[i]) {
					t.Errorf("first divergence at contract %d:\nbaseline = %s\nfast     = %s", i, ws[i], gs[i])
					break
				}
			}
		}
	}

	// The fast path must also be self-consistent across repeated runs
	// (intern ID assignment order varies under parallel workers but
	// must never leak into mined output).
	again, _ := run(false)
	if !bytes.Equal(got, again) {
		t.Error("fast path is nondeterministic: two runs produced different contract sets")
	}
}
