// Process-per-shard execution backend (Options.ShardBackendProcess).
//
// The wire boundary is exactly the in-process shard boundary: a worker
// process runs runShard over its corpus slice and ships back the plain
// values a shardResult holds — per-config violations, coverage counts,
// artifact bookkeeping, the serialized UniqueAccumulator entries, and
// any diagnostics. The parent rebuilds shardResults from those frames
// and hands them to the unchanged mergeShards, which is the whole
// byte-identity argument:
//
//   - Shard partitioning is a pure function of (corpus length, N), so
//     parent and worker agree on slice boundaries by construction.
//   - Nothing process-local crosses the wire — no intern IDs, no
//     compiled patterns — only strings and counts, which compare equal
//     regardless of which process produced them.
//   - The worker rebuilds its engine from the Job's serialized options
//     and the canonical contract-set JSON; the process backend rejects
//     the options that cannot round-trip (func-valued extensions), so
//     the worker's processing and check fingerprints equal the
//     parent's and warm artifact replay addresses the same cache
//     entries.
//   - The parent replays each worker's accumulator entries through
//     AddSites in shard order, so Combiner.Reduce sees exactly the
//     state an in-process fold would have produced.
//
// Failure policy mirrors shard.go: transport failures (crashed worker,
// torn frame) are retried by the pool and then fall into the PR 8
// shard-containment path; deterministic in-band failures (a contained
// panic inside the worker, a strict abort) are never retried.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/lexer"
	"concord/internal/mining"
	"concord/internal/shardrpc"
	"concord/internal/telemetry"
)

// distPolicy tunes the process backend's scheduler; the zero value is
// never used directly — a nil *distPolicy selects shardrpc defaults.
type distPolicy struct {
	maxRetries   int // pool re-dispatch budget per shard
	specMultiple float64
	specFloor    time.Duration
}

// --- parent side ---

// runShardsProcess is the process-backend twin of runShards: it builds
// one Job for the run, one Task per shard, and executes them on a
// shardrpc worker pool, converting each Result back into the
// *shardResult the unchanged mergeShards consumes.
func (e *Engine) runShardsProcess(ctx context.Context, dc *diag.Collector, set *contracts.Set, meta []Source, cr *corpusRun, combiner *contracts.UniqueCombiner, warm bool, checkFP artifact.Key, shards []shard, results []*shardResult, procProg, checkProg *progressCounter) error {
	job, err := e.buildShardJob(set, meta, cr)
	if err != nil {
		return err
	}
	command, err := e.shardWorkerCommand()
	if err != nil {
		return err
	}
	tasks := make([]shardrpc.Task, len(shards))
	for i, sh := range shards {
		t := shardrpc.Task{Shard: sh.index}
		for _, src := range sh.sources {
			t.Sources = append(t.Sources, shardrpc.NamedBlob{Name: src.Name, Text: src.Text})
		}
		tasks[i] = t
	}
	workers := e.opts.ShardWorkers
	if workers <= 0 {
		workers = e.opts.Parallelism
	}
	popts := shardrpc.PoolOptions{
		Command:    command,
		Workers:    workers,
		MaxRetries: -1,
		FailFast:   e.opts.Strict,
		Telemetry:  e.opts.Telemetry,
	}
	if e.dist != nil {
		popts.MaxRetries = e.dist.maxRetries
		popts.SpeculativeMultiple = e.dist.specMultiple
		popts.SpeculativeFloor = e.dist.specFloor
	}
	wres, failures, err := shardrpc.Run(ctx, job, tasks, popts)
	if err != nil {
		return err
	}
	// Transport failures with the retry budget exhausted: the shard is
	// lost whole — strict aborts, lenient takes the PR 8 containment
	// path (diagnostic, nil result, sources counted skipped in merge).
	for _, f := range failures {
		label := shardLabel(shards[f.Task])
		if e.opts.Strict {
			return fmt.Errorf("core: %s stage aborted (strict): %s: worker failed after %d attempts: %w",
				telemetry.StageCheck, label, f.Attempts, f.Err)
		}
		dc.Add(diag.Diagnostic{
			Severity: diag.SevError,
			Stage:    string(telemetry.StageCheck),
			Source:   label,
			Message:  fmt.Sprintf("shard lost: worker failed after %d attempts", f.Attempts),
			Cause:    f.Err,
		})
	}
	for i, wr := range wres {
		if wr == nil {
			continue // failed above, or abandoned by a strict fail-fast
		}
		for _, d := range wr.Diags {
			dc.Add(d)
		}
		if wr.Err != "" {
			// Deterministic in-band abort: the worker runs in the same
			// strict mode as the parent, so this is a strict fault
			// re-raised across the boundary.
			return errors.New(wr.Err)
		}
		if wr.Lost {
			// Worker-contained whole-shard panic (lenient): diagnostics
			// are already merged; drop the shard as runShards would.
			e.opts.Telemetry.Add("diag.panics", 1)
			continue
		}
		sr, err := e.wireShardResult(wr, combiner)
		if err != nil {
			label := shardLabel(shards[i])
			if e.opts.Strict {
				return fmt.Errorf("core: %s stage aborted (strict): %s: %w", telemetry.StageCheck, label, err)
			}
			dc.Add(diag.Diagnostic{
				Severity: diag.SevError,
				Stage:    string(telemetry.StageCheck),
				Source:   label,
				Message:  "shard lost: malformed worker result",
				Cause:    err,
			})
			continue
		}
		results[i] = sr
		for range sr.names {
			procProg.tick()
			checkProg.tick()
		}
		for j := 0; j < sr.skipped; j++ {
			procProg.tick()
			checkProg.tick()
		}
	}
	return nil
}

// buildShardJob serializes the run's check configuration for worker
// processes.
func (e *Engine) buildShardJob(set *contracts.Set, meta []Source, cr *corpusRun) (*shardrpc.Job, error) {
	job, err := e.newShardJobBase(meta, cr)
	if err != nil {
		return nil, err
	}
	job.SetJSON, err = json.Marshal(set)
	if err != nil {
		return nil, fmt.Errorf("core: serialize contract set: %w", err)
	}
	return job, nil
}

// newShardJobBase builds the processing-pipeline half of a Job, shared
// by the check and learn backends. Options that cannot cross a process
// boundary are rejected here as well as in Options.Validate, because
// service requests can select the backend after engine construction.
func (e *Engine) newShardJobBase(meta []Source, cr *corpusRun) (*shardrpc.Job, error) {
	if len(e.opts.ExtraTransforms) > 0 || len(e.opts.ExtraRelations) > 0 {
		return nil, fmt.Errorf("core: shard backend %q cannot serialize ExtraTransforms or ExtraRelations across the process boundary", ShardBackendProcess)
	}
	for _, t := range e.opts.UserTokens {
		if t.Parse != nil {
			return nil, fmt.Errorf("core: shard backend %q cannot serialize the custom Parse func of user token %q", ShardBackendProcess, t.Name)
		}
	}
	lim := e.opts.Limits.WithDefaults()
	job := &shardrpc.Job{
		ContextEmbedding: e.opts.ContextEmbedding,
		LinearScan:       e.opts.LinearScan,
		Strict:           e.opts.Strict,
		LearnBaseline:    e.opts.LearnBaseline,
		LexCacheSize:     e.opts.LexCacheSize,
		MaxFileSize:      lim.MaxFileSize,
		MaxLineLen:       lim.MaxLineLen,
		MaxDepth:         lim.MaxDepth,
		MaxLines:         lim.MaxLines,
	}
	if cr.artOn {
		job.CacheDir = e.opts.Artifacts.BaseDir()
		job.Incremental = e.opts.Incremental
	}
	for _, m := range meta {
		job.Meta = append(job.Meta, shardrpc.NamedBlob{Name: m.Name, Text: m.Text})
	}
	for _, t := range e.opts.UserTokens {
		job.UserTokens = append(job.UserTokens, shardrpc.TokenSpec{
			Name: t.Name, Pattern: t.Pattern,
			NoDigitBefore: t.NoDigitBefore, WordBoundary: t.WordBoundary,
		})
	}
	return job, nil
}

// shardWorkerCommand resolves the worker argv: explicit option, then
// the CONCORD_SHARD_WORKER_CMD environment variable, then the running
// executable's hidden shard-worker mode.
func (e *Engine) shardWorkerCommand() ([]string, error) {
	if len(e.opts.ShardWorkerCommand) > 0 {
		return e.opts.ShardWorkerCommand, nil
	}
	if env := os.Getenv("CONCORD_SHARD_WORKER_CMD"); env != "" {
		return strings.Fields(env), nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("core: resolve shard worker executable: %w", err)
	}
	return []string{exe, "shard-worker"}, nil
}

// wireShardResult rebuilds the in-process shardResult from a worker's
// Result frame: plain values copy over, the content hashes re-parse,
// and the accumulator entries replay through AddSites in shard order —
// the exact fold shardCheck performs locally.
func (e *Engine) wireShardResult(wr *shardrpc.Result, combiner *contracts.UniqueCombiner) (*shardResult, error) {
	sr := &shardResult{
		acc:      combiner.NewAccumulator().(*contracts.UniqueAccumulator),
		skipped:  wr.Skipped,
		lines:    wr.Lines,
		patterns: make(map[string]int, len(wr.Patterns)),
	}
	for p, n := range wr.Patterns {
		sr.patterns[p] = n
	}
	for i := range wr.Configs {
		c := &wr.Configs[i]
		sr.names = append(sr.names, c.Name)
		sr.violations = append(sr.violations, c.Violations)
		var cc *covCount
		if c.Cov != nil {
			cc = &covCount{
				sourceLines: c.Cov.SourceLines,
				covered:     c.Cov.Covered,
				byCategory:  c.Cov.ByCategory,
			}
		}
		sr.cov = append(sr.cov, cc)
		sr.hits = append(sr.hits, c.CheckHit)
		var sa sourceArt
		if c.HashHex != "" {
			if err := sa.hash.ParseHex(c.HashHex); err != nil {
				return nil, fmt.Errorf("core: bad content hash for %q: %w", c.Name, err)
			}
		}
		sa.lexHit = c.LexHit
		sr.arts = append(sr.arts, sa)
		sr.acc.AddSites(c.Name, c.Contrib)
	}
	return sr, nil
}

// --- worker side ---

// RunShardWorker is the hidden `concord shard-worker` mode: it reads
// one Job frame from r, rebuilds the check pipeline, then serves one
// shard per Task frame until r reaches EOF (the parent closed the
// pipe). Results stream to w. Worker processes share the parent's
// artifact cache directory (atomic temp+rename stores are multi-process
// safe), so warm replay works unchanged; metadata diagnostics are
// dropped here because the parent already reported them once.
func RunShardWorker(r io.Reader, w io.Writer) error {
	job, err := shardrpc.ReadJob(r)
	if err != nil {
		return fmt.Errorf("shard worker: read job: %w", err)
	}
	wk, err := newShardWorker(job)
	if err != nil {
		return fmt.Errorf("shard worker: %w", err)
	}
	chaos := loadWorkerChaos()
	for {
		t, err := shardrpc.ReadTask(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("shard worker: read task: %w", err)
		}
		chaos.maybeCrash(t)
		chaos.maybeStall(t)
		if job.Learn {
			res := wk.runLearn(t)
			if err := chaos.writeLearnResult(w, t, res); err != nil {
				return fmt.Errorf("shard worker: write learn result: %w", err)
			}
			continue
		}
		res := wk.run(t)
		if err := chaos.writeResult(w, t, res); err != nil {
			return fmt.Errorf("shard worker: write result: %w", err)
		}
	}
}

// shardWorker is one worker process's resident pipeline state: engine,
// compiled checker (check jobs) or miner (learn jobs), and corpus run,
// built once per Job and reused for every Task.
type shardWorker struct {
	eng      *Engine
	dc       *diag.Collector
	cr       *corpusRun
	checker  *contracts.Checker
	combiner *contracts.UniqueCombiner
	miner    *mining.Miner
	warm     bool
	checkFP  artifact.Key
	// base is dc's length after metadata processing; per-shard result
	// frames carry only diagnostics recorded past this point (and past
	// prior shards), never the metadata ones the parent already has.
	base int
}

func newShardWorker(job *shardrpc.Job) (*shardWorker, error) {
	opts := Options{
		Parallelism:      1, // a worker runs one shard at a time, sequentially
		ContextEmbedding: job.ContextEmbedding,
		LinearScan:       job.LinearScan,
		Strict:           job.Strict,
		LearnBaseline:    job.LearnBaseline,
		LexCacheSize:     job.LexCacheSize,
	}
	opts.Limits.MaxFileSize = job.MaxFileSize
	opts.Limits.MaxLineLen = job.MaxLineLen
	opts.Limits.MaxDepth = job.MaxDepth
	opts.Limits.MaxLines = job.MaxLines
	if job.Learn {
		// Learn parameters arrive resolved (the parent's New already
		// applied defaults), so the worker's miner is configured exactly
		// like the parent's.
		opts.Support = job.Support
		opts.Confidence = job.Confidence
		opts.ScoreThreshold = job.ScoreThreshold
		opts.MaxFanout = job.MaxFanout
		opts.ConstantLearning = job.ConstantLearning
		for _, c := range job.Categories {
			opts.Categories = append(opts.Categories, contracts.Category(c))
		}
	}
	for _, t := range job.UserTokens {
		opts.UserTokens = append(opts.UserTokens, lexer.TokenSpec{
			Name: t.Name, Pattern: t.Pattern,
			NoDigitBefore: t.NoDigitBefore, WordBoundary: t.WordBoundary,
		})
	}
	if job.CacheDir != "" {
		cache, err := artifact.Open(job.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("open artifact cache: %w", err)
		}
		opts.Artifacts = cache
		opts.Incremental = job.Incremental
	}
	eng, err := New(opts)
	if err != nil {
		return nil, err
	}
	var meta []Source
	for _, m := range job.Meta {
		meta = append(meta, Source{Name: m.Name, Text: m.Text})
	}
	wk := &shardWorker{eng: eng, dc: diag.New()}
	wk.cr, err = eng.newCorpusRun(wk.dc, meta)
	if err != nil {
		return nil, err
	}
	if job.Learn {
		wk.miner = eng.newLearnMiner(wk.dc, nil)
	} else {
		set := &contracts.Set{}
		if err := json.Unmarshal(job.SetJSON, set); err != nil {
			return nil, fmt.Errorf("decode contract set: %w", err)
		}
		wk.checker = eng.newChecker(set, wk.dc, wk.cr.interns)
		wk.combiner = wk.checker.UniqueCombiner()
		wk.warm = wk.cr.artOn && eng.opts.Incremental
		if wk.warm {
			wk.checkFP, wk.warm = eng.checkFingerprint(set, wk.cr.metaFP)
		}
	}
	wk.base = wk.dc.Len()
	return wk, nil
}

// run executes one shard Task to a Result, containing faults the way
// runShards does: strict faults become in-band Err (never retried by
// the parent), a lenient whole-shard panic becomes Lost plus the same
// containment diagnostic the in-process driver would record.
func (wk *shardWorker) run(t *shardrpc.Task) (res *shardrpc.Result) {
	sh := shard{index: t.Shard}
	for _, s := range t.Sources {
		sh.sources = append(sh.sources, Source{Name: s.Name, Text: s.Text})
	}
	res = &shardrpc.Result{Shard: t.Shard}
	// Progress is parent-side; these counters only satisfy runShard's
	// signature (Progress is nil in a worker, so tick is a no-op).
	procProg := &progressCounter{e: wk.eng, stage: telemetry.StageProcess, total: len(sh.sources)}
	checkProg := &progressCounter{e: wk.eng, stage: telemetry.StageCheck, total: len(sh.sources)}
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(string(telemetry.StageCheck), shardLabel(sh), r)
			if wk.eng.opts.Strict {
				*res = shardrpc.Result{Shard: t.Shard,
					Err:   fmt.Sprintf("core: %s stage aborted (strict): %v", telemetry.StageCheck, d.AsError()),
					Stack: d.Stack}
				return
			}
			*res = shardrpc.Result{Shard: t.Shard, Lost: true, Diags: []diag.Diagnostic{d}}
		}
		res.Diags = append(wk.takeDiags(), res.Diags...)
	}()
	sr, err := wk.eng.runShard(context.Background(), wk.dc, wk.cr, wk.checker, wk.combiner, wk.warm, wk.checkFP, sh, procProg, checkProg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	wk.fillResult(res, sr)
	return res
}

// takeDiags drains the diagnostics recorded since the previous shard.
func (wk *shardWorker) takeDiags() []diag.Diagnostic {
	all := wk.dc.All()
	out := all[wk.base:]
	wk.base = len(all)
	if len(out) == 0 {
		return nil
	}
	return out
}

// fillResult flattens a shardResult onto the wire Result, entry by
// entry; the accumulator's fold order (== shard order) is preserved by
// construction because shardCheck appends names and accumulator
// entries in lockstep.
func (wk *shardWorker) fillResult(res *shardrpc.Result, sr *shardResult) {
	res.Skipped = sr.skipped
	res.Lines = sr.lines
	if len(sr.patterns) > 0 {
		res.Patterns = sr.patterns
	}
	for j := range sr.names {
		c := shardrpc.ConfigResult{
			Name:       sr.names[j],
			Violations: sr.violations[j],
			CheckHit:   sr.hits[j],
			LexHit:     sr.arts[j].lexHit,
		}
		if !sr.arts[j].hash.IsZero() {
			c.HashHex = sr.arts[j].hash.Hex()
		}
		if cc := sr.cov[j]; cc != nil {
			c.Cov = &shardrpc.Coverage{
				SourceLines: cc.sourceLines,
				Covered:     cc.covered,
				ByCategory:  cc.byCategory,
			}
		}
		name, sites := sr.acc.Entry(j)
		if name != sr.names[j] {
			// Impossible by construction; fail loudly rather than ship a
			// misaligned accumulator.
			panic(fmt.Sprintf("shard worker: accumulator entry %d is %q, want %q", j, name, sr.names[j]))
		}
		c.Contrib = sites
		res.Configs = append(res.Configs, c)
	}
}

// --- chaos hooks ---
//
// faultinject sites cannot reach across a process boundary, so the
// worker's fault hooks are environment-driven; the pool inherits the
// parent's environment, which is how chaos tests arm them. The Attempt
// counter in each Task lets a hook fire on the first attempt only, so
// "crash once, recover on retry" scenarios are deterministic. All
// hooks are inert unless the CONCORD_SHARDRPC_* variables are set.
type workerChaos struct {
	crashShard   int
	crashAlways  bool
	corruptShard int
	stallShard   int
	stall        time.Duration
}

func loadWorkerChaos() workerChaos {
	c := workerChaos{crashShard: -1, corruptShard: -1, stallShard: -1}
	env := func(key string) (int, bool) {
		v := os.Getenv(key)
		if v == "" {
			return 0, false
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, false
		}
		return n, true
	}
	if n, ok := env("CONCORD_SHARDRPC_CRASH_SHARD"); ok {
		c.crashShard = n
	}
	c.crashAlways = os.Getenv("CONCORD_SHARDRPC_CRASH_MODE") == "always"
	if n, ok := env("CONCORD_SHARDRPC_CORRUPT_SHARD"); ok {
		c.corruptShard = n
	}
	if n, ok := env("CONCORD_SHARDRPC_STALL_SHARD"); ok {
		c.stallShard = n
	}
	c.stall = 3 * time.Second
	if n, ok := env("CONCORD_SHARDRPC_STALL_MS"); ok {
		c.stall = time.Duration(n) * time.Millisecond
	}
	return c
}

// maybeCrash SIGKILLs the worker mid-shard — after accepting the task,
// before any result — modeling a machine loss.
func (c workerChaos) maybeCrash(t *shardrpc.Task) {
	if t.Shard != c.crashShard || (!c.crashAlways && t.Attempt != 0) {
		return
	}
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		p.Kill()
	}
	select {} // unreachable once the signal lands
}

// maybeStall delays the first attempt of the configured shard, turning
// it into a straggler the scheduler should speculate around.
func (c workerChaos) maybeStall(t *shardrpc.Task) {
	if t.Shard == c.stallShard && t.Attempt == 0 {
		time.Sleep(c.stall)
	}
}

// writeResult ships a Result, corrupting the frame's last payload byte
// on the configured shard's first attempt — a torn write the parent's
// checksum must catch and retry, never half-apply.
func (c workerChaos) writeResult(w io.Writer, t *shardrpc.Task, res *shardrpc.Result) error {
	if t.Shard != c.corruptShard || t.Attempt != 0 {
		return shardrpc.WriteResult(w, res)
	}
	frame := artifact.EncodeFrame(shardrpc.ResultMagic, shardrpc.SchemaVersion, shardrpc.EncodeResult(res))
	frame[len(frame)-1] ^= 0x40
	_, err := w.Write(frame)
	return err
}
