package core

// The engine registry is the compile-once-serve-many core of Concord's
// resident service mode (internal/server, `concord serve`). A one-shot
// CLI run compiles its contract set, checks a corpus, and exits; a
// resident process answering many concurrent requests must instead
// share the expensive per-set state — the compiled check index, the
// string intern table, the lexer memoization cache — across every
// request that names the same contract set, and must bound how many
// such sets it keeps hot. EngineRegistry provides exactly that: a
// concurrency-safe map from contract-set fingerprint to a resident
// RegistryEntry, with per-key singleflight so a thundering herd of
// identical requests compiles exactly once, and an LRU bound so a
// multi-tenant server's memory stays proportional to its working set.

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// ErrNoSources reports that an operation was given zero configuration
// sources: a glob that matched no files (LoadGlob) or a service request
// with an empty corpus. It is distinct from other failures so callers
// — the serve layer in particular — can map it to "bad request" instead
// of silently learning or checking an empty contract set.
var ErrNoSources = errors.New("no configuration sources")

// DefaultRegistryEntries is the default LRU bound of an EngineRegistry:
// how many distinct contract sets stay resident at once.
const DefaultRegistryEntries = 16

// residentState is the per-entry memory a resident engine keeps hot
// across requests: the lexer memoization cache and the string intern
// table. Both are concurrency-safe and append-only (the cache stops
// inserting when full; intern IDs are stable once assigned), so sharing
// them across concurrent requests is safe and results are identical to
// a fresh per-run table — later requests merely start warm.
type residentState struct {
	cache   *lexer.Cache
	interns *intern.Table
}

// RegistryStats is a snapshot of a registry's counters.
type RegistryStats struct {
	// Entries is the number of resident contract sets.
	Entries int `json:"entries"`
	// Compiles counts contract-set compilations; under singleflight a
	// burst of concurrent requests for one new set compiles once.
	Compiles int64 `json:"compiles"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Hits and Misses count Acquire calls that found (resp. did not
	// find) their fingerprint resident.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Pinned is the number of resident entries currently pinned against
	// LRU eviction (the serving default set, unexpired learn-job
	// results).
	Pinned int `json:"pinned"`
}

// EngineRegistry is a concurrency-safe registry of resident engines
// keyed by contract-set fingerprint. All entries share one base Options
// template (the server's engine configuration); each entry owns a
// resident engine (shared lexer cache and intern table) plus the
// compiled checker for its contract set. Entries are bounded by an LRU:
// acquiring a new fingerprint beyond the bound evicts the least
// recently used entry. Eviction only drops the registry's reference —
// an in-flight request holding the evicted entry keeps using its
// compiled state and completes correctly.
type EngineRegistry struct {
	base Options
	// template validates the base options once and supplies the
	// processing fingerprint folded into every registry key.
	template *Engine
	max      int

	mu      sync.Mutex
	entries map[artifact.Key]*RegistryEntry
	lru     *list.List // of *RegistryEntry, front = most recently used

	compiles  atomic.Int64
	evictions atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
}

// NewEngineRegistry builds a registry whose entries all use the given
// engine options (per-request sinks — Telemetry, Diagnostics, Progress
// — are replaced per request and may be left nil). maxEntries bounds
// the number of resident contract sets; 0 selects
// DefaultRegistryEntries.
func NewEngineRegistry(opts Options, maxEntries int) (*EngineRegistry, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("core: registry size must be non-negative (got %d)", maxEntries)
	}
	if maxEntries == 0 {
		maxEntries = DefaultRegistryEntries
	}
	tmpl, err := New(opts)
	if err != nil {
		return nil, err
	}
	return &EngineRegistry{
		base:     tmpl.opts, // defaults filled by New
		template: tmpl,
		max:      maxEntries,
		entries:  make(map[artifact.Key]*RegistryEntry),
		lru:      list.New(),
	}, nil
}

// Fingerprint computes the registry key of a contract set under this
// registry's engine options: a content address over the set's canonical
// JSON plus every option that changes processing or checking output
// (the same inputs the artifact cache's check keys hash). Two sets with
// equal fingerprints produce byte-identical check results, so sharing
// one compiled entry between them is always sound.
func (r *EngineRegistry) Fingerprint(set *contracts.Set) (string, error) {
	k, err := r.fingerprint(set)
	if err != nil {
		return "", err
	}
	return k.Hex(), nil
}

func (r *EngineRegistry) fingerprint(set *contracts.Set) (artifact.Key, error) {
	setJSON, err := json.Marshal(set)
	if err != nil {
		return artifact.Key{}, fmt.Errorf("core: fingerprinting contract set: %w", err)
	}
	e := r.template
	h := artifact.NewHasher("concord/registry/v1")
	h.Key(e.procFP).Bytes(setJSON)
	h.Bool(e.opts.LinearScan).Bool(e.opts.Strict)
	h.Int(len(e.transforms))
	for _, t := range e.transforms {
		h.Str(t.Name)
	}
	h.Int(len(e.opts.ExtraRelations))
	for _, d := range e.opts.ExtraRelations {
		h.Str(string(d.Rel))
	}
	return h.Sum(), nil
}

// Acquire returns the resident entry for the contract set, compiling it
// on first use. Concurrent acquisitions of one not-yet-resident
// fingerprint are singleflighted: exactly one caller compiles, the
// rest block (respecting ctx) until the compile finishes and then share
// the result. The returned entry stays valid for the caller's lifetime
// even if the LRU later evicts it from the registry.
func (r *EngineRegistry) Acquire(ctx context.Context, set *contracts.Set) (*RegistryEntry, error) {
	key, err := r.fingerprint(set)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if en, ok := r.entries[key]; ok {
		r.lru.MoveToFront(en.elem)
		r.hits.Add(1)
		r.mu.Unlock()
		return en.wait(ctx)
	}
	r.misses.Add(1)
	en := &RegistryEntry{reg: r, key: key, set: set, ready: make(chan struct{})}
	en.elem = r.lru.PushFront(en)
	r.entries[key] = en
	r.evictLocked()
	r.mu.Unlock()
	en.compile(r)
	return en.wait(ctx)
}

// AcquireByFingerprint returns the resident entry with the given hex
// fingerprint, or ErrUnknownFingerprint if no such set is resident. It
// lets service clients that registered a set once (via Acquire or a
// learn job) reference it by fingerprint instead of resending it.
func (r *EngineRegistry) AcquireByFingerprint(ctx context.Context, fingerprint string) (*RegistryEntry, error) {
	var key artifact.Key
	if err := key.ParseHex(fingerprint); err != nil {
		return nil, fmt.Errorf("core: %w: %v", ErrUnknownFingerprint, err)
	}
	r.mu.Lock()
	en, ok := r.entries[key]
	if ok {
		r.lru.MoveToFront(en.elem)
		r.hits.Add(1)
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: %w: %s", ErrUnknownFingerprint, fingerprint)
	}
	return en.wait(ctx)
}

// ErrUnknownFingerprint reports an AcquireByFingerprint for a contract
// set that is not resident (never registered, or evicted by the LRU).
var ErrUnknownFingerprint = errors.New("unknown contract-set fingerprint")

// evictLocked enforces the LRU bound, skipping pinned entries. When
// every entry is pinned the registry is allowed to exceed its bound —
// dropping a pinned entry (the serving default, an unexpired job
// result) would break fingerprint addressability, which is worse than
// a transiently larger working set. Callers hold r.mu.
func (r *EngineRegistry) evictLocked() {
	for r.lru.Len() > r.max {
		var victim *list.Element
		for e := r.lru.Back(); e != nil; e = e.Prev() {
			if e.Value.(*RegistryEntry).pins.Load() == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		en := victim.Value.(*RegistryEntry)
		r.lru.Remove(victim)
		delete(r.entries, en.key)
		r.evictions.Add(1)
	}
}

// Pin marks the entry immune to LRU eviction until a matching Unpin.
// Pins nest. If the entry was already evicted, pinning re-inserts it so
// its fingerprint stays addressable — unless a newer entry for the same
// fingerprint exists, in which case the entry merely stays usable by
// its holders (the newer entry owns the key).
func (r *EngineRegistry) Pin(en *RegistryEntry) {
	if en == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	en.pins.Add(1)
	if _, ok := r.entries[en.key]; !ok {
		en.elem = r.lru.PushFront(en)
		r.entries[en.key] = en
		r.evictLocked()
	}
}

// Unpin releases one Pin; at zero pins the entry becomes evictable
// again. Unpinning below zero is a bug and panics.
func (r *EngineRegistry) Unpin(en *RegistryEntry) {
	if en == nil {
		return
	}
	if en.pins.Add(-1) < 0 {
		panic("core: registry entry unpinned more times than pinned")
	}
	r.mu.Lock()
	r.evictLocked()
	r.mu.Unlock()
}

// Stats snapshots the registry's counters.
func (r *EngineRegistry) Stats() RegistryStats {
	r.mu.Lock()
	n := r.lru.Len()
	pinned := 0
	for e := r.lru.Front(); e != nil; e = e.Next() {
		if e.Value.(*RegistryEntry).pins.Load() > 0 {
			pinned++
		}
	}
	r.mu.Unlock()
	return RegistryStats{
		Entries:   n,
		Pinned:    pinned,
		Compiles:  r.compiles.Load(),
		Evictions: r.evictions.Load(),
		Hits:      r.hits.Load(),
		Misses:    r.misses.Load(),
	}
}

// Len returns the number of resident entries.
func (r *EngineRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// remove drops an entry from the registry (used when its compile
// failed, so a later Acquire can retry cleanly).
func (r *EngineRegistry) remove(en *RegistryEntry) {
	r.mu.Lock()
	if cur, ok := r.entries[en.key]; ok && cur == en {
		delete(r.entries, en.key)
		r.lru.Remove(en.elem)
	}
	r.mu.Unlock()
}

// RegistryEntry is one resident contract set: a fingerprint, the set,
// an engine carrying the entry's resident lexer cache and intern table,
// and the checker compiled once against that table. Entries are safe
// for concurrent use; per-request state (telemetry, diagnostics,
// cancellation) is supplied per call.
type RegistryEntry struct {
	reg  *EngineRegistry
	key  artifact.Key
	set  *contracts.Set
	elem *list.Element

	// pins counts Pin calls minus Unpin calls; a pinned entry is never
	// LRU-evicted (see EngineRegistry.Pin).
	pins atomic.Int64

	// ready is closed when compilation finishes; err is set before the
	// close and never written afterwards.
	ready chan struct{}
	err   error

	eng     *Engine
	checker *contracts.Checker
}

// compile builds the entry's resident engine and compiled checker.
// Exactly one goroutine (the Acquire that inserted the entry) runs it;
// waiters block on ready. A compile failure (or panic) records the
// error and removes the entry so the fingerprint can be retried.
func (en *RegistryEntry) compile(r *EngineRegistry) {
	defer close(en.ready)
	defer func() {
		if rec := recover(); rec != nil {
			en.err = fmt.Errorf("core: compiling contract set %s panicked: %v", en.key.Hex()[:12], rec)
			r.remove(en)
		}
	}()
	eng, err := New(r.base)
	if err != nil {
		en.err = err
		r.remove(en)
		return
	}
	res := &residentState{interns: intern.NewTable()}
	if r.base.LexCacheSize >= 0 {
		res.cache = lexer.NewCache(r.base.LexCacheSize)
	}
	eng.resident = res
	en.eng = eng
	en.checker = contracts.NewChecker(en.set,
		contracts.WithTransforms(eng.transforms),
		contracts.WithRelations(eng.opts.ExtraRelations),
		contracts.WithStrict(eng.opts.Strict),
		contracts.WithLinearScan(eng.opts.LinearScan),
		contracts.WithInterns(res.interns))
	r.compiles.Add(1)
}

// wait blocks until the entry is compiled (or ctx is cancelled) and
// returns it, or the compile error.
func (en *RegistryEntry) wait(ctx context.Context) (*RegistryEntry, error) {
	// Check cancellation first: select picks randomly among ready
	// channels, and a caller with a dead context should never observe
	// success.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-en.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if en.err != nil {
		return nil, en.err
	}
	return en, nil
}

// Fingerprint returns the entry's hex contract-set fingerprint.
func (en *RegistryEntry) Fingerprint() string { return en.key.Hex() }

// Set returns the entry's contract set. Treat it as immutable: it is
// shared by the compiled checker.
func (en *RegistryEntry) Set() *contracts.Set { return en.set }

// CheckContext evaluates the entry's contract set against the sources
// using the shared compiled checker and resident caches. rec, when
// non-nil, receives this request's stage spans and counters (pass a
// fresh recorder per request for request-scoped telemetry; nil disables
// it). Diagnostics are request-scoped and returned in the result.
func (en *RegistryEntry) CheckContext(ctx context.Context, sources, meta []Source, rec *telemetry.Recorder) (*CheckResult, error) {
	e := en.eng.forRequest(rec)
	dc := diag.New()
	defer en.eng.opts.Diagnostics.Merge(dc)
	cfgs, arts, pstats, err := e.processContext(ctx, dc, sources, meta)
	if err != nil {
		return nil, err
	}
	res, err := e.checkProcessedContext(ctx, dc, en.set, cfgs, pstats, arts, en.checker.ForRequest(rec, dc))
	if err != nil {
		return nil, err
	}
	res.Diagnostics = dc.All()
	return res, nil
}

// CheckShardedContext is CheckContext routed through the fleet-scale
// sharded driver (see shard.go): the corpus is partitioned into
// deterministic contiguous shards streamed on a bounded pool, with
// results byte-identical to CheckContext. backend selects the shard
// execution backend (Options.ShardBackend); with the process backend,
// each shard runs in a worker child process and a single shard still
// routes through the sharded driver. shards <= 1 otherwise falls back
// to the unsharded path; shardWorkers <= 0 selects the engine's
// Parallelism. The entry's compiled checker and resident caches are
// shared either way.
func (en *RegistryEntry) CheckShardedContext(ctx context.Context, sources, meta []Source, rec *telemetry.Recorder, shards, shardWorkers int, backend string) (*CheckResult, error) {
	if shards <= 1 && backend != ShardBackendProcess {
		return en.CheckContext(ctx, sources, meta, rec)
	}
	if shards < 1 {
		shards = 1
	}
	e := en.eng.forRequest(rec)
	e.opts.Shards, e.opts.ShardWorkers, e.opts.ShardBackend = shards, shardWorkers, backend
	dc := diag.New()
	defer en.eng.opts.Diagnostics.Merge(dc)
	res, err := e.checkShardedContext(ctx, dc, en.set, sources, meta, en.checker.ForRequest(rec, dc))
	if err != nil {
		return nil, err
	}
	res.Diagnostics = dc.All()
	return res, nil
}

// CoverageLinesContext computes per-line coverage for the sources under
// the entry's contract set, sharing the compiled checker; see
// Engine.CoverageLinesContext.
func (en *RegistryEntry) CoverageLinesContext(ctx context.Context, sources, meta []Source, rec *telemetry.Recorder) ([]LineCoverage, error) {
	e := en.eng.forRequest(rec)
	dc := diag.New()
	defer en.eng.opts.Diagnostics.Merge(dc)
	cfgs, _, _, err := e.processContext(ctx, dc, sources, meta)
	if err != nil {
		return nil, err
	}
	return e.coverageLinesWith(ctx, dc, en.checker.ForRequest(rec, dc), cfgs)
}

// forRequest returns a shallow engine that shares the receiver's
// compiled lexer, transform registry, fingerprints, and resident state,
// but routes telemetry to a request-scoped recorder and detaches the
// aggregate diagnostics and progress sinks (request paths thread their
// own collectors). It exists so a resident server can give every
// request its own spans without recompiling anything.
func (e *Engine) forRequest(rec *telemetry.Recorder) *Engine {
	e2 := &Engine{
		opts:       e.opts,
		lx:         e.lx,
		transforms: e.transforms,
		procFP:     e.procFP,
		resident:   e.resident,
	}
	e2.opts.Telemetry = rec
	e2.opts.Diagnostics = nil
	e2.opts.Progress = nil
	return e2
}
