package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"concord/internal/artifact"
	"concord/internal/diag"
	"concord/internal/telemetry"
)

// warmEngine builds a fresh engine sharing the given cache; a new
// recorder per run keeps counters per-pass.
func warmEngine(t *testing.T, cache *artifact.Cache, incremental bool) (*Engine, *telemetry.Recorder) {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = 4
	opts.Artifacts = cache
	opts.Incremental = incremental
	rec := telemetry.NewRecorder()
	opts.Telemetry = rec
	return MustNew(opts), rec
}

func openTestCache(t *testing.T) *artifact.Cache {
	t.Helper()
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

// assertSameCheck compares everything a caller observes from a check.
func assertSameCheck(t *testing.T, label string, got, want *CheckResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		t.Errorf("%s: violations diverge:\n got %+v\nwant %+v", label, got.Violations, want.Violations)
	}
	if !reflect.DeepEqual(got.Coverage, want.Coverage) {
		t.Errorf("%s: coverage diverges:\n got %+v\nwant %+v", label, got.Coverage, want.Coverage)
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats diverge: got %+v, want %+v", label, got.Stats, want.Stats)
	}
}

func TestIncrementalRequiresArtifacts(t *testing.T) {
	opts := DefaultOptions()
	opts.Incremental = true
	if _, err := New(opts); err == nil {
		t.Fatal("New accepted Incremental without Artifacts")
	}
}

// TestWarmRunMatchesCold is the headline warm-run property: a second
// incremental run over an unchanged corpus replays every lex and check
// artifact and produces results identical to a cache-less run.
func TestWarmRunMatchesCold(t *testing.T) {
	train := chaosSources(20)
	test := chaosSources(8)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}

	cache := openTestCache(t)
	popEng, popRec := warmEngine(t, cache, true)
	populate, err := popEng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "populate", populate, cold)
	if hits := popRec.Counter("artifact.cache_hits"); hits != 0 {
		t.Errorf("populate run had %d cache hits, want 0", hits)
	}

	warmEng, warmRec := warmEngine(t, cache, true)
	warm, err := warmEng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "warm", warm, cold)
	if len(warm.Diagnostics) != 0 {
		t.Errorf("warm run diagnostics: %+v", warm.Diagnostics)
	}
	// Every config should hit both its lex and its check artifact.
	if hits, want := warmRec.Counter("artifact.cache_hits"), int64(2*len(test)); hits != want {
		t.Errorf("warm cache hits = %d, want %d", hits, want)
	}
	if misses := warmRec.Counter("artifact.cache_misses"); misses != 0 {
		t.Errorf("warm cache misses = %d, want 0", misses)
	}
	if warmRec.Counter("artifact.bytes_read") == 0 {
		t.Error("warm run read no artifact bytes")
	}

	m, err := cache.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Configs) != len(test) {
		t.Fatalf("manifest has %d configs, want %d", len(m.Configs), len(test))
	}
	for _, mc := range m.Configs {
		if !mc.LexHit || !mc.CheckHit {
			t.Errorf("manifest entry %s: lex_hit=%v check_hit=%v, want both true", mc.Name, mc.LexHit, mc.CheckHit)
		}
	}
}

// TestWarmRunLexArtifactsOnly: a cache without -incremental still
// skips re-lexing but re-checks everything.
func TestWarmRunLexArtifactsOnly(t *testing.T) {
	train := chaosSources(20)
	test := chaosSources(6)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t)
	for i := 0; i < 2; i++ {
		eng, rec := warmEngine(t, cache, false)
		got, err := eng.Check(lr.Set, test, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCheck(t, fmt.Sprintf("run %d", i), got, cold)
		if i == 1 {
			if hits, want := rec.Counter("artifact.cache_hits"), int64(len(test)); hits != want {
				t.Errorf("lex-only warm hits = %d, want %d", hits, want)
			}
		}
	}
}

// TestWarmRunUniqueCrossConfigExact changes one config between runs so
// that its new value duplicates a value held by a cached, unchanged
// config. The incremental unique merge (cached multisets + fresh
// extraction) must flag the duplicate exactly like a cold run.
func TestWarmRunUniqueCrossConfigExact(t *testing.T) {
	train := chaosSources(20)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	hasUnique := false
	for _, c := range lr.Set.Contracts {
		if c.Category() == "unique" {
			hasUnique = true
		}
	}
	if !hasUnique {
		t.Fatal("training corpus mined no unique contracts; test cannot exercise the merge")
	}

	test := chaosSources(8)
	cache := openTestCache(t)
	popEng, _ := warmEngine(t, cache, true)
	if _, err := popEng.Check(lr.Set, test, nil); err != nil {
		t.Fatal(err)
	}

	// r05 now claims r02's vlan (120) and router-id: cross-config
	// duplicates spanning a changed and an unchanged config.
	changed := chaosSources(8)
	changed[5].Text = []byte(strings.Replace(string(changed[5].Text), "vlan 150", "vlan 120", 1))

	cold, err := MustNew(DefaultOptions()).Check(lr.Set, changed, nil)
	if err != nil {
		t.Fatal(err)
	}
	dupFound := false
	for _, v := range cold.Violations {
		if strings.Contains(v.Detail, "duplicates") {
			dupFound = true
		}
	}
	if !dupFound {
		t.Fatalf("cold run found no duplicate-value violation; corpus does not exercise the merge: %+v", cold.Violations)
	}

	warmEng, warmRec := warmEngine(t, cache, true)
	warm, err := warmEng.Check(lr.Set, changed, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "warm-with-change", warm, cold)
	// 7 unchanged configs hit lex+check; the changed one misses both.
	if hits, want := warmRec.Counter("artifact.cache_hits"), int64(2*7); hits != want {
		t.Errorf("warm hits = %d, want %d", hits, want)
	}
	if misses, want := warmRec.Counter("artifact.cache_misses"), int64(2); misses != want {
		t.Errorf("warm misses = %d, want %d", misses, want)
	}
}

// TestWarmRunContractSetChangeMissesCheckArtifacts: editing the
// contract set invalidates check artifacts (fingerprint mismatch) but
// keeps lex artifacts hot.
func TestWarmRunContractSetChangeMissesCheckArtifacts(t *testing.T) {
	train := chaosSources(20)
	test := chaosSources(6)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t)
	popEng, _ := warmEngine(t, cache, true)
	if _, err := popEng.Check(lr.Set, test, nil); err != nil {
		t.Fatal(err)
	}
	cp := *lr.Set
	smaller := &cp
	smaller.Contracts = lr.Set.Contracts[:len(lr.Set.Contracts)-1]
	cold, err := MustNew(DefaultOptions()).Check(smaller, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmEng, warmRec := warmEngine(t, cache, true)
	warm, err := warmEng.Check(smaller, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "contract-change", warm, cold)
	if hits, want := warmRec.Counter("artifact.cache_hits"), int64(len(test)); hits != want {
		t.Errorf("hits = %d, want %d (lex only)", hits, want)
	}
	if misses, want := warmRec.Counter("artifact.cache_misses"), int64(len(test)); misses != want {
		t.Errorf("misses = %d, want %d (every check artifact)", misses, want)
	}
}

// cacheEntryFiles lists every artifact entry file in the cache.
func cacheEntryFiles(t *testing.T, cache *artifact.Cache) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(cache.Dir(), func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Base(p) != "manifest.json" {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestChaosCachePoisoningFallsBackCold poisons three cache entries
// three different ways (truncation, garbage, version flip). The warm
// run must fall back to the cold path for each — results identical to
// a cache-less run, exactly one warning diagnostic per poisoned entry,
// no goroutine leaks — and overwrite the bad entries so the next run
// is clean.
func TestChaosCachePoisoningFallsBackCold(t *testing.T) {
	train := chaosSources(20)
	test := chaosSources(6)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MustNew(DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t)
	popEng, _ := warmEngine(t, cache, true)
	if _, err := popEng.Check(lr.Set, test, nil); err != nil {
		t.Fatal(err)
	}

	files := cacheEntryFiles(t, cache)
	if len(files) < 3 {
		t.Fatalf("expected at least 3 cache entries, found %d", len(files))
	}
	// Three poisons, three distinct files.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], []byte("complete garbage, not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(files[2])
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 0x7F // schema version byte
	if err := os.WriteFile(files[2], data, 0o644); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	warmEng, warmRec := warmEngine(t, cache, true)
	warm, err := warmEng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatalf("Check with poisoned cache = %v, want fallback", err)
	}
	assertNoLeak(t, before)
	assertSameCheck(t, "poisoned", warm, cold)
	var artifactDiags []diag.Diagnostic
	for _, d := range warm.Diagnostics {
		if d.Stage != "artifact" {
			t.Errorf("unexpected non-artifact diagnostic: %+v", d)
			continue
		}
		if d.Severity != diag.SevWarn {
			t.Errorf("poisoned-entry diagnostic severity = %v, want warning: %+v", d.Severity, d)
		}
		artifactDiags = append(artifactDiags, d)
	}
	if len(artifactDiags) != 3 {
		t.Errorf("artifact diagnostics = %d, want exactly 1 per poisoned entry (3): %+v", len(artifactDiags), artifactDiags)
	}
	if inv := warmRec.Counter("artifact.invalidations"); inv != 3 {
		t.Errorf("artifact.invalidations = %d, want 3", inv)
	}

	// The fallback overwrote the poisoned entries: the next run is
	// diagnostic-free and still correct.
	againEng, _ := warmEngine(t, cache, true)
	again, err := againEng.Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCheck(t, "after-repair", again, cold)
	if len(again.Diagnostics) != 0 {
		t.Errorf("post-repair diagnostics: %+v", again.Diagnostics)
	}
}

// TestWarmRunStrictModeAbortsOnPoison documents the strict-mode
// policy: a poisoned cache entry is a diagnostic, and strict runs
// abort on any diagnostic.
func TestWarmRunStrictModeAbortsOnPoison(t *testing.T) {
	train := chaosSources(20)
	test := chaosSources(6)
	lr, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t)
	popEng, _ := warmEngine(t, cache, true)
	if _, err := popEng.Check(lr.Set, test, nil); err != nil {
		t.Fatal(err)
	}
	files := cacheEntryFiles(t, cache)
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Artifacts = cache
	opts.Incremental = true
	opts.Strict = true
	if _, err := MustNew(opts).Check(lr.Set, test, nil); err == nil {
		// The poisoned entry may be a check artifact (read after the
		// strict process-stage gate), in which case the run completes;
		// only a poisoned lex artifact aborts the strict process stage.
		// Either way the diagnostic must have been recorded.
		dc := diag.New()
		o := opts
		o.Diagnostics = dc
		o.Strict = false
		if _, err := MustNew(o).Check(lr.Set, test, nil); err != nil {
			t.Fatal(err)
		}
		if dc.Len() != 0 {
			t.Errorf("repair run after strict completion still sees diagnostics: %d", dc.Len())
		}
	}
}
