// Fleet-scale sharded check driver.
//
// One check run over 10k–100k configurations cannot afford to hold the
// whole lexed fleet in memory the way the unsharded driver does. The
// sharded driver partitions the corpus into deterministic contiguous
// shards, runs shards on a bounded worker pool, and streams inside
// each shard: every configuration is processed, checked, folded into
// the shard's cross-config accumulator, and then released — so peak
// memory is bounded by the configurations in flight, not by fleet
// size. Cross-configuration Unique contracts are merged afterwards
// through the contracts.Combiner protocol, which reproduces a
// sequential whole-corpus scan exactly.
//
// The shard boundary is deliberately narrow — a shard receives
// (sources, shared corpus state) and returns a shardResult of plain
// per-config values plus an accumulator — so a worker-process backend
// can later slot in behind runShard by serializing that boundary,
// without touching the merge.
package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// shard is one contiguous slice of the corpus, in input order.
type shard struct {
	index   int
	sources []Source
}

// makeShards partitions sources into at most n contiguous shards whose
// sizes differ by at most one, preserving corpus order. The partition
// is a pure function of (len(sources), n), so a run is reproducible
// and a re-run shards identically.
func makeShards(sources []Source, n int) []shard {
	if n > len(sources) {
		n = len(sources)
	}
	if n < 1 {
		n = 1
	}
	shards := make([]shard, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(sources)/n, (i+1)*len(sources)/n
		if lo == hi {
			continue
		}
		shards = append(shards, shard{index: i, sources: sources[lo:hi]})
	}
	return shards
}

// shardResult is what crosses the shard boundary back to the merge:
// per-configuration results in shard (= corpus) order plus the shard's
// combiner accumulator. Everything here is O(results); nothing
// references the shard's lexed configurations, which is what bounds a
// fleet-scale run's memory.
type shardResult struct {
	names      []string
	violations [][]contracts.Violation
	cov        []*covCount
	hits       []bool
	arts       []sourceArt
	acc        *contracts.UniqueAccumulator
	skipped    int
	lines      int
	patterns   map[string]int
}

// progressCounter reports monotonic global (done, total) progress for
// one stage across concurrently running shards: every shard ticks the
// shared counter, so Options.Progress observes the fleet-wide count
// rather than restarting per shard.
type progressCounter struct {
	e     *Engine
	stage telemetry.Stage
	total int
	done  atomic.Int64
}

func (p *progressCounter) tick() {
	if p.e.opts.Progress == nil {
		return
	}
	p.e.progress(p.stage, int(p.done.Add(1)), p.total)
}

// checkShardedContext is the fleet-scale implementation behind
// CheckContext when Options.Shards > 1. Its output is byte-identical
// to the unsharded path: shards are contiguous and merged in order, so
// per-config results concatenate to the corpus order, and the combiner
// reduction reproduces the sequential cross-config uniqueness scan.
// checker, when non-nil, is a pre-compiled checker to reuse (the
// registry's compile-once-serve-many path); nil builds one.
func (e *Engine) checkShardedContext(ctx context.Context, dc *diag.Collector, set *contracts.Set, sources, meta []Source, checker *contracts.Checker) (*CheckResult, error) {
	spProc := e.opts.Telemetry.StartSpan(string(telemetry.StageProcess))
	cr, err := e.newCorpusRun(dc, meta)
	if err != nil {
		spProc.EndCount(0)
		return nil, err
	}
	// One checker, compiled once against the shared intern table, serves
	// every shard: the compiled set is safe for concurrent use, exactly
	// as it is under the unsharded worker pool.
	if checker == nil {
		checker = e.newChecker(set, dc, cr.interns)
	}
	combiner := checker.UniqueCombiner()
	warm := cr.artOn && e.opts.Incremental
	var checkFP artifact.Key
	if warm {
		checkFP, warm = e.checkFingerprint(set, cr.metaFP)
	}
	// Process and check interleave inside shards, so both stage spans
	// cover the sharded run's wall window. Progress totals are the full
	// corpus for both stages: configurations dropped before checking
	// still tick the check counter, keeping (done, total) monotonic and
	// exact regardless of shard interleaving.
	spCheck := e.opts.Telemetry.StartSpan(string(telemetry.StageCheck))
	procProg := &progressCounter{e: e, stage: telemetry.StageProcess, total: len(sources)}
	checkProg := &progressCounter{e: e, stage: telemetry.StageCheck, total: len(sources)}
	shards := makeShards(sources, e.opts.Shards)
	results := make([]*shardResult, len(shards))
	if e.opts.ShardBackend == ShardBackendProcess {
		err = e.runShardsProcess(ctx, dc, set, meta, cr, combiner, warm, checkFP, shards, results, procProg, checkProg)
	} else {
		err = runShardPool(e, ctx, dc, telemetry.StageCheck, shards, results, func(sh shard) (*shardResult, error) {
			return e.runShard(ctx, dc, cr, checker, combiner, warm, checkFP, sh, procProg, checkProg)
		})
	}
	cr.emitCacheStats(e)
	spProc.EndCount(len(sources))
	spCheck.EndCount(len(sources))
	if err != nil {
		return nil, err
	}
	if e.opts.Strict {
		if jerr := diag.Join(dc.All()); jerr != nil {
			return nil, fmt.Errorf("core: strict mode: %w", jerr)
		}
	}
	return e.mergeShards(combiner, warm, checkFP, shards, results), nil
}

// runShardPool executes run over the shards on a pool of ShardWorkers
// goroutines (Parallelism when unset), with per-shard panic
// containment mirroring forEachCtx: lenient drops the shard with a
// diagnostic and continues, strict aborts the run on the first fault.
// It is generic over the shard result type so the check driver
// (*shardResult) and the learn driver (*learnShardResult) share one
// scheduler; stage labels containment diagnostics.
func runShardPool[R any](e *Engine, ctx context.Context, dc *diag.Collector, stage telemetry.Stage, shards []shard, results []*R, run func(shard) (*R, error)) error {
	workers := e.opts.ShardWorkers
	if workers <= 0 {
		workers = e.opts.Parallelism
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	ictx, abort := context.WithCancel(ctx)
	defer abort()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			abort()
		})
	}
	call := func(i int) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			d := diag.FromPanic(string(stage), shardLabel(shards[i]), r)
			if e.opts.Strict {
				fail(fmt.Errorf("core: %s stage aborted (strict): %w", stage, d.AsError()))
				return
			}
			dc.Add(d)
			e.opts.Telemetry.Add("diag.panics", 1)
			results[i] = nil
		}()
		res, err := run(shards[i])
		if err != nil {
			fail(err)
			return
		}
		results[i] = res
	}
	if workers <= 1 {
		for i := range shards {
			if ictx.Err() != nil {
				break
			}
			call(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ictx.Err() != nil {
						continue // drain without starting new shards
					}
					call(i)
				}
			}()
		}
	feed:
		for i := range shards {
			select {
			case next <- i:
			case <-ictx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	if failErr != nil {
		return failErr
	}
	return ctx.Err()
}

// shardLabel names a shard in diagnostics: its index and the corpus
// range it covers.
func shardLabel(sh shard) string {
	return fmt.Sprintf("shard %d [%s..%s]", sh.index,
		sh.sources[0].Name, sh.sources[len(sh.sources)-1].Name)
}

// runShard streams one shard: each configuration is processed, checked,
// folded into the shard's accumulator, and released before the next
// starts. The faultinject site "core.shard" (keyed by shard index)
// models a shard lost whole — a crashed worker process, once that
// backend exists.
func (e *Engine) runShard(ctx context.Context, dc *diag.Collector, cr *corpusRun, checker *contracts.Checker, combiner *contracts.UniqueCombiner, warm bool, checkFP artifact.Key, sh shard, procProg, checkProg *progressCounter) (*shardResult, error) {
	faultinject.At("core.shard", strconv.Itoa(sh.index))
	res := &shardResult{
		acc:      combiner.NewAccumulator().(*contracts.UniqueAccumulator),
		patterns: make(map[string]int),
	}
	for _, src := range sh.sources {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := e.shardStep(dc, cr, checker, warm, checkFP, src, res, procProg, checkProg); err != nil {
			return res, err
		}
	}
	return res, nil
}

// shardStep runs one configuration through process and check. Both
// phases contain panics at per-config granularity, matching the
// unsharded worker pool: lenient records a diagnostic and moves on,
// strict surfaces the fault as an error that aborts the run.
func (e *Engine) shardStep(dc *diag.Collector, cr *corpusRun, checker *contracts.Checker, warm bool, checkFP artifact.Key, src Source, res *shardResult, procProg, checkProg *progressCounter) error {
	cfg, sa, err := e.shardProcess(dc, cr, src)
	procProg.tick()
	if err != nil {
		return err
	}
	if cfg == nil {
		res.skipped++
		checkProg.tick() // never reaches checking; keep the global total exact
		return nil
	}
	err = e.shardCheck(dc, checker, warm, checkFP, cfg, sa, res)
	checkProg.tick()
	return err
}

// shardProcess is processOneSource under per-config containment.
func (e *Engine) shardProcess(dc *diag.Collector, cr *corpusRun, src Source) (cfg *lexer.Config, sa sourceArt, err error) {
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(string(telemetry.StageProcess), src.Name, r)
			if e.opts.Strict {
				cfg, err = nil, fmt.Errorf("core: %s stage aborted (strict): %w", telemetry.StageProcess, d.AsError())
				return
			}
			dc.Add(d)
			e.opts.Telemetry.Add("diag.panics", 1)
			cfg = nil
		}
	}()
	cfg, sa = e.processOneSource(dc, cr, src)
	return cfg, sa, nil
}

// shardCheck is checkOne under per-config containment, appending the
// result to the shard in corpus order. Contributions are always
// extracted (checkOne's wantContrib) because the configuration is
// released right after this call — the accumulator is the only state
// that survives to the cross-config merge.
func (e *Engine) shardCheck(dc *diag.Collector, checker *contracts.Checker, warm bool, checkFP artifact.Key, cfg *lexer.Config, sa sourceArt, res *shardResult) (err error) {
	j := len(res.names)
	res.names = append(res.names, cfg.Name)
	res.violations = append(res.violations, nil)
	res.cov = append(res.cov, nil)
	res.hits = append(res.hits, false)
	res.arts = append(res.arts, sa)
	res.lines += cfg.SourceLines
	addPatternStats(res.patterns, cfg)
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(string(telemetry.StageCheck), cfg.Name, r)
			if e.opts.Strict {
				err = fmt.Errorf("core: %s stage aborted (strict): %w", telemetry.StageCheck, d.AsError())
				return
			}
			dc.Add(d)
			e.opts.Telemetry.Add("diag.panics", 1)
			// The check panicked after the config joined the corpus;
			// recover its contribution so cross-config uniqueness still
			// scans every surviving configuration, as the unsharded
			// driver does.
			res.acc.AddSites(cfg.Name, checker.UniqueContributions(cfg))
		}
	}()
	var cache *artifact.Cache
	var key artifact.Key
	if warm && !sa.hash.IsZero() {
		cache = e.opts.Artifacts
		key = checkKey(sa.hash, checkFP, cfg.Name)
	}
	r := e.checkOne(dc, checker, cfg, cache, sa.clean, key, true)
	res.violations[j] = r.violations
	res.cov[j] = r.cov
	res.hits[j] = r.hit
	res.acc.AddSites(cfg.Name, r.contrib)
	return nil
}

// mergeShards concatenates per-shard results in shard order (= corpus
// order) and reduces the accumulators into the cross-config unique
// violations. A shard lost to lenient containment contributes only its
// skip count.
func (e *Engine) mergeShards(combiner *contracts.UniqueCombiner, warm bool, checkFP artifact.Key, shards []shard, results []*shardResult) *CheckResult {
	res := &CheckResult{}
	patterns := make(map[string]int)
	accs := make([]contracts.Accumulator, 0, len(results))
	for i, sr := range results {
		if sr == nil {
			res.Stats.Skipped += len(shards[i].sources)
			continue
		}
		res.Stats.Configs += len(sr.names)
		res.Stats.Skipped += sr.skipped
		res.Stats.Lines += sr.lines
		for p, n := range sr.patterns {
			if v, ok := patterns[p]; !ok || n > v {
				patterns[p] = n
			}
		}
		for j := range sr.names {
			res.Violations = append(res.Violations, sr.violations[j]...)
		}
		accs = append(accs, sr.acc)
	}
	res.Stats.Patterns = len(patterns)
	for _, n := range patterns {
		res.Stats.Parameters += n
	}
	res.Violations = append(res.Violations, combiner.Reduce(accs)...)
	sortViolations(res.Violations)

	res.Coverage.ByCategory = make(map[contracts.Category]int)
	for _, sr := range results {
		if sr == nil {
			continue
		}
		for j, cc := range sr.cov {
			if cc == nil {
				continue // this config's check panicked and was contained
			}
			out := ConfigCoverage{
				Name:        sr.names[j],
				SourceLines: cc.sourceLines,
				Covered:     cc.covered,
				ByCategory:  make(map[contracts.Category]int, len(cc.byCategory)),
			}
			for cat, n := range cc.byCategory {
				out.ByCategory[cat] = n
				res.Coverage.ByCategory[cat] += n
			}
			res.Coverage.TotalLines += cc.sourceLines
			res.Coverage.CoveredLines += cc.covered
			res.Coverage.PerConfig = append(res.Coverage.PerConfig, out)
		}
	}
	e.opts.Telemetry.SetGauge("corpus.configs", float64(res.Stats.Configs))
	e.opts.Telemetry.SetGauge("corpus.skipped", float64(res.Stats.Skipped))
	e.opts.Telemetry.SetGauge("corpus.lines", float64(res.Stats.Lines))
	e.opts.Telemetry.SetGauge("corpus.patterns", float64(res.Stats.Patterns))
	if warm {
		m := &artifact.Manifest{
			Schema:     artifact.SchemaVersion,
			OptionsFP:  e.procFP.Hex(),
			ContractFP: checkFP.Hex(),
		}
		for _, sr := range results {
			if sr == nil {
				continue
			}
			for j := range sr.names {
				m.Configs = append(m.Configs, artifact.ManifestEntry{
					Name:        sr.names[j],
					ContentHash: sr.arts[j].hash.Hex(),
					LexHit:      sr.arts[j].lexHit,
					CheckHit:    sr.hits[j],
				})
			}
		}
		if merr := e.opts.Artifacts.WriteManifest(m); merr != nil {
			e.opts.Telemetry.Add("artifact.store_errors", 1)
		}
	}
	return res
}
