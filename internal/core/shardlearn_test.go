package core

import (
	"encoding/json"
	"strings"
	"testing"

	"concord/internal/faultinject"
	"concord/internal/telemetry"
)

// learnJSON renders a learned set as canonical JSON — the byte-identity
// gate between learn drivers.
func learnJSON(t *testing.T, lr *LearnResult) string {
	t.Helper()
	b, err := json.MarshalIndent(lr.Set, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedLearnMatchesUnsharded is the differential gate for the
// sharded learn driver: for shard counts {1, 2, 3, 16} the learned set
// must serialize byte-identical to the unsharded pipeline's, and the
// corpus statistics must agree exactly.
func TestShardedLearnMatchesUnsharded(t *testing.T) {
	train := chaosSources(40)
	base, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Set.Len() == 0 {
		t.Fatal("baseline learned no contracts; the corpus does not exercise the miners")
	}
	want := learnJSON(t, base)
	for _, shards := range []int{1, 2, 3, 16} {
		rec := telemetry.NewRecorder()
		got, err := shardEngine(t, shards, 4, func(o *Options) { o.Telemetry = rec }).Learn(train, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gj := learnJSON(t, got); gj != want {
			t.Errorf("shards=%d: learned set diverges from unsharded driver:\n got %s\nwant %s", shards, gj, want)
		}
		if got.Stats != base.Stats {
			t.Errorf("shards=%d: stats diverge: got %+v, want %+v", shards, got.Stats, base.Stats)
		}
		if shards > 1 {
			rep := rec.Snapshot()
			if n := rep.Counters["mine.shard_dispatches"]; n != int64(shards) {
				t.Errorf("shards=%d: mine.shard_dispatches = %d, want %d", shards, n, shards)
			}
			if _, ok := rep.Counters["mine.merge_ns"]; !ok {
				t.Errorf("shards=%d: mine.merge_ns missing from telemetry", shards)
			}
		}
	}
}

// TestShardedLearnBaselineMode composes sharding with the baseline
// (string-keyed, uninterned) mining path: the two orthogonal toggles
// must not interfere.
func TestShardedLearnBaselineMode(t *testing.T) {
	train := chaosSources(30)
	base, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := learnJSON(t, base)
	got, err := shardEngine(t, 3, 2, func(o *Options) { o.LearnBaseline = true }).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gj := learnJSON(t, got); gj != want {
		t.Errorf("sharded baseline-mode learned set diverges:\n got %s\nwant %s", gj, want)
	}
}

// TestShardedLearnTinyCorpus exercises the partition edges: fewer
// sources than shards and a single source.
func TestShardedLearnTinyCorpus(t *testing.T) {
	for _, n := range []int{1, 3} {
		train := chaosSources(n)
		base, err := MustNew(DefaultOptions()).Learn(train, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := shardEngine(t, 16, 4, nil).Learn(train, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if gj, want := learnJSON(t, got), learnJSON(t, base); gj != want {
			t.Errorf("n=%d: learned set diverges:\n got %s\nwant %s", n, gj, want)
		}
	}
}

// TestShardedLearnProgressMonotonic asserts a sharded learn run reports
// one global monotonic (done, total) stream per stage, exact over the
// whole corpus in both the process and mine stages, regardless of shard
// interleaving.
func TestShardedLearnProgressMonotonic(t *testing.T) {
	train := chaosSources(60)
	plog := newProgressLog()
	opts := DefaultOptions()
	opts.Shards = 7
	opts.ShardWorkers = 4
	opts.Progress = plog.record
	if _, err := MustNew(opts).Learn(train, nil); err != nil {
		t.Fatal(err)
	}
	plog.assertMonotonic(t, telemetry.StageProcess, len(train))
	plog.assertMonotonic(t, telemetry.StageMine, len(train))
}

// TestChaosShardedLearnPanicContained loses one whole learn shard to an
// injected panic. Lenient mode learns from the surviving shards with
// one error diagnostic and the lost shard's sources counted skipped;
// strict mode fails fast.
func TestChaosShardedLearnPanicContained(t *testing.T) {
	defer faultinject.Reset()
	train := chaosSources(40)
	faultinject.Set("core.shard", faultinject.PanicOn("shard worker crashed", "1"))

	got, err := shardEngine(t, 4, 2, nil).Learn(train, nil)
	if err != nil {
		t.Fatalf("lenient sharded learn = %v, want degradation", err)
	}
	if got.Stats.Configs != 30 || got.Stats.Skipped != 10 {
		t.Errorf("stats = %d configs/%d skipped, want 30/10 (one lost shard of 10)", got.Stats.Configs, got.Stats.Skipped)
	}
	if got.Set.Len() == 0 {
		t.Error("lenient learn mined nothing from the surviving shards")
	}
	found := false
	for _, d := range got.Diagnostics {
		if strings.Contains(d.Message, "shard worker crashed") && strings.Contains(d.Source, "shard 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the contained shard panic: %+v", got.Diagnostics)
	}

	strict, err := shardEngine(t, 4, 2, func(o *Options) { o.Strict = true }).Learn(train, nil)
	if err == nil {
		t.Fatalf("strict sharded learn completed (%d contracts), want fail-fast error", strict.Set.Len())
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("strict error = %v, want strict-mode abort", err)
	}
}

// TestChaosShardedLearnConfigPanicContained injects a per-config panic
// into the relational fold of a sharded learn: only that configuration
// leaves the corpus-wide relational evidence, mirroring the unsharded
// miner's containment granularity.
func TestChaosShardedLearnConfigPanicContained(t *testing.T) {
	defer faultinject.Reset()
	train := chaosSources(24)
	victim := train[13].Name
	faultinject.Set("mining.relational.config", faultinject.PanicOn("relational scan crashed", victim))

	got, err := shardEngine(t, 4, 2, nil).Learn(train, nil)
	if err != nil {
		t.Fatalf("lenient sharded learn = %v, want degradation", err)
	}
	if got.Stats.Configs != len(train) {
		t.Errorf("stats.Configs = %d, want %d (a relational panic does not drop the config)", got.Stats.Configs, len(train))
	}
	found := false
	for _, d := range got.Diagnostics {
		if strings.Contains(d.Message, "relational scan crashed") && d.Source == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the contained config panic: %+v", got.Diagnostics)
	}
}
