package core

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"concord/internal/telemetry"
)

// TestDistLearnMatchesInProcess is the cross-backend differential gate
// for learning: at every (shards, workers) combination the process
// backend must mine a learned set byte-identical to the unsharded
// in-process pipeline's, with exact corpus statistics.
func TestDistLearnMatchesInProcess(t *testing.T) {
	train := chaosSources(40)
	base, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Set.Len() == 0 {
		t.Fatal("baseline learned no contracts; the corpus does not exercise the miners")
	}
	want := learnJSON(t, base)
	for _, shards := range []int{1, 3, 16} {
		for _, workers := range []int{1, 4} {
			rec := telemetry.NewRecorder()
			got, err := distEngine(t, shards, workers, func(o *Options) { o.Telemetry = rec }).Learn(train, nil)
			if err != nil {
				t.Fatalf("process backend %d shards / %d workers: %v", shards, workers, err)
			}
			if gj := learnJSON(t, got); gj != want {
				t.Errorf("%d shards / %d workers diverge from the in-process learn:\n got %s\nwant %s",
					shards, workers, gj, want)
			}
			if got.Stats != base.Stats {
				t.Errorf("%d shards / %d workers: stats diverge: got %+v, want %+v", shards, workers, got.Stats, base.Stats)
			}
			rep := rec.Snapshot()
			wantShards := int64(shards)
			if shards > len(train) {
				wantShards = int64(len(train))
			}
			if n := rep.Counters["mine.shard_dispatches"]; n != wantShards {
				t.Errorf("%d shards / %d workers: mine.shard_dispatches = %d, want %d", shards, workers, n, wantShards)
			}
			spans := 0
			for _, sp := range rep.Spans {
				if strings.HasPrefix(sp.Name, "dist.learn[") {
					spans++
				}
			}
			if int64(spans) != wantShards {
				t.Errorf("%d shards / %d workers: %d dist.learn spans, want %d", shards, workers, spans, wantShards)
			}
		}
	}
}

// TestDistLearnProgressMonotonic: the process backend's learn progress
// is the same exact global (done, total) stream per stage the
// in-process driver reports.
func TestDistLearnProgressMonotonic(t *testing.T) {
	train := chaosSources(40)
	plog := newProgressLog()
	eng := distEngine(t, 4, 2, func(o *Options) { o.Progress = plog.record })
	if _, err := eng.Learn(train, nil); err != nil {
		t.Fatal(err)
	}
	plog.assertMonotonic(t, telemetry.StageProcess, len(train))
	plog.assertMonotonic(t, telemetry.StageMine, len(train))
}

// TestDistLearnWorkerCrashRetried SIGKILLs the worker holding learn
// shard 1 on its first attempt: the scheduler must respawn and
// re-dispatch, and the learned set must stay byte-identical.
func TestDistLearnWorkerCrashRetried(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_CRASH_SHARD", "1")
	train := chaosSources(40)
	base, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	got, err := distEngine(t, 4, 2, func(o *Options) { o.Telemetry = rec }).Learn(train, nil)
	if err != nil {
		t.Fatalf("learn with one worker crash = %v, want retried success", err)
	}
	if gj, want := learnJSON(t, got), learnJSON(t, base); gj != want {
		t.Errorf("crash-retried learn diverges:\n got %s\nwant %s", gj, want)
	}
	if n := rec.Counter("worker.crashes"); n < 1 {
		t.Errorf("worker.crashes = %d, want >= 1", n)
	}
	if n := rec.Counter("shard.retries"); n < 1 {
		t.Errorf("shard.retries = %d, want >= 1", n)
	}
}

// TestChaosDistLearnCrashExhausted crashes learn shard 1's worker on
// every attempt. Lenient mode learns from the surviving shards with
// the lost shard counted skipped and one diagnostic; strict fails
// fast.
func TestChaosDistLearnCrashExhausted(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_CRASH_SHARD", "1")
	t.Setenv("CONCORD_SHARDRPC_CRASH_MODE", "always")
	train := chaosSources(40)

	got, err := distEngine(t, 4, 2, nil).Learn(train, nil)
	if err != nil {
		t.Fatalf("lenient distributed learn = %v, want degradation", err)
	}
	if got.Stats.Configs != 30 || got.Stats.Skipped != 10 {
		t.Errorf("stats = %d configs/%d skipped, want 30/10 (one lost shard of 10)", got.Stats.Configs, got.Stats.Skipped)
	}
	if got.Set.Len() == 0 {
		t.Error("lenient learn mined nothing from the surviving shards")
	}
	found := false
	for _, d := range got.Diagnostics {
		if strings.Contains(d.Message, "worker failed") && strings.Contains(d.Source, "shard 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing the lost shard: %+v", got.Diagnostics)
	}

	strict, err := distEngine(t, 4, 2, func(o *Options) { o.Strict = true }).Learn(train, nil)
	if err == nil {
		t.Fatalf("strict distributed learn completed (%d contracts), want fail-fast error", strict.Set.Len())
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("strict error = %v, want strict-mode abort", err)
	}
}

// TestChaosDistLearnCorruptFrame makes learn shard 1's worker emit a
// bit-flipped CCSL frame on the first attempt: the checksum must
// reject it, the shard must be retried, and no partially-decoded
// accumulator may reach the merge.
func TestChaosDistLearnCorruptFrame(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_CORRUPT_SHARD", "1")
	train := chaosSources(40)
	base, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	got, err := distEngine(t, 4, 2, func(o *Options) { o.Telemetry = rec }).Learn(train, nil)
	if err != nil {
		t.Fatalf("learn with one corrupt frame = %v, want retried success", err)
	}
	if gj, want := learnJSON(t, got), learnJSON(t, base); gj != want {
		t.Errorf("corrupt-frame learn diverges:\n got %s\nwant %s", gj, want)
	}
	if n := rec.Counter("shard.retries"); n < 1 {
		t.Errorf("shard.retries = %d, want >= 1 (corrupt frame must trigger a retry)", n)
	}
}

// TestDistLearnStragglerSpeculated stalls learn shard 0's first attempt
// well past the speculation threshold: a twin attempt must win and the
// learned set must stay byte-identical.
func TestDistLearnStragglerSpeculated(t *testing.T) {
	t.Setenv("CONCORD_SHARDRPC_STALL_SHARD", "0")
	t.Setenv("CONCORD_SHARDRPC_STALL_MS", "20000")
	train := chaosSources(40)
	base, err := MustNew(DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	eng := distEngine(t, 4, 2, func(o *Options) { o.Telemetry = rec })
	eng.dist = &distPolicy{maxRetries: 2, specMultiple: 2, specFloor: 100 * time.Millisecond}
	start := time.Now()
	got, err := eng.Learn(train, nil)
	if err != nil {
		t.Fatalf("learn with one straggler = %v, want speculated success", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("run took %v; speculation did not cut the 20s straggler short", elapsed)
	}
	if gj, want := learnJSON(t, got), learnJSON(t, base); gj != want {
		t.Errorf("speculated learn diverges:\n got %s\nwant %s", gj, want)
	}
	if n := rec.Counter("shard.speculative_wins"); n != 1 {
		t.Errorf("shard.speculative_wins = %d, want 1", n)
	}
}

// TestDistLearnNoOrphansNoLeaks: after clean and crashing distributed
// learn runs, every worker process is reaped and every scheduler
// goroutine joined.
func TestDistLearnNoOrphansNoLeaks(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("orphan scan reads /proc")
	}
	train := chaosSources(40)
	before := runtime.NumGoroutine()

	if _, err := distEngine(t, 4, 2, nil).Learn(train, nil); err != nil {
		t.Fatal(err)
	}
	t.Setenv("CONCORD_SHARDRPC_CRASH_SHARD", "1")
	t.Setenv("CONCORD_SHARDRPC_CRASH_MODE", "always")
	if _, err := distEngine(t, 4, 2, nil).Learn(train, nil); err != nil {
		t.Fatal(err)
	}

	assertNoLeak(t, before)
	deadline := time.Now().Add(2 * time.Second)
	for {
		kids := childWorkers(t)
		if len(kids) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker processes orphaned after drain: %v", kids)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
