// Package core is Concord's engine: it orchestrates format inference and
// context embedding (§3.1), pattern and value extraction (§3.2),
// contract mining (§3.4–§3.5), contract minimization (§3.6), metadata
// incorporation (§3.7), contract checking (§3.8), and coverage
// measurement (§3.9). The root concord package re-exports this engine as
// the public API.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/format"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/minimize"
	"concord/internal/mining"
	"concord/internal/relations"
	"concord/internal/telemetry"
)

// Source is one input file: a configuration or a metadata document.
type Source struct {
	// Name identifies the file (shown in violations).
	Name string
	// Text is the raw file content.
	Text []byte
}

// Options configures the engine, mirroring the command-line parameters
// of §4.
type Options struct {
	// Support (S): minimum number of configurations a pattern must
	// appear in. Default 5.
	Support int
	// Confidence (C): required fraction of supporting configurations in
	// which a contract holds. Default 0.96.
	Confidence float64
	// ScoreThreshold filters spurious relational contracts (§3.5).
	// Default 8.
	ScoreThreshold float64
	// Parallelism is the worker count for processing, mining, and
	// checking; 0 selects GOMAXPROCS.
	Parallelism int
	// ContextEmbedding enables hierarchical context embedding (§3.1).
	ContextEmbedding bool
	// ConstantLearning additionally learns exact-line contracts (§4).
	ConstantLearning bool
	// Minimize runs relational contract minimization (§3.6).
	Minimize bool
	// Categories restricts learning to the listed categories; empty
	// learns all. (The production deployment disables ordering, §5.4.)
	Categories []contracts.Category
	// UserTokens extends the lexer with domain-specific token types.
	UserTokens []lexer.TokenSpec
	// ExtraTransforms extends the data transformation registry beyond
	// the defaults (identity, hex, str, octets, MAC segments); §4 notes
	// the implementation keeps relation learning extensible.
	ExtraTransforms []relations.Transform
	// ExtraRelations adds user-defined relations (with their witness
	// indexes) to the built-in four.
	ExtraRelations []relations.Definition
	// MaxFanout bounds per-value candidate generation. Default 64.
	MaxFanout int
	// Telemetry, when non-nil, receives per-stage spans (process, mine,
	// minimize, check), per-category miner counters, and checker
	// counters. Telemetry off (nil) costs nothing on the hot paths.
	Telemetry *telemetry.Recorder
	// Diagnostics, when non-nil, accumulates every run's contained
	// faults and input-guard degradations (skipped files, truncated
	// lines, recovered panics, skipped contracts). Each Learn/Check run
	// also surfaces its own diagnostics in LearnResult/CheckResult, so
	// attaching a collector is only needed to aggregate across runs.
	Diagnostics *diag.Collector
	// Strict disables fault containment: the first worker panic, guard
	// violation, or skipped input aborts the run with an error carrying
	// the same information a lenient run would have reported as
	// diagnostics. Lenient (false, the default) returns partial results
	// plus diagnostics.
	Strict bool
	// Limits bounds input processing (max file size, line length,
	// nesting depth, lines per config); zero fields select the
	// defaults. See format.Limits.
	Limits format.Limits
	// Progress, when non-nil, is invoked after each unit of work in a
	// pipeline stage (one configuration processed, mined, or checked).
	// Calls are serialized by the engine, so the callback need not be
	// thread-safe; it must be fast, as it runs on worker goroutines.
	Progress func(stage telemetry.Stage, done, total int)
	// LinearScan forces the pre-compilation check strategy (every
	// contract evaluated against every configuration, no index-based
	// skipping). It exists for differential testing and benchmarking of
	// the compiled check engine; results are identical either way.
	LinearScan bool
	// LexCacheSize sizes the per-run lexer memoization cache in distinct
	// lines: 0 selects lexer.DefaultCacheEntries, negative disables the
	// cache entirely. The cache is created fresh for each processed
	// corpus and shared across that run's parallel workers.
	LexCacheSize int
	// LearnBaseline forces the pre-optimization learn path: per-line
	// linear lexing with no memoization cache, no pattern interning, and
	// string-keyed mining tables. It exists for differential testing and
	// benchmarking of the fast learn path; the learned contract set is
	// byte-identical either way.
	LearnBaseline bool
	// Artifacts, when non-nil, is a content-addressed on-disk artifact
	// cache (see internal/artifact). Processing then persists each
	// cleanly lexed source as a binary artifact keyed by its content
	// hash plus a fingerprint of every option affecting lexing, and
	// replays it on later runs instead of re-lexing. Corrupt or stale
	// entries degrade to the cold path with a warning diagnostic —
	// results are identical with or without a cache. Ignored in
	// LearnBaseline mode. Note that user token specs with custom Parse
	// funcs are fingerprinted by name, pattern, and flags only: changing
	// a Parse func's behavior without changing the spec requires a fresh
	// cache directory.
	Artifacts *artifact.Cache
	// Incremental additionally replays cached per-configuration check
	// results in Check/CheckContext: configurations whose content hash,
	// processing options, metadata corpus, and contract-set fingerprint
	// are unchanged skip re-checking entirely, contributing their cached
	// violations, coverage counts, and unique-contract value multisets
	// (so cross-configuration uniqueness stays exact over a mix of
	// cached and fresh configs). Requires Artifacts.
	Incremental bool
	// Shards, when greater than one, routes Check/CheckContext and
	// Learn/LearnContext through the fleet-scale sharded drivers: the
	// corpus is partitioned into that many deterministic contiguous
	// shards, shards run on a bounded pool, and each shard streams
	// per-configuration work — lexed configurations are released as the
	// shard advances, so peak memory is bounded by in-flight shards
	// rather than fleet size. A sharded check merges cross-config
	// Unique contracts through the contracts.Combiner protocol; a
	// sharded learn folds each configuration into a per-shard
	// mining.StatsAccumulator and merges the accumulators in shard
	// order. Results are byte-identical to the unsharded paths, warm
	// artifact replay included. See DESIGN.md §11 and §13.
	Shards int
	// ShardWorkers bounds how many shards are in flight at once; 0
	// selects Parallelism. Configurations within a shard are processed
	// sequentially, so ShardWorkers is the effective parallelism of a
	// sharded check or learn.
	ShardWorkers int
	// ShardBackend selects how a sharded check or learn executes its
	// shards. Empty or ShardBackendInProcess runs them on a goroutine
	// pool in this process (the default). ShardBackendProcess
	// dispatches each shard to a pool of worker child processes over
	// the shardrpc wire protocol, with bounded crash retries and
	// straggler speculation; results are byte-identical across
	// backends, warm artifact replay included. The process backend
	// also routes Shards == 1 through the sharded driver, so a
	// single-shard corpus still executes out of process. It cannot
	// serialize ExtraTransforms, ExtraRelations, or UserTokens with
	// custom Parse funcs — such options are rejected.
	ShardBackend string
	// ShardWorkerCommand is the worker argv for ShardBackendProcess;
	// element 0 is the executable. Empty selects the
	// CONCORD_SHARD_WORKER_CMD environment variable (whitespace-split)
	// and, failing that, the running executable invoked with a single
	// "shard-worker" argument — correct when the embedding binary is
	// the concord CLI or a test binary with the worker trampoline.
	ShardWorkerCommand []string
}

// The shard execution backends (Options.ShardBackend).
const (
	ShardBackendInProcess = "inprocess"
	ShardBackendProcess   = "process"
)

// shardingActive reports whether Check/CheckContext and
// Learn/LearnContext route through the sharded drivers: always for
// Shards > 1, and for a single explicit shard when the process backend
// is selected (so the work still leaves this process).
func (o Options) shardingActive() bool {
	return o.Shards > 1 || (o.Shards == 1 && o.ShardBackend == ShardBackendProcess)
}

// Validate rejects unusable option values: Support below 1, Confidence
// outside (0, 1], negative ScoreThreshold or MaxFanout, and
// non-positive guard limits. New calls it after filling defaulted
// (zero) Support, Confidence, and Limits, so only explicitly
// nonsensical values are rejected.
func (o Options) Validate() error {
	if o.Support < 1 {
		return fmt.Errorf("core: Support must be at least 1 (got %d)", o.Support)
	}
	if o.Confidence <= 0 || o.Confidence > 1 {
		return fmt.Errorf("core: Confidence must be in (0, 1] (got %v)", o.Confidence)
	}
	if o.ScoreThreshold < 0 {
		return fmt.Errorf("core: ScoreThreshold must be non-negative (got %v)", o.ScoreThreshold)
	}
	if o.MaxFanout < 0 {
		return fmt.Errorf("core: MaxFanout must be non-negative (got %v)", o.MaxFanout)
	}
	if err := o.Limits.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if o.Incremental && o.Artifacts == nil {
		return fmt.Errorf("core: Incremental requires an Artifacts cache")
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: Shards must be non-negative (got %d)", o.Shards)
	}
	if o.ShardWorkers < 0 {
		return fmt.Errorf("core: ShardWorkers must be non-negative (got %d)", o.ShardWorkers)
	}
	switch o.ShardBackend {
	case "", ShardBackendInProcess:
	case ShardBackendProcess:
		if len(o.ExtraTransforms) > 0 || len(o.ExtraRelations) > 0 {
			return fmt.Errorf("core: shard backend %q cannot serialize ExtraTransforms or ExtraRelations across the process boundary", o.ShardBackend)
		}
		for _, t := range o.UserTokens {
			if t.Parse != nil {
				return fmt.Errorf("core: shard backend %q cannot serialize the custom Parse func of user token %q", o.ShardBackend, t.Name)
			}
		}
	default:
		return fmt.Errorf("core: unknown ShardBackend %q (want %q or %q)", o.ShardBackend, ShardBackendInProcess, ShardBackendProcess)
	}
	return nil
}

// DefaultOptions returns the paper's defaults: S=5, C=96%, context
// embedding and minimization on, default input-guard limits.
func DefaultOptions() Options {
	return Options{
		Support:          5,
		Confidence:       0.96,
		ScoreThreshold:   8,
		ContextEmbedding: true,
		Minimize:         true,
		Limits:           format.DefaultLimits(),
	}
}

// Engine runs Concord's learn and check pipelines. Safe for concurrent
// use after construction.
type Engine struct {
	opts       Options
	lx         *lexer.Lexer
	transforms []relations.Transform
	// procFP fingerprints every option that affects processing output
	// (context embedding, input limits, user token specs). It is folded
	// into all artifact cache keys so an option change misses naturally.
	procFP artifact.Key
	// resident, when non-nil, holds the lexer cache and intern table
	// this engine keeps hot across runs instead of creating per corpus.
	// Registry entries set it so concurrent service requests share one
	// warm cache and one ID space (see EngineRegistry).
	resident *residentState
	// progressMu serializes Options.Progress callbacks issued from
	// worker goroutines.
	progressMu sync.Mutex
	// dist overrides the process shard backend's scheduler policy
	// (retry budget, speculation thresholds); nil selects the shardrpc
	// defaults. It exists for tests that need deterministic fault and
	// straggler behavior.
	dist *distPolicy
}

// New builds an engine, compiling any user token specifications. Options
// are validated: zero Support and Confidence select the defaults (so the
// zero Options value keeps working), but explicitly out-of-range values
// are rejected with an error rather than silently accepted.
func New(opts Options) (*Engine, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	def := DefaultOptions()
	if opts.Support == 0 {
		opts.Support = def.Support
	}
	if opts.Confidence == 0 {
		opts.Confidence = def.Confidence
	}
	opts.Limits = opts.Limits.WithDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	lx, err := lexer.New(opts.UserTokens...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	seen := make(map[string]bool)
	transforms := relations.DefaultTransforms()
	for _, t := range transforms {
		seen[t.Name] = true
	}
	for _, t := range opts.ExtraTransforms {
		if t.Name == "" || t.Apply == nil {
			return nil, fmt.Errorf("core: extra transform needs a name and an Apply func")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("core: duplicate transform %q", t.Name)
		}
		seen[t.Name] = true
		transforms = append(transforms, t)
	}
	for i := range opts.ExtraRelations {
		if err := opts.ExtraRelations[i].Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	e := &Engine{opts: opts, lx: lx, transforms: transforms}
	e.procFP = e.procFingerprint()
	return e, nil
}

// procFingerprint hashes every option that changes what processing
// produces for a given source. Custom Parse funcs cannot be hashed;
// their specs contribute name, pattern, and flags (documented on
// Options.Artifacts).
func (e *Engine) procFingerprint() artifact.Key {
	lim := e.opts.Limits.WithDefaults()
	h := artifact.NewHasher("concord/proc/v1")
	h.Int(artifact.SchemaVersion)
	h.Bool(e.opts.ContextEmbedding)
	h.Int(lim.MaxFileSize).Int(lim.MaxLineLen).Int(lim.MaxDepth).Int(lim.MaxLines)
	h.Int(len(e.opts.UserTokens))
	for _, t := range e.opts.UserTokens {
		h.Str(t.Name).Str(t.Pattern)
		h.Bool(t.Parse != nil).Bool(t.NoDigitBefore).Bool(t.WordBoundary)
	}
	return h.Sum()
}

// MustNew is New for known-good options; it panics on error.
func MustNew(opts Options) *Engine {
	e, err := New(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// ProcessStats summarizes a processed corpus (the per-dataset columns of
// Table 3).
type ProcessStats struct {
	// Configs is the number of configuration files that survived
	// processing.
	Configs int
	// Skipped counts sources dropped from the corpus by fault
	// containment or input guards (each with a diagnostic).
	Skipped int
	// Lines is the total number of non-blank configuration lines.
	Lines int
	// Patterns is the number of distinct extracted patterns.
	Patterns int
	// Parameters is the number of distinct (pattern, parameter) slots.
	Parameters int
}

// Process embeds and lexes every source in parallel, appending processed
// metadata lines to each configuration (§3.7). The result order matches
// the input order. It is ProcessContext with a background context.
func (e *Engine) Process(sources, meta []Source) ([]*lexer.Config, ProcessStats) {
	cfgs, st, _ := e.ProcessContext(context.Background(), sources, meta)
	return cfgs, st
}

// ProcessContext is Process with cooperative cancellation: workers stop
// within one configuration of ctx being cancelled, and the error is
// ctx.Err(). The stage is timed under the "process" span. Sources that
// panic a worker or violate input guards are dropped with diagnostics
// (delivered to Options.Diagnostics); with Options.Strict the first
// fault aborts with an error instead.
func (e *Engine) ProcessContext(ctx context.Context, sources, meta []Source) ([]*lexer.Config, ProcessStats, error) {
	dc := diag.New()
	defer e.opts.Diagnostics.Merge(dc)
	cfgs, _, st, err := e.processContext(ctx, dc, sources, meta)
	return cfgs, st, err
}

// sourceArt is one surviving configuration's artifact-cache state,
// aligned with the compacted config slice.
type sourceArt struct {
	// hash is the content hash of the raw source bytes; zero when the
	// config cannot participate in artifact caching.
	hash artifact.Key
	// lexKey is hash ⊕ procFP: the lex artifact's cache address.
	lexKey artifact.Key
	// lexHit reports the config was replayed from a lex artifact.
	lexHit bool
	// clean reports processing produced no diagnostics for this source,
	// making its downstream check result safe to persist.
	clean bool
}

// artState carries per-corpus artifact bookkeeping from processing to
// checking. Nil when no cache is attached or the run is LearnBaseline.
type artState struct {
	cache  *artifact.Cache
	per    []sourceArt
	metaFP artifact.Key
}

// processContext is the diagnostics-threaded implementation behind
// ProcessContext; per-run collectors let each Learn/Check surface only
// its own diagnostics in its result. When an artifact cache is
// attached, cleanly lexed sources are persisted and replayed by
// content hash, and the returned artState lets checkProcessedContext
// extend the warm path to per-config check results.
func (e *Engine) processContext(ctx context.Context, dc *diag.Collector, sources, meta []Source) ([]*lexer.Config, *artState, ProcessStats, error) {
	sp := e.opts.Telemetry.StartSpan(string(telemetry.StageProcess))
	defer sp.EndCount(len(sources))
	cr, err := e.newCorpusRun(dc, meta)
	if err != nil {
		return nil, nil, ProcessStats{}, err
	}
	artOn := cr.artOn
	var artSlots []sourceArt
	if artOn {
		artSlots = make([]sourceArt, len(sources))
	}
	slots := make([]*lexer.Config, len(sources))
	err = e.forEachCtx(ctx, dc, telemetry.StageProcess, len(sources),
		func(i int) string { return sources[i].Name },
		func(i int) {
			cfg, sa := e.processOneSource(dc, cr, sources[i])
			slots[i] = cfg
			if artOn {
				artSlots[i] = sa
			}
		})
	if err != nil {
		return nil, nil, ProcessStats{}, err
	}
	cr.emitCacheStats(e)
	// Compact: sources that panicked a worker or were rejected by input
	// guards leave nil slots; survivors keep input order (and their
	// artifact state stays aligned with them).
	var cfgs []*lexer.Config
	var per []sourceArt
	skipped := 0
	for i, c := range slots {
		if c != nil {
			cfgs = append(cfgs, c)
			if artOn {
				per = append(per, artSlots[i])
			}
		} else {
			skipped++
		}
	}
	var arts *artState
	if artOn {
		arts = &artState{cache: e.opts.Artifacts, per: per, metaFP: cr.metaFP}
	}
	if e.opts.Strict {
		if err := diag.Join(dc.All()); err != nil {
			return nil, nil, ProcessStats{}, fmt.Errorf("core: strict mode: %w", err)
		}
	}
	st := ProcessStats{Configs: len(cfgs), Skipped: skipped}
	patterns := make(map[string]int)
	for _, cfg := range cfgs {
		st.Lines += cfg.SourceLines
		addPatternStats(patterns, cfg)
	}
	st.Patterns = len(patterns)
	for _, n := range patterns {
		st.Parameters += n
	}
	e.opts.Telemetry.SetGauge("corpus.configs", float64(st.Configs))
	e.opts.Telemetry.SetGauge("corpus.skipped", float64(st.Skipped))
	e.opts.Telemetry.SetGauge("corpus.lines", float64(st.Lines))
	e.opts.Telemetry.SetGauge("corpus.patterns", float64(st.Patterns))
	return cfgs, arts, st, nil
}

// corpusRun is the per-run corpus state shared by every source: the
// lexer cache, intern table, processed metadata lines, and artifact
// bookkeeping. Both the unsharded and the sharded drivers build one
// and thread it through the same per-source helpers, so the two paths
// cannot drift.
type corpusRun struct {
	lim       format.Limits
	cache     *lexer.Cache
	interns   *intern.Table
	metaLines []lexer.Line
	// artOn reports the artifact cache participates in this run (cache
	// attached and not a baseline run, which bypasses the
	// interned-pattern pipeline the cache needs).
	artOn  bool
	metaFP artifact.Key
}

// newCorpusRun resolves limits, lexer cache, and intern table for one
// run and processes the metadata corpus.
func (e *Engine) newCorpusRun(dc *diag.Collector, meta []Source) (*corpusRun, error) {
	lim := e.opts.Limits.WithDefaults()
	e.opts.Telemetry.SetGauge("limits.max_file_size", float64(lim.MaxFileSize))
	e.opts.Telemetry.SetGauge("limits.max_line_len", float64(lim.MaxLineLen))
	e.opts.Telemetry.SetGauge("limits.max_depth", float64(lim.MaxDepth))
	e.opts.Telemetry.SetGauge("limits.max_lines", float64(lim.MaxLines))
	// The lexer cache and intern table normally live for exactly one
	// processed corpus: entries are only valid for this engine's lexer,
	// and dense pattern IDs are only meaningful against this run's
	// table. A resident engine (service mode) instead supplies
	// long-lived instances shared across requests: both structures are
	// concurrency-safe and append-only, so later corpora simply start
	// warm, with identical results.
	cr := &corpusRun{lim: lim}
	if e.resident != nil {
		cr.cache, cr.interns = e.resident.cache, e.resident.interns
	} else if !e.opts.LearnBaseline {
		if e.opts.LexCacheSize >= 0 {
			cr.cache = lexer.NewCache(e.opts.LexCacheSize)
		}
		cr.interns = intern.NewTable()
	}
	metaLines, err := e.processMeta(dc, lim, meta, cr.cache, cr.interns)
	if err != nil {
		return nil, err
	}
	cr.metaLines = metaLines
	cr.artOn = e.opts.Artifacts != nil && !e.opts.LearnBaseline
	if cr.artOn {
		mh := artifact.NewHasher("concord/meta/v1")
		for _, m := range meta {
			mh.Str(m.Name).Bytes(m.Text)
		}
		cr.metaFP = mh.Sum()
	}
	return cr, nil
}

// emitCacheStats flushes the run's lexer-cache counters to telemetry.
func (cr *corpusRun) emitCacheStats(e *Engine) {
	if cr.cache == nil {
		return
	}
	hits, misses := cr.cache.Stats()
	e.opts.Telemetry.Add("lex.cache_hits", hits)
	e.opts.Telemetry.Add("lex.cache_misses", misses)
}

// processOneSource lexes one source against the corpus state,
// replaying it from the artifact cache when possible. A nil config
// means the source was dropped by an input guard (the diagnostic is
// already in dc). Panics propagate to the caller's containment.
func (e *Engine) processOneSource(dc *diag.Collector, cr *corpusRun, src Source) (*lexer.Config, sourceArt) {
	faultinject.At("core.process.source", src.Name)
	var sa sourceArt
	if cr.artOn {
		var cfg *lexer.Config
		var ok bool
		if cfg, sa, ok = e.loadLexArtifact(dc, src, cr.interns); ok {
			cfg.Lines = append(cfg.Lines, cr.metaLines...)
			return cfg, sa
		}
	}
	// A per-source collector distinguishes "this source degraded"
	// from the shared run state: only sources that process without
	// any diagnostic are persisted to the cache.
	sdc := dc
	if cr.artOn {
		sdc = diag.New()
	}
	cfg := format.Process(src.Name, src.Text, e.lx,
		format.Options{Embed: e.opts.ContextEmbedding, Limits: cr.lim,
			Telemetry: e.opts.Telemetry, Diagnostics: sdc,
			Cache: cr.cache, Interns: cr.interns, Baseline: e.opts.LearnBaseline})
	if cr.artOn {
		dc.Merge(sdc)
	}
	if cfg.Skipped {
		return nil, sa // input guards recorded the diagnostic
	}
	if cr.artOn {
		sa.clean = sdc.Len() == 0
		if sa.clean {
			// Encode before meta lines are appended: metadata is
			// corpus state, not source content, and is re-applied
			// (and fingerprinted) on every run.
			if payload, ok := artifact.EncodeConfig(&cfg); ok {
				if serr := e.opts.Artifacts.Store(artifact.KindLex, sa.lexKey, payload); serr != nil {
					e.opts.Telemetry.Add("artifact.store_errors", 1)
				} else {
					e.opts.Telemetry.Add("artifact.bytes_written", int64(len(payload)))
				}
			}
		}
	}
	cfg.Lines = append(cfg.Lines, cr.metaLines...)
	return &cfg, sa
}

// addPatternStats folds one configuration into the corpus
// pattern→max-parameter-count map behind ProcessStats.
func addPatternStats(patterns map[string]int, cfg *lexer.Config) {
	for i := range cfg.Lines {
		line := &cfg.Lines[i]
		if line.Meta {
			continue
		}
		if n, ok := patterns[line.Pattern]; !ok || len(line.Params) > n {
			patterns[line.Pattern] = len(line.Params)
		}
	}
}

// loadLexArtifact attempts to replay one source from the lex artifact
// cache. It always returns the source's artifact state (content hash
// and lex key) so the cold path can persist what it produces; ok
// reports whether a usable cached config was returned. A corrupt entry
// degrades to a miss with a warning diagnostic.
func (e *Engine) loadLexArtifact(dc *diag.Collector, src Source, interns *intern.Table) (*lexer.Config, sourceArt, bool) {
	sa := sourceArt{hash: artifact.HashBytes("concord/src/v1", src.Text)}
	sa.lexKey = artifact.NewHasher("concord/lex/v1").Key(sa.hash).Key(e.procFP).Sum()
	payload, err := e.opts.Artifacts.Load(artifact.KindLex, sa.lexKey)
	if err != nil {
		if errors.Is(err, artifact.ErrMiss) {
			e.opts.Telemetry.Add("artifact.cache_misses", 1)
		} else {
			e.invalidateArtifact(dc, src.Name, err)
		}
		return nil, sa, false
	}
	cfg, derr := artifact.DecodeConfig(payload, src.Name, interns)
	if derr != nil {
		e.invalidateArtifact(dc, src.Name, derr)
		return nil, sa, false
	}
	e.opts.Telemetry.Add("artifact.cache_hits", 1)
	e.opts.Telemetry.Add("artifact.bytes_read", int64(len(payload)))
	sa.lexHit = true
	// An artifact exists only for sources that processed cleanly, so a
	// replayed config is clean by construction.
	sa.clean = true
	return cfg, sa, true
}

// invalidateArtifact records a corrupt or undecodable cache entry: one
// warning diagnostic, an invalidation counter tick, and a miss (the
// caller falls back to the cold path, which overwrites the bad entry).
func (e *Engine) invalidateArtifact(dc *diag.Collector, source string, err error) {
	e.opts.Telemetry.Add("artifact.invalidations", 1)
	e.opts.Telemetry.Add("artifact.cache_misses", 1)
	dc.Addf(diag.SevWarn, "artifact", source, 0,
		"cache entry unusable, falling back to cold path: %v", err)
}

// processMeta embeds and lexes metadata files into lines tagged with the
// @meta prefix, so metadata patterns are distinguishable and relations
// against them read like the paper's example
// (@meta/nfInfos/vrfName/vlanId [a:num]). A metadata file that panics
// processing or trips an input guard is skipped with a diagnostic
// (strict: aborts with an error).
func (e *Engine) processMeta(dc *diag.Collector, lim format.Limits, meta []Source, cache *lexer.Cache, interns *intern.Table) ([]lexer.Line, error) {
	var out []lexer.Line
	for _, m := range meta {
		lines, err := e.processOneMeta(dc, lim, m, cache, interns)
		if err != nil {
			return nil, err
		}
		out = append(out, lines...)
	}
	return out, nil
}

func (e *Engine) processOneMeta(dc *diag.Collector, lim format.Limits, m Source, cache *lexer.Cache, interns *intern.Table) (out []lexer.Line, err error) {
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(string(telemetry.StageProcess), m.Name, r)
			if e.opts.Strict {
				out, err = nil, fmt.Errorf("core: strict mode: %w", d.AsError())
				return
			}
			dc.Add(d)
			e.opts.Telemetry.Add("diag.panics", 1)
			out = nil
		}
	}()
	faultinject.At("core.process.meta", m.Name)
	cfg := format.Process(m.Name, m.Text, e.lx,
		format.Options{Embed: e.opts.ContextEmbedding, Limits: lim, Diagnostics: dc,
			Cache: cache, Interns: interns, Baseline: e.opts.LearnBaseline})
	if cfg.Skipped {
		return nil, nil
	}
	for _, line := range cfg.Lines {
		line.Meta = true
		line.Pattern = "@meta" + line.Pattern
		line.Display = "@meta" + line.Display
		line.Text = "@meta" + line.Text
		// The prefixed pattern is a new string; the ID assigned during
		// format processing refers to the unprefixed one.
		if interns != nil {
			line.PatternID = interns.ID(line.Pattern)
		} else {
			line.PatternID = 0
		}
		out = append(out, line)
	}
	return out, nil
}

// progress serializes Options.Progress callbacks.
func (e *Engine) progress(stage telemetry.Stage, done, total int) {
	if e.opts.Progress == nil {
		return
	}
	e.progressMu.Lock()
	e.opts.Progress(stage, done, total)
	e.progressMu.Unlock()
}

// forEachCtx runs fn(0..n-1) over the engine's worker pool, reporting
// per-item progress for the stage and stopping within one item of ctx
// being cancelled. Workers never start new items after cancellation;
// the first non-nil ctx error is returned once all workers have
// drained.
//
// Panics inside fn are contained per item: in lenient mode (the
// default) a recovered panic becomes an error diagnostic in dc
// attributed to name(i) — with stack captured — and the remaining items
// continue. With Options.Strict the first panic aborts the stage (the
// remaining items are never started) and is returned as an error, so
// tests and CI keep fail-fast semantics.
func (e *Engine) forEachCtx(ctx context.Context, dc *diag.Collector, stage telemetry.Stage, n int, name func(int) string, fn func(i int)) error {
	workers := e.opts.Parallelism
	if workers > n {
		workers = n
	}
	ictx, abort := context.WithCancel(ctx)
	defer abort()
	var failOnce sync.Once
	var failErr error
	var done atomic.Int64
	tick := func() {
		if e.opts.Progress != nil {
			e.progress(stage, int(done.Add(1)), n)
		}
	}
	call := func(i int) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			d := diag.FromPanic(string(stage), nameAt(name, i), r)
			if e.opts.Strict {
				failOnce.Do(func() {
					failErr = fmt.Errorf("core: %s stage aborted (strict): %w", stage, d.AsError())
					abort()
				})
				return
			}
			dc.Add(d)
			e.opts.Telemetry.Add("diag.panics", 1)
		}()
		fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ictx.Err() != nil {
				break
			}
			call(i)
			tick()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ictx.Err() != nil {
						continue // drain the channel without starting new work
					}
					call(i)
					tick()
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ictx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	// failErr is published before abort() and read after wg.Wait (or
	// after the sequential loop), so the read is race-free.
	if failErr != nil {
		return failErr
	}
	return ctx.Err()
}

// nameAt labels item i for diagnostics; a nil name func yields "".
func nameAt(name func(int) string, i int) string {
	if name == nil {
		return ""
	}
	return name(i)
}

// LearnResult is the output of Learn.
type LearnResult struct {
	// Set is the learned (and, if enabled, minimized) contract set.
	Set *contracts.Set
	// Minimization reports the contract reduction (§3.6); zero-valued
	// when minimization is disabled.
	Minimization minimize.Result
	// Stats summarizes the processed corpus.
	Stats ProcessStats
	// Diagnostics lists this run's contained faults and input-guard
	// degradations; empty on a clean run.
	Diagnostics []diag.Diagnostic
}

// Learn processes the training sources and mines a contract set. It is
// LearnContext with a background context.
func (e *Engine) Learn(sources, meta []Source) (*LearnResult, error) {
	return e.LearnContext(context.Background(), sources, meta)
}

// LearnContext runs the full learning pipeline — process, mine,
// minimize — under ctx. Cancellation is cooperative: every worker loop
// and per-category miner checks the context and the pipeline aborts
// within one unit of work, returning ctx.Err(). Stage timings,
// allocation deltas, and miner counters go to Options.Telemetry.
// Faults are contained per source: a panicked or guard-rejected source
// is dropped with a diagnostic (in the result and Options.Diagnostics)
// and learning proceeds on the survivors; Options.Strict aborts on the
// first fault instead.
func (e *Engine) LearnContext(ctx context.Context, sources, meta []Source) (*LearnResult, error) {
	dc := diag.New()
	defer e.opts.Diagnostics.Merge(dc)
	var res *LearnResult
	var err error
	if e.opts.shardingActive() {
		res, err = e.learnShardedContext(ctx, dc, sources, meta)
	} else {
		var cfgs []*lexer.Config
		var pstats ProcessStats
		cfgs, _, pstats, err = e.processContext(ctx, dc, sources, meta)
		if err != nil {
			return nil, err
		}
		res, err = e.learnProcessedContext(ctx, dc, cfgs, pstats)
	}
	if err != nil {
		return nil, err
	}
	res.Diagnostics = dc.All()
	return res, nil
}

// LearnProcessed mines contracts from already-processed configurations,
// for callers that processed once and learn repeatedly (e.g. ablations).
func (e *Engine) LearnProcessed(cfgs []*lexer.Config, pstats ProcessStats) (*LearnResult, error) {
	return e.LearnProcessedContext(context.Background(), cfgs, pstats)
}

// LearnProcessedContext is LearnProcessed under a cancellable context.
func (e *Engine) LearnProcessedContext(ctx context.Context, cfgs []*lexer.Config, pstats ProcessStats) (*LearnResult, error) {
	dc := diag.New()
	defer e.opts.Diagnostics.Merge(dc)
	res, err := e.learnProcessedContext(ctx, dc, cfgs, pstats)
	if err != nil {
		return nil, err
	}
	res.Diagnostics = dc.All()
	return res, nil
}

// newLearnMiner builds the run's miner from the engine options; both the
// unsharded and the sharded learn drivers construct it here, so the two
// paths mine under identical parameters by construction.
func (e *Engine) newLearnMiner(dc *diag.Collector, progress func(done, total int)) *mining.Miner {
	return mining.New(mining.Options{
		Support:          e.opts.Support,
		Confidence:       e.opts.Confidence,
		ScoreThreshold:   e.opts.ScoreThreshold,
		MaxFanout:        e.opts.MaxFanout,
		Categories:       e.categorySet(),
		ConstantLearning: e.opts.ConstantLearning,
		Parallelism:      e.opts.Parallelism,
		Transforms:       e.transforms,
		ExtraRelations:   e.opts.ExtraRelations,
		Telemetry:        e.opts.Telemetry,
		Diagnostics:      dc,
		Strict:           e.opts.Strict,
		Progress:         progress,
		Baseline:         e.opts.LearnBaseline,
	})
}

func (e *Engine) learnProcessedContext(ctx context.Context, dc *diag.Collector, cfgs []*lexer.Config, pstats ProcessStats) (*LearnResult, error) {
	var mineProgress func(done, total int)
	if e.opts.Progress != nil {
		mineProgress = func(done, total int) { e.progress(telemetry.StageMine, done, total) }
	}
	m := e.newLearnMiner(dc, mineProgress)
	sp := e.opts.Telemetry.StartSpan(string(telemetry.StageMine))
	set, err := m.MineContext(ctx, cfgs)
	sp.EndCount(len(cfgs))
	if err != nil {
		return nil, err
	}
	return e.finishLearn(ctx, dc, set, pstats)
}

// finishLearn is the learn pipeline's shared tail: minimization (with
// containment) and the learned-set gauge.
func (e *Engine) finishLearn(ctx context.Context, dc *diag.Collector, set *contracts.Set, pstats ProcessStats) (*LearnResult, error) {
	res := &LearnResult{Set: set, Stats: pstats}
	if e.opts.Minimize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.progress(telemetry.StageMinimize, 0, 1)
		minimized, minRes, err := e.minimizeContained(dc, set)
		if err != nil {
			return nil, err
		}
		res.Set = minimized
		res.Minimization = minRes
		e.progress(telemetry.StageMinimize, 1, 1)
	}
	e.opts.Telemetry.SetGauge("learn.contracts", float64(res.Set.Len()))
	return res, nil
}

// minimizeContained runs contract minimization with panic containment:
// a panic degrades to the unminimized set with a diagnostic (strict:
// an error), so a minimizer bug never costs the whole learned set.
func (e *Engine) minimizeContained(dc *diag.Collector, set *contracts.Set) (out *contracts.Set, res minimize.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(string(telemetry.StageMinimize), "", r)
			if e.opts.Strict {
				out, res, err = nil, minimize.Result{}, fmt.Errorf("core: strict mode: %w", d.AsError())
				return
			}
			dc.Add(d)
			e.opts.Telemetry.Add("diag.panics", 1)
			out, res = set, minimize.Result{}
		}
	}()
	faultinject.At("core.minimize", "")
	minimized, minRes := minimize.SetInstrumented(set, e.opts.Telemetry)
	return minimized, minRes, nil
}

func (e *Engine) categorySet() map[contracts.Category]bool {
	if len(e.opts.Categories) == 0 {
		return nil
	}
	m := make(map[contracts.Category]bool, len(e.opts.Categories))
	for _, c := range e.opts.Categories {
		m[c] = true
	}
	return m
}

// ConfigCoverage reports coverage for a single configuration.
type ConfigCoverage struct {
	Name        string
	SourceLines int
	Covered     int
	ByCategory  map[contracts.Category]int
}

// CoverageSummary aggregates coverage across a corpus (the data behind
// Tables 4 and 5).
type CoverageSummary struct {
	TotalLines   int
	CoveredLines int
	ByCategory   map[contracts.Category]int
	PerConfig    []ConfigCoverage
}

// Percent returns total line coverage in [0, 100].
func (s *CoverageSummary) Percent() float64 {
	if s.TotalLines == 0 {
		return 0
	}
	return 100 * float64(s.CoveredLines) / float64(s.TotalLines)
}

// CategoryPercent returns the coverage percentage attributable to one
// contract category.
func (s *CoverageSummary) CategoryPercent(cat contracts.Category) float64 {
	if s.TotalLines == 0 {
		return 0
	}
	return 100 * float64(s.ByCategory[cat]) / float64(s.TotalLines)
}

// CheckResult is the output of Check.
type CheckResult struct {
	// Violations lists every contract violation, sorted by file and
	// line.
	Violations []contracts.Violation
	// Coverage summarizes which configuration lines the contract set
	// tests (§3.9).
	Coverage CoverageSummary
	// Stats summarizes the processed corpus.
	Stats ProcessStats
	// Diagnostics lists this run's contained faults and input-guard
	// degradations; empty on a clean run.
	Diagnostics []diag.Diagnostic
}

// Check processes the test sources and evaluates the contract set
// against them, computing violations and coverage in parallel. It is
// CheckContext with a background context.
func (e *Engine) Check(set *contracts.Set, sources, meta []Source) (*CheckResult, error) {
	return e.CheckContext(context.Background(), set, sources, meta)
}

// CheckContext runs the checking pipeline under ctx, aborting within
// one configuration of cancellation with ctx.Err(). Stage timings and
// checker counters go to Options.Telemetry. Faults are contained per
// source and per contract: a panicking contract is skipped for that
// configuration with a diagnostic; Options.Strict aborts instead.
// With Options.Shards > 1 the corpus runs through the fleet-scale
// sharded driver (see shard.go) with byte-identical results.
func (e *Engine) CheckContext(ctx context.Context, set *contracts.Set, sources, meta []Source) (*CheckResult, error) {
	dc := diag.New()
	defer e.opts.Diagnostics.Merge(dc)
	if e.opts.shardingActive() {
		res, err := e.checkShardedContext(ctx, dc, set, sources, meta, nil)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = dc.All()
		return res, nil
	}
	cfgs, arts, pstats, err := e.processContext(ctx, dc, sources, meta)
	if err != nil {
		return nil, err
	}
	res, err := e.checkProcessedContext(ctx, dc, set, cfgs, pstats, arts, nil)
	if err != nil {
		return nil, err
	}
	res.Diagnostics = dc.All()
	return res, nil
}

// CheckProcessed evaluates a contract set against already-processed
// configurations.
func (e *Engine) CheckProcessed(set *contracts.Set, cfgs []*lexer.Config, pstats ProcessStats) (*CheckResult, error) {
	return e.CheckProcessedContext(context.Background(), set, cfgs, pstats)
}

// CheckProcessedContext is CheckProcessed under a cancellable context.
func (e *Engine) CheckProcessedContext(ctx context.Context, set *contracts.Set, cfgs []*lexer.Config, pstats ProcessStats) (*CheckResult, error) {
	dc := diag.New()
	defer e.opts.Diagnostics.Merge(dc)
	res, err := e.checkProcessedContext(ctx, dc, set, cfgs, pstats, nil, nil)
	if err != nil {
		return nil, err
	}
	res.Diagnostics = dc.All()
	return res, nil
}

// covCount is one configuration's coverage reduced to counts — the
// form both the cold path and a replayed check artifact can produce
// identically.
type covCount struct {
	sourceLines int
	covered     int
	byCategory  map[contracts.Category]int
}

// checkFingerprint hashes everything besides a config's own content
// that determines its check result: the processing options, the
// metadata corpus, the contract set (via its canonical JSON), and the
// checker's transform and relation registries. Any mismatch makes
// every check-artifact lookup miss, so replay is only ever exact.
func (e *Engine) checkFingerprint(set *contracts.Set, metaFP artifact.Key) (artifact.Key, bool) {
	setJSON, err := json.Marshal(set)
	if err != nil {
		return artifact.Key{}, false
	}
	h := artifact.NewHasher("concord/check/v1")
	h.Key(e.procFP).Key(metaFP).Bytes(setJSON)
	h.Bool(e.opts.LinearScan)
	h.Int(len(e.transforms))
	for _, t := range e.transforms {
		h.Str(t.Name)
	}
	h.Int(len(e.opts.ExtraRelations))
	for _, d := range e.opts.ExtraRelations {
		h.Str(string(d.Rel))
	}
	return h.Sum(), true
}

// checkKey is the cache address of one configuration's check result:
// content hash ⊕ run/contract fingerprint ⊕ name.
func checkKey(hash, checkFP artifact.Key, name string) artifact.Key {
	return artifact.NewHasher("concord/checkkey/v1").
		Key(hash).Key(checkFP).Str(name).Sum()
}

// checkedConfig is one configuration's check outcome in the form both
// drivers (unsharded and sharded) consume: violations, coverage
// counts, the unique-contract contribution when requested, and whether
// the result was replayed from a check artifact.
type checkedConfig struct {
	violations []contracts.Violation
	cov        *covCount
	contrib    map[string][]contracts.UniqueSite
	hit        bool
}

// checkOne evaluates one configuration: replayed from the check
// artifact at key when cache is non-nil and the key is usable, else
// checked fresh (and persisted when the result is certainly complete).
// wantContrib additionally extracts the configuration's
// unique-contract value multiset so the caller can merge
// cross-configuration uniqueness without retaining the config. Panics
// propagate to the caller's containment.
func (e *Engine) checkOne(dc *diag.Collector, checker *contracts.Checker, cfg *lexer.Config, cache *artifact.Cache, clean bool, key artifact.Key, wantContrib bool) checkedConfig {
	faultinject.At("core.check.config", cfg.Name)
	warmKey := cache != nil && !key.IsZero()
	if warmKey {
		payload, lerr := cache.Load(artifact.KindCheck, key)
		switch {
		case lerr == nil:
			entry, derr := artifact.DecodeCheckEntry(payload)
			if derr == nil {
				e.opts.Telemetry.Add("artifact.cache_hits", 1)
				e.opts.Telemetry.Add("artifact.bytes_read", int64(len(payload)))
				return checkedConfig{
					violations: entry.Violations,
					cov:        &covCount{entry.SourceLines, entry.Covered, entry.ByCategory},
					contrib:    entry.Unique,
					hit:        true,
				}
			}
			e.invalidateArtifact(dc, cfg.Name, derr)
		case errors.Is(lerr, artifact.ErrMiss):
			e.opts.Telemetry.Add("artifact.cache_misses", 1)
		default:
			e.invalidateArtifact(dc, cfg.Name, lerr)
		}
	}
	before := dc.Len()
	out := checkedConfig{violations: checker.Check(cfg)}
	if cov := checker.Coverage(cfg); cov != nil {
		cc := &covCount{cov.SourceLines, len(cov.Covered), make(map[contracts.Category]int, len(cov.ByCategory))}
		for cat, lines := range cov.ByCategory {
			cc.byCategory[cat] = len(lines)
		}
		out.cov = cc
	}
	if wantContrib {
		out.contrib = checker.UniqueContributions(cfg)
	}
	// Persist only results that are certainly complete: the config
	// processed cleanly, coverage succeeded, and the check added no
	// diagnostics (the Len comparison is conservative under concurrent
	// workers — a skipped store costs speed, never correctness).
	if warmKey && clean && out.cov != nil && dc.Len() == before {
		entry := &artifact.CheckEntry{
			Violations:  out.violations,
			SourceLines: out.cov.sourceLines,
			Covered:     out.cov.covered,
			ByCategory:  out.cov.byCategory,
			Unique:      out.contrib,
		}
		payload := artifact.EncodeCheckEntry(entry)
		if serr := cache.Store(artifact.KindCheck, key, payload); serr != nil {
			e.opts.Telemetry.Add("artifact.store_errors", 1)
		} else {
			e.opts.Telemetry.Add("artifact.bytes_written", int64(len(payload)))
		}
	}
	return out
}

// checkProcessedContext evaluates the set against the processed
// configurations. checker, when non-nil, is a pre-compiled checker to
// reuse (the registry's compile-once-serve-many path); nil builds one
// for this run.
func (e *Engine) checkProcessedContext(ctx context.Context, dc *diag.Collector, set *contracts.Set, cfgs []*lexer.Config, pstats ProcessStats, arts *artState, checker *contracts.Checker) (*CheckResult, error) {
	if checker == nil {
		checker = e.newChecker(set, dc, sharedInterns(cfgs))
	}
	perCfgViolations := make([][]contracts.Violation, len(cfgs))
	perCfgCov := make([]*covCount, len(cfgs))
	warm := arts != nil && e.opts.Incremental
	var checkFP artifact.Key
	var contribs []map[string][]contracts.UniqueSite
	var checkKeys []artifact.Key
	var checkHits []bool
	if warm {
		checkFP, warm = e.checkFingerprint(set, arts.metaFP)
	}
	if warm {
		contribs = make([]map[string][]contracts.UniqueSite, len(cfgs))
		checkKeys = make([]artifact.Key, len(cfgs))
		checkHits = make([]bool, len(cfgs))
		for i := range cfgs {
			if !arts.per[i].hash.IsZero() {
				checkKeys[i] = checkKey(arts.per[i].hash, checkFP, cfgs[i].Name)
			}
		}
	}
	sp := e.opts.Telemetry.StartSpan(string(telemetry.StageCheck))
	err := e.forEachCtx(ctx, dc, telemetry.StageCheck, len(cfgs),
		func(i int) string { return cfgs[i].Name },
		func(i int) {
			var cache *artifact.Cache
			var clean bool
			var key artifact.Key
			if warm {
				cache, clean, key = arts.cache, arts.per[i].clean, checkKeys[i]
			}
			r := e.checkOne(dc, checker, cfgs[i], cache, clean, key, warm)
			perCfgViolations[i] = r.violations
			perCfgCov[i] = r.cov
			if warm {
				contribs[i] = r.contrib
				checkHits[i] = r.hit
			}
		})
	sp.EndCount(len(cfgs))
	if err != nil {
		return nil, err
	}

	res := &CheckResult{Stats: pstats}
	for _, vs := range perCfgViolations {
		res.Violations = append(res.Violations, vs...)
	}
	if warm {
		// The incremental global-uniqueness pass: cached configs
		// contribute their persisted value multisets, fresh ones the
		// multisets extracted above, and the merge reproduces
		// CheckUniqueAcross exactly.
		names := make([]string, len(cfgs))
		for i := range cfgs {
			names[i] = cfgs[i].Name
			if contribs[i] == nil {
				// The worker panicked before extracting; recover the
				// contribution so cross-config uniqueness matches the
				// cold path, which always scans every surviving config.
				contribs[i] = checker.UniqueContributions(cfgs[i])
			}
		}
		res.Violations = append(res.Violations, checker.CheckUniqueFromContributions(names, contribs)...)
	} else {
		res.Violations = append(res.Violations, checker.CheckUniqueAcross(cfgs)...)
	}
	sortViolations(res.Violations)

	res.Coverage.ByCategory = make(map[contracts.Category]int)
	for i, cc := range perCfgCov {
		if cc == nil {
			// This configuration's check panicked and was contained;
			// the diagnostic is already in dc.
			continue
		}
		out := ConfigCoverage{
			Name:        cfgs[i].Name,
			SourceLines: cc.sourceLines,
			Covered:     cc.covered,
			ByCategory:  make(map[contracts.Category]int, len(cc.byCategory)),
		}
		for cat, n := range cc.byCategory {
			out.ByCategory[cat] = n
			res.Coverage.ByCategory[cat] += n
		}
		res.Coverage.TotalLines += cc.sourceLines
		res.Coverage.CoveredLines += cc.covered
		res.Coverage.PerConfig = append(res.Coverage.PerConfig, out)
	}
	if warm {
		m := &artifact.Manifest{
			Schema:     artifact.SchemaVersion,
			OptionsFP:  e.procFP.Hex(),
			ContractFP: checkFP.Hex(),
		}
		for i := range cfgs {
			m.Configs = append(m.Configs, artifact.ManifestEntry{
				Name:        cfgs[i].Name,
				ContentHash: arts.per[i].hash.Hex(),
				LexHit:      arts.per[i].lexHit,
				CheckHit:    checkHits[i],
			})
		}
		if merr := arts.cache.WriteManifest(m); merr != nil {
			e.opts.Telemetry.Add("artifact.store_errors", 1)
		}
	}
	return res, nil
}

func sortViolations(vs []contracts.Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].File != vs[j].File {
			return vs[i].File < vs[j].File
		}
		if vs[i].Line != vs[j].Line {
			return vs[i].Line < vs[j].Line
		}
		return vs[i].ContractID < vs[j].ContractID
	})
}

// newChecker builds the shared checker for a check or coverage run.
// The contract set is compiled once here; the worker pool then shares
// the compiled set (pattern interning, category/anchor buckets, cache
// slot layout) across every configuration instead of re-deriving
// per-worker state.
func (e *Engine) newChecker(set *contracts.Set, dc *diag.Collector, interns *intern.Table) *contracts.Checker {
	return contracts.NewChecker(set,
		contracts.WithTransforms(e.transforms),
		contracts.WithRelations(e.opts.ExtraRelations),
		contracts.WithTelemetry(e.opts.Telemetry),
		contracts.WithDiagnostics(dc),
		contracts.WithStrict(e.opts.Strict),
		contracts.WithLinearScan(e.opts.LinearScan),
		contracts.WithInterns(interns))
}

// sharedInterns returns the intern table common to every configuration,
// or nil when the corpus carries none or mixes tables from different
// runs; only a corpus-wide table can accelerate the checker's view
// index.
func sharedInterns(cfgs []*lexer.Config) *intern.Table {
	if len(cfgs) == 0 || cfgs[0].Interns == nil {
		return nil
	}
	tab := cfgs[0].Interns
	for _, cfg := range cfgs[1:] {
		if cfg.Interns != tab {
			return nil
		}
	}
	return tab
}

// Transforms exposes the default transformation registry for callers
// that render or re-evaluate contracts.
func Transforms() []relations.Transform { return relations.DefaultTransforms() }
