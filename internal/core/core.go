// Package core is Concord's engine: it orchestrates format inference and
// context embedding (§3.1), pattern and value extraction (§3.2),
// contract mining (§3.4–§3.5), contract minimization (§3.6), metadata
// incorporation (§3.7), contract checking (§3.8), and coverage
// measurement (§3.9). The root concord package re-exports this engine as
// the public API.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"concord/internal/contracts"
	"concord/internal/format"
	"concord/internal/lexer"
	"concord/internal/minimize"
	"concord/internal/mining"
	"concord/internal/relations"
)

// Source is one input file: a configuration or a metadata document.
type Source struct {
	// Name identifies the file (shown in violations).
	Name string
	// Text is the raw file content.
	Text []byte
}

// Options configures the engine, mirroring the command-line parameters
// of §4.
type Options struct {
	// Support (S): minimum number of configurations a pattern must
	// appear in. Default 5.
	Support int
	// Confidence (C): required fraction of supporting configurations in
	// which a contract holds. Default 0.96.
	Confidence float64
	// ScoreThreshold filters spurious relational contracts (§3.5).
	// Default 8.
	ScoreThreshold float64
	// Parallelism is the worker count for processing, mining, and
	// checking; 0 selects GOMAXPROCS.
	Parallelism int
	// ContextEmbedding enables hierarchical context embedding (§3.1).
	ContextEmbedding bool
	// ConstantLearning additionally learns exact-line contracts (§4).
	ConstantLearning bool
	// Minimize runs relational contract minimization (§3.6).
	Minimize bool
	// Categories restricts learning to the listed categories; empty
	// learns all. (The production deployment disables ordering, §5.4.)
	Categories []contracts.Category
	// UserTokens extends the lexer with domain-specific token types.
	UserTokens []lexer.TokenSpec
	// ExtraTransforms extends the data transformation registry beyond
	// the defaults (identity, hex, str, octets, MAC segments); §4 notes
	// the implementation keeps relation learning extensible.
	ExtraTransforms []relations.Transform
	// ExtraRelations adds user-defined relations (with their witness
	// indexes) to the built-in four.
	ExtraRelations []relations.Definition
	// MaxFanout bounds per-value candidate generation. Default 64.
	MaxFanout int
}

// DefaultOptions returns the paper's defaults: S=5, C=96%, context
// embedding and minimization on.
func DefaultOptions() Options {
	return Options{
		Support:          5,
		Confidence:       0.96,
		ScoreThreshold:   8,
		ContextEmbedding: true,
		Minimize:         true,
	}
}

// Engine runs Concord's learn and check pipelines. Safe for concurrent
// use after construction.
type Engine struct {
	opts       Options
	lx         *lexer.Lexer
	transforms []relations.Transform
}

// New builds an engine, compiling any user token specifications.
func New(opts Options) (*Engine, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	lx, err := lexer.New(opts.UserTokens...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	seen := make(map[string]bool)
	transforms := relations.DefaultTransforms()
	for _, t := range transforms {
		seen[t.Name] = true
	}
	for _, t := range opts.ExtraTransforms {
		if t.Name == "" || t.Apply == nil {
			return nil, fmt.Errorf("core: extra transform needs a name and an Apply func")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("core: duplicate transform %q", t.Name)
		}
		seen[t.Name] = true
		transforms = append(transforms, t)
	}
	for i := range opts.ExtraRelations {
		if err := opts.ExtraRelations[i].Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return &Engine{opts: opts, lx: lx, transforms: transforms}, nil
}

// MustNew is New for known-good options; it panics on error.
func MustNew(opts Options) *Engine {
	e, err := New(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// ProcessStats summarizes a processed corpus (the per-dataset columns of
// Table 3).
type ProcessStats struct {
	// Configs is the number of configuration files.
	Configs int
	// Lines is the total number of non-blank configuration lines.
	Lines int
	// Patterns is the number of distinct extracted patterns.
	Patterns int
	// Parameters is the number of distinct (pattern, parameter) slots.
	Parameters int
}

// Process embeds and lexes every source in parallel, appending processed
// metadata lines to each configuration (§3.7). The result order matches
// the input order.
func (e *Engine) Process(sources, meta []Source) ([]*lexer.Config, ProcessStats) {
	metaLines := e.processMeta(meta)
	cfgs := make([]*lexer.Config, len(sources))
	e.forEach(len(sources), func(i int) {
		cfg := format.Process(sources[i].Name, sources[i].Text, e.lx, format.Options{Embed: e.opts.ContextEmbedding})
		cfg.Lines = append(cfg.Lines, metaLines...)
		cfgs[i] = &cfg
	})
	st := ProcessStats{Configs: len(cfgs)}
	patterns := make(map[string]int)
	for _, cfg := range cfgs {
		st.Lines += cfg.SourceLines
		for i := range cfg.Lines {
			line := &cfg.Lines[i]
			if line.Meta {
				continue
			}
			if n, ok := patterns[line.Pattern]; !ok || len(line.Params) > n {
				patterns[line.Pattern] = len(line.Params)
			}
		}
	}
	st.Patterns = len(patterns)
	for _, n := range patterns {
		st.Parameters += n
	}
	return cfgs, st
}

// processMeta embeds and lexes metadata files into lines tagged with the
// @meta prefix, so metadata patterns are distinguishable and relations
// against them read like the paper's example
// (@meta/nfInfos/vrfName/vlanId [a:num]).
func (e *Engine) processMeta(meta []Source) []lexer.Line {
	var out []lexer.Line
	for _, m := range meta {
		cfg := format.Process(m.Name, m.Text, e.lx, format.Options{Embed: e.opts.ContextEmbedding})
		for _, line := range cfg.Lines {
			line.Meta = true
			line.Pattern = "@meta" + line.Pattern
			line.Display = "@meta" + line.Display
			line.Text = "@meta" + line.Text
			out = append(out, line)
		}
	}
	return out
}

// forEach runs fn(0..n-1) over the engine's worker pool.
func (e *Engine) forEach(n int, fn func(i int)) {
	workers := e.opts.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// LearnResult is the output of Learn.
type LearnResult struct {
	// Set is the learned (and, if enabled, minimized) contract set.
	Set *contracts.Set
	// Minimization reports the contract reduction (§3.6); zero-valued
	// when minimization is disabled.
	Minimization minimize.Result
	// Stats summarizes the processed corpus.
	Stats ProcessStats
}

// Learn processes the training sources and mines a contract set.
func (e *Engine) Learn(sources, meta []Source) (*LearnResult, error) {
	cfgs, pstats := e.Process(sources, meta)
	return e.LearnProcessed(cfgs, pstats)
}

// LearnProcessed mines contracts from already-processed configurations,
// for callers that processed once and learn repeatedly (e.g. ablations).
func (e *Engine) LearnProcessed(cfgs []*lexer.Config, pstats ProcessStats) (*LearnResult, error) {
	m := mining.New(mining.Options{
		Support:          e.opts.Support,
		Confidence:       e.opts.Confidence,
		ScoreThreshold:   e.opts.ScoreThreshold,
		MaxFanout:        e.opts.MaxFanout,
		Categories:       e.categorySet(),
		ConstantLearning: e.opts.ConstantLearning,
		Parallelism:      e.opts.Parallelism,
		Transforms:       e.transforms,
		ExtraRelations:   e.opts.ExtraRelations,
	})
	set := m.Mine(cfgs)
	res := &LearnResult{Set: set, Stats: pstats}
	if e.opts.Minimize {
		minimized, minRes := minimize.Set(set)
		res.Set = minimized
		res.Minimization = minRes
	}
	return res, nil
}

func (e *Engine) categorySet() map[contracts.Category]bool {
	if len(e.opts.Categories) == 0 {
		return nil
	}
	m := make(map[contracts.Category]bool, len(e.opts.Categories))
	for _, c := range e.opts.Categories {
		m[c] = true
	}
	return m
}

// ConfigCoverage reports coverage for a single configuration.
type ConfigCoverage struct {
	Name        string
	SourceLines int
	Covered     int
	ByCategory  map[contracts.Category]int
}

// CoverageSummary aggregates coverage across a corpus (the data behind
// Tables 4 and 5).
type CoverageSummary struct {
	TotalLines   int
	CoveredLines int
	ByCategory   map[contracts.Category]int
	PerConfig    []ConfigCoverage
}

// Percent returns total line coverage in [0, 100].
func (s *CoverageSummary) Percent() float64 {
	if s.TotalLines == 0 {
		return 0
	}
	return 100 * float64(s.CoveredLines) / float64(s.TotalLines)
}

// CategoryPercent returns the coverage percentage attributable to one
// contract category.
func (s *CoverageSummary) CategoryPercent(cat contracts.Category) float64 {
	if s.TotalLines == 0 {
		return 0
	}
	return 100 * float64(s.ByCategory[cat]) / float64(s.TotalLines)
}

// CheckResult is the output of Check.
type CheckResult struct {
	// Violations lists every contract violation, sorted by file and
	// line.
	Violations []contracts.Violation
	// Coverage summarizes which configuration lines the contract set
	// tests (§3.9).
	Coverage CoverageSummary
	// Stats summarizes the processed corpus.
	Stats ProcessStats
}

// Check processes the test sources and evaluates the contract set
// against them, computing violations and coverage in parallel.
func (e *Engine) Check(set *contracts.Set, sources, meta []Source) (*CheckResult, error) {
	cfgs, pstats := e.Process(sources, meta)
	return e.CheckProcessed(set, cfgs, pstats)
}

// CheckProcessed evaluates a contract set against already-processed
// configurations.
func (e *Engine) CheckProcessed(set *contracts.Set, cfgs []*lexer.Config, pstats ProcessStats) (*CheckResult, error) {
	checker := contracts.NewCheckerWith(set, e.transforms, e.opts.ExtraRelations)
	perCfgViolations := make([][]contracts.Violation, len(cfgs))
	perCfgCoverage := make([]*contracts.CoverageResult, len(cfgs))
	e.forEach(len(cfgs), func(i int) {
		perCfgViolations[i] = checker.Check(cfgs[i])
		perCfgCoverage[i] = checker.Coverage(cfgs[i])
	})

	res := &CheckResult{Stats: pstats}
	for _, vs := range perCfgViolations {
		res.Violations = append(res.Violations, vs...)
	}
	res.Violations = append(res.Violations, checker.CheckUniqueAcross(cfgs)...)
	sortViolations(res.Violations)

	res.Coverage.ByCategory = make(map[contracts.Category]int)
	for i, cov := range perCfgCoverage {
		cc := ConfigCoverage{
			Name:        cfgs[i].Name,
			SourceLines: cov.SourceLines,
			Covered:     len(cov.Covered),
			ByCategory:  make(map[contracts.Category]int),
		}
		for cat, lines := range cov.ByCategory {
			cc.ByCategory[cat] = len(lines)
			res.Coverage.ByCategory[cat] += len(lines)
		}
		res.Coverage.TotalLines += cov.SourceLines
		res.Coverage.CoveredLines += len(cov.Covered)
		res.Coverage.PerConfig = append(res.Coverage.PerConfig, cc)
	}
	return res, nil
}

func sortViolations(vs []contracts.Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].File != vs[j].File {
			return vs[i].File < vs[j].File
		}
		if vs[i].Line != vs[j].Line {
			return vs[i].Line < vs[j].Line
		}
		return vs[i].ContractID < vs[j].ContractID
	})
}

// Transforms exposes the default transformation registry for callers
// that render or re-evaluate contracts.
func Transforms() []relations.Transform { return relations.DefaultTransforms() }
