package netdata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseIP4(t *testing.T) {
	ip, err := ParseIP4("10.14.14.34")
	if err != nil {
		t.Fatalf("ParseIP4: %v", err)
	}
	if ip.String() != "10.14.14.34" {
		t.Errorf("String() = %q", ip.String())
	}
	if ip.Is6() {
		t.Error("Is6() = true for IPv4")
	}
	if o, ok := ip.Octet(3); !ok || o != 14 {
		t.Errorf("Octet(3) = %d, %v", o, ok)
	}
	if _, ok := ip.Octet(5); ok {
		t.Error("Octet(5) succeeded")
	}
}

func TestParseIP4Invalid(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "01234.1.1.1"} {
		if _, err := ParseIP4(s); err == nil {
			t.Errorf("ParseIP4(%q) succeeded, want error", s)
		}
	}
}

func TestParseIP6(t *testing.T) {
	cases := map[string]string{
		"2001:db8:0:0:0:0:0:1": "2001:db8::1",
		"2001:db8::1":          "2001:db8::1",
		"::":                   "::",
		"::1":                  "::1",
		"fe80::":               "fe80::",
		"::ffff:10.0.0.1":      "::ffff:a00:1",
		"1:2:3:4:5:6:7:8":      "1:2:3:4:5:6:7:8",
		"2001:DB8::A":          "2001:db8::a",
	}
	for in, want := range cases {
		ip, err := ParseIP6(in)
		if err != nil {
			t.Errorf("ParseIP6(%q): %v", in, err)
			continue
		}
		if ip.String() != want {
			t.Errorf("ParseIP6(%q).String() = %q, want %q", in, ip.String(), want)
		}
		if !ip.Is6() {
			t.Errorf("ParseIP6(%q).Is6() = false", in)
		}
	}
}

func TestParseIP6Invalid(t *testing.T) {
	for _, s := range []string{
		"", ":", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9", "::1::2",
		"12345::", "g::1", "00:00:0c:d3:00:6e", "1:2:3:4:5:6:7:8::",
	} {
		if _, err := ParseIP6(s); err == nil {
			t.Errorf("ParseIP6(%q) succeeded, want error", s)
		}
	}
}

func TestIP6RoundTrip(t *testing.T) {
	// Canonical form must reparse to an identical value.
	f := func(raw [16]byte) bool {
		ip := IP{b: raw, v6: true}
		back, err := ParseIP6(ip.String())
		if err != nil {
			return false
		}
		return back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix4(t *testing.T) {
	p, err := ParsePrefix4("10.14.14.34/32")
	if err != nil {
		t.Fatalf("ParsePrefix4: %v", err)
	}
	if p.String() != "10.14.14.34/32" {
		t.Errorf("String() = %q", p.String())
	}
	ip, _ := ParseIP4("10.14.14.34")
	if !p.ContainsIP(ip) {
		t.Error("/32 does not contain its own address")
	}
	other, _ := ParseIP4("10.14.14.35")
	if p.ContainsIP(other) {
		t.Error("/32 contains a different address")
	}
}

func TestPrefixKeepsHostBits(t *testing.T) {
	// Interface addresses written as address/length keep their host
	// bits: 10.14.14.34/24 and 10.14.14.99/24 are distinct values even
	// though they denote the same network.
	p, err := ParsePrefix4("10.14.14.34/24")
	if err != nil {
		t.Fatalf("ParsePrefix4: %v", err)
	}
	if p.String() != "10.14.14.34/24" {
		t.Errorf("host bits lost: %q", p.String())
	}
	q, _ := ParsePrefix4("10.14.14.99/24")
	if p.Key() == q.Key() {
		t.Error("distinct interface addresses share a key")
	}
	// Containment still works off the network part only.
	ip, _ := ParseIP4("10.14.14.200")
	if !p.ContainsIP(ip) {
		t.Error("containment should ignore host bits")
	}
}

func TestDefaultRouteContainsEverything(t *testing.T) {
	p, _ := ParsePrefix4("0.0.0.0/0")
	for _, s := range []string{"1.2.3.4", "255.255.255.255", "0.0.0.0"} {
		ip, _ := ParseIP4(s)
		if !p.ContainsIP(ip) {
			t.Errorf("0.0.0.0/0 does not contain %s", s)
		}
	}
}

func TestContainsPrefix(t *testing.T) {
	sup, _ := ParsePrefix4("10.0.0.0/8")
	sub, _ := ParsePrefix4("10.14.0.0/16")
	if !sup.ContainsPrefix(sub) {
		t.Error("10.0.0.0/8 should contain 10.14.0.0/16")
	}
	if sub.ContainsPrefix(sup) {
		t.Error("10.14.0.0/16 should not contain 10.0.0.0/8")
	}
	if !sup.ContainsPrefix(sup) {
		t.Error("prefix should contain itself")
	}
	v6, _ := ParsePrefix6("2001:db8::/32")
	if sup.ContainsPrefix(v6) || v6.ContainsPrefix(sup) {
		t.Error("cross-family containment must be false")
	}
}

func TestParsePrefix6(t *testing.T) {
	p, err := ParsePrefix6("2001:db8::/32")
	if err != nil {
		t.Fatalf("ParsePrefix6: %v", err)
	}
	if p.Bits() != 128 || p.Len() != 32 {
		t.Errorf("Bits/Len = %d/%d", p.Bits(), p.Len())
	}
	ip, _ := ParseIP6("2001:db8::42")
	if !p.ContainsIP(ip) {
		t.Error("prefix does not contain member address")
	}
}

func TestPrefixInvalid(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "10.0.0.0/-1", "zz/8"} {
		if _, err := ParsePrefix4(s); err == nil {
			t.Errorf("ParsePrefix4(%q) succeeded, want error", s)
		}
	}
	if _, err := ParsePrefix6("::/129"); err == nil {
		t.Error("ParsePrefix6(::/129) succeeded, want error")
	}
}

func TestContainmentConsistentWithBits(t *testing.T) {
	// Property: containment computed bit-by-bit matches an independent
	// mask-based computation for random IPv4 prefixes.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		addr := rng.Uint32()
		length := rng.Intn(33)
		ip := IP{b: [16]byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}}
		p, err := NewPrefix(ip, length)
		if err != nil {
			t.Fatalf("NewPrefix: %v", err)
		}
		probe := rng.Uint32()
		probeIP := IP{b: [16]byte{byte(probe >> 24), byte(probe >> 16), byte(probe >> 8), byte(probe)}}
		var mask uint32
		if length > 0 {
			mask = ^uint32(0) << (32 - length)
		}
		want := addr&mask == probe&mask
		if got := p.ContainsIP(probeIP); got != want {
			t.Fatalf("ContainsIP(%s in %s) = %v, want %v", probeIP, p, got, want)
		}
	}
}

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("00:00:0c:d3:00:6e")
	if err != nil {
		t.Fatalf("ParseMAC: %v", err)
	}
	if m.String() != "00:00:0c:d3:00:6e" {
		t.Errorf("String() = %q", m.String())
	}
	if seg, ok := m.Segment(6); !ok || seg != "6e" {
		t.Errorf("Segment(6) = %q, %v; want 6e", seg, ok)
	}
	if seg, ok := m.Segment(1); !ok || seg != "0" {
		t.Errorf("Segment(1) = %q; want 0 (minimal hex)", seg)
	}
	if _, ok := m.Segment(7); ok {
		t.Error("Segment(7) succeeded")
	}
}

func TestParseMACInvalid(t *testing.T) {
	for _, s := range []string{"", "00:00:0c:d3:00", "00:00:0c:d3:00:6e:ff", "zz:00:0c:d3:00:6e", "000:00:0c:d3:00:6e"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", s)
		}
	}
}

func TestHexContractExample(t *testing.T) {
	// The Figure 1 contract: hex(110) == segment(00:00:0c:d3:00:6e, 6).
	n := NewNum(110)
	m, _ := ParseMAC("00:00:0c:d3:00:6e")
	seg, _ := m.Segment(6)
	if n.Hex() != seg {
		t.Errorf("hex(110) = %q, segment = %q; want equal", n.Hex(), seg)
	}
}

func TestByteAccessors(t *testing.T) {
	ip4, _ := ParseIP4("1.2.3.4")
	if got := ip4.Bytes(); len(got) != 4 || got[3] != 4 {
		t.Errorf("v4 Bytes = %v", got)
	}
	ip6, _ := ParseIP6("2001:db8::1")
	if got := ip6.Bytes(); len(got) != 16 || got[15] != 1 {
		t.Errorf("v6 Bytes = %v", got)
	}
	m, _ := ParseMAC("00:11:22:33:44:55")
	if got := m.Bytes(); len(got) != 6 || got[5] != 0x55 {
		t.Errorf("mac Bytes = %v", got)
	}
	// Bytes returns copies.
	b := ip4.Bytes()
	b[0] = 99
	if ip4.String() != "1.2.3.4" {
		t.Error("Bytes aliases internal state")
	}
}
