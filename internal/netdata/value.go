// Package netdata defines the typed data values that Concord extracts
// from configuration text: numbers, hexadecimal literals, booleans, MAC
// addresses, IPv4/IPv6 addresses and prefixes, and free-form strings.
//
// Values are immutable. Each value has a Kind describing its runtime
// representation and a canonical Key used for hashing and equality during
// relational contract mining. Keys embed the kind so that values of
// different kinds never collide (a relation between a number and a string
// must go through an explicit transformation first).
package netdata

import (
	"fmt"
	"math/big"
	"strings"
)

// Kind enumerates the runtime representations of configuration values.
type Kind uint8

// The supported value kinds.
const (
	KindInvalid Kind = iota
	KindNum          // arbitrary-precision non-negative integer
	KindHex          // hexadecimal integer literal (0x...)
	KindBool         // true / false
	KindMAC          // 48-bit MAC address
	KindIP4          // IPv4 address
	KindIP6          // IPv6 address
	KindPfx4         // IPv4 prefix (address/length)
	KindPfx6         // IPv6 prefix (address/length)
	KindString       // free-form string (user token types, transforms)
)

// String returns the lower-case name of the kind, matching the token
// names used in lexer patterns (e.g. "num", "ip4").
func (k Kind) String() string {
	switch k {
	case KindNum:
		return "num"
	case KindHex:
		return "hex"
	case KindBool:
		return "bool"
	case KindMAC:
		return "mac"
	case KindIP4:
		return "ip4"
	case KindIP6:
		return "ip6"
	case KindPfx4:
		return "pfx4"
	case KindPfx6:
		return "pfx6"
	case KindString:
		return "str"
	default:
		return "invalid"
	}
}

// Value is an immutable typed configuration value.
type Value interface {
	// Kind reports the runtime representation of the value.
	Kind() Kind
	// Key returns a canonical string that uniquely identifies the value
	// within its kind. Keys embed the kind name so values of different
	// kinds never compare equal.
	Key() string
	// String renders the value for display, approximating its original
	// configuration spelling.
	String() string
}

// Num is an arbitrary-precision non-negative integer value.
type Num struct {
	i *big.Int
}

// NewNum returns a Num holding v.
func NewNum(v int64) Num { return Num{big.NewInt(v)} }

// ParseNum parses a decimal integer of arbitrary size.
func ParseNum(s string) (Num, error) {
	i, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return Num{}, fmt.Errorf("netdata: invalid number %q", s)
	}
	return Num{i}, nil
}

// Kind implements Value.
func (n Num) Kind() Kind { return KindNum }

// Key implements Value.
func (n Num) Key() string { return "num:" + n.i.String() }

// String implements Value.
func (n Num) String() string { return n.i.String() }

// Int64 returns the value as an int64 and whether it fits.
func (n Num) Int64() (int64, bool) {
	if n.i == nil || !n.i.IsInt64() {
		return 0, false
	}
	return n.i.Int64(), true
}

// Big returns a copy of the underlying big integer.
func (n Num) Big() *big.Int { return new(big.Int).Set(n.i) }

// Hex returns the value formatted in lower-case hexadecimal without a
// leading "0x" (e.g. 110 -> "6e"). This is the hex() data transformation
// from the paper.
func (n Num) Hex() string { return n.i.Text(16) }

// Cmp compares two numbers, returning -1, 0, or 1.
func (n Num) Cmp(o Num) int { return n.i.Cmp(o.i) }

// Sub returns n - o as a new Num.
func (n Num) Sub(o Num) Num { return Num{new(big.Int).Sub(n.i, o.i)} }

// Hex is a hexadecimal integer literal such as 0x1f.
type Hex struct {
	i   *big.Int
	raw string
}

// ParseHex parses a "0x"-prefixed hexadecimal literal.
func ParseHex(s string) (Hex, error) {
	body := strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if body == s {
		return Hex{}, fmt.Errorf("netdata: hex literal %q missing 0x prefix", s)
	}
	i, ok := new(big.Int).SetString(body, 16)
	if !ok {
		return Hex{}, fmt.Errorf("netdata: invalid hex literal %q", s)
	}
	return Hex{i: i, raw: s}, nil
}

// Kind implements Value.
func (h Hex) Kind() Kind { return KindHex }

// Key implements Value.
func (h Hex) Key() string { return "hex:" + h.i.Text(16) }

// String implements Value.
func (h Hex) String() string { return h.raw }

// Int64 returns the value as an int64 and whether it fits.
func (h Hex) Int64() (int64, bool) {
	if h.i == nil || !h.i.IsInt64() {
		return 0, false
	}
	return h.i.Int64(), true
}

// Bool is a boolean literal.
type Bool bool

// ParseBool parses "true" or "false".
func ParseBool(s string) (Bool, error) {
	switch s {
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	return false, fmt.Errorf("netdata: invalid bool %q", s)
}

// Kind implements Value.
func (b Bool) Kind() Kind { return KindBool }

// Key implements Value.
func (b Bool) Key() string { return "bool:" + b.String() }

// String implements Value.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Str is a free-form string value. It backs user-defined token types and
// the results of string-producing data transformations such as str() and
// segment().
type Str string

// Kind implements Value.
func (s Str) Kind() Kind { return KindString }

// Key implements Value.
func (s Str) Key() string { return "str:" + string(s) }

// String implements Value.
func (s Str) String() string { return string(s) }
