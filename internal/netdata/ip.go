package netdata

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 or IPv6 address. IPv4 addresses occupy the first four
// bytes of the backing array; the v6 flag distinguishes the families.
type IP struct {
	b  [16]byte
	v6 bool
}

// ParseIP4 parses a dotted-quad IPv4 address. It rejects octets greater
// than 255 and octet counts other than four, so looser lexer regexes can
// be validated after matching.
func ParseIP4(s string) (IP, error) {
	var ip IP
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("netdata: invalid IPv4 address %q", s)
	}
	for i, p := range parts {
		if p == "" || len(p) > 3 {
			return ip, fmt.Errorf("netdata: invalid IPv4 address %q", s)
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return ip, fmt.Errorf("netdata: invalid IPv4 address %q", s)
		}
		ip.b[i] = byte(n)
	}
	return ip, nil
}

// ParseIP6 parses an IPv6 address, supporting "::" compression and a
// trailing embedded IPv4 address (e.g. ::ffff:10.0.0.1).
func ParseIP6(s string) (IP, error) {
	ip := IP{v6: true}
	if s == "" {
		return ip, fmt.Errorf("netdata: invalid IPv6 address %q", s)
	}
	// Split on "::" first; at most one occurrence is allowed.
	var head, tail string
	var compressed bool
	if i := strings.Index(s, "::"); i >= 0 {
		compressed = true
		head, tail = s[:i], s[i+2:]
		if strings.Contains(tail, "::") {
			return ip, fmt.Errorf("netdata: invalid IPv6 address %q", s)
		}
	} else {
		head = s
	}
	parseGroups := func(part string) ([]uint16, error) {
		if part == "" {
			return nil, nil
		}
		fields := strings.Split(part, ":")
		var groups []uint16
		for i, f := range fields {
			// A trailing dotted-quad expands to two groups.
			if strings.Contains(f, ".") {
				if i != len(fields)-1 {
					return nil, fmt.Errorf("netdata: invalid IPv6 address %q", s)
				}
				v4, err := ParseIP4(f)
				if err != nil {
					return nil, err
				}
				groups = append(groups,
					uint16(v4.b[0])<<8|uint16(v4.b[1]),
					uint16(v4.b[2])<<8|uint16(v4.b[3]))
				continue
			}
			if f == "" || len(f) > 4 {
				return nil, fmt.Errorf("netdata: invalid IPv6 address %q", s)
			}
			n, err := strconv.ParseUint(f, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("netdata: invalid IPv6 address %q", s)
			}
			groups = append(groups, uint16(n))
		}
		return groups, nil
	}
	hg, err := parseGroups(head)
	if err != nil {
		return ip, err
	}
	tg, err := parseGroups(tail)
	if err != nil {
		return ip, err
	}
	total := len(hg) + len(tg)
	switch {
	case compressed && total >= 8:
		return ip, fmt.Errorf("netdata: invalid IPv6 address %q", s)
	case !compressed && total != 8:
		return ip, fmt.Errorf("netdata: invalid IPv6 address %q", s)
	}
	groups := make([]uint16, 0, 8)
	groups = append(groups, hg...)
	for i := total; i < 8; i++ {
		groups = append(groups, 0)
	}
	groups = append(groups, tg...)
	for i, g := range groups {
		ip.b[2*i] = byte(g >> 8)
		ip.b[2*i+1] = byte(g)
	}
	return ip, nil
}

// Kind implements Value.
func (ip IP) Kind() Kind {
	if ip.v6 {
		return KindIP6
	}
	return KindIP4
}

// Key implements Value.
func (ip IP) Key() string { return ip.Kind().String() + ":" + ip.String() }

// String implements Value. IPv6 addresses are rendered in canonical
// lower-case form with the longest zero run compressed.
func (ip IP) String() string {
	if !ip.v6 {
		return fmt.Sprintf("%d.%d.%d.%d", ip.b[0], ip.b[1], ip.b[2], ip.b[3])
	}
	groups := make([]uint16, 8)
	for i := range groups {
		groups[i] = uint16(ip.b[2*i])<<8 | uint16(ip.b[2*i+1])
	}
	// Find the longest run of zero groups (length >= 2) to compress.
	bestStart, bestLen := -1, 1
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > bestLen {
			bestStart, bestLen = i, j-i
		}
		i = j
	}
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		if i == bestStart {
			sb.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !strings.HasSuffix(sb.String(), "::") {
			sb.WriteByte(':')
		}
		sb.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	if sb.Len() == 0 {
		return "::"
	}
	return sb.String()
}

// Is6 reports whether the address is IPv6.
func (ip IP) Is6() bool { return ip.v6 }

// Bytes returns the address bytes: 4 bytes for IPv4, 16 for IPv6.
func (ip IP) Bytes() []byte {
	if ip.v6 {
		b := ip.b
		return b[:]
	}
	b := [4]byte{ip.b[0], ip.b[1], ip.b[2], ip.b[3]}
	return b[:]
}

// Octet returns the i-th octet (1-based, network order) of an IPv4
// address. It reports false for IPv6 addresses or out-of-range indexes.
// This backs the octet(i) data transformation.
func (ip IP) Octet(i int) (byte, bool) {
	if ip.v6 || i < 1 || i > 4 {
		return 0, false
	}
	return ip.b[i-1], true
}

// Bit returns bit i (0 = most significant) of the address.
func (ip IP) Bit(i int) byte {
	return (ip.b[i/8] >> (7 - i%8)) & 1
}

// Prefix is an IPv4 or IPv6 prefix in address/length notation.
type Prefix struct {
	ip     IP
	length int
}

// NewPrefix constructs a prefix from an address and a mask length. Host
// bits are preserved: configurations use address/length syntax both for
// networks (10.0.0.0/8) and for interface addresses (10.0.0.5/31), and
// collapsing the latter would erase identity that uniqueness and
// equality contracts depend on. Containment only ever inspects the
// first length bits.
func NewPrefix(ip IP, length int) (Prefix, error) {
	max := 32
	if ip.v6 {
		max = 128
	}
	if length < 0 || length > max {
		return Prefix{}, fmt.Errorf("netdata: invalid prefix length %d", length)
	}
	return Prefix{ip: ip, length: length}, nil
}

// ParsePrefix4 parses an IPv4 prefix such as "10.0.0.0/8".
func ParsePrefix4(s string) (Prefix, error) {
	addr, lenStr, ok := strings.Cut(s, "/")
	if !ok {
		return Prefix{}, fmt.Errorf("netdata: invalid IPv4 prefix %q", s)
	}
	ip, err := ParseIP4(addr)
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil {
		return Prefix{}, fmt.Errorf("netdata: invalid IPv4 prefix %q", s)
	}
	return NewPrefix(ip, n)
}

// ParsePrefix6 parses an IPv6 prefix such as "2001:db8::/32".
func ParsePrefix6(s string) (Prefix, error) {
	addr, lenStr, ok := strings.Cut(s, "/")
	if !ok {
		return Prefix{}, fmt.Errorf("netdata: invalid IPv6 prefix %q", s)
	}
	ip, err := ParseIP6(addr)
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil {
		return Prefix{}, fmt.Errorf("netdata: invalid IPv6 prefix %q", s)
	}
	return NewPrefix(ip, n)
}

// Kind implements Value.
func (p Prefix) Kind() Kind {
	if p.ip.v6 {
		return KindPfx6
	}
	return KindPfx4
}

// Key implements Value.
func (p Prefix) Key() string { return p.Kind().String() + ":" + p.String() }

// String implements Value.
func (p Prefix) String() string {
	return p.ip.String() + "/" + strconv.Itoa(p.length)
}

// Addr returns the (masked) network address of the prefix.
func (p Prefix) Addr() IP { return p.ip }

// Len returns the prefix length in bits.
func (p Prefix) Len() int { return p.length }

// Bits returns the total address width: 32 for IPv4, 128 for IPv6.
func (p Prefix) Bits() int {
	if p.ip.v6 {
		return 128
	}
	return 32
}

// ContainsIP reports whether the prefix contains the given address.
// Families must match.
func (p Prefix) ContainsIP(ip IP) bool {
	if p.ip.v6 != ip.v6 {
		return false
	}
	for i := 0; i < p.length; i++ {
		if p.ip.Bit(i) != ip.Bit(i) {
			return false
		}
	}
	return true
}

// ContainsPrefix reports whether p contains (subsumes) q: q's network
// falls inside p and q is at least as specific.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.length >= p.length && p.ContainsIP(q.ip)
}
