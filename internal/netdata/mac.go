package netdata

import (
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit hardware address written as six colon-separated
// hexadecimal segments (e.g. 00:00:0c:d3:00:6e).
type MAC struct {
	b [6]byte
}

// ParseMAC parses a colon-separated MAC address. Each of the six
// segments must be one or two hex digits.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("netdata: invalid MAC address %q", s)
	}
	for i, p := range parts {
		if p == "" || len(p) > 2 {
			return m, fmt.Errorf("netdata: invalid MAC address %q", s)
		}
		n, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("netdata: invalid MAC address %q", s)
		}
		m.b[i] = byte(n)
	}
	return m, nil
}

// Kind implements Value.
func (m MAC) Kind() Kind { return KindMAC }

// Key implements Value.
func (m MAC) Key() string { return "mac:" + m.String() }

// String implements Value, rendering two lower-case hex digits per
// segment.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		m.b[0], m.b[1], m.b[2], m.b[3], m.b[4], m.b[5])
}

// Segment returns the i-th segment (1-based) formatted as minimal
// lower-case hex (no leading zero), matching the segment(m, i) data
// transformation from the paper: segment(00:00:0c:d3:00:6e, 6) = "6e".
func (m MAC) Segment(i int) (string, bool) {
	if i < 1 || i > 6 {
		return "", false
	}
	return strconv.FormatUint(uint64(m.b[i-1]), 16), true
}

// Bytes returns a copy of the six address bytes.
func (m MAC) Bytes() []byte {
	b := m.b
	return b[:]
}
