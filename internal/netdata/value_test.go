package netdata

import (
	"strings"
	"testing"
)

func TestParseNum(t *testing.T) {
	n, err := ParseNum("110")
	if err != nil {
		t.Fatalf("ParseNum: %v", err)
	}
	if got, ok := n.Int64(); !ok || got != 110 {
		t.Errorf("Int64() = %d, %v; want 110, true", got, ok)
	}
	if n.Hex() != "6e" {
		t.Errorf("Hex() = %q, want %q", n.Hex(), "6e")
	}
	if n.Key() != "num:110" {
		t.Errorf("Key() = %q", n.Key())
	}
}

func TestParseNumHuge(t *testing.T) {
	huge := strings.Repeat("9", 40)
	n, err := ParseNum(huge)
	if err != nil {
		t.Fatalf("ParseNum: %v", err)
	}
	if _, ok := n.Int64(); ok {
		t.Error("Int64() fits, want overflow")
	}
	if n.String() != huge {
		t.Errorf("String() = %q", n.String())
	}
}

func TestParseNumInvalid(t *testing.T) {
	for _, s := range []string{"", "abc", "1.5", "0x10", "-"} {
		if _, err := ParseNum(s); err == nil {
			t.Errorf("ParseNum(%q) succeeded, want error", s)
		}
	}
}

func TestNumArithmetic(t *testing.T) {
	a, b := NewNum(30), NewNum(10)
	if d := a.Sub(b); d.String() != "20" {
		t.Errorf("Sub = %s, want 20", d)
	}
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
}

func TestParseHex(t *testing.T) {
	h, err := ParseHex("0x1F")
	if err != nil {
		t.Fatalf("ParseHex: %v", err)
	}
	if got, ok := h.Int64(); !ok || got != 31 {
		t.Errorf("Int64() = %d, want 31", got)
	}
	if h.Key() != "hex:1f" {
		t.Errorf("Key() = %q", h.Key())
	}
	if h.String() != "0x1F" {
		t.Errorf("String() = %q, want original spelling", h.String())
	}
}

func TestParseHexInvalid(t *testing.T) {
	for _, s := range []string{"", "1f", "0x", "0xzz"} {
		if _, err := ParseHex(s); err == nil {
			t.Errorf("ParseHex(%q) succeeded, want error", s)
		}
	}
}

func TestParseBool(t *testing.T) {
	b, err := ParseBool("true")
	if err != nil || !bool(b) {
		t.Fatalf("ParseBool(true) = %v, %v", b, err)
	}
	if b.Key() != "bool:true" {
		t.Errorf("Key() = %q", b.Key())
	}
	if _, err := ParseBool("True"); err == nil {
		t.Error("ParseBool(True) succeeded, want error (case-sensitive)")
	}
}

func TestStr(t *testing.T) {
	s := Str("et-0/0/1")
	if s.Kind() != KindString || s.Key() != "str:et-0/0/1" {
		t.Errorf("Str key/kind wrong: %v %q", s.Kind(), s.Key())
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindNum: "num", KindHex: "hex", KindBool: "bool", KindMAC: "mac",
		KindIP4: "ip4", KindIP6: "ip6", KindPfx4: "pfx4", KindPfx6: "pfx6",
		KindString: "str", KindInvalid: "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestKeysAreKindDisjoint(t *testing.T) {
	// A number 110 and the string "110" must not collide.
	n := NewNum(110)
	s := Str("110")
	if n.Key() == s.Key() {
		t.Errorf("num and str keys collide: %q", n.Key())
	}
}

func TestAccessors(t *testing.T) {
	n := NewNum(42)
	if n.Big().Int64() != 42 {
		t.Error("Big() wrong")
	}
	// Big returns a copy: mutating it must not affect the Num.
	b := n.Big()
	b.SetInt64(99)
	if got, _ := n.Int64(); got != 42 {
		t.Error("Big() aliases internal state")
	}
	h, _ := ParseHex("0xff")
	if v, ok := h.Int64(); !ok || v != 255 {
		t.Errorf("hex Int64 = %d, %v", v, ok)
	}
}
