package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestIDsDenseAndStable(t *testing.T) {
	tab := NewTable()
	a := tab.ID("alpha")
	b := tab.ID("beta")
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a, b)
	}
	if tab.ID("alpha") != a {
		t.Error("re-interning changed the ID")
	}
	if got := tab.String(a); got != "alpha" {
		t.Errorf("String(%d) = %q", a, got)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	if id, ok := tab.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d, %v", id, ok)
	}
	if _, ok := tab.Lookup("gamma"); ok {
		t.Error("Lookup of never-interned string reported ok")
	}
}

func TestConcurrentInterning(t *testing.T) {
	tab := NewTable()
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	ids := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		w := w
		ids[w] = make([]int32, perWorker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Heavy overlap across workers: only perWorker distinct keys.
				ids[w][i] = tab.ID(fmt.Sprintf("pattern-%d", i))
			}
		}()
	}
	wg.Wait()
	if tab.Len() != perWorker {
		t.Fatalf("Len = %d, want %d", tab.Len(), perWorker)
	}
	// Every worker must have observed the same ID per key, and IDs must
	// be a dense permutation of 1..perWorker.
	seen := make(map[int32]string)
	for i := 0; i < perWorker; i++ {
		want := ids[0][i]
		if want < 1 || want > perWorker {
			t.Fatalf("id %d out of dense range", want)
		}
		for w := 1; w < workers; w++ {
			if ids[w][i] != want {
				t.Fatalf("worker %d got id %d for key %d, worker 0 got %d", w, ids[w][i], i, want)
			}
		}
		key := fmt.Sprintf("pattern-%d", i)
		if prev, dup := seen[want]; dup {
			t.Fatalf("id %d assigned to both %q and %q", want, prev, key)
		}
		seen[want] = key
		if tab.String(want) != key {
			t.Fatalf("String(%d) = %q, want %q", want, tab.String(want), key)
		}
	}
}
