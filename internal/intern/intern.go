// Package intern provides a concurrency-safe string interning table
// mapping strings to dense integer IDs. One Table is created per engine
// run (per processed corpus, not globally): untyped patterns and
// context-embedded pattern paths repeat massively across network
// configurations, so downstream consumers — the mining statistics pass,
// the relational miner's candidate keys, the check compiler's anchor
// table — can key their hot maps and index their hot arrays by small
// integers instead of re-hashing full pattern strings per line.
//
// IDs are assigned starting at 1, so the zero value of an ID field
// unambiguously means "not interned" (hand-constructed lines in tests
// carry no IDs and fall back to string keys).
//
// ID assignment order depends on goroutine scheduling when a Table is
// populated from parallel workers; consumers must therefore never let
// ID numbering leak into output ordering. Every miner sorts its emitted
// contracts by string contract ID, which keeps learned sets
// byte-identical across runs regardless of interning order.
package intern

import (
	"fmt"
	"sync"
)

// nShards is the shard count of the forward (string -> ID) map; a
// power of two so shard selection is a mask.
const nShards = 64

// Table interns strings to dense IDs (1..Len). Safe for concurrent use.
type Table struct {
	shards [nShards]shard

	// mu guards strs, the reverse mapping. strs[0] is a placeholder so
	// that String(id) indexes directly.
	mu   sync.RWMutex
	strs []string
}

type shard struct {
	mu sync.RWMutex
	m  map[string]int32
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{strs: make([]string, 1, 1024)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]int32)
	}
	return t
}

// fnv1a is a 64-bit FNV-1a hash, inlined to keep shard selection
// allocation-free.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ID returns the dense ID of s, assigning the next free ID on first
// use. IDs start at 1.
func (t *Table) ID(s string) int32 {
	sh := &t.shards[fnv1a(s)&(nShards-1)]
	sh.mu.RLock()
	id, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[s]; ok {
		return id
	}
	t.mu.Lock()
	id = int32(len(t.strs))
	t.strs = append(t.strs, s)
	t.mu.Unlock()
	sh.m[s] = id
	return id
}

// Lookup returns the ID of s without interning it; ok is false when s
// has never been interned.
func (t *Table) Lookup(s string) (int32, bool) {
	sh := &t.shards[fnv1a(s)&(nShards-1)]
	sh.mu.RLock()
	id, ok := sh.m[s]
	sh.mu.RUnlock()
	return id, ok
}

// String returns the string with the given ID. It panics on IDs never
// returned by this table (including 0), exactly like an out-of-range
// slice index.
func (t *Table) String(id int32) string {
	t.mu.RLock()
	s := t.strs[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of interned strings.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.strs) - 1
	t.mu.RUnlock()
	return n
}

// Translator maps the dense IDs of a foreign Table — received across a
// process boundary as its ordered string slice, foreign ID i naming
// foreign[i-1] — onto a local Table. Worker processes intern into
// private tables whose ID assignment never matches the parent's, so
// serialized mining state carries its string table and the parent
// rebinds every ID on import. Foreign IDs are untrusted wire data:
// out-of-range IDs return errors, never panics, so a corrupted frame
// cannot take down the parent. Local IDs are memoized per foreign ID;
// a Translator is not safe for concurrent use.
type Translator struct {
	local   *Table
	foreign []string
	ids     []int32 // memoized local IDs, 0 = not yet translated
}

// NewTranslator builds a translator from the foreign table's ordered
// strings onto local. A nil local table still supports String — callers
// that key by strings (the baseline learn path) translate IDs straight
// to text.
func NewTranslator(local *Table, foreign []string) *Translator {
	return &Translator{local: local, foreign: foreign, ids: make([]int32, len(foreign))}
}

// String returns the foreign string with the given foreign ID.
func (tr *Translator) String(id int32) (string, error) {
	if id < 1 || int(id) > len(tr.foreign) {
		return "", fmt.Errorf("intern: foreign ID %d out of range (table has %d strings)", id, len(tr.foreign))
	}
	return tr.foreign[id-1], nil
}

// ID translates a foreign ID to the local table's ID for the same
// string, interning it locally on first use.
func (tr *Translator) ID(id int32) (int32, error) {
	if id < 1 || int(id) > len(tr.foreign) {
		return 0, fmt.Errorf("intern: foreign ID %d out of range (table has %d strings)", id, len(tr.foreign))
	}
	if lid := tr.ids[id-1]; lid != 0 {
		return lid, nil
	}
	lid := tr.local.ID(tr.foreign[id-1])
	tr.ids[id-1] = lid
	return lid, nil
}
