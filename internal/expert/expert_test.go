package expert

import (
	"fmt"
	"testing"

	"concord/internal/contracts"
	"concord/internal/synth"
)

// truthAll / truthNone are manifests that classify everything true or
// false, for controlled scorer behavior.
func truthNone() *synth.Manifest { return &synth.Manifest{} }

func relationalContracts(n int) []contracts.Contract {
	out := make([]contracts.Contract, n)
	for i := range out {
		out[i] = &contracts.Relational{
			Pattern1: fmt.Sprintf("/p%d [num]", i), Rel: "equals",
			Pattern2: fmt.Sprintf("/q%d [num]", i),
		}
	}
	return out
}

func presentContracts(n int) []contracts.Contract {
	out := make([]contracts.Contract, n)
	for i := range out {
		out[i] = &contracts.Present{Pattern: fmt.Sprintf("/p%d", i)}
	}
	return out
}

func TestScoreDeterministic(t *testing.T) {
	r := New(truthNone())
	c := relationalContracts(1)[0]
	s := r.Score(c)
	for i := 0; i < 5; i++ {
		if r.Score(c) != s {
			t.Fatal("score not deterministic")
		}
	}
	if s < 1 || s > 10 {
		t.Fatalf("score out of range: %d", s)
	}
}

func TestScoreSeparatesTrueFromFalse(t *testing.T) {
	r := New(truthNone())
	// Present contracts are always true under any manifest; relational
	// ones are false under the empty manifest.
	trueScores := 0.0
	for _, c := range presentContracts(200) {
		trueScores += float64(r.Score(c))
	}
	falseScores := 0.0
	for _, c := range relationalContracts(200) {
		falseScores += float64(r.Score(c))
	}
	if trueScores/200 < 7 {
		t.Errorf("mean true score = %v, want high", trueScores/200)
	}
	if falseScores/200 > 4 {
		t.Errorf("mean false score = %v, want low", falseScores/200)
	}
}

func TestReviewerIsFallible(t *testing.T) {
	r := New(truthNone())
	// Some false contracts must be misjudged as true (scores 6-10), at
	// roughly the fallibility rate.
	misjudged := 0
	cs := relationalContracts(1000)
	for _, c := range cs {
		if TruePositive(r.Score(c)) {
			misjudged++
		}
	}
	if misjudged == 0 {
		t.Error("reviewer never misjudges; overlap required for Figure 9")
	}
	if misjudged > 200 {
		t.Errorf("reviewer misjudges too often: %d/1000", misjudged)
	}
}

func TestCDF(t *testing.T) {
	r := New(truthNone())
	cdf := r.CDF(presentContracts(500))
	if cdf[9] != 1.0 {
		t.Errorf("CDF must end at 1.0, got %v", cdf[9])
	}
	for i := 1; i < 10; i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone at %d: %v", i, cdf)
		}
	}
	// High-scoring population: most mass at scores >= 8 (first 3 bins).
	if cdf[2] < 0.7 {
		t.Errorf("true population should concentrate high: %v", cdf)
	}
	var empty [10]float64
	if r.CDF(nil) != empty {
		t.Error("empty CDF should be zero")
	}
}

func TestEstimatePrecision(t *testing.T) {
	r := New(truthNone())
	pTrue := r.EstimatePrecision(presentContracts(300))
	pFalse := r.EstimatePrecision(relationalContracts(300))
	if pTrue < 0.85 {
		t.Errorf("estimate for true population = %v", pTrue)
	}
	if pFalse > 0.2 {
		t.Errorf("estimate for false population = %v", pFalse)
	}
	if r.EstimatePrecision(nil) != 0 {
		t.Error("empty estimate should be 0")
	}
}

func TestTruePositiveRule(t *testing.T) {
	for s := 1; s <= 5; s++ {
		if TruePositive(s) {
			t.Errorf("score %d should not be TP", s)
		}
	}
	for s := 6; s <= 10; s++ {
		if !TruePositive(s) {
			t.Errorf("score %d should be TP", s)
		}
	}
}
