// Package expert simulates the contract reviewer of the paper's
// precision evaluation (§5.4). The paper used GPT-4 with chain-of-thought
// prompting to obtain an initial 1-10 validity score for each learned
// contract, sized the statistically required manual review from those
// scores, and then had humans adjudicate the sample.
//
// GPT-4 is substituted by a deterministic scorer driven by the synthetic
// generator's ground-truth manifest: contracts realizing planted
// invariants score high (8-10 with occasional hedging), coincidental
// contracts score low (1-5), and a calibrated hash-based jitter creates
// the overlap a fallible reviewer exhibits. The statistical methodology
// downstream of the scores — CDFs, sample sizing with finite population
// correction, precision estimation — is exactly the paper's, which is
// the reproducible part of the experiment (see DESIGN.md §4).
package expert

import (
	"hash/fnv"

	"concord/internal/contracts"
)

// Truth adjudicates whether a learned contract reflects a real
// invariant; synth.Manifest implements it, as do merged multi-role
// classifiers.
type Truth interface {
	IsTrue(c contracts.Contract) bool
}

// Reviewer scores learned contracts against a ground truth.
type Reviewer struct {
	truth Truth
	// fallibility is the probability mass moved across the true/false
	// boundary to emulate reviewer uncertainty (~0.08 when constructed
	// with New).
	fallibility float64
}

// New builds a reviewer over a dataset's ground truth.
func New(truth Truth) *Reviewer {
	return &Reviewer{truth: truth, fallibility: 0.08}
}

// jitter derives a deterministic pseudo-random float in [0, 1) from a
// contract's identity.
func jitter(id string, salt uint64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	v := h.Sum64() ^ (salt * 0x9e3779b97f4a7c15)
	// Mix and take 53 bits.
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return float64(v>>11) / float64(1<<53)
}

// Score returns the reviewer's 1-10 validity score for a contract: 10
// means certain the contract is a real invariant. Scores are
// deterministic per contract.
func (r *Reviewer) Score(c contracts.Contract) int {
	istrue := r.truth.IsTrue(c)
	j1 := jitter(c.ID(), 1)
	j2 := jitter(c.ID(), 2)
	if j1 < r.fallibility {
		istrue = !istrue // the reviewer misjudges this one
	}
	if istrue {
		// True contracts concentrate at 8-10 with a tail at 6-7.
		switch {
		case j2 < 0.55:
			return 10
		case j2 < 0.75:
			return 9
		case j2 < 0.88:
			return 8
		case j2 < 0.95:
			return 7
		default:
			return 6
		}
	}
	// False contracts concentrate at 1-3 with a tail at 4-5.
	switch {
	case j2 < 0.40:
		return 1
	case j2 < 0.65:
		return 2
	case j2 < 0.82:
		return 3
	case j2 < 0.93:
		return 4
	default:
		return 5
	}
}

// TruePositive applies the paper's decision rule: scores 6-10 are
// treated as true positives when estimating precision.
func TruePositive(score int) bool { return score >= 6 }

// CDF computes the cumulative distribution of scores for the given
// contracts, indexed from score 10 down to 1 (the paper's Figure 9 axis
// direction): CDF[0] is the fraction scoring 10, CDF[9] is 1.0.
func (r *Reviewer) CDF(cs []contracts.Contract) [10]float64 {
	var counts [11]int
	total := 0
	for _, c := range cs {
		counts[r.Score(c)]++
		total++
	}
	var cdf [10]float64
	if total == 0 {
		return cdf
	}
	cum := 0
	for s := 10; s >= 1; s-- {
		cum += counts[s]
		cdf[10-s] = float64(cum) / float64(total)
	}
	return cdf
}

// EstimatePrecision returns the reviewer's precision estimate for a
// contract list: the fraction scoring 6-10. This seeds the sample-size
// computation of Table 6.
func (r *Reviewer) EstimatePrecision(cs []contracts.Contract) float64 {
	if len(cs) == 0 {
		return 0
	}
	tp := 0
	for _, c := range cs {
		if TruePositive(r.Score(c)) {
			tp++
		}
	}
	return float64(tp) / float64(len(cs))
}
