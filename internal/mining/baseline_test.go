package mining

import (
	"context"
	"testing"
	"time"

	"concord/internal/contracts"
)

// TestBruteForceMatchesIndexed: on small corpora where the fanout cap
// never binds, the indexed miner and the brute-force miner must learn
// the same relational contracts.
func TestBruteForceMatchesIndexed(t *testing.T) {
	cfgs := figure1Corpus(t, 8)
	opts := DefaultOptions()
	opts.MaxFanout = 1 << 20
	m := New(opts)

	fastOpts := opts
	fastOpts.Categories = map[contracts.Category]bool{contracts.CatRelation: true}
	fast := New(fastOpts).Mine(cfgs)

	slow, err := m.MineRelationalBruteForce(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("brute force: %v", err)
	}

	fastIDs := make(map[string]bool)
	for _, c := range fast.Contracts {
		fastIDs[c.ID()] = true
	}
	slowIDs := make(map[string]bool)
	for _, c := range slow {
		slowIDs[c.ID()] = true
	}
	for id := range fastIDs {
		if !slowIDs[id] {
			t.Errorf("indexed-only contract: %s", id)
		}
	}
	for id := range slowIDs {
		if !fastIDs[id] {
			t.Errorf("brute-only contract: %s", id)
		}
	}
}

func TestBruteForceHonorsTimeout(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := New(DefaultOptions()).MineRelationalBruteForce(ctx, cfgs)
	if err == nil {
		t.Error("expired context not reported")
	}
}

func TestApriori(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	rules := Apriori(cfgs, AprioriOptions{MinSupport: 0.9, MinConfidence: 0.9, MaxSetSize: 2})
	if len(rules) == 0 {
		t.Fatal("no rules learned")
	}
	// Every pattern co-occurs with every other here, so rules abound and
	// all have support ~1.
	for _, r := range rules {
		if r.Support < 0.9 || r.Confidence < 0.9 {
			t.Errorf("rule below thresholds: %+v", r)
		}
		if len(r.Antecedent) == 0 || r.Consequent == "" {
			t.Errorf("malformed rule: %+v", r)
		}
	}
}

func TestAprioriEmpty(t *testing.T) {
	if rules := Apriori(nil, AprioriOptions{MinSupport: 0.5, MinConfidence: 0.5}); rules != nil {
		t.Errorf("rules from empty input: %v", rules)
	}
}

func TestAprioriRespectsSupport(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	rules := Apriori(cfgs, AprioriOptions{MinSupport: 1.1, MinConfidence: 0.5, MaxSetSize: 2})
	if len(rules) != 0 {
		t.Errorf("impossible support still yielded %d rules", len(rules))
	}
}
