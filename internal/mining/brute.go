package mining

import (
	"context"
	"math"
	"sort"

	"concord/internal/contracts"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/score"
)

// MineRelationalBruteForce is the naive relational miner the paper uses
// as an ablation (§5.2): it enumerates every pair of (pattern,
// parameter, transform) sources and every relation, and tests each
// candidate by scanning all value pairs. Its cost is quadratic in the
// number of parameter sources per configuration (and worse in values),
// which is why it fails to terminate on the WAN datasets. The context
// lets callers impose the paper's one-hour (or any) timeout; on
// cancellation the partial result learned so far is returned along with
// ctx.Err().
func (m *Miner) MineRelationalBruteForce(ctx context.Context, cfgs []*lexer.Config) ([]contracts.Contract, error) {
	st, err := m.collectStats(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	rels := []relations.Rel{relations.Equals, relations.Contains, relations.StartsWith, relations.EndsWith}

	global := make(map[candKey]*candState)
	for _, cfg := range cfgs {
		// Materialize every (pattern, param, transform) source with its
		// values and line indexes.
		type source struct {
			p    string
			i    int
			t    string
			vals []netdata.Value
			at   []int
		}
		idx := make(map[lhsTriple]int)
		var sources []source
		displays := make(map[string]string)
		for li := range cfg.Lines {
			line := &cfg.Lines[li]
			displays[line.Pattern] = line.Display
			for pi := range line.Params {
				for _, ap := range relations.ApplyAll(m.transforms, line.Params[pi].Value) {
					k := lhsTriple{p: line.Pattern, i: pi, t: ap.Transform}
					si, ok := idx[k]
					if !ok {
						si = len(sources)
						idx[k] = si
						sources = append(sources, source{p: k.p, i: k.i, t: k.t})
					}
					sources[si].vals = append(sources[si].vals, ap.Value)
					sources[si].at = append(sources[si].at, li)
				}
			}
		}
		// Quadratic enumeration of candidate contracts.
		for si := range sources {
			if err := ctx.Err(); err != nil {
				return finishBrute(global, st, m), err
			}
			s1 := &sources[si]
			for sj := range sources {
				s2 := &sources[sj]
				if s1.p == s2.p && s1.i == s2.i {
					continue // a parameter never witnesses itself
				}
				density := 1 / (1 + math.Log2(math.Max(1, float64(len(s2.vals)))))
				for _, rel := range rels {
					// forall instances of s1, exists witness in s2.
					holdsAll := true
					agg := make([]scoredInstance, 0, len(s1.vals))
					for _, v1 := range s1.vals {
						found := false
						best := 0.0
						for _, v2 := range s2.vals {
							if rel.Holds(v1, v2) {
								found = true
								ws := score.Value(v2)
								if lv := score.Value(v1); lv < ws {
									ws = lv
								}
								if ws > best {
									best = ws
								}
							}
						}
						if !found {
							holdsAll = false
							break
						}
						agg = append(agg, scoredInstance{key: v1.Key(), s: best * density})
					}
					if !holdsAll {
						continue
					}
					k := candKey{p1: s1.p, i1: s1.i, t1: s1.t, rel: rel, p2: s2.p, i2: s2.i, t2: s2.t}
					cs := global[k]
					if cs == nil {
						cs = &candState{display1: displays[k.p1], display2: displays[k.p2], agg: score.NewAggregator()}
						global[k] = cs
					}
					cs.holdConfigs++
					for _, inst := range agg {
						cs.agg.AddInstance(inst.key, inst.s)
					}
				}
			}
		}
	}
	return finishBrute(global, st, m), nil
}

type lhsTriple struct {
	p string
	i int
	t string
}

// finishBrute applies the same support/confidence/score filters as the
// indexed miner so the two are comparable.
func finishBrute(global map[candKey]*candState, st *stats, m *Miner) []contracts.Contract {
	var out []contracts.Contract
	for k, cs := range global {
		ps := st.patterns[k.p1]
		if ps == nil || ps.configCount < m.opts.Support {
			continue
		}
		conf := float64(cs.holdConfigs) / float64(ps.configCount)
		if conf < m.opts.Confidence || cs.agg.Total() < m.opts.ScoreThreshold {
			continue
		}
		out = append(out, &contracts.Relational{
			Pattern1: k.p1, Display1: cs.display1, ParamIdx1: k.i1, Transform1: k.t1,
			Rel:      k.rel,
			Pattern2: k.p2, Display2: cs.display2, ParamIdx2: k.i2, Transform2: k.t2,
			Evidence: contracts.Stats{Support: ps.configCount, Confidence: conf, Score: cs.agg.Total()},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}
