// Package mining implements Concord's contract learning (§3.3–§3.5): a
// single statistics pass over the training configurations followed by
// per-category miners for present, ordering, type, sequence, and unique
// contracts, and the index-accelerated relational miner. A brute-force
// relational miner (brute.go) and a classic Apriori item-set miner
// (apriori.go) are included as the baselines the paper compares against.
package mining

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"sync"

	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/telemetry"
)

// Options controls learning. The zero value is not useful; use
// DefaultOptions.
type Options struct {
	// Support (S) is the minimum absolute number of configurations in
	// which a pattern must appear before contracts about it are
	// considered. Default 5 (paper §4).
	Support int
	// Confidence (C) is the required fraction of supporting
	// configurations in which a contract must hold. Default 0.96.
	Confidence float64
	// ScoreThreshold gates relational contracts on their cumulative
	// diversity-weighted informativeness score (§3.5).
	ScoreThreshold float64
	// MaxFanout caps the number of candidate sources generated per value
	// lookup, bounding worst-case work on ubiquitous values (those
	// candidates score near zero anyway). Default 64.
	MaxFanout int
	// Transforms is the data transformation registry; nil selects
	// relations.DefaultTransforms.
	Transforms []relations.Transform
	// ExtraRelations adds user-defined relations to the four built-ins;
	// each definition supplies its evaluation function and witness index
	// (§4's pluggable relation-learning structures).
	ExtraRelations []relations.Definition
	// Categories restricts mining to the given categories; nil enables
	// all.
	Categories map[contracts.Category]bool
	// ConstantLearning additionally learns present contracts over exact
	// line text for lines carrying data values (§4), which captures
	// "magic constant" policies.
	ConstantLearning bool
	// Parallelism is the number of workers for relational mining
	// (<= 1 means sequential).
	Parallelism int
	// Telemetry, when non-nil, receives per-category miner spans
	// (mine/<category>) and candidate/accepted counters
	// (mine.<category>.candidates, mine.<category>.accepted).
	Telemetry *telemetry.Recorder
	// Diagnostics, when non-nil, enables fault containment: a panic in
	// a category miner or in one configuration's statistics/relational
	// pass is recorded as an error diagnostic and mining continues
	// without that unit. Nil preserves fail-fast panics for direct
	// Miner users.
	Diagnostics *diag.Collector
	// Strict converts the first contained panic into an error aborting
	// MineContext, instead of a diagnostic.
	Strict bool
	// Baseline forces the pre-interning learn path: statistics and
	// relational candidate tables keyed by pattern strings even when the
	// configs carry an intern table. Kept for differential testing and
	// benchmarking; the mined contract set is byte-identical either way.
	Baseline bool
	// Progress, when non-nil, is called after each configuration of the
	// relational mining pass (the dominant cost); it must be safe for
	// concurrent calls when Parallelism > 1.
	Progress func(done, total int)
}

// DefaultOptions returns the paper's default parameters.
func DefaultOptions() Options {
	return Options{
		Support:        5,
		Confidence:     0.96,
		ScoreThreshold: 8,
		MaxFanout:      64,
	}
}

// enabled reports whether a category should be mined.
func (o *Options) enabled(cat contracts.Category) bool {
	return o.Categories == nil || o.Categories[cat]
}

// Miner learns a contract set from training configurations.
type Miner struct {
	opts       Options
	transforms []relations.Transform
	// rels maps the compact relation index used in the relational-mining
	// hot path to relation names: the four built-ins followed by extras.
	rels []relations.Rel
}

// New builds a miner, filling unset options with defaults.
func New(opts Options) *Miner {
	def := DefaultOptions()
	if opts.Support <= 0 {
		opts.Support = def.Support
	}
	if opts.Confidence <= 0 {
		opts.Confidence = def.Confidence
	}
	if opts.ScoreThreshold < 0 {
		opts.ScoreThreshold = def.ScoreThreshold
	}
	if opts.MaxFanout <= 0 {
		opts.MaxFanout = def.MaxFanout
	}
	ts := opts.Transforms
	if ts == nil {
		ts = relations.DefaultTransforms()
	}
	rels := []relations.Rel{relations.Equals, relations.Contains, relations.StartsWith, relations.EndsWith}
	for _, def := range opts.ExtraRelations {
		rels = append(rels, def.Rel)
	}
	return &Miner{opts: opts, transforms: ts, rels: rels}
}

// Mine learns contracts from the training configurations. The returned
// set is deterministic for a given input.
func (m *Miner) Mine(cfgs []*lexer.Config) *contracts.Set {
	set, _ := m.MineContext(context.Background(), cfgs)
	return set
}

// MineContext is Mine with cooperative cancellation: it checks ctx
// between configurations during the statistics and relational passes and
// between category miners, returning ctx.Err() when cancelled. Per-
// category timings and counters go to Options.Telemetry when set.
//
// With Options.Diagnostics attached, panics are contained per unit: a
// panicking category miner contributes no contracts of that category,
// and a panicking per-configuration pass drops only that
// configuration's evidence, each recorded as a diagnostic.
// Options.Strict instead aborts on the first panic with an error.
func (m *Miner) MineContext(ctx context.Context, cfgs []*lexer.Config) (*contracts.Set, error) {
	rec := m.opts.Telemetry
	sp := rec.StartSpan("mine/stats")
	st, err := m.collectStats(ctx, cfgs)
	sp.EndCount(len(cfgs))
	if err != nil {
		return nil, err
	}
	set, err := m.mineFromStats(ctx, st, func() ([]contracts.Contract, error) {
		return m.mineRelational(ctx, cfgs, st)
	})
	if err != nil {
		return nil, err
	}
	if tab := commonInterns(cfgs); tab != nil && !m.opts.Baseline {
		rec.Add("mine.interned_strings", int64(tab.Len()))
	}
	return set, nil
}

// mineFromStats runs the category miners and the relational acceptance
// over a completed statistics view. It is the shared tail of
// MineContext (stats collected in one pass over the corpus) and
// MineAccumulated (stats merged from per-shard accumulators); the
// relational closure supplies that path's candidate evidence.
func (m *Miner) mineFromStats(ctx context.Context, st *stats, relational func() ([]contracts.Contract, error)) (*contracts.Set, error) {
	rec := m.opts.Telemetry
	set := &contracts.Set{}
	mineCat := func(cat contracts.Category, name string, candidates int, fn func() []contracts.Contract) ([]contracts.Contract, error) {
		if !m.opts.enabled(cat) {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := rec.StartSpan("mine/" + name)
		var found []contracts.Contract
		if err := m.contain("category:"+name, func() {
			faultinject.At("mining.category", name)
			found = fn()
		}); err != nil {
			return nil, err
		}
		sp.EndCount(len(found))
		rec.Add("mine."+name+".candidates", int64(candidates))
		rec.Add("mine."+name+".accepted", int64(len(found)))
		return found, nil
	}
	// The cheap per-category miners share the immutable stats pass, so
	// they run concurrently; each miner sorts its own output with
	// sortByID and results are appended in fixed step order, keeping the
	// learned set byte-identical to a sequential run.
	steps := []func() ([]contracts.Contract, error){
		func() ([]contracts.Contract, error) {
			return mineCat(contracts.CatPresent, "present", len(st.patterns), func() []contracts.Contract { return m.minePresent(st) })
		},
		func() ([]contracts.Contract, error) {
			if !m.opts.ConstantLearning {
				return nil, nil
			}
			return mineCat(contracts.CatPresent, "constant", len(st.constants), func() []contracts.Contract { return m.mineConstants(st) })
		},
		func() ([]contracts.Contract, error) {
			return mineCat(contracts.CatOrdering, "ordering", len(st.pairs), func() []contracts.Contract { return m.mineOrdering(st) })
		},
		func() ([]contracts.Contract, error) {
			return mineCat(contracts.CatType, "type", len(st.types), func() []contracts.Contract { return m.mineTypes(st) })
		},
		func() ([]contracts.Contract, error) {
			return mineCat(contracts.CatSequence, "sequence", len(st.seqs), func() []contracts.Contract { return m.mineSequence(st) })
		},
		func() ([]contracts.Contract, error) {
			return mineCat(contracts.CatUnique, "unique", len(st.uniqs), func() []contracts.Contract { return m.mineUnique(st) })
		},
	}
	found := make([][]contracts.Contract, len(steps))
	stepErrs := make([]error, len(steps))
	stepPanics := make([]any, len(steps))
	var wg sync.WaitGroup
	for i, step := range steps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// With containment off (no diagnostics, not strict), contain()
			// lets miner panics propagate; capture them here and re-panic
			// on the caller goroutine so fail-fast semantics survive the
			// concurrency.
			defer func() {
				if r := recover(); r != nil {
					stepPanics[i] = r
				}
			}()
			found[i], stepErrs[i] = step()
		}()
	}
	wg.Wait()
	for _, r := range stepPanics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range stepErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, fs := range found {
		set.Contracts = append(set.Contracts, fs...)
	}
	if m.opts.enabled(contracts.CatRelation) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := rec.StartSpan("mine/relation")
		found, err := relational()
		sp.EndCount(len(found))
		if err != nil {
			return nil, err
		}
		rec.Add("mine.relation.accepted", int64(len(found)))
		set.Contracts = append(set.Contracts, found...)
	}
	return set, nil
}

// patternStats aggregates the global statistics of one pattern.
type patternStats struct {
	display     string
	configCount int // configurations containing the pattern
	lineCount   int
}

// pairStats tracks an observed successor pair (first, second).
type pairStats struct {
	displayFirst  string
	displaySecond string
	holdConfigs   int // configs where every first is followed by second
}

// typeStats tracks parameter types per type-agnostic pattern.
type typeStats struct {
	// perParam[i][type] counts lines using that type at leaf param i.
	perParam []map[string]*typeUse
	total    int
}

type typeUse struct {
	lines int
}

// seqStats tracks a numeric parameter's per-config equidistance.
type seqStats struct {
	display      string
	configsWith2 int // configs with >= 2 values
	configsSeq   int // of those, equidistant ones
}

// uniqStats tracks global value uniqueness of a parameter.
type uniqStats struct {
	display     string
	valueCount  map[string]int
	totalValues int
}

// stats is everything the simple miners need, computed in one pass.
type stats struct {
	nConfigs  int
	patterns  map[string]*patternStats
	pairs     map[[2]string]*pairStats
	firstOccs map[string]int // configs containing the first pattern of a pair
	types     map[string]*typeStats
	seqs      map[string]*seqStats // key: pattern|paramIdx
	uniqs     map[string]*uniqStats
	constants map[string]*patternStats // exact line text -> stats

	// seqMeta/uniqMeta recover (pattern, idx) from the composite key.
	seqMeta  map[string]patternParam
	uniqMeta map[string]patternParam
}

type patternParam struct {
	pattern string
	idx     int
}

func key2(pattern string, idx int) string {
	// Pattern text never contains '\x00'.
	return pattern + "\x00" + strconv.Itoa(idx)
}

// contain runs fn with panic containment when a diagnostics collector
// is attached: a recovered panic becomes an error diagnostic attributed
// to unit (with Strict, an error aborting the run). Without a collector
// the panic propagates, preserving fail-fast for direct Miner users.
func (m *Miner) contain(unit string, fn func()) (err error) {
	if m.opts.Diagnostics == nil && !m.opts.Strict {
		fn()
		return nil
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		d := diag.FromPanic("mine", unit, r)
		if m.opts.Strict {
			err = fmt.Errorf("mining: aborted (strict): %w", d.AsError())
			return
		}
		m.opts.Diagnostics.Add(d)
		m.opts.Telemetry.Add("diag.panics", 1)
	}()
	fn()
	return nil
}

func (m *Miner) collectStats(ctx context.Context, cfgs []*lexer.Config) (*stats, error) {
	if tab := commonInterns(cfgs); tab != nil && !m.opts.Baseline {
		sti := newStatsI(len(cfgs), tab)
		for _, cfg := range cfgs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := m.statsOneConfigFast(cfg, sti); err != nil {
				return nil, err
			}
		}
		return sti.finalize(), nil
	}
	st := &stats{
		nConfigs:  len(cfgs),
		patterns:  make(map[string]*patternStats),
		pairs:     make(map[[2]string]*pairStats),
		firstOccs: make(map[string]int),
		types:     make(map[string]*typeStats),
		seqs:      make(map[string]*seqStats),
		uniqs:     make(map[string]*uniqStats),
		constants: make(map[string]*patternStats),
		seqMeta:   make(map[string]patternParam),
		uniqMeta:  make(map[string]patternParam),
	}
	for _, cfg := range cfgs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.statsOneConfig(cfg, st); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// statsOneConfig folds one configuration into the shared statistics.
// Containment is best-effort: the fault-injection point fires before
// any mutation, but a genuine mid-fold panic can leave this
// configuration partially counted (the diagnostic says which).
func (m *Miner) statsOneConfig(cfg *lexer.Config, st *stats) error {
	return m.contain(cfg.Name, func() {
		faultinject.At("mining.stats.config", cfg.Name)
		seenPatterns := make(map[string]bool)
		seenConstants := make(map[string]bool)
		// Ordering bookkeeping: per first-pattern occurrence counts and
		// per-(first,second) successor counts within this config.
		occ := make(map[string]int)
		succ := make(map[[2]string]int)
		succDisp := make(map[[2]string][2]string)
		// Sequence bookkeeping: values in line order.
		seqVals := make(map[string][]*big.Int)
		for i := range cfg.Lines {
			line := &cfg.Lines[i]
			p := line.Pattern
			ps := st.patterns[p]
			if ps == nil {
				ps = &patternStats{display: line.Display}
				st.patterns[p] = ps
			}
			ps.lineCount++
			if !seenPatterns[p] {
				seenPatterns[p] = true
				ps.configCount++
			}
			// Constants: exact line text of valued lines.
			if len(line.Params) > 0 && !seenConstants[line.Text] {
				seenConstants[line.Text] = true
				cs := st.constants[line.Text]
				if cs == nil {
					cs = &patternStats{display: line.Text}
					st.constants[line.Text] = cs
				}
				cs.configCount++
			}
			// Ordering pairs (not across the metadata boundary).
			occ[p]++
			if next := i + 1; next < len(cfg.Lines) && cfg.Lines[next].Meta == line.Meta {
				k := [2]string{p, cfg.Lines[next].Pattern}
				succ[k]++
				succDisp[k] = [2]string{line.Display, cfg.Lines[next].Display}
			}
			// Types.
			if len(line.Params) > 0 {
				ag := lexer.TypeAgnostic(p)
				ts := st.types[ag]
				if ts == nil {
					ts = &typeStats{}
					st.types[ag] = ts
				}
				for len(ts.perParam) < len(line.Params) {
					ts.perParam = append(ts.perParam, make(map[string]*typeUse))
				}
				ts.total++
				for pi, prm := range line.Params {
					tu := ts.perParam[pi][prm.Type]
					if tu == nil {
						tu = &typeUse{}
						ts.perParam[pi][prm.Type] = tu
					}
					tu.lines++
				}
			}
			// Sequences and uniques per parameter.
			for pi, prm := range line.Params {
				k := key2(p, pi)
				if n, ok := prm.Value.(netdata.Num); ok {
					seqVals[k] = append(seqVals[k], n.Big())
					if _, ok := st.seqMeta[k]; !ok {
						st.seqMeta[k] = patternParam{pattern: p, idx: pi}
						st.seqs[k] = &seqStats{display: line.Display}
					}
				}
				us := st.uniqs[k]
				if us == nil {
					us = &uniqStats{display: line.Display, valueCount: make(map[string]int)}
					st.uniqs[k] = us
					st.uniqMeta[k] = patternParam{pattern: p, idx: pi}
				}
				us.valueCount[prm.Value.Key()]++
				us.totalValues++
			}
		}
		// Fold per-config ordering results into global pair stats.
		for k, n := range succ {
			ps := st.pairs[k]
			if ps == nil {
				d := succDisp[k]
				ps = &pairStats{displayFirst: d[0], displaySecond: d[1]}
				st.pairs[k] = ps
			}
			if n == occ[k[0]] {
				ps.holdConfigs++
			}
		}
		for p := range seenPatterns {
			st.firstOccs[p]++
		}
		// Fold per-config sequence results.
		for k, vals := range seqVals {
			ss := st.seqs[k]
			if ss == nil {
				continue
			}
			if len(vals) >= 2 {
				ss.configsWith2++
				if isArithmetic(vals) {
					ss.configsSeq++
				}
			}
		}
	})
}

// isArithmetic reports whether the values form a nonzero arithmetic
// progression in order. It works on *big.Int so values near or past the
// int64 range (large hex tokens) neither wrap during subtraction nor
// fall out of the evidence — the checker's equidistant (contracts
// package) uses the same arithmetic, so miner and checker always agree.
func isArithmetic(vals []*big.Int) bool {
	if len(vals) < 2 {
		return true
	}
	d := new(big.Int).Sub(vals[1], vals[0])
	if d.Sign() == 0 {
		return false
	}
	diff := new(big.Int)
	for i := 2; i < len(vals); i++ {
		diff.Sub(vals[i], vals[i-1])
		if diff.Cmp(d) != 0 {
			return false
		}
	}
	return true
}

// minePresent learns one present contract per pattern appearing in at
// least Support configs and at least Confidence of all configs.
func (m *Miner) minePresent(st *stats) []contracts.Contract {
	var out []contracts.Contract
	for p, ps := range st.patterns {
		conf := float64(ps.configCount) / float64(st.nConfigs)
		if ps.configCount >= m.opts.Support && conf >= m.opts.Confidence {
			out = append(out, &contracts.Present{
				Pattern:  p,
				Display:  ps.display,
				Evidence: contracts.Stats{Support: ps.configCount, Confidence: conf},
			})
		}
	}
	sortByID(out)
	return out
}

// mineConstants learns exact-text present contracts for valued lines
// whose full text recurs across configurations (constant-learning mode).
func (m *Miner) mineConstants(st *stats) []contracts.Contract {
	var out []contracts.Contract
	for text, cs := range st.constants {
		conf := float64(cs.configCount) / float64(st.nConfigs)
		if cs.configCount >= m.opts.Support && conf >= m.opts.Confidence {
			out = append(out, &contracts.Present{
				Pattern:  text,
				Display:  text,
				Exact:    true,
				Evidence: contracts.Stats{Support: cs.configCount, Confidence: conf},
			})
		}
	}
	sortByID(out)
	return out
}

// mineOrdering learns successor contracts: pairs where the second
// pattern immediately follows every occurrence of the first in at least
// Confidence of the configs containing the first.
func (m *Miner) mineOrdering(st *stats) []contracts.Contract {
	var out []contracts.Contract
	for k, ps := range st.pairs {
		first, second := k[0], k[1]
		supportFirst := st.firstOccs[first]
		supportSecond := st.firstOccs[second]
		if supportFirst < m.opts.Support || supportSecond < m.opts.Support {
			continue
		}
		conf := float64(ps.holdConfigs) / float64(supportFirst)
		if conf < m.opts.Confidence {
			continue
		}
		out = append(out, &contracts.Ordering{
			First:         first,
			Second:        second,
			DisplayFirst:  ps.displayFirst,
			DisplaySecond: ps.displaySecond,
			Evidence:      contracts.Stats{Support: supportFirst, Confidence: conf},
		})
	}
	sortByID(out)
	return out
}

// mineTypes learns negative type contracts: for each type-agnostic
// pattern and parameter position, types used in fewer than (1-C) of the
// lines are deemed invalid.
func (m *Miner) mineTypes(st *stats) []contracts.Contract {
	var out []contracts.Contract
	for ag, ts := range st.types {
		for pi, uses := range ts.perParam {
			// Total lines that have this parameter position.
			total := 0
			for _, tu := range uses {
				total += tu.lines
			}
			if total == 0 || len(uses) < 2 {
				continue // a single observed type is not evidence of error
			}
			var good []string
			for typ, tu := range uses {
				if float64(tu.lines)/float64(total) >= 1-m.opts.Confidence {
					good = append(good, typ)
				}
			}
			sort.Strings(good)
			for typ, tu := range uses {
				frac := float64(tu.lines) / float64(total)
				if frac >= 1-m.opts.Confidence {
					continue
				}
				if total-tu.lines < m.opts.Support {
					continue // dominant evidence too thin
				}
				out = append(out, &contracts.TypeError{
					Agnostic:  ag,
					ParamIdx:  pi,
					BadType:   typ,
					GoodTypes: good,
					Evidence: contracts.Stats{
						Support:    total - tu.lines,
						Confidence: 1 - frac,
					},
				})
			}
		}
	}
	sortByID(out)
	return out
}

// mineSequence learns equidistance contracts for numeric parameters.
func (m *Miner) mineSequence(st *stats) []contracts.Contract {
	var out []contracts.Contract
	for k, ss := range st.seqs {
		if ss.configsWith2 < m.opts.Support {
			continue
		}
		conf := float64(ss.configsSeq) / float64(ss.configsWith2)
		if conf < m.opts.Confidence {
			continue
		}
		meta := st.seqMeta[k]
		out = append(out, &contracts.Sequence{
			Pattern:  meta.pattern,
			Display:  ss.display,
			ParamIdx: meta.idx,
			Evidence: contracts.Stats{Support: ss.configsWith2, Confidence: conf},
		})
	}
	sortByID(out)
	return out
}

// mineUnique learns global-uniqueness contracts: parameters whose values
// never repeat across the whole training set.
func (m *Miner) mineUnique(st *stats) []contracts.Contract {
	var out []contracts.Contract
	for k, us := range st.uniqs {
		meta := st.uniqMeta[k]
		ps := st.patterns[meta.pattern]
		if ps == nil || ps.configCount < m.opts.Support {
			continue
		}
		if us.totalValues < 2 {
			continue
		}
		// Confidence: the fraction of occurrences whose value appears
		// exactly once globally. A few duplicates below the tolerance
		// 1-C are forgiven, matching the other miners.
		uniqueOccs := 0
		for _, n := range us.valueCount {
			if n == 1 {
				uniqueOccs++
			}
		}
		conf := float64(uniqueOccs) / float64(us.totalValues)
		if conf < m.opts.Confidence {
			continue
		}
		out = append(out, &contracts.Unique{
			Pattern:  meta.pattern,
			Display:  us.display,
			ParamIdx: meta.idx,
			Evidence: contracts.Stats{Support: ps.configCount, Confidence: conf},
		})
	}
	sortByID(out)
	return out
}

// sortByID orders contracts deterministically.
func sortByID(cs []contracts.Contract) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID() < cs[j].ID() })
}
