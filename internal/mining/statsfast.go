package mining

import (
	"math/big"

	"concord/internal/faultinject"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/netdata"
)

// commonInterns returns the intern table shared by every configuration,
// or nil when the corpus carries none (hand-constructed configs) or
// mixes tables from different runs. Only a corpus-wide table lets the
// miners key their hot maps by dense IDs.
func commonInterns(cfgs []*lexer.Config) *intern.Table {
	if len(cfgs) == 0 || cfgs[0].Interns == nil {
		return nil
	}
	tab := cfgs[0].Interns
	for _, cfg := range cfgs[1:] {
		if cfg.Interns != tab {
			return nil
		}
	}
	return tab
}

// statsI is the interned mirror of stats: the same aggregates keyed by
// dense pattern IDs instead of pattern strings, so the per-line fold in
// statsOneConfigFast hashes small integers instead of full
// context-embedded pattern text. finalize converts back to the
// string-keyed stats the miners consume (a per-distinct-key cost,
// negligible next to the per-line pass).
type statsI struct {
	nConfigs  int
	tab       *intern.Table
	patterns  map[int32]*patternStats
	pairs     map[[2]int32]*pairStats
	firstOccs map[int32]int
	types     map[string]*typeStats
	agOf      map[int32]string // memoized TypeAgnostic per pattern ID
	seqs      map[int64]*seqStats
	uniqs     map[int64]*uniqStats
	constants map[string]*patternStats
}

// key2i packs (pattern ID, param index) into one map key; the parts are
// recovered by shifting, so no side meta table is needed.
func key2i(pid int32, idx int) int64 {
	return int64(pid)<<32 | int64(uint32(idx))
}

func newStatsI(nConfigs int, tab *intern.Table) *statsI {
	return &statsI{
		nConfigs:  nConfigs,
		tab:       tab,
		patterns:  make(map[int32]*patternStats),
		pairs:     make(map[[2]int32]*pairStats),
		firstOccs: make(map[int32]int),
		types:     make(map[string]*typeStats),
		agOf:      make(map[int32]string),
		seqs:      make(map[int64]*seqStats),
		uniqs:     make(map[int64]*uniqStats),
		constants: make(map[string]*patternStats),
	}
}

// pid returns a line's dense pattern ID, interning on the fly for lines
// that predate the run's table (metadata lines constructed outside the
// format layer).
func (st *statsI) pid(line *lexer.Line) int32 {
	if line.PatternID != 0 {
		return line.PatternID
	}
	return st.tab.ID(line.Pattern)
}

// statsOneConfigFast is statsOneConfig on interned keys; the fold logic
// mirrors it statement for statement (the golden differential test
// pins the equivalence).
func (m *Miner) statsOneConfigFast(cfg *lexer.Config, st *statsI) error {
	return m.contain(cfg.Name, func() {
		faultinject.At("mining.stats.config", cfg.Name)
		seenPatterns := make(map[int32]bool)
		seenConstants := make(map[string]bool)
		occ := make(map[int32]int)
		succ := make(map[[2]int32]int)
		succDisp := make(map[[2]int32][2]string)
		seqVals := make(map[int64][]*big.Int)
		for i := range cfg.Lines {
			line := &cfg.Lines[i]
			p := st.pid(line)
			ps := st.patterns[p]
			if ps == nil {
				ps = &patternStats{display: line.Display}
				st.patterns[p] = ps
			}
			ps.lineCount++
			if !seenPatterns[p] {
				seenPatterns[p] = true
				ps.configCount++
			}
			// Constants: exact line text of valued lines.
			if len(line.Params) > 0 && !seenConstants[line.Text] {
				seenConstants[line.Text] = true
				cs := st.constants[line.Text]
				if cs == nil {
					cs = &patternStats{display: line.Text}
					st.constants[line.Text] = cs
				}
				cs.configCount++
			}
			// Ordering pairs (not across the metadata boundary).
			occ[p]++
			if next := i + 1; next < len(cfg.Lines) && cfg.Lines[next].Meta == line.Meta {
				k := [2]int32{p, st.pid(&cfg.Lines[next])}
				succ[k]++
				succDisp[k] = [2]string{line.Display, cfg.Lines[next].Display}
			}
			// Types. The agnostic form is memoized per pattern ID: it is a
			// pure rewrite of the pattern text, so computing it once per
			// distinct pattern replaces a per-line regex pass.
			if len(line.Params) > 0 {
				ag, ok := st.agOf[p]
				if !ok {
					ag = lexer.TypeAgnostic(line.Pattern)
					st.agOf[p] = ag
				}
				ts := st.types[ag]
				if ts == nil {
					ts = &typeStats{}
					st.types[ag] = ts
				}
				for len(ts.perParam) < len(line.Params) {
					ts.perParam = append(ts.perParam, make(map[string]*typeUse))
				}
				ts.total++
				for pi, prm := range line.Params {
					tu := ts.perParam[pi][prm.Type]
					if tu == nil {
						tu = &typeUse{}
						ts.perParam[pi][prm.Type] = tu
					}
					tu.lines++
				}
			}
			// Sequences and uniques per parameter.
			for pi, prm := range line.Params {
				k := key2i(p, pi)
				if n, ok := prm.Value.(netdata.Num); ok {
					seqVals[k] = append(seqVals[k], n.Big())
					if _, ok := st.seqs[k]; !ok {
						st.seqs[k] = &seqStats{display: line.Display}
					}
				}
				us := st.uniqs[k]
				if us == nil {
					us = &uniqStats{display: line.Display, valueCount: make(map[string]int)}
					st.uniqs[k] = us
				}
				us.valueCount[prm.Value.Key()]++
				us.totalValues++
			}
		}
		// Fold per-config ordering results into global pair stats.
		for k, n := range succ {
			ps := st.pairs[k]
			if ps == nil {
				d := succDisp[k]
				ps = &pairStats{displayFirst: d[0], displaySecond: d[1]}
				st.pairs[k] = ps
			}
			if n == occ[k[0]] {
				ps.holdConfigs++
			}
		}
		for p := range seenPatterns {
			st.firstOccs[p]++
		}
		// Fold per-config sequence results.
		for k, vals := range seqVals {
			ss := st.seqs[k]
			if ss == nil {
				continue
			}
			if len(vals) >= 2 {
				ss.configsWith2++
				if isArithmetic(vals) {
					ss.configsSeq++
				}
			}
		}
	})
}

// finalize converts the interned aggregates to the string-keyed stats
// the miners consume.
func (st *statsI) finalize() *stats {
	out := &stats{
		nConfigs:  st.nConfigs,
		patterns:  make(map[string]*patternStats, len(st.patterns)),
		pairs:     make(map[[2]string]*pairStats, len(st.pairs)),
		firstOccs: make(map[string]int, len(st.firstOccs)),
		types:     st.types,
		seqs:      make(map[string]*seqStats, len(st.seqs)),
		uniqs:     make(map[string]*uniqStats, len(st.uniqs)),
		constants: st.constants,
		seqMeta:   make(map[string]patternParam, len(st.seqs)),
		uniqMeta:  make(map[string]patternParam, len(st.uniqs)),
	}
	for pid, ps := range st.patterns {
		out.patterns[st.tab.String(pid)] = ps
	}
	for k, ps := range st.pairs {
		out.pairs[[2]string{st.tab.String(k[0]), st.tab.String(k[1])}] = ps
	}
	for pid, n := range st.firstOccs {
		out.firstOccs[st.tab.String(pid)] = n
	}
	for k, ss := range st.seqs {
		pattern, idx := st.tab.String(int32(k>>32)), int(int32(k))
		sk := key2(pattern, idx)
		out.seqs[sk] = ss
		out.seqMeta[sk] = patternParam{pattern: pattern, idx: idx}
	}
	for k, us := range st.uniqs {
		pattern, idx := st.tab.String(int32(k>>32)), int(int32(k))
		sk := key2(pattern, idx)
		out.uniqs[sk] = us
		out.uniqMeta[sk] = patternParam{pattern: pattern, idx: idx}
	}
	return out
}
