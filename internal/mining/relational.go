package mining

import (
	"context"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"concord/internal/contracts"
	"concord/internal/faultinject"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/score"
	"concord/internal/trie"
)

// candKey identifies a candidate relational contract globally.
type candKey struct {
	p1  string
	i1  int
	t1  string
	rel relations.Rel
	p2  string
	i2  int
	t2  string
}

// candState accumulates cross-configuration evidence for one candidate.
type candState struct {
	display1, display2 string
	holdConfigs        int
	agg                *score.Aggregator
}

// mineRelational learns relational contracts with relation-aware search
// structures (§3.5). For each configuration it makes two passes: pass A
// indexes every (transformed) parameter value as a potential witness;
// pass B queries the indexes for every value, generating candidates only
// where an actual relationship exists. Candidates are then filtered by
// support, confidence, and the diversity-weighted score threshold.
//
// Cancellation is checked between configurations: a cancelled context
// aborts within one per-config iteration and returns ctx.Err().
func (m *Miner) mineRelational(ctx context.Context, cfgs []*lexer.Config, st *stats) ([]contracts.Contract, error) {
	global := make(map[candKey]*candState)
	var done atomic.Int64
	progress := func() {
		if m.opts.Progress != nil {
			m.opts.Progress(int(done.Add(1)), len(cfgs))
		}
	}

	workers := m.opts.Parallelism
	if workers <= 1 || len(cfgs) < 2 {
		for _, cfg := range cfgs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := m.mineOneConfig(cfg, global); err != nil {
				return nil, err
			}
			progress()
		}
	} else {
		// Each worker accumulates into a private table; tables are merged
		// sequentially. Merging is commutative, so the result matches the
		// sequential run.
		if workers > len(cfgs) {
			workers = len(cfgs)
		}
		ictx, abort := context.WithCancel(ctx)
		defer abort()
		var failOnce sync.Once
		var failErr error
		tables := make([]map[candKey]*candState, workers)
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			w := w
			tables[w] = make(map[candKey]*candState)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range next {
					if ictx.Err() != nil {
						continue // drain without working
					}
					if err := m.mineOneConfig(cfgs[ci], tables[w]); err != nil {
						failOnce.Do(func() {
							failErr = err
							abort()
						})
						continue
					}
					progress()
				}
			}()
		}
	feed:
		for ci := range cfgs {
			select {
			case next <- ci:
			case <-ictx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
		if failErr != nil {
			return nil, failErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, tab := range tables {
			for k, cs := range tab {
				g := global[k]
				if g == nil {
					global[k] = cs
					continue
				}
				g.holdConfigs += cs.holdConfigs
				g.agg.Merge(cs.agg)
			}
		}
	}
	m.opts.Telemetry.Add("mine.relation.candidates", int64(len(global)))

	var out []contracts.Contract
	for k, cs := range global {
		supp := st.patterns[k.p1].configCount
		if supp < m.opts.Support {
			continue
		}
		conf := float64(cs.holdConfigs) / float64(supp)
		if conf < m.opts.Confidence {
			continue
		}
		if cs.agg.Total() < m.opts.ScoreThreshold {
			continue
		}
		// Transform echo suppression: if two parameters are equal under
		// the identity transform, they are also equal under every common
		// injective transform (hex/hex, str/str, ...). Keep only the
		// identity form.
		if k.rel == relations.Equals && k.t1 == k.t2 && k.t1 != "id" {
			idKey := k
			idKey.t1, idKey.t2 = "id", "id"
			if idc, ok := global[idKey]; ok &&
				float64(idc.holdConfigs)/float64(supp) >= m.opts.Confidence &&
				idc.agg.Total() >= m.opts.ScoreThreshold {
				continue
			}
		}
		out = append(out, &contracts.Relational{
			Pattern1:   k.p1,
			Display1:   cs.display1,
			ParamIdx1:  k.i1,
			Transform1: k.t1,
			Rel:        k.rel,
			Pattern2:   k.p2,
			Display2:   cs.display2,
			ParamIdx2:  k.i2,
			Transform2: k.t2,
			Evidence: contracts.Stats{
				Support:    supp,
				Confidence: conf,
				Score:      cs.agg.Total(),
			},
		})
	}
	sortByID(out)
	return out, nil
}

// srcInfo is an interned (pattern, param, transform) triple within one
// configuration.
type srcInfo struct {
	patternID int32
	paramIdx  int32
	transform int32 // index into m.transforms
}

// hit is an indexed witness occurrence: its source plus the
// informativeness score of the stored value, precomputed at insert time.
type hit struct {
	src   int32
	score float32
}

// appliedVal is one transformed parameter value of one line, with
// everything the query pass needs precomputed.
type appliedVal struct {
	lhs   int32 // source id
	val   netdata.Value
	key   string
	score float64
}

// candLocal tracks one candidate's per-configuration evidence. Lines are
// visited in increasing order, so distinct satisfied lines can be
// counted with a single lastLine watermark.
type candLocal struct {
	lhs       int32
	rel       int8
	src       int32
	lastLine  int32
	satisfied int32
	instances []scoredInstance
}

type scoredInstance struct {
	key string
	s   float64
}

// mineOneConfig runs the per-configuration relational pass with panic
// containment (see Miner.contain): a contained panic drops only this
// configuration's relational evidence. Containment is best-effort: the
// candidate table is mutated only in the final fold loop, so a panic
// before the fold leaves the table untouched, and one during it loses
// at most this configuration's partial evidence.
func (m *Miner) mineOneConfig(cfg *lexer.Config, tab map[candKey]*candState) error {
	return m.contain(cfg.Name, func() {
		faultinject.At("mining.relational.config", cfg.Name)
		m.mineRelationalConfig(cfg, tab)
	})
}

// mineRelationalConfig processes one configuration into the global
// candidate table. The hot path works entirely on interned integer ids;
// pattern strings appear only when folding per-configuration results
// into the global table.
func (m *Miner) mineRelationalConfig(cfg *lexer.Config, global map[candKey]*candState) {
	// Intern patterns and (pattern, param, transform) sources.
	patternID := make(map[string]int32)
	var patterns []string
	var displays []string
	internPattern := func(p, display string) int32 {
		id, ok := patternID[p]
		if !ok {
			id = int32(len(patterns))
			patternID[p] = id
			patterns = append(patterns, p)
			displays = append(displays, display)
		}
		return id
	}
	type srcKey struct {
		p int32
		i int32
		t int32
	}
	srcID := make(map[srcKey]int32)
	var sources []srcInfo
	var occurrences []int32 // per-source forall instance count
	internSrc := func(k srcKey) int32 {
		id, ok := srcID[k]
		if !ok {
			id = int32(len(sources))
			srcID[k] = id
			sources = append(sources, srcInfo{patternID: k.p, paramIdx: k.i, transform: k.t})
			occurrences = append(occurrences, 0)
		}
		return id
	}

	// Specialized per-relation indexes with integer payloads.
	eq := make(map[string][]hit)
	cv4 := trie.NewPrefixTrie[hit](false)
	cv6 := trie.NewPrefixTrie[hit](true)
	sw := trie.NewStringTrie[hit]()
	ew := trie.NewStringTrie[hit]()

	// User-defined relation indexes work with string-keyed sources; the
	// side table maps their query hits back to interned ids.
	extraIx := make([]relations.Index, len(m.opts.ExtraRelations))
	for k := range m.opts.ExtraRelations {
		extraIx[k] = m.opts.ExtraRelations[k].NewIndex()
	}
	var extraSrcID map[relations.Source]int32
	if len(extraIx) > 0 {
		extraSrcID = make(map[relations.Source]int32)
	}

	// Pass A: apply transforms, intern sources, and index witness
	// values. Duplicate (value, source) pairs are indexed once.
	lineVals := make([][]appliedVal, len(cfg.Lines))
	indexed := make(map[string]bool)
	for li := range cfg.Lines {
		line := &cfg.Lines[li]
		pid := internPattern(line.Pattern, line.Display)
		if len(line.Params) == 0 {
			continue
		}
		vals := make([]appliedVal, 0, len(line.Params))
		for pi := range line.Params {
			for ti := range m.transforms {
				tv, ok := m.transforms[ti].Apply(line.Params[pi].Value)
				if !ok {
					continue
				}
				id := internSrc(srcKey{p: pid, i: int32(pi), t: int32(ti)})
				occurrences[id]++
				key := tv.Key()
				sc := score.Value(tv)
				vals = append(vals, appliedVal{lhs: id, val: tv, key: key, score: sc})
				dk := key + "\x00" + strconv.Itoa(int(id))
				if indexed[dk] {
					continue
				}
				indexed[dk] = true
				h := hit{src: id, score: float32(sc)}
				eq[key] = append(eq[key], h)
				switch v := tv.(type) {
				case netdata.Prefix:
					if v.Addr().Is6() {
						cv6.Insert(v, h)
					} else {
						cv4.Insert(v, h)
					}
				case netdata.Str:
					sw.Insert(string(v), h)
					ew.Insert(trie.Reverse(string(v)), h)
				}
				if len(extraIx) > 0 {
					esrc := relations.Source{Pattern: line.Pattern, ParamIdx: pi, Transform: m.transforms[ti].Name}
					extraSrcID[esrc] = id
					for _, ix := range extraIx {
						ix.Add(tv, esrc)
					}
				}
			}
		}
		lineVals[li] = vals
	}

	// Witness-source density penalty: a source whose values densely
	// cover a small domain (e.g. interface indexes 0..N) witnesses
	// almost any small value by coincidence. Instance scores are damped
	// by the source's occurrence count, generalizing the paper's
	// "common values yield spurious matches" heuristic.
	density := make([]float64, len(sources))
	for i := range sources {
		density[i] = 1 / (1 + math.Log2(math.Max(1, float64(occurrences[i]))))
	}

	// Pass B: query the indexes for every value. Candidates are tracked
	// in a compact map keyed by packed (lhs, src, rel).
	local := make(map[uint64]*candLocal)
	maxFanout := m.opts.MaxFanout
	record := func(av *appliedVal, li int32, rel int8, h hit) {
		ck := uint64(uint32(av.lhs))<<34 | uint64(uint32(h.src))<<4 | uint64(rel)
		c := local[ck]
		if c == nil {
			c = &candLocal{lhs: av.lhs, rel: rel, src: h.src, lastLine: -1}
			local[ck] = c
		}
		inst := av.score
		if s := float64(h.score); s < inst {
			inst = s
		}
		inst *= density[h.src]
		if c.lastLine == li {
			at := len(c.instances) - 1
			if inst > c.instances[at].s {
				c.instances[at].s = inst
			}
			return
		}
		c.lastLine = li
		c.satisfied++
		c.instances = append(c.instances, scoredInstance{key: av.key, s: inst})
	}
	for li := range cfg.Lines {
		for ai := range lineVals[li] {
			av := &lineVals[li][ai]
			lhsSrc := sources[av.lhs]
			fanout, visited := 0, 0
			visit := func(rel int8) func(h hit) bool {
				fanout, visited = 0, 0
				return func(h hit) bool {
					// Traversal budget: self-skips below still consume it,
					// so a subtree dominated by the query's own values
					// cannot force a full walk.
					visited++
					if visited > 4*maxFanout {
						return false
					}
					ws := sources[h.src]
					// A parameter never witnesses itself: the same
					// (pattern, param) is skipped regardless of transform,
					// since relating a value to a transform of itself
					// carries no cross-line information.
					if ws.patternID == lhsSrc.patternID && ws.paramIdx == lhsSrc.paramIdx {
						return true
					}
					fanout++
					if fanout > maxFanout {
						return false
					}
					record(av, int32(li), rel, h)
					return true
				}
			}
			if bucket := eq[av.key]; len(bucket) > 0 {
				v := visit(0)
				for i := range bucket {
					if !v(bucket[i]) {
						break
					}
				}
			}
			switch v := av.val.(type) {
			case netdata.IP:
				if v.Is6() {
					cv6.Containing(v, visit(1))
				} else {
					cv4.Containing(v, visit(1))
				}
			case netdata.Prefix:
				if v.Addr().Is6() {
					cv6.ContainingPrefix(v, visit(1))
				} else {
					cv4.ContainingPrefix(v, visit(1))
				}
			case netdata.Str:
				sw.ExtensionsOf(string(v), true, visit(2))
				ew.ExtensionsOf(trie.Reverse(string(v)), true, visit(3))
			}
			for k, ix := range extraIx {
				v := visit(int8(4 + k))
				ix.Query(av.val, func(e relations.Entry) bool {
					id, ok := extraSrcID[e.Source]
					if !ok {
						return true
					}
					return v(hit{src: id, score: float32(score.Value(e.Value))})
				})
			}
		}
	}

	// Fold: a candidate holds here iff every forall instance found a
	// witness.
	for _, c := range local {
		if c.satisfied != occurrences[c.lhs] {
			continue
		}
		ls := sources[c.lhs]
		ws := sources[c.src]
		k := candKey{
			p1: patterns[ls.patternID], i1: int(ls.paramIdx), t1: m.transforms[ls.transform].Name,
			rel: m.rels[c.rel],
			p2:  patterns[ws.patternID], i2: int(ws.paramIdx), t2: m.transforms[ws.transform].Name,
		}
		cs := global[k]
		if cs == nil {
			cs = &candState{
				display1: displays[ls.patternID],
				display2: displays[ws.patternID],
				agg:      score.NewAggregator(),
			}
			global[k] = cs
		}
		cs.holdConfigs++
		for _, inst := range c.instances {
			cs.agg.AddInstance(inst.key, inst.s)
		}
	}
}
