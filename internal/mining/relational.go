package mining

import (
	"context"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"concord/internal/contracts"
	"concord/internal/faultinject"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/score"
	"concord/internal/trie"
)

// candKey identifies a candidate relational contract globally by its
// pattern strings. It is the baseline key form; the fast path uses the
// interned candKeyI instead and only materializes strings for accepted
// contracts.
type candKey struct {
	p1  string
	i1  int
	t1  string
	rel relations.Rel
	p2  string
	i2  int
	t2  string
}

// candKeyI is candKey on dense IDs: run-wide intern IDs for the
// patterns, registry indexes for the transforms and the relation. It
// hashes as a few machine words instead of two full pattern strings.
type candKeyI struct {
	p1  int32
	i1  int32
	t1  int32
	rel int8
	p2  int32
	i2  int32
	t2  int32
}

// candState accumulates cross-configuration evidence for one candidate.
type candState struct {
	display1, display2 string
	holdConfigs        int
	agg                *score.Aggregator
}

// mineRelational learns relational contracts with relation-aware search
// structures (§3.5). For each configuration it makes two passes: pass A
// indexes every (transformed) parameter value as a potential witness;
// pass B queries the indexes for every value, generating candidates only
// where an actual relationship exists. Candidates are then filtered by
// support, confidence, and the diversity-weighted score threshold.
//
// Cancellation is checked between configurations: a cancelled context
// aborts within one per-config iteration and returns ctx.Err().
func (m *Miner) mineRelational(ctx context.Context, cfgs []*lexer.Config, st *stats) ([]contracts.Contract, error) {
	tab := commonInterns(cfgs)
	if m.opts.Baseline {
		tab = nil
	}
	if tab != nil {
		return m.mineRelationalInterned(ctx, cfgs, st, tab)
	}
	global, err := relationalPass(m, ctx, cfgs, func(cfg *lexer.Config, t map[candKey]*candState) error {
		return m.contain(cfg.Name, func() {
			faultinject.At("mining.relational.config", cfg.Name)
			m.mineRelationalConfigBaseline(cfg, t)
		})
	})
	if err != nil {
		return nil, err
	}
	return m.acceptRelationalBaseline(global, st), nil
}

// acceptRelationalBaseline filters a complete string-keyed candidate
// table by support, confidence, and score, materializing the accepted
// contracts. The table must hold the whole corpus's evidence (a merged
// table from sharded accumulators is fine; a partial one is not, since
// echo suppression compares candidates against each other).
func (m *Miner) acceptRelationalBaseline(global map[candKey]*candState, st *stats) []contracts.Contract {
	m.opts.Telemetry.Add("mine.relation.candidates", int64(len(global)))
	var out []contracts.Contract
	for k, cs := range global {
		supp := st.patterns[k.p1].configCount
		if supp < m.opts.Support {
			continue
		}
		conf := float64(cs.holdConfigs) / float64(supp)
		if conf < m.opts.Confidence {
			continue
		}
		if cs.agg.Total() < m.opts.ScoreThreshold {
			continue
		}
		// Transform echo suppression: if two parameters are equal under
		// the identity transform, they are also equal under every common
		// injective transform (hex/hex, str/str, ...). Keep only the
		// identity form.
		if k.rel == relations.Equals && k.t1 == k.t2 && k.t1 != "id" {
			idKey := k
			idKey.t1, idKey.t2 = "id", "id"
			if idc, ok := global[idKey]; ok &&
				float64(idc.holdConfigs)/float64(supp) >= m.opts.Confidence &&
				idc.agg.Total() >= m.opts.ScoreThreshold {
				continue
			}
		}
		out = append(out, &contracts.Relational{
			Pattern1:   k.p1,
			Display1:   cs.display1,
			ParamIdx1:  k.i1,
			Transform1: k.t1,
			Rel:        k.rel,
			Pattern2:   k.p2,
			Display2:   cs.display2,
			ParamIdx2:  k.i2,
			Transform2: k.t2,
			Evidence: contracts.Stats{
				Support:    supp,
				Confidence: conf,
				Score:      cs.agg.Total(),
			},
		})
	}
	sortByID(out)
	return out
}

// mineRelationalInterned is mineRelational's fast path: the global
// candidate table is keyed by candKeyI, and pattern strings are only
// materialized for candidates that clear the acceptance filters. Scan
// scratch (slabs, index maps, and the per-worker value/transform
// memos) is pooled across configurations within this one pass; the
// pool is local to the call so memoized transform results can never
// leak into a run with a different transform registry or intern table.
func (m *Miner) mineRelationalInterned(ctx context.Context, cfgs []*lexer.Config, st *stats, tab *intern.Table) ([]contracts.Contract, error) {
	var scratchPool sync.Pool
	global, err := relationalPass(m, ctx, cfgs, func(cfg *lexer.Config, t map[candKeyI]*candState) error {
		return m.contain(cfg.Name, func() {
			faultinject.At("mining.relational.config", cfg.Name)
			ss, _ := scratchPool.Get().(*scanScratch)
			if ss == nil {
				ss = newScanScratch(len(m.transforms))
			}
			m.scanRelationalConfig(cfg, tab, ss)
			m.foldScanInterned(ss, t)
			scratchPool.Put(ss)
		})
	})
	if err != nil {
		return nil, err
	}
	return m.acceptRelationalInterned(global, st, tab), nil
}

// acceptRelationalInterned is acceptRelationalBaseline on the interned
// candidate table: pattern strings are materialized only for candidates
// clearing the filters.
func (m *Miner) acceptRelationalInterned(global map[candKeyI]*candState, st *stats, tab *intern.Table) []contracts.Contract {
	m.opts.Telemetry.Add("mine.relation.candidates", int64(len(global)))

	idIdx := int32(-1)
	for ti := range m.transforms {
		if m.transforms[ti].Name == "id" {
			idIdx = int32(ti)
			break
		}
	}
	var out []contracts.Contract
	for k, cs := range global {
		p1 := tab.String(k.p1)
		supp := st.patterns[p1].configCount
		if supp < m.opts.Support {
			continue
		}
		conf := float64(cs.holdConfigs) / float64(supp)
		if conf < m.opts.Confidence {
			continue
		}
		if cs.agg.Total() < m.opts.ScoreThreshold {
			continue
		}
		// Transform echo suppression (see the baseline path).
		if m.rels[k.rel] == relations.Equals && k.t1 == k.t2 && k.t1 != idIdx && idIdx >= 0 {
			idKey := k
			idKey.t1, idKey.t2 = idIdx, idIdx
			if idc, ok := global[idKey]; ok &&
				float64(idc.holdConfigs)/float64(supp) >= m.opts.Confidence &&
				idc.agg.Total() >= m.opts.ScoreThreshold {
				continue
			}
		}
		out = append(out, &contracts.Relational{
			Pattern1:   p1,
			Display1:   cs.display1,
			ParamIdx1:  int(k.i1),
			Transform1: m.transforms[k.t1].Name,
			Rel:        m.rels[k.rel],
			Pattern2:   tab.String(k.p2),
			Display2:   cs.display2,
			ParamIdx2:  int(k.i2),
			Transform2: m.transforms[k.t2].Name,
			Evidence: contracts.Stats{
				Support:    supp,
				Confidence: conf,
				Score:      cs.agg.Total(),
			},
		})
	}
	sortByID(out)
	return out
}

// relationalPass runs mineOne over every configuration, sequentially or
// with worker-private tables merged afterwards; merging is commutative,
// so the result matches the sequential run. Generic over the candidate
// key form so the baseline and interned paths share the scaffolding.
func relationalPass[K comparable](m *Miner, ctx context.Context, cfgs []*lexer.Config, mineOne func(*lexer.Config, map[K]*candState) error) (map[K]*candState, error) {
	global := make(map[K]*candState)
	var done atomic.Int64
	progress := func() {
		if m.opts.Progress != nil {
			m.opts.Progress(int(done.Add(1)), len(cfgs))
		}
	}

	workers := m.opts.Parallelism
	if workers <= 1 || len(cfgs) < 2 {
		for _, cfg := range cfgs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := mineOne(cfg, global); err != nil {
				return nil, err
			}
			progress()
		}
		return global, nil
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	ictx, abort := context.WithCancel(ctx)
	defer abort()
	var failOnce sync.Once
	var failErr error
	tables := make([]map[K]*candState, workers)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		w := w
		tables[w] = make(map[K]*candState)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				if ictx.Err() != nil {
					continue // drain without working
				}
				if err := mineOne(cfgs[ci], tables[w]); err != nil {
					failOnce.Do(func() {
						failErr = err
						abort()
					})
					continue
				}
				progress()
			}
		}()
	}
feed:
	for ci := range cfgs {
		select {
		case next <- ci:
		case <-ictx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, tab := range tables {
		for k, cs := range tab {
			g := global[k]
			if g == nil {
				global[k] = cs
				continue
			}
			g.holdConfigs += cs.holdConfigs
			g.agg.Merge(cs.agg)
		}
	}
	return global, nil
}

// srcInfo is an interned (pattern, param, transform) triple within one
// configuration.
type srcInfo struct {
	patternID int32
	paramIdx  int32
	transform int32 // index into m.transforms
}

// hit is an indexed witness occurrence: its source plus the
// informativeness score of the stored value, precomputed at insert time.
type hit struct {
	src   int32
	score float32
}

// appliedVal is one transformed parameter value of one line, with
// everything the query pass needs precomputed.
type appliedVal struct {
	lhs   int32 // source id
	vid   int32 // per-config value-key id (fast path; index into eqBuckets)
	val   netdata.Value
	key   string
	score float64
}

// candLocal tracks one candidate's per-configuration evidence. Lines are
// visited in increasing order, so distinct satisfied lines can be
// counted with a single lastLine watermark.
type candLocal struct {
	lhs       int32
	rel       int8
	src       int32
	lastLine  int32
	satisfied int32
	instances []scoredInstance
}

type scoredInstance struct {
	key string
	s   float64
}

// candLocalF is the fast path's candidate tracker: instances live in
// the scan's shared instNode slab as a linked list, so the tracker (and
// the slab holding it) contains no pointers for the garbage collector
// to scan and appending an instance never reallocates per candidate.
type candLocalF struct {
	lhs       int32
	rel       int8
	src       int32
	lastLine  int32
	satisfied int32
	instHead  int32
	instTail  int32
}

// instNode is one scored instance in the shared slab; next links the
// owning candidate's instances in insertion order (-1 terminates). The
// instance key is the per-config value id, resolved back to its string
// only when the fold reaches an aggregator.
type instNode struct {
	vid  int32
	next int32
	s    float64
}

// applyEntry memoizes one (value, transform) application per worker.
// Transforms are pure and value keys are canonical, so a memoized
// result is valid for every occurrence of the value in every
// configuration the worker scans.
type applyEntry struct {
	tv    netdata.Value
	vid   int32
	score float64
	state uint8 // 0 = unknown, 1 = applies, 2 = rejected
}

// scanScratch is the fast path's per-worker scan state. The memo
// fields persist across configurations (values, patterns, and
// transform results repeat heavily within a corpus); the rest is
// reset — with capacity retained — before each configuration, so
// steady-state scanning allocates almost nothing.
type scanScratch struct {
	nT int // len(m.transforms), fixed at construction

	// Persistent per worker: value-key interning (wvID/wvKeys), the
	// per-(value, transform) application memo, and the gid -> local
	// pattern id translation (validated by epoch, so it needs no
	// clearing between configurations).
	wvID      map[string]int32
	wvKeys    []string
	applyMemo []applyEntry
	pidByGid  []int32
	pidEpoch  []uint32
	epoch     uint32

	// eqBuckets is indexed by worker value id; only buckets touched by
	// the current configuration (tracked in eqTouched) are non-empty,
	// and reset truncates exactly those, keeping their capacity.
	eqBuckets [][]hit
	eqTouched []int32

	// Per-configuration state, reset (capacity kept) between configs.
	displays    []string
	gids        []int32 // local pattern id -> run-wide intern id
	sources     []srcInfo
	occurrences []int32
	srcMemo     [][]int32 // local pattern id -> flat [paramIdx*nT+ti] source id
	valSlab     []appliedVal
	lineVals    [][2]int32
	density     []float64
	locals      []candLocalF
	insts       []instNode
	indexed     map[uint64]struct{}
	localIdx    map[uint64]int32
}

func newScanScratch(nT int) *scanScratch {
	return &scanScratch{
		nT:       nT,
		wvID:     make(map[string]int32),
		indexed:  make(map[uint64]struct{}),
		localIdx: make(map[uint64]int32),
	}
}

// internVal returns the worker-wide dense id of a value key.
func (ss *scanScratch) internVal(key string) int32 {
	id, ok := ss.wvID[key]
	if !ok {
		id = int32(len(ss.wvKeys))
		ss.wvID[key] = id
		ss.wvKeys = append(ss.wvKeys, key)
		ss.eqBuckets = append(ss.eqBuckets, nil)
	}
	return id
}

// reset prepares the scratch for the next configuration.
func (ss *scanScratch) reset(nLines int) {
	ss.epoch++
	for _, v := range ss.eqTouched {
		ss.eqBuckets[v] = ss.eqBuckets[v][:0]
	}
	ss.eqTouched = ss.eqTouched[:0]
	ss.displays = ss.displays[:0]
	ss.gids = ss.gids[:0]
	ss.sources = ss.sources[:0]
	ss.occurrences = ss.occurrences[:0]
	ss.srcMemo = ss.srcMemo[:0]
	ss.valSlab = ss.valSlab[:0]
	ss.density = ss.density[:0]
	ss.locals = ss.locals[:0]
	ss.insts = ss.insts[:0]
	if cap(ss.lineVals) < nLines {
		ss.lineVals = make([][2]int32, nLines)
	} else {
		ss.lineVals = ss.lineVals[:nLines]
	}
	clear(ss.indexed)
	clear(ss.localIdx)
}

// foldScanInterned folds one configuration's scan into the global
// candidate table: a candidate holds here iff every forall instance
// found a witness.
func (m *Miner) foldScanInterned(ss *scanScratch, global map[candKeyI]*candState) {
	for i := range ss.locals {
		c := &ss.locals[i]
		if c.satisfied != ss.occurrences[c.lhs] {
			continue
		}
		ls := ss.sources[c.lhs]
		ws := ss.sources[c.src]
		k := candKeyI{
			p1: ss.gids[ls.patternID], i1: ls.paramIdx, t1: ls.transform,
			rel: c.rel,
			p2:  ss.gids[ws.patternID], i2: ws.paramIdx, t2: ws.transform,
		}
		cs := global[k]
		if cs == nil {
			cs = &candState{
				display1: ss.displays[ls.patternID],
				display2: ss.displays[ws.patternID],
				agg:      score.NewAggregator(),
			}
			global[k] = cs
		}
		cs.holdConfigs++
		for ni := c.instHead; ni >= 0; ni = ss.insts[ni].next {
			n := &ss.insts[ni]
			cs.agg.AddInstance(ss.wvKeys[n.vid], n.s)
		}
	}
}

// scanRelationalConfig processes one configuration into a satisfied-
// candidate scan for the fast path, accumulated in the worker's
// scratch. Beyond the baseline algorithm it memoizes transform
// applications and value scores per worker (values repeat heavily
// across lines and configurations), interns value keys so pass B
// replaces string-map lookups with array indexing, resolves patterns
// through their run-wide intern id instead of hashing pattern strings,
// dedups (value, source) pairs through a pointer-free integer map, and
// slab-allocates applied values and candidate trackers; the visit
// callback is built once per configuration instead of once per value.
func (m *Miner) scanRelationalConfig(cfg *lexer.Config, gtab *intern.Table, ss *scanScratch) {
	ss.reset(len(cfg.Lines))
	nT := ss.nT

	// Local pattern ids are assigned through the run-wide intern id:
	// an epoch-tagged translation array replaces the per-line string
	// map lookup of the baseline.
	localPid := func(line *lexer.Line) int32 {
		gid := line.PatternID
		if gid == 0 {
			gid = gtab.ID(line.Pattern)
		}
		for int(gid) >= len(ss.pidByGid) {
			ss.pidByGid = append(ss.pidByGid, 0)
			ss.pidEpoch = append(ss.pidEpoch, 0)
		}
		if ss.pidEpoch[gid] != ss.epoch {
			pid := int32(len(ss.displays))
			ss.displays = append(ss.displays, line.Display)
			ss.gids = append(ss.gids, gid)
			ss.srcMemo = append(ss.srcMemo, nil)
			ss.pidByGid[gid] = pid
			ss.pidEpoch[gid] = ss.epoch
		}
		return ss.pidByGid[gid]
	}

	cv4 := trie.NewPrefixTrie[hit](false)
	cv6 := trie.NewPrefixTrie[hit](true)
	sw := trie.NewStringTrie[hit]()
	ew := trie.NewStringTrie[hit]()

	// User-defined relation indexes work with string-keyed sources; the
	// side table maps their query hits back to interned ids.
	extraIx := make([]relations.Index, len(m.opts.ExtraRelations))
	for k := range m.opts.ExtraRelations {
		extraIx[k] = m.opts.ExtraRelations[k].NewIndex()
	}
	var extraSrcID map[relations.Source]int32
	if len(extraIx) > 0 {
		extraSrcID = make(map[relations.Source]int32)
	}

	// Pass A: apply transforms, intern sources, and index witness
	// values. Each original value pays one Key() and one intern lookup;
	// its transform applications come from the worker memo. Duplicate
	// (value, source) pairs are indexed once via a packed-integer dedup
	// key. Source ids are memoized per pattern: every line of a pattern
	// has the same (pattern, param, transform) triples, so only the
	// first line assigns them.
	for li := range cfg.Lines {
		line := &cfg.Lines[li]
		pid := localPid(line)
		start := int32(len(ss.valSlab))
		if len(line.Params) == 0 {
			ss.lineVals[li] = [2]int32{start, start}
			continue
		}
		memo := ss.srcMemo[pid]
		if memo == nil {
			memo = make([]int32, len(line.Params)*nT)
			for i := range memo {
				memo[i] = -1
			}
			ss.srcMemo[pid] = memo
		}
		for pi := range line.Params {
			ov := line.Params[pi].Value
			oid := ss.internVal(ov.Key())
			if need := (int(oid) + 1) * nT; len(ss.applyMemo) < need {
				ss.applyMemo = append(ss.applyMemo, make([]applyEntry, need-len(ss.applyMemo))...)
			}
			for ti := 0; ti < nT; ti++ {
				e := &ss.applyMemo[int(oid)*nT+ti]
				if e.state == 0 {
					if tv, ok := m.transforms[ti].Apply(ov); ok {
						e.tv, e.vid, e.score, e.state = tv, ss.internVal(tv.Key()), score.Value(tv), 1
					} else {
						e.state = 2
					}
				}
				if e.state == 2 {
					continue
				}
				id := memo[pi*nT+ti]
				if id < 0 {
					id = int32(len(ss.sources))
					ss.sources = append(ss.sources, srcInfo{patternID: pid, paramIdx: int32(pi), transform: int32(ti)})
					ss.occurrences = append(ss.occurrences, 0)
					memo[pi*nT+ti] = id
				}
				ss.occurrences[id]++
				ss.valSlab = append(ss.valSlab, appliedVal{lhs: id, vid: e.vid, val: e.tv, score: e.score})
				dk := uint64(uint32(e.vid))<<32 | uint64(uint32(id))
				if _, dup := ss.indexed[dk]; dup {
					continue
				}
				ss.indexed[dk] = struct{}{}
				h := hit{src: id, score: float32(e.score)}
				if len(ss.eqBuckets[e.vid]) == 0 {
					ss.eqTouched = append(ss.eqTouched, e.vid)
				}
				ss.eqBuckets[e.vid] = append(ss.eqBuckets[e.vid], h)
				switch v := e.tv.(type) {
				case netdata.Prefix:
					if v.Addr().Is6() {
						cv6.Insert(v, h)
					} else {
						cv4.Insert(v, h)
					}
				case netdata.Str:
					sw.Insert(string(v), h)
					ew.Insert(trie.Reverse(string(v)), h)
				}
				if len(extraIx) > 0 {
					esrc := relations.Source{Pattern: line.Pattern, ParamIdx: pi, Transform: m.transforms[ti].Name}
					extraSrcID[esrc] = id
					for _, ix := range extraIx {
						ix.Add(e.tv, esrc)
					}
				}
			}
		}
		ss.lineVals[li] = [2]int32{start, int32(len(ss.valSlab))}
	}

	// Witness-source density penalty: a source whose values densely
	// cover a small domain (e.g. interface indexes 0..N) witnesses
	// almost any small value by coincidence. Instance scores are damped
	// by the source's occurrence count, generalizing the paper's
	// "common values yield spurious matches" heuristic.
	for i := range ss.sources {
		ss.density = append(ss.density, 1/(1+math.Log2(math.Max(1, float64(ss.occurrences[i])))))
	}
	density := ss.density

	// Pass B: query the indexes for every value. Candidates live in a
	// slab addressed through a map keyed by packed (lhs, src, rel), so
	// the tracker structs are contiguous and the map holds no pointers.
	sources := ss.sources
	maxFanout := m.opts.MaxFanout

	// One callback serves every index query; the per-value and
	// per-relation state lives in captured variables reset by setRel.
	var (
		curAV           *appliedVal
		curLHS          srcInfo
		curLine         int32
		curRel          int8
		fanout, visited int
	)
	visitHit := func(h hit) bool {
		// Traversal budget: self-skips below still consume it, so a
		// subtree dominated by the query's own values cannot force a
		// full walk.
		visited++
		if visited > 4*maxFanout {
			return false
		}
		ws := sources[h.src]
		// A parameter never witnesses itself: the same (pattern, param)
		// is skipped regardless of transform, since relating a value to
		// a transform of itself carries no cross-line information.
		if ws.patternID == curLHS.patternID && ws.paramIdx == curLHS.paramIdx {
			return true
		}
		fanout++
		if fanout > maxFanout {
			return false
		}
		ck := uint64(uint32(curAV.lhs))<<34 | uint64(uint32(h.src))<<4 | uint64(curRel)
		ci, ok := ss.localIdx[ck]
		if !ok {
			ci = int32(len(ss.locals))
			ss.localIdx[ck] = ci
			ss.locals = append(ss.locals, candLocalF{lhs: curAV.lhs, rel: curRel, src: h.src, lastLine: -1, instHead: -1, instTail: -1})
		}
		c := &ss.locals[ci]
		inst := curAV.score
		if s := float64(h.score); s < inst {
			inst = s
		}
		inst *= density[h.src]
		if c.lastLine == curLine {
			if n := &ss.insts[c.instTail]; inst > n.s {
				n.s = inst
			}
			return true
		}
		c.lastLine = curLine
		c.satisfied++
		ss.insts = append(ss.insts, instNode{vid: curAV.vid, next: -1, s: inst})
		ni := int32(len(ss.insts)) - 1
		if c.instTail >= 0 {
			ss.insts[c.instTail].next = ni
		} else {
			c.instHead = ni
		}
		c.instTail = ni
		return true
	}
	setRel := func(rel int8) func(h hit) bool {
		curRel = rel
		fanout, visited = 0, 0
		return visitHit
	}
	for li := range cfg.Lines {
		r := ss.lineVals[li]
		for ai := r[0]; ai < r[1]; ai++ {
			av := &ss.valSlab[ai]
			curAV = av
			curLHS = sources[av.lhs]
			curLine = int32(li)
			if bucket := ss.eqBuckets[av.vid]; len(bucket) > 0 {
				v := setRel(0)
				for i := range bucket {
					if !v(bucket[i]) {
						break
					}
				}
			}
			switch v := av.val.(type) {
			case netdata.IP:
				if v.Is6() {
					cv6.Containing(v, setRel(1))
				} else {
					cv4.Containing(v, setRel(1))
				}
			case netdata.Prefix:
				if v.Addr().Is6() {
					cv6.ContainingPrefix(v, setRel(1))
				} else {
					cv4.ContainingPrefix(v, setRel(1))
				}
			case netdata.Str:
				sw.ExtensionsOf(string(v), true, setRel(2))
				ew.ExtensionsOf(trie.Reverse(string(v)), true, setRel(3))
			}
			for k, ix := range extraIx {
				v := setRel(int8(4 + k))
				ix.Query(av.val, func(e relations.Entry) bool {
					id, ok := extraSrcID[e.Source]
					if !ok {
						return true
					}
					return v(hit{src: id, score: float32(score.Value(e.Value))})
				})
			}
		}
	}

}

// mineRelationalConfigBaseline is the pre-PR per-configuration pass,
// kept verbatim as the Baseline reference implementation: it folds
// straight into the string-keyed candidate table, and its per-value
// allocation behavior is what the learn benchmark's baseline mode
// measures against.
func (m *Miner) mineRelationalConfigBaseline(cfg *lexer.Config, global map[candKey]*candState) {
	// Intern patterns and (pattern, param, transform) sources.
	patternID := make(map[string]int32)
	var patterns []string
	var displays []string
	internPattern := func(p, display string) int32 {
		id, ok := patternID[p]
		if !ok {
			id = int32(len(patterns))
			patternID[p] = id
			patterns = append(patterns, p)
			displays = append(displays, display)
		}
		return id
	}
	type srcKey struct {
		p int32
		i int32
		t int32
	}
	srcID := make(map[srcKey]int32)
	var sources []srcInfo
	var occurrences []int32 // per-source forall instance count
	internSrc := func(k srcKey) int32 {
		id, ok := srcID[k]
		if !ok {
			id = int32(len(sources))
			srcID[k] = id
			sources = append(sources, srcInfo{patternID: k.p, paramIdx: k.i, transform: k.t})
			occurrences = append(occurrences, 0)
		}
		return id
	}

	// Specialized per-relation indexes with integer payloads.
	eq := make(map[string][]hit)
	cv4 := trie.NewPrefixTrie[hit](false)
	cv6 := trie.NewPrefixTrie[hit](true)
	sw := trie.NewStringTrie[hit]()
	ew := trie.NewStringTrie[hit]()

	// User-defined relation indexes work with string-keyed sources; the
	// side table maps their query hits back to interned ids.
	extraIx := make([]relations.Index, len(m.opts.ExtraRelations))
	for k := range m.opts.ExtraRelations {
		extraIx[k] = m.opts.ExtraRelations[k].NewIndex()
	}
	var extraSrcID map[relations.Source]int32
	if len(extraIx) > 0 {
		extraSrcID = make(map[relations.Source]int32)
	}

	// Pass A: apply transforms, intern sources, and index witness
	// values. Duplicate (value, source) pairs are indexed once.
	lineVals := make([][]appliedVal, len(cfg.Lines))
	indexed := make(map[string]bool)
	for li := range cfg.Lines {
		line := &cfg.Lines[li]
		pid := internPattern(line.Pattern, line.Display)
		if len(line.Params) == 0 {
			continue
		}
		vals := make([]appliedVal, 0, len(line.Params))
		for pi := range line.Params {
			for ti := range m.transforms {
				tv, ok := m.transforms[ti].Apply(line.Params[pi].Value)
				if !ok {
					continue
				}
				id := internSrc(srcKey{p: pid, i: int32(pi), t: int32(ti)})
				occurrences[id]++
				key := tv.Key()
				sc := score.Value(tv)
				vals = append(vals, appliedVal{lhs: id, val: tv, key: key, score: sc})
				dk := key + "\x00" + strconv.Itoa(int(id))
				if indexed[dk] {
					continue
				}
				indexed[dk] = true
				h := hit{src: id, score: float32(sc)}
				eq[key] = append(eq[key], h)
				switch v := tv.(type) {
				case netdata.Prefix:
					if v.Addr().Is6() {
						cv6.Insert(v, h)
					} else {
						cv4.Insert(v, h)
					}
				case netdata.Str:
					sw.Insert(string(v), h)
					ew.Insert(trie.Reverse(string(v)), h)
				}
				if len(extraIx) > 0 {
					esrc := relations.Source{Pattern: line.Pattern, ParamIdx: pi, Transform: m.transforms[ti].Name}
					extraSrcID[esrc] = id
					for _, ix := range extraIx {
						ix.Add(tv, esrc)
					}
				}
			}
		}
		lineVals[li] = vals
	}

	// Witness-source density penalty: a source whose values densely
	// cover a small domain (e.g. interface indexes 0..N) witnesses
	// almost any small value by coincidence. Instance scores are damped
	// by the source's occurrence count, generalizing the paper's
	// "common values yield spurious matches" heuristic.
	density := make([]float64, len(sources))
	for i := range sources {
		density[i] = 1 / (1 + math.Log2(math.Max(1, float64(occurrences[i]))))
	}

	// Pass B: query the indexes for every value. Candidates are tracked
	// in a compact map keyed by packed (lhs, src, rel).
	local := make(map[uint64]*candLocal)
	maxFanout := m.opts.MaxFanout
	record := func(av *appliedVal, li int32, rel int8, h hit) {
		ck := uint64(uint32(av.lhs))<<34 | uint64(uint32(h.src))<<4 | uint64(rel)
		c := local[ck]
		if c == nil {
			c = &candLocal{lhs: av.lhs, rel: rel, src: h.src, lastLine: -1}
			local[ck] = c
		}
		inst := av.score
		if s := float64(h.score); s < inst {
			inst = s
		}
		inst *= density[h.src]
		if c.lastLine == li {
			at := len(c.instances) - 1
			if inst > c.instances[at].s {
				c.instances[at].s = inst
			}
			return
		}
		c.lastLine = li
		c.satisfied++
		c.instances = append(c.instances, scoredInstance{key: av.key, s: inst})
	}
	for li := range cfg.Lines {
		for ai := range lineVals[li] {
			av := &lineVals[li][ai]
			lhsSrc := sources[av.lhs]
			fanout, visited := 0, 0
			visit := func(rel int8) func(h hit) bool {
				fanout, visited = 0, 0
				return func(h hit) bool {
					// Traversal budget: self-skips below still consume it,
					// so a subtree dominated by the query's own values
					// cannot force a full walk.
					visited++
					if visited > 4*maxFanout {
						return false
					}
					ws := sources[h.src]
					// A parameter never witnesses itself: the same
					// (pattern, param) is skipped regardless of transform,
					// since relating a value to a transform of itself
					// carries no cross-line information.
					if ws.patternID == lhsSrc.patternID && ws.paramIdx == lhsSrc.paramIdx {
						return true
					}
					fanout++
					if fanout > maxFanout {
						return false
					}
					record(av, int32(li), rel, h)
					return true
				}
			}
			if bucket := eq[av.key]; len(bucket) > 0 {
				v := visit(0)
				for i := range bucket {
					if !v(bucket[i]) {
						break
					}
				}
			}
			switch v := av.val.(type) {
			case netdata.IP:
				if v.Is6() {
					cv6.Containing(v, visit(1))
				} else {
					cv4.Containing(v, visit(1))
				}
			case netdata.Prefix:
				if v.Addr().Is6() {
					cv6.ContainingPrefix(v, visit(1))
				} else {
					cv4.ContainingPrefix(v, visit(1))
				}
			case netdata.Str:
				sw.ExtensionsOf(string(v), true, visit(2))
				ew.ExtensionsOf(trie.Reverse(string(v)), true, visit(3))
			}
			for k, ix := range extraIx {
				v := visit(int8(4 + k))
				ix.Query(av.val, func(e relations.Entry) bool {
					id, ok := extraSrcID[e.Source]
					if !ok {
						return true
					}
					return v(hit{src: id, score: float32(score.Value(e.Value))})
				})
			}
		}
	}

	// Fold: a candidate holds here iff every forall instance found a
	// witness.
	for _, c := range local {
		if c.satisfied != occurrences[c.lhs] {
			continue
		}
		ls := sources[c.lhs]
		ws := sources[c.src]
		k := candKey{
			p1: patterns[ls.patternID], i1: int(ls.paramIdx), t1: m.transforms[ls.transform].Name,
			rel: m.rels[c.rel],
			p2:  patterns[ws.patternID], i2: int(ws.paramIdx), t2: m.transforms[ws.transform].Name,
		}
		cs := global[k]
		if cs == nil {
			cs = &candState{
				display1: displays[ls.patternID],
				display2: displays[ws.patternID],
				agg:      score.NewAggregator(),
			}
			global[k] = cs
		}
		cs.holdConfigs++
		for _, inst := range c.instances {
			cs.agg.AddInstance(inst.key, inst.s)
		}
	}
}
