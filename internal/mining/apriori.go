package mining

import (
	"sort"
	"strings"

	"concord/internal/lexer"
)

// AprioriRule is a classic association rule X -> Y over pattern item
// sets: configurations containing all patterns in X also contain all
// patterns in Y.
type AprioriRule struct {
	Antecedent []string
	Consequent string
	Support    float64 // fraction of configs containing X ∪ {Y}
	Confidence float64 // support(X ∪ {Y}) / support(X)
}

// AprioriOptions parameterizes the baseline miner.
type AprioriOptions struct {
	// MinSupport is the minimum fraction of configurations an item set
	// must appear in to be frequent.
	MinSupport float64
	// MinConfidence is the minimum rule confidence.
	MinConfidence float64
	// MaxSetSize bounds the size of frequent item sets (and therefore
	// |X| + 1). Classic Apriori has no such bound; we expose one so the
	// baseline can run at all on large inputs.
	MaxSetSize int
}

// Apriori is the classic two-phase frequent-item-set rule miner
// (Agrawal et al. 1993) that the paper identifies as unscalable for
// configuration mining (§3.3): each configuration is a transaction whose
// items are its distinct patterns, frequent item sets are grown
// level-wise with candidate generation + pruning, and rules with a
// single-item consequent are enumerated from every frequent set. It
// learns co-occurrence only — none of Concord's value relations — and
// its cost grows combinatorially with the number of frequent patterns.
func Apriori(cfgs []*lexer.Config, opts AprioriOptions) []AprioriRule {
	if opts.MaxSetSize <= 0 {
		opts.MaxSetSize = 3
	}
	n := len(cfgs)
	if n == 0 {
		return nil
	}
	// Transactions: sorted distinct patterns per config.
	txns := make([][]string, n)
	for i, cfg := range cfgs {
		set := make(map[string]bool)
		for li := range cfg.Lines {
			set[cfg.Lines[li].Pattern] = true
		}
		items := make([]string, 0, len(set))
		for p := range set {
			items = append(items, p)
		}
		sort.Strings(items)
		txns[i] = items
	}

	contains := func(txn []string, items []string) bool {
		// Both sorted: merge scan.
		j := 0
		for _, it := range items {
			for j < len(txn) && txn[j] < it {
				j++
			}
			if j >= len(txn) || txn[j] != it {
				return false
			}
		}
		return true
	}
	supportOf := func(items []string) int {
		c := 0
		for _, txn := range txns {
			if contains(txn, items) {
				c++
			}
		}
		return c
	}

	minCount := int(opts.MinSupport * float64(n))
	if minCount < 1 {
		minCount = 1
	}

	// Level 1: frequent single items.
	counts := make(map[string]int)
	for _, txn := range txns {
		for _, it := range txn {
			counts[it]++
		}
	}
	var level [][]string
	freqSupport := make(map[string]int)
	for it, c := range counts {
		if c >= minCount {
			level = append(level, []string{it})
			freqSupport[it] = c
		}
	}
	sort.Slice(level, func(i, j int) bool { return level[i][0] < level[j][0] })

	key := func(items []string) string { return strings.Join(items, "\x00") }
	allFrequent := make(map[string]int)
	for _, s := range level {
		allFrequent[key(s)] = freqSupport[s[0]]
	}

	// Level-wise growth with prefix-join candidate generation.
	for size := 2; size <= opts.MaxSetSize && len(level) > 1; size++ {
		var next [][]string
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !equalPrefix(a, b, size-2) {
					continue
				}
				cand := append(append([]string{}, a...), b[size-2])
				if c := supportOf(cand); c >= minCount {
					next = append(next, cand)
					allFrequent[key(cand)] = c
				}
			}
		}
		level = next
	}

	// Rule generation: for each frequent set of size >= 2, each item in
	// turn is the consequent.
	var rules []AprioriRule
	for k, supXY := range allFrequent {
		items := strings.Split(k, "\x00")
		if len(items) < 2 {
			continue
		}
		for ci := range items {
			ante := make([]string, 0, len(items)-1)
			ante = append(ante, items[:ci]...)
			ante = append(ante, items[ci+1:]...)
			supX, ok := allFrequent[key(ante)]
			if !ok {
				supX = supportOf(ante)
			}
			if supX == 0 {
				continue
			}
			conf := float64(supXY) / float64(supX)
			if conf < opts.MinConfidence {
				continue
			}
			rules = append(rules, AprioriRule{
				Antecedent: ante,
				Consequent: items[ci],
				Support:    float64(supXY) / float64(n),
				Confidence: conf,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		a := strings.Join(rules[i].Antecedent, ",") + "->" + rules[i].Consequent
		b := strings.Join(rules[j].Antecedent, ",") + "->" + rules[j].Consequent
		return a < b
	})
	return rules
}

func equalPrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
