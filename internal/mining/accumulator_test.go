package mining

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"concord/internal/format"
	"concord/internal/intern"
	"concord/internal/lexer"
)

// accCorpus renders figure-1-style devices lo+1..hi, optionally
// interned into tab — the shape the sharded learn driver's processing
// stage hands to Fold.
func accCorpus(t *testing.T, lo, hi int, tab *intern.Table) []*lexer.Config {
	t.Helper()
	lx := lexer.MustNew()
	var cfgs []*lexer.Config
	for d := lo + 1; d <= hi; d++ {
		cfg := format.Process(fmt.Sprintf("dev%d", d), []byte(figure1Device(d)), lx,
			format.Options{Embed: true, Interns: tab})
		cfgs = append(cfgs, &cfg)
	}
	return cfgs
}

// foldAll streams cfgs into a fresh accumulator.
func foldAll(t *testing.T, m *Miner, tab *intern.Table, cfgs []*lexer.Config) *StatsAccumulator {
	t.Helper()
	acc := m.NewStatsAccumulator(tab)
	for _, cfg := range cfgs {
		if err := acc.Fold(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// mineJSON mines an accumulator and renders the learned set as JSON —
// the byte-identity currency of every merge-law assertion below.
func mineJSON(t *testing.T, m *Miner, acc *StatsAccumulator) string {
	t.Helper()
	set, err := m.MineAccumulated(context.Background(), acc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAccumulatorMergeProperty is the merge-law property test behind
// sharded learning: for randomized contiguous corpus splits, merging
// the per-split accumulators under a random association and a random
// shard order mines a learned set byte-identical to folding the whole
// corpus into one accumulator. Runs on both the interned and baseline
// accumulator forms.
func TestAccumulatorMergeProperty(t *testing.T) {
	const corpus = 24
	for _, baseline := range []bool{false, true} {
		name := "interned"
		if baseline {
			name = "baseline"
		}
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.ConstantLearning = true
			opts.Baseline = baseline
			var tab *intern.Table
			if !baseline {
				tab = intern.NewTable()
			}
			cfgs := accCorpus(t, 0, corpus, tab)
			m := New(opts)
			whole := foldAll(t, m, tab, cfgs)
			if whole.NConfigs() != corpus || whole.Candidates() == 0 {
				t.Fatalf("whole-corpus accumulator: %d configs, %d candidates; corpus does not exercise the relational fold",
					whole.NConfigs(), whole.Candidates())
			}
			want := mineJSON(t, m, whole)

			rng := rand.New(rand.NewSource(41))
			for trial := 0; trial < 8; trial++ {
				// Random contiguous split into 1..8 shards (empty shards
				// included: cuts may coincide).
				k := 1 + rng.Intn(8)
				cuts := []int{0, corpus}
				for i := 1; i < k; i++ {
					cuts = append(cuts, rng.Intn(corpus+1))
				}
				sort.Ints(cuts)
				var accs []*StatsAccumulator
				for i := 0; i+1 < len(cuts); i++ {
					accs = append(accs, foldAll(t, m, tab, cfgs[cuts[i]:cuts[i+1]]))
				}
				// Random association and order: repeatedly merge one random
				// accumulator into another until one remains.
				for len(accs) > 1 {
					i := rng.Intn(len(accs))
					j := rng.Intn(len(accs) - 1)
					if j >= i {
						j++
					}
					accs[i].Merge(accs[j])
					accs = append(accs[:j], accs[j+1:]...)
				}
				if accs[0].NConfigs() != corpus {
					t.Fatalf("trial %d (cuts %v): merged NConfigs = %d, want %d", trial, cuts, accs[0].NConfigs(), corpus)
				}
				if got := mineJSON(t, m, accs[0]); got != want {
					t.Fatalf("trial %d (cuts %v): merged learned set diverges from whole-corpus fold:\n got %s\nwant %s",
						trial, cuts, got, want)
				}
			}
		})
	}
}

// TestAccumulatorExportImportRoundtrip simulates the process backend's
// wire round-trip without the wire: worker-private intern tables, an
// exported AccumulatorState per shard, imports against the parent's
// table, a shard-order merge — the mined set must be byte-identical to
// a single-table whole-corpus fold.
func TestAccumulatorExportImportRoundtrip(t *testing.T) {
	const corpus = 18
	opts := DefaultOptions()
	opts.ConstantLearning = true
	parentTab := intern.NewTable()
	parentCfgs := accCorpus(t, 0, corpus, parentTab)
	m := New(opts)
	want := mineJSON(t, m, foldAll(t, m, parentTab, parentCfgs))

	merged := m.NewStatsAccumulator(parentTab)
	for _, span := range [][2]int{{0, 7}, {7, 12}, {12, corpus}} {
		// Each "worker" lexes only its slice against its own fresh table,
		// so its intern IDs are meaningless to the parent.
		wtab := intern.NewTable()
		wm := New(opts)
		acc := foldAll(t, wm, wtab, accCorpus(t, span[0], span[1], wtab))
		state := acc.Export()
		if state == nil || len(state.Strings) == 0 {
			t.Fatalf("shard %v exported an empty state", span)
		}
		imp, err := m.ImportAccumulator(state, parentTab)
		if err != nil {
			t.Fatalf("import shard %v: %v", span, err)
		}
		merged.Merge(imp)
	}
	if merged.NConfigs() != corpus {
		t.Fatalf("merged NConfigs = %d, want %d", merged.NConfigs(), corpus)
	}
	if got := mineJSON(t, m, merged); got != want {
		t.Fatalf("imported merge diverges from local fold:\n got %s\nwant %s", got, want)
	}
}

// TestImportAccumulatorRejectsForeignIDs: a state referencing string
// IDs outside its own dictionary must error, never panic or misbind.
func TestImportAccumulatorRejectsForeignIDs(t *testing.T) {
	opts := DefaultOptions()
	tab := intern.NewTable()
	m := New(opts)
	acc := foldAll(t, m, tab, accCorpus(t, 0, 4, tab))
	state := acc.Export()
	if len(state.Patterns) == 0 {
		t.Fatal("exported state has no patterns to corrupt")
	}
	state.Patterns[0].Pattern = StrID(len(state.Strings) + 7)
	if _, err := m.ImportAccumulator(state, intern.NewTable()); err == nil {
		t.Error("ImportAccumulator accepted an out-of-range string ID")
	}
}
