package mining

// Sharded map-reduce learning: a StatsAccumulator is the "map" side of
// the learn pipeline — one shard streams its configurations through
// Fold, which runs exactly the per-config statistics and relational
// scans MineContext runs, but into shard-local state that releases each
// lexed configuration immediately afterwards. Accumulators then Merge
// in shard order and MineAccumulated runs the category miners and
// relational acceptance over the merged evidence.
//
// Merge laws. Every aggregate is either additive (counts: configCount,
// lineCount, holdConfigs, firstOccs, type/sequence/unique tallies) or
// max-normalized (relational score contributions, see score.AddInstance),
// so Merge is associative and commutative on the numbers. Display
// strings are first-wins, which is order-insensitive in effect: a
// display is a pure rewrite of its pattern (lexer.Line.Display carries
// the pattern with parameter names), so shards can only ever disagree
// about a display by not having seen the pattern at all. The learned
// set is therefore byte-identical at any shard count and any merge
// association — the property test in accumulator_test.go pins this.

import (
	"context"
	"fmt"
	"sort"

	"concord/internal/contracts"
	"concord/internal/faultinject"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/relations"
	"concord/internal/score"
)

// StatsAccumulator holds one shard's mining evidence: the statistics
// the category miners consume plus the relational candidate table.
// Exactly one of the interned/baseline forms is active, mirroring
// collectStats' fast-path split. Not safe for concurrent use; shards
// fold into private accumulators and merge afterwards.
type StatsAccumulator struct {
	m   *Miner
	tab *intern.Table // nil selects the baseline string-keyed form

	// Interned form (corpus carries a run-wide table, !opts.Baseline).
	sti   *statsI
	candI map[candKeyI]*candState

	// Baseline form.
	sts   *stats
	candS map[candKey]*candState

	scratch *scanScratch
}

// NewStatsAccumulator returns an empty accumulator. A non-nil tab (the
// run-wide intern table every folded configuration must carry) selects
// the interned fast path unless Options.Baseline forces string keys.
func (m *Miner) NewStatsAccumulator(tab *intern.Table) *StatsAccumulator {
	if m.opts.Baseline {
		tab = nil
	}
	a := &StatsAccumulator{m: m, tab: tab}
	if tab != nil {
		a.sti = newStatsI(0, tab)
		a.candI = make(map[candKeyI]*candState)
	} else {
		a.sts = &stats{
			patterns:  make(map[string]*patternStats),
			pairs:     make(map[[2]string]*pairStats),
			firstOccs: make(map[string]int),
			types:     make(map[string]*typeStats),
			seqs:      make(map[string]*seqStats),
			uniqs:     make(map[string]*uniqStats),
			constants: make(map[string]*patternStats),
			seqMeta:   make(map[string]patternParam),
			uniqMeta:  make(map[string]patternParam),
		}
		a.candS = make(map[candKey]*candState)
	}
	return a
}

// NConfigs returns the number of configurations folded (and, after
// merges, the merged total) — the denominator the miners divide by.
func (a *StatsAccumulator) NConfigs() int {
	if a.sti != nil {
		return a.sti.nConfigs
	}
	return a.sts.nConfigs
}

// Candidates returns the size of the relational candidate table.
func (a *StatsAccumulator) Candidates() int {
	if a.sti != nil {
		return len(a.candI)
	}
	return len(a.candS)
}

// Fold streams one configuration into the accumulator: the statistics
// fold followed by the relational scan, under the same per-config
// containment and fault-injection sites as the unsharded passes. The
// configuration is not retained — callers may release it immediately,
// which is the whole point: sharded learn's peak heap holds one config
// per in-flight shard, not the corpus.
func (a *StatsAccumulator) Fold(cfg *lexer.Config) error {
	m := a.m
	if a.sti != nil {
		a.sti.nConfigs++
		if err := m.statsOneConfigFast(cfg, a.sti); err != nil {
			return err
		}
	} else {
		a.sts.nConfigs++
		if err := m.statsOneConfig(cfg, a.sts); err != nil {
			return err
		}
	}
	if !m.opts.enabled(contracts.CatRelation) {
		return nil
	}
	if a.sti != nil {
		return m.contain(cfg.Name, func() {
			faultinject.At("mining.relational.config", cfg.Name)
			if a.scratch == nil {
				a.scratch = newScanScratch(len(m.transforms))
			}
			m.scanRelationalConfig(cfg, a.tab, a.scratch)
			m.foldScanInterned(a.scratch, a.candI)
		})
	}
	return m.contain(cfg.Name, func() {
		faultinject.At("mining.relational.config", cfg.Name)
		m.mineRelationalConfigBaseline(cfg, a.candS)
	})
}

// Merge folds b into a. Both accumulators must be of the same form
// (same intern table or both baseline) and built by miners with the
// same registries. Merge steals b's sub-structures; b must not be used
// afterwards. When merging shards in index order a sees lower-index
// evidence first, reproducing corpus order for the first-wins display
// fields — though the merge laws above make any order equivalent.
func (a *StatsAccumulator) Merge(b *StatsAccumulator) {
	if (a.sti == nil) != (b.sti == nil) {
		panic("mining: merging accumulators of different key forms")
	}
	if a.sti != nil {
		mergeStatsInterned(a.sti, b.sti)
		mergeCands(a.candI, b.candI)
		return
	}
	mergeStatsBaseline(a.sts, b.sts)
	mergeCands(a.candS, b.candS)
}

func mergePatternStats(dst map[string]*patternStats, src map[string]*patternStats) {
	for k, ps := range src {
		if g := dst[k]; g != nil {
			g.configCount += ps.configCount
			g.lineCount += ps.lineCount
		} else {
			dst[k] = ps
		}
	}
}

func mergeTypeStats(dst, src map[string]*typeStats) {
	for ag, ts := range src {
		g := dst[ag]
		if g == nil {
			dst[ag] = ts
			continue
		}
		g.total += ts.total
		for len(g.perParam) < len(ts.perParam) {
			g.perParam = append(g.perParam, make(map[string]*typeUse))
		}
		for pi, uses := range ts.perParam {
			for typ, tu := range uses {
				if gu := g.perParam[pi][typ]; gu != nil {
					gu.lines += tu.lines
				} else {
					g.perParam[pi][typ] = tu
				}
			}
		}
	}
}

func mergeStatsInterned(dst, src *statsI) {
	dst.nConfigs += src.nConfigs
	for k, ps := range src.patterns {
		if g := dst.patterns[k]; g != nil {
			g.configCount += ps.configCount
			g.lineCount += ps.lineCount
		} else {
			dst.patterns[k] = ps
		}
	}
	for k, ps := range src.pairs {
		if g := dst.pairs[k]; g != nil {
			g.holdConfigs += ps.holdConfigs
		} else {
			dst.pairs[k] = ps
		}
	}
	for k, n := range src.firstOccs {
		dst.firstOccs[k] += n
	}
	mergeTypeStats(dst.types, src.types)
	// agOf is a fold-time memo; merged accumulators are mined, not
	// folded, so it is not carried over.
	for k, ss := range src.seqs {
		if g := dst.seqs[k]; g != nil {
			g.configsWith2 += ss.configsWith2
			g.configsSeq += ss.configsSeq
		} else {
			dst.seqs[k] = ss
		}
	}
	for k, us := range src.uniqs {
		g := dst.uniqs[k]
		if g == nil {
			dst.uniqs[k] = us
			continue
		}
		g.totalValues += us.totalValues
		for v, n := range us.valueCount {
			g.valueCount[v] += n
		}
	}
	mergePatternStats(dst.constants, src.constants)
}

func mergeStatsBaseline(dst, src *stats) {
	dst.nConfigs += src.nConfigs
	mergePatternStats(dst.patterns, src.patterns)
	for k, ps := range src.pairs {
		if g := dst.pairs[k]; g != nil {
			g.holdConfigs += ps.holdConfigs
		} else {
			dst.pairs[k] = ps
		}
	}
	for k, n := range src.firstOccs {
		dst.firstOccs[k] += n
	}
	mergeTypeStats(dst.types, src.types)
	for k, ss := range src.seqs {
		if g := dst.seqs[k]; g != nil {
			g.configsWith2 += ss.configsWith2
			g.configsSeq += ss.configsSeq
		} else {
			dst.seqs[k] = ss
		}
	}
	for k, us := range src.uniqs {
		g := dst.uniqs[k]
		if g == nil {
			dst.uniqs[k] = us
			continue
		}
		g.totalValues += us.totalValues
		for v, n := range us.valueCount {
			g.valueCount[v] += n
		}
	}
	mergePatternStats(dst.constants, src.constants)
	for k, pp := range src.seqMeta {
		dst.seqMeta[k] = pp
	}
	for k, pp := range src.uniqMeta {
		dst.uniqMeta[k] = pp
	}
}

func mergeCands[K comparable](dst, src map[K]*candState) {
	for k, cs := range src {
		g := dst[k]
		if g == nil {
			dst[k] = cs
			continue
		}
		g.holdConfigs += cs.holdConfigs
		g.agg.Merge(cs.agg)
	}
}

// MineAccumulated produces the learned set from a (merged) accumulator:
// the category miners and relational acceptance filters MineContext
// runs, over evidence collected by Fold instead of a corpus slice. The
// output is byte-identical to MineContext over the concatenation of
// every folded configuration.
func (m *Miner) MineAccumulated(ctx context.Context, acc *StatsAccumulator) (*contracts.Set, error) {
	var st *stats
	if acc.sti != nil {
		st = acc.sti.finalize()
	} else {
		st = acc.sts
	}
	set, err := m.mineFromStats(ctx, st, func() ([]contracts.Contract, error) {
		if acc.sti != nil {
			return m.acceptRelationalInterned(acc.candI, st, acc.tab), nil
		}
		return m.acceptRelationalBaseline(acc.candS, st), nil
	})
	if err != nil {
		return nil, err
	}
	if acc.tab != nil {
		m.opts.Telemetry.Add("mine.interned_strings", int64(acc.tab.Len()))
	}
	return set, nil
}

// AccumulatorState is the portable plain-data form of a
// StatsAccumulator, the payload of a shardrpc learn result frame. All
// strings live in the Strings dictionary and are referenced by 1-based
// StrID — worker-process intern IDs never cross the wire, the parent
// rebinds every reference through an intern.Translator on import.
// Export emits records in a canonical sort order with dictionary IDs
// assigned in first-reference order, so equal accumulators serialize to
// equal bytes regardless of map iteration.
type AccumulatorState struct {
	NConfigs  int
	Strings   []string
	Patterns  []AccPattern
	Pairs     []AccPair
	FirstOccs []AccFirstOcc
	Types     []AccType
	Seqs      []AccSeq
	Uniqs     []AccUniq
	Constants []AccConstant
	Cands     []AccCand
}

// StrID references AccumulatorState.Strings[id-1]; 0 is invalid.
type StrID = int32

// AccPattern is one pattern's global statistics.
type AccPattern struct {
	Pattern, Display       StrID
	ConfigCount, LineCount int
}

// AccPair is one observed successor pair.
type AccPair struct {
	First, Second               StrID
	DisplayFirst, DisplaySecond StrID
	HoldConfigs                 int
}

// AccFirstOcc counts configs containing a pattern (ordering support).
type AccFirstOcc struct {
	Pattern StrID
	Configs int
}

// AccTypeUse counts lines using one type at one parameter position.
type AccTypeUse struct {
	Type  StrID
	Lines int
}

// AccTypeParam is one parameter position's type uses.
type AccTypeParam struct {
	Uses []AccTypeUse
}

// AccType is one type-agnostic pattern's evidence.
type AccType struct {
	Agnostic StrID
	Total    int
	Params   []AccTypeParam
}

// AccSeq is one numeric parameter's equidistance evidence.
type AccSeq struct {
	Pattern                  StrID
	Idx                      int
	Display                  StrID
	ConfigsWith2, ConfigsSeq int
}

// AccValueCount counts one value's global occurrences.
type AccValueCount struct {
	Key   StrID
	Count int
}

// AccUniq is one parameter's uniqueness evidence.
type AccUniq struct {
	Pattern     StrID
	Idx         int
	Display     StrID
	TotalValues int
	Values      []AccValueCount
}

// AccConstant is one exact-text constant's statistics.
type AccConstant struct {
	Text        StrID
	ConfigCount int
}

// AccScore is one relational score contribution.
type AccScore struct {
	Key   StrID
	Score float64
}

// AccCand is one relational candidate's cross-config evidence.
// Transforms and the relation cross the wire by name, not registry
// index: names are self-describing, so a registry mismatch between
// parent and worker surfaces as an import error instead of silently
// rebinding evidence to the wrong transform.
type AccCand struct {
	P1                 StrID
	I1                 int
	T1                 StrID
	Rel                StrID
	P2                 StrID
	I2                 int
	T2                 StrID
	Display1, Display2 StrID
	HoldConfigs        int
	Scores             []AccScore
}

// stateBuilder assigns dictionary IDs in first-reference order.
type stateBuilder struct {
	ids     map[string]StrID
	strings []string
}

func (b *stateBuilder) sid(s string) StrID {
	if id, ok := b.ids[s]; ok {
		return id
	}
	id := StrID(len(b.strings) + 1)
	b.ids[s] = id
	b.strings = append(b.strings, s)
	return id
}

// Export converts the accumulator to its portable form. The stats view
// is finalized to string keys first (interned and baseline accumulators
// export identically), then every table is emitted in canonical order.
func (a *StatsAccumulator) Export() *AccumulatorState {
	var st *stats
	if a.sti != nil {
		st = a.sti.finalize()
	} else {
		st = a.sts
	}
	b := &stateBuilder{ids: make(map[string]StrID)}
	out := &AccumulatorState{NConfigs: st.nConfigs}

	for _, k := range sortedKeys(st.patterns) {
		ps := st.patterns[k]
		out.Patterns = append(out.Patterns, AccPattern{
			Pattern: b.sid(k), Display: b.sid(ps.display),
			ConfigCount: ps.configCount, LineCount: ps.lineCount,
		})
	}
	pairKeys := make([][2]string, 0, len(st.pairs))
	for k := range st.pairs {
		pairKeys = append(pairKeys, k)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i][0] != pairKeys[j][0] {
			return pairKeys[i][0] < pairKeys[j][0]
		}
		return pairKeys[i][1] < pairKeys[j][1]
	})
	for _, k := range pairKeys {
		ps := st.pairs[k]
		out.Pairs = append(out.Pairs, AccPair{
			First: b.sid(k[0]), Second: b.sid(k[1]),
			DisplayFirst: b.sid(ps.displayFirst), DisplaySecond: b.sid(ps.displaySecond),
			HoldConfigs: ps.holdConfigs,
		})
	}
	for _, k := range sortedKeys(st.firstOccs) {
		out.FirstOccs = append(out.FirstOccs, AccFirstOcc{Pattern: b.sid(k), Configs: st.firstOccs[k]})
	}
	for _, ag := range sortedKeys(st.types) {
		ts := st.types[ag]
		at := AccType{Agnostic: b.sid(ag), Total: ts.total}
		for _, uses := range ts.perParam {
			ap := AccTypeParam{}
			for _, typ := range sortedKeys(uses) {
				ap.Uses = append(ap.Uses, AccTypeUse{Type: b.sid(typ), Lines: uses[typ].lines})
			}
			at.Params = append(at.Params, ap)
		}
		out.Types = append(out.Types, at)
	}
	for _, k := range sortedKeys(st.seqs) {
		ss, pp := st.seqs[k], st.seqMeta[k]
		out.Seqs = append(out.Seqs, AccSeq{
			Pattern: b.sid(pp.pattern), Idx: pp.idx, Display: b.sid(ss.display),
			ConfigsWith2: ss.configsWith2, ConfigsSeq: ss.configsSeq,
		})
	}
	for _, k := range sortedKeys(st.uniqs) {
		us, pp := st.uniqs[k], st.uniqMeta[k]
		au := AccUniq{
			Pattern: b.sid(pp.pattern), Idx: pp.idx, Display: b.sid(us.display),
			TotalValues: us.totalValues,
		}
		for _, v := range sortedKeys(us.valueCount) {
			au.Values = append(au.Values, AccValueCount{Key: b.sid(v), Count: us.valueCount[v]})
		}
		out.Uniqs = append(out.Uniqs, au)
	}
	for _, text := range sortedKeys(st.constants) {
		out.Constants = append(out.Constants, AccConstant{Text: b.sid(text), ConfigCount: st.constants[text].configCount})
	}
	out.Cands = a.exportCands(b)
	out.Strings = b.strings
	return out
}

// exportCands materializes the candidate table with string-form keys in
// canonical order.
func (a *StatsAccumulator) exportCands(b *stateBuilder) []AccCand {
	type flat struct {
		k  candKey
		cs *candState
	}
	var cands []flat
	if a.sti != nil {
		m := a.m
		for k, cs := range a.candI {
			cands = append(cands, flat{candKey{
				p1: a.tab.String(k.p1), i1: int(k.i1), t1: m.transforms[k.t1].Name,
				rel: m.rels[k.rel],
				p2:  a.tab.String(k.p2), i2: int(k.i2), t2: m.transforms[k.t2].Name,
			}, cs})
		}
	} else {
		for k, cs := range a.candS {
			cands = append(cands, flat{k, cs})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		x, y := cands[i].k, cands[j].k
		switch {
		case x.p1 != y.p1:
			return x.p1 < y.p1
		case x.i1 != y.i1:
			return x.i1 < y.i1
		case x.t1 != y.t1:
			return x.t1 < y.t1
		case x.rel != y.rel:
			return x.rel < y.rel
		case x.p2 != y.p2:
			return x.p2 < y.p2
		case x.i2 != y.i2:
			return x.i2 < y.i2
		default:
			return x.t2 < y.t2
		}
	})
	out := make([]AccCand, 0, len(cands))
	for _, c := range cands {
		ac := AccCand{
			P1: b.sid(c.k.p1), I1: c.k.i1, T1: b.sid(c.k.t1),
			Rel: b.sid(string(c.k.rel)),
			P2:  b.sid(c.k.p2), I2: c.k.i2, T2: b.sid(c.k.t2),
			Display1: b.sid(c.cs.display1), Display2: b.sid(c.cs.display2),
			HoldConfigs: c.cs.holdConfigs,
		}
		for _, e := range c.cs.agg.Entries() {
			ac.Scores = append(ac.Scores, AccScore{Key: b.sid(e.Key), Score: e.Score})
		}
		out = append(out, ac)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ImportAccumulator rebinds a wire-form accumulator onto this miner's
// registries and the run's intern table (nil tab selects the baseline
// form, matching a LearnBaseline run). Every dictionary reference is
// range-checked and every transform/relation name resolved against the
// local registries — malformed or registry-skewed state returns an
// error, never a panic and never a silently partial accumulator.
func (m *Miner) ImportAccumulator(state *AccumulatorState, tab *intern.Table) (*StatsAccumulator, error) {
	a := m.NewStatsAccumulator(tab)
	tr := intern.NewTranslator(tab, state.Strings)
	if a.sti != nil {
		a.sti.nConfigs = state.NConfigs
	} else {
		a.sts.nConfigs = state.NConfigs
	}

	str := tr.String
	for _, p := range state.Patterns {
		pattern, err := str(p.Pattern)
		if err != nil {
			return nil, err
		}
		display, err := str(p.Display)
		if err != nil {
			return nil, err
		}
		ps := &patternStats{display: display, configCount: p.ConfigCount, lineCount: p.LineCount}
		if a.sti != nil {
			pid, err := tr.ID(p.Pattern)
			if err != nil {
				return nil, err
			}
			a.sti.patterns[pid] = ps
		} else {
			a.sts.patterns[pattern] = ps
		}
	}
	for _, p := range state.Pairs {
		first, err := str(p.First)
		if err != nil {
			return nil, err
		}
		second, err := str(p.Second)
		if err != nil {
			return nil, err
		}
		d1, err := str(p.DisplayFirst)
		if err != nil {
			return nil, err
		}
		d2, err := str(p.DisplaySecond)
		if err != nil {
			return nil, err
		}
		ps := &pairStats{displayFirst: d1, displaySecond: d2, holdConfigs: p.HoldConfigs}
		if a.sti != nil {
			id1, err := tr.ID(p.First)
			if err != nil {
				return nil, err
			}
			id2, err := tr.ID(p.Second)
			if err != nil {
				return nil, err
			}
			a.sti.pairs[[2]int32{id1, id2}] = ps
		} else {
			a.sts.pairs[[2]string{first, second}] = ps
		}
	}
	for _, f := range state.FirstOccs {
		if a.sti != nil {
			pid, err := tr.ID(f.Pattern)
			if err != nil {
				return nil, err
			}
			a.sti.firstOccs[pid] = f.Configs
		} else {
			pattern, err := str(f.Pattern)
			if err != nil {
				return nil, err
			}
			a.sts.firstOccs[pattern] = f.Configs
		}
	}
	types := a.types()
	for _, at := range state.Types {
		ag, err := str(at.Agnostic)
		if err != nil {
			return nil, err
		}
		ts := &typeStats{total: at.Total}
		for _, ap := range at.Params {
			uses := make(map[string]*typeUse, len(ap.Uses))
			for _, u := range ap.Uses {
				typ, err := str(u.Type)
				if err != nil {
					return nil, err
				}
				uses[typ] = &typeUse{lines: u.Lines}
			}
			ts.perParam = append(ts.perParam, uses)
		}
		types[ag] = ts
	}
	for _, s := range state.Seqs {
		pattern, err := str(s.Pattern)
		if err != nil {
			return nil, err
		}
		display, err := str(s.Display)
		if err != nil {
			return nil, err
		}
		ss := &seqStats{display: display, configsWith2: s.ConfigsWith2, configsSeq: s.ConfigsSeq}
		if a.sti != nil {
			pid, err := tr.ID(s.Pattern)
			if err != nil {
				return nil, err
			}
			a.sti.seqs[key2i(pid, s.Idx)] = ss
		} else {
			k := key2(pattern, s.Idx)
			a.sts.seqs[k] = ss
			a.sts.seqMeta[k] = patternParam{pattern: pattern, idx: s.Idx}
		}
	}
	for _, u := range state.Uniqs {
		pattern, err := str(u.Pattern)
		if err != nil {
			return nil, err
		}
		display, err := str(u.Display)
		if err != nil {
			return nil, err
		}
		us := &uniqStats{display: display, totalValues: u.TotalValues, valueCount: make(map[string]int, len(u.Values))}
		for _, v := range u.Values {
			key, err := str(v.Key)
			if err != nil {
				return nil, err
			}
			us.valueCount[key] = v.Count
		}
		if a.sti != nil {
			pid, err := tr.ID(u.Pattern)
			if err != nil {
				return nil, err
			}
			a.sti.uniqs[key2i(pid, u.Idx)] = us
		} else {
			k := key2(pattern, u.Idx)
			a.sts.uniqs[k] = us
			a.sts.uniqMeta[k] = patternParam{pattern: pattern, idx: u.Idx}
		}
	}
	constants := a.constants()
	for _, c := range state.Constants {
		text, err := str(c.Text)
		if err != nil {
			return nil, err
		}
		constants[text] = &patternStats{display: text, configCount: c.ConfigCount}
	}
	if err := m.importCands(a, state, tr); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *StatsAccumulator) types() map[string]*typeStats {
	if a.sti != nil {
		return a.sti.types
	}
	return a.sts.types
}

func (a *StatsAccumulator) constants() map[string]*patternStats {
	if a.sti != nil {
		return a.sti.constants
	}
	return a.sts.constants
}

func (m *Miner) importCands(a *StatsAccumulator, state *AccumulatorState, tr *intern.Translator) error {
	transformIdx := make(map[string]int32, len(m.transforms))
	for ti := range m.transforms {
		transformIdx[m.transforms[ti].Name] = int32(ti)
	}
	relIdx := make(map[relations.Rel]int8, len(m.rels))
	for ri := range m.rels {
		relIdx[m.rels[ri]] = int8(ri)
	}
	for _, c := range state.Cands {
		t1, err := tr.String(c.T1)
		if err != nil {
			return err
		}
		t2, err := tr.String(c.T2)
		if err != nil {
			return err
		}
		relName, err := tr.String(c.Rel)
		if err != nil {
			return err
		}
		rel := relations.Rel(relName)
		d1, err := tr.String(c.Display1)
		if err != nil {
			return err
		}
		d2, err := tr.String(c.Display2)
		if err != nil {
			return err
		}
		cs := &candState{display1: d1, display2: d2, holdConfigs: c.HoldConfigs, agg: score.NewAggregator()}
		for _, s := range c.Scores {
			key, err := tr.String(s.Key)
			if err != nil {
				return err
			}
			cs.agg.AddInstance(key, s.Score)
		}
		if a.sti != nil {
			ti1, ok := transformIdx[t1]
			if !ok {
				return fmt.Errorf("mining: imported accumulator names unknown transform %q", t1)
			}
			ti2, ok := transformIdx[t2]
			if !ok {
				return fmt.Errorf("mining: imported accumulator names unknown transform %q", t2)
			}
			ri, ok := relIdx[rel]
			if !ok {
				return fmt.Errorf("mining: imported accumulator names unknown relation %q", rel)
			}
			p1, err := tr.ID(c.P1)
			if err != nil {
				return err
			}
			p2, err := tr.ID(c.P2)
			if err != nil {
				return err
			}
			a.candI[candKeyI{p1: p1, i1: int32(c.I1), t1: ti1, rel: ri, p2: p2, i2: int32(c.I2), t2: ti2}] = cs
		} else {
			p1, err := tr.String(c.P1)
			if err != nil {
				return err
			}
			p2, err := tr.String(c.P2)
			if err != nil {
				return err
			}
			a.candS[candKey{p1: p1, i1: c.I1, t1: t1, rel: rel, p2: p2, i2: c.I2, t2: t2}] = cs
		}
	}
	return nil
}
