package mining

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
	"testing"

	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/format"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
)

// figure1Device renders a Figure-1-style edge switch configuration for
// device d, with values parameterized so that cross-device diversity is
// realistic: the MAC's last segment is the port-channel number in hex,
// the loopback address is permitted by the prefix list, and the route
// distinguisher ends with the vlan number.
func figure1Device(d int) string {
	pc1, pc2 := 11+d, 110+d
	vlan := 200 + d
	var b strings.Builder
	fmt.Fprintf(&b, "hostname DEV%d\n!\n", d)
	fmt.Fprintf(&b, "interface Loopback0\n   ip address 10.14.%d.34\n!\n", d)
	for _, pc := range []int{pc1, pc2} {
		fmt.Fprintf(&b, "interface Port-Channel%d\n   evpn ether-segment\n      route-target import 00:00:0c:d3:00:%02x\n!\n", pc, pc)
	}
	fmt.Fprintf(&b, "ip prefix-list loopback\n   seq 10 permit 10.14.%d.34/32\n   seq 20 permit 0.0.0.0/0\n!\n", d)
	fmt.Fprintf(&b, "router bgp %d\n   maximum-paths 64 ecmp 64\n   vlan %d\n      rd 10.14.%d.117:10%d\n!\n", 65000+d, vlan, d, vlan)
	return b.String()
}

func figure1Corpus(t *testing.T, n int) []*lexer.Config {
	t.Helper()
	lx := lexer.MustNew()
	var cfgs []*lexer.Config
	for d := 1; d <= n; d++ {
		cfg := format.Process(fmt.Sprintf("dev%d", d), []byte(figure1Device(d)), lx, format.Options{Embed: true})
		cfgs = append(cfgs, &cfg)
	}
	return cfgs
}

func mineDefault(t *testing.T, cfgs []*lexer.Config) *contracts.Set {
	t.Helper()
	return New(DefaultOptions()).Mine(cfgs)
}

func hasContractID(set *contracts.Set, id string) bool {
	for _, c := range set.Contracts {
		if c.ID() == id {
			return true
		}
	}
	return false
}

func findRelational(set *contracts.Set, substr1, rel, substr2 string) *contracts.Relational {
	for _, c := range set.Contracts {
		r, ok := c.(*contracts.Relational)
		if !ok {
			continue
		}
		if string(r.Rel) == rel &&
			strings.Contains(r.Pattern1, substr1) &&
			strings.Contains(r.Pattern2, substr2) {
			return r
		}
	}
	return nil
}

func TestMinePresent(t *testing.T) {
	set := mineDefault(t, figure1Corpus(t, 10))
	for _, pat := range []string{
		"/hostname DEV[num]",
		"/router bgp [num]",
		"/interface Loopback[num]/ip address [ip4]",
		"/ip prefix-list loopback",
	} {
		if !hasContractID(set, "present|"+pat) {
			t.Errorf("missing present contract for %q", pat)
		}
	}
}

func TestMinePresentRespectsSupport(t *testing.T) {
	// With only 3 configs (< default support 5), nothing is learned.
	set := mineDefault(t, figure1Corpus(t, 3))
	if set.Count(contracts.CatPresent) != 0 {
		t.Errorf("learned %d present contracts from 3 configs", set.Count(contracts.CatPresent))
	}
}

func TestMinePresentRespectsConfidence(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	// Remove the router bgp block from one config: 9/10 = 0.9 < 0.96.
	lx := lexer.MustNew()
	txt := figure1Device(1)
	txt = txt[:strings.Index(txt, "router bgp")]
	cfg := format.Process("dev1", []byte(txt), lx, format.Options{Embed: true})
	cfgs[0] = &cfg
	set := mineDefault(t, cfgs)
	if hasContractID(set, "present|/router bgp [num]") {
		t.Error("low-confidence present contract learned")
	}
	if !hasContractID(set, "present|/hostname DEV[num]") {
		t.Error("unrelated present contract lost")
	}
}

func TestMineOrdering(t *testing.T) {
	set := mineDefault(t, figure1Corpus(t, 10))
	// evpn ether-segment always follows interface Port-Channel[num].
	found := false
	for _, c := range set.Contracts {
		o, ok := c.(*contracts.Ordering)
		if !ok {
			continue
		}
		if o.First == "/interface Port-Channel[num]" &&
			strings.Contains(o.Second, "evpn ether-segment") {
			found = true
			if o.Evidence.Confidence < 0.96 {
				t.Errorf("confidence = %v", o.Evidence.Confidence)
			}
		}
	}
	if !found {
		t.Error("missing ordering contract for port-channel -> evpn")
	}
}

func TestMineSequence(t *testing.T) {
	set := mineDefault(t, figure1Corpus(t, 10))
	want := "sequence|/ip prefix-list loopback/seq [num] permit [pfx4]|0"
	if !hasContractID(set, want) {
		t.Errorf("missing sequence contract %q", want)
	}
}

func TestMineUnique(t *testing.T) {
	set := mineDefault(t, figure1Corpus(t, 10))
	if !hasContractID(set, "unique|/hostname DEV[num]|0") {
		t.Error("hostname should be unique")
	}
	if !hasContractID(set, "unique|/interface Loopback[num]/ip address [ip4]|0") {
		t.Error("loopback address should be unique")
	}
	// seq numbers repeat in every config: never unique.
	if hasContractID(set, "unique|/ip prefix-list loopback/seq [num] permit [pfx4]|0") {
		t.Error("repeated seq numbers learned as unique")
	}
}

func TestMineTypes(t *testing.T) {
	// 30 configs with ip4, 1 with a pfx4 at the same spot.
	lx := lexer.MustNew()
	var cfgs []*lexer.Config
	for d := 0; d < 30; d++ {
		text := fmt.Sprintf("interface Loopback0\n   ip address 10.0.%d.1\n", d)
		cfg := format.Process(fmt.Sprintf("t%d", d), []byte(text), lx, format.Options{Embed: true})
		cfgs = append(cfgs, &cfg)
	}
	bad := format.Process("bad", []byte("interface Loopback0\n   ip address 10.0.99.1/24\n"), lx, format.Options{Embed: true})
	cfgs = append(cfgs, &bad)
	set := mineDefault(t, cfgs)
	found := false
	for _, c := range set.Contracts {
		te, ok := c.(*contracts.TypeError)
		if !ok {
			continue
		}
		if te.BadType == "pfx4" && strings.Contains(te.Agnostic, "ip address") {
			found = true
			if len(te.GoodTypes) != 1 || te.GoodTypes[0] != "ip4" {
				t.Errorf("GoodTypes = %v", te.GoodTypes)
			}
		}
	}
	if !found {
		t.Error("missing type contract for rare pfx4 use")
	}
	// The dominant type must never be flagged.
	for _, c := range set.Contracts {
		if te, ok := c.(*contracts.TypeError); ok && te.BadType == "ip4" {
			t.Error("dominant type flagged as error")
		}
	}
}

func TestMineRelationalFigure1(t *testing.T) {
	set := mineDefault(t, figure1Corpus(t, 10))

	// Contract 1: hex(port-channel) == segment6(mac).
	c1 := findRelational(set, "/interface Port-Channel[num]", "equals", "route-target import [mac]")
	if c1 == nil {
		t.Fatal("missing hex/segment contract (Figure 1 contract 1)")
	}
	if !(c1.Transform1 == "hex" && c1.Transform2 == "segment6") &&
		!(c1.Transform1 == "segment6" && c1.Transform2 == "hex") {
		t.Errorf("transforms = %s / %s", c1.Transform1, c1.Transform2)
	}

	// Contract 2: prefix contains loopback address.
	c2 := findRelational(set, "ip address [ip4]", "contains", "seq [num] permit [pfx4]")
	if c2 == nil {
		t.Fatal("missing contains contract (Figure 1 contract 2)")
	}
	if c2.Transform1 != "id" || c2.Transform2 != "id" {
		t.Errorf("transforms = %s / %s", c2.Transform1, c2.Transform2)
	}

	// Contract 3: rd number ends with the vlan number.
	c3 := findRelational(set, "/router bgp [num]/vlan [num]", "endswith", "rd [ip4]:[num]")
	if c3 == nil {
		t.Fatal("missing endswith contract (Figure 1 contract 3)")
	}
}

func TestMineRelationalRejectsSpurious(t *testing.T) {
	set := mineDefault(t, figure1Corpus(t, 10))
	// The rd IP (10.14.x.117) is contained only by 0.0.0.0/0, whose
	// informativeness is zero: the contract must be rejected (§3.5).
	spurious := findRelational(set, "rd [ip4]:[num]", "contains", "seq [num] permit [pfx4]")
	if spurious != nil {
		t.Errorf("spurious default-route contract learned: %s", spurious)
	}
	// Low-diversity equality (maximum-paths 64 ecmp 64) is also rejected.
	lowdiv := findRelational(set, "maximum-paths [num] ecmp [num]", "equals", "maximum-paths [num] ecmp [num]")
	if lowdiv != nil {
		t.Errorf("low-diversity constant equality learned: %s", lowdiv)
	}
}

func TestMineRelationalBrokenInvariantNotLearned(t *testing.T) {
	// If a third of the configs break the MAC invariant, confidence
	// falls below C and the contract disappears.
	lx := lexer.MustNew()
	var cfgs []*lexer.Config
	for d := 1; d <= 12; d++ {
		text := figure1Device(d)
		if d%3 == 0 {
			text = strings.Replace(text, "00:00:0c:d3:00:", "00:00:0c:d3:01:", 2)
			// Only the last segment participates; shifting segment 5
			// leaves the contract intact, so break segment 6 instead.
			text = strings.Replace(text, fmt.Sprintf(":%02x\n", 11+d), ":ff\n", 1)
			text = strings.Replace(text, fmt.Sprintf(":%02x\n", 110+d), ":fe\n", 1)
		}
		cfg := format.Process(fmt.Sprintf("dev%d", d), []byte(text), lx, format.Options{Embed: true})
		cfgs = append(cfgs, &cfg)
	}
	set := mineDefault(t, cfgs)
	c1 := findRelational(set, "/interface Port-Channel[num]", "equals", "route-target import [mac]")
	if c1 != nil && c1.Transform1 == "hex" && c1.Transform2 == "segment6" {
		t.Errorf("broken invariant still learned with confidence %v", c1.Evidence.Confidence)
	}
}

func TestMineConstantLearning(t *testing.T) {
	opts := DefaultOptions()
	opts.ConstantLearning = true
	set := New(opts).Mine(figure1Corpus(t, 10))
	// "maximum-paths 64 ecmp 64" recurs verbatim in every config.
	found := false
	for _, c := range set.Contracts {
		if p, ok := c.(*contracts.Present); ok && p.Exact &&
			strings.Contains(p.Pattern, "maximum-paths 64 ecmp 64") {
			found = true
		}
	}
	if !found {
		t.Error("missing exact-text constant contract")
	}
	// Device-specific lines (hostname DEV7) must not become constants.
	for _, c := range set.Contracts {
		if p, ok := c.(*contracts.Present); ok && p.Exact &&
			strings.Contains(p.Pattern, "hostname DEV") {
			t.Errorf("device-specific constant learned: %s", p.Pattern)
		}
	}
}

func TestLearnedContractsHoldOnTraining(t *testing.T) {
	// Soundness: contracts learned at confidence 1.0 produce no
	// violations when checked against their own training set.
	cfgs := figure1Corpus(t, 10)
	set := mineDefault(t, cfgs)
	ch := contracts.NewChecker(set)
	for _, cfg := range cfgs {
		for _, v := range ch.Check(cfg) {
			if v.Category == contracts.CatOrdering {
				continue // ordering across '!' separators can differ at file tail
			}
			t.Errorf("training violation: %+v", v)
		}
	}
}

func TestMineEmptyInput(t *testing.T) {
	set := mineDefault(t, nil)
	if set.Len() != 0 {
		t.Errorf("empty input produced %d contracts", set.Len())
	}
	empty := lexer.Config{Name: "e"}
	set = mineDefault(t, []*lexer.Config{&empty})
	if set.Len() != 0 {
		t.Errorf("blank config produced %d contracts", set.Len())
	}
}

func TestMineCategoriesFilter(t *testing.T) {
	opts := DefaultOptions()
	opts.Categories = map[contracts.Category]bool{contracts.CatPresent: true}
	set := New(opts).Mine(figure1Corpus(t, 10))
	if set.Count(contracts.CatPresent) == 0 {
		t.Error("present mining disabled unexpectedly")
	}
	if set.Len() != set.Count(contracts.CatPresent) {
		t.Error("category filter leaked other categories")
	}
}

func TestMineDeterministic(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	a := mineDefault(t, cfgs)
	b := mineDefault(t, cfgs)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Contracts {
		if a.Contracts[i].ID() != b.Contracts[i].ID() {
			t.Fatalf("contract %d differs: %s vs %s", i, a.Contracts[i].ID(), b.Contracts[i].ID())
		}
		if a.Contracts[i].Stats() != b.Contracts[i].Stats() {
			t.Fatalf("stats differ for %s", a.Contracts[i].ID())
		}
	}
}

// TestScoringAblation shows the §3.5 false-positive filter at work: with
// the score threshold disabled, the spurious default-route containment
// contract IS learned; with the default threshold it is not.
func TestScoringAblation(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	off := DefaultOptions()
	off.ScoreThreshold = 0 // accept everything
	setOff := New(off).Mine(cfgs)
	spurious := findRelational(setOff, "rd [ip4]:[num]", "contains", "seq [num] permit [pfx4]")
	if spurious == nil {
		t.Fatal("ablation sanity: spurious contract should exist without scoring")
	}
	setOn := mineDefault(t, cfgs)
	if findRelational(setOn, "rd [ip4]:[num]", "contains", "seq [num] permit [pfx4]") != nil {
		t.Error("spurious contract survived scoring")
	}
	if setOn.Count(contracts.CatRelation) >= setOff.Count(contracts.CatRelation) {
		t.Errorf("scoring did not reduce relational contracts: %d vs %d",
			setOn.Count(contracts.CatRelation), setOff.Count(contracts.CatRelation))
	}
}

// TestMaxFanoutBoundsCandidates ensures the fanout cap is honored and
// deterministic.
func TestMaxFanoutBoundsCandidates(t *testing.T) {
	cfgs := figure1Corpus(t, 10)
	small := DefaultOptions()
	small.MaxFanout = 1
	a := New(small).Mine(cfgs)
	b := New(small).Mine(cfgs)
	if a.Len() != b.Len() {
		t.Fatal("fanout-capped mining not deterministic")
	}
	big := DefaultOptions()
	big.MaxFanout = 1 << 16
	c := New(big).Mine(cfgs)
	if c.Count(contracts.CatRelation) < a.Count(contracts.CatRelation) {
		t.Errorf("larger fanout lost contracts: %d vs %d",
			c.Count(contracts.CatRelation), a.Count(contracts.CatRelation))
	}
}

// TestExtraRelationsAtMinerLevel drives a custom relation directly
// through mining.Options: values related when equal after doubling.
func TestExtraRelationsAtMinerLevel(t *testing.T) {
	holds := func(lhs, w relations.Value) bool {
		a, ok1 := lhs.(netdata.Num)
		b, ok2 := w.(netdata.Num)
		if !ok1 || !ok2 {
			return false
		}
		x, _ := a.Int64()
		y, _ := b.Int64()
		return y == 2*x && x != 0
	}
	opts := DefaultOptions()
	opts.ExtraRelations = []relations.Definition{{
		Rel:   "doubled",
		Holds: holds,
		NewIndex: func() relations.Index {
			return relations.NewFuncIndex("doubled", holds)
		},
	}}
	lx := lexer.MustNew()
	var cfgs []*lexer.Config
	for d := 1; d <= 8; d++ {
		text := fmt.Sprintf("half %d\nfull %d\n", 500+d, 2*(500+d))
		cfg := format.Process(fmt.Sprintf("c%d", d), []byte(text), lx, format.Options{Embed: true})
		cfgs = append(cfgs, &cfg)
	}
	set := New(opts).Mine(cfgs)
	found := false
	for _, c := range set.Contracts {
		r, ok := c.(*contracts.Relational)
		if ok && r.Rel == "doubled" {
			found = true
			if r.Evidence.Confidence != 1 {
				t.Errorf("confidence = %v", r.Evidence.Confidence)
			}
		}
	}
	if !found {
		t.Fatal("custom relation contract not mined")
	}
}

// TestMineSequenceBeyondInt64 is a regression test for sequence values
// past math.MaxInt64 (9223372036854775807). Equidistance evidence used
// to be collected in int64, so large values were silently dropped and
// the contract was never learned — and values straddling the boundary
// could wrap during subtraction. Miner and checker now both judge
// equidistance in *big.Int, so they agree on the same corpus.
func TestMineSequenceBeyondInt64(t *testing.T) {
	lx := lexer.MustNew()
	// Each config carries a 3-value arithmetic progression with step 7
	// straddling the int64 boundary: 9223372036854775800, ...807, ...814.
	mk := func(name string, vals []string) *lexer.Config {
		var b strings.Builder
		fmt.Fprintf(&b, "policer-map pm\n")
		for _, v := range vals {
			fmt.Fprintf(&b, "   rate-counter %s\n", v)
		}
		cfg := format.Process(name, []byte(b.String()), lx, format.Options{Embed: true})
		return &cfg
	}
	var cfgs []*lexer.Config
	for d := 0; d < 10; d++ {
		base, _ := new(big.Int).SetString("9223372036854775800", 10)
		base.Add(base, big.NewInt(int64(d)))
		vals := []string{
			base.String(),
			new(big.Int).Add(base, big.NewInt(7)).String(),
			new(big.Int).Add(base, big.NewInt(14)).String(),
		}
		cfgs = append(cfgs, mk(fmt.Sprintf("dev%d", d), vals))
	}
	set := mineDefault(t, cfgs)
	const wantID = "sequence|/policer-map pm/rate-counter [num]|0"
	if !hasContractID(set, wantID) {
		t.Fatalf("sequence contract with values beyond int64 not learned; got %d contracts", set.Len())
	}
	// Checker agreement: a clean config passes, a broken step beyond
	// int64 is localized to the breaking line.
	var seq *contracts.Sequence
	for _, c := range set.Contracts {
		if s, ok := c.(*contracts.Sequence); ok && c.ID() == wantID {
			seq = s
		}
	}
	ch := contracts.NewChecker(&contracts.Set{Contracts: []contracts.Contract{seq}})
	if vs := ch.Check(mk("clean", []string{"18446744073709551610", "18446744073709551617", "18446744073709551624"})); len(vs) != 0 {
		t.Errorf("clean big-valued sequence flagged: %+v", vs)
	}
	vs := ch.Check(mk("broken", []string{"18446744073709551610", "18446744073709551617", "18446744073709551625"}))
	if len(vs) != 1 || vs[0].Line != 4 {
		t.Errorf("broken big-valued sequence: violations = %+v, want 1 at line 4", vs)
	}
}

// TestMineSequenceRejectsNonArithmeticBig: values beyond int64 that are
// NOT equidistant must not be learned — with the old int64 evidence the
// column was dropped entirely, and a wrapping subtraction could have
// judged a non-arithmetic column arithmetic.
func TestMineSequenceRejectsNonArithmeticBig(t *testing.T) {
	lx := lexer.MustNew()
	var cfgs []*lexer.Config
	for d := 0; d < 10; d++ {
		text := fmt.Sprintf("policer-map pm\n   rate-counter 9223372036854775%d00\n   rate-counter 18446744073709551%d10\n   rate-counter 18446744073709551%d27\n", d, d, d)
		cfg := format.Process(fmt.Sprintf("dev%d", d), []byte(text), lx, format.Options{Embed: true})
		cfgs = append(cfgs, &cfg)
	}
	set := mineDefault(t, cfgs)
	for _, c := range set.Contracts {
		if c.Category() == contracts.CatSequence {
			t.Errorf("non-arithmetic big-valued column learned as sequence: %s", c.ID())
		}
	}
}

// TestMineConcurrentCategoryDeterminism asserts the concurrent
// per-category miners produce the same contract set, in the same
// order, as repeated runs — the fixed step-order append must hide the
// goroutine scheduling entirely.
func TestMineConcurrentCategoryDeterminism(t *testing.T) {
	cfgs := figure1Corpus(t, 12)
	opts := DefaultOptions()
	opts.ConstantLearning = true
	ref := New(opts).Mine(cfgs)
	if ref.Len() == 0 {
		t.Fatal("corpus mined no contracts")
	}
	refIDs := make([]string, 0, ref.Len())
	for _, c := range ref.Contracts {
		refIDs = append(refIDs, c.ID())
	}
	for round := 0; round < 5; round++ {
		set := New(opts).Mine(cfgs)
		if set.Len() != ref.Len() {
			t.Fatalf("round %d: %d contracts, want %d", round, set.Len(), ref.Len())
		}
		for i, c := range set.Contracts {
			if c.ID() != refIDs[i] {
				t.Fatalf("round %d: contract %d is %s, want %s", round, i, c.ID(), refIDs[i])
			}
		}
	}
}

// TestMineConcurrentCategoryPanicPropagates asserts a panicking
// category miner still fails fast — the panic is re-raised on the
// caller goroutine — when containment is off (no diagnostics
// collector, not strict), even though miners run concurrently.
func TestMineConcurrentCategoryPanicPropagates(t *testing.T) {
	defer faultinject.Reset()
	cfgs := figure1Corpus(t, 12)
	injected := errors.New("injected miner fault")
	faultinject.Set("mining.category", faultinject.PanicOn(injected, "unique"))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed by the concurrent miners")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, injected) {
			t.Fatalf("recovered %v, want the injected fault", r)
		}
	}()
	New(DefaultOptions()).Mine(cfgs)
}

// TestMineConcurrentCategoryContainment asserts a panicking category
// miner is contained with a diagnostic when a collector is attached:
// the other categories still mine, only the faulty one is empty.
func TestMineConcurrentCategoryContainment(t *testing.T) {
	defer faultinject.Reset()
	cfgs := figure1Corpus(t, 12)
	injected := errors.New("injected miner fault")
	faultinject.Set("mining.category", faultinject.PanicOn(injected, "unique"))
	opts := DefaultOptions()
	dc := diag.New()
	opts.Diagnostics = dc
	set := New(opts).Mine(cfgs)
	if set.Len() == 0 {
		t.Fatal("containment lost every contract")
	}
	for _, c := range set.Contracts {
		if c.Category() == contracts.CatUnique {
			t.Fatalf("faulty category still produced %s", c.ID())
		}
	}
	if dc.Len() != 1 {
		t.Fatalf("diagnostics = %d, want 1", dc.Len())
	}
}
