package server

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"concord/internal/core"
	"concord/internal/lexer"
	"concord/internal/netdata"
)

// TestServeLearnShardValidation: POST /v1/learn rejects malformed shard
// selections with a 400 at submit time — never by accepting a job that
// is doomed to fail asynchronously.
func TestServeLearnShardValidation(t *testing.T) {
	train := toJSONSources(fixtureSources(4))
	_, base := startServer(t, core.DefaultOptions(), Options{})

	for _, tc := range []struct {
		name string
		req  LearnRequest
		want string
	}{
		{"negative shards", LearnRequest{Configs: train, Shards: -1}, "non-negative"},
		{"negative workers", LearnRequest{Configs: train, ShardWorkers: -2}, "non-negative"},
		{"unknown backend", LearnRequest{Configs: train, ShardBackend: "threads"}, "unknown shard_backend"},
	} {
		status, body := postJSON(t, base+"/v1/learn", tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s = %d (%s), want 400", tc.name, status, body)
		} else if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s error %s does not mention %q", tc.name, body, tc.want)
		}
	}

	// A server whose engine options carry a func-valued user token can
	// serve in-process learns, but a process-backend learn request must
	// be refused: the Parse func cannot cross the process boundary.
	funcOpts := core.DefaultOptions()
	funcOpts.UserTokens = []lexer.TokenSpec{{
		Name:    "odd",
		Pattern: `odd[0-9]+`,
		Parse:   func(s string) (netdata.Value, error) { return nil, nil },
	}}
	_, fbase := startServer(t, funcOpts, Options{})
	status, body := postJSON(t, fbase+"/v1/learn", LearnRequest{
		Configs: train, ShardBackend: core.ShardBackendProcess,
	})
	if status != http.StatusBadRequest {
		t.Errorf("process backend over func token = %d (%s), want 400", status, body)
	} else if !strings.Contains(string(body), "cannot serialize") {
		t.Errorf("process-backend error %s does not explain the serialization limit", body)
	}
	// The same request without the backend override still learns fine.
	status, body = postJSON(t, fbase+"/v1/learn", LearnRequest{Configs: train})
	if status != http.StatusAccepted {
		t.Fatalf("in-process learn on func-token server = %d: %s", status, body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	pollJob(t, fbase, accepted.ID, 30*time.Second)
}

// TestServeShardedLearnJob runs the async learn flow unsharded,
// in-process sharded, and process-backend sharded over one corpus: all
// three jobs must register learned sets under the identical fingerprint
// with identical contract counts and corpus statistics.
func TestServeShardedLearnJob(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	train := fixtureSources(24)
	engineOpts := core.DefaultOptions()
	engineOpts.ShardWorkerCommand = []string{exe}
	_, base := startServer(t, engineOpts, Options{})

	learn := func(req LearnRequest) *LearnResult {
		t.Helper()
		status, body := postJSON(t, base+"/v1/learn", req)
		if status != http.StatusAccepted {
			t.Fatalf("POST /v1/learn (shards=%d backend=%q) = %d: %s", req.Shards, req.ShardBackend, status, body)
		}
		var accepted JobStatus
		if err := json.Unmarshal(body, &accepted); err != nil {
			t.Fatal(err)
		}
		done := pollJob(t, base, accepted.ID, 60*time.Second)
		if done.State != JobDone || done.Result == nil {
			t.Fatalf("job %s (shards=%d backend=%q) = %+v, want done with result",
				accepted.ID, req.Shards, req.ShardBackend, done)
		}
		return done.Result
	}

	want := learn(LearnRequest{Configs: toJSONSources(train)})
	if want.Contracts == 0 {
		t.Fatal("baseline learn mined no contracts; the corpus does not exercise the miners")
	}
	for _, req := range []LearnRequest{
		{Configs: toJSONSources(train), Shards: 3},
		{Configs: toJSONSources(train), Shards: 3, ShardWorkers: 2, ShardBackend: core.ShardBackendProcess},
		{Configs: toJSONSources(train), ShardBackend: core.ShardBackendProcess},
	} {
		got := learn(req)
		if got.Fingerprint != want.Fingerprint {
			t.Errorf("shards=%d backend=%q: fingerprint %s diverges from unsharded %s",
				req.Shards, req.ShardBackend, got.Fingerprint, want.Fingerprint)
		}
		if got.Contracts != want.Contracts {
			t.Errorf("shards=%d backend=%q: %d contracts, want %d", req.Shards, req.ShardBackend, got.Contracts, want.Contracts)
		}
		if got.Stats != want.Stats {
			t.Errorf("shards=%d backend=%q: stats %+v diverge from %+v", req.Shards, req.ShardBackend, got.Stats, want.Stats)
		}
	}

	// The sharded fingerprint is immediately checkable, like any other.
	status, body := postJSON(t, base+"/v1/check", CheckRequest{
		Fingerprint: want.Fingerprint, Configs: toJSONSources(fixtureSources(3)),
	})
	if status != http.StatusOK {
		t.Errorf("check by sharded-learn fingerprint = %d: %s", status, body)
	}
}

// TestServeShardedLearnJournalRoundTrip: the shard selection rides the
// journaled request, so a daemon restarted mid-job resumes the learn
// under the backend it was submitted with.
func TestServeShardedLearnJournalRoundTrip(t *testing.T) {
	raw, err := json.Marshal(LearnRequest{
		Configs: toJSONSources(fixtureSources(2)), Shards: 5, ShardWorkers: 2,
		ShardBackend: core.ShardBackendInProcess,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got LearnRequest
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Shards != 5 || got.ShardWorkers != 2 || got.ShardBackend != core.ShardBackendInProcess {
		t.Errorf("journaled shard selection lost: %+v", got)
	}
}
