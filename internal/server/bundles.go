package server

// Bundle activation: the hot-reload pipeline that swaps the server's
// default serving set without dropping a request. An incoming bundle
// (POST /v1/bundles, or a SIGHUP-triggered rescan of the bundle
// directory) is compiled off to the side through the registry's
// singleflight, persisted to the crash-safe store, and only then
// atomically swapped in; in-flight requests finish on the engine they
// resolved. A failed compile or validation leaves the previous set —
// the last known good — serving, untouched. On startup the server
// recovers the last-known-good bundle from the store, so a crashed or
// restarted daemon comes back serving exactly what it served before.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"concord/internal/bundle"
	"concord/internal/diag"
	"concord/internal/report"
)

// BundleRequest is the body of POST /v1/bundles: a contract bundle to
// persist and activate as the default serving set.
type BundleRequest struct {
	// Name and Revision label the bundle for operators.
	Name     string `json:"name"`
	Revision string `json:"revision,omitempty"`
	// Contracts is the base contract set — the learn output envelope or
	// a bare contract array, the same formats `concord check -contracts`
	// reads. Required.
	Contracts json.RawMessage `json:"contracts"`
	// Overlay optionally carries operator-authored contracts served
	// alongside the base set.
	Overlay json.RawMessage `json:"overlay,omitempty"`
	// Suppressions lists contract IDs excluded from serving — the
	// durable form of `concord check -suppress`.
	Suppressions []string `json:"suppressions,omitempty"`
}

// BundleResponse is the body of a successful POST /v1/bundles.
type BundleResponse struct {
	// ID is the store-assigned bundle ID ("" when the server runs
	// without a bundle store and the activation was memory-only).
	ID string `json:"id,omitempty"`
	// Fingerprint is the effective set's registry fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Contracts counts the effective (served) contracts; Suppressed
	// counts the contract IDs the suppression list removed.
	Contracts  int  `json:"contracts"`
	Suppressed int  `json:"suppressed"`
	Activated  bool `json:"activated"`
}

// BundleInfo summarizes one stored bundle for GET /v1/bundles.
type BundleInfo struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Revision     string `json:"revision,omitempty"`
	Role         string `json:"role"`
	Seq          uint64 `json:"seq"`
	CreatedUnix  int64  `json:"created_unix"`
	Contracts    int    `json:"contracts"`
	Overlay      int    `json:"overlay,omitempty"`
	Suppressions int    `json:"suppressions,omitempty"`
}

// BundlesResponse is the body of GET /v1/bundles.
type BundlesResponse struct {
	// ActiveID names the bundle behind the current default serving set
	// ("" when the default was set directly via -contracts).
	ActiveID string `json:"active_id,omitempty"`
	// ActiveFingerprint is the default serving set's fingerprint ("" if
	// the server has no default set).
	ActiveFingerprint string `json:"active_fingerprint,omitempty"`
	// LastKnownGood is the store's last-known-good pointer.
	LastKnownGood string `json:"last_known_good,omitempty"`
	// Bundles lists the store's committed, verified bundles.
	Bundles []BundleInfo `json:"bundles,omitempty"`
}

// errNoBundleStore reports bundle-store operations on a server started
// without -bundle-dir.
var errNoBundleStore = fmt.Errorf("server: no bundle store configured (-bundle-dir)")

// activateBundle runs the activation pipeline: validate, compile the
// effective set off to the side (registry singleflight — concurrent
// requests keep being served by the current engine), persist when asked,
// swap atomically, then advance the last-known-good pointer. Any
// failure before the swap leaves the previous serving set untouched and
// counts a rollback.
func (s *Server) activateBundle(ctx context.Context, b *bundle.Bundle, persist bool) (string, error) {
	if err := b.Validate(); err != nil {
		return "", err
	}
	eff := b.Effective()
	en, err := s.reg.Acquire(ctx, eff)
	if err != nil {
		s.rec.Add("server.bundle_rollbacks", 1)
		s.diags.Addf(diag.SevWarn, "bundle", b.Manifest.Name, 0,
			"bundle activation failed, previous set keeps serving: %v", err)
		return "", fmt.Errorf("activating bundle %q failed (previous set keeps serving): %w", b.Manifest.Name, err)
	}
	if persist && s.store != nil {
		if _, err := s.store.Write(b); err != nil {
			s.rec.Add("server.bundle_rollbacks", 1)
			s.diags.Addf(diag.SevWarn, "bundle", b.Manifest.Name, 0,
				"persisting bundle failed, previous set keeps serving: %v", err)
			return "", fmt.Errorf("persisting bundle %q failed (previous set keeps serving): %w", b.Manifest.Name, err)
		}
	}
	s.swapDefault(en, b.Manifest.ID)
	s.rec.Add("server.bundle_activations", 1)
	if s.store != nil && b.Manifest.ID != "" {
		// The swap already happened; a pointer-write failure only means
		// a restart recovers the previous LKG, so it degrades to a
		// diagnostic instead of unwinding the activation.
		if err := s.store.SetLastKnownGood(b.Manifest.ID); err != nil {
			s.diags.Addf(diag.SevWarn, "bundle", b.Manifest.ID, 0,
				"advancing last-known-good pointer failed: %v", err)
		}
	}
	return en.Fingerprint(), nil
}

// Reload rescans the bundle store — quarantining anything corrupt — and
// activates the newest valid serve-role bundle if it differs from the
// one currently serving. `concord serve` wires SIGHUP to it. The
// returned fingerprint is the (possibly unchanged) serving set's.
func (s *Server) Reload(ctx context.Context) (string, error) {
	if s.store == nil {
		return "", errNoBundleStore
	}
	s.rec.Add("server.reloads", 1)
	cand, err := s.scanStore()
	if err != nil {
		return "", err
	}
	if cand == nil {
		// Nothing valid to serve: keep the current set (possibly none).
		s.mu.Lock()
		en := s.defaultEntry
		s.mu.Unlock()
		if en == nil {
			return "", fmt.Errorf("server: bundle store has no valid serve bundles")
		}
		return en.Fingerprint(), nil
	}
	s.mu.Lock()
	currentID := s.defaultBundleID
	en := s.defaultEntry
	s.mu.Unlock()
	if en != nil && currentID == cand.Manifest.ID {
		return en.Fingerprint(), nil
	}
	return s.activateBundle(ctx, cand, false)
}

// scanStore scans the bundle store, folds the scan's diagnostics and
// quarantine count into the server's sinks, and returns the newest
// valid serve-role bundle (nil when none exists).
func (s *Server) scanStore() (*bundle.Bundle, error) {
	bundles, ds, err := s.store.Scan()
	if err != nil {
		return nil, err
	}
	for _, d := range ds {
		s.diags.Add(d)
		if d.Severity == diag.SevWarn {
			s.rec.Add("server.bundles_quarantined", 1)
		}
	}
	var newest *bundle.Bundle
	for _, b := range bundles {
		if b.Manifest.Role == bundle.RoleServe {
			newest = b // Scan returns ascending Seq
		}
	}
	return newest, nil
}

// recoverFromStore restores serving state after a restart: scan and
// quarantine, activate the last-known-good bundle (falling back to the
// newest valid serve bundle if the pointer is unset, stale, or names a
// bundle that no longer verifies), then replay the learn-job journal.
// Corrupt state never fails startup — the daemon always comes up with
// the best consistent state the disk still holds.
func (s *Server) recoverFromStore() error {
	bundles, ds, err := s.store.Scan()
	if err != nil {
		return err
	}
	for _, d := range ds {
		s.diags.Add(d)
		if d.Severity == diag.SevWarn {
			s.rec.Add("server.bundles_quarantined", 1)
		}
	}
	lkg, lkgErr := s.store.LastKnownGood()
	if lkgErr != nil {
		s.diags.Addf(diag.SevWarn, "bundle", "lkg", 0,
			"last-known-good pointer unreadable, falling back to newest valid bundle: %v", lkgErr)
		lkg = ""
	}
	var chosen *bundle.Bundle
	for _, b := range bundles {
		if b.Manifest.Role != bundle.RoleServe {
			continue
		}
		if b.Manifest.ID == lkg {
			chosen = b
			break
		}
	}
	if chosen == nil {
		for _, b := range bundles {
			if b.Manifest.Role == bundle.RoleServe {
				chosen = b // newest valid, ascending Seq
			}
		}
		if chosen != nil && lkg != "" {
			s.diags.Addf(diag.SevWarn, "bundle", lkg, 0,
				"last-known-good bundle missing or corrupt, recovered newest valid bundle %s", chosen.Manifest.ID)
		}
	}
	if chosen != nil {
		if _, err := s.activateBundle(s.baseCtx, chosen, false); err != nil {
			// Compile failure of a previously-good bundle (e.g. options
			// changed across restarts): start without a default rather
			// than refusing to start.
			s.diags.Addf(diag.SevError, "bundle", chosen.Manifest.ID, 0,
				"recovered bundle failed to activate: %v", err)
		}
	}
	return s.recoverJobs()
}

// handleBundlePush answers POST /v1/bundles: decode, persist, compile
// off to the side, and hot-swap the default serving set. A bad bundle
// answers 4xx/422 and the previous set keeps serving.
func (s *Server) handleBundlePush(w http.ResponseWriter, r *http.Request) {
	var req BundleRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Contracts) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bundle push carries no contracts"))
		return
	}
	set, err := report.ParseContractsJSON(req.Contracts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b := bundle.New(req.Name, req.Revision, bundle.RoleServe, set, nil, req.Suppressions)
	if len(req.Overlay) > 0 {
		ov, err := report.ParseContractsJSON(req.Overlay)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding overlay: %w", err))
			return
		}
		b.Overlay = ov
	}
	if b.Manifest.Name == "" {
		b.Manifest.Name = "push"
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	fp, err := s.activateBundle(ctx, b, true)
	if err != nil {
		// The rollback already happened inside activateBundle; the push
		// is the client's problem now.
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	eff := b.Effective()
	writeJSON(w, http.StatusOK, BundleResponse{
		ID:          b.Manifest.ID,
		Fingerprint: fp,
		Contracts:   eff.Len(),
		Suppressed:  b.Manifest.Contracts + b.Manifest.Overlay - eff.Len(),
		Activated:   true,
	})
}

// handleBundleList answers GET /v1/bundles: the active bundle, the
// last-known-good pointer, and every verified bundle in the store.
func (s *Server) handleBundleList(w http.ResponseWriter, r *http.Request) {
	resp := BundlesResponse{}
	s.mu.Lock()
	resp.ActiveID = s.defaultBundleID
	if s.defaultEntry != nil {
		resp.ActiveFingerprint = s.defaultEntry.Fingerprint()
	}
	s.mu.Unlock()
	if s.store != nil {
		bundles, ds, err := s.store.Scan()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		for _, d := range ds {
			s.diags.Add(d)
			if d.Severity == diag.SevWarn {
				s.rec.Add("server.bundles_quarantined", 1)
			}
		}
		if lkg, err := s.store.LastKnownGood(); err == nil {
			resp.LastKnownGood = lkg
		}
		for _, b := range bundles {
			m := b.Manifest
			resp.Bundles = append(resp.Bundles, BundleInfo{
				ID: m.ID, Name: m.Name, Revision: m.Revision, Role: m.Role,
				Seq: m.Seq, CreatedUnix: m.CreatedUnix,
				Contracts: m.Contracts, Overlay: m.Overlay, Suppressions: m.Suppressions,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Store exposes the server's bundle store (nil without BundleDir), for
// tests and embedding callers.
func (s *Server) Store() *bundle.Store { return s.store }

// ActiveBundle reports the bundle ID and fingerprint behind the current
// default serving set.
func (s *Server) ActiveBundle() (id, fingerprint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.defaultEntry != nil {
		fingerprint = s.defaultEntry.Fingerprint()
	}
	return s.defaultBundleID, fingerprint
}

// startJobJanitor runs the retention sweep for finished learn jobs (see
// jobs.go); it lives here only to keep New tidy.
func (s *Server) startJobJanitor() {
	tick := s.opts.JobRetention / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Minute {
		tick = time.Minute
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.baseCtx.Done():
				return
			case <-t.C:
				s.expireJobs(time.Now())
			}
		}
	}()
}
