// Package server implements Concord's resident service mode: a
// long-running HTTP daemon that keeps compiled contract sets, intern
// tables, and the artifact cache hot in memory across requests. It is
// the `concord serve` subcommand's engine room.
//
// Endpoints:
//
//	POST /v1/check     — check a batch of configurations against a
//	                     contract set (embedded, by fingerprint, or the
//	                     server's default set)
//	GET  /v1/coverage  — per-line coverage under the same inputs (POST
//	                     also accepted, for clients that cannot send a
//	                     GET body)
//	POST /v1/learn     — start an asynchronous learn job; poll it at
//	GET  /v1/jobs/{id}
//	GET  /healthz      — liveness plus registry and job statistics
//	GET  /metrics      — the resident telemetry recorder as JSON
//
// Contract sets are multi-tenant: every request may carry its own set,
// and the fingerprint-keyed core.EngineRegistry shares one compiled
// checker, intern table, and lexer cache among all concurrent requests
// naming the same set — a thundering herd compiles exactly once.
// Requests run under per-request timeouts and cancellation, get
// request-scoped telemetry spans and diagnostics in their responses,
// and are individually panic-contained: one poisoned request returns a
// 500 without taking the daemon down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/bundle"
	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/telemetry"
)

// Options configures the HTTP daemon, mirroring core.Options'
// fill-defaults-then-Validate contract: zero fields select defaults,
// explicitly nonsensical values are rejected by Validate.
type Options struct {
	// Addr is the listen address. Default "127.0.0.1:8344".
	Addr string
	// ReadTimeout bounds reading one request (headers + body).
	// Default 1m.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response. Default 5m (batch
	// checks stream large JSON bodies).
	WriteTimeout time.Duration
	// RequestTimeout is the per-request pipeline deadline: the engine's
	// cooperative cancellation aborts a check or coverage run that
	// exceeds it and the request fails with 504. Default 2m.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body; larger bodies fail with 413.
	// Default 64 MiB.
	MaxBodyBytes int64
	// RegistryMaxEntries bounds how many distinct contract sets stay
	// resident (the registry's LRU size). Default
	// core.DefaultRegistryEntries.
	RegistryMaxEntries int
	// DrainTimeout bounds graceful shutdown: in-flight requests and
	// learn jobs get this long to finish before being cancelled.
	// Default 10s.
	DrainTimeout time.Duration
	// MaxInflight caps concurrently executing work requests (check,
	// coverage, learn, bundle push); excess load is shed with 429 +
	// Retry-After instead of queueing unboundedly. 0 disables the cap.
	MaxInflight int
	// BundleDir, when set, roots the crash-safe bundle store: pushed
	// and learned bundles persist there, the last-known-good serving
	// set is recovered on startup, and learn jobs journal their state
	// for restart recovery.
	BundleDir string
	// JobRetention bounds how long finished learn-job records stay
	// queryable (and their learned sets pinned in the registry).
	// Default 1h.
	JobRetention time.Duration
}

// DefaultOptions returns the server defaults.
func DefaultOptions() Options {
	return Options{
		Addr:               "127.0.0.1:8344",
		ReadTimeout:        time.Minute,
		WriteTimeout:       5 * time.Minute,
		RequestTimeout:     2 * time.Minute,
		MaxBodyBytes:       64 << 20,
		RegistryMaxEntries: core.DefaultRegistryEntries,
		DrainTimeout:       10 * time.Second,
		JobRetention:       time.Hour,
	}
}

// withDefaults fills zero fields with the defaults.
func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.Addr == "" {
		o.Addr = def.Addr
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = def.ReadTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = def.WriteTimeout
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = def.RequestTimeout
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = def.MaxBodyBytes
	}
	if o.RegistryMaxEntries == 0 {
		o.RegistryMaxEntries = def.RegistryMaxEntries
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = def.DrainTimeout
	}
	if o.JobRetention == 0 {
		o.JobRetention = def.JobRetention
	}
	return o
}

// Validate rejects unusable option values. Zero values are legal (New
// fills defaults first), so only explicitly negative or senseless
// settings fail.
func (o Options) Validate() error {
	if o.ReadTimeout < 0 || o.WriteTimeout < 0 || o.RequestTimeout < 0 || o.DrainTimeout < 0 {
		return fmt.Errorf("server: timeouts must be non-negative")
	}
	if o.MaxBodyBytes < 0 {
		return fmt.Errorf("server: MaxBodyBytes must be non-negative (got %d)", o.MaxBodyBytes)
	}
	if o.RegistryMaxEntries < 0 {
		return fmt.Errorf("server: RegistryMaxEntries must be non-negative (got %d)", o.RegistryMaxEntries)
	}
	if o.MaxInflight < 0 {
		return fmt.Errorf("server: MaxInflight must be non-negative (got %d)", o.MaxInflight)
	}
	if o.JobRetention < 0 {
		return fmt.Errorf("server: JobRetention must be non-negative")
	}
	return nil
}

// residentSpanLimit caps the /metrics recorder's retained spans; the
// recorder lives as long as the daemon, so per-request spans must not
// accumulate without bound.
const residentSpanLimit = 512

// requestSpanLimit caps one request's response-embedded spans.
const requestSpanLimit = 64

// Server is the resident contract service. Construct with New, then
// ListenAndServe (or Serve on an existing listener) and Shutdown.
type Server struct {
	opts       Options
	engineOpts core.Options
	reg        *core.EngineRegistry
	rec        *telemetry.Recorder
	diags      *diag.Collector
	jobs       *jobStore
	mux        *http.ServeMux
	hs         *http.Server
	start      time.Time

	// store is the crash-safe bundle store, nil without BundleDir.
	store *bundle.Store

	// inflight counts currently executing work requests for the
	// MaxInflight admission cap.
	inflight atomic.Int64

	// bg tracks server-owned background goroutines (the job janitor);
	// Shutdown waits for them after cancelling baseCtx.
	bg sync.WaitGroup

	// baseCtx is cancelled when the server shuts down; learn jobs run
	// under it so drain can cut them off cooperatively.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu           sync.Mutex
	defaultEntry *core.RegistryEntry
	// defaultBundleID names the bundle behind the default entry, when
	// the default was activated from one ("" for SetDefaultContracts).
	defaultBundleID string
	listener        net.Listener
}

// New builds a server. engineOpts configures every resident engine
// (support, confidence, limits, user tokens, artifact cache, ...);
// per-request sinks in it are ignored — each request gets its own
// telemetry recorder and diagnostics. opts configures the daemon
// itself; zero fields select defaults.
func New(engineOpts core.Options, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	reg, err := core.NewEngineRegistry(engineOpts, opts.RegistryMaxEntries)
	if err != nil {
		return nil, err
	}
	rec := telemetry.NewRecorder()
	rec.SetSpanLimit(residentSpanLimit)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		engineOpts: engineOpts,
		reg:        reg,
		rec:        rec,
		diags:      diag.New(),
		jobs:       newJobStore(),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.routes()
	s.hs = &http.Server{
		Handler:      s.mux,
		ReadTimeout:  opts.ReadTimeout,
		WriteTimeout: opts.WriteTimeout,
	}
	if opts.BundleDir != "" {
		st, err := bundle.Open(opts.BundleDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		if err := s.recoverFromStore(); err != nil {
			cancel()
			return nil, err
		}
	}
	s.startJobJanitor()
	return s, nil
}

// Registry exposes the server's engine registry (primarily for tests
// and the bench harness).
func (s *Server) Registry() *core.EngineRegistry { return s.reg }

// SetDefaultContracts registers set as the server's default contract
// set — the one used by check and coverage requests that embed no set
// and name no fingerprint — compiling it immediately so the first
// request is already warm. It may be called again to hot-swap the
// default; in-flight requests finish against the set they resolved.
func (s *Server) SetDefaultContracts(ctx context.Context, set *contracts.Set) (string, error) {
	en, err := s.reg.Acquire(ctx, set)
	if err != nil {
		return "", err
	}
	s.swapDefault(en, "")
	return en.Fingerprint(), nil
}

// swapDefault atomically installs en as the default serving entry,
// pinning it against LRU eviction and unpinning the previous default.
// In-flight requests that already resolved the old entry finish on it.
func (s *Server) swapDefault(en *core.RegistryEntry, bundleID string) {
	s.reg.Pin(en)
	s.mu.Lock()
	old := s.defaultEntry
	s.defaultEntry = en
	s.defaultBundleID = bundleID
	s.mu.Unlock()
	if old != nil {
		s.reg.Unpin(old)
	}
}

// defaultContracts returns the current default entry, or nil.
func (s *Server) defaultContracts() *core.RegistryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defaultEntry
}

// Handler returns the server's HTTP handler, for in-process use (the
// bench harness drives it without a socket).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds the configured address and serves until
// Shutdown. Use Addr afterwards to learn the bound address (the
// configured one may end in ":0").
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve answers requests on l until Shutdown; like http.Server.Serve it
// returns http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	return s.hs.Serve(l)
}

// Addr returns the bound listen address, or the configured address
// before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return s.listener.Addr().String()
	}
	return s.opts.Addr
}

// Shutdown drains the server gracefully: the listener closes, in-flight
// requests run to completion, and learn jobs get until ctx's deadline
// to finish before being cancelled cooperatively. It returns once
// everything has stopped. Use a context carrying the drain timeout:
//
//	ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
//	defer cancel()
//	srv.Shutdown(ctx)
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	done := make(chan struct{})
	go func() {
		s.jobs.wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline passed: cancel running jobs; the engine's
		// cooperative cancellation stops them within one unit of work.
		s.baseCancel()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	s.baseCancel()
	s.bg.Wait()
	return err
}

// DrainTimeout returns the configured drain budget, for callers wiring
// Shutdown to a signal handler.
func (s *Server) DrainTimeout() time.Duration { return s.opts.DrainTimeout }

// routes installs the endpoint handlers. Work endpoints (heavy=true)
// count against the MaxInflight admission cap; cheap introspection
// endpoints stay reachable even when the server sheds load.
func (s *Server) routes() {
	s.handle("POST /v1/check", true, s.handleCheck)
	s.handle("GET /v1/coverage", true, s.handleCoverage)
	s.handle("POST /v1/coverage", true, s.handleCoverage)
	s.handle("POST /v1/learn", true, s.handleLearn)
	s.handle("GET /v1/jobs/{id}", false, s.handleJob)
	s.handle("POST /v1/bundles", true, s.handleBundlePush)
	s.handle("GET /v1/bundles", false, s.handleBundleList)
	s.handle("GET /healthz", false, s.handleHealthz)
	s.handle("GET /metrics", false, s.handleMetrics)
}

// statusWriter tracks whether a handler already wrote headers, so the
// panic-containment wrapper never writes a second status line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// handle wraps a handler with the per-request envelope: bounded
// admission for heavy (work) endpoints, body size cap, request counting
// and latency accounting on the resident recorder, the server
// faultinject site, and panic containment — a panicking request is
// recorded as a diagnostic and answered with 500, and the daemon keeps
// serving.
func (s *Server) handle(pattern string, heavy bool, fn http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.rec.Add("server.requests", 1)
		defer func() {
			if rec := recover(); rec != nil {
				s.rec.Add("server.panics", 1)
				d := diag.FromPanic("server", r.URL.Path, rec)
				s.diags.Add(d)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("request panicked: %v", rec))
				}
			}
			s.rec.Add("server.request_ns", time.Since(start).Nanoseconds())
			if sw.status >= 400 {
				s.rec.Add("server.errors", 1)
			}
		}()
		if heavy && s.opts.MaxInflight > 0 {
			if n := s.inflight.Add(1); n > int64(s.opts.MaxInflight) {
				s.inflight.Add(-1)
				s.rec.Add("server.requests_shed", 1)
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests,
					fmt.Errorf("server at capacity (%d requests in flight); retry later", s.opts.MaxInflight))
				return
			}
			defer s.inflight.Add(-1)
		}
		if s.opts.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.opts.MaxBodyBytes)
		}
		faultinject.At("server.request", r.URL.Path)
		fn(sw, r)
	})
}

// requestContext derives the per-request pipeline context: the client
// disconnecting cancels it, and the configured RequestTimeout bounds
// it.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// writeError answers with a JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// statusFor maps a pipeline error to an HTTP status: bad inputs are the
// client's fault, deadlines are 504, everything else 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNoSources), errors.Is(err, core.ErrUnknownFingerprint):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style
		// accounting still shows up in server.errors.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleHealthz reports liveness, uptime, and registry/job statistics.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status   string             `json:"status"`
		UptimeMS float64            `json:"uptime_ms"`
		Registry core.RegistryStats `json:"registry"`
		Jobs     jobStats           `json:"jobs"`
	}
	writeJSON(w, http.StatusOK, health{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Registry: s.reg.Stats(),
		Jobs:     s.jobs.stats(),
	})
}

// handleMetrics serializes the resident telemetry recorder: server
// counters (requests, errors, panics, request wall time) plus whatever
// the most recent requests' engine stages recorded into it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.rec.WriteJSON(w)
}
