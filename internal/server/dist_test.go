package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"

	"concord/internal/contracts"
	"concord/internal/core"
)

// TestMain doubles as the shard-worker trampoline: when a batch runs
// with shard_backend "process", the pool re-launches this test binary
// with CONCORD_SHARD_WORKER=1 and it must serve shards, not tests.
func TestMain(m *testing.M) {
	if os.Getenv("CONCORD_SHARD_WORKER") == "1" {
		if err := core.RunShardWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestServeProcessBackendBatch posts one batch three ways — unsharded,
// in-process sharded, and process-backend sharded — and requires the
// identical result from each; an unknown backend is a client error.
func TestServeProcessBackendBatch(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	set := learnSet(t)
	test := fixtureSources(24)
	test[17].Text = []byte(strings.Replace(string(test[17].Text),
		"router-id 10.0.17.1", "router-id 10.0.2.1", 1))
	engineOpts := core.DefaultOptions()
	engineOpts.ShardWorkerCommand = []string{exe}
	srv, base := startServer(t, engineOpts, Options{})
	if _, err := srv.SetDefaultContracts(context.Background(), set); err != nil {
		t.Fatal(err)
	}

	type result struct {
		V []contracts.Violation
		C core.CoverageSummary
		S core.ProcessStats
	}
	run := func(req CheckRequest) []byte {
		t.Helper()
		status, body := postJSON(t, base+"/v1/check", req)
		if status != http.StatusOK {
			t.Fatalf("POST /v1/check (%+v) = %d: %s", req.ShardBackend, status, body)
		}
		var resp CheckResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(result{resp.Violations, resp.Coverage, resp.Stats})
		return b
	}
	want := run(CheckRequest{Configs: toJSONSources(test)})
	if !strings.Contains(string(want), "duplicates") {
		t.Fatal("baseline missed the planted cross-config duplicate")
	}
	for _, req := range []CheckRequest{
		{Configs: toJSONSources(test), ShardBackend: core.ShardBackendProcess},
		{Configs: toJSONSources(test), Shards: 5, ShardWorkers: 2, ShardBackend: core.ShardBackendProcess},
	} {
		if got := run(req); !bytes.Equal(got, want) {
			t.Errorf("process backend (shards=%d) diverges:\n got %s\nwant %s", req.Shards, got, want)
		}
	}

	status, body := postJSON(t, base+"/v1/check", CheckRequest{
		Configs: toJSONSources(test), ShardBackend: "threads",
	})
	if status != http.StatusBadRequest {
		t.Errorf("POST /v1/check with unknown backend = %d (%s), want 400", status, body)
	}
}
