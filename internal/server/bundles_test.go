package server

// Bundle, hot-reload, recovery, and admission tests: the server half of
// the crash-safe bundle design. Chaos cases simulate daemon death by
// tearing on-disk state directly (the store's own tests cover the
// write-path crash windows; here the concern is that a *restarted
// server* recovers serving state and jobs from whatever disk holds).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"concord/internal/bundle"
	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/faultinject"
)

// pushBundle POSTs /v1/bundles and decodes the success response.
func pushBundle(t *testing.T, base string, req BundleRequest) BundleResponse {
	t.Helper()
	status, body := postJSON(t, base+"/v1/bundles", req)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/bundles = %d: %s", status, body)
	}
	var resp BundleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// defaultCheckViolations runs a default-set check and returns the
// violations as canonical JSON.
func defaultCheckViolations(t *testing.T, base string, test []core.Source) []byte {
	t.Helper()
	status, body := postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(test)})
	if status != http.StatusOK {
		t.Fatalf("default-set check = %d: %s", status, body)
	}
	var cr CheckResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	out, _ := json.Marshal(cr.Violations)
	return out
}

// TestServeBundlePushActivate: a pushed bundle (base + suppressions)
// persists, activates as the default serving set, advances the
// last-known-good pointer, and serves exactly the effective
// (suppression-filtered) set.
func TestServeBundlePushActivate(t *testing.T) {
	set := learnSet(t)
	if set.Len() < 2 {
		t.Fatalf("learned set too small: %d", set.Len())
	}
	test := fixtureSources(3)
	suppressed := set.Contracts[0].ID()
	eff := bundle.New("x", "", bundle.RoleServe, set, nil, []string{suppressed}).Effective()
	want, err := core.MustNew(core.DefaultOptions()).Check(eff, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Violations)

	dir := t.TempDir()
	srv, base := startServer(t, core.DefaultOptions(), Options{BundleDir: dir})
	setJSON, _ := json.Marshal(set)
	resp := pushBundle(t, base, BundleRequest{
		Name: "edge", Revision: "v1", Contracts: setJSON, Suppressions: []string{suppressed},
	})
	if resp.ID == "" || !resp.Activated {
		t.Fatalf("push response = %+v, want persisted + activated", resp)
	}
	if resp.Contracts != eff.Len() || resp.Suppressed != 1 {
		t.Errorf("push counts = %d/%d, want %d effective, 1 suppressed", resp.Contracts, resp.Suppressed, eff.Len())
	}
	if got := defaultCheckViolations(t, base, test); !bytes.Equal(got, wantJSON) {
		t.Errorf("served violations diverge from effective-set one-shot:\n got %s\nwant %s", got, wantJSON)
	}

	// The store holds the bundle and the LKG pointer names it.
	if lkg, err := srv.Store().LastKnownGood(); err != nil || lkg != resp.ID {
		t.Errorf("LKG = %q, %v; want %q", lkg, err, resp.ID)
	}
	status, body := getJSON(t, base+"/v1/bundles")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/bundles = %d: %s", status, body)
	}
	var list BundlesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.ActiveID != resp.ID || list.LastKnownGood != resp.ID || len(list.Bundles) != 1 {
		t.Errorf("bundle list = %+v, want active/LKG %s with 1 bundle", list, resp.ID)
	}
}

// TestServeBundleRollback: a bad push — unparseable contracts, or a
// persist fault injected mid-write — must leave the previous serving
// set untouched, keep the last-known-good pointer on the old bundle,
// and commit nothing new to the store.
func TestServeBundleRollback(t *testing.T) {
	defer faultinject.Reset()
	set := learnSet(t)
	test := fixtureSources(3)
	dir := t.TempDir()
	srv, base := startServer(t, core.DefaultOptions(), Options{BundleDir: dir})
	setJSON, _ := json.Marshal(set)
	good := pushBundle(t, base, BundleRequest{Name: "good", Contracts: setJSON})
	ref := defaultCheckViolations(t, base, test)

	// Unparseable contracts: client error, nothing changes.
	resp, err := http.Post(base+"/v1/bundles", "application/json",
		strings.NewReader(`{"name":"bad","contracts":{"corrupt":`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := readAll(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable push = %d, want 400: %s", resp.StatusCode, data)
	}

	// Persist fault mid-write: the server contains it (500), the old
	// set keeps serving, and no new bundle committed.
	faultinject.Set("bundle.store.write", faultinject.PanicOn("disk died", "manifest"))
	status, body := postJSON(t, base+"/v1/bundles", BundleRequest{Name: "torn", Contracts: setJSON})
	if status != http.StatusInternalServerError {
		t.Fatalf("torn push = %d, want 500: %s", status, body)
	}
	faultinject.Reset()

	if got := defaultCheckViolations(t, base, test); !bytes.Equal(got, ref) {
		t.Errorf("serving set changed across failed pushes")
	}
	if id, _ := srv.ActiveBundle(); id != good.ID {
		t.Errorf("active bundle = %s, want %s", id, good.ID)
	}
	if lkg, err := srv.Store().LastKnownGood(); err != nil || lkg != good.ID {
		t.Errorf("LKG = %q, %v; want %q", lkg, err, good.ID)
	}
	bundles, _, err := srv.Store().Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].Manifest.ID != good.ID {
		t.Errorf("store holds %d bundles after failed pushes, want only %s", len(bundles), good.ID)
	}
}

// TestServeReloadUnderLoad: concurrent default-set checks run while
// Reload hot-swaps a newer bundle in; no request may fail, and after
// the swap the server serves the new bundle.
func TestServeReloadUnderLoad(t *testing.T) {
	set := learnSet(t)
	if set.Len() < 2 {
		t.Fatalf("learned set too small: %d", set.Len())
	}
	smaller := bundle.New("v2", "", bundle.RoleServe,
		set, nil, []string{set.Contracts[0].ID()})
	test := fixtureSources(2)
	dir := t.TempDir()
	srv, base := startServer(t, core.DefaultOptions(), Options{BundleDir: dir})
	setJSON, _ := json.Marshal(set)
	first := pushBundle(t, base, BundleRequest{Name: "v1", Contracts: setJSON})

	// Stage the newer bundle directly in the store — the SIGHUP path's
	// on-disk handoff (e.g. `concord bundle pack`).
	if _, err := srv.Store().Write(smaller); err != nil {
		t.Fatal(err)
	}

	const hammers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	failures := make(chan string, 256)
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(CheckRequest{Configs: toJSONSources(test)})
				resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
				if err != nil {
					failures <- err.Error()
					continue
				}
				data, _ := readAll(resp)
				if resp.StatusCode != http.StatusOK {
					failures <- resp.Status + ": " + string(data)
				}
			}
		}(h)
	}
	time.Sleep(20 * time.Millisecond) // let the hammers get going
	fp, err := srv.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // swap under continued load
	close(stop)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatalf("request failed during reload: %s", f)
	}

	id, activeFP := srv.ActiveBundle()
	if id == first.ID || activeFP != fp {
		t.Errorf("active after reload = %s/%s, want the newer bundle (fp %s)", id, activeFP, fp)
	}
	// Reload with nothing newer is a no-op.
	fp2, err := srv.Reload(context.Background())
	if err != nil || fp2 != fp {
		t.Errorf("idempotent reload = %s, %v; want %s", fp2, err, fp)
	}
	// The new effective set is what's served now.
	want, err := core.MustNew(core.DefaultOptions()).Check(smaller.Effective(), test, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Violations)
	if got := defaultCheckViolations(t, base, test); !bytes.Equal(got, wantJSON) {
		t.Errorf("post-reload serving set is not the new bundle's effective set")
	}
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestServeRestartRecovery is the end-to-end crash-recovery gate: a
// daemon with a bundle store and a completed learn job goes away; a new
// daemon over the same directory must come back serving the last-known-
// good bundle, with the job still queryable and its learned set
// re-registered under the same fingerprint.
func TestServeRestartRecovery(t *testing.T) {
	set := learnSet(t)
	test := fixtureSources(3)
	dir := t.TempDir()

	srv1, base1 := startServer(t, core.DefaultOptions(), Options{BundleDir: dir})
	setJSON, _ := json.Marshal(set)
	pushed := pushBundle(t, base1, BundleRequest{Name: "prod", Contracts: setJSON})
	ref := defaultCheckViolations(t, base1, test)

	// Run a learn job to completion so its bundle + journal persist.
	status, body := postJSON(t, base1+"/v1/learn", LearnRequest{Configs: toJSONSources(fixtureSources(20))})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/learn = %d: %s", status, body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, base1, accepted.ID, 30*time.Second)
	if done.State != JobDone || done.Result == nil || done.Result.BundleID == "" {
		t.Fatalf("job = %+v, want done with a persisted bundle", done)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh daemon over the same directory.
	srv2, base2 := startServer(t, core.DefaultOptions(), Options{BundleDir: dir})
	if id, _ := srv2.ActiveBundle(); id != pushed.ID {
		t.Fatalf("recovered active bundle = %s, want LKG %s", id, pushed.ID)
	}
	if got := defaultCheckViolations(t, base2, test); !bytes.Equal(got, ref) {
		t.Errorf("recovered serving set diverges from pre-restart output")
	}
	// The job survived with its result, marked recovered.
	status, body = getJSON(t, base2+"/v1/jobs/"+accepted.ID)
	if status != http.StatusOK {
		t.Fatalf("recovered job = %d: %s", status, body)
	}
	var rec JobStatus
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != JobDone || rec.Result == nil || !rec.Result.Recovered {
		t.Fatalf("recovered job = %+v, want done + recovered", rec)
	}
	if rec.Result.Fingerprint != done.Result.Fingerprint {
		t.Errorf("recovered fingerprint %s != original %s", rec.Result.Fingerprint, done.Result.Fingerprint)
	}
	// The learned set is resident again: fingerprint checks just work.
	status, body = postJSON(t, base2+"/v1/check", CheckRequest{
		Fingerprint: rec.Result.Fingerprint, Configs: toJSONSources(test),
	})
	if status != http.StatusOK {
		t.Errorf("check by recovered fingerprint = %d: %s", status, body)
	}
	// New jobs never reuse a recovered job's ID.
	status, body = postJSON(t, base2+"/v1/learn", LearnRequest{Configs: toJSONSources(fixtureSources(20))})
	if status != http.StatusAccepted {
		t.Fatalf("new learn after restart = %d: %s", status, body)
	}
	var fresh JobStatus
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ID == accepted.ID {
		t.Errorf("new job reused recovered job ID %s", fresh.ID)
	}
	pollJob(t, base2, fresh.ID, 30*time.Second)
}

// TestServeRestartResumesRunningJob plants a journal exactly as a
// daemon killed mid-learn leaves it: a running record with the request
// persisted. The next daemon must resume and finish the job.
func TestServeRestartResumesRunningJob(t *testing.T) {
	dir := t.TempDir()
	st, err := bundle.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(LearnRequest{Configs: toJSONSources(fixtureSources(20))})
	if err := st.Jobs().Put(bundle.JobRecord{
		ID: "learn-7", State: bundle.JobRunning,
		CreatedUnix: time.Now().Unix(), UpdatedUnix: time.Now().Unix(),
		Request: raw,
	}); err != nil {
		t.Fatal(err)
	}
	// A corrupt journal entry rides along: it must surface as a failed
	// job, not be dropped or crash recovery.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "learn-3.ccb"), []byte("torn gar"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, base := startServer(t, core.DefaultOptions(), Options{BundleDir: dir})
	done := pollJob(t, base, "learn-7", 30*time.Second)
	if done.State != JobDone || done.Result == nil || done.Result.Fingerprint == "" {
		t.Fatalf("resumed job = %+v, want done with fingerprint", done)
	}
	if n := srv.rec.Counter("server.jobs_resumed"); n != 1 {
		t.Errorf("server.jobs_resumed = %d, want 1", n)
	}

	status, body := getJSON(t, base+"/v1/jobs/learn-3")
	if status != http.StatusOK {
		t.Fatalf("corrupt-journal job = %d: %s", status, body)
	}
	var failed JobStatus
	if err := json.Unmarshal(body, &failed); err != nil {
		t.Fatal(err)
	}
	if failed.State != JobFailed || !strings.Contains(failed.Error, "corrupt") {
		t.Errorf("corrupt-journal job = %+v, want failed with corrupt reason", failed)
	}
	if n := srv.rec.Counter("server.jobs_failed_on_recovery"); n != 1 {
		t.Errorf("server.jobs_failed_on_recovery = %d, want 1", n)
	}
	// New IDs advance past the resumed job.
	status, body = postJSON(t, base+"/v1/learn", LearnRequest{Configs: toJSONSources(fixtureSources(20))})
	if status != http.StatusAccepted {
		t.Fatalf("learn after resume = %d: %s", status, body)
	}
	var fresh JobStatus
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "learn-8" {
		t.Errorf("next job ID = %s, want learn-8 (sequence resumed past learn-7)", fresh.ID)
	}
	pollJob(t, base, fresh.ID, 30*time.Second)
}

// pollJob polls GET /v1/jobs/{id} until the job leaves JobRunning.
func pollJob(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		status, body := getJSON(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d: %s", id, status, body)
		}
		var js JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		if js.State != JobRunning {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeMaxInflightSheds: with the cap at 1 and one request parked
// inside the pipeline, the next heavy request is shed with 429 +
// Retry-After while light endpoints stay reachable; after the parked
// request finishes, heavy requests flow again.
func TestServeMaxInflightSheds(t *testing.T) {
	defer faultinject.Reset()
	set := learnSet(t)
	srv, base := startServer(t, core.DefaultOptions(), Options{MaxInflight: 1})
	if _, err := srv.SetDefaultContracts(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.Set("server.request", func(key string) {
		if key == "/v1/check" {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
	})

	firstDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(CheckRequest{Configs: toJSONSources(fixtureSources(1))})
		resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		readAll(resp)
		firstDone <- resp.StatusCode
	}()
	<-entered

	// At capacity: the next heavy request is shed.
	body, _ := json.Marshal(CheckRequest{Configs: toJSONSources(fixtureSources(1))})
	resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := readAll(resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request at capacity = %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
	// Light endpoints are never shed.
	if status, _ := getJSON(t, base+"/healthz"); status != http.StatusOK {
		t.Errorf("healthz at capacity = %d, want 200", status)
	}

	close(release)
	if st := <-firstDone; st != http.StatusOK {
		t.Fatalf("parked request = %d, want 200", st)
	}
	faultinject.Reset()
	status, _ := postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusOK {
		t.Errorf("request after capacity released = %d, want 200", status)
	}
	if n := srv.rec.Counter("server.requests_shed"); n != 1 {
		t.Errorf("server.requests_shed = %d, want 1", n)
	}
}

// TestServeJobResultPinnedUntilExpiry is the eviction-loss fix: a
// finished learn job's set must survive LRU pressure for as long as the
// job is queryable, then expire with the job record and become
// evictable again.
func TestServeJobResultPinnedUntilExpiry(t *testing.T) {
	set := learnSet(t)
	if set.Len() < 2 {
		t.Fatalf("learned set too small: %d", set.Len())
	}
	// A strictly smaller set competes with the job's learned set (the
	// full set) for the single registry slot.
	pressureJSON, _ := json.Marshal(&contracts.Set{Contracts: set.Contracts[:set.Len()-1]})
	srv, base := startServer(t, core.DefaultOptions(), Options{
		RegistryMaxEntries: 1,
		JobRetention:       300 * time.Millisecond,
	})

	status, body := postJSON(t, base+"/v1/learn", LearnRequest{Configs: toJSONSources(fixtureSources(20))})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/learn = %d: %s", status, body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, base, accepted.ID, 30*time.Second)
	if done.State != JobDone {
		t.Fatalf("job = %+v", done)
	}
	fp := done.Result.Fingerprint

	// LRU pressure: the embedded smaller set competes for the single
	// registry slot. The job's pinned set must survive.
	status, _ = postJSON(t, base+"/v1/check", CheckRequest{Contracts: pressureJSON, Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusOK {
		t.Fatalf("pressure check = %d", status)
	}
	status, body = postJSON(t, base+"/v1/check", CheckRequest{Fingerprint: fp, Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusOK {
		t.Fatalf("job-fingerprint check under pressure = %d, want 200 (pinned): %s", status, body)
	}

	// Expiry: the janitor removes the job and unpins the set.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if status, _ = getJSON(t, base+"/v1/jobs/"+accepted.ID); status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := srv.rec.Counter("server.jobs_expired"); n < 1 {
		t.Errorf("server.jobs_expired = %d, want >= 1", n)
	}
	// Fresh pressure can now evict the unpinned set.
	status, _ = postJSON(t, base+"/v1/check", CheckRequest{Contracts: pressureJSON, Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusOK {
		t.Fatalf("post-expiry pressure check = %d", status)
	}
	status, body = postJSON(t, base+"/v1/check", CheckRequest{Fingerprint: fp, Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusBadRequest {
		t.Errorf("expired-job fingerprint = %d, want 400 (evictable after unpin): %s", status, body)
	}
}
