package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/faultinject"
)

// fixtureSources builds the chaos-style homogeneous corpus used across
// the engine test suites.
func fixtureSources(n int) []core.Source {
	var out []core.Source
	for i := 0; i < n; i++ {
		text := fmt.Sprintf(
			"hostname r%02d\n"+
				"interface Loopback0\n"+
				"   ip address 10.0.%d.1\n"+
				"router bgp 65000\n"+
				"   router-id 10.0.%d.1\n"+
				"   vlan %d\n",
			i, i, i, 100+10*i)
		out = append(out, core.Source{Name: fmt.Sprintf("r%02d.cfg", i), Text: []byte(text)})
	}
	return out
}

func toJSONSources(srcs []core.Source) []SourceJSON {
	out := make([]SourceJSON, len(srcs))
	for i, s := range srcs {
		out[i] = SourceJSON{Name: s.Name, Text: string(s.Text)}
	}
	return out
}

// learnSet mines a contract set from the fixture corpus.
func learnSet(t *testing.T) *contracts.Set {
	t.Helper()
	lr, err := core.MustNew(core.DefaultOptions()).Learn(fixtureSources(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	return lr.Set
}

// startServer boots a daemon on a loopback port and registers a
// cleanup that drains it and checks for goroutine leaks.
func startServer(t *testing.T, engineOpts core.Options, opts Options) (*Server, string) {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	srv, err := New(engineOpts, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// Wait for the listener to bind (Addr flips from the :0 template).
	deadline := time.Now().Add(2 * time.Second)
	for srv.Addr() == opts.Addr {
		if time.Now().After(deadline) {
			t.Fatal("server never bound its listener")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		// Generous deadline: http.Server.Shutdown treats a connection
		// the transport dialed but never used (StateNew) as idle only
		// after a 5-second grace.
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		// before+1: the ListenAndServe goroutine itself is gone after
		// errc delivers, but allow the runtime a moment to reap.
		leakDeadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(leakDeadline) {
				t.Errorf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
	return srv, "http://" + srv.Addr()
}

// postJSON POSTs a JSON body and returns status plus response bytes.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestServeSmoke is the end-to-end round trip: start a daemon with a
// default contract set, check one config over HTTP, compare against a
// one-shot engine run, hit the health and metrics endpoints, and shut
// down cleanly (the startServer cleanup asserts drain + no leaks).
func TestServeSmoke(t *testing.T) {
	set := learnSet(t)
	test := fixtureSources(3)
	want, err := core.MustNew(core.DefaultOptions()).Check(set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, core.DefaultOptions(), Options{})
	fp, err := srv.SetDefaultContracts(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}

	status, body := postJSON(t, base+"/v1/check", CheckRequest{
		Configs:   toJSONSources(test),
		Telemetry: true,
	})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/check = %d: %s", status, body)
	}
	var got CheckResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != fp {
		t.Errorf("fingerprint = %s, want %s", got.Fingerprint, fp)
	}
	gotJSON, _ := json.Marshal(struct {
		V []contracts.Violation
		C core.CoverageSummary
		S core.ProcessStats
	}{got.Violations, got.Coverage, got.Stats})
	wantJSON, _ := json.Marshal(struct {
		V []contracts.Violation
		C core.CoverageSummary
		S core.ProcessStats
	}{want.Violations, want.Coverage, want.Stats})
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("served check diverges from one-shot:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if got.Telemetry == nil || len(got.Telemetry.Spans) == 0 {
		t.Error("response carries no request-scoped telemetry spans")
	}

	// Coverage over the same corpus.
	status, body = postJSON(t, base+"/v1/coverage", CheckRequest{Configs: toJSONSources(test)})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/coverage = %d: %s", status, body)
	}
	var cov CoverageResponse
	if err := json.Unmarshal(body, &cov); err != nil {
		t.Fatal(err)
	}
	if len(cov.Lines) == 0 {
		t.Error("coverage response carries no lines")
	}

	// Health and metrics.
	status, body = getJSON(t, base+"/healthz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"status": "ok"`)) && !bytes.Contains(body, []byte(`"status":"ok"`)) {
		t.Errorf("GET /healthz = %d: %s", status, body)
	}
	status, body = getJSON(t, base+"/metrics")
	if status != http.StatusOK || !bytes.Contains(body, []byte("server.requests")) {
		t.Errorf("GET /metrics = %d: %s", status, body)
	}
}

// TestServeConcurrentBurstCompilesOnce is the tentpole acceptance gate
// over real HTTP: 64 concurrent clients post the same embedded contract
// set against a fresh daemon; every response must be correct and the
// registry must have compiled exactly once. Run under -race by the
// serve-smoke CI target.
func TestServeConcurrentBurstCompilesOnce(t *testing.T) {
	set := learnSet(t)
	test := fixtureSources(2)
	want, err := core.MustNew(core.DefaultOptions()).Check(set, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Violations)

	srv, base := startServer(t, core.DefaultOptions(), Options{})
	setJSON, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 64
	var wg sync.WaitGroup
	failures := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(CheckRequest{Contracts: setJSON, Configs: toJSONSources(test)})
			resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
			if err != nil {
				failures[i] = err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				failures[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				failures[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var cr CheckResponse
			if err := json.Unmarshal(data, &cr); err != nil {
				failures[i] = err
				return
			}
			gotJSON, _ := json.Marshal(cr.Violations)
			if !bytes.Equal(gotJSON, wantJSON) {
				failures[i] = fmt.Errorf("violations diverge: %s != %s", gotJSON, wantJSON)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range failures {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if c := srv.Registry().Stats().Compiles; c != 1 {
		t.Errorf("compile count = %d after %d-client burst, want 1", c, clients)
	}
}

// TestServeFingerprintReference: a set registered by one request is
// addressable by fingerprint in the next, and an unknown or malformed
// fingerprint is the client's fault (400).
func TestServeFingerprintReference(t *testing.T) {
	set := learnSet(t)
	test := fixtureSources(2)
	_, base := startServer(t, core.DefaultOptions(), Options{})
	setJSON, _ := json.Marshal(set)

	status, body := postJSON(t, base+"/v1/check", CheckRequest{Contracts: setJSON, Configs: toJSONSources(test)})
	if status != http.StatusOK {
		t.Fatalf("embedded-set check = %d: %s", status, body)
	}
	var first CheckResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	status, body = postJSON(t, base+"/v1/check", CheckRequest{Fingerprint: first.Fingerprint, Configs: toJSONSources(test)})
	if status != http.StatusOK {
		t.Fatalf("fingerprint check = %d: %s", status, body)
	}
	var second CheckResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprints diverge: %s != %s", second.Fingerprint, first.Fingerprint)
	}

	status, body = postJSON(t, base+"/v1/check", CheckRequest{
		Fingerprint: strings.Repeat("ab", 32),
		Configs:     toJSONSources(test),
	})
	if status != http.StatusBadRequest {
		t.Errorf("unknown fingerprint = %d, want 400: %s", status, body)
	}
}

// TestServeBadRequests: empty corpora, missing contract sets, and
// malformed bodies are 400s, not 500s.
func TestServeBadRequests(t *testing.T) {
	set := learnSet(t)
	_, base := startServer(t, core.DefaultOptions(), Options{})
	setJSON, _ := json.Marshal(set)

	// No configs → ErrNoSources → 400.
	status, body := postJSON(t, base+"/v1/check", CheckRequest{Contracts: setJSON})
	if status != http.StatusBadRequest {
		t.Errorf("empty configs = %d, want 400: %s", status, body)
	}
	// No set anywhere → 400.
	status, body = postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusBadRequest {
		t.Errorf("no contract set = %d, want 400: %s", status, body)
	}
	// Malformed JSON → 400.
	resp, err := http.Post(base+"/v1/check", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	// Empty learn corpus → 400.
	status, body = postJSON(t, base+"/v1/learn", LearnRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty learn = %d, want 400: %s", status, body)
	}
	// Unknown job → 404.
	status, _ = getJSON(t, base+"/v1/jobs/learn-999")
	if status != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", status)
	}
}

// TestServeBodyLimit: a body over MaxBodyBytes is rejected with 413 and
// the daemon keeps serving.
func TestServeBodyLimit(t *testing.T) {
	set := learnSet(t)
	srv, base := startServer(t, core.DefaultOptions(), Options{MaxBodyBytes: 1024})
	if _, err := srv.SetDefaultContracts(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	big := CheckRequest{Configs: []SourceJSON{{Name: "big.cfg", Text: strings.Repeat("x", 4096)}}}
	status, body := postJSON(t, base+"/v1/check", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413: %s", status, body)
	}
	status, _ = postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusOK {
		t.Errorf("small request after oversized one = %d, want 200", status)
	}
}

// TestServeLearnJob drives the async learn flow end to end: 202 with a
// job ID, poll to completion, then check against the learned set by
// fingerprint — it must match a one-shot Learn+Check exactly.
func TestServeLearnJob(t *testing.T) {
	train := fixtureSources(20)
	test := fixtureSources(3)
	lr, err := core.MustNew(core.DefaultOptions()).Learn(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MustNew(core.DefaultOptions()).Check(lr.Set, test, nil)
	if err != nil {
		t.Fatal(err)
	}

	_, base := startServer(t, core.DefaultOptions(), Options{})
	status, body := postJSON(t, base+"/v1/learn", LearnRequest{Configs: toJSONSources(train)})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/learn = %d: %s", status, body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || accepted.State != JobRunning {
		t.Fatalf("accepted job = %+v", accepted)
	}

	var done JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body = getJSON(t, base+"/v1/jobs/"+accepted.ID)
		if status != http.StatusOK {
			t.Fatalf("GET job = %d: %s", status, body)
		}
		if err := json.Unmarshal(body, &done); err != nil {
			t.Fatal(err)
		}
		if done.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("learn job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.State != JobDone || done.Result == nil {
		t.Fatalf("job = %+v, want done with result", done)
	}
	if done.Result.Contracts != lr.Set.Len() {
		t.Errorf("learned contracts = %d, want %d", done.Result.Contracts, lr.Set.Len())
	}

	status, body = postJSON(t, base+"/v1/check", CheckRequest{
		Fingerprint: done.Result.Fingerprint,
		Configs:     toJSONSources(test),
	})
	if status != http.StatusOK {
		t.Fatalf("check by learned fingerprint = %d: %s", status, body)
	}
	var got CheckResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got.Violations)
	wantJSON, _ := json.Marshal(want.Violations)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("learned-set check diverges: %s != %s", gotJSON, wantJSON)
	}
}

// TestChaosServeRequestPanicContained injects a panic at the server's
// request faultinject site: the poisoned request gets a 500 with a JSON
// error, the daemon answers the next request normally, and the panic is
// visible in /metrics.
func TestChaosServeRequestPanicContained(t *testing.T) {
	defer faultinject.Reset()
	set := learnSet(t)
	srv, base := startServer(t, core.DefaultOptions(), Options{})
	if _, err := srv.SetDefaultContracts(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	faultinject.Set("server.request", faultinject.PanicOn(errors.New("injected request fault"), "/v1/check"))

	status, body := postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusInternalServerError {
		t.Fatalf("poisoned request = %d, want 500: %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("500 body is not a JSON error: %s", body)
	}

	faultinject.Reset()
	status, _ = postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(fixtureSources(1))})
	if status != http.StatusOK {
		t.Errorf("request after contained panic = %d, want 200", status)
	}
	if n := srv.rec.Counter("server.panics"); n != 1 {
		t.Errorf("server.panics = %d, want 1", n)
	}
}

// TestServeRequestTimeout: a request that cannot finish inside the
// per-request deadline is answered 504, and the daemon stays healthy.
func TestServeRequestTimeout(t *testing.T) {
	set := learnSet(t)
	srv, base := startServer(t, core.DefaultOptions(), Options{RequestTimeout: time.Nanosecond})
	if _, err := srv.SetDefaultContracts(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(fixtureSources(4))})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline-exceeded request = %d, want 504: %s", status, body)
	}
	status, _ = getJSON(t, base+"/healthz")
	if status != http.StatusOK {
		t.Errorf("healthz after timeout = %d, want 200", status)
	}
}

// TestServerOptionsValidate mirrors the core Options contract: zero
// values select defaults, negatives are rejected.
func TestServerOptionsValidate(t *testing.T) {
	if err := (Options{}).withDefaults().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	def := DefaultOptions()
	if def.Addr == "" || def.RegistryMaxEntries != core.DefaultRegistryEntries {
		t.Errorf("suspicious defaults: %+v", def)
	}
	bad := []Options{
		{ReadTimeout: -1},
		{WriteTimeout: -1},
		{RequestTimeout: -1},
		{DrainTimeout: -1},
		{MaxBodyBytes: -1},
		{RegistryMaxEntries: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
		if _, err := New(core.DefaultOptions(), o); err == nil {
			t.Errorf("case %d: New accepted %+v", i, o)
		}
	}
}

// TestServeDrainWaitsForLearnJobs: shutdown with a generous deadline
// completes the in-flight learn job rather than killing it.
func TestServeDrainWaitsForLearnJobs(t *testing.T) {
	srv, base := startServer(t, core.DefaultOptions(), Options{})
	status, body := postJSON(t, base+"/v1/learn", LearnRequest{Configs: toJSONSources(fixtureSources(20))})
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/learn = %d: %s", status, body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	j, ok := srv.jobs.get(accepted.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if st := j.status(); st.State != JobDone {
		t.Errorf("job after drain = %+v, want done", st)
	}
}

// TestServeShardedCheckBatch posts one batch twice — unsharded and
// through the sharded driver — and requires identical violations,
// coverage, and stats; negative shard parameters are client errors.
func TestServeShardedCheckBatch(t *testing.T) {
	set := learnSet(t)
	test := fixtureSources(24)
	// Plant a cross-config duplicate far from its witness so the
	// sharded merge has real work.
	test[17].Text = []byte(strings.Replace(string(test[17].Text),
		"router-id 10.0.17.1", "router-id 10.0.2.1", 1))
	srv, base := startServer(t, core.DefaultOptions(), Options{})
	if _, err := srv.SetDefaultContracts(context.Background(), set); err != nil {
		t.Fatal(err)
	}

	status, body := postJSON(t, base+"/v1/check", CheckRequest{Configs: toJSONSources(test)})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/check = %d: %s", status, body)
	}
	var plain CheckResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}

	status, body = postJSON(t, base+"/v1/check", CheckRequest{
		Configs: toJSONSources(test), Shards: 5, ShardWorkers: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/check (sharded) = %d: %s", status, body)
	}
	var sharded CheckResponse
	if err := json.Unmarshal(body, &sharded); err != nil {
		t.Fatal(err)
	}
	type result struct {
		V []contracts.Violation
		C core.CoverageSummary
		S core.ProcessStats
	}
	gotJSON, _ := json.Marshal(result{sharded.Violations, sharded.Coverage, sharded.Stats})
	wantJSON, _ := json.Marshal(result{plain.Violations, plain.Coverage, plain.Stats})
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("sharded batch diverges from unsharded:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	dup := false
	for _, v := range sharded.Violations {
		if strings.Contains(v.Detail, "duplicates") {
			dup = true
		}
	}
	if !dup {
		t.Error("sharded batch missed the planted cross-config duplicate")
	}

	status, body = postJSON(t, base+"/v1/check", CheckRequest{
		Configs: toJSONSources(test), Shards: -1,
	})
	if status != http.StatusBadRequest {
		t.Errorf("POST /v1/check with negative shards = %d (%s), want 400", status, body)
	}
}
