package server

// Asynchronous learn jobs. Learning a contract set from a corpus takes
// orders of magnitude longer than checking against a compiled one, so
// POST /v1/learn does not hold the connection open: it enqueues a job,
// answers 202 with a job ID immediately, and the client polls
// GET /v1/jobs/{id}. A finished job's learned set is registered in the
// engine registry — and pinned there until the job record expires — so
// its fingerprint is immediately usable in /v1/check requests without
// resending the contracts, and cannot be silently LRU-evicted while the
// job is still queryable.
//
// With a bundle store configured, jobs are crash-safe: each state
// change is journaled to disk (the running record carries the original
// request), and a done job's learned set is persisted as a RoleJob
// bundle. A killed daemon recovers on restart: running jobs resume from
// their journaled request, done jobs re-register their sets from the
// persisted bundle, and undecodable journal entries are marked failed
// with a diagnostic instead of being forgotten.
//
// Jobs run under the server's base context: graceful drain waits for
// running jobs up to the drain deadline, then cancels them
// cooperatively through the engine's context plumbing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"concord/internal/bundle"
	"concord/internal/core"
	"concord/internal/diag"
	"concord/internal/minimize"
	"concord/internal/telemetry"
)

// Job states (the same strings the bundle journal persists).
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// LearnRequest is the body of POST /v1/learn.
type LearnRequest struct {
	// Configs is the training corpus.
	Configs []SourceJSON `json:"configs"`
	// Metadata optionally supplies metadata/outside-information files.
	Metadata []SourceJSON `json:"metadata,omitempty"`
	// Shards, when greater than one, runs the learn job through the
	// fleet-scale sharded mine driver: shards stream configurations one
	// at a time into per-shard accumulators that merge before mining,
	// bounding peak memory by worker count instead of corpus size. The
	// learned set is byte-identical at any shard count.
	Shards int `json:"shards,omitempty"`
	// ShardWorkers bounds concurrently running shards; 0 selects the
	// server engine's parallelism.
	ShardWorkers int `json:"shard_workers,omitempty"`
	// ShardBackend selects the shard execution backend, exactly as in
	// CheckRequest: "" or "inprocess" runs shards inside the server,
	// "process" dispatches them to shard-worker child processes.
	ShardBackend string `json:"shard_backend,omitempty"`
	// Telemetry requests the learn run's stage spans in the job result.
	Telemetry bool `json:"telemetry,omitempty"`
}

// LearnResult is the payload of a finished learn job.
type LearnResult struct {
	// Fingerprint is the learned set's registry fingerprint; the set is
	// resident and ready for fingerprint-referencing check requests.
	Fingerprint string `json:"fingerprint"`
	// Contracts counts the learned contracts.
	Contracts int `json:"contracts"`
	// BundleID names the persisted RoleJob bundle holding the learned
	// set, when the server runs with a bundle store.
	BundleID string `json:"bundle_id,omitempty"`
	// Stats summarizes the processed corpus.
	Stats core.ProcessStats `json:"stats"`
	// Minimization reports the contract reduction.
	Minimization minimize.Result `json:"minimization"`
	// Diagnostics lists contained faults from the learn run.
	Diagnostics []diag.Diagnostic `json:"diagnostics,omitempty"`
	// Telemetry is the job-scoped recorder snapshot, when requested.
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	// DurationMS is the learn run's wall time.
	DurationMS float64 `json:"duration_ms"`
	// Recovered marks a result reconstructed from a persisted bundle
	// after a daemon restart (Stats/Minimization/DurationMS are not
	// recoverable and are zero).
	Recovered bool `json:"recovered,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id} (and the 202 from
// POST /v1/learn, with only ID and State set).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Result carries a done job's payload.
	Result *LearnResult `json:"result,omitempty"`
}

// job is one tracked learn job.
type job struct {
	id string

	mu       sync.Mutex
	state    string
	err      error
	result   *LearnResult
	created  time.Time
	finished time.Time
	// entry is the learned set's registry entry, pinned against LRU
	// eviction until the job record expires.
	entry *core.RegistryEntry
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Result: j.result}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *job) finish(res *LearnResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state, j.err = JobFailed, err
		return
	}
	j.state, j.result = JobDone, res
}

// setEntry records the pinned registry entry behind a done job.
func (j *job) setEntry(en *core.RegistryEntry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entry = en
}

// takeEntry removes and returns the pinned entry (nil if none), so the
// expiry sweep unpins exactly once.
func (j *job) takeEntry() *core.RegistryEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	en := j.entry
	j.entry = nil
	return en
}

// jobStats summarizes the store for /healthz.
type jobStats struct {
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// jobStore tracks learn jobs by ID. Finished jobs stay queryable until
// the retention sweep expires them (job payloads are small: a
// fingerprint and summary counts, not the contract set itself).
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
	wg   sync.WaitGroup
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

// create registers a new running job.
func (s *jobStore) create() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{id: fmt.Sprintf("learn-%d", s.seq), state: JobRunning, created: time.Now()}
	s.jobs[j.id] = j
	s.wg.Add(1)
	return j
}

// adopt re-registers a job recovered from the journal under its
// original ID, advancing the ID sequence past it so new jobs never
// collide with recovered ones. A job adopted as running counts against
// the drain WaitGroup exactly like a fresh one.
func (s *jobStore) adopt(id, state string, created, finished time.Time) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := jobSeq(id); n > s.seq {
		s.seq = n
	}
	j := &job{id: id, state: state, created: created, finished: finished}
	s.jobs[id] = j
	if state == JobRunning {
		s.wg.Add(1)
	}
	return j
}

// jobSeq extracts N from a "learn-N" job ID (0 for foreign IDs).
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "learn-%d", &n); err == nil {
		return n
	}
	return 0
}

// get returns a job by ID.
func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// wait blocks until every running job has finished.
func (s *jobStore) wait() { s.wg.Wait() }

// expire removes finished jobs older than retention and returns them so
// the caller can unpin their registry entries and drop their journal
// records. Running jobs never expire.
func (s *jobStore) expire(now time.Time, retention time.Duration) []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*job
	for id, j := range s.jobs {
		j.mu.Lock()
		terminal := j.state != JobRunning
		fin := j.finished
		j.mu.Unlock()
		if terminal && !fin.IsZero() && now.Sub(fin) >= retention {
			delete(s.jobs, id)
			out = append(out, j)
		}
	}
	return out
}

func (s *jobStore) stats() jobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st jobStats
	for _, j := range s.jobs {
		switch j.status().State {
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		}
	}
	return st
}

// handleLearn answers POST /v1/learn: start an asynchronous learn job
// over the request's corpus and answer 202 with its ID.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req LearnRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: learn request carries no configs", core.ErrNoSources))
		return
	}
	if req.Shards < 0 || req.ShardWorkers < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("shards and shard_workers must be non-negative (got %d, %d)", req.Shards, req.ShardWorkers))
		return
	}
	switch req.ShardBackend {
	case "", core.ShardBackendInProcess, core.ShardBackendProcess:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown shard_backend %q (want %q or %q)",
				req.ShardBackend, core.ShardBackendInProcess, core.ShardBackendProcess))
		return
	}
	// The process backend cannot serialize func-valued engine options
	// across the process boundary (the same rule Options.Validate
	// enforces); reject the combination at submit time with a 400
	// rather than accepting a job doomed to fail.
	if req.ShardBackend == core.ShardBackendProcess {
		if len(s.engineOpts.ExtraTransforms) > 0 || len(s.engineOpts.ExtraRelations) > 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("shard_backend %q cannot serialize this server's ExtraTransforms or ExtraRelations across the process boundary", req.ShardBackend))
			return
		}
		for _, t := range s.engineOpts.UserTokens {
			if t.Parse != nil {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("shard_backend %q cannot serialize the custom Parse func of user token %q", req.ShardBackend, t.Name))
				return
			}
		}
	}
	j := s.jobs.create()
	s.rec.Add("server.learn_jobs", 1)
	if s.store != nil {
		// Journal the job as running with the request persisted, so a
		// killed daemon resumes it on restart. A journaling failure is a
		// diagnostic, not a request failure — the job still runs, it just
		// will not survive a crash.
		raw, err := json.Marshal(req)
		if err == nil {
			err = s.store.Jobs().Put(bundle.JobRecord{
				ID:          j.id,
				State:       bundle.JobRunning,
				CreatedUnix: j.created.Unix(),
				UpdatedUnix: j.created.Unix(),
				Request:     raw,
			})
		}
		if err != nil {
			s.diags.Addf(diag.SevWarn, "server", j.id, 0, "journaling learn job: %v", err)
		}
	}
	go s.runLearnJob(j, req)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, JobStatus{ID: j.id, State: JobRunning})
}

// failJob finishes j as failed and journals the terminal state.
func (s *Server) failJob(j *job, err error) {
	j.finish(nil, err)
	s.journalFinish(j, nil, err)
}

// journalFinish rewrites a finished job's journal record (no-op without
// a bundle store). Failures degrade to diagnostics.
func (s *Server) journalFinish(j *job, res *LearnResult, jobErr error) {
	if s.store == nil {
		return
	}
	rec := bundle.JobRecord{
		ID:          j.id,
		CreatedUnix: j.created.Unix(),
		UpdatedUnix: time.Now().Unix(),
	}
	if jobErr != nil {
		rec.State = bundle.JobFailed
		rec.Error = jobErr.Error()
	} else {
		rec.State = bundle.JobDone
		rec.BundleID = res.BundleID
		rec.Fingerprint = res.Fingerprint
		rec.Contracts = res.Contracts
	}
	if err := s.store.Jobs().Put(rec); err != nil {
		s.diags.Addf(diag.SevWarn, "server", j.id, 0, "journaling learn job result: %v", err)
	}
}

// runLearnJob executes one learn job under the server's base context,
// with the same panic containment as a request handler.
func (s *Server) runLearnJob(j *job, req LearnRequest) {
	defer s.jobs.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			s.rec.Add("server.panics", 1)
			s.diags.Add(diag.FromPanic("server", "/v1/learn/"+j.id, rec))
			s.failJob(j, fmt.Errorf("learn job panicked: %v", rec))
		}
	}()
	start := time.Now()
	rec := requestRecorder()

	// Learning mutates mining state, so each job gets its own cold
	// engine rather than a shared resident one; only the learned set's
	// compiled entry is shared afterwards, via the registry.
	opts := s.engineOpts
	opts.Telemetry = rec
	opts.Diagnostics = nil
	opts.Progress = nil
	// Shard selection rides the journaled request, so a job recovered
	// after a restart re-runs under the same backend it was submitted
	// with.
	opts.Shards = req.Shards
	opts.ShardWorkers = req.ShardWorkers
	opts.ShardBackend = req.ShardBackend
	eng, err := core.New(opts)
	if err != nil {
		s.failJob(j, err)
		return
	}
	ctx := s.baseCtx
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	lr, err := eng.LearnContext(ctx, toSources(req.Configs), toSources(req.Metadata))
	if err != nil {
		s.failJob(j, err)
		return
	}
	// Register the learned set so fingerprint-referencing checks start
	// warm; a registration failure fails the job (the fingerprint is
	// the job's whole point). The entry is pinned until the job record
	// expires, so LRU pressure from other tenants cannot evict a result
	// the client has not collected yet.
	en, err := s.reg.Acquire(ctx, lr.Set)
	if err != nil {
		s.failJob(j, fmt.Errorf("registering learned set: %w", err))
		return
	}
	s.reg.Pin(en)
	j.setEntry(en)
	var bundleID string
	if s.store != nil {
		// Persist the learned set as a job-role bundle so a restarted
		// daemon can re-register it without relearning. Job bundles are
		// never activation candidates for the default serving set.
		jb := bundle.New(j.id, "", bundle.RoleJob, lr.Set, nil, nil)
		if id, werr := s.store.Write(jb); werr != nil {
			s.diags.Addf(diag.SevWarn, "bundle", j.id, 0, "persisting learned set: %v", werr)
		} else {
			bundleID = id
		}
	}
	rep := rec.Snapshot()
	s.rec.Merge(rep)
	res := &LearnResult{
		Fingerprint:  en.Fingerprint(),
		Contracts:    lr.Set.Len(),
		BundleID:     bundleID,
		Stats:        lr.Stats,
		Minimization: lr.Minimization,
		Diagnostics:  lr.Diagnostics,
		DurationMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.Telemetry {
		res.Telemetry = &rep
	}
	j.finish(res, nil)
	s.journalFinish(j, res, nil)
}

// recoverJobs replays the learn-job journal after a restart:
// resume-or-mark-failed. Running jobs with a recoverable request are
// re-run; done jobs re-register their learned set from the persisted
// bundle (pinned, like a fresh result); failed jobs come back
// queryable; corrupt or unresumable entries are marked failed with a
// diagnostic — never silently dropped.
func (s *Server) recoverJobs() error {
	if s.store == nil {
		return nil
	}
	recs, corrupt, err := s.store.Jobs().Replay()
	if err != nil {
		return err
	}
	for _, c := range corrupt {
		s.adoptFailed(c.ID, time.Now(),
			fmt.Errorf("journal record corrupt after restart: %s", c.Reason))
		s.diags.Addf(diag.SevWarn, "server", c.Path, 0,
			"learn job %s journal corrupt: %s", c.ID, c.Reason)
		s.rec.Add("server.jobs_failed_on_recovery", 1)
	}
	for _, rec := range recs {
		created := time.Unix(rec.CreatedUnix, 0)
		updated := time.Unix(rec.UpdatedUnix, 0)
		switch rec.State {
		case bundle.JobDone:
			s.recoverDoneJob(rec, created, updated)
		case bundle.JobFailed:
			j := s.jobs.adopt(rec.ID, JobFailed, created, updated)
			if rec.Error != "" {
				j.mu.Lock()
				j.err = errors.New(rec.Error)
				j.mu.Unlock()
			}
			s.rec.Add("server.jobs_recovered", 1)
		case bundle.JobRunning:
			var req LearnRequest
			if len(rec.Request) == 0 || json.Unmarshal(rec.Request, &req) != nil || len(req.Configs) == 0 {
				s.adoptFailed(rec.ID, updated,
					fmt.Errorf("daemon restarted mid-job and the request is not recoverable"))
				s.diags.Addf(diag.SevWarn, "server", rec.ID, 0,
					"learn job %s interrupted by restart; request not recoverable", rec.ID)
				s.rec.Add("server.jobs_failed_on_recovery", 1)
				continue
			}
			j := s.jobs.adopt(rec.ID, JobRunning, created, time.Time{})
			s.rec.Add("server.jobs_resumed", 1)
			go s.runLearnJob(j, req)
		}
	}
	return nil
}

// recoverDoneJob rebuilds a done job from its persisted bundle: the
// learned set is re-registered (and pinned) so its fingerprint works in
// check requests exactly as before the restart.
func (s *Server) recoverDoneJob(rec bundle.JobRecord, created, updated time.Time) {
	fail := func(err error) {
		s.adoptFailed(rec.ID, updated, err)
		s.diags.Addf(diag.SevWarn, "server", rec.ID, 0, "recovering learn job %s: %v", rec.ID, err)
		s.rec.Add("server.jobs_failed_on_recovery", 1)
	}
	if rec.BundleID == "" {
		fail(fmt.Errorf("learned set was not persisted; result lost in restart"))
		return
	}
	b, err := s.store.Load(rec.BundleID)
	if err != nil {
		fail(fmt.Errorf("loading learned bundle: %w", err))
		return
	}
	set := b.Effective()
	en, err := s.reg.Acquire(s.baseCtx, set)
	if err != nil {
		fail(fmt.Errorf("re-registering learned set: %w", err))
		return
	}
	s.reg.Pin(en)
	j := s.jobs.adopt(rec.ID, JobDone, created, updated)
	j.mu.Lock()
	j.entry = en
	j.result = &LearnResult{
		Fingerprint: en.Fingerprint(),
		Contracts:   set.Len(),
		BundleID:    rec.BundleID,
		Recovered:   true,
	}
	j.mu.Unlock()
	s.rec.Add("server.jobs_recovered", 1)
}

// adoptFailed registers a recovered-as-failed job and rewrites its
// journal record so the next restart replays it cleanly.
func (s *Server) adoptFailed(id string, finished time.Time, err error) {
	j := s.jobs.adopt(id, JobFailed, finished, finished)
	j.mu.Lock()
	j.err = err
	j.mu.Unlock()
	if perr := s.store.Jobs().Put(bundle.JobRecord{
		ID:          id,
		State:       bundle.JobFailed,
		CreatedUnix: finished.Unix(),
		UpdatedUnix: finished.Unix(),
		Error:       err.Error(),
	}); perr != nil {
		s.diags.Addf(diag.SevWarn, "server", id, 0, "rewriting failed job record: %v", perr)
	}
}

// expireJobs is the retention sweep: finished jobs older than
// JobRetention stop being queryable, their pinned registry entries are
// released to the LRU, and their journal records are deleted.
func (s *Server) expireJobs(now time.Time) {
	for _, j := range s.jobs.expire(now, s.opts.JobRetention) {
		if en := j.takeEntry(); en != nil {
			s.reg.Unpin(en)
		}
		if s.store != nil {
			if err := s.store.Jobs().Delete(j.id); err != nil {
				s.diags.Addf(diag.SevWarn, "server", j.id, 0, "deleting expired job record: %v", err)
			}
		}
		s.rec.Add("server.jobs_expired", 1)
	}
}

// handleJob answers GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}
