package server

// Asynchronous learn jobs. Learning a contract set from a corpus takes
// orders of magnitude longer than checking against a compiled one, so
// POST /v1/learn does not hold the connection open: it enqueues a job,
// answers 202 with a job ID immediately, and the client polls
// GET /v1/jobs/{id}. A finished job's learned set is registered in the
// engine registry, so its fingerprint is immediately usable in
// /v1/check requests without resending the contracts.
//
// Jobs run under the server's base context: graceful drain waits for
// running jobs up to the drain deadline, then cancels them
// cooperatively through the engine's context plumbing.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"concord/internal/core"
	"concord/internal/diag"
	"concord/internal/minimize"
	"concord/internal/telemetry"
)

// Job states.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// LearnRequest is the body of POST /v1/learn.
type LearnRequest struct {
	// Configs is the training corpus.
	Configs []SourceJSON `json:"configs"`
	// Metadata optionally supplies metadata/outside-information files.
	Metadata []SourceJSON `json:"metadata,omitempty"`
	// Telemetry requests the learn run's stage spans in the job result.
	Telemetry bool `json:"telemetry,omitempty"`
}

// LearnResult is the payload of a finished learn job.
type LearnResult struct {
	// Fingerprint is the learned set's registry fingerprint; the set is
	// resident and ready for fingerprint-referencing check requests.
	Fingerprint string `json:"fingerprint"`
	// Contracts counts the learned contracts.
	Contracts int `json:"contracts"`
	// Stats summarizes the processed corpus.
	Stats core.ProcessStats `json:"stats"`
	// Minimization reports the contract reduction.
	Minimization minimize.Result `json:"minimization"`
	// Diagnostics lists contained faults from the learn run.
	Diagnostics []diag.Diagnostic `json:"diagnostics,omitempty"`
	// Telemetry is the job-scoped recorder snapshot, when requested.
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	// DurationMS is the learn run's wall time.
	DurationMS float64 `json:"duration_ms"`
}

// JobStatus is the body of GET /v1/jobs/{id} (and the 202 from
// POST /v1/learn, with only ID and State set).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Result carries a done job's payload.
	Result *LearnResult `json:"result,omitempty"`
}

// job is one tracked learn job.
type job struct {
	id string

	mu     sync.Mutex
	state  string
	err    error
	result *LearnResult
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Result: j.result}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *job) finish(res *LearnResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state, j.err = JobFailed, err
		return
	}
	j.state, j.result = JobDone, res
}

// jobStats summarizes the store for /healthz.
type jobStats struct {
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// jobStore tracks learn jobs by ID. Finished jobs stay queryable for
// the life of the daemon (job payloads are small: a fingerprint and
// summary counts, not the contract set itself).
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
	wg   sync.WaitGroup
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

// create registers a new running job.
func (s *jobStore) create() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{id: fmt.Sprintf("learn-%d", s.seq), state: JobRunning}
	s.jobs[j.id] = j
	s.wg.Add(1)
	return j
}

// get returns a job by ID.
func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// wait blocks until every running job has finished.
func (s *jobStore) wait() { s.wg.Wait() }

func (s *jobStore) stats() jobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st jobStats
	for _, j := range s.jobs {
		switch j.status().State {
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		}
	}
	return st
}

// handleLearn answers POST /v1/learn: start an asynchronous learn job
// over the request's corpus and answer 202 with its ID.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req LearnRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: learn request carries no configs", core.ErrNoSources))
		return
	}
	j := s.jobs.create()
	s.rec.Add("server.learn_jobs", 1)
	go s.runLearnJob(j, req)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, JobStatus{ID: j.id, State: JobRunning})
}

// runLearnJob executes one learn job under the server's base context,
// with the same panic containment as a request handler.
func (s *Server) runLearnJob(j *job, req LearnRequest) {
	defer s.jobs.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			s.rec.Add("server.panics", 1)
			s.diags.Add(diag.FromPanic("server", "/v1/learn/"+j.id, rec))
			j.finish(nil, fmt.Errorf("learn job panicked: %v", rec))
		}
	}()
	start := time.Now()
	rec := requestRecorder()

	// Learning mutates mining state, so each job gets its own cold
	// engine rather than a shared resident one; only the learned set's
	// compiled entry is shared afterwards, via the registry.
	opts := s.engineOpts
	opts.Telemetry = rec
	opts.Diagnostics = nil
	opts.Progress = nil
	eng, err := core.New(opts)
	if err != nil {
		j.finish(nil, err)
		return
	}
	ctx := s.baseCtx
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	lr, err := eng.LearnContext(ctx, toSources(req.Configs), toSources(req.Metadata))
	if err != nil {
		j.finish(nil, err)
		return
	}
	// Register the learned set so fingerprint-referencing checks start
	// warm; a registration failure fails the job (the fingerprint is
	// the job's whole point).
	en, err := s.reg.Acquire(ctx, lr.Set)
	if err != nil {
		j.finish(nil, fmt.Errorf("registering learned set: %w", err))
		return
	}
	rep := rec.Snapshot()
	s.rec.Merge(rep)
	res := &LearnResult{
		Fingerprint:  en.Fingerprint(),
		Contracts:    lr.Set.Len(),
		Stats:        lr.Stats,
		Minimization: lr.Minimization,
		Diagnostics:  lr.Diagnostics,
		DurationMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.Telemetry {
		res.Telemetry = &rep
	}
	j.finish(res, nil)
}

// handleJob answers GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}
