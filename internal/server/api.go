package server

// The /v1 JSON API: request/response types and the check, coverage,
// and learn handlers. Every request resolves a contract set one of
// three ways — an embedded set (any format `concord check -contracts`
// accepts), a fingerprint of a set already resident in the registry,
// or the server's default set — and runs against the shared compiled
// entry with request-scoped telemetry and diagnostics.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/diag"
	"concord/internal/report"
	"concord/internal/telemetry"
)

// SourceJSON is one configuration file in a request body.
type SourceJSON struct {
	// Name identifies the file in violations and coverage rows.
	Name string `json:"name"`
	// Text is the raw file content.
	Text string `json:"text"`
}

func toSources(in []SourceJSON) []core.Source {
	if len(in) == 0 {
		return nil
	}
	out := make([]core.Source, len(in))
	for i, s := range in {
		out[i] = core.Source{Name: s.Name, Text: []byte(s.Text)}
	}
	return out
}

// CheckRequest is the body of POST /v1/check and /v1/coverage.
// Exactly one contract-set reference applies: an embedded Contracts
// document, a Fingerprint of a resident set, or (both absent) the
// server's default set.
type CheckRequest struct {
	// Contracts embeds a contract set: either the learn output envelope
	// ({"contracts": [...]}) or a bare contract array — the same
	// formats `concord check -contracts` reads.
	Contracts json.RawMessage `json:"contracts,omitempty"`
	// Fingerprint names a set already resident in the registry (as
	// returned by an earlier response or learn job).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Configs is the batch of configurations to check. One element
	// checks a single config; many check a batch in one request.
	Configs []SourceJSON `json:"configs"`
	// Metadata optionally supplies metadata/outside-information files.
	Metadata []SourceJSON `json:"metadata,omitempty"`
	// Shards, when greater than one, runs the batch through the
	// fleet-scale sharded driver: deterministic contiguous shards
	// streamed on a bounded pool, byte-identical results. Use for
	// large batches where holding every lexed configuration in memory
	// at once is the bottleneck.
	Shards int `json:"shards,omitempty"`
	// ShardWorkers bounds concurrently running shards; 0 selects the
	// server engine's parallelism.
	ShardWorkers int `json:"shard_workers,omitempty"`
	// ShardBackend selects the shard execution backend: "" or
	// "inprocess" runs shards on a goroutine pool inside the server,
	// "process" dispatches each shard to a pool of shard-worker child
	// processes (crash retries, straggler speculation, byte-identical
	// results). With "process", a batch of shards <= 1 still executes
	// out of process as a single shard.
	ShardBackend string `json:"shard_backend,omitempty"`
	// Telemetry requests this request's stage spans and counters in
	// the response.
	Telemetry bool `json:"telemetry,omitempty"`
}

// CheckResponse is the body of a successful POST /v1/check.
type CheckResponse struct {
	// Fingerprint is the resolved contract set's registry fingerprint;
	// later requests may send it instead of re-embedding the set.
	Fingerprint string `json:"fingerprint"`
	// Violations, Coverage, and Stats carry the check result, exactly
	// as `concord check -json` reports them.
	Violations []contracts.Violation `json:"violations"`
	Coverage   core.CoverageSummary  `json:"coverage"`
	Stats      core.ProcessStats     `json:"stats"`
	// Diagnostics lists this request's contained faults and input-guard
	// degradations; empty on a clean run.
	Diagnostics []diag.Diagnostic `json:"diagnostics,omitempty"`
	// Telemetry is the request-scoped recorder snapshot, when the
	// request asked for it.
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	// DurationMS is the server-side wall time of the run.
	DurationMS float64 `json:"duration_ms"`
}

// CoverageResponse is the body of a successful /v1/coverage.
type CoverageResponse struct {
	Fingerprint string              `json:"fingerprint"`
	Lines       []core.LineCoverage `json:"lines"`
	Telemetry   *telemetry.Report   `json:"telemetry,omitempty"`
	DurationMS  float64             `json:"duration_ms"`
}

// decodeBody decodes a JSON request body into v, mapping oversized
// bodies (MaxBytesReader) and malformed JSON to client errors.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		code := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

// resolveEntry turns a request's contract-set reference into a resident
// registry entry. On error it has already written the response.
func (s *Server) resolveEntry(w http.ResponseWriter, r *http.Request, raw json.RawMessage, fingerprint string) (*core.RegistryEntry, bool) {
	switch {
	case len(raw) > 0:
		set, err := report.ParseContractsJSON(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return nil, false
		}
		en, err := s.reg.Acquire(r.Context(), set)
		if err != nil {
			writeError(w, statusFor(err), err)
			return nil, false
		}
		return en, true
	case fingerprint != "":
		en, err := s.reg.AcquireByFingerprint(r.Context(), fingerprint)
		if err != nil {
			writeError(w, statusFor(err), err)
			return nil, false
		}
		return en, true
	default:
		en := s.defaultContracts()
		if en == nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("no contract set: request embeds none, names no fingerprint, and the server has no default (-contracts)"))
			return nil, false
		}
		return en, true
	}
}

// requestRecorder builds the span-limited recorder that captures one
// request's engine stages.
func requestRecorder() *telemetry.Recorder {
	rec := telemetry.NewRecorder()
	rec.SetSpanLimit(requestSpanLimit)
	return rec
}

// handleCheck answers POST /v1/check: resolve the contract set, run the
// shared compiled checker over the request's configurations under the
// per-request deadline, and report violations, coverage, stats, and
// diagnostics.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: request carries no configs", core.ErrNoSources))
		return
	}
	if req.Shards < 0 || req.ShardWorkers < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("shards and shard_workers must be non-negative (got %d, %d)", req.Shards, req.ShardWorkers))
		return
	}
	switch req.ShardBackend {
	case "", core.ShardBackendInProcess, core.ShardBackendProcess:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown shard_backend %q (want %q or %q)",
				req.ShardBackend, core.ShardBackendInProcess, core.ShardBackendProcess))
		return
	}
	en, ok := s.resolveEntry(w, r, req.Contracts, req.Fingerprint)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	rec := requestRecorder()
	res, err := en.CheckShardedContext(ctx, toSources(req.Configs), toSources(req.Metadata), rec, req.Shards, req.ShardWorkers, req.ShardBackend)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	rep := rec.Snapshot()
	s.rec.Merge(rep)
	resp := CheckResponse{
		Fingerprint: en.Fingerprint(),
		Violations:  res.Violations,
		Coverage:    res.Coverage,
		Stats:       res.Stats,
		Diagnostics: res.Diagnostics,
		DurationMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.Telemetry {
		resp.Telemetry = &rep
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCoverage answers /v1/coverage (GET or POST, same body as
// /v1/check): per-line coverage of the request's configurations under
// the resolved contract set.
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: request carries no configs", core.ErrNoSources))
		return
	}
	en, ok := s.resolveEntry(w, r, req.Contracts, req.Fingerprint)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	rec := requestRecorder()
	lines, err := en.CoverageLinesContext(ctx, toSources(req.Configs), toSources(req.Metadata), rec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	rep := rec.Snapshot()
	s.rec.Merge(rep)
	resp := CoverageResponse{
		Fingerprint: en.Fingerprint(),
		Lines:       lines,
		DurationMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.Telemetry {
		resp.Telemetry = &rep
	}
	writeJSON(w, http.StatusOK, resp)
}
