package synth

import (
	"fmt"

	"concord/internal/contracts"
)

// generateEdge produces a mobile edge datacenter role (E1 leaf, E2 ToR)
// in Arista-style indented syntax, mirroring the paper's §2 example:
// loopbacks permitted by prefix lists, port-channel numbers encoded in
// EVPN route-target MAC segments, vlan-derived route distinguishers, and
// vlans driven by a shared JSON metadata file (Figure 10's user
// policies).
func generateEdge(role RoleSpec) *Dataset {
	ds := &Dataset{Role: role, Truth: edgeManifest()}
	vlans := edgeVlans(role)
	for d := 1; d <= role.Devices; d++ {
		ds.Configs = append(ds.Configs, File{
			Name: fmt.Sprintf("%s-sw%0*d.cfg", role.Name, nameWidth(role.Devices, 3), d),
			Text: []byte(edgeDevice(role, d, vlans)),
		})
	}
	if role.WithMeta {
		ds.Meta = append(ds.Meta, File{
			Name: role.Name + "-policy.json",
			Text: []byte(edgeMetadata(role, vlans)),
		})
	}
	return ds
}

// edgeVlans returns the role's vlan ids (shared across devices, defined
// by the metadata file).
func edgeVlans(role RoleSpec) []int {
	vlans := make([]int, role.Vlans)
	for i := range vlans {
		vlans[i] = 1101 + 7*i
	}
	return vlans
}

// edgeMetadata renders the role's network-function policy file.
func edgeMetadata(role RoleSpec, vlans []int) string {
	var b builder
	b.sb.WriteString("{\n  \"nfInfos\": {\n    \"vrfs\": [\n")
	for i, v := range vlans {
		comma := ","
		if i == len(vlans)-1 {
			comma = ""
		}
		b.line(3, `{"vrfName": "NF-VRF-%d", "vlanId": %d}%s`, i+1, v, comma)
	}
	b.sb.WriteString("    ]\n  }\n}\n")
	return b.String()
}

// edgeDevice renders one switch configuration.
func edgeDevice(role RoleSpec, d int, vlans []int) string {
	rng := deviceRand(role.Name, d)
	s := site(d)
	// blk/idx decompose the device number uniquely, so every address
	// family below stays collision-free across a 10k+ fleet (good to
	// ~13k devices, bounded by the 200+blk management octet). The old
	// plan reused d%250 alone: devices d and d+1000 shared a site
	// number (d%40) and a device octet (d%250), so their loopbacks and
	// management networks were identical, silently breaking the planted
	// Unique-contract ground truth.
	blk, idx := d/250, d%250
	loopback := fmt.Sprintf("10.%d.%d.%d", s, idx, 1+blk)
	mgmtNet := fmt.Sprintf("10.%d.%d.0/24", 200+blk, idx)
	mgmtGW := fmt.Sprintf("10.%d.%d.254", 200+blk, idx)
	asn := 65000 + d
	// Uplink /31 blocks are allocated by per-site index: devices that
	// share a site number (d ≡ d' mod 40) get disjoint u ranges, where
	// the old 100+d%100 plan collided at 200 devices (lcm(40,100)).
	uplink := func(i int) (o3, o4 int) {
		u := (d/40)*role.Interfaces + (i - 1)
		return u / 128, 2 * (u % 128)
	}

	var b builder
	b.line(0, "hostname EDGE-SW%d", 1000+d)
	b.bang()
	b.line(0, "ip name-server 10.0.0.53")
	b.line(0, "ip name-server 10.0.1.53")
	b.line(0, "ntp server 10.0.2.123")
	// Coincidental-uniqueness FP source: a buffer size that happens to
	// vary per device but is not a real network resource.
	b.line(0, "logging buffered %d", 8192+d)
	// Coincidental-equality FP source: two unrelated knobs derived from
	// the same sizing input.
	b.line(0, "queue-monitor length limit %d", 5000+3*d)
	b.line(0, "hardware counter rate %d", 5000+3*d)
	b.bang()
	b.line(0, "vrf instance Mgmt")
	b.bang()
	b.line(0, "interface Loopback0")
	b.line(1, "description router loopback")
	b.line(1, "ip address %s", loopback)
	b.bang()
	// Several subsystems reference the loopback, forming the mutual
	// equality group that contract minimization collapses (§3.6).
	b.line(0, "tacacs-server source-ip %s", loopback)
	b.line(0, "sflow source %s", loopback)
	b.line(0, "msdp originator-id %s", loopback)
	b.bang()
	b.line(0, "interface Management1")
	b.line(1, "vrf Mgmt")
	b.line(1, "ip address 10.%d.%d.%d/24", 200+blk, idx, 10+d%200)
	b.bang()
	// Uplink interfaces: the bulk of the configuration. Descriptions
	// name the far-end address, matching the BGP neighbor plan.
	for i := 1; i <= role.Interfaces; i++ {
		o3, o4 := uplink(i)
		b.line(0, "interface Ethernet%d", i)
		b.line(1, "description uplink-10.%d.%d.%d", s, o3, o4+1)
		b.line(1, "no switchport")
		// Sparse genuine type noise: one in ~200 interfaces carries an
		// erroneous prefix instead of an MTU (a planted real bug class).
		if rng.Intn(200) == 0 {
			b.line(1, "mtu 10.1.1.0/31")
		} else {
			b.line(1, "mtu 9214")
		}
		b.line(1, "ip address 10.%d.%d.%d/31", s, o3, o4)
		b.bang()
	}
	// Port channels with EVPN ether-segments: the MAC's final segment is
	// the channel number in hexadecimal (Figure 1 contract 1). The
	// middle segments encode the device so ether-segment identifiers
	// stay unique fleet-wide: channel numbers alone repeat across
	// devices (e.g. (7·1+41) ≡ (7·5+13) mod 150), which made the old
	// 00:00:0c:d3:00:<pc> plan collide as early as devices 1 and 5.
	for _, off := range []int{0, 13, 41} {
		pc := 100 + (d*7+off)%150
		b.line(0, "interface Port-Channel%d", pc)
		b.line(1, "evpn ether-segment")
		b.line(2, "route-target import 00:00:0c:%02x:%02x:%02x", 211+blk, idx, pc)
		b.bang()
	}
	// Prefix lists: the loopback must be permitted (Figure 1 contract
	// 2); seq numbers are arithmetic (sequence contracts).
	b.line(0, "ip prefix-list LOOPBACKS")
	b.line(1, "seq 10 permit %s/32", loopback)
	b.line(1, "seq 20 permit 0.0.0.0/0")
	b.bang()
	b.line(0, "ip prefix-list INTERNAL")
	b.line(1, "seq 10 permit 10.0.0.0/8")
	b.line(1, "seq 20 permit 172.16.0.0/12")
	b.line(1, "seq 30 permit 192.168.0.0/16")
	b.bang()
	// Access lists sized by the policy vocabulary; letter-only names
	// keep each policy a distinct pattern.
	for p := 0; p < role.PolicyVocab; p++ {
		b.line(0, "ip access-list EDGE-FILTER-%s", wanName(p))
		for q := 0; q < 3; q++ {
			b.line(1, "seq %d permit ip 10.%d.%d.0/24 any", 10*(q+1), 32+p, q)
		}
		b.bang()
	}
	// Management reachability: the static route's next hop must fall in
	// the aggregate advertised for the management VRF (incident 1).
	b.line(0, "ip route vrf Mgmt 0.0.0.0/0 %s", mgmtGW)
	b.bang()
	b.line(0, "router bgp %d", asn)
	b.line(1, "router-id %s", loopback)
	b.line(1, "maximum-paths 64 ecmp 64")
	b.line(1, "neighbor SPINES peer-group")
	for i := 1; i <= min(role.Interfaces, 4); i++ {
		o3, o4 := uplink(i)
		b.line(1, "neighbor 10.%d.%d.%d peer-group SPINES", s, o3, o4+1)
	}
	b.line(1, "redistribute connected")
	b.line(1, "neighbor 10.255.%d.%d peer-group OPT-A", idx, 1+blk)
	// Vlans come from the metadata file (incident 2); the rd encodes the
	// vlan id as its suffix (Figure 1 contract 3).
	for _, v := range vlans {
		b.line(1, "vlan %d", v)
		b.line(2, "rd %s:1%d", loopback, v)
		b.line(2, "route-target import 65000:%d", v)
	}
	b.line(1, "vrf Mgmt")
	b.line(2, "aggregate-address %s", mgmtNet)
	b.bang()
	// Operational drift: a banner most devices carry, below the
	// confidence threshold for contract learning.
	if rng.Intn(10) > 0 {
		b.line(0, "banner motd maintained by neteng")
		b.bang()
	}
	return b.String()
}

// edgeManifest declares the planted invariants of the edge roles.
func edgeManifest() *Manifest {
	return &Manifest{
		Rules: []Rule{
			{Category: contracts.CatRelation, Rel: "equals", P1: "router-id [ip4]", P2: "interface Loopback[num]/ip address [ip4]",
				Describe: "the BGP router id is the loopback address"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "ip address [ip4]", P2: "source-ip [ip4]",
				Describe: "management-plane sources use the loopback address"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "ip address [ip4]", P2: "sflow source [ip4]",
				Describe: "management-plane sources use the loopback address"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "ip address [ip4]", P2: "originator-id [ip4]",
				Describe: "management-plane sources use the loopback address"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "source-ip [ip4]", P2: "sflow source [ip4]",
				Describe: "management-plane sources agree"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "source-ip [ip4]", P2: "originator-id [ip4]",
				Describe: "management-plane sources agree"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "sflow source [ip4]", P2: "originator-id [ip4]",
				Describe: "management-plane sources agree"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "router-id [ip4]", P2: "source-ip [ip4]",
				Describe: "management-plane sources use the router id"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "router-id [ip4]", P2: "sflow source [ip4]",
				Describe: "management-plane sources use the router id"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "router-id [ip4]", P2: "originator-id [ip4]",
				Describe: "management-plane sources use the router id"},
			{Category: contracts.CatRelation, Rel: "contains", P2: "prefix-list LOOPBACKS",
				Describe: "loopback-plan addresses are permitted by the loopback prefix list"},
			{Category: contracts.CatRelation, Rel: "contains", P2: "prefix-list INTERNAL",
				Describe: "all addresses fall inside the internal address space"},
			{Category: contracts.CatRelation, Rel: "contains", P2: "aggregate-address [pfx4]",
				Describe: "management addresses fall inside the advertised aggregate"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "interface Port-Channel[num]", P2: "route-target import [mac]",
				Describe: "the port-channel number in hex is the MAC's final segment"},
			{Category: contracts.CatRelation, Rel: "endswith", P1: "vlan [num]", P2: "rd [ip4]:[num]",
				Describe: "the route distinguisher number ends with the vlan id"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "vlan [num]", P2: "@meta",
				Describe: "every configured vlan id is declared in the policy metadata"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "route-target import [num]:[num]", P2: "vlan [num]",
				Describe: "the vlan route-target suffix is the vlan id"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "route-target import [num]:[num]", P2: "@meta",
				Describe: "the vlan route-target suffix is declared in the policy metadata"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "ip route vrf Mgmt [pfx4] [ip4]", P2: "aggregate-address [pfx4]",
				Describe: "the management next hop falls in the advertised aggregate"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "rd [ip4]:[num]", P2: "router-id [ip4]",
				Describe: "route distinguishers are derived from the router id"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "rd [ip4]:[num]", P2: "ip address [ip4]",
				Describe: "route distinguishers are derived from the loopback"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "rd [ip4]:[num]", P2: "source-ip [ip4]",
				Describe: "route distinguishers are derived from the loopback"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "rd [ip4]:[num]", P2: "sflow source [ip4]",
				Describe: "route distinguishers are derived from the loopback"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "rd [ip4]:[num]", P2: "originator-id [ip4]",
				Describe: "route distinguishers are derived from the loopback"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "description uplink-[ip4]", P2: "neighbor [ip4] peer-group SPINES",
				Describe: "every BGP fabric neighbor is a described uplink"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "description uplink-[ip4]", P2: "ip address [pfx4]",
				Describe: "the described far-end address shares the interface subnet"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "neighbor [ip4] peer-group SPINES", P2: "ip address [pfx4]",
				Describe: "each BGP session is configured over a valid interface"},
			{Category: contracts.CatRelation, Rel: "equals", T1: "octet2", T2: "octet2",
				Describe: "the site octet is shared across the device addressing plan"},
			{Category: contracts.CatRelation, Rel: "equals", T1: "octet3", T2: "octet3",
				Describe: "the device octet is shared across the device addressing plan"},
			{Category: contracts.CatUnique, P: "hostname EDGE-SW[num]",
				Describe: "hostnames are unique across the role"},
			{Category: contracts.CatUnique, P: "ip address [",
				Describe: "interface addresses are unique across the role"},
			{Category: contracts.CatUnique, P: "router-id [ip4]",
				Describe: "router ids are unique across the role"},
			{Category: contracts.CatUnique, P: "source-ip [ip4]",
				Describe: "loopback-derived sources are unique across the role"},
			{Category: contracts.CatUnique, P: "sflow source [ip4]",
				Describe: "loopback-derived sources are unique across the role"},
			{Category: contracts.CatUnique, P: "originator-id [ip4]",
				Describe: "loopback-derived sources are unique across the role"},
			{Category: contracts.CatUnique, P: "router bgp [num]",
				Describe: "AS numbers are unique across the role"},
			{Category: contracts.CatUnique, P: "rd [ip4]:[num]",
				Describe: "route distinguishers are unique across the role"},
			{Category: contracts.CatUnique, P: "route-target import [mac]",
				Describe: "ether-segment identifiers are unique across the role"},
			{Category: contracts.CatUnique, P: "aggregate-address [pfx4]",
				Describe: "management aggregates are unique across the role"},
			{Category: contracts.CatUnique, P: "ip route vrf Mgmt [pfx4] [ip4]",
				Describe: "management gateways are unique across the role"},
			{Category: contracts.CatUnique, P: "description uplink-[ip4]",
				Describe: "described far-end addresses are unique across the role"},
			{Category: contracts.CatUnique, P: "neighbor [ip4] peer-group",
				Describe: "BGP neighbor addresses are unique across the role"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "interface Ethernet", P2: "interface Ethernet",
				Describe: "an interface's lines agree on its subnet plan"},
			{Category: contracts.CatType, P: "mtu [?]", BadType: "pfx4",
				Describe: "interface MTUs are plain numbers, never prefixes"},
		},
		OrderedPairs: [][2]string{
			{"no switchport", "mtu ["},
			{"mtu [", "ip address ["},
			{"redistribute connected", "neighbor [ip4] peer-group OPT-A"},
		},
	}
}
