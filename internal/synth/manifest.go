package synth

import (
	"strings"

	"concord/internal/contracts"
)

// Rule is one ground-truth entry: a semantic invariant the generator
// deliberately planted (or a class of contracts it vouches for). Learned
// contracts that match no rule are, by construction, coincidences of the
// generated data — the synthetic analogue of the paper's
// human-adjudicated false positives.
type Rule struct {
	// Category restricts the rule to one contract category.
	Category contracts.Category
	// Describe explains the invariant in English (Table 8 material).
	Describe string
	// P matches single-pattern categories: the contract's pattern must
	// contain this substring.
	P string
	// P1/P2/Rel match relational contracts: substrings of the two
	// patterns and the relation name. Equality rules match either
	// orientation.
	P1, P2, Rel string
	// T1/T2 restrict relational rules to specific transforms (empty
	// matches any).
	T1, T2 string
	// BadType matches type contracts.
	BadType string
}

// Manifest is the ground truth for one generated dataset.
type Manifest struct {
	// Rules lists the planted invariants.
	Rules []Rule
	// OrderedPairs lists (first, second) substring pairs whose ordering
	// is semantically required (beyond the block-nesting default).
	OrderedPairs [][2]string
}

// containsAny reports whether hay contains at least one of the
// "|"-separated alternatives in spec (an empty spec matches anything).
func containsAny(hay, spec string) bool {
	if spec == "" {
		return true
	}
	for _, alt := range strings.Split(spec, "|") {
		if strings.Contains(hay, alt) {
			return true
		}
	}
	return false
}

// matches reports whether a learned contract realizes this rule. P, P1,
// and P2 accept "|"-separated alternatives.
func (r *Rule) matches(c contracts.Contract) bool {
	if c.Category() != r.Category {
		return false
	}
	switch c := c.(type) {
	case *contracts.Relational:
		if r.Rel != "" && string(c.Rel) != r.Rel {
			return false
		}
		fwd := containsAny(c.Pattern1, r.P1) && containsAny(c.Pattern2, r.P2) &&
			(r.T1 == "" || c.Transform1 == r.T1) && (r.T2 == "" || c.Transform2 == r.T2)
		if fwd {
			return true
		}
		// Equality is symmetric; accept the mirrored orientation.
		if c.Rel == "equals" {
			return containsAny(c.Pattern1, r.P2) && containsAny(c.Pattern2, r.P1) &&
				(r.T2 == "" || c.Transform1 == r.T2) && (r.T1 == "" || c.Transform2 == r.T1)
		}
		return false
	case *contracts.TypeError:
		return containsAny(c.Agnostic, r.P) && (r.BadType == "" || c.BadType == r.BadType)
	case *contracts.Present:
		return containsAny(c.Pattern, r.P)
	case *contracts.Sequence:
		return containsAny(c.Pattern, r.P)
	case *contracts.Unique:
		return containsAny(c.Pattern, r.P)
	case *contracts.Ordering:
		return containsAny(c.First, r.P1) && containsAny(c.Second, r.P2)
	}
	return false
}

// IsTrue classifies a learned contract as a true positive (it reflects a
// planted or structural invariant) or a false positive (a coincidence of
// the generated data). The per-category defaults mirror how the
// generators work:
//
//   - present contracts are template-driven and always true;
//   - ordering contracts are true when the second pattern is nested
//     inside the first (a block header must be followed by its body) or
//     the pair was declared semantically ordered — every other adjacency
//     is fixed-format coincidence, the effect behind the paper's low
//     ordering precision;
//   - everything else is true only if a planted rule matches.
func (m *Manifest) IsTrue(c contracts.Contract) bool {
	switch c := c.(type) {
	case *contracts.Present:
		return true
	case *contracts.Sequence:
		// Within-configuration sequences in the generated data are all
		// template-driven (seq numbers, port layouts, vlan plans); the
		// paper likewise measures 100% sequence precision.
		return true
	case *contracts.Ordering:
		if strings.HasPrefix(c.Second, c.First+"/") {
			return true
		}
		for _, p := range m.OrderedPairs {
			if strings.Contains(c.First, p[0]) && strings.Contains(c.Second, p[1]) {
				return true
			}
		}
		return false
	}
	for i := range m.Rules {
		if m.Rules[i].matches(c) {
			return true
		}
	}
	return false
}

// Describe returns the English description of the planted rule a
// contract realizes, or "" when no described rule matches.
func (m *Manifest) Describe(c contracts.Contract) string {
	for i := range m.Rules {
		if m.Rules[i].Describe != "" && m.Rules[i].matches(c) {
			return m.Rules[i].Describe
		}
	}
	return ""
}

// Precision computes the fraction of learned contracts in one category
// that the manifest classifies as true, plus the counts. It returns
// ok=false when the category has no learned contracts.
func (m *Manifest) Precision(set *contracts.Set, cat contracts.Category) (precision float64, tp, total int, ok bool) {
	for _, c := range set.Contracts {
		if c.Category() != cat {
			continue
		}
		total++
		if m.IsTrue(c) {
			tp++
		}
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	return float64(tp) / float64(total), tp, total, true
}

// PrecisionByRel computes precision for relational contracts of a single
// relation (the paper splits relational precision into equality,
// contains, and affix columns).
func (m *Manifest) PrecisionByRel(set *contracts.Set, rel string) (precision float64, tp, total int, ok bool) {
	for _, c := range set.Contracts {
		r, isRel := c.(*contracts.Relational)
		if !isRel {
			continue
		}
		if rel == "affix" {
			if r.Rel != "startswith" && r.Rel != "endswith" {
				continue
			}
		} else if string(r.Rel) != rel {
			continue
		}
		total++
		if m.IsTrue(c) {
			tp++
		}
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	return float64(tp) / float64(total), tp, total, true
}
