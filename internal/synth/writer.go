package synth

import (
	"fmt"
	"strings"
)

// builder accumulates configuration text with indentation helpers.
type builder struct {
	sb strings.Builder
}

// line emits one line at the given indent depth (three spaces per level,
// Arista-style).
func (b *builder) line(depth int, format string, args ...any) {
	for i := 0; i < depth; i++ {
		b.sb.WriteString("   ")
	}
	fmt.Fprintf(&b.sb, format, args...)
	b.sb.WriteByte('\n')
}

// bang emits a block separator.
func (b *builder) bang() { b.sb.WriteString("!\n") }

// String returns the accumulated text.
func (b *builder) String() string { return b.sb.String() }
