package synth

import (
	"strings"
	"testing"

	"concord/internal/contracts"
)

func TestRolesCoverTable3(t *testing.T) {
	roles := Roles(1.0)
	if len(roles) != 10 {
		t.Fatalf("roles = %d, want 10", len(roles))
	}
	names := map[string]bool{}
	for _, r := range roles {
		names[r.Name] = true
		if r.Devices < 6 {
			t.Errorf("%s: too few devices (%d)", r.Name, r.Devices)
		}
	}
	for _, want := range []string{"E1", "E2", "W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"} {
		if !names[want] {
			t.Errorf("missing role %s", want)
		}
	}
	// Scaling shrinks device counts but keeps a floor.
	small := Roles(0.1)
	for i, r := range small {
		if r.Devices > roles[i].Devices {
			t.Errorf("%s: scale 0.1 grew devices", r.Name)
		}
	}
	if _, ok := RoleByName("W4", 1.0); !ok {
		t.Error("RoleByName(W4) failed")
	}
	if _, ok := RoleByName("nope", 1.0); ok {
		t.Error("RoleByName(nope) succeeded")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	role, _ := RoleByName("E1", 0.3)
	a := Generate(role)
	b := Generate(role)
	if len(a.Configs) != len(b.Configs) {
		t.Fatal("config counts differ")
	}
	for i := range a.Configs {
		if string(a.Configs[i].Text) != string(b.Configs[i].Text) {
			t.Fatalf("config %d differs between runs", i)
		}
	}
}

func TestEdgeInvariantsHold(t *testing.T) {
	role, _ := RoleByName("E1", 0.5)
	ds := Generate(role)
	if len(ds.Meta) != 1 {
		t.Fatalf("edge role should emit one metadata file, got %d", len(ds.Meta))
	}
	meta := string(ds.Meta[0].Text)
	for _, f := range ds.Configs {
		text := string(f.Text)
		// Loopback appears as router-id too.
		lb := extractAfter(t, text, "interface Loopback0\n   description router loopback\n   ip address ")
		if !strings.Contains(text, "router-id "+lb) {
			t.Errorf("%s: router-id != loopback", f.Name)
		}
		// Loopback is permitted by the prefix list.
		if !strings.Contains(text, "seq 10 permit "+lb+"/32") {
			t.Errorf("%s: loopback not permitted", f.Name)
		}
		// Every vlan appears in the metadata.
		for _, l := range strings.Split(text, "\n") {
			tr := strings.TrimSpace(l)
			if strings.HasPrefix(tr, "vlan ") {
				v := strings.TrimPrefix(tr, "vlan ")
				if !strings.Contains(meta, `"vlanId": `+v) {
					t.Errorf("%s: vlan %s missing from metadata", f.Name, v)
				}
			}
		}
	}
}

func extractAfter(t *testing.T, text, prefix string) string {
	t.Helper()
	i := strings.Index(text, prefix)
	if i < 0 {
		t.Fatalf("prefix %q not found", prefix)
	}
	rest := text[i+len(prefix):]
	return rest[:strings.IndexByte(rest, '\n')]
}

func TestWanFlatAddressesUnique(t *testing.T) {
	role, _ := RoleByName("W8", 0.5)
	ds := Generate(role)
	seen := map[string]string{}
	for _, f := range ds.Configs {
		for _, l := range strings.Split(string(f.Text), "\n") {
			if !strings.Contains(l, "family inet address") || strings.Contains(l, "lo0") {
				continue
			}
			addr := l[strings.LastIndexByte(l, ' ')+1:]
			if prev, dup := seen[addr]; dup {
				t.Fatalf("address %s reused in %s and %s", addr, prev, f.Name)
			}
			seen[addr] = f.Name
		}
	}
	if len(seen) == 0 {
		t.Fatal("no interface addresses found")
	}
}

func TestWanHostnamesUnique(t *testing.T) {
	for _, name := range []string{"W1", "W8"} {
		role, _ := RoleByName(name, 0.5)
		ds := Generate(role)
		seen := map[string]bool{}
		for _, f := range ds.Configs {
			first := strings.SplitN(string(f.Text), "\n", 2)[0]
			if seen[first] {
				t.Errorf("%s: duplicate hostname line %q", name, first)
			}
			seen[first] = true
		}
	}
}

func TestManifestClassification(t *testing.T) {
	m := edgeManifest()
	planted := &contracts.Relational{
		Pattern1: "/router bgp [num]/router-id [ip4]", ParamIdx1: 0, Transform1: "id",
		Rel:      "equals",
		Pattern2: "/interface Loopback[num]/ip address [ip4]", ParamIdx2: 0, Transform2: "id",
	}
	if !m.IsTrue(planted) {
		t.Error("planted router-id contract classified false")
	}
	coincidence := &contracts.Relational{
		Pattern1: "/queue-monitor length limit [num]", Rel: "equals",
		Pattern2: "/hardware counter rate [num]",
	}
	if m.IsTrue(coincidence) {
		t.Error("coincidental contract classified true")
	}
	// Present and sequence default to true.
	if !m.IsTrue(&contracts.Present{Pattern: "/anything"}) {
		t.Error("present should default true")
	}
	if !m.IsTrue(&contracts.Sequence{Pattern: "/anything"}) {
		t.Error("sequence should default true")
	}
	// Nested ordering is true; sibling ordering is false unless declared.
	nested := &contracts.Ordering{First: "/interface Loopback[num]", Second: "/interface Loopback[num]/ip address [ip4]"}
	if !m.IsTrue(nested) {
		t.Error("nested ordering should be true")
	}
	sibling := &contracts.Ordering{First: "/ntp server [ip4]", Second: "/logging buffered [num]"}
	if m.IsTrue(sibling) {
		t.Error("sibling ordering should be false")
	}
	declared := &contracts.Ordering{First: "/x/no switchport", Second: "/x/mtu [num]"}
	if !m.IsTrue(declared) {
		t.Error("declared ordered pair should be true")
	}
}

func TestContainsAny(t *testing.T) {
	if !containsAny("abc", "") {
		t.Error("empty spec should match")
	}
	if !containsAny("router-id [ip4]", "foo|router-id") {
		t.Error("alternation failed")
	}
	if containsAny("abc", "x|y") {
		t.Error("non-match matched")
	}
}

func TestMutateDropLine(t *testing.T) {
	text := "a\nb\nc\n"
	out, line, ok := Mutate(text, MutDropLine, 1)
	if !ok || line == 0 {
		t.Fatalf("mutate failed: %v %d", ok, line)
	}
	if strings.Count(out, "\n") >= strings.Count(text, "\n") {
		t.Error("no line removed")
	}
	// Deterministic.
	out2, line2, _ := Mutate(text, MutDropLine, 1)
	if out != out2 || line != line2 {
		t.Error("mutation not deterministic")
	}
}

func TestMutateSwap(t *testing.T) {
	text := "a\nb\n"
	out, _, ok := Mutate(text, MutSwapAdjacent, 3)
	if !ok || out != "b\na\n" && out != "b\na" {
		t.Errorf("swap = %q, %v", out, ok)
	}
}

func TestMutateRetype(t *testing.T) {
	text := "ip address 10.0.0.1\n"
	out, _, ok := Mutate(text, MutRetype, 1)
	if !ok || !strings.Contains(out, "10.0.0.1/28") {
		t.Errorf("retype = %q", out)
	}
	if _, _, ok := Mutate("no addresses here\n", MutRetype, 1); ok {
		t.Error("retype without a site succeeded")
	}
}

func TestMutatePerturb(t *testing.T) {
	text := "vlan 1101\n"
	out, _, ok := Mutate(text, MutPerturbValue, 1)
	if !ok || out == text {
		t.Errorf("perturb = %q", out)
	}
}

func TestIncidentInjections(t *testing.T) {
	role, _ := RoleByName("E1", 0.5)
	text := edgeDevice(role, 1, edgeVlans(role))

	out, ok := InjectMissingAggregate(text)
	if !ok || strings.Contains(out, "aggregate-address") {
		t.Error("aggregate not removed")
	}
	out, ok = InjectRogueVlans(text, []int{4999})
	if !ok || !strings.Contains(out, "vlan 4999") {
		t.Error("rogue vlan not injected")
	}
	out, ok = InjectVRFOrderBreak(text)
	if !ok || !strings.Contains(out, "vrf CUSTOMER-LEAK") {
		t.Error("order break not injected")
	}
	// Injections on unrelated text report failure.
	if _, ok := InjectMissingAggregate("nothing"); ok {
		t.Error("injection succeeded on unrelated text")
	}
	if _, ok := InjectRogueVlans("nothing", []int{1}); ok {
		t.Error("injection succeeded on unrelated text")
	}
	if _, ok := InjectVRFOrderBreak("nothing"); ok {
		t.Error("injection succeeded on unrelated text")
	}
}

func TestWanName(t *testing.T) {
	seen := map[string]bool{}
	for p := 0; p < 120; p++ {
		n := wanName(p)
		if len(n) != 2 {
			t.Fatalf("wanName(%d) = %q", p, n)
		}
		if seen[n] {
			t.Fatalf("wanName(%d) = %q collides", p, n)
		}
		seen[n] = true
		for _, r := range n {
			if r < 'A' || r > 'Z' {
				t.Fatalf("wanName(%d) = %q contains non-letter", p, n)
			}
		}
	}
}
