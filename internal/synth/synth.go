// Package synth generates the synthetic configuration datasets used to
// reproduce the paper's evaluation. The paper's datasets (Microsoft
// mobile edge datacenters and a cloud WAN) are proprietary; these
// generators produce role-templated configurations with the same
// structural properties — repeated elements, hierarchy, ad-hoc value
// syntax, indented and flat dialects, cross-file metadata references —
// and a ground-truth manifest of planted invariants that substitutes for
// the paper's human/LLM contract review (see DESIGN.md §4).
//
// Determinism: every device is generated from a seed derived from the
// role name and device index, so datasets are reproducible across runs
// and platforms.
package synth

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
)

// File is one generated input file.
type File struct {
	// Name is the file name (device or metadata identifier).
	Name string
	// Text is the file content.
	Text []byte
}

// Dataset is one generated role's corpus.
type Dataset struct {
	// Role identifies the dataset (E1, E2, W1..W8).
	Role RoleSpec
	// Configs are the device configuration files.
	Configs []File
	// Meta are the metadata files shared by the role (may be empty).
	Meta []File
	// Truth is the ground-truth manifest of planted invariants.
	Truth *Manifest
}

// Syntax selects the configuration dialect of a role.
type Syntax string

// The generated dialects.
const (
	// SyntaxIndent is an Arista/Cisco-style indented dialect with
	// hierarchical blocks.
	SyntaxIndent Syntax = "indent"
	// SyntaxFlat is a Juniper-style "set" dialect whose lines carry
	// their full context inline (so context embedding cannot help,
	// as the paper observes for several WAN roles in Figure 7).
	SyntaxFlat Syntax = "flat"
)

// RoleSpec describes one dataset role.
type RoleSpec struct {
	// Name is the dataset label (E1, W4, ...).
	Name string
	// Network is "edge" or "wan".
	Network string
	// Devices is the number of device configurations.
	Devices int
	// Syntax selects the dialect.
	Syntax Syntax
	// Interfaces is the per-device interface count (bulk lines).
	Interfaces int
	// Vlans is the per-device vlan count.
	Vlans int
	// PolicyVocab sizes the per-role policy vocabulary, which drives the
	// number of distinct patterns.
	PolicyVocab int
	// WithMeta emits a JSON metadata file referenced by the configs.
	WithMeta bool
}

// Roles returns the ten dataset roles mirroring Table 3's orders of
// magnitude: E1 ~O(10^3) lines, E2 ~O(10^4), W1-W3/W7 ~O(10^5),
// W4-W6 ~O(10^6), W8 ~O(10^4). The scale factor multiplies device
// counts (use scale < 1 for tests and benchmarks, 1.0 for the full
// experiment runs).
func Roles(scale float64) []RoleSpec {
	n := func(d int) int {
		v := int(float64(d)*scale + 0.5)
		if v < 6 {
			v = 6
		}
		return v
	}
	return []RoleSpec{
		{Name: "E1", Network: "edge", Devices: n(12), Syntax: SyntaxIndent, Interfaces: 8, Vlans: 4, PolicyVocab: 8, WithMeta: true},
		{Name: "E2", Network: "edge", Devices: n(30), Syntax: SyntaxIndent, Interfaces: 36, Vlans: 10, PolicyVocab: 12, WithMeta: true},
		{Name: "W1", Network: "wan", Devices: n(60), Syntax: SyntaxIndent, Interfaces: 70, Vlans: 0, PolicyVocab: 24, WithMeta: false},
		{Name: "W2", Network: "wan", Devices: n(80), Syntax: SyntaxIndent, Interfaces: 90, Vlans: 0, PolicyVocab: 60, WithMeta: false},
		{Name: "W3", Network: "wan", Devices: n(70), Syntax: SyntaxIndent, Interfaces: 72, Vlans: 0, PolicyVocab: 30, WithMeta: false},
		{Name: "W4", Network: "wan", Devices: n(280), Syntax: SyntaxFlat, Interfaces: 130, Vlans: 0, PolicyVocab: 90, WithMeta: false},
		{Name: "W5", Network: "wan", Devices: n(250), Syntax: SyntaxFlat, Interfaces: 140, Vlans: 0, PolicyVocab: 45, WithMeta: false},
		{Name: "W6", Network: "wan", Devices: n(300), Syntax: SyntaxFlat, Interfaces: 260, Vlans: 0, PolicyVocab: 80, WithMeta: false},
		{Name: "W7", Network: "wan", Devices: n(60), Syntax: SyntaxIndent, Interfaces: 90, Vlans: 0, PolicyVocab: 32, WithMeta: false},
		{Name: "W8", Network: "wan", Devices: n(30), Syntax: SyntaxFlat, Interfaces: 34, Vlans: 0, PolicyVocab: 12, WithMeta: false},
	}
}

// FleetRoles returns the fleet-scale tiers used by the sharded check
// driver's evaluation: F1 is a 10k-device flat WAN fleet and F2 a
// 10k-device indented edge fleet with shared metadata. Per-device line
// counts are kept small so one run spans the whole fleet. They are
// deliberately not part of Roles so Table 3 experiment sweeps do not
// pick them up.
func FleetRoles(scale float64) []RoleSpec {
	n := func(d int) int {
		v := int(float64(d)*scale + 0.5)
		if v < 6 {
			v = 6
		}
		return v
	}
	return []RoleSpec{
		{Name: "F1", Network: "wan", Devices: n(10000), Syntax: SyntaxFlat, Interfaces: 4, Vlans: 0, PolicyVocab: 8, WithMeta: false},
		{Name: "F2", Network: "edge", Devices: n(10000), Syntax: SyntaxIndent, Interfaces: 4, Vlans: 2, PolicyVocab: 6, WithMeta: true},
	}
}

// RoleByName returns the named role at the given scale, searching the
// Table 3 roles and then the fleet tiers.
func RoleByName(name string, scale float64) (RoleSpec, bool) {
	for _, r := range Roles(scale) {
		if r.Name == name {
			return r, true
		}
	}
	for _, r := range FleetRoles(scale) {
		if r.Name == name {
			return r, true
		}
	}
	return RoleSpec{}, false
}

// Generate produces the dataset for one role.
func Generate(role RoleSpec) *Dataset {
	switch role.Network {
	case "edge":
		return generateEdge(role)
	default:
		return generateWAN(role)
	}
}

// deviceRand returns a deterministic PRNG for one device of a role.
func deviceRand(role string, device int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", role, device)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// site derives a stable small "site number" for a device.
func site(d int) int { return 10 + d%40 }

// nameWidth returns the zero-pad width for device numbers in file
// names: at least floor digits, growing with the fleet size so that
// lexicographic file-name order always matches device order (the
// engine's deterministic source ordering sorts by path).
func nameWidth(devices, floor int) int {
	w := len(strconv.Itoa(devices))
	if w < floor {
		w = floor
	}
	return w
}
