package synth

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
)

// Mutation names a class of injected misconfiguration, chosen to map
// onto the contract categories that should detect it.
type Mutation string

// The supported mutation kinds.
const (
	// MutDropLine removes one random configuration line (present,
	// ordering, sequence, and relational contracts can catch it).
	MutDropLine Mutation = "drop-line"
	// MutSwapAdjacent swaps two adjacent lines (ordering contracts).
	MutSwapAdjacent Mutation = "swap-adjacent"
	// MutRetype turns an IPv4 address into a prefix (type contracts).
	MutRetype Mutation = "retype"
	// MutPerturbValue changes a numeric or address value so that a
	// planted relationship no longer holds (relational contracts).
	MutPerturbValue Mutation = "perturb-value"
)

// Mutations lists all generic mutation kinds.
func Mutations() []Mutation {
	return []Mutation{MutDropLine, MutSwapAdjacent, MutRetype, MutPerturbValue}
}

var (
	ipRE  = regexp.MustCompile(`\b[0-9]{1,3}(?:\.[0-9]{1,3}){3}\b`)
	numRE = regexp.MustCompile(`[0-9]+`)
)

// Mutate applies one mutation to a configuration text, returning the
// mutated text and the 1-based line number affected. ok is false when
// the text offers no mutation site for the kind. Mutations are
// deterministic for a given seed.
func Mutate(text string, kind Mutation, seed int64) (mutated string, lineNo int, ok bool) {
	rng := rand.New(rand.NewSource(seed))
	lines := strings.Split(text, "\n")
	candidates := func(pred func(string) bool) []int {
		var out []int
		for i, l := range lines {
			t := strings.TrimSpace(l)
			if t == "" || t == "!" {
				continue
			}
			if pred(t) {
				out = append(out, i)
			}
		}
		return out
	}
	switch kind {
	case MutDropLine:
		sites := candidates(func(string) bool { return true })
		if len(sites) == 0 {
			return text, 0, false
		}
		at := sites[rng.Intn(len(sites))]
		lines = append(lines[:at], lines[at+1:]...)
		return strings.Join(lines, "\n"), at + 1, true
	case MutSwapAdjacent:
		sites := candidates(func(string) bool { return true })
		var pairs []int
		for _, i := range sites {
			if i+1 < len(lines) {
				next := strings.TrimSpace(lines[i+1])
				if next != "" && next != "!" {
					pairs = append(pairs, i)
				}
			}
		}
		if len(pairs) == 0 {
			return text, 0, false
		}
		at := pairs[rng.Intn(len(pairs))]
		lines[at], lines[at+1] = lines[at+1], lines[at]
		return strings.Join(lines, "\n"), at + 1, true
	case MutRetype:
		sites := candidates(func(t string) bool {
			return ipRE.MatchString(t) && !strings.Contains(t, "/")
		})
		if len(sites) == 0 {
			return text, 0, false
		}
		at := sites[rng.Intn(len(sites))]
		lines[at] = ipRE.ReplaceAllStringFunc(lines[at], func(ip string) string {
			return ip + "/28"
		})
		return strings.Join(lines, "\n"), at + 1, true
	case MutPerturbValue:
		sites := candidates(func(t string) bool { return numRE.MatchString(t) })
		if len(sites) == 0 {
			return text, 0, false
		}
		at := sites[rng.Intn(len(sites))]
		done := false
		lines[at] = numRE.ReplaceAllStringFunc(lines[at], func(n string) string {
			if done {
				return n
			}
			done = true
			return fmt.Sprintf("%d", 700+rng.Intn(99)) // an unrelated value
		})
		return strings.Join(lines, "\n"), at + 1, true
	}
	return text, 0, false
}

// The three §5.5 incident replays. Each transforms a known-good edge
// configuration into the post-regression configuration the paper
// describes and reports which contract category should flag it.

// InjectMissingAggregate removes the management aggregate-address line,
// reproducing Example 1: the service omitted BGP route aggregation, and
// the static route's next hop lost its covering aggregate.
func InjectMissingAggregate(text string) (string, bool) {
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.Contains(l, "aggregate-address") {
			lines = append(lines[:i], lines[i+1:]...)
			return strings.Join(lines, "\n"), true
		}
	}
	return text, false
}

// InjectRogueVlans appends vlan configuration blocks that are absent
// from the policy metadata, reproducing Example 2: layer-2 configuration
// meant for a new SKU leaked into an existing one, creating a MAC
// broadcast loop. The metadata relation contract flags the rogue vlans.
func InjectRogueVlans(text string, vlans []int) (string, bool) {
	lines := strings.Split(text, "\n")
	// Insert rogue vlans inside the router bgp block, right before its
	// "vrf Mgmt" sub-block (the interface Management block has an
	// identically spelled line earlier in the file).
	inBGP := false
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "router bgp ") {
			inBGP = true
		}
		if inBGP && strings.TrimSpace(l) == "vrf Mgmt" {
			var rogue []string
			for _, v := range vlans {
				rogue = append(rogue,
					fmt.Sprintf("   vlan %d", v),
					fmt.Sprintf("      rd 10.99.99.99:1%d", v),
					fmt.Sprintf("      route-target import 65000:%d", v))
			}
			out := append(append(append([]string{}, lines[:i]...), rogue...), lines[i:]...)
			return strings.Join(out, "\n"), true
		}
	}
	return text, false
}

// InjectVRFOrderBreak inserts an erroneous line between "redistribute
// connected" and the OPT-A neighbor, reproducing Example 3: a software
// bug pushed VRF configuration that landed between lines an ordering
// contract ties together.
func InjectVRFOrderBreak(text string) (string, bool) {
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) == "redistribute connected" {
			out := append(append(append([]string{}, lines[:i+1]...),
				"   vrf CUSTOMER-LEAK"), lines[i+1:]...)
			return strings.Join(out, "\n"), true
		}
	}
	return text, false
}
