package synth

import (
	"fmt"

	"concord/internal/contracts"
)

// wanName encodes a policy-vocabulary index as a letters-only name so
// that each policy yields a distinct pattern (digits would be lexed as
// parameters and collapse the vocabulary into one pattern).
func wanName(p int) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	hi, lo := p/26, p%26
	return string(letters[hi%26]) + string(letters[lo])
}

// generateWAN produces a wide-area network role. Indent-syntax roles
// (W1, W2, W3, W7) use a Cisco-style hierarchical dialect; flat-syntax
// roles (W4, W5, W6, W8) use a Juniper-style "set" dialect whose lines
// already carry their full context, which is why context embedding does
// not improve their coverage (Figure 7).
func generateWAN(role RoleSpec) *Dataset {
	ds := &Dataset{Role: role, Truth: wanManifest(role)}
	for d := 1; d <= role.Devices; d++ {
		var text string
		if role.Syntax == SyntaxFlat {
			text = wanFlatDevice(role, d)
		} else {
			text = wanIndentDevice(role, d)
		}
		ds.Configs = append(ds.Configs, File{
			Name: fmt.Sprintf("%s-r%0*d.cfg", role.Name, nameWidth(role.Devices, 4), d),
			Text: []byte(text),
		})
	}
	return ds
}

// wanAddr allocates the i-th /31 interface address of device d so that
// addresses are unique across the whole role (the paper's Table 8
// uniqueness contract).
func wanAddr(role RoleSpec, d, i int) string {
	idx := (d-1)*role.Interfaces + i
	return fmt.Sprintf("10.%d.%d.%d", 64+(idx>>14), (idx>>7)&127, (idx&127)*2)
}

// wanLoopback allocates device d's loopback address.
func wanLoopback(d int) string {
	return fmt.Sprintf("10.255.%d.%d", d/200, 1+d%200)
}

// wanPerimPrefix allocates device d's j-th perimeter block so blocks
// stay unique per device across a 10k+ fleet (good to ~13k devices,
// bounded by the 203+d/250 octet). The old 203.<d%200>.<8j> plan
// repeated at 200 devices, so W4-W6 at full scale silently broke the
// planted per-device uniqueness ground truth.
func wanPerimPrefix(d, j int) string {
	return fmt.Sprintf("%d.%d.%d.0/24", 203+d/250, d%250, 8*j)
}

// wanFlatDevice renders a Juniper-style device.
func wanFlatDevice(role RoleSpec, d int) string {
	rng := deviceRand(role.Name, d)
	lb := wanLoopback(d)
	ntpN := 30 + d%20
	var b builder
	b.line(0, "set system host-name %s-R%04d", role.Name, 1000+d)
	b.line(0, "set system name-server 10.0.0.53")
	b.line(0, "set system ntp boot-server 10.0.%d.123", ntpN)
	if rng.Intn(50) == 0 {
		// Rare but legitimate IPv6 NTP server: the learned type contract
		// flagging it is a false positive.
		b.line(0, "set system ntp server 2001:db8:0:1::123")
	} else {
		b.line(0, "set system ntp server 10.0.2.123")
	}
	// Coincidental pairs (false-positive sources).
	b.line(0, "set system processes limit %d", 900+3*(d%50))
	b.line(0, "set chassis fpc queue-depth %d", 900+3*(d%50))
	b.line(0, "set system commit-delay %d", 7000+d)
	b.line(0, "set routing-options router-id %s", lb)
	b.line(0, "set interfaces lo0 unit 0 family inet address %s/32", lb)
	// Several subsystems reference the loopback, forming the mutual
	// equality group that contract minimization collapses (§3.6).
	b.line(0, "set system tacacs-server source-address %s", lb)
	b.line(0, "set protocols msdp local-address %s", lb)
	b.line(0, "set snmp trap-options source-address %s", lb)
	b.line(0, "set system syslog source-address %s", lb)
	b.line(0, "set protocols ldp router-id %s", lb)
	b.line(0, "set protocols pim local-address %s", lb)
	b.line(0, "set protocols isis lsp-interval %d", ntpN)

	for i := 0; i < role.Interfaces; i++ {
		addr := wanAddr(role, d, i)
		b.line(0, "set interfaces et-0/0/%d description core-link-%s", i, addr)
		if rng.Intn(400) == 0 {
			b.line(0, "set interfaces et-0/0/%d mtu 10.1.1.0/31", i)
		} else {
			b.line(0, "set interfaces et-0/0/%d mtu 9100", i)
		}
		b.line(0, "set interfaces et-0/0/%d hold-time up 2000", i)
		b.line(0, "set interfaces et-0/0/%d unit 0 family inet address %s/31", i, addr)
		b.line(0, "set interfaces et-0/0/%d unit 0 family iso", i)
		b.line(0, "set interfaces et-0/0/%d unit 0 family mpls", i)
	}

	for p := 0; p < role.PolicyVocab; p++ {
		name := wanName(p)
		gid := 100 + p
		b.line(0, "set protocols bgp group PEER-%s type external", name)
		// The peer AS encodes the group id as its suffix (affix
		// invariant): 65100+p ends with 100+p in decimal.
		b.line(0, "set protocols bgp group PEER-%s peer-as 65%d", name, gid)
		b.line(0, "set protocols bgp group PEER-%s export-id %d", name, gid)
		// IPv4 and IPv6 policies are configured in pairs.
		b.line(0, "set protocols bgp group PEER-%s import POLICY-V4-%d", name, 200+p)
		b.line(0, "set protocols bgp group PEER-%s import6 POLICY-V6-%d", name, 200+p)
		b.line(0, "set protocols bgp group PEER-%s neighbor %s", name, wanAddr(role, d, p%role.Interfaces))
	}

	// Perimeter filters: inbound source filters mirror outbound
	// destination filters (Table 8's symmetry contract), numbered in an
	// arithmetic term sequence.
	for j := 0; j < 6; j++ {
		pfx := wanPerimPrefix(d, j)
		b.line(0, "set firewall filter PERIM-IN term %d from source-address %s", 10*(j+1), pfx)
		b.line(0, "set firewall filter PERIM-OUT term %d from destination-address %s", 10*(j+1), pfx)
	}

	// Internal address space subsumes the bogon (RFC 1918) space.
	for _, pfx := range []string{"10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16"} {
		b.line(0, "set policy-options prefix-list INTERNAL %s", pfx)
		b.line(0, "set policy-options prefix-list RFC1918 %s", pfx)
	}
	b.line(0, "set policy-options prefix-list INTERNAL 100.%d.0.0/16", 64+d%60)
	return b.String()
}

// wanIndentDevice renders a Cisco-style device.
func wanIndentDevice(role RoleSpec, d int) string {
	rng := deviceRand(role.Name, d)
	lb := wanLoopback(d)
	ntpN := 30 + d%20
	var b builder
	b.line(0, "hostname %s-R%04d", role.Name, 1000+d)
	b.bang()
	b.line(0, "ntp server 10.0.2.123")
	b.line(0, "ntp boot-server 10.0.%d.123", ntpN)
	b.line(0, "logging buffered %d", 8192+d)
	b.line(0, "queue-monitor length limit %d", 5000+3*(d%50))
	b.line(0, "hardware counter rate %d", 5000+3*(d%50))
	b.bang()
	b.line(0, "router isis CORE")
	b.line(1, "lsp-interval %d", ntpN)
	b.bang()
	b.line(0, "interface Loopback0")
	b.line(1, "description router loopback")
	b.line(1, "ip address %s", lb)
	b.bang()
	b.line(0, "tacacs-server source-ip %s", lb)
	b.line(0, "sflow source %s", lb)
	b.line(0, "msdp originator-id %s", lb)
	b.bang()
	for i := 0; i < role.Interfaces; i++ {
		addr := wanAddr(role, d, i)
		b.line(0, "interface HundredGigE0/0/%d", i)
		b.line(1, "description core-link-%s", addr)
		if rng.Intn(400) == 0 {
			b.line(1, "mtu 10.1.1.0/31")
		} else {
			b.line(1, "mtu 9100")
		}
		b.line(1, "ip address %s/31", addr)
		b.line(1, "isis network point-to-point")
		b.bang()
	}
	b.line(0, "router bgp %d", 64512+d)
	b.line(1, "bgp router-id %s", lb)
	b.line(1, "maximum-paths 32")
	for p := 0; p < min(role.PolicyVocab, 24); p++ {
		name := wanName(p)
		b.line(1, "neighbor %s remote-as 65%d", wanAddr(role, d, p%role.Interfaces), 100+p)
		b.line(1, "neighbor %s route-map RM-%s-IN in", wanAddr(role, d, p%role.Interfaces), name)
	}
	b.line(1, "redistribute connected")
	b.line(1, "neighbor 10.254.%d.%d peer-group OPT-A", d%200, 1+d/200)
	b.bang()
	b.line(0, "ip prefix-list INTERNAL")
	b.line(1, "seq 10 permit 10.0.0.0/8")
	b.line(1, "seq 20 permit 172.16.0.0/12")
	b.line(1, "seq 30 permit 192.168.0.0/16")
	b.line(1, "seq 40 permit 100.%d.0.0/16", 64+d%60)
	b.bang()
	b.line(0, "ip prefix-list RFC1918")
	b.line(1, "seq 10 permit 10.0.0.0/8")
	b.line(1, "seq 20 permit 172.16.0.0/12")
	b.line(1, "seq 30 permit 192.168.0.0/16")
	b.bang()
	for p := 0; p < role.PolicyVocab; p++ {
		name := wanName(p)
		b.line(0, "route-map POLICY-%s permit 10", name)
		b.line(1, "match ip address prefix-list INTERNAL")
		b.line(1, "set local-preference %d", 150+p)
		b.bang()
	}
	// Perimeter ACL symmetry.
	for j := 0; j < 6; j++ {
		pfx := wanPerimPrefix(d, j)
		b.line(0, "ip access-list PERIM-IN")
		b.line(1, "seq %d permit ip %s any", 10*(j+1), pfx)
		b.line(0, "ip access-list PERIM-OUT")
		b.line(1, "seq %d permit ip any %s", 10*(j+1), pfx)
	}
	b.bang()
	if rng.Intn(10) > 0 {
		b.line(0, "banner motd maintained by neteng")
		b.bang()
	}
	return b.String()
}

// wanManifest declares the planted invariants of a WAN role.
func wanManifest(role RoleSpec) *Manifest {
	m := &Manifest{
		Rules: []Rule{
			{Category: contracts.CatRelation, Rel: "equals", P1: "router-id [ip4]", P2: "address [ip4]|ip address [ip4]",
				Describe: "the router id is the loopback address"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "prefix-list RFC", P2: "prefix-list INTERNAL",
				Describe: "internal address space subsumes the bogon (RFC 1918) space"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "prefix-list RFC", P2: "prefix-list INTERNAL",
				Describe: "internal address space includes the bogon (RFC 1918) entries"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "PERIM-IN", P2: "PERIM-OUT",
				Describe: "inbound and outbound perimeter filters are symmetric"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "import POLICY-V4-[num]", P2: "import6 POLICY-V6-[num]",
				Describe: "IPv4 BGP policies are paired with IPv6 policies"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "isis lsp-interval [num]", P2: "ntp boot-server [ip4]",
				Describe: "the legacy IGP timer matches the NTP server plan"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "ntp boot-server [ip4]", P2: "isis lsp-interval [num]",
				Describe: "the legacy IGP timer matches the NTP server plan"},
			{Category: contracts.CatRelation, Rel: "endswith", P1: "export-id [num]", P2: "peer-as [num]",
				Describe: "the peer AS encodes the group export id as its suffix"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "peer-as 65[num]", P2: "export-id [num]",
				Describe: "the peer AS suffix is the group export id"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "neighbor [ip4]", P2: "family inet address [pfx4]",
				Describe: "each BGP session is configured over a valid interface"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "neighbor [ip4] remote-as [num]", P2: "ip address [pfx4]",
				Describe: "each BGP session is configured over a valid interface"},
			{Category: contracts.CatRelation, Rel: "contains", P2: "prefix-list INTERNAL",
				Describe: "all addresses fall inside the internal address space"},
			{Category: contracts.CatRelation, Rel: "contains", P2: "prefix-list RFC[num]",
				Describe: "all addresses fall inside the private (RFC 1918) space"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "description core-link-[ip4]", P2: "family inet address [pfx4]", T2: "id",
				Describe: "descriptions name the interface's own address"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "description core-link-[ip4]", P2: "address [pfx4]",
				Describe: "the described address shares the interface subnet"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "description core-link-[ip4]", P2: "ip address [pfx4]",
				Describe: "the described address shares the interface subnet"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "description core-link-[ip4]", P2: "neighbor [ip4]",
				Describe: "BGP neighbors are described core links"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "router-id [ip4]|source-address [ip4]|local-address [ip4]|source-ip [ip4]|sflow source [ip4]|originator-id [ip4]|lo0 unit [num] family inet address [pfx4]|interface Loopback[num]/ip address [ip4]", P2: "router-id [ip4]|source-address [ip4]|local-address [ip4]|source-ip [ip4]|sflow source [ip4]|originator-id [ip4]|lo0 unit [num] family inet address [pfx4]|interface Loopback[num]/ip address [ip4]",
				Describe: "management-plane sources, router ids, and loopbacks agree"},
			{Category: contracts.CatRelation, Rel: "equals", T1: "octet2", T2: "octet2",
				Describe: "the plane octet is shared across the device addressing plan"},
			{Category: contracts.CatRelation, Rel: "equals", T1: "octet3", T2: "octet3",
				Describe: "the device octet is shared across the device addressing plan"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "lo0 unit [num] family inet address [pfx4]", P2: "router-id [ip4]", T1: "id", T2: "str",
				Describe: "the router id is the loopback address"},
			{Category: contracts.CatSequence, P: "seq [num]",
				Describe: "filter entries are numbered in arithmetic sequence"},
			{Category: contracts.CatSequence, P: "term [num]",
				Describe: "filter terms are numbered in arithmetic sequence"},
			{Category: contracts.CatUnique, P: "host-name",
				Describe: "hostnames are unique across the role"},
			{Category: contracts.CatUnique, P: "hostname",
				Describe: "hostnames are unique across the role"},
			{Category: contracts.CatUnique, P: "router-id [ip4]",
				Describe: "router ids are unique across the role"},
			{Category: contracts.CatUnique, P: "lo0 unit [num] family inet address [pfx4]",
				Describe: "loopback addresses are unique across the role"},
			{Category: contracts.CatUnique, P: "interface Loopback[num]/ip address [ip4]",
				Describe: "loopback addresses are unique across the role"},
			{Category: contracts.CatUnique, P: "family inet address [pfx4]",
				Describe: "interface addresses are unique across the role (Table 8)"},
			{Category: contracts.CatUnique, P: "/ip address [pfx4]",
				Describe: "interface addresses are unique across the role (Table 8)"},
			{Category: contracts.CatUnique, P: "router bgp [num]",
				Describe: "AS numbers are unique across the role"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "set interfaces et-", P2: "set interfaces et-",
				Describe: "an interface's lines share its slot number (flat-syntax hierarchy)"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "interface HundredGigE", P2: "interface HundredGigE",
				Describe: "an interface's lines share its slot number"},
			{Category: contracts.CatRelation, Rel: "contains", P2: "lo0 unit [num] family inet address [pfx4]",
				Describe: "loopback-derived addresses fall in the loopback /32"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "PERIM-IN", P2: "PERIM-OUT",
				Describe: "inbound and outbound perimeter filters are symmetric"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "PERIM-OUT", P2: "PERIM-IN",
				Describe: "inbound and outbound perimeter filters are symmetric"},
			{Category: contracts.CatRelation, Rel: "equals", P1: "neighbor [ip4] route-map", P2: "neighbor [ip4] remote-as [num]",
				Describe: "each neighbor's session lines agree on its address"},
			{Category: contracts.CatRelation, Rel: "contains", P1: "neighbor [ip4]", P2: "ip address [pfx4]",
				Describe: "each BGP session is configured over a valid interface"},
			{Category: contracts.CatUnique, P: "description core-link-[ip4]",
				Describe: "described link addresses are unique across the role"},
			{Category: contracts.CatUnique, P: "neighbor [ip4]",
				Describe: "BGP neighbor addresses are unique across the role"},
			{Category: contracts.CatUnique, P: "PERIM-IN term [num] from source-address [pfx4]",
				Describe: "perimeter blocks are allocated per device"},
			{Category: contracts.CatUnique, P: "PERIM-OUT term [num] from destination-address [pfx4]",
				Describe: "perimeter blocks are allocated per device"},
			{Category: contracts.CatUnique, P: "PERIM-IN/seq [num] permit ip [pfx4] any",
				Describe: "perimeter blocks are allocated per device"},
			{Category: contracts.CatUnique, P: "PERIM-OUT/seq [num] permit ip any [pfx4]",
				Describe: "perimeter blocks are allocated per device"},
			{Category: contracts.CatUnique, P: "source-address [ip4]|local-address [ip4]|source-ip [ip4]|sflow source [ip4]|originator-id [ip4]|ldp router-id [ip4]|pim local-address [ip4]",
				Describe: "loopback-derived sources are unique across the role"},
			{Category: contracts.CatUnique, P: "peer-group OPT-A",
				Describe: "option-A gateways are allocated per device"},
			{Category: contracts.CatType, P: "mtu [?]", BadType: "pfx4",
				Describe: "interface MTUs are plain numbers, never prefixes"},
		},
		OrderedPairs: [][2]string{
			{"description core-link-[ip4]", "mtu ["},
			{"mtu [", "ip address ["},
			{"mtu [", "hold-time up ["},
			{"hold-time up [", "unit [num] family inet address ["},
			{"ip address [", "isis network"},
			{"family inet address [", "family iso"},
			{"family iso", "family mpls"},
			{"redistribute connected", "neighbor [ip4] peer-group OPT-A"},
			{"type external", "peer-as ["},
			{"peer-as [", "export-id ["},
			{"export-id [", "import POLICY-V4-"},
			{"import POLICY-V4-[num]", "import6 POLICY-V6-[num]"},
			{"import6 POLICY-V6-[num]", "neighbor ["},
			{"neighbor [ip4] remote-as [num]", "neighbor [ip4] route-map"},
			{"match ip address prefix-list", "set local-preference ["},
			{"bgp router-id [", "maximum-paths ["},
			{"PERIM-IN term [num] from source-address [", "PERIM-OUT term [num] from destination-address ["},
			{"prefix-list INTERNAL 10.", "prefix-list RFC"},
			{"prefix-list INTERNAL 172.", "prefix-list RFC"},
			{"prefix-list INTERNAL 192.", "prefix-list RFC"},
		},
	}
	_ = role
	return m
}
