package synth

import (
	"sort"
	"strings"
	"testing"
)

// uniqueScan records (key, value) pairs and fails the test on the
// first cross-device duplicate. Each key corresponds to one planted
// Unique contract family.
type uniqueScan struct {
	t    *testing.T
	seen map[string]map[string]string // key -> value -> first file
}

func newUniqueScan(t *testing.T) *uniqueScan {
	return &uniqueScan{t: t, seen: map[string]map[string]string{}}
}

func (u *uniqueScan) add(file, key, val string) {
	u.t.Helper()
	m := u.seen[key]
	if m == nil {
		m = map[string]string{}
		u.seen[key] = m
	}
	if first, dup := m[val]; dup {
		u.t.Fatalf("%s: duplicate %s value %q (first seen in %s)", file, key, val, first)
	}
	m[val] = file
}

func (u *uniqueScan) require(key string, want int) {
	u.t.Helper()
	if got := len(u.seen[key]); got != want {
		u.t.Fatalf("collected %d %s values, want %d", got, key, want)
	}
}

// edgeUniqueLines maps a trimmed edge config line to its planted
// Unique family, or ok=false for lines that legitimately repeat.
func edgeUniqueLines(line string) (key, val string, ok bool) {
	// Whole-line families: a constant prefix followed by the planted
	// per-device value, so line uniqueness equals value uniqueness.
	for _, p := range []string{
		"hostname ",
		"ip address ",
		"tacacs-server source-ip ",
		"sflow source ",
		"msdp originator-id ",
		"router-id ",
		"router bgp ",
		"rd ",
		"route-target import 00:",
		"aggregate-address ",
		"ip route vrf Mgmt ",
		"description uplink-",
	} {
		if strings.HasPrefix(line, p) {
			return p, line, true
		}
	}
	// BGP neighbors: SPINES far-ends and OPT-A gateways share the
	// "neighbor [ip4] peer-group" pattern, so their addresses must be
	// jointly unique.
	if strings.HasPrefix(line, "neighbor 10.") {
		return "neighbor", strings.Fields(line)[1], true
	}
	return "", "", false
}

// TestFleetEdgeUniqueness10k regenerates the planted-unique address
// families of a 10k-device edge fleet and asserts none collide. The
// old plan derived loopbacks and management networks from d%250 alone,
// so devices d and d+1000 (same site number, same device octet) were
// identical — this is the regression gate for that bug.
func TestFleetEdgeUniqueness10k(t *testing.T) {
	spec, ok := RoleByName("F2", 1.0)
	if !ok {
		t.Fatal("fleet role F2 not registered")
	}
	if spec.Devices < 10000 {
		t.Fatalf("F2 at scale 1.0 has %d devices, want >= 10000", spec.Devices)
	}
	ds := Generate(spec)
	scan := newUniqueScan(t)
	for _, f := range ds.Configs {
		for _, raw := range strings.Split(string(f.Text), "\n") {
			if key, val, ok := edgeUniqueLines(strings.TrimSpace(raw)); ok {
				scan.add(f.Name, key, val)
			}
		}
	}
	// Every device contributes exactly one loopback, one management
	// aggregate, and three ether-segment identifiers.
	scan.require("router-id ", spec.Devices)
	scan.require("aggregate-address ", spec.Devices)
	scan.require("route-target import 00:", 3*spec.Devices)
}

// TestFleetWanUniqueness10k does the same for the 10k-device flat WAN
// fleet: loopback-derived sources, interface addresses, described
// far-ends, per-group BGP neighbors, and the perimeter blocks whose
// old 203.<d%200>.<8j> plan repeated at 200 devices.
func TestFleetWanUniqueness10k(t *testing.T) {
	spec, ok := RoleByName("F1", 1.0)
	if !ok {
		t.Fatal("fleet role F1 not registered")
	}
	if spec.Devices < 10000 {
		t.Fatalf("F1 at scale 1.0 has %d devices, want >= 10000", spec.Devices)
	}
	ds := Generate(spec)
	scan := newUniqueScan(t)
	for _, f := range ds.Configs {
		for _, raw := range strings.Split(string(f.Text), "\n") {
			line := strings.TrimSpace(raw)
			for _, p := range []string{
				"set system host-name ",
				"set routing-options router-id ",
				"set system tacacs-server source-address ",
				"set protocols msdp local-address ",
				"set snmp trap-options source-address ",
				"set system syslog source-address ",
				"set protocols ldp router-id ",
				"set protocols pim local-address ",
			} {
				if strings.HasPrefix(line, p) {
					scan.add(f.Name, p, line)
				}
			}
			// Loopback /32s and interface /31s share the planted
			// "family inet address [pfx4]" uniqueness.
			if i := strings.Index(line, " family inet address "); i >= 0 {
				scan.add(f.Name, "family inet address", line[i:])
			}
			if i := strings.Index(line, " description core-link-"); i >= 0 {
				scan.add(f.Name, "core-link", line[i:])
			}
			// Group neighbors repeat interface addresses across groups
			// within a device by design; uniqueness is per group
			// pattern, so the group name is part of the key.
			if fs := strings.Fields(line); len(fs) == 7 && fs[2] == "bgp" && fs[5] == "neighbor" {
				scan.add(f.Name, "neighbor/"+fs[4], fs[6])
			}
			if strings.HasPrefix(line, "set firewall filter PERIM-IN term ") {
				scan.add(f.Name, "PERIM-IN", strings.TrimPrefix(line, "set firewall filter PERIM-IN "))
			}
			if strings.HasPrefix(line, "set firewall filter PERIM-OUT term ") {
				scan.add(f.Name, "PERIM-OUT", strings.TrimPrefix(line, "set firewall filter PERIM-OUT "))
			}
		}
	}
	scan.require("set routing-options router-id ", spec.Devices)
	scan.require("PERIM-IN", 6*spec.Devices)
	scan.require("family inet address", spec.Devices*(1+spec.Interfaces))
}

// TestFleetIndentWanUniqueness covers the indent-dialect WAN formulas
// past their old collision points: OPT-A gateways repeated at 200
// devices and perimeter blocks at 200 devices.
func TestFleetIndentWanUniqueness(t *testing.T) {
	spec := RoleSpec{Name: "WX", Network: "wan", Devices: 1200, Syntax: SyntaxIndent, Interfaces: 4, PolicyVocab: 4}
	ds := Generate(spec)
	scan := newUniqueScan(t)
	for _, f := range ds.Configs {
		for _, raw := range strings.Split(string(f.Text), "\n") {
			line := strings.TrimSpace(raw)
			if strings.HasPrefix(line, "hostname ") || strings.HasPrefix(line, "ip address ") {
				scan.add(f.Name, "addr", line)
			}
			if strings.HasPrefix(line, "neighbor 10.254.") {
				scan.add(f.Name, "OPT-A", strings.Fields(line)[1])
			}
			// Perimeter ACL entries carry a "permit ip" tuple; the
			// prefix-list entries that repeat by design do not.
			if strings.HasPrefix(line, "seq ") && strings.Contains(line, " permit ip ") {
				fs := strings.Fields(line)
				dir := "PERIM-IN"
				if fs[4] == "any" {
					dir = "PERIM-OUT"
				}
				scan.add(f.Name, dir, line)
			}
		}
	}
	scan.require("OPT-A", spec.Devices)
	scan.require("PERIM-IN", 6*spec.Devices)
	scan.require("PERIM-OUT", 6*spec.Devices)
}

// TestFleetFileNamesSortInDeviceOrder asserts the zero-padded file
// names sort lexicographically in device order at fleet scale: the
// engine orders sources by path, and the old fixed %03d/%04d widths
// put device 1000 before device 099.
func TestFleetFileNamesSortInDeviceOrder(t *testing.T) {
	for _, spec := range FleetRoles(1.0) {
		ds := Generate(spec)
		names := make([]string, len(ds.Configs))
		for i, f := range ds.Configs {
			names[i] = f.Name
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("%s: generated file names are not in lexicographic device order", spec.Name)
		}
	}
}

// TestFleetRoleByName asserts the fleet tiers resolve by name without
// joining the Table 3 sweep set.
func TestFleetRoleByName(t *testing.T) {
	if _, ok := RoleByName("F1", 0.01); !ok {
		t.Fatal("RoleByName(F1) failed")
	}
	if _, ok := RoleByName("F2", 0.01); !ok {
		t.Fatal("RoleByName(F2) failed")
	}
	for _, r := range Roles(1.0) {
		if r.Name == "F1" || r.Name == "F2" {
			t.Fatalf("fleet tier %s leaked into Roles", r.Name)
		}
	}
}
