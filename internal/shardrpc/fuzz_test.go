package shardrpc

import (
	"bytes"
	"io"
	"testing"

	"concord/internal/artifact"
)

// FuzzShardFrame feeds arbitrary bytes to the framed Task and Result
// readers and the raw payload decoders. The contract mirrors
// FuzzBundleManifest: truncated, bit-flipped, or version-skewed frames
// must decode to an error — never a panic, and never a partial value.
func FuzzShardFrame(f *testing.F) {
	task := EncodeTask(&Task{Shard: 2, Attempt: 1, Sources: []NamedBlob{
		{Name: "r0.cfg", Text: []byte("hostname r0\nrouter-id 10.0.0.1\n")},
	}})
	res := EncodeResult(testResult())
	for _, payload := range [][]byte{task, res} {
		for _, magic := range [][4]byte{TaskMagic, ResultMagic} {
			valid := artifact.EncodeFrame(magic, SchemaVersion, payload)
			f.Add(valid)
			f.Add(valid[:len(valid)/2])
			f.Add(valid[:10])
			skew := artifact.EncodeFrame(magic, SchemaVersion+7, payload)
			f.Add(skew)
			flip := append([]byte(nil), valid...)
			flip[len(flip)/2] ^= 0x40
			f.Add(flip)
			head := append([]byte(nil), valid...)
			head[5] ^= 0x01
			f.Add(head)
		}
		f.Add(payload) // bare payload without a frame header
	}
	f.Add([]byte{})
	f.Add([]byte("CCST garbage that is not a frame"))
	f.Add([]byte("CCSR garbage that is not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if task, err := ReadTask(bytes.NewReader(data)); err == nil {
			if task == nil {
				t.Fatal("ReadTask: nil task without error")
			}
		} else if err == io.EOF && len(data) > 0 {
			t.Fatal("ReadTask: io.EOF on a non-empty defective stream")
		}
		if res, err := ReadResult(bytes.NewReader(data)); err == nil {
			if res == nil {
				t.Fatal("ReadResult: nil result without error")
			}
		}
		// The raw decoders guard the same boundary one layer down.
		if task, err := DecodeTask(data); err == nil && task == nil {
			t.Fatal("DecodeTask: nil task without error")
		}
		if res, err := DecodeResult(data); err == nil && res == nil {
			t.Fatal("DecodeResult: nil result without error")
		}
		if job, err := DecodeJob(data); err == nil && job == nil {
			t.Fatal("DecodeJob: nil job without error")
		}
	})
}
