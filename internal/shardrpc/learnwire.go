// Learn-result frames (CCSL): the wire form of one shard's mining
// evidence. A learn worker folds its corpus slice into a
// mining.StatsAccumulator and ships the exported AccumulatorState —
// every string lives in a dictionary and is referenced by 1-based ID,
// so worker-process intern IDs never cross the wire; the parent
// rebinds every reference onto its own intern table through an
// intern.Translator at import. Export order is canonical, so equal
// accumulators always encode to equal bytes, and the whole frame rides
// the same checksummed envelope as check results: a torn or corrupt
// frame errors at the frame layer and is retried by the pool, never
// half-applied.
package shardrpc

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"concord/internal/artifact"
	"concord/internal/diag"
	"concord/internal/mining"
)

// LearnResult is one shard's complete learn outcome. Err, Stack, Lost,
// and Diags carry the same failure taxonomy as the check Result: a
// non-empty Err is a deterministic in-band failure the parent never
// retries; Lost is a worker-contained whole-shard panic in lenient
// mode. State is nil exactly when the shard produced no evidence (Err
// or Lost).
type LearnResult struct {
	Shard int
	Err   string
	Stack string
	Lost  bool
	// State is the shard's exported mining evidence.
	State *mining.AccumulatorState
	// Skipped, Lines, and Patterns are the shard's corpus statistics
	// (ProcessStats inputs), mirroring the check Result fields.
	Skipped  int
	Lines    int
	Patterns map[string]int
	Diags    []diag.Diagnostic
}

// ShardIndex identifies the shard this result answers for (the pool's
// echo check).
func (res *LearnResult) ShardIndex() int { return res.Shard }

// ErrText returns the in-band failure text, empty on success.
func (res *LearnResult) ErrText() string { return res.Err }

// ShardIndex identifies the shard this result answers for.
func (res *Result) ShardIndex() int { return res.Shard }

// ErrText returns the in-band failure text, empty on success.
func (res *Result) ErrText() string { return res.Err }

// EncodeLearnResult serializes a LearnResult payload (frame not
// included). Map keys are encoded in sorted order so the same result
// always encodes to the same bytes.
func EncodeLearnResult(res *LearnResult) []byte {
	w := &writer{}
	w.uvarint(uint64(res.Shard))
	w.str(res.Err)
	w.str(res.Stack)
	w.bool(res.Lost)
	w.bool(res.State != nil)
	if res.State != nil {
		encodeAccState(w, res.State)
	}
	w.uvarint(uint64(res.Skipped))
	w.uvarint(uint64(res.Lines))
	encodePatternCounts(w, res.Patterns)
	diags, _ := json.Marshal(res.Diags)
	w.bytes(diags)
	return w.b
}

// DecodeLearnResult parses a LearnResult payload, returning an error on
// any defect — a malformed field never yields a partial result.
func DecodeLearnResult(payload []byte) (*LearnResult, error) {
	r := &reader{b: payload}
	res := &LearnResult{}
	res.Shard = int(r.uvarint())
	res.Err = r.str()
	res.Stack = r.str()
	res.Lost = r.bool()
	if r.bool() {
		res.State = decodeAccState(r)
	}
	res.Skipped = int(r.uvarint())
	res.Lines = int(r.uvarint())
	res.Patterns = decodePatternCounts(r)
	diags := r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(diags) > 0 {
		if err := json.Unmarshal(diags, &res.Diags); err != nil {
			return nil, fmt.Errorf("shardrpc: bad diagnostics JSON: %w", err)
		}
	}
	return res, nil
}

// WriteLearnResult frames and writes a LearnResult to w.
func WriteLearnResult(w io.Writer, res *LearnResult) error {
	return artifact.WriteFrame(w, LearnResultMagic, SchemaVersion, EncodeLearnResult(res))
}

// ReadLearnResult reads and decodes one framed LearnResult from r.
func ReadLearnResult(r io.Reader) (*LearnResult, error) {
	payload, err := artifact.ReadFrame(r, LearnResultMagic, SchemaVersion, MaxLearnResultBytes)
	if err != nil {
		return nil, err
	}
	return DecodeLearnResult(payload)
}

func encodePatternCounts(w *writer, patterns map[string]int) {
	pats := sortedMapKeys(patterns)
	w.uvarint(uint64(len(pats)))
	for _, p := range pats {
		w.str(p)
		w.uvarint(uint64(patterns[p]))
	}
}

func decodePatternCounts(r *reader) map[string]int {
	n := r.count()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make(map[string]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		p := r.str()
		out[p] = int(r.uvarint())
	}
	return out
}

func sortedMapKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- AccumulatorState codec ---
//
// The record layouts mirror mining's Acc* types field for field. All
// counters are non-negative uvarints; string references are dictionary
// IDs whose range the importing miner validates (intern.Translator), so
// a corrupt ID surfaces as an import error rather than a panic; scores
// are fixed-width IEEE 754 bits.

func encodeAccState(w *writer, st *mining.AccumulatorState) {
	w.uvarint(uint64(st.NConfigs))
	w.uvarint(uint64(len(st.Strings)))
	for _, s := range st.Strings {
		w.str(s)
	}
	w.uvarint(uint64(len(st.Patterns)))
	for _, p := range st.Patterns {
		w.uvarint(uint64(p.Pattern))
		w.uvarint(uint64(p.Display))
		w.uvarint(uint64(p.ConfigCount))
		w.uvarint(uint64(p.LineCount))
	}
	w.uvarint(uint64(len(st.Pairs)))
	for _, p := range st.Pairs {
		w.uvarint(uint64(p.First))
		w.uvarint(uint64(p.Second))
		w.uvarint(uint64(p.DisplayFirst))
		w.uvarint(uint64(p.DisplaySecond))
		w.uvarint(uint64(p.HoldConfigs))
	}
	w.uvarint(uint64(len(st.FirstOccs)))
	for _, f := range st.FirstOccs {
		w.uvarint(uint64(f.Pattern))
		w.uvarint(uint64(f.Configs))
	}
	w.uvarint(uint64(len(st.Types)))
	for _, t := range st.Types {
		w.uvarint(uint64(t.Agnostic))
		w.uvarint(uint64(t.Total))
		w.uvarint(uint64(len(t.Params)))
		for _, p := range t.Params {
			w.uvarint(uint64(len(p.Uses)))
			for _, u := range p.Uses {
				w.uvarint(uint64(u.Type))
				w.uvarint(uint64(u.Lines))
			}
		}
	}
	w.uvarint(uint64(len(st.Seqs)))
	for _, s := range st.Seqs {
		w.uvarint(uint64(s.Pattern))
		w.uvarint(uint64(s.Idx))
		w.uvarint(uint64(s.Display))
		w.uvarint(uint64(s.ConfigsWith2))
		w.uvarint(uint64(s.ConfigsSeq))
	}
	w.uvarint(uint64(len(st.Uniqs)))
	for _, u := range st.Uniqs {
		w.uvarint(uint64(u.Pattern))
		w.uvarint(uint64(u.Idx))
		w.uvarint(uint64(u.Display))
		w.uvarint(uint64(u.TotalValues))
		w.uvarint(uint64(len(u.Values)))
		for _, v := range u.Values {
			w.uvarint(uint64(v.Key))
			w.uvarint(uint64(v.Count))
		}
	}
	w.uvarint(uint64(len(st.Constants)))
	for _, c := range st.Constants {
		w.uvarint(uint64(c.Text))
		w.uvarint(uint64(c.ConfigCount))
	}
	w.uvarint(uint64(len(st.Cands)))
	for _, c := range st.Cands {
		w.uvarint(uint64(c.P1))
		w.uvarint(uint64(c.I1))
		w.uvarint(uint64(c.T1))
		w.uvarint(uint64(c.Rel))
		w.uvarint(uint64(c.P2))
		w.uvarint(uint64(c.I2))
		w.uvarint(uint64(c.T2))
		w.uvarint(uint64(c.Display1))
		w.uvarint(uint64(c.Display2))
		w.uvarint(uint64(c.HoldConfigs))
		w.uvarint(uint64(len(c.Scores)))
		for _, s := range c.Scores {
			w.uvarint(uint64(s.Key))
			w.f64(s.Score)
		}
	}
}

func decodeAccState(r *reader) *mining.AccumulatorState {
	st := &mining.AccumulatorState{}
	st.NConfigs = int(r.uvarint())
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.Strings = append(st.Strings, r.str())
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.Patterns = append(st.Patterns, mining.AccPattern{
			Pattern: mining.StrID(r.uvarint()), Display: mining.StrID(r.uvarint()),
			ConfigCount: int(r.uvarint()), LineCount: int(r.uvarint()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.Pairs = append(st.Pairs, mining.AccPair{
			First: mining.StrID(r.uvarint()), Second: mining.StrID(r.uvarint()),
			DisplayFirst: mining.StrID(r.uvarint()), DisplaySecond: mining.StrID(r.uvarint()),
			HoldConfigs: int(r.uvarint()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.FirstOccs = append(st.FirstOccs, mining.AccFirstOcc{
			Pattern: mining.StrID(r.uvarint()), Configs: int(r.uvarint()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		t := mining.AccType{Agnostic: mining.StrID(r.uvarint()), Total: int(r.uvarint())}
		for j, np := 0, r.count(); j < np && r.err == nil; j++ {
			p := mining.AccTypeParam{}
			for k, nu := 0, r.count(); k < nu && r.err == nil; k++ {
				p.Uses = append(p.Uses, mining.AccTypeUse{
					Type: mining.StrID(r.uvarint()), Lines: int(r.uvarint()),
				})
			}
			t.Params = append(t.Params, p)
		}
		st.Types = append(st.Types, t)
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.Seqs = append(st.Seqs, mining.AccSeq{
			Pattern: mining.StrID(r.uvarint()), Idx: int(r.uvarint()),
			Display:      mining.StrID(r.uvarint()),
			ConfigsWith2: int(r.uvarint()), ConfigsSeq: int(r.uvarint()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		u := mining.AccUniq{
			Pattern: mining.StrID(r.uvarint()), Idx: int(r.uvarint()),
			Display: mining.StrID(r.uvarint()), TotalValues: int(r.uvarint()),
		}
		for j, nv := 0, r.count(); j < nv && r.err == nil; j++ {
			u.Values = append(u.Values, mining.AccValueCount{
				Key: mining.StrID(r.uvarint()), Count: int(r.uvarint()),
			})
		}
		st.Uniqs = append(st.Uniqs, u)
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.Constants = append(st.Constants, mining.AccConstant{
			Text: mining.StrID(r.uvarint()), ConfigCount: int(r.uvarint()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		c := mining.AccCand{
			P1: mining.StrID(r.uvarint()), I1: int(r.uvarint()),
			T1:  mining.StrID(r.uvarint()),
			Rel: mining.StrID(r.uvarint()),
			P2:  mining.StrID(r.uvarint()), I2: int(r.uvarint()),
			T2:       mining.StrID(r.uvarint()),
			Display1: mining.StrID(r.uvarint()), Display2: mining.StrID(r.uvarint()),
			HoldConfigs: int(r.uvarint()),
		}
		for j, ns := 0, r.count(); j < ns && r.err == nil; j++ {
			c.Scores = append(c.Scores, mining.AccScore{
				Key: mining.StrID(r.uvarint()), Score: r.f64(),
			})
		}
		st.Cands = append(st.Cands, c)
	}
	return st
}
