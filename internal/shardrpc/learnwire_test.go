package shardrpc

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"concord/internal/artifact"
	"concord/internal/diag"
	"concord/internal/mining"
)

func testLearnJob() *Job {
	job := testJob()
	job.Learn = true
	job.SetJSON = nil
	job.Support = 5
	job.Confidence = 0.96
	job.ScoreThreshold = 8
	job.MaxFanout = 64
	job.ConstantLearning = true
	job.Categories = []string{"present", "unique"}
	return job
}

func testLearnResult() *LearnResult {
	return &LearnResult{
		Shard: 2,
		State: &mining.AccumulatorState{
			NConfigs: 3,
			Strings:  []string{"/router bgp [num]", "/router bgp *", "/vlan [num]", "65000", "num", "suffix", "eq"},
			Patterns: []mining.AccPattern{
				{Pattern: 1, Display: 2, ConfigCount: 3, LineCount: 3},
				{Pattern: 3, Display: 3, ConfigCount: 2, LineCount: 4},
			},
			Pairs:     []mining.AccPair{{First: 1, Second: 3, DisplayFirst: 2, DisplaySecond: 3, HoldConfigs: 2}},
			FirstOccs: []mining.AccFirstOcc{{Pattern: 1, Configs: 3}},
			Types: []mining.AccType{{Agnostic: 2, Total: 3, Params: []mining.AccTypeParam{
				{Uses: []mining.AccTypeUse{{Type: 5, Lines: 3}}},
				{}, // a parameter position with no observed uses
			}}},
			Seqs:      []mining.AccSeq{{Pattern: 3, Idx: 0, Display: 3, ConfigsWith2: 2, ConfigsSeq: 1}},
			Uniqs:     []mining.AccUniq{{Pattern: 1, Idx: 0, Display: 2, TotalValues: 3, Values: []mining.AccValueCount{{Key: 4, Count: 3}}}},
			Constants: []mining.AccConstant{{Text: 4, ConfigCount: 3}},
			Cands: []mining.AccCand{{
				P1: 1, I1: 0, T1: 6, Rel: 7, P2: 3, I2: 0, T2: 6,
				Display1: 2, Display2: 3, HoldConfigs: 2,
				Scores: []mining.AccScore{{Key: 4, Score: 3.5}},
			}},
		},
		Skipped:  1,
		Lines:    42,
		Patterns: map[string]int{"/router bgp [num]": 1, "/vlan [num]": 1},
		Diags: []diag.Diagnostic{{
			Severity: diag.SevError, Stage: "mine", Source: "r2.cfg",
			Message: "recovered panic", Cause: errors.New("boom"), Stack: "stack...",
		}},
	}
}

// TestLearnWireRoundTrip pushes a learn Job and a CCSL learn result
// through Write and Read and requires the decoded values to match
// field for field — the exported accumulator state included.
func TestLearnWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	job := testLearnJob()
	res := testLearnResult()
	if err := WriteJob(&buf, job); err != nil {
		t.Fatal(err)
	}
	if err := WriteLearnResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	gotJob, err := ReadJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A learn job's absent SetJSON decodes as empty, which is equivalent.
	if len(gotJob.SetJSON) == 0 {
		gotJob.SetJSON = nil
	}
	if !reflect.DeepEqual(gotJob, job) {
		t.Errorf("learn job round-trip diverged:\n got %+v\nwant %+v", gotJob, job)
	}
	gotRes, err := ReadLearnResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Diags[0].Cause == nil || gotRes.Diags[0].Cause.Error() != "boom" {
		t.Errorf("diagnostic cause lost: %+v", gotRes.Diags[0])
	}
	gotRes.Diags[0].Cause, res.Diags[0].Cause = nil, nil
	if !reflect.DeepEqual(gotRes, res) {
		t.Errorf("learn result round-trip diverged:\n got %+v\nwant %+v", gotRes, res)
	}
	if _, err := ReadLearnResult(&buf); err != io.EOF {
		t.Errorf("drained stream = %v, want io.EOF", err)
	}
}

// TestLearnResultLostRoundTrip covers the stateless shapes: a lost
// shard and an in-band error carry no accumulator state, and State
// must decode as nil (which the parent treats as shard loss), never as
// a zero-valued accumulator.
func TestLearnResultLostRoundTrip(t *testing.T) {
	for _, res := range []*LearnResult{
		{Shard: 1, Lost: true, Diags: []diag.Diagnostic{{Severity: diag.SevError, Stage: "mine", Source: "shard 1", Message: "recovered panic"}}},
		{Shard: 4, Err: "core: mine stage aborted (strict): boom", Stack: "stack..."},
	} {
		var buf bytes.Buffer
		if err := WriteLearnResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		got, err := ReadLearnResult(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != nil {
			t.Errorf("stateless result decoded with State = %+v, want nil", got.State)
		}
		if got.Shard != res.Shard || got.Err != res.Err || got.Lost != res.Lost {
			t.Errorf("stateless round-trip diverged: got %+v, want %+v", got, res)
		}
	}
}

// TestLearnWireDeterministicEncoding requires EncodeLearnResult to be
// a pure function of the value, map iteration order notwithstanding.
func TestLearnWireDeterministicEncoding(t *testing.T) {
	a := EncodeLearnResult(testLearnResult())
	for i := 0; i < 16; i++ {
		if b := EncodeLearnResult(testLearnResult()); !bytes.Equal(a, b) {
			t.Fatal("EncodeLearnResult is not deterministic across runs")
		}
	}
}

// FuzzLearnFrame feeds arbitrary bytes to the framed CCSL reader and
// the raw decoder: truncated, bit-flipped, or version-skewed learn
// frames must decode to an error — never a panic, and never a
// silently partial accumulator state.
func FuzzLearnFrame(f *testing.F) {
	payload := EncodeLearnResult(testLearnResult())
	valid := artifact.EncodeFrame(LearnResultMagic, SchemaVersion, payload)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:10])
	f.Add(artifact.EncodeFrame(LearnResultMagic, SchemaVersion+7, payload))
	f.Add(artifact.EncodeFrame(ResultMagic, SchemaVersion, payload))
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	head := append([]byte(nil), valid...)
	head[5] ^= 0x01
	f.Add(head)
	f.Add(payload) // bare payload without a frame header
	f.Add([]byte{})
	f.Add([]byte("CCSL garbage that is not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if res, err := ReadLearnResult(bytes.NewReader(data)); err == nil {
			if res == nil {
				t.Fatal("ReadLearnResult: nil result without error")
			}
		} else if err == io.EOF && len(data) > 0 {
			t.Fatal("ReadLearnResult: io.EOF on a non-empty defective stream")
		}
		if res, err := DecodeLearnResult(data); err == nil && res == nil {
			t.Fatal("DecodeLearnResult: nil result without error")
		}
	})
}
