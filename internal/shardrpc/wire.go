// Package shardrpc is the wire protocol between a sharded check run
// and its worker processes. The parent serializes the run's check
// configuration once as a Job, then streams one Task per shard over
// the worker's stdin and reads one Result per Task from its stdout.
// Every message travels inside an artifact frame (magic, schema,
// length, FNV-1a checksum — see internal/artifact/frame.go), so a
// truncated pipe, a torn write, or a crashed worker mid-frame is
// detected before a byte of payload is parsed, never half-applied.
//
// The payload encoding reuses the artifact codec idiom: uvarint counts
// bounded by the remaining input, length-prefixed strings, a sticky
// decode error, and an exact trailing-bytes check. Everything that
// crosses the wire is plain values — names, violation fields, site
// lists, coverage counts — never process-local state like intern IDs
// or compiled patterns, which is what keeps a distributed run
// byte-identical to the in-process driver: the parent merges worker
// Results through exactly the code path that merges in-process shard
// results.
package shardrpc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
)

// Frame magics for the four message kinds. CCS = Concord Shard.
var (
	JobMagic         = [4]byte{'C', 'C', 'S', 'J'}
	TaskMagic        = [4]byte{'C', 'C', 'S', 'T'}
	ResultMagic      = [4]byte{'C', 'C', 'S', 'R'}
	LearnResultMagic = [4]byte{'C', 'C', 'S', 'L'}
)

// SchemaVersion is the wire schema; any change to the encodings below
// must bump it so a version-skewed worker fails loudly at the frame
// layer instead of decoding garbage. Version 2 added the learn task
// kind: the Job learn fields and the CCSL learn-result frame.
const SchemaVersion = 2

// Frame payload ceilings. Tasks carry raw config text and results can
// carry a fleet shard's violations or serialized mining evidence, so
// all are generous; the limits exist to bound what a corrupt length
// field can make ReadFrame allocate.
const (
	MaxJobBytes         uint64 = 1 << 30
	MaxTaskBytes        uint64 = 1 << 30
	MaxResultBytes      uint64 = 1 << 30
	MaxLearnResultBytes uint64 = 1 << 30
)

// NamedBlob is one named input file (a configuration or metadata
// document) in transit.
type NamedBlob struct {
	Name string
	Text []byte
}

// TokenSpec is the serializable subset of lexer.TokenSpec. Custom
// Parse funcs cannot cross a process boundary; the engine rejects the
// process backend when any are present.
type TokenSpec struct {
	Name          string
	Pattern       string
	NoDigitBefore bool
	WordBoundary  bool
}

// Job carries everything a worker needs to reconstruct the parent's
// check pipeline: the options that affect processing and checking, the
// contract set (canonical JSON), the metadata corpus, and the shared
// artifact cache directory. One Job is written per worker process,
// immediately after spawn.
type Job struct {
	ContextEmbedding bool
	LinearScan       bool
	Strict           bool
	LearnBaseline    bool
	Incremental      bool
	// LexCacheSize may be negative (cache disabled), hence the signed
	// zig-zag encoding.
	LexCacheSize int
	MaxFileSize  int
	MaxLineLen   int
	MaxDepth     int
	MaxLines     int
	// CacheDir is the parent's artifact cache directory, shared with
	// workers (the cache's atomic temp+rename stores are multi-process
	// safe); empty means no cache.
	CacheDir   string
	SetJSON    []byte
	Meta       []NamedBlob
	UserTokens []TokenSpec
	// Learn selects the learn task kind: the worker folds each Task's
	// sources into a mining accumulator and answers with a CCSL
	// learn-result frame instead of running the check pipeline (SetJSON
	// is empty; the fields below configure the worker's miner).
	Learn            bool
	Support          int
	Confidence       float64
	ScoreThreshold   float64
	MaxFanout        int
	ConstantLearning bool
	// Categories restricts learning, by category name; empty learns
	// all.
	Categories []string
}

// Task is one shard dispatch: the contiguous corpus slice to check.
// Attempt counts prior dispatches of the same shard (retries and
// speculative re-runs), so test fault hooks can fire on the first
// attempt only.
type Task struct {
	Shard   int
	Attempt int
	Sources []NamedBlob
}

// Coverage is one configuration's per-line coverage counts.
type Coverage struct {
	SourceLines int
	Covered     int
	ByCategory  map[contracts.Category]int
}

// ConfigResult is one configuration's check outcome, in shard order.
// Contrib is the configuration's unique-contract value sites — the
// serialized UniqueAccumulator entry the parent replays through
// AddSites so Combiner.Reduce works across the process boundary.
type ConfigResult struct {
	Name       string
	Violations []contracts.Violation
	// Cov is nil when this configuration's check panicked and was
	// contained (lenient mode), mirroring the in-process shard.
	Cov      *Coverage
	CheckHit bool
	LexHit   bool
	// HashHex is the config's content hash (artifact cache manifest);
	// empty when the config cannot participate in caching.
	HashHex string
	Contrib map[string][]contracts.UniqueSite
}

// Result is one shard's complete outcome. A non-empty Err reports a
// deterministic in-band failure (a contained whole-shard panic or a
// strict-mode abort inside the worker); the parent maps it onto the
// shard-containment path and never retries it — retrying a
// deterministic fault would just repeat it.
type Result struct {
	Shard int
	Err   string
	Stack string
	// Lost reports the worker contained a whole-shard panic in lenient
	// mode: Diags carries the containment diagnostic and the parent
	// drops the shard exactly as the in-process driver would.
	Lost     bool
	Configs  []ConfigResult
	Skipped  int
	Lines    int
	Patterns map[string]int
	Diags    []diag.Diagnostic
}

// --- codec primitives (artifact codec idiom) ---

type writer struct {
	b []byte
}

func (w *writer) uvarint(u uint64) { w.b = binary.AppendUvarint(w.b, u) }

func (w *writer) varint(i int64) { w.b = binary.AppendVarint(w.b, i) }

func (w *writer) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// f64 encodes a float64 as its fixed-width little-endian IEEE 754 bits:
// exact round-trip, no formatting ambiguity.
func (w *writer) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.b = append(w.b, b...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("shardrpc: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	i, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("shardrpc: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return i
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail("shardrpc: truncated bool at offset %d", r.off)
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail("shardrpc: bad bool value %d at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// count reads a uvarint bounded by the remaining input, so a corrupt
// length can never drive a huge allocation.
func (r *reader) count() int {
	u := r.uvarint()
	if r.err == nil && u > uint64(len(r.b)-r.off) {
		r.fail("shardrpc: count %d exceeds remaining input %d", u, len(r.b)-r.off)
		return 0
	}
	return int(u)
}

func (r *reader) str() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes() []byte {
	n := r.count()
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:r.off+n])
	r.off += n
	return b
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("shardrpc: truncated float64 at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("shardrpc: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// --- Job ---

// EncodeJob serializes a Job payload (frame not included).
func EncodeJob(j *Job) []byte {
	w := &writer{}
	w.bool(j.ContextEmbedding)
	w.bool(j.LinearScan)
	w.bool(j.Strict)
	w.bool(j.LearnBaseline)
	w.bool(j.Incremental)
	w.varint(int64(j.LexCacheSize))
	w.uvarint(uint64(j.MaxFileSize))
	w.uvarint(uint64(j.MaxLineLen))
	w.uvarint(uint64(j.MaxDepth))
	w.uvarint(uint64(j.MaxLines))
	w.str(j.CacheDir)
	w.bytes(j.SetJSON)
	w.uvarint(uint64(len(j.Meta)))
	for _, m := range j.Meta {
		w.str(m.Name)
		w.bytes(m.Text)
	}
	w.uvarint(uint64(len(j.UserTokens)))
	for _, t := range j.UserTokens {
		w.str(t.Name)
		w.str(t.Pattern)
		w.bool(t.NoDigitBefore)
		w.bool(t.WordBoundary)
	}
	w.bool(j.Learn)
	w.uvarint(uint64(j.Support))
	w.f64(j.Confidence)
	w.f64(j.ScoreThreshold)
	w.uvarint(uint64(j.MaxFanout))
	w.bool(j.ConstantLearning)
	w.uvarint(uint64(len(j.Categories)))
	for _, c := range j.Categories {
		w.str(c)
	}
	return w.b
}

// DecodeJob parses a Job payload, returning an error on any defect.
func DecodeJob(payload []byte) (*Job, error) {
	r := &reader{b: payload}
	j := &Job{}
	j.ContextEmbedding = r.bool()
	j.LinearScan = r.bool()
	j.Strict = r.bool()
	j.LearnBaseline = r.bool()
	j.Incremental = r.bool()
	j.LexCacheSize = int(r.varint())
	j.MaxFileSize = int(r.uvarint())
	j.MaxLineLen = int(r.uvarint())
	j.MaxDepth = int(r.uvarint())
	j.MaxLines = int(r.uvarint())
	j.CacheDir = r.str()
	j.SetJSON = r.bytes()
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		j.Meta = append(j.Meta, NamedBlob{Name: r.str(), Text: r.bytes()})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		t := TokenSpec{Name: r.str(), Pattern: r.str()}
		t.NoDigitBefore = r.bool()
		t.WordBoundary = r.bool()
		j.UserTokens = append(j.UserTokens, t)
	}
	j.Learn = r.bool()
	j.Support = int(r.uvarint())
	j.Confidence = r.f64()
	j.ScoreThreshold = r.f64()
	j.MaxFanout = int(r.uvarint())
	j.ConstantLearning = r.bool()
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		j.Categories = append(j.Categories, r.str())
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return j, nil
}

// WriteJob frames and writes a Job to w.
func WriteJob(w io.Writer, j *Job) error {
	return artifact.WriteFrame(w, JobMagic, SchemaVersion, EncodeJob(j))
}

// ReadJob reads and decodes one framed Job from r. A clean EOF before
// the frame is io.EOF.
func ReadJob(r io.Reader) (*Job, error) {
	payload, err := artifact.ReadFrame(r, JobMagic, SchemaVersion, MaxJobBytes)
	if err != nil {
		return nil, err
	}
	return DecodeJob(payload)
}

// --- Task ---

// EncodeTask serializes a Task payload (frame not included).
func EncodeTask(t *Task) []byte {
	w := &writer{}
	w.uvarint(uint64(t.Shard))
	w.uvarint(uint64(t.Attempt))
	w.uvarint(uint64(len(t.Sources)))
	for _, s := range t.Sources {
		w.str(s.Name)
		w.bytes(s.Text)
	}
	return w.b
}

// DecodeTask parses a Task payload, returning an error on any defect.
func DecodeTask(payload []byte) (*Task, error) {
	r := &reader{b: payload}
	t := &Task{}
	t.Shard = int(r.uvarint())
	t.Attempt = int(r.uvarint())
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		t.Sources = append(t.Sources, NamedBlob{Name: r.str(), Text: r.bytes()})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTask frames and writes a Task to w.
func WriteTask(w io.Writer, t *Task) error {
	return artifact.WriteFrame(w, TaskMagic, SchemaVersion, EncodeTask(t))
}

// ReadTask reads and decodes one framed Task from r. A clean EOF —
// the parent closed the pipe, no more shards — is io.EOF, the
// worker's signal to exit.
func ReadTask(r io.Reader) (*Task, error) {
	payload, err := artifact.ReadFrame(r, TaskMagic, SchemaVersion, MaxTaskBytes)
	if err != nil {
		return nil, err
	}
	return DecodeTask(payload)
}

// --- Result ---

// EncodeResult serializes a Result payload (frame not included). Map
// keys are encoded in sorted order so the same result always encodes
// to the same bytes.
func EncodeResult(res *Result) []byte {
	w := &writer{}
	w.uvarint(uint64(res.Shard))
	w.str(res.Err)
	w.str(res.Stack)
	w.bool(res.Lost)
	w.uvarint(uint64(len(res.Configs)))
	for i := range res.Configs {
		encodeConfigResult(w, &res.Configs[i])
	}
	w.uvarint(uint64(res.Skipped))
	w.uvarint(uint64(res.Lines))
	pats := make([]string, 0, len(res.Patterns))
	for p := range res.Patterns {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	w.uvarint(uint64(len(pats)))
	for _, p := range pats {
		w.str(p)
		w.uvarint(uint64(res.Patterns[p]))
	}
	// Diagnostics ride as their canonical JSON: diag.Diagnostic already
	// defines a lossless JSON round-trip (Cause flattens to text).
	diags, _ := json.Marshal(res.Diags)
	w.bytes(diags)
	return w.b
}

func encodeConfigResult(w *writer, c *ConfigResult) {
	w.str(c.Name)
	w.uvarint(uint64(len(c.Violations)))
	for _, v := range c.Violations {
		w.str(string(v.Category))
		w.str(v.ContractID)
		w.str(v.Contract)
		w.str(v.File)
		w.uvarint(uint64(v.Line))
		w.str(v.Detail)
	}
	w.bool(c.Cov != nil)
	if c.Cov != nil {
		w.uvarint(uint64(c.Cov.SourceLines))
		w.uvarint(uint64(c.Cov.Covered))
		cats := make([]string, 0, len(c.Cov.ByCategory))
		for cat := range c.Cov.ByCategory {
			cats = append(cats, string(cat))
		}
		sort.Strings(cats)
		w.uvarint(uint64(len(cats)))
		for _, cat := range cats {
			w.str(cat)
			w.uvarint(uint64(c.Cov.ByCategory[contracts.Category(cat)]))
		}
	}
	w.bool(c.CheckHit)
	w.bool(c.LexHit)
	w.str(c.HashHex)
	ids := make([]string, 0, len(c.Contrib))
	for id := range c.Contrib {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.str(id)
		sites := c.Contrib[id]
		w.uvarint(uint64(len(sites)))
		for _, s := range sites {
			w.str(s.Key)
			w.str(s.Display)
			w.uvarint(uint64(s.Line))
		}
	}
}

// DecodeResult parses a Result payload, returning an error on any
// defect — a malformed field never yields a partial result.
func DecodeResult(payload []byte) (*Result, error) {
	r := &reader{b: payload}
	res := &Result{}
	res.Shard = int(r.uvarint())
	res.Err = r.str()
	res.Stack = r.str()
	res.Lost = r.bool()
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		res.Configs = append(res.Configs, decodeConfigResult(r))
	}
	res.Skipped = int(r.uvarint())
	res.Lines = int(r.uvarint())
	if n := r.count(); n > 0 && r.err == nil {
		res.Patterns = make(map[string]int, n)
		for i := 0; i < n && r.err == nil; i++ {
			p := r.str()
			res.Patterns[p] = int(r.uvarint())
		}
	}
	diags := r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(diags) > 0 {
		if err := json.Unmarshal(diags, &res.Diags); err != nil {
			return nil, fmt.Errorf("shardrpc: bad diagnostics JSON: %w", err)
		}
	}
	return res, nil
}

func decodeConfigResult(r *reader) ConfigResult {
	c := ConfigResult{Name: r.str()}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		c.Violations = append(c.Violations, contracts.Violation{
			Category:   contracts.Category(r.str()),
			ContractID: r.str(),
			Contract:   r.str(),
			File:       r.str(),
			Line:       int(r.uvarint()),
			Detail:     r.str(),
		})
	}
	if r.bool() {
		cov := &Coverage{
			SourceLines: int(r.uvarint()),
			Covered:     int(r.uvarint()),
		}
		if n := r.count(); r.err == nil {
			cov.ByCategory = make(map[contracts.Category]int, n)
			for i := 0; i < n && r.err == nil; i++ {
				cat := contracts.Category(r.str())
				cov.ByCategory[cat] = int(r.uvarint())
			}
		}
		c.Cov = cov
	}
	c.CheckHit = r.bool()
	c.LexHit = r.bool()
	c.HashHex = r.str()
	// Contrib is always non-nil for a decoded config — the in-process
	// accumulator receives a (possibly empty) map per config, and the
	// replayed fold must match it.
	c.Contrib = map[string][]contracts.UniqueSite{}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		id := r.str()
		var sites []contracts.UniqueSite
		for j, m := 0, r.count(); j < m && r.err == nil; j++ {
			sites = append(sites, contracts.UniqueSite{
				Key:     r.str(),
				Display: r.str(),
				Line:    int(r.uvarint()),
			})
		}
		c.Contrib[id] = sites
	}
	return c
}

// WriteResult frames and writes a Result to w.
func WriteResult(w io.Writer, res *Result) error {
	return artifact.WriteFrame(w, ResultMagic, SchemaVersion, EncodeResult(res))
}

// ReadResult reads and decodes one framed Result from r.
func ReadResult(r io.Reader) (*Result, error) {
	payload, err := artifact.ReadFrame(r, ResultMagic, SchemaVersion, MaxResultBytes)
	if err != nil {
		return nil, err
	}
	return DecodeResult(payload)
}
