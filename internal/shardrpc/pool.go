// Worker-process pool and straggler-tolerant shard scheduler.
//
// Run executes one shard Task per request against a bounded pool of
// worker processes. Each worker is a child process speaking the
// shardrpc wire protocol over its stdin/stdout; a goroutine per pool
// slot owns the process and performs the synchronous Task→Result
// round-trip, while the central scheduler assigns shards to idle
// slots, re-dispatches shards whose worker crashed (bounded retries),
// and speculatively re-runs stragglers past a latency multiple of the
// median completed shard, first result wins.
//
// The failure taxonomy drives the policy:
//
//   - Transport failures — spawn error, broken pipe, EOF mid-frame,
//     corrupt or version-skewed frame — mean the *worker* failed, not
//     the shard: the process is killed and reaped, the slot respawns
//     lazily, and the shard is re-dispatched up to MaxRetries times
//     before it is reported as a ShardFailure (the caller's
//     shard-containment path).
//   - In-band failures — a Result carrying a non-empty Err — mean the
//     *shard* failed deterministically (a contained panic, a strict
//     abort inside the worker): retrying would repeat it, so the
//     Result is returned as-is for the caller to interpret.
//
// Drain is unconditional: every spawned process is killed and reaped
// and every slot goroutine joined before Run returns, so no orphan
// processes or goroutines survive, whatever the exit path.
package shardrpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"concord/internal/artifact"
	"concord/internal/telemetry"
)

// PoolOptions configures Run.
type PoolOptions struct {
	// Command is the worker argv; Command[0] is the executable. The
	// child's environment is the parent's plus Env plus
	// CONCORD_SHARD_WORKER=1 (the trampoline marker test binaries use
	// to re-enter the worker loop).
	Command []string
	// Env is extra "KEY=value" entries appended to the child env.
	Env []string
	// Workers bounds concurrently live worker processes. Min 1.
	Workers int
	// MaxRetries bounds re-dispatches of one shard after transport
	// failures; negative selects the default (2).
	MaxRetries int
	// SpeculativeMultiple: a shard still running after this multiple of
	// the median completed-shard duration (and past SpeculativeFloor)
	// is speculatively re-dispatched to an idle worker, first result
	// wins. Zero selects the default (4); negative disables
	// speculation.
	SpeculativeMultiple float64
	// SpeculativeFloor is the minimum age before any speculation; zero
	// selects the default (2s).
	SpeculativeFloor time.Duration
	// FailFast aborts the whole run on the first shard failure —
	// transport retries exhausted or an in-band Result.Err — killing
	// all workers (the strict-mode contract).
	FailFast bool
	// Telemetry receives the scheduler counters (shard.dispatches,
	// shard.retries, shard.speculative_wins, worker.spawns,
	// worker.crashes) and per-shard wall-time spans. Nil is free.
	Telemetry *telemetry.Recorder
	// SpanPrefix names the per-shard telemetry spans: "<prefix>[N]".
	// Empty selects "dist.shard"; the learn driver passes "dist.learn"
	// so a mixed workload's spans stay distinguishable.
	SpanPrefix string
}

const (
	defaultMaxRetries   = 2
	defaultSpecMultiple = 4.0
	defaultSpecFloor    = 2 * time.Second
)

// ShardFailure reports one shard the pool could not complete: its
// transport retries were exhausted. In-band worker failures are not
// ShardFailures — they come back as Results with Err set.
type ShardFailure struct {
	// Task is the index into Run's tasks slice.
	Task int
	// Shard is tasks[Task].Shard, for labeling.
	Shard int
	// Err is the last transport error.
	Err error
	// Attempts counts dispatches, the initial one included.
	Attempts int
}

// poolResult is what the generic scheduler needs from a wire result
// type: the shard echo (round-trip integrity) and the in-band failure
// text (FailFast). *Result and *LearnResult implement it.
type poolResult interface {
	ShardIndex() int
	ErrText() string
}

// Run executes every check task and returns results indexed like
// tasks. results[i] is nil exactly when tasks[i] appears in failures.
// The returned error is non-nil only for run-level aborts: context
// cancellation, or the first failure under FailFast.
func Run(ctx context.Context, job *Job, tasks []Task, opts PoolOptions) ([]*Result, []ShardFailure, error) {
	return runPool(ctx, job, tasks, opts, ReadResult)
}

// RunLearn is Run for learn jobs: workers answer CCSL learn-result
// frames, with the same scheduler, retry, and speculation policy.
func RunLearn(ctx context.Context, job *Job, tasks []Task, opts PoolOptions) ([]*LearnResult, []ShardFailure, error) {
	return runPool(ctx, job, tasks, opts, ReadLearnResult)
}

// runPool is the shared scheduler entry, generic over the result frame
// type; read decodes one framed result from a worker's stdout.
func runPool[R poolResult](ctx context.Context, job *Job, tasks []Task, opts PoolOptions, read func(io.Reader) (R, error)) ([]R, []ShardFailure, error) {
	if len(tasks) == 0 {
		return nil, nil, nil
	}
	if len(opts.Command) == 0 {
		return nil, nil, errors.New("shardrpc: empty worker command")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Workers > len(tasks) {
		opts.Workers = len(tasks)
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = defaultMaxRetries
	}
	if opts.SpeculativeMultiple == 0 {
		opts.SpeculativeMultiple = defaultSpecMultiple
	}
	if opts.SpeculativeFloor <= 0 {
		opts.SpeculativeFloor = defaultSpecFloor
	}
	if opts.SpanPrefix == "" {
		opts.SpanPrefix = "dist.shard"
	}
	s := &scheduler[R]{
		opts:    opts,
		job:     job,
		tasks:   tasks,
		read:    read,
		results: make([]R, len(tasks)),
		state:   make([]taskState, len(tasks)),
		events:  make(chan event[R], opts.Workers),
	}
	return s.run(ctx)
}

// event is one slot's report back to the scheduler: a result, or a
// transport error.
type event[R poolResult] struct {
	slot    int
	task    int
	spec    bool
	res     R
	err     error
	elapsed time.Duration
}

// attempt is one dispatch order to a slot.
type attempt struct {
	task    int
	attempt int
	spec    bool
}

type taskState struct {
	done     bool
	failed   bool
	dispatch int // total dispatches so far
	retries  int // transport-failure re-dispatches consumed
	running  int // attempts currently in flight
	started  time.Time
	spec     bool // a speculative attempt was issued
	span     *telemetry.Span
	slots    []int // slots currently running this task
}

type scheduler[R poolResult] struct {
	opts    PoolOptions
	job     *Job
	tasks   []Task
	read    func(io.Reader) (R, error)
	results []R
	state   []taskState

	events chan event[R]
	slots  []*slot[R]

	completed []time.Duration
	pending   []int
	idle      []int
}

func (s *scheduler[R]) run(ctx context.Context) ([]R, []ShardFailure, error) {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobFrame := artifact.EncodeFrame(JobMagic, SchemaVersion, EncodeJob(s.job))
	var wg sync.WaitGroup
	s.slots = make([]*slot[R], s.opts.Workers)
	for i := range s.slots {
		sl := &slot[R]{
			id:       i,
			opts:     &s.opts,
			tasks:    s.tasks,
			read:     s.read,
			jobFrame: jobFrame,
			reqs:     make(chan attempt),
			events:   s.events,
		}
		s.slots[i] = sl
		s.idle = append(s.idle, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sl.loop(ictx)
		}()
	}
	// Drain discipline: stop feeding, kill every live process so any
	// slot blocked mid-round-trip errors out, close request channels,
	// join the goroutines. Slot loops reap their own processes.
	defer func() {
		cancel()
		for _, sl := range s.slots {
			sl.killCurrent()
			close(sl.reqs)
		}
		wg.Wait()
	}()

	for i := range s.tasks {
		s.pending = append(s.pending, i)
	}

	var failures []ShardFailure
	remaining := len(s.tasks)
	specTick := s.opts.SpeculativeFloor / 4
	if specTick < 10*time.Millisecond {
		specTick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(specTick)
	defer ticker.Stop()

	for remaining > 0 {
		s.feed()
		select {
		case <-ctx.Done():
			return s.results, failures, ctx.Err()
		case <-ticker.C:
			s.speculate()
		case ev := <-s.events:
			st := &s.state[ev.task]
			st.running--
			st.slots = removeSlot(st.slots, ev.slot)
			s.idle = append(s.idle, ev.slot)
			if st.done || st.failed {
				break // a duplicate attempt resolving after the decision
			}
			if ev.err != nil {
				if st.running > 0 {
					break // a twin attempt is still in flight; let it decide
				}
				if st.retries < s.opts.MaxRetries {
					st.retries++
					s.opts.Telemetry.Add("shard.retries", 1)
					s.pending = append([]int{ev.task}, s.pending...)
					break
				}
				st.failed = true
				st.span.EndCount(0)
				remaining--
				failures = append(failures, ShardFailure{
					Task: ev.task, Shard: s.tasks[ev.task].Shard,
					Err: ev.err, Attempts: st.dispatch,
				})
				if s.opts.FailFast {
					return s.results, failures, nil
				}
				break
			}
			st.done = true
			st.span.EndCount(len(s.tasks[ev.task].Sources))
			s.results[ev.task] = ev.res
			s.completed = append(s.completed, ev.elapsed)
			remaining--
			if ev.spec {
				s.opts.Telemetry.Add("shard.speculative_wins", 1)
			}
			// Kill the losing twin attempts; their slots report a
			// transport error that the done flag above neutralizes.
			for _, other := range append([]int(nil), st.slots...) {
				s.slots[other].killCurrent()
			}
			if s.opts.FailFast && ev.res.ErrText() != "" {
				return s.results, failures, nil
			}
		}
	}
	return s.results, failures, nil
}

// feed assigns pending tasks to idle slots.
func (s *scheduler[R]) feed() {
	for len(s.pending) > 0 && len(s.idle) > 0 {
		task := s.pending[0]
		s.pending = s.pending[1:]
		sl := s.idle[0]
		s.idle = s.idle[1:]
		s.dispatch(task, sl, false)
	}
}

func (s *scheduler[R]) dispatch(task, slotID int, spec bool) {
	st := &s.state[task]
	if st.dispatch == 0 {
		st.span = s.opts.Telemetry.StartSpan(fmt.Sprintf("%s[%d]", s.opts.SpanPrefix, s.tasks[task].Shard))
		st.started = time.Now()
	}
	a := attempt{task: task, attempt: st.dispatch, spec: spec}
	st.dispatch++
	st.running++
	st.slots = append(st.slots, slotID)
	if spec {
		st.spec = true
	}
	s.opts.Telemetry.Add("shard.dispatches", 1)
	s.slots[slotID].reqs <- a
}

// speculate re-dispatches the oldest straggler when workers sit idle:
// a task with exactly one attempt in flight, older than
// max(floor, multiple × median completed duration), gets a duplicate
// dispatch; whichever attempt returns first wins.
func (s *scheduler[R]) speculate() {
	if s.opts.SpeculativeMultiple < 0 || len(s.idle) == 0 || len(s.pending) > 0 {
		return
	}
	threshold := s.opts.SpeculativeFloor
	if len(s.completed) > 0 {
		durs := append([]time.Duration(nil), s.completed...)
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		med := time.Duration(float64(durs[len(durs)/2]) * s.opts.SpeculativeMultiple)
		if med > threshold {
			threshold = med
		}
	}
	var oldest, oldestIdx = time.Duration(0), -1
	for i := range s.state {
		st := &s.state[i]
		if st.done || st.failed || st.running != 1 || st.spec {
			continue
		}
		if age := time.Since(st.started); age > threshold && age > oldest {
			oldest, oldestIdx = age, i
		}
	}
	if oldestIdx < 0 {
		return
	}
	sl := s.idle[0]
	s.idle = s.idle[1:]
	s.dispatch(oldestIdx, sl, true)
}

func removeSlot(slots []int, id int) []int {
	for i, s := range slots {
		if s == id {
			return append(slots[:i], slots[i+1:]...)
		}
	}
	return slots
}

// --- worker slot: owns at most one child process at a time ---

type slot[R poolResult] struct {
	id       int
	opts     *PoolOptions
	tasks    []Task
	read     func(io.Reader) (R, error)
	jobFrame []byte
	reqs     chan attempt
	events   chan<- event[R]

	mu   sync.Mutex
	proc *workerProc
}

// workerProc is one live child process.
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
	stderr *tailBuffer
}

func (sl *slot[R]) loop(ctx context.Context) {
	defer sl.reapCurrent()
	for a := range sl.reqs {
		start := time.Now()
		res, err := sl.roundTrip(ctx, a)
		sl.events <- event[R]{
			slot: sl.id, task: a.task, spec: a.spec,
			res: res, err: err, elapsed: time.Since(start),
		}
	}
}

func (sl *slot[R]) roundTrip(ctx context.Context, a attempt) (R, error) {
	var zero R
	proc, err := sl.ensureProc(ctx)
	if err != nil {
		return zero, err
	}
	t := sl.taskFor(a)
	if err := WriteTask(proc.stdin, &t); err != nil {
		return zero, sl.crash(proc, fmt.Errorf("shardrpc: write task: %w", err))
	}
	res, err := sl.read(proc.stdout)
	if err != nil {
		return zero, sl.crash(proc, fmt.Errorf("shardrpc: read result: %w", err))
	}
	if res.ShardIndex() != t.Shard {
		return zero, sl.crash(proc, fmt.Errorf("shardrpc: worker answered shard %d for task shard %d", res.ShardIndex(), t.Shard))
	}
	return res, nil
}

func (sl *slot[R]) taskFor(a attempt) Task {
	t := sl.tasks[a.task]
	t.Attempt = a.attempt
	return t
}

// ensureProc returns the slot's live process, spawning one (and
// writing the Job frame) if needed.
func (sl *slot[R]) ensureProc(ctx context.Context) (*workerProc, error) {
	sl.mu.Lock()
	if sl.proc != nil {
		p := sl.proc
		sl.mu.Unlock()
		return p, nil
	}
	sl.mu.Unlock()

	cmd := exec.Command(sl.opts.Command[0], sl.opts.Command[1:]...)
	cmd.Env = append(os.Environ(), "CONCORD_SHARD_WORKER=1")
	cmd.Env = append(cmd.Env, sl.opts.Env...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("shardrpc: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("shardrpc: worker stdout: %w", err)
	}
	stderr := &tailBuffer{limit: 4096}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shardrpc: spawn worker: %w", err)
	}
	sl.opts.Telemetry.Add("worker.spawns", 1)
	proc := &workerProc{cmd: cmd, stdin: stdin, stdout: stdout, stderr: stderr}
	if ctx.Err() != nil {
		sl.reap(proc)
		return nil, ctx.Err()
	}
	if _, err := stdin.Write(sl.jobFrame); err != nil {
		return nil, sl.crash(proc, fmt.Errorf("shardrpc: write job: %w", err))
	}
	sl.mu.Lock()
	sl.proc = proc
	sl.mu.Unlock()
	return proc, nil
}

// crash records a dead worker: the process is killed and reaped, the
// slot left empty for a lazy respawn, and the error annotated with the
// worker's final stderr.
func (sl *slot[R]) crash(proc *workerProc, err error) error {
	sl.opts.Telemetry.Add("worker.crashes", 1)
	sl.reap(proc)
	if tail := proc.stderr.String(); tail != "" {
		err = fmt.Errorf("%w (worker stderr: %q)", err, tail)
	}
	return err
}

// killCurrent kills the slot's live process, if any. The slot's
// goroutine, if blocked mid-round-trip on that process, errors out of
// the read and reports a transport failure.
func (sl *slot[R]) killCurrent() {
	sl.mu.Lock()
	proc := sl.proc
	sl.mu.Unlock()
	if proc != nil {
		proc.cmd.Process.Kill()
	}
}

// reapCurrent kills and waits out the slot's live process, if any —
// the slot goroutine's exit path, so no zombie survives the drain.
func (sl *slot[R]) reapCurrent() {
	sl.mu.Lock()
	proc := sl.proc
	sl.mu.Unlock()
	if proc != nil {
		sl.reap(proc)
	}
}

// reap kills and waits out a process, releasing its pipes.
func (sl *slot[R]) reap(proc *workerProc) {
	sl.mu.Lock()
	if sl.proc == proc {
		sl.proc = nil
	}
	sl.mu.Unlock()
	proc.cmd.Process.Kill()
	proc.stdin.Close()
	proc.cmd.Wait()
}

// tailBuffer retains the last limit bytes written, concurrency-safe:
// enough of a crashed worker's stderr to make transport errors
// debuggable without retaining unbounded output.
type tailBuffer struct {
	mu    sync.Mutex
	limit int
	b     []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.b = append(t.b, p...)
	if len(t.b) > t.limit {
		t.b = append(t.b[:0], t.b[len(t.b)-t.limit:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.b)
}
