package shardrpc

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
)

func testJob() *Job {
	return &Job{
		ContextEmbedding: true,
		Strict:           true,
		Incremental:      true,
		LexCacheSize:     -1, // negative exercises the zig-zag path
		MaxFileSize:      1 << 20,
		MaxLineLen:       4096,
		MaxDepth:         32,
		MaxLines:         100000,
		CacheDir:         "/tmp/concord-cache",
		SetJSON:          []byte(`{"contracts":[]}`),
		Meta:             []NamedBlob{{Name: "meta/site.yaml", Text: []byte("region: emea\n")}},
		UserTokens: []TokenSpec{
			{Name: "esi", Pattern: `[0-9a-f]{4}(\.[0-9a-f]{4}){4}`, WordBoundary: true},
		},
	}
}

func testResult() *Result {
	return &Result{
		Shard: 3,
		Configs: []ConfigResult{
			{
				Name: "r1.cfg",
				Violations: []contracts.Violation{{
					Category: contracts.CatUnique, ContractID: "u1", Contract: "router-id [ip]",
					File: "r1.cfg", Line: 7, Detail: "value 10.0.0.1 duplicates r0.cfg:7",
				}},
				Cov: &Coverage{SourceLines: 40, Covered: 31,
					ByCategory: map[contracts.Category]int{contracts.CatPresent: 20, contracts.CatUnique: 11}},
				CheckHit: true,
				LexHit:   true,
				HashHex:  "aa11",
				Contrib: map[string][]contracts.UniqueSite{
					"u1": {{Key: "10.0.0.1", Display: "10.0.0.1", Line: 7}},
					"u2": nil,
				},
			},
			{
				// A config whose check panicked and was contained: no
				// coverage, no violations, contribution still present.
				Name:    "r2.cfg",
				Contrib: map[string][]contracts.UniqueSite{},
			},
		},
		Skipped:  2,
		Lines:    81,
		Patterns: map[string]int{"router-id [ip]": 1, "vlan [num]": 2},
		Diags: []diag.Diagnostic{{
			Severity: diag.SevError, Stage: "check", Source: "r2.cfg",
			Message: "recovered panic", Cause: errors.New("boom"), Stack: "stack...",
		}},
	}
}

// TestWireRoundTrip pushes each frame kind through Write and Read and
// requires the decoded value to match field for field (Cause flattens
// to its error text, per the diag JSON contract).
func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	job := testJob()
	task := &Task{Shard: 2, Attempt: 1, Sources: []NamedBlob{
		{Name: "a.cfg", Text: []byte("hostname a\n")},
		{Name: "b.cfg", Text: nil},
	}}
	res := testResult()
	if err := WriteJob(&buf, job); err != nil {
		t.Fatal(err)
	}
	if err := WriteTask(&buf, task); err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}

	gotJob, err := ReadJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJob, job) {
		t.Errorf("job round-trip diverged:\n got %+v\nwant %+v", gotJob, job)
	}
	gotTask, err := ReadTask(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A nil source text decodes as empty, which is equivalent on the
	// processing side.
	if gotTask.Shard != task.Shard || gotTask.Attempt != task.Attempt || len(gotTask.Sources) != 2 ||
		gotTask.Sources[0].Name != "a.cfg" || string(gotTask.Sources[0].Text) != "hostname a\n" ||
		gotTask.Sources[1].Name != "b.cfg" || len(gotTask.Sources[1].Text) != 0 {
		t.Errorf("task round-trip diverged: %+v", gotTask)
	}
	gotRes, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res.Diags[0].Cause = errors.New("boom") // decoded cause is a fresh opaque error
	if gotRes.Diags[0].Cause == nil || gotRes.Diags[0].Cause.Error() != "boom" {
		t.Errorf("diagnostic cause lost: %+v", gotRes.Diags[0])
	}
	gotRes.Diags[0].Cause, res.Diags[0].Cause = nil, nil
	if !reflect.DeepEqual(gotRes, res) {
		t.Errorf("result round-trip diverged:\n got %+v\nwant %+v", gotRes, res)
	}
	if _, err := ReadResult(&buf); err != io.EOF {
		t.Errorf("drained stream = %v, want io.EOF", err)
	}
}

// TestWireDeterministicEncoding requires EncodeResult to be a pure
// function of the value, map iteration order notwithstanding.
func TestWireDeterministicEncoding(t *testing.T) {
	a := EncodeResult(testResult())
	for i := 0; i < 16; i++ {
		if b := EncodeResult(testResult()); !bytes.Equal(a, b) {
			t.Fatal("EncodeResult is not deterministic across runs")
		}
	}
}

// TestReadFrameDefects exercises the streaming frame reader's failure
// modes: version skew, wrong magic, truncation, oversized length, and
// checksum damage must all surface as errors, never as payload.
func TestReadFrameDefects(t *testing.T) {
	payload := EncodeTask(&Task{Shard: 1})
	frame := artifact.EncodeFrame(TaskMagic, SchemaVersion, payload)
	for name, data := range map[string][]byte{
		"version skew": artifact.EncodeFrame(TaskMagic, SchemaVersion+1, payload),
		"wrong magic":  artifact.EncodeFrame(ResultMagic, SchemaVersion, payload),
		"mid-header":   frame[:10],
		"mid-payload":  frame[:len(frame)-1],
	} {
		if _, err := ReadTask(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadTask accepted a defective frame", name)
		} else if err == io.EOF {
			t.Errorf("%s: defect reported as clean EOF", name)
		}
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x40
	var fe *artifact.FrameError
	if _, err := ReadTask(bytes.NewReader(flipped)); !errors.As(err, &fe) {
		t.Errorf("bit flip: err = %v, want *artifact.FrameError", err)
	}
	if _, err := artifact.ReadFrame(bytes.NewReader(frame), TaskMagic, SchemaVersion, 1); !errors.As(err, &fe) {
		t.Errorf("payload over limit: err = %v, want *artifact.FrameError", err)
	}
	if _, err := ReadTask(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream = %v, want io.EOF", err)
	}
}
