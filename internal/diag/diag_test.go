package diag

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Add(Diagnostic{Severity: SevError, Message: "x"})
	c.Addf(SevWarn, "process", "f", 1, "y %d", 2)
	c.Merge(New())
	if c.Len() != 0 || c.Count(SevError) != 0 || c.All() != nil {
		t.Error("nil collector should read as empty")
	}
	rep := c.Report()
	if rep.Total != 0 || rep.Errors != 0 {
		t.Errorf("nil collector report = %+v", rep)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Addf(SevWarn, "process", "f", j, "w")
				c.Add(Diagnostic{Severity: SevError, Stage: "mine", Message: "e"})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 3200 {
		t.Errorf("Len = %d, want 3200", c.Len())
	}
	if c.Count(SevError) != 1600 || c.Count(SevWarn) != 1600 {
		t.Errorf("counts = %d err, %d warn", c.Count(SevError), c.Count(SevWarn))
	}
}

func TestMergePreservesOrderAndCopies(t *testing.T) {
	a, b := New(), New()
	a.Addf(SevInfo, "load", "a", 0, "first")
	b.Addf(SevError, "load", "b", 0, "second")
	a.Merge(b)
	ds := a.All()
	if len(ds) != 2 || ds[0].Source != "a" || ds[1].Source != "b" {
		t.Errorf("merged = %+v", ds)
	}
	// All returns a copy: mutating it must not affect the collector.
	ds[0].Source = "mutated"
	if a.All()[0].Source != "a" {
		t.Error("All leaked internal storage")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := New()
	c.Add(Diagnostic{
		Severity: SevError, Stage: "process", Source: "r1.cfg", Line: 7,
		Message: "boom", Cause: errors.New("underlying"), Stack: "goroutine 1 ...",
	})
	c.Addf(SevWarn, "process", "r2.cfg", 0, "truncated")
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Cause appears under the stable "error" key.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"error": "underlying"`) {
		t.Errorf("missing error key in:\n%s", buf.String())
	}
	rep, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 2 || rep.Errors != 1 || rep.Warnings != 1 || rep.Infos != 0 {
		t.Errorf("report counts = %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.Severity != SevError || d.Stage != "process" || d.Source != "r1.cfg" || d.Line != 7 {
		t.Errorf("round-tripped = %+v", d)
	}
	if d.Cause == nil || d.Cause.Error() != "underlying" {
		t.Errorf("cause = %v", d.Cause)
	}
}

func TestFromPanicPreservesErrorCause(t *testing.T) {
	sentinel := errors.New("injected")
	d := FromPanic("mine", "cfg3", sentinel)
	if d.Severity != SevError || d.Stage != "mine" || d.Source != "cfg3" {
		t.Errorf("diagnostic = %+v", d)
	}
	if !errors.Is(d.AsError(), sentinel) {
		t.Errorf("AsError() = %v, want wrapping %v", d.AsError(), sentinel)
	}
	if d.Stack == "" || !strings.Contains(d.Stack, "goroutine") {
		t.Error("stack not captured")
	}
	// Non-error panic values become message-only diagnostics.
	d2 := FromPanic("check", "", "string panic")
	if d2.Cause != nil || !strings.Contains(d2.Message, "string panic") {
		t.Errorf("diagnostic = %+v", d2)
	}
}

func TestJoin(t *testing.T) {
	if Join(nil) != nil {
		t.Error("Join(nil) should be nil")
	}
	sentinel := errors.New("root cause")
	err := Join([]Diagnostic{
		{Severity: SevError, Stage: "process", Source: "a", Message: "m1", Cause: sentinel},
		{Severity: SevWarn, Stage: "process", Source: "b", Message: "m2"},
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Errorf("Join = %v, want wrapping sentinel", err)
	}
	if !strings.Contains(err.Error(), "m2") {
		t.Errorf("joined error lost second diagnostic: %v", err)
	}
}

func TestString(t *testing.T) {
	d := Diagnostic{Severity: SevWarn, Stage: "process", Source: "f.cfg", Line: 3, Message: "capped"}
	if got := d.String(); got != "warn: process: f.cfg:3: capped" {
		t.Errorf("String = %q", got)
	}
	d2 := Diagnostic{Severity: SevError, Stage: "mine", Message: "corpus-wide"}
	if got := d2.String(); got != "error: mine: corpus-wide" {
		t.Errorf("String = %q", got)
	}
}
