// Package diag is Concord's structured diagnostics layer. Production
// corpora are messy — truncated files, binary blobs, foreign formats,
// pathological nesting — and the pipeline degrades around such inputs
// instead of dying on them. Every contained fault (a recovered panic, a
// skipped file, a truncated line, a skipped contract) is recorded as a
// Diagnostic carrying its severity, pipeline stage, source, and cause,
// so a run that returns partial results also explains exactly what was
// left out.
//
// A Collector is the concurrency-safe accumulator threaded through the
// engine via core.Options.Diagnostics, mirroring telemetry.Recorder:
// all methods are safe for concurrent use and no-ops on a nil receiver,
// so instrumented code never guards against an absent collector. The
// Report type is the stable JSON schema behind the CLI's
// -diagnostics-json output.
package diag

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
)

// Severity classifies how much a diagnostic degraded the run.
type Severity string

// The severities, ordered by impact.
const (
	// SevInfo notes something benign (e.g. an empty input file).
	SevInfo Severity = "info"
	// SevWarn marks degraded-but-usable input: a truncated over-long
	// line, a capped nesting depth, an exhausted line budget.
	SevWarn Severity = "warn"
	// SevError marks dropped work: a source skipped entirely, a contract
	// whose evaluation was abandoned, a recovered worker panic.
	SevError Severity = "error"
)

// Diagnostic is one contained fault or degradation, localized to a
// pipeline stage and (when known) an input source and line.
type Diagnostic struct {
	// Severity classifies the impact (info, warn, error).
	Severity Severity `json:"severity"`
	// Stage names the pipeline stage that recorded the diagnostic
	// (load, process, mine, minimize, check, coverage).
	Stage string `json:"stage"`
	// Source identifies the input file or contract concerned; empty for
	// corpus-wide diagnostics.
	Source string `json:"source,omitempty"`
	// Line is the 1-based line number when the diagnostic is localized;
	// 0 means the whole source.
	Line int `json:"line,omitempty"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Cause is the wrapped underlying error, when one exists. It is
	// serialized as its Error() text.
	Cause error `json:"-"`
	// Stack is the captured goroutine stack for recovered panics.
	Stack string `json:"stack,omitempty"`
}

// jsonDiagnostic is the wire form of Diagnostic: Cause flattens to its
// error text so the report schema is plain JSON.
type jsonDiagnostic struct {
	Severity Severity `json:"severity"`
	Stage    string   `json:"stage"`
	Source   string   `json:"source,omitempty"`
	Line     int      `json:"line,omitempty"`
	Message  string   `json:"message"`
	Cause    string   `json:"error,omitempty"`
	Stack    string   `json:"stack,omitempty"`
}

// MarshalJSON serializes the diagnostic with Cause rendered as text
// under the "error" key.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	jd := jsonDiagnostic{
		Severity: d.Severity, Stage: d.Stage, Source: d.Source,
		Line: d.Line, Message: d.Message, Stack: d.Stack,
	}
	if d.Cause != nil {
		jd.Cause = d.Cause.Error()
	}
	return json.Marshal(jd)
}

// UnmarshalJSON restores a serialized diagnostic; a non-empty "error"
// value becomes an opaque Cause.
func (d *Diagnostic) UnmarshalJSON(data []byte) error {
	var jd jsonDiagnostic
	if err := json.Unmarshal(data, &jd); err != nil {
		return err
	}
	*d = Diagnostic{
		Severity: jd.Severity, Stage: jd.Stage, Source: jd.Source,
		Line: jd.Line, Message: jd.Message, Stack: jd.Stack,
	}
	if jd.Cause != "" {
		d.Cause = errors.New(jd.Cause)
	}
	return nil
}

// String renders "severity: stage: source:line: message".
func (d Diagnostic) String() string {
	s := string(d.Severity) + ": " + d.Stage
	if d.Source != "" {
		s += ": " + d.Source
		if d.Line > 0 {
			s += fmt.Sprintf(":%d", d.Line)
		}
	}
	return s + ": " + d.Message
}

// AsError converts the diagnostic to an error wrapping its cause, for
// strict-mode callers that abort instead of degrading.
func (d Diagnostic) AsError() error {
	if d.Cause != nil {
		return fmt.Errorf("%s: %s: %w", d.Stage, sourceOr(d.Source), d.Cause)
	}
	return fmt.Errorf("%s: %s: %s", d.Stage, sourceOr(d.Source), d.Message)
}

func sourceOr(s string) string {
	if s == "" {
		return "<corpus>"
	}
	return s
}

// FromPanic builds an error diagnostic from a recovered panic value,
// capturing the current goroutine stack. A panic value that is itself an
// error becomes the diagnostic's Cause, so injected or wrapped errors
// survive containment intact.
func FromPanic(stage, source string, v any) Diagnostic {
	d := Diagnostic{
		Severity: SevError,
		Stage:    stage,
		Source:   source,
		Message:  fmt.Sprintf("panic: %v", v),
		Stack:    string(debug.Stack()),
	}
	if err, ok := v.(error); ok {
		d.Cause = err
	}
	return d
}

// Join converts diagnostics to a single error (errors.Join of each
// diagnostic's AsError), or nil when the slice is empty. Strict-mode
// pipelines use it to fail fast with the same per-file information a
// lenient run would have reported as diagnostics.
func Join(ds []Diagnostic) error {
	if len(ds) == 0 {
		return nil
	}
	errs := make([]error, len(ds))
	for i, d := range ds {
		errs[i] = d.AsError()
	}
	return errors.Join(errs...)
}

// Collector accumulates diagnostics. The zero value is not useful; use
// New. A nil *Collector is a valid "diagnostics off" collector: every
// method no-ops (reads return zero values).
type Collector struct {
	mu sync.Mutex
	ds []Diagnostic
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Add appends one diagnostic.
func (c *Collector) Add(d Diagnostic) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ds = append(c.ds, d)
	c.mu.Unlock()
}

// Addf appends a diagnostic built from a format string.
func (c *Collector) Addf(sev Severity, stage, source string, line int, format string, args ...any) {
	if c == nil {
		return
	}
	c.Add(Diagnostic{
		Severity: sev, Stage: stage, Source: source, Line: line,
		Message: fmt.Sprintf(format, args...),
	})
}

// Len returns the number of collected diagnostics.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ds)
}

// Count returns the number of diagnostics at the given severity.
func (c *Collector) Count(sev Severity) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.ds {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// All returns a copy of the collected diagnostics in insertion order.
func (c *Collector) All() []Diagnostic {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Diagnostic(nil), c.ds...)
}

// Merge appends every diagnostic of other into c. The engine uses it to
// fold per-run collectors into a caller-attached one.
func (c *Collector) Merge(other *Collector) {
	if c == nil || other == nil {
		return
	}
	for _, d := range other.All() {
		c.Add(d)
	}
}

// Report is the stable JSON schema of a diagnostics snapshot (the
// CLI's -diagnostics-json output).
type Report struct {
	// Total is the number of diagnostics.
	Total int `json:"total"`
	// Errors, Warnings, and Infos count diagnostics by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
	// Diagnostics lists every diagnostic in insertion order.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Report snapshots the collector. The result shares no storage with the
// collector; a nil collector yields a zero report.
func (c *Collector) Report() Report {
	ds := c.All()
	rep := Report{Total: len(ds), Diagnostics: ds}
	for _, d := range ds {
		switch d.Severity {
		case SevError:
			rep.Errors++
		case SevWarn:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	return rep
}

// WriteJSON writes an indented JSON report snapshot.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Report())
}

// ParseReport decodes a JSON report produced by WriteJSON.
func ParseReport(data []byte) (Report, error) {
	var rep Report
	err := json.Unmarshal(data, &rep)
	return rep, err
}
