package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan("x")
	sp.End()
	sp.End() // idempotent
	r.Add("c", 1)
	r.SetGauge("g", 2)
	if r.Counter("c") != 0 || r.Gauge("g") != 0 {
		t.Error("nil recorder returned nonzero metrics")
	}
	rep := r.Snapshot()
	if len(rep.Spans) != 0 || len(rep.Counters) != 0 {
		t.Error("nil recorder produced a non-empty snapshot")
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRecorder()
	r.Add("mine.present.accepted", 3)
	r.Add("mine.present.accepted", 4)
	r.SetGauge("corpus.configs", 12)
	r.SetGauge("corpus.configs", 20)
	if got := r.Counter("mine.present.accepted"); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := r.Gauge("corpus.configs"); got != 20 {
		t.Errorf("gauge = %v, want 20", got)
	}
}

func TestSpanMeasuresWallAndAlloc(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan("learn/mine")
	time.Sleep(5 * time.Millisecond)
	sink := make([]byte, 1<<20)
	_ = sink
	sp.EndCount(42)
	rep := r.Snapshot()
	if len(rep.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(rep.Spans))
	}
	s := rep.Spans[0]
	if s.Name != "learn/mine" {
		t.Errorf("name = %q", s.Name)
	}
	if s.WallMS < 4 {
		t.Errorf("wall = %vms, want >= 4ms", s.WallMS)
	}
	if s.AllocBytes < 1<<20 {
		t.Errorf("alloc delta = %d, want >= 1MiB", s.AllocBytes)
	}
	if s.Items != 42 {
		t.Errorf("items = %d, want 42", s.Items)
	}
}

func TestSnapshotIsIsolated(t *testing.T) {
	r := NewRecorder()
	r.Add("c", 1)
	rep := r.Snapshot()
	r.Add("c", 10)
	if rep.Counters["c"] != 1 {
		t.Error("snapshot mutated by later recording")
	}
}

// TestJSONRoundTrip checks the --metrics-json schema survives a
// marshal/unmarshal cycle unchanged.
func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan("learn/process")
	sp.EndCount(8)
	r.StartSpan("learn/mine/relation").End()
	r.Add("check.violations", 5)
	r.Add("mine.relation.candidates", 1234)
	r.SetGauge("corpus.lines", 9000)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := r.Snapshot()
	// WallMS advances between WriteJSON and Snapshot; compare the rest.
	want.WallMS, got.WallMS = 0, 0
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Errorf("round trip mismatch:\n got %s\nwant %s", gj, wj)
	}
	if len(got.Spans) != 2 || got.Counters["mine.relation.candidates"] != 1234 {
		t.Errorf("round-tripped report missing data: %+v", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add("n", 1)
				sp := r.StartSpan("s")
				sp.End()
				r.SetGauge("g", float64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if got := len(r.Snapshot().Spans); got != 800 {
		t.Errorf("spans = %d, want 800", got)
	}
}
