// Package telemetry is Concord's lightweight tracing and metrics layer.
// A Recorder collects named spans (wall time plus heap-allocation
// deltas), monotonic counters, and gauges from the learn/check
// pipelines, and snapshots them into a structured, JSON-serializable
// Report. It exists so that every pipeline stage — format inference,
// mining, minimization, checking — can attribute its cost precisely,
// and so that future performance work can prove its speedups against a
// machine-readable baseline.
//
// All Recorder methods are safe for concurrent use and are no-ops on a
// nil receiver, so instrumented code never needs to guard against an
// absent recorder:
//
//	var rec *telemetry.Recorder // nil: telemetry disabled
//	sp := rec.StartSpan("learn/mine")
//	defer sp.End()
//	rec.Add("mine.relation.candidates", int64(n))
package telemetry

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Stage names a pipeline stage for progress reporting and span naming.
type Stage string

// The pipeline stages instrumented by the engine.
const (
	StageProcess  Stage = "process"
	StageMine     Stage = "mine"
	StageMinimize Stage = "minimize"
	StageCheck    Stage = "check"
	StageCoverage Stage = "coverage"
)

// Recorder accumulates spans, counters, and gauges. The zero value is
// not useful; use NewRecorder. A nil *Recorder is a valid "telemetry
// off" recorder: every method no-ops.
type Recorder struct {
	mu       sync.Mutex
	start    time.Time
	spans    []SpanReport
	counters map[string]int64
	gauges   map[string]float64
	// spanLimit, when positive, caps the retained spans; excess spans
	// are counted in spansDropped instead of appended. Resident
	// processes set it so a recorder that lives for weeks cannot grow
	// without bound.
	spanLimit    int
	spansDropped int64
}

// NewRecorder returns an empty recorder whose report clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{
		start:    time.Now(),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Span is one in-flight measurement started by StartSpan. End (or
// EndCount) finalizes it into the recorder; a Span must be ended at
// most once and is not shared across goroutines.
type Span struct {
	rec        *Recorder
	name       string
	start      time.Time
	startAlloc uint64
	ended      bool
}

// heapAlloc returns the cumulative bytes allocated by the process.
// ReadMemStats briefly stops the world, so spans are intended for
// stage-granularity measurement, not per-line hot paths.
func heapAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// StartSpan begins a named span. Use hierarchical slash-separated names
// ("learn/mine/relation") to group related spans in the report.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, name: name, start: time.Now(), startAlloc: heapAlloc()}
}

// End finalizes the span, recording its wall time and allocation delta.
// Safe on a nil span (from a nil recorder) and idempotent.
func (s *Span) End() { s.EndCount(-1) }

// EndCount finalizes the span like End and additionally records how
// many items the span processed (configs, contracts, ...); pass a
// negative count to omit it.
func (s *Span) EndCount(items int) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	sr := SpanReport{
		Name:       s.name,
		StartMS:    float64(s.start.Sub(s.rec.start)) / float64(time.Millisecond),
		WallMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
		AllocBytes: int64(heapAlloc() - s.startAlloc),
		Items:      items,
	}
	s.rec.mu.Lock()
	if s.rec.spanLimit > 0 && len(s.rec.spans) >= s.rec.spanLimit {
		s.rec.spansDropped++
	} else {
		s.rec.spans = append(s.rec.spans, sr)
	}
	s.rec.mu.Unlock()
}

// SetSpanLimit caps how many spans the recorder retains; once full,
// further spans are dropped (and counted in the report's SpansDropped)
// while counters and gauges keep accumulating. n <= 0 removes the cap.
// Long-lived recorders — a resident server's /metrics recorder — need a
// cap because every request records stage spans.
func (r *Recorder) SetSpanLimit(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spanLimit = n
	r.mu.Unlock()
}

// Merge folds a snapshot into the recorder: counters add, gauges
// overwrite, spans append (subject to the recorder's span limit, which
// counts overflow in SpansDropped). A resident server uses it to fold
// each request's recorder into the long-lived /metrics recorder.
func (r *Recorder) Merge(rep Report) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range rep.Counters {
		r.counters[k] += v
	}
	if len(rep.Gauges) > 0 && r.gauges == nil {
		r.gauges = make(map[string]float64, len(rep.Gauges))
	}
	for k, v := range rep.Gauges {
		r.gauges[k] = v
	}
	for _, sp := range rep.Spans {
		if r.spanLimit > 0 && len(r.spans) >= r.spanLimit {
			r.spansDropped++
			continue
		}
		r.spans = append(r.spans, sp)
	}
	r.spansDropped += rep.SpansDropped
}

// Add increments a named counter by delta.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the current value of a named counter (0 if unset).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge records the latest value of a named gauge.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge returns the current value of a named gauge (0 if unset).
func (r *Recorder) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// SpanReport is one finished span in a report.
type SpanReport struct {
	// Name is the span's hierarchical name, e.g. "learn/mine/relation".
	Name string `json:"name"`
	// StartMS is the span's start offset from the recorder's start, in
	// milliseconds.
	StartMS float64 `json:"start_ms"`
	// WallMS is the span's wall-clock duration in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// AllocBytes is the process-wide heap allocation delta over the
	// span. Concurrent spans attribute overlapping allocations to each
	// other; treat it as stage-level attribution, not exact accounting.
	AllocBytes int64 `json:"alloc_bytes"`
	// Items counts the units the span processed; -1 when not reported.
	Items int `json:"items,omitempty"`
}

// Report is an immutable snapshot of a recorder, the schema behind the
// CLI's --metrics-json output.
type Report struct {
	// Start is when the recorder was created.
	Start time.Time `json:"start"`
	// WallMS is the total wall time from recorder creation to snapshot,
	// in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Spans lists finished spans ordered by start time.
	Spans []SpanReport `json:"spans"`
	// SpansDropped counts spans discarded by the recorder's span limit.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
	// Counters holds the monotonic counters.
	Counters map[string]int64 `json:"counters"`
	// Gauges holds the latest gauge values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

// Snapshot captures the recorder's current state. The returned report
// shares no storage with the recorder. A nil recorder yields a zero
// report.
func (r *Recorder) Snapshot() Report {
	if r == nil {
		return Report{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Start:        r.start,
		WallMS:       float64(time.Since(r.start)) / float64(time.Millisecond),
		Spans:        append([]SpanReport(nil), r.spans...),
		SpansDropped: r.spansDropped,
		Counters:     make(map[string]int64, len(r.counters)),
	}
	sort.SliceStable(rep.Spans, func(i, j int) bool { return rep.Spans[i].StartMS < rep.Spans[j].StartMS })
	for k, v := range r.counters {
		rep.Counters[k] = v
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			rep.Gauges[k] = v
		}
	}
	return rep
}

// WriteJSON writes an indented JSON snapshot of the recorder.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ParseReport decodes a JSON report produced by WriteJSON.
func ParseReport(data []byte) (Report, error) {
	var rep Report
	err := json.Unmarshal(data, &rep)
	return rep, err
}
