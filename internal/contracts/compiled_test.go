package contracts

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// TestCheckSequenceLocalization pins down which line a sequence
// violation points at: always the first value that breaks the step,
// including the zero-step case (where the second value — the first
// duplicate — is the break).
func TestCheckSequenceLocalization(t *testing.T) {
	seqCfg := func(t *testing.T, name string, vals ...string) *lexer.Config {
		t.Helper()
		var b strings.Builder
		for i, v := range vals {
			fmt.Fprintf(&b, "seq %s permit 10.%d.0.0/16\n", v, i)
		}
		return cfgFromText(t, name, b.String())
	}
	tests := []struct {
		name       string
		vals       []string
		wantLine   int // 0 = no violation
		wantDetail string
	}{
		{name: "equidistant", vals: []string{"10", "20", "30"}, wantLine: 0},
		{name: "negative step", vals: []string{"30", "20", "10"}, wantLine: 0},
		{name: "break in middle", vals: []string{"10", "20", "40", "50"}, wantLine: 3, wantDetail: "breaks the sequence step 10"},
		{name: "break at end", vals: []string{"10", "20", "30", "45"}, wantLine: 4, wantDetail: "breaks the sequence step 10"},
		{name: "zero step", vals: []string{"10", "10", "10"}, wantLine: 2, wantDetail: "sequence step is zero"},
		// Zero first step with later variation still localizes to the
		// first duplicate, not a later line: the step itself is the break.
		{name: "zero step then jump", vals: []string{"10", "10", "30"}, wantLine: 2, wantDetail: "sequence step is zero"},
		{name: "single value", vals: []string{"10"}, wantLine: 0},
		// Values beyond int64: a 20-digit decimal exceeds math.MaxInt64
		// (9223372036854775807); equidistance must be judged in *big.Int.
		{name: "big values equidistant", vals: []string{"18446744073709551610", "18446744073709551620", "18446744073709551630"}, wantLine: 0},
		{name: "big values break", vals: []string{"18446744073709551610", "18446744073709551620", "18446744073709551635"}, wantLine: 3, wantDetail: "breaks the sequence step 10"},
		// Straddling the int64 boundary: int64 arithmetic would wrap here.
		{name: "straddle int64 max", vals: []string{"9223372036854775800", "9223372036854775810", "9223372036854775820"}, wantLine: 0},
	}
	set := &Set{Contracts: []Contract{
		&Sequence{Pattern: "/seq [num] permit [pfx4]", Display: "/seq [a:num] permit [b:pfx4]", ParamIdx: 0},
	}}
	for _, linear := range []bool{false, true} {
		ch := NewChecker(set, WithLinearScan(linear))
		for _, tc := range tests {
			t.Run(fmt.Sprintf("%s/linear=%v", tc.name, linear), func(t *testing.T) {
				vs := ch.Check(seqCfg(t, tc.name, tc.vals...))
				if tc.wantLine == 0 {
					if len(vs) != 0 {
						t.Fatalf("unexpected violations: %+v", vs)
					}
					return
				}
				if len(vs) != 1 {
					t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
				}
				if vs[0].Line != tc.wantLine {
					t.Errorf("localized to line %d, want %d (%s)", vs[0].Line, tc.wantLine, vs[0].Detail)
				}
				if !strings.Contains(vs[0].Detail, tc.wantDetail) {
					t.Errorf("detail = %q, want substring %q", vs[0].Detail, tc.wantDetail)
				}
			})
		}
	}
}

// TestUniqueExistenceFileLevel verifies that a missing unique line is
// reported as a file-level violation: no line number, and Location()
// renders the bare file name instead of "file:0".
func TestUniqueExistenceFileLevel(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Unique{Pattern: "/hostname DEV[num]", Display: "/hostname DEV[a:num]", ParamIdx: 0},
	}}
	ch := NewChecker(set)
	missing := cfgFromText(t, "router1.cfg", "router bgp 1\n")
	vs := ch.Check(missing)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if !v.FileLevel() {
		t.Errorf("FileLevel() = false for line %d", v.Line)
	}
	if got, want := v.Location(), "router1.cfg"; got != want {
		t.Errorf("Location() = %q, want %q", got, want)
	}
	// A line-localized violation renders file:line.
	dup := cfgFromText(t, "dup.cfg", "hostname DEV1\nhostname DEV1\n")
	vs = ch.CheckAll([]*lexer.Config{dup})
	if len(vs) == 0 {
		t.Fatal("expected uniqueness violation")
	}
	if got := vs[0].Location(); !strings.Contains(got, ":") {
		t.Errorf("line-level Location() = %q, want file:line", got)
	}
}

// corpusAllCategories builds a small corpus plus a contract set hitting
// every category, with seeded violations in the "broken" config.
func corpusAllCategories(t *testing.T) (*Set, []*lexer.Config) {
	t.Helper()
	good := func(d int) string {
		return fmt.Sprintf(`hostname DEV%d
interface Loopback0
   ip address 10.0.%d.1
ip prefix-list loopback
   seq 10 permit 10.0.0.0/8
   seq 20 permit 0.0.0.0/0
router bgp %d
   maximum-paths 64
`, d, d, 65000+d)
	}
	// Broken: duplicate hostname value, missing router bgp (present +
	// ordering anchor gone), prefix in place of an address (type),
	// broken seq step, loopback not permitted (relational).
	broken := `hostname DEV1
interface Loopback0
   ip address 172.16.0.1/24
ip prefix-list loopback
   seq 10 permit 10.0.0.0/8
   seq 15 permit 0.0.0.0/0
   seq 20 permit 10.1.0.0/16
`
	var cfgs []*lexer.Config
	for d := 1; d <= 4; d++ {
		cfgs = append(cfgs, cfgFromText(t, fmt.Sprintf("dev%d", d), good(d)))
	}
	cfgs = append(cfgs, cfgFromText(t, "broken", broken))
	set := &Set{Contracts: []Contract{
		&Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"},
		&Present{Pattern: "/interface Loopback[num]", Display: "/interface Loopback[a:num]"},
		&Ordering{First: "/router bgp [num]", DisplayFirst: "/router bgp [a:num]",
			Second: "/router bgp [num]/maximum-paths [num]", DisplaySecond: "/router bgp [num]/maximum-paths [a:num]"},
		&TypeError{Agnostic: "/interface Loopback[?]/ip address [?]", ParamIdx: 1, BadType: "pfx4", GoodTypes: []string{"ip4"}},
		&Sequence{Pattern: "/ip prefix-list loopback/seq [num] permit [pfx4]", Display: "/ip prefix-list loopback/seq [a:num] permit [b:pfx4]", ParamIdx: 0},
		&Unique{Pattern: "/hostname DEV[num]", Display: "/hostname DEV[a:num]", ParamIdx: 0},
	}}
	return set, cfgs
}

// TestCompiledMatchesLinear is the unit-level golden comparison: the
// compiled (indexed) check path and the linear scan must produce
// identical violations and identical coverage on a corpus that
// exercises every contract category, including the skip path (the
// "broken" config has no /router bgp line, so its ordering bucket is
// skipped entirely while the Present contract still fires).
func TestCompiledMatchesLinear(t *testing.T) {
	set, cfgs := corpusAllCategories(t)
	linear := NewChecker(set, WithLinearScan(true))
	compiled := NewChecker(set)
	wantVs := linear.CheckAll(cfgs)
	gotVs := compiled.CheckAll(cfgs)
	if !reflect.DeepEqual(wantVs, gotVs) {
		t.Errorf("violations differ:\nlinear   = %+v\ncompiled = %+v", wantVs, gotVs)
	}
	if len(wantVs) == 0 {
		t.Error("corpus seeded no violations; comparison is vacuous")
	}
	for _, cfg := range cfgs {
		wc := linear.Coverage(cfg)
		gc := compiled.Coverage(cfg)
		if !reflect.DeepEqual(wc, gc) {
			t.Errorf("coverage differs for %s:\nlinear   = %+v\ncompiled = %+v", cfg.Name, wc, gc)
		}
	}
}

// TestCompiledSkipCounter verifies the index actually skips contract
// groups whose anchor pattern is absent, and that the telemetry
// counters account for every contract: evaluated + skipped = checked
// configs × contracts eligible per config.
func TestCompiledSkipCounter(t *testing.T) {
	set, cfgs := corpusAllCategories(t)
	rec := telemetry.NewRecorder()
	ch := NewChecker(set, WithTelemetry(rec))
	ch.CheckAll(cfgs)
	skipped := rec.Counter("check.contracts_skipped_by_index")
	evaluated := rec.Counter("check.contracts_evaluated")
	if skipped == 0 {
		t.Error("no contracts skipped; the broken config lacks /router bgp so its ordering contract should be skipped")
	}
	if got, want := evaluated+skipped, int64(len(cfgs)*set.Len()); got != want {
		t.Errorf("evaluated(%d) + skipped(%d) = %d, want configs×contracts = %d", evaluated, skipped, got, want)
	}
	if rec.Counter("check.index_build_ns") <= 0 {
		t.Error("index_build_ns not recorded")
	}
	// The linear scan records no skips.
	recLin := telemetry.NewRecorder()
	lin := NewChecker(set, WithTelemetry(recLin), WithLinearScan(true))
	lin.CheckAll(cfgs)
	if n := recLin.Counter("check.contracts_skipped_by_index"); n != 0 {
		t.Errorf("linear scan skipped %d contracts, want 0", n)
	}
}

// TestCompileBuckets sanity-checks the compiled layout directly:
// absence-style contracts (Present, Unique) stay in the never-skipped
// bucket, anchored contracts land under their anchor pattern's ID, and
// type contracts bucket by agnostic pattern.
func TestCompileBuckets(t *testing.T) {
	set, _ := corpusAllCategories(t)
	cs := Compile(set)
	if got := len(cs.absence); got != 3 { // 2 Present + 1 Unique
		t.Errorf("absence bucket has %d contracts, want 3", got)
	}
	id, ok := cs.ids["/router bgp [num]"]
	if !ok {
		t.Fatal("ordering anchor pattern not interned")
	}
	if got := len(cs.anchored[id]); got != 1 {
		t.Errorf("anchored[/router bgp [num]] has %d contracts, want 1 (the ordering)", got)
	}
	if got := len(cs.typesByAg["/interface Loopback[?]/ip address [?]"]); got != 1 {
		t.Errorf("typesByAg bucket has %d contracts, want 1", got)
	}
}
