package contracts

import (
	"encoding/json"
	"strings"
	"testing"

	"concord/internal/format"
	"concord/internal/lexer"
	"concord/internal/relations"
)

func cfgFromText(t *testing.T, name, text string) *lexer.Config {
	t.Helper()
	lx := lexer.MustNew()
	cfg := format.Process(name, []byte(text), lx, format.Options{Embed: true})
	return &cfg
}

func TestContractStrings(t *testing.T) {
	p := &Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"}
	if p.String() != "exists l ~ /router bgp [a:num]" {
		t.Errorf("Present.String = %q", p.String())
	}
	r := &Relational{
		Display1: "interface Port-Channel[a:num]", ParamIdx1: 0, Transform1: "hex",
		Rel:      relations.Equals,
		Display2: "route-target import [b:mac]", ParamIdx2: 0, Transform2: "segment6",
	}
	want := "forall l1 ~ interface Port-Channel[a:num]\nexists l2 ~ route-target import [b:mac]\nequals(hex(l1.a), segment6(l2.a))"
	if r.String() != want {
		t.Errorf("Relational.String = %q, want %q", r.String(), want)
	}
	c := &Relational{
		Display1: "ip address [a:ip4]", Transform1: "id",
		Rel:      relations.Contains,
		Display2: "seq [a:num] permit [b:pfx4]", ParamIdx2: 1, Transform2: "id",
	}
	if !strings.Contains(c.String(), "contains(l2.b, l1.a)") {
		t.Errorf("contains rendering = %q", c.String())
	}
	ty := &TypeError{Agnostic: "ip address [?]", ParamIdx: 0, BadType: "bool"}
	if ty.String() != "!(exists l ~ ip address [?] with a:[bool])" {
		t.Errorf("TypeError.String = %q", ty.String())
	}
	u := &Unique{Display: "hostname DEV[a:num]", ParamIdx: 0}
	if u.String() != "unique(a) on hostname DEV[a:num]" {
		t.Errorf("Unique.String = %q", u.String())
	}
	s := &Sequence{Display: "seq [a:num] permit [b:pfx4]", ParamIdx: 0}
	if s.String() != "sequence(a) on seq [a:num] permit [b:pfx4]" {
		t.Errorf("Sequence.String = %q", s.String())
	}
	o := &Ordering{DisplayFirst: "A", DisplaySecond: "B"}
	if !strings.Contains(o.String(), "index(l1) + 1") {
		t.Errorf("Ordering.String = %q", o.String())
	}
}

func TestContractIDsDistinct(t *testing.T) {
	cs := []Contract{
		&Present{Pattern: "p"},
		&Ordering{First: "p", Second: "q"},
		&TypeError{Agnostic: "p", ParamIdx: 0, BadType: "bool"},
		&Sequence{Pattern: "p", ParamIdx: 0},
		&Unique{Pattern: "p", ParamIdx: 0},
		&Relational{Pattern1: "p", Rel: relations.Equals, Pattern2: "q"},
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.ID()] {
			t.Errorf("duplicate ID %q", c.ID())
		}
		seen[c.ID()] = true
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	orig := &Set{Contracts: []Contract{
		&Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]", Evidence: Stats{Support: 10, Confidence: 1}},
		&Ordering{First: "/a", Second: "/b", DisplayFirst: "/a", DisplaySecond: "/b", Evidence: Stats{Support: 5, Confidence: 0.97}},
		&TypeError{Agnostic: "ip address [?]", ParamIdx: 0, BadType: "bool", GoodTypes: []string{"ip4"}, Evidence: Stats{Support: 8, Confidence: 0.99}},
		&Sequence{Pattern: "/seq [num]", Display: "/seq [a:num]", ParamIdx: 0, Evidence: Stats{Support: 7, Confidence: 1}},
		&Unique{Pattern: "/hostname DEV[num]", Display: "/hostname DEV[a:num]", ParamIdx: 0, Evidence: Stats{Support: 12, Confidence: 1}},
		&Relational{
			Pattern1: "/p1", Display1: "/p1", ParamIdx1: 0, Transform1: "hex",
			Rel:      relations.Equals,
			Pattern2: "/p2", Display2: "/p2", ParamIdx2: 1, Transform2: "segment6",
			Evidence: Stats{Support: 9, Confidence: 0.98, Score: 42.5},
		},
	}}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), orig.Len())
	}
	for i := range orig.Contracts {
		if orig.Contracts[i].ID() != back.Contracts[i].ID() {
			t.Errorf("contract %d: ID %q != %q", i, back.Contracts[i].ID(), orig.Contracts[i].ID())
		}
		if orig.Contracts[i].Stats() != back.Contracts[i].Stats() {
			t.Errorf("contract %d: stats changed", i)
		}
	}
}

func TestSetJSONUnknownCategory(t *testing.T) {
	var s Set
	if err := json.Unmarshal([]byte(`[{"category":"bogus","contract":{}}]`), &s); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestCheckPresent(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"},
	}}
	ch := NewChecker(set)
	ok := cfgFromText(t, "ok", "router bgp 65015\n")
	if vs := ch.Check(ok); len(vs) != 0 {
		t.Errorf("unexpected violations: %+v", vs)
	}
	bad := cfgFromText(t, "bad", "hostname DEV1\n")
	vs := ch.Check(bad)
	if len(vs) != 1 || vs[0].Category != CatPresent || vs[0].Line != 0 {
		t.Errorf("violations = %+v", vs)
	}
}

func TestCheckOrdering(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Ordering{First: "/redistribute connected", Second: "/neighbor [ip4] peer-group OPT-A",
			DisplayFirst: "/redistribute connected", DisplaySecond: "/neighbor [a:ip4] peer-group OPT-A"},
	}}
	ch := NewChecker(set)
	ok := cfgFromText(t, "ok", "redistribute connected\nneighbor 10.0.0.1 peer-group OPT-A\n")
	if vs := ch.Check(ok); len(vs) != 0 {
		t.Errorf("unexpected violations: %+v", vs)
	}
	// The §5.5 example 3 scenario: a line inserted between the pair.
	bad := cfgFromText(t, "bad", "redistribute connected\nvlan 99\nneighbor 10.0.0.1 peer-group OPT-A\n")
	vs := ch.Check(bad)
	if len(vs) != 1 || vs[0].Category != CatOrdering || vs[0].Line != 1 {
		t.Errorf("violations = %+v", vs)
	}
	// Forall line at end of file also violates.
	tail := cfgFromText(t, "tail", "redistribute connected\n")
	if vs := ch.Check(tail); len(vs) != 1 {
		t.Errorf("violations = %+v", vs)
	}
}

func TestCheckType(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&TypeError{Agnostic: "/ip address [?]", ParamIdx: 0, BadType: "pfx4", GoodTypes: []string{"ip4"}},
	}}
	ch := NewChecker(set)
	ok := cfgFromText(t, "ok", "ip address 10.0.0.1\n")
	if vs := ch.Check(ok); len(vs) != 0 {
		t.Errorf("unexpected violations: %+v", vs)
	}
	bad := cfgFromText(t, "bad", "ip address 10.0.0.1/24\n")
	vs := ch.Check(bad)
	if len(vs) != 1 || vs[0].Category != CatType || vs[0].Line != 1 {
		t.Errorf("violations = %+v", vs)
	}
}

func TestCheckSequence(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Sequence{Pattern: "/seq [num] permit [pfx4]", Display: "/seq [a:num] permit [b:pfx4]", ParamIdx: 0},
	}}
	ch := NewChecker(set)
	ok := cfgFromText(t, "ok", "seq 10 permit 10.0.0.0/8\nseq 20 permit 10.1.0.0/16\nseq 30 permit 10.2.0.0/16\n")
	if vs := ch.Check(ok); len(vs) != 0 {
		t.Errorf("unexpected violations: %+v", vs)
	}
	// Missing the middle element breaks equidistance.
	bad := cfgFromText(t, "bad", "seq 10 permit 10.0.0.0/8\nseq 30 permit 10.2.0.0/16\nseq 40 permit 10.3.0.0/16\n")
	vs := ch.Check(bad)
	if len(vs) != 1 || vs[0].Category != CatSequence {
		t.Errorf("violations = %+v", vs)
	}
	// A single line never violates.
	single := cfgFromText(t, "single", "seq 10 permit 10.0.0.0/8\n")
	if vs := ch.Check(single); len(vs) != 0 {
		t.Errorf("unexpected violations: %+v", vs)
	}
}

func TestCheckUnique(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Unique{Pattern: "/hostname DEV[num]", Display: "/hostname DEV[a:num]", ParamIdx: 0},
	}}
	ch := NewChecker(set)
	a := cfgFromText(t, "a", "hostname DEV1\n")
	b := cfgFromText(t, "b", "hostname DEV2\n")
	dup := cfgFromText(t, "dup", "hostname DEV1\n")
	if vs := ch.CheckAll([]*lexer.Config{a, b}); len(vs) != 0 {
		t.Errorf("unexpected violations: %+v", vs)
	}
	vs := ch.CheckAll([]*lexer.Config{a, b, dup})
	if len(vs) != 1 || vs[0].Category != CatUnique || vs[0].File != "dup" {
		t.Errorf("violations = %+v", vs)
	}
	// Existence component: a config without the pattern violates.
	missing := cfgFromText(t, "missing", "router bgp 1\n")
	vs = ch.Check(missing)
	if len(vs) != 1 || vs[0].Line != 0 {
		t.Errorf("violations = %+v", vs)
	}
}

const figure1Config = `hostname DEV1
!
interface Loopback0
   ip address 10.14.14.34
!
interface Port-Channel11
   evpn ether-segment
      route-target import 00:00:0c:d3:00:0b
!
interface Port-Channel110
   evpn ether-segment
      route-target import 00:00:0c:d3:00:6e
!
ip prefix-list loopback
   seq 10 permit 10.14.14.34/32
   seq 20 permit 0.0.0.0/0
!
router bgp 65015
   maximum-paths 64 ecmp 64
   vlan 251
      rd 10.14.14.117:10251
`

func figure1Contracts() *Set {
	return &Set{Contracts: []Contract{
		// Contract 1: port channel number in hex equals last MAC segment.
		&Relational{
			Pattern1: "/interface Port-Channel[num]", Display1: "/interface Port-Channel[a:num]",
			ParamIdx1: 0, Transform1: "hex",
			Rel:       relations.Equals,
			Pattern2:  "/interface Port-Channel[num]/evpn ether-segment/route-target import [mac]",
			Display2:  "/interface Port-Channel[num]/evpn ether-segment/route-target import [a:mac]",
			ParamIdx2: 0, Transform2: "segment6",
		},
		// Contract 2: every interface address is permitted by a prefix.
		&Relational{
			Pattern1: "/interface Loopback[num]/ip address [ip4]", Display1: "/interface Loopback[num]/ip address [a:ip4]",
			ParamIdx1: 0, Transform1: "id",
			Rel:       relations.Contains,
			Pattern2:  "/ip prefix-list loopback/seq [num] permit [pfx4]",
			Display2:  "/ip prefix-list loopback/seq [a:num] permit [b:pfx4]",
			ParamIdx2: 1, Transform2: "id",
		},
		// Contract 3: the rd number ends with the vlan number.
		&Relational{
			Pattern1: "/router bgp [num]/vlan [num]", Display1: "/router bgp [num]/vlan [a:num]",
			ParamIdx1: 0, Transform1: "str",
			Rel:       relations.EndsWith,
			Pattern2:  "/router bgp [num]/vlan [num]/rd [ip4]:[num]",
			Display2:  "/router bgp [num]/vlan [num]/rd [a:ip4]:[b:num]",
			ParamIdx2: 1, Transform2: "str",
		},
	}}
}

func TestCheckFigure1Relational(t *testing.T) {
	ch := NewChecker(figure1Contracts())
	good := cfgFromText(t, "good", figure1Config)
	if vs := ch.Check(good); len(vs) != 0 {
		t.Fatalf("good config violated: %+v", vs)
	}

	// Break contract 1: wrong MAC segment for Port-Channel110.
	broken1 := strings.Replace(figure1Config, "00:00:0c:d3:00:6e", "00:00:0c:d3:00:70", 1)
	vs := NewChecker(figure1Contracts()).Check(cfgFromText(t, "b1", broken1))
	if len(vs) != 1 || vs[0].Category != CatRelation {
		t.Errorf("broken mac: violations = %+v", vs)
	}

	// Break contract 2: loopback address not covered by any prefix.
	// (Also drop the default route, which would otherwise contain it.)
	broken2 := strings.Replace(figure1Config, "seq 10 permit 10.14.14.34/32", "seq 10 permit 10.99.0.0/16", 1)
	broken2 = strings.Replace(broken2, "seq 20 permit 0.0.0.0/0", "seq 20 permit 10.98.0.0/16", 1)
	vs = NewChecker(figure1Contracts()).Check(cfgFromText(t, "b2", broken2))
	if len(vs) != 1 || vs[0].Category != CatRelation {
		t.Errorf("broken prefix: violations = %+v", vs)
	}

	// Break contract 3: rd suffix no longer matches the vlan.
	broken3 := strings.Replace(figure1Config, "rd 10.14.14.117:10251", "rd 10.14.14.117:10299", 1)
	vs = NewChecker(figure1Contracts()).Check(cfgFromText(t, "b3", broken3))
	if len(vs) != 1 || vs[0].Category != CatRelation {
		t.Errorf("broken rd: violations = %+v", vs)
	}
}

func TestCheckRelationalVacuous(t *testing.T) {
	ch := NewChecker(figure1Contracts())
	empty := cfgFromText(t, "empty", "hostname X9\n")
	if vs := ch.Check(empty); len(vs) != 0 {
		t.Errorf("vacuous contracts should not fire: %+v", vs)
	}
}

func TestCheckRelationalUnknownTransform(t *testing.T) {
	set := &Set{Contracts: []Contract{&Relational{
		Pattern1: "/hostname DEV[num]", Display1: "/hostname DEV[a:num]",
		Transform1: "nosuch", Rel: relations.Equals,
		Pattern2: "/hostname DEV[num]", ParamIdx2: 0, Transform2: "id",
	}}}
	ch := NewChecker(set)
	vs := ch.Check(cfgFromText(t, "c", "hostname DEV1\n"))
	if len(vs) != 1 {
		t.Errorf("unknown transform should be reported: %+v", vs)
	}
}

func TestCoverageFigure1(t *testing.T) {
	ch := NewChecker(figure1Contracts())
	cfg := cfgFromText(t, "good", figure1Config)
	cov := ch.Coverage(cfg)
	if cov.SourceLines != 21 {
		t.Errorf("SourceLines = %d, want 21", cov.SourceLines)
	}
	// The rd line is the sole witness of contract 3: covered.
	rdIdx := -1
	seq10 := -1
	for i, l := range cfg.Lines {
		if strings.HasPrefix(l.Raw, "rd ") {
			rdIdx = i
		}
		if strings.HasPrefix(l.Raw, "seq 10") {
			seq10 = i
		}
	}
	if !cov.ByCategory[CatRelation][rdIdx] {
		t.Error("rd line should be covered by the endswith contract")
	}
	// seq 10 is NOT the sole witness for the loopback IP (0.0.0.0/0 also
	// contains it), so contract 2 covers neither seq line.
	if cov.ByCategory[CatRelation][seq10] {
		t.Error("seq 10 should not be covered (two witnesses exist)")
	}
	if cov.Percent() <= 0 || cov.Percent() > 100 {
		t.Errorf("Percent = %v", cov.Percent())
	}
}

func TestCoveragePresentAndUnique(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"},
		&Present{Pattern: "/vlan [num]", Display: "/vlan [a:num]"},
		&Unique{Pattern: "/hostname DEV[num]", Display: "/hostname DEV[a:num]", ParamIdx: 0},
	}}
	ch := NewChecker(set)
	cfg := cfgFromText(t, "c", "hostname DEV1\nrouter bgp 65015\nvlan 1\nvlan 2\n")
	cov := ch.Coverage(cfg)
	// router bgp: single match -> covered. vlan: two matches -> neither.
	if len(cov.ByCategory[CatPresent]) != 1 {
		t.Errorf("present coverage = %v", cov.ByCategory[CatPresent])
	}
	if len(cov.ByCategory[CatUnique]) != 1 {
		t.Errorf("unique coverage = %v", cov.ByCategory[CatUnique])
	}
	if cov.Percent() != 50 {
		t.Errorf("Percent = %v, want 50", cov.Percent())
	}
}

func TestCoverageOrdering(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Ordering{First: "/a", Second: "/b", DisplayFirst: "/a", DisplaySecond: "/b"},
	}}
	ch := NewChecker(set)
	cfg := cfgFromText(t, "c", "a\nb\nc\n")
	cov := ch.Coverage(cfg)
	// Removing b leaves a followed by c: b is covered.
	if len(cov.ByCategory[CatOrdering]) != 1 {
		t.Errorf("ordering coverage = %v", cov.ByCategory[CatOrdering])
	}
	// With a second b after the first, removing either b still leaves a
	// valid successor... (a, b, b): removing the first b leaves a->b.
	cfg2 := cfgFromText(t, "c2", "a\nb\nb\n")
	cov2 := ch.Coverage(cfg2)
	if len(cov2.ByCategory[CatOrdering]) != 0 {
		t.Errorf("redundant successor should not be covered: %v", cov2.ByCategory[CatOrdering])
	}
}

func TestCoverageSequence(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Sequence{Pattern: "/seq [num]", Display: "/seq [a:num]", ParamIdx: 0},
	}}
	ch := NewChecker(set)
	cfg := cfgFromText(t, "c", "seq 10\nseq 20\nseq 30\nseq 40\n")
	cov := ch.Coverage(cfg)
	// Interior lines are covered; endpoints are not (10,20,30 minus 10 is
	// still equidistant).
	if len(cov.ByCategory[CatSequence]) != 2 {
		t.Errorf("sequence coverage = %v, want 2 interior lines", cov.ByCategory[CatSequence])
	}
}

func TestCheckAllDeterministicOrder(t *testing.T) {
	set := &Set{Contracts: []Contract{
		&Present{Pattern: "/x", Display: "/x"},
		&Present{Pattern: "/y", Display: "/y"},
	}}
	ch := NewChecker(set)
	a := cfgFromText(t, "a", "hostname H1\n")
	b := cfgFromText(t, "b", "hostname H2\n")
	v1 := ch.CheckAll([]*lexer.Config{a, b})
	v2 := ch.CheckAll([]*lexer.Config{a, b})
	if len(v1) != 4 || len(v2) != 4 {
		t.Fatalf("violations = %d, %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Error("violation order not deterministic")
		}
	}
}

func TestSetHelpers(t *testing.T) {
	s := &Set{Contracts: []Contract{
		&Present{Pattern: "a"}, &Present{Pattern: "b"}, &Unique{Pattern: "c"},
	}}
	if s.Count(CatPresent) != 2 || s.Count(CatUnique) != 1 || s.Count(CatType) != 0 {
		t.Error("Count wrong")
	}
	by := s.ByCategory()
	if len(by[CatPresent]) != 2 {
		t.Error("ByCategory wrong")
	}
	if len(Categories()) != 6 {
		t.Error("Categories wrong")
	}
}

func TestSetWithout(t *testing.T) {
	s := &Set{Contracts: []Contract{
		&Present{Pattern: "/a", Display: "/a"},
		&Present{Pattern: "/b", Display: "/b"},
		&Unique{Pattern: "/c", ParamIdx: 0},
	}}
	out, n := s.Without(map[string]bool{"present|/a": true, "nope": true})
	if n != 1 || out.Len() != 2 {
		t.Fatalf("Without: n=%d len=%d", n, out.Len())
	}
	for _, c := range out.Contracts {
		if c.ID() == "present|/a" {
			t.Error("suppressed contract survived")
		}
	}
	// The original set is untouched.
	if s.Len() != 3 {
		t.Error("original set mutated")
	}
}
