// Map-reduce combiner protocol for contract state that spans
// configurations.
//
// Most contract categories check one configuration at a time, so a
// sharded driver can evaluate them independently and concatenate the
// results. Unique contracts are the exception: their state (the set of
// values seen so far, with the first site as witness) spans the whole
// corpus. The combiner protocol splits that state the map-reduce way:
// each shard folds its configurations, in corpus order, into an
// Accumulator (the map side), and a single Reduce over the per-shard
// accumulators, taken in shard order, emits exactly the violations a
// sequential scan of the whole corpus would have produced. The
// accumulator retains only ordered value sites — O(sites), not
// O(configuration) — which is what lets a fleet-scale run stream
// configurations instead of holding them all in memory, and what a
// future worker-process backend would serialize across the shard
// boundary.
package contracts

import (
	"fmt"

	"concord/internal/faultinject"
	"concord/internal/lexer"
)

// Accumulator is the map side of a combiner: one shard's fold of
// cross-configuration contract state. Configurations must be added in
// corpus order; accumulators are not safe for concurrent use.
type Accumulator interface {
	// Add folds one configuration's contribution into the accumulator.
	Add(cfg *lexer.Config)
}

// Combiner creates per-shard accumulators and reduces them, in shard
// order, to the violations of the cross-configuration contracts. For
// any partition of a corpus into contiguous shards, reducing the
// per-shard accumulators is equivalent to folding the whole corpus
// into a single accumulator and reducing that.
type Combiner interface {
	NewAccumulator() Accumulator
	// Reduce merges accumulators created by this combiner. Passing an
	// accumulator from a different combiner is a programming error.
	Reduce(accs []Accumulator) []Violation
}

// UniqueAccumulator folds configurations into the ordered value-site
// lists of every unique contract. Sites can also be fed directly via
// AddSites when a caller replays cached contributions (the incremental
// check-artifact path) instead of holding the lexed configuration.
type UniqueAccumulator struct {
	ch       *Checker
	names    []string
	contribs []map[string][]UniqueSite
}

// Add extracts and folds cfg's unique-contract contributions.
func (a *UniqueAccumulator) Add(cfg *lexer.Config) {
	a.AddSites(cfg.Name, a.ch.UniqueContributions(cfg))
}

// AddSites folds a pre-extracted contribution for the named
// configuration, preserving corpus order.
func (a *UniqueAccumulator) AddSites(name string, sites map[string][]UniqueSite) {
	a.names = append(a.names, name)
	a.contribs = append(a.contribs, sites)
}

// Len returns the number of configurations folded in.
func (a *UniqueAccumulator) Len() int { return len(a.names) }

// Entry returns the i'th folded configuration's name and site lists,
// in fold order. It exposes the accumulator's contents for wire
// serialization: a worker process folds its shard locally, ships the
// entries, and the parent replays them through AddSites on a fresh
// accumulator, so Reduce sees exactly the state a local fold would
// have produced. The returned map is the accumulator's own — callers
// must not mutate it.
func (a *UniqueAccumulator) Entry(i int) (string, map[string][]UniqueSite) {
	return a.names[i], a.contribs[i]
}

// UniqueCombiner is the Combiner for the set's unique contracts. Its
// Reduce reproduces CheckUniqueAcross over the concatenated corpus,
// including first-seen-wins witness ordering.
type UniqueCombiner struct {
	ch *Checker
}

// UniqueCombiner returns the checker's combiner for cross-
// configuration uniqueness.
func (ch *Checker) UniqueCombiner() *UniqueCombiner {
	return &UniqueCombiner{ch: ch}
}

// NewAccumulator creates an empty per-shard accumulator.
func (c *UniqueCombiner) NewAccumulator() Accumulator {
	return &UniqueAccumulator{ch: c.ch}
}

// Reduce merges the accumulators in shard order and evaluates every
// unique contract over the concatenated site lists: the first site of
// a value is the witness, every later site a violation. Panics inside
// a contract are contained exactly as in the direct scan (lenient
// skips the contract with a diagnostic, strict re-raises).
func (c *UniqueCombiner) Reduce(accs []Accumulator) []Violation {
	ch := c.ch
	var names []string
	var contribs []map[string][]UniqueSite
	for _, acc := range accs {
		a := acc.(*UniqueAccumulator)
		names = append(names, a.names...)
		contribs = append(contribs, a.contribs...)
	}
	var out []Violation
	for _, u := range ch.uniqueContracts() {
		u := u
		ch.contained(u, "", func() {
			faultinject.At("contracts.check.unique_global", u.ID())
			type site struct {
				file string
				line int
			}
			seen := make(map[string]site)
			for ci := range contribs {
				for _, s := range contribs[ci][u.ID()] {
					if prev, dup := seen[s.Key]; dup {
						out = append(out, violation(u, names[ci], s.Line,
							fmt.Sprintf("value %s duplicates %s:%d", s.Display, prev.file, prev.line)))
						continue
					}
					seen[s.Key] = site{file: names[ci], line: s.Line}
				}
			}
		})
	}
	sortViolations(out)
	return out
}
