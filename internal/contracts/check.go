package contracts

import (
	"fmt"
	"math/big"
	"sort"

	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/telemetry"
)

// Violation reports one contract failure localized to a configuration
// line (Line is 1-based; 0 means the violation concerns the whole file,
// e.g. a missing line).
type Violation struct {
	Category   Category `json:"category"`
	ContractID string   `json:"contract_id"`
	Contract   string   `json:"contract"`
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Detail     string   `json:"detail"`
}

// Checker evaluates a contract set against configurations (§3.8). It is
// safe for concurrent use: per-configuration state lives on the stack.
type Checker struct {
	set        *Set
	transforms map[string]relations.Transform
	custom     map[relations.Rel]func(lhs, witness netdata.Value) bool
	rec        *telemetry.Recorder
	dc         *diag.Collector
	strict     bool
}

// CheckerOption customizes a checker built by NewChecker.
type CheckerOption func(*Checker)

// WithTransforms selects a custom transformation registry (it must
// include every transform named by the set's relational contracts).
// Without this option the checker uses relations.DefaultTransforms.
func WithTransforms(ts []relations.Transform) CheckerOption {
	return func(ch *Checker) {
		m := make(map[string]relations.Transform, len(ts))
		for _, t := range ts {
			m[t.Name] = t
		}
		ch.transforms = m
	}
}

// WithRelations supplies user-defined relation definitions; they must
// cover every non-built-in relation named by the set's contracts.
func WithRelations(defs []relations.Definition) CheckerOption {
	return func(ch *Checker) {
		if len(defs) == 0 {
			return
		}
		if ch.custom == nil {
			ch.custom = make(map[relations.Rel]func(lhs, witness netdata.Value) bool, len(defs))
		}
		for _, d := range defs {
			ch.custom[d.Rel] = d.Holds
		}
	}
}

// WithTelemetry attaches a recorder; the checker counts contracts
// evaluated, violations found, and witness-cache hits and misses
// (check.* counters).
func WithTelemetry(rec *telemetry.Recorder) CheckerOption {
	return func(ch *Checker) { ch.rec = rec }
}

// WithDiagnostics attaches a collector and enables per-contract fault
// containment: a contract whose evaluation panics is skipped for the
// configuration (or batch) being checked, recorded as an error
// diagnostic and a check.contracts_skipped count. Without a collector
// — or with WithStrict — panics propagate to the caller.
func WithDiagnostics(dc *diag.Collector) CheckerOption {
	return func(ch *Checker) { ch.dc = dc }
}

// WithStrict disables per-contract containment even when a diagnostics
// collector is attached, letting panics propagate so strict callers
// fail fast.
func WithStrict(strict bool) CheckerOption {
	return func(ch *Checker) { ch.strict = strict }
}

// NewChecker builds a checker for the given contract set. With no
// options it uses the default transformation registry; see
// WithTransforms, WithRelations, and WithTelemetry.
func NewChecker(set *Set, opts ...CheckerOption) *Checker {
	ch := &Checker{set: set}
	for _, o := range opts {
		o(ch)
	}
	if ch.transforms == nil {
		WithTransforms(relations.DefaultTransforms())(ch)
	}
	return ch
}

// NewCheckerWithTransforms builds a checker with a custom transformation
// registry.
//
// Deprecated: use NewChecker(set, WithTransforms(ts)).
func NewCheckerWithTransforms(set *Set, ts []relations.Transform) *Checker {
	return NewChecker(set, WithTransforms(ts))
}

// NewCheckerWith builds a checker with custom transforms and custom
// relation definitions.
//
// Deprecated: use NewChecker(set, WithTransforms(ts), WithRelations(defs)).
func NewCheckerWith(set *Set, ts []relations.Transform, defs []relations.Definition) *Checker {
	return NewChecker(set, WithTransforms(ts), WithRelations(defs))
}

// holds evaluates a relation, consulting custom definitions for
// non-built-in names.
func (ch *Checker) holds(rel relations.Rel, lhs, witness netdata.Value) bool {
	if f, ok := ch.custom[rel]; ok {
		return f(lhs, witness)
	}
	return rel.Holds(lhs, witness)
}

// view is the per-configuration evaluation state.
type view struct {
	cfg       *lexer.Config
	byPattern map[string][]int
	byText    map[string][]int // exact-text index for constant contracts
	// transformed caches witness values keyed by pattern|idx|transform.
	transformed map[string][]witness
	// hits/misses count witness-cache lookups, folded into the
	// checker's recorder when the view is discarded.
	hits, misses int64
}

type witness struct {
	line  int
	value netdata.Value
}

func newView(cfg *lexer.Config) *view {
	v := &view{
		cfg:         cfg,
		byPattern:   make(map[string][]int),
		transformed: make(map[string][]witness),
	}
	for i := range cfg.Lines {
		p := cfg.Lines[i].Pattern
		v.byPattern[p] = append(v.byPattern[p], i)
	}
	return v
}

// matches returns the line indexes matching a present contract,
// consulting the exact-text index for constant contracts.
func (v *view) matches(c *Present) []int {
	if !c.Exact {
		return v.byPattern[c.Pattern]
	}
	if v.byText == nil {
		v.byText = make(map[string][]int)
		for i := range v.cfg.Lines {
			t := v.cfg.Lines[i].Text
			v.byText[t] = append(v.byText[t], i)
		}
	}
	return v.byText[c.Pattern]
}

// values returns the transformed parameter values for all lines of a
// pattern, caching the result.
func (v *view) values(ch *Checker, pattern string, paramIdx int, transform string) []witness {
	key := fmt.Sprintf("%s|%d|%s", pattern, paramIdx, transform)
	if ws, ok := v.transformed[key]; ok {
		v.hits++
		return ws
	}
	v.misses++
	tr, trOK := ch.transforms[transform]
	var ws []witness
	for _, li := range v.byPattern[pattern] {
		line := &v.cfg.Lines[li]
		if paramIdx >= len(line.Params) || !trOK {
			continue
		}
		tv, ok := tr.Apply(line.Params[paramIdx].Value)
		if !ok {
			continue
		}
		ws = append(ws, witness{line: li, value: tv})
	}
	v.transformed[key] = ws
	return ws
}

// Check evaluates every per-configuration contract against cfg and
// returns the violations in deterministic order. Cross-configuration
// unique contracts are evaluated by CheckAll. With WithDiagnostics
// (and not WithStrict), a contract whose evaluation panics is skipped
// for this configuration with a diagnostic instead of crashing the
// check.
func (ch *Checker) Check(cfg *lexer.Config) []Violation {
	v := newView(cfg)
	var out []Violation
	for _, c := range ch.set.Contracts {
		c := c
		ch.contained(c, cfg.Name, func() {
			faultinject.At("contracts.check.contract", c.ID())
			switch c := c.(type) {
			case *Present:
				out = append(out, ch.checkPresent(v, c)...)
			case *Ordering:
				out = append(out, ch.checkOrdering(v, c)...)
			case *TypeError:
				out = append(out, ch.checkType(v, c)...)
			case *Sequence:
				out = append(out, ch.checkSequence(v, c)...)
			case *Unique:
				out = append(out, ch.checkUniqueExistence(v, c)...)
			case *Relational:
				out = append(out, ch.checkRelational(v, c)...)
			}
		})
	}
	sortViolations(out)
	ch.rec.Add("check.contracts_evaluated", int64(len(ch.set.Contracts)))
	ch.rec.Add("check.violations", int64(len(out)))
	ch.flushCache(v)
	return out
}

// contained runs one contract's evaluation with panic containment when
// a diagnostics collector is attached and strict mode is off: a
// recovered panic skips the contract for the current configuration (or
// batch), recording an error diagnostic and a check.contracts_skipped
// count. Otherwise the panic propagates unchanged.
func (ch *Checker) contained(c Contract, source string, eval func()) {
	if ch.dc == nil || ch.strict {
		eval()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic("check", source, r)
			d.Message = "contract " + c.ID() + " skipped: " + d.Message
			ch.dc.Add(d)
			ch.rec.Add("check.contracts_skipped", 1)
		}
	}()
	eval()
}

// flushCache folds a view's witness-cache statistics into the recorder.
func (ch *Checker) flushCache(v *view) {
	if ch.rec == nil || v.hits+v.misses == 0 {
		return
	}
	ch.rec.Add("check.witness_cache.hits", v.hits)
	ch.rec.Add("check.witness_cache.misses", v.misses)
}

// CheckAll evaluates the full set against a batch of configurations,
// including the cross-configuration uniqueness component of unique
// contracts.
func (ch *Checker) CheckAll(cfgs []*lexer.Config) []Violation {
	var out []Violation
	for _, cfg := range cfgs {
		out = append(out, ch.Check(cfg)...)
	}
	out = append(out, ch.checkUniqueGlobal(cfgs)...)
	sortViolations(out)
	return out
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].File != vs[j].File {
			return vs[i].File < vs[j].File
		}
		if vs[i].Line != vs[j].Line {
			return vs[i].Line < vs[j].Line
		}
		return vs[i].ContractID < vs[j].ContractID
	})
}

func violation(c Contract, file string, line int, detail string) Violation {
	return Violation{
		Category:   c.Category(),
		ContractID: c.ID(),
		Contract:   c.String(),
		File:       file,
		Line:       line,
		Detail:     detail,
	}
}

func (ch *Checker) checkPresent(v *view, c *Present) []Violation {
	if len(v.matches(c)) > 0 {
		return nil
	}
	return []Violation{violation(c, v.cfg.Name, 0,
		fmt.Sprintf("no line matches required pattern %s", c.Display))}
}

// successor returns the index of the line following li within the same
// (config vs. metadata) segment, or -1.
func successor(cfg *lexer.Config, li int) int {
	next := li + 1
	if next >= len(cfg.Lines) || cfg.Lines[next].Meta != cfg.Lines[li].Meta {
		return -1
	}
	return next
}

func (ch *Checker) checkOrdering(v *view, c *Ordering) []Violation {
	var out []Violation
	for _, li := range v.byPattern[c.First] {
		next := successor(v.cfg, li)
		if next < 0 || v.cfg.Lines[next].Pattern != c.Second {
			line := &v.cfg.Lines[li]
			out = append(out, violation(c, v.cfg.Name, line.Num,
				fmt.Sprintf("line %q is not followed by a line matching %s", line.Raw, c.DisplaySecond)))
		}
	}
	return out
}

func (ch *Checker) checkType(v *view, c *TypeError) []Violation {
	var out []Violation
	for i := range v.cfg.Lines {
		line := &v.cfg.Lines[i]
		if c.ParamIdx >= len(line.Params) {
			continue
		}
		if line.Params[c.ParamIdx].Type != c.BadType {
			continue
		}
		if lexer.TypeAgnostic(line.Pattern) != c.Agnostic {
			continue
		}
		out = append(out, violation(c, v.cfg.Name, line.Num,
			fmt.Sprintf("parameter %s has forbidden type [%s] (expected one of %v)",
				lexer.VarName(c.ParamIdx), c.BadType, c.GoodTypes)))
	}
	return out
}

// numericValues extracts the big.Int values of a numeric parameter for
// every line of a pattern, in line order, paired with line indexes.
func numericValues(cfg *lexer.Config, lines []int, paramIdx int) (vals []*big.Int, at []int) {
	for _, li := range lines {
		line := &cfg.Lines[li]
		if paramIdx >= len(line.Params) {
			continue
		}
		n, ok := line.Params[paramIdx].Value.(netdata.Num)
		if !ok {
			continue
		}
		vals = append(vals, n.Big())
		at = append(at, li)
	}
	return vals, at
}

// equidistant reports whether consecutive differences are all equal and
// nonzero. Fewer than two values are trivially equidistant.
func equidistant(vals []*big.Int) bool {
	if len(vals) < 2 {
		return true
	}
	diff := new(big.Int).Sub(vals[1], vals[0])
	if diff.Sign() == 0 {
		return false
	}
	for i := 2; i < len(vals); i++ {
		d := new(big.Int).Sub(vals[i], vals[i-1])
		if d.Cmp(diff) != 0 {
			return false
		}
	}
	return true
}

func (ch *Checker) checkSequence(v *view, c *Sequence) []Violation {
	vals, at := numericValues(v.cfg, v.byPattern[c.Pattern], c.ParamIdx)
	if len(vals) < 2 || equidistant(vals) {
		return nil
	}
	// Localize to the first value that breaks the expected step.
	diff := new(big.Int).Sub(vals[1], vals[0])
	for i := 2; i < len(vals); i++ {
		d := new(big.Int).Sub(vals[i], vals[i-1])
		if d.Cmp(diff) != 0 {
			line := &v.cfg.Lines[at[i]]
			return []Violation{violation(c, v.cfg.Name, line.Num,
				fmt.Sprintf("value %s breaks the sequence step %s", vals[i], diff))}
		}
	}
	line := &v.cfg.Lines[at[1]]
	return []Violation{violation(c, v.cfg.Name, line.Num, "sequence step is zero")}
}

// checkUniqueExistence enforces the per-configuration existence
// component of a unique contract.
func (ch *Checker) checkUniqueExistence(v *view, c *Unique) []Violation {
	if len(v.byPattern[c.Pattern]) > 0 {
		return nil
	}
	return []Violation{violation(c, v.cfg.Name, 0,
		fmt.Sprintf("no line defines the unique parameter of %s", c.Display))}
}

// CheckUniqueAcross evaluates only the cross-configuration uniqueness
// component of the set's unique contracts, for callers that parallelize
// per-configuration checks themselves and run the global pass once.
func (ch *Checker) CheckUniqueAcross(cfgs []*lexer.Config) []Violation {
	out := ch.checkUniqueGlobal(cfgs)
	sortViolations(out)
	return out
}

// checkUniqueGlobal enforces global value uniqueness across the batch.
func (ch *Checker) checkUniqueGlobal(cfgs []*lexer.Config) []Violation {
	var out []Violation
	for _, c := range ch.set.Contracts {
		u, ok := c.(*Unique)
		if !ok {
			continue
		}
		ch.contained(u, "", func() {
			faultinject.At("contracts.check.unique_global", u.ID())
			type site struct {
				file string
				line int
			}
			seen := make(map[string]site)
			for _, cfg := range cfgs {
				for i := range cfg.Lines {
					line := &cfg.Lines[i]
					if line.Pattern != u.Pattern || u.ParamIdx >= len(line.Params) {
						continue
					}
					key := line.Params[u.ParamIdx].Value.Key()
					if prev, dup := seen[key]; dup {
						out = append(out, violation(u, cfg.Name, line.Num,
							fmt.Sprintf("value %s duplicates %s:%d",
								line.Params[u.ParamIdx].Value, prev.file, prev.line)))
						continue
					}
					seen[key] = site{file: cfg.Name, line: line.Num}
				}
			}
		})
	}
	return out
}

func (ch *Checker) checkRelational(v *view, c *Relational) []Violation {
	l1s := v.byPattern[c.Pattern1]
	if len(l1s) == 0 {
		return nil // vacuously true
	}
	t1, ok := ch.transforms[c.Transform1]
	if !ok {
		return []Violation{violation(c, v.cfg.Name, 0,
			fmt.Sprintf("unknown transform %q", c.Transform1))}
	}
	wits := v.values(ch, c.Pattern2, c.ParamIdx2, c.Transform2)
	var out []Violation
	for _, li := range l1s {
		line := &v.cfg.Lines[li]
		if c.ParamIdx1 >= len(line.Params) {
			continue
		}
		v1, ok := t1.Apply(line.Params[c.ParamIdx1].Value)
		if !ok {
			continue
		}
		found := false
		for _, w := range wits {
			if w.line == li && c.Pattern2 == c.Pattern1 && c.ParamIdx2 == c.ParamIdx1 {
				continue // a parameter is not its own witness
			}
			if ch.holds(c.Rel, v1, w.value) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, violation(c, v.cfg.Name, line.Num,
				fmt.Sprintf("no witness matching %s relates to value %s",
					c.Display2, line.Params[c.ParamIdx1].Value)))
		}
	}
	return out
}

// FindWitness reports the witness line indexes satisfying the contract
// for the forall line at index li, used by coverage analysis.
func (ch *Checker) findWitnesses(v *view, c *Relational, li int) []int {
	line := &v.cfg.Lines[li]
	if c.ParamIdx1 >= len(line.Params) {
		return nil
	}
	t1, ok := ch.transforms[c.Transform1]
	if !ok {
		return nil
	}
	v1, ok := t1.Apply(line.Params[c.ParamIdx1].Value)
	if !ok {
		return nil
	}
	var out []int
	for _, w := range v.values(ch, c.Pattern2, c.ParamIdx2, c.Transform2) {
		if w.line == li && c.Pattern2 == c.Pattern1 && c.ParamIdx2 == c.ParamIdx1 {
			continue
		}
		if ch.holds(c.Rel, v1, w.value) {
			out = append(out, w.line)
		}
	}
	return out
}
