package contracts

import (
	"fmt"
	"math/big"
	"sort"
	"time"

	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/telemetry"
)

// Violation reports one contract failure localized to a configuration
// line (Line is 1-based; 0 means the violation concerns the whole file,
// e.g. a missing line — render those with Location, which omits the
// line number).
type Violation struct {
	Category   Category `json:"category"`
	ContractID string   `json:"contract_id"`
	Contract   string   `json:"contract"`
	File       string   `json:"file"`
	Line       int      `json:"line,omitempty"`
	Detail     string   `json:"detail"`
}

// FileLevel reports whether the violation concerns the whole file
// rather than a specific line (e.g. a required line is missing).
func (v *Violation) FileLevel() bool { return v.Line <= 0 }

// Location renders the violation's position: "file:line" for line
// violations, just "file" for file-level ones (never "file:0").
func (v *Violation) Location() string {
	if v.FileLevel() {
		return v.File
	}
	return fmt.Sprintf("%s:%d", v.File, v.Line)
}

// Checker evaluates a contract set against configurations (§3.8). It
// compiles the set once at construction (see CompiledSet) and is safe
// for concurrent use: per-configuration state lives on the stack, so
// one checker can be shared across a worker pool. The contract set must
// not be mutated after the checker is built.
type Checker struct {
	set        *Set
	cs         *CompiledSet
	transforms map[string]relations.Transform
	custom     map[relations.Rel]func(lhs, witness netdata.Value) bool
	rec        *telemetry.Recorder
	dc         *diag.Collector
	strict     bool
	linear     bool
	interns    *intern.Table
}

// CheckerOption customizes a checker built by NewChecker.
type CheckerOption func(*Checker)

// WithTransforms selects a custom transformation registry (it must
// include every transform named by the set's relational contracts).
// Without this option the checker uses relations.DefaultTransforms.
func WithTransforms(ts []relations.Transform) CheckerOption {
	return func(ch *Checker) {
		m := make(map[string]relations.Transform, len(ts))
		for _, t := range ts {
			m[t.Name] = t
		}
		ch.transforms = m
	}
}

// WithRelations supplies user-defined relation definitions; they must
// cover every non-built-in relation named by the set's contracts.
func WithRelations(defs []relations.Definition) CheckerOption {
	return func(ch *Checker) {
		if len(defs) == 0 {
			return
		}
		if ch.custom == nil {
			ch.custom = make(map[relations.Rel]func(lhs, witness netdata.Value) bool, len(defs))
		}
		for _, d := range defs {
			ch.custom[d.Rel] = d.Holds
		}
	}
}

// WithTelemetry attaches a recorder; the checker counts contracts
// evaluated, contracts skipped by the pattern index, violations found,
// index build time, and witness-cache hits and misses (check.*
// counters).
func WithTelemetry(rec *telemetry.Recorder) CheckerOption {
	return func(ch *Checker) { ch.rec = rec }
}

// WithDiagnostics attaches a collector and enables per-contract fault
// containment: a contract whose evaluation panics is skipped for the
// configuration (or batch) being checked, recorded as an error
// diagnostic and a check.contracts_skipped count. Without a collector
// — or with WithStrict — panics propagate to the caller.
func WithDiagnostics(dc *diag.Collector) CheckerOption {
	return func(ch *Checker) { ch.dc = dc }
}

// WithStrict disables per-contract containment even when a diagnostics
// collector is attached, letting panics propagate so strict callers
// fail fast.
func WithStrict(strict bool) CheckerOption {
	return func(ch *Checker) { ch.strict = strict }
}

// WithInterns attaches the run's string intern table (the one that
// assigned PatternID values to the configurations being checked).
// Contract-referenced patterns are interned into it at compile time, so
// the per-line anchor lookup in the view index becomes array indexing
// instead of string hashing. Configurations carrying a different table
// (or none) silently fall back to the string path; results are
// identical either way.
func WithInterns(tab *intern.Table) CheckerOption {
	return func(ch *Checker) { ch.interns = tab }
}

// WithLinearScan forces the pre-compilation check strategy: every
// contract is evaluated against every configuration with no
// index-based skipping. It exists for differential testing and
// benchmarking of the compiled hot path; results are identical either
// way.
func WithLinearScan(linear bool) CheckerOption {
	return func(ch *Checker) { ch.linear = linear }
}

// NewChecker builds a checker for the given contract set, compiling the
// set into its indexed form. With no options it uses the default
// transformation registry; see WithTransforms, WithRelations, and
// WithTelemetry.
func NewChecker(set *Set, opts ...CheckerOption) *Checker {
	ch := &Checker{set: set}
	for _, o := range opts {
		o(ch)
	}
	if ch.transforms == nil {
		WithTransforms(relations.DefaultTransforms())(ch)
	}
	start := time.Now()
	ch.cs = CompileWithInterns(set, ch.interns)
	ch.rec.Add("check.compile_ns", time.Since(start).Nanoseconds())
	return ch
}

// ForRequest returns a checker that shares the receiver's compiled set
// — no recompilation, no new indexes — but routes telemetry and
// contained-fault diagnostics to request-scoped sinks (either may be
// nil). A resident server compiles one checker per contract set and
// forks it per request, so concurrent requests share the compiled
// state while keeping their own spans and diagnostics.
func (ch *Checker) ForRequest(rec *telemetry.Recorder, dc *diag.Collector) *Checker {
	fork := *ch
	fork.rec = rec
	fork.dc = dc
	return &fork
}

// CompiledSet exposes the checker's compiled contract set (primarily
// for inspection and tests).
func (ch *Checker) CompiledSet() *CompiledSet { return ch.cs }

// holds evaluates a relation, consulting custom definitions for
// non-built-in names.
func (ch *Checker) holds(rel relations.Rel, lhs, witness netdata.Value) bool {
	if f, ok := ch.custom[rel]; ok {
		return f(lhs, witness)
	}
	return rel.Holds(lhs, witness)
}

// view is the per-configuration evaluation state: the pattern index
// (interned pattern ID -> line indexes), the agnostic-pattern index for
// type contracts, and lazily decoded numeric and witness columns. All
// of it is built against the checker's CompiledSet, computed once per
// configuration and shared across every contract evaluation.
type view struct {
	cfg *lexer.Config
	cs  *CompiledSet
	// byID maps interned pattern IDs to line indexes.
	byID [][]int
	// presentIDs lists the interned pattern IDs with at least one line,
	// in first-appearance order (deterministic per configuration).
	presentIDs []int
	// byAg maps agnostic patterns (with at least one type contract) to
	// line indexes; built only when the set has type contracts.
	byAg map[string][]int
	// byText is the exact-text index for constant contracts, built
	// lazily on first use.
	byText map[string][]int
	// numeric caches decoded big.Int columns per CompiledSet numSlot.
	numeric []numericCol
	// witness caches transformed witness columns (and their equality
	// key indexes) per CompiledSet witSlot.
	witness []witCol
	// hits/misses count witness-cache lookups, folded into the
	// checker's recorder when the view is discarded.
	hits, misses int64
}

type numericCol struct {
	done bool
	vals []*big.Int
	at   []int
}

// witCol is one cached witness column: the transformed values in line
// order and, when an equals contract reads the column, a key index
// (value key -> line indexes in column order) so equality witness
// lookup is a hash probe instead of a scan that re-stringifies every
// witness value per forall line.
type witCol struct {
	done bool
	ws   []witness
	eq   map[string][]int
}

type witness struct {
	line  int
	value netdata.Value
}

// newView builds the per-configuration indexes in one pass over the
// lines. Index build time accumulates under check.index_build_ns.
func (ch *Checker) newView(cfg *lexer.Config) *view {
	var start time.Time
	if ch.rec != nil {
		start = time.Now()
	}
	cs := ch.cs
	v := &view{
		cfg:     cfg,
		cs:      cs,
		byID:    make([][]int, len(cs.patterns)),
		numeric: make([]numericCol, len(cs.numSlots)),
	}
	if cs.typeN > 0 {
		v.byAg = make(map[string][]int)
	}
	if len(cs.witSlots) > 0 {
		v.witness = make([]witCol, len(cs.witSlots))
	}
	// With the run's intern table attached (and matching this config's),
	// the anchor lookup is two array loads off the line's PatternID; the
	// string map remains the fallback for foreign or hand-built lines.
	dense := cs.denseByTab
	if cfg.Interns != cs.tab {
		dense = nil
	}
	for i := range cfg.Lines {
		line := &cfg.Lines[i]
		p := line.Pattern
		var id int
		var ok bool
		if tid := int(line.PatternID); dense != nil && tid > 0 && tid < len(dense) {
			d := dense[tid]
			id, ok = int(d)-1, d != 0
		} else {
			id, ok = cs.ids[p]
		}
		if ok {
			if len(v.byID[id]) == 0 {
				v.presentIDs = append(v.presentIDs, id)
			}
			v.byID[id] = append(v.byID[id], i)
		}
		if cs.typeN > 0 && len(line.Params) > 0 {
			ag := cs.agnostic(p)
			if _, hasContracts := cs.typesByAg[ag]; hasContracts {
				v.byAg[ag] = append(v.byAg[ag], i)
			}
		}
	}
	if ch.rec != nil {
		ch.rec.Add("check.index_build_ns", time.Since(start).Nanoseconds())
	}
	return v
}

// lines returns the line indexes whose pattern equals p. Patterns not
// referenced by any contract have no interned ID and return nil, which
// is correct: nothing ever asks for them.
func (v *view) lines(p string) []int {
	id, ok := v.cs.ids[p]
	if !ok {
		return nil
	}
	return v.byID[id]
}

// matches returns the line indexes matching a present contract,
// consulting the exact-text index for constant contracts.
func (v *view) matches(c *Present) []int {
	if !c.Exact {
		return v.lines(c.Pattern)
	}
	if v.byText == nil {
		v.byText = make(map[string][]int)
		for i := range v.cfg.Lines {
			t := v.cfg.Lines[i].Text
			v.byText[t] = append(v.byText[t], i)
		}
	}
	return v.byText[c.Pattern]
}

// values returns the transformed parameter values for all lines of a
// pattern, caching the column in its compiled witness slot so it is
// computed once per configuration no matter how many contracts share
// it.
func (v *view) values(ch *Checker, pattern string, paramIdx int, transform string) []witness {
	col := v.column(ch, pattern, paramIdx, transform)
	if col == nil {
		// A column no relational contract registered (possible only for
		// hand-constructed calls); compute without caching.
		return v.computeWitnesses(ch, pattern, paramIdx, transform)
	}
	return col.ws
}

// column returns the cached witness column for a registered slot, or
// nil when the (pattern, param, transform) triple has no slot.
func (v *view) column(ch *Checker, pattern string, paramIdx int, transform string) *witCol {
	slot, ok := v.cs.witSlots[witKey{pattern, paramIdx, transform}]
	if !ok {
		return nil
	}
	col := &v.witness[slot]
	if col.done {
		v.hits++
		return col
	}
	v.misses++
	col.ws = v.computeWitnesses(ch, pattern, paramIdx, transform)
	col.done = true
	return col
}

// equalsIndex returns the column's key index, building it on first use.
func (col *witCol) equalsIndex() map[string][]int {
	if col.eq == nil {
		col.eq = make(map[string][]int, len(col.ws))
		for _, w := range col.ws {
			k := w.value.Key()
			col.eq[k] = append(col.eq[k], w.line)
		}
	}
	return col.eq
}

func (v *view) computeWitnesses(ch *Checker, pattern string, paramIdx int, transform string) []witness {
	tr, trOK := ch.transforms[transform]
	var ws []witness
	for _, li := range v.lines(pattern) {
		line := &v.cfg.Lines[li]
		if paramIdx >= len(line.Params) || !trOK {
			continue
		}
		tv, ok := tr.Apply(line.Params[paramIdx].Value)
		if !ok {
			continue
		}
		ws = append(ws, witness{line: li, value: tv})
	}
	return ws
}

// Check evaluates every per-configuration contract against cfg and
// returns the violations in deterministic order. Cross-configuration
// unique contracts are evaluated by CheckAll. With WithDiagnostics
// (and not WithStrict), a contract whose evaluation panics is skipped
// for this configuration with a diagnostic instead of crashing the
// check.
//
// The default strategy is the compiled hot path: absence contracts
// (present, unique existence) are always evaluated, while ordering,
// sequence, relational, and type contract groups whose anchor pattern
// the view's index proves absent are skipped wholesale (they are
// vacuously satisfied). WithLinearScan selects the pre-compilation
// strategy instead; both produce identical violations.
func (ch *Checker) Check(cfg *lexer.Config) []Violation {
	v := ch.newView(cfg)
	var out []Violation
	if ch.linear {
		out = ch.checkLinear(v)
	} else {
		out = ch.checkCompiled(v)
	}
	sortViolations(out)
	ch.rec.Add("check.violations", int64(len(out)))
	ch.flushCache(v)
	return out
}

// checkLinear is the pre-compilation strategy: every contract of the
// set is evaluated in set order. Kept for differential testing against
// the compiled path.
func (ch *Checker) checkLinear(v *view) []Violation {
	var out []Violation
	for _, c := range ch.set.Contracts {
		c := c
		ch.contained(c, v.cfg.Name, func() {
			faultinject.At("contracts.check.contract", c.ID())
			switch c := c.(type) {
			case *Present:
				out = append(out, ch.checkPresent(v, c)...)
			case *Ordering:
				out = append(out, ch.checkOrdering(v, c)...)
			case *TypeError:
				out = append(out, ch.checkTypeScan(v, c)...)
			case *Sequence:
				out = append(out, ch.checkSequence(v, c)...)
			case *Unique:
				out = append(out, ch.checkUniqueExistence(v, c)...)
			case *Relational:
				out = append(out, ch.checkRelational(v, c)...)
			}
		})
	}
	ch.rec.Add("check.contracts_evaluated", int64(len(ch.set.Contracts)))
	return out
}

// checkCompiled is the indexed strategy (see Check).
func (ch *Checker) checkCompiled(v *view) []Violation {
	cs := ch.cs
	var out []Violation
	evaluated := 0
	eval := func(c Contract, fn func()) {
		evaluated++
		ch.contained(c, v.cfg.Name, func() {
			faultinject.At("contracts.check.contract", c.ID())
			fn()
		})
	}
	for _, c := range cs.absence {
		switch c := c.(type) {
		case *Present:
			eval(c, func() { out = append(out, ch.checkPresent(v, c)...) })
		case *Unique:
			eval(c, func() { out = append(out, ch.checkUniqueExistence(v, c)...) })
		}
	}
	for _, id := range v.presentIDs {
		for _, c := range cs.anchored[id] {
			switch c := c.(type) {
			case *Ordering:
				eval(c, func() { out = append(out, ch.checkOrdering(v, c)...) })
			case *Sequence:
				eval(c, func() { out = append(out, ch.checkSequence(v, c)...) })
			case *Relational:
				eval(c, func() { out = append(out, ch.checkRelational(v, c)...) })
			}
		}
	}
	for ag, lines := range v.byAg {
		for _, c := range cs.typesByAg[ag] {
			c := c
			eval(c, func() { out = append(out, ch.checkTypeLines(v, c, lines)...) })
		}
	}
	ch.rec.Add("check.contracts_evaluated", int64(evaluated))
	ch.rec.Add("check.contracts_skipped_by_index", int64(len(ch.set.Contracts)-evaluated))
	return out
}

// contained runs one contract's evaluation with panic containment when
// a diagnostics collector is attached and strict mode is off: a
// recovered panic skips the contract for the current configuration (or
// batch), recording an error diagnostic and a check.contracts_skipped
// count. Otherwise the panic propagates unchanged.
func (ch *Checker) contained(c Contract, source string, eval func()) {
	if ch.dc == nil || ch.strict {
		eval()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic("check", source, r)
			d.Message = "contract " + c.ID() + " skipped: " + d.Message
			ch.dc.Add(d)
			ch.rec.Add("check.contracts_skipped", 1)
		}
	}()
	eval()
}

// flushCache folds a view's witness-cache statistics into the recorder.
func (ch *Checker) flushCache(v *view) {
	if ch.rec == nil || v.hits+v.misses == 0 {
		return
	}
	ch.rec.Add("check.witness_cache.hits", v.hits)
	ch.rec.Add("check.witness_cache.misses", v.misses)
}

// CheckAll evaluates the full set against a batch of configurations,
// including the cross-configuration uniqueness component of unique
// contracts. The compiled set is built once (at NewChecker) and shared
// by every configuration.
func (ch *Checker) CheckAll(cfgs []*lexer.Config) []Violation {
	var out []Violation
	for _, cfg := range cfgs {
		out = append(out, ch.Check(cfg)...)
	}
	out = append(out, ch.checkUniqueGlobal(cfgs)...)
	sortViolations(out)
	return out
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].File != vs[j].File {
			return vs[i].File < vs[j].File
		}
		if vs[i].Line != vs[j].Line {
			return vs[i].Line < vs[j].Line
		}
		return vs[i].ContractID < vs[j].ContractID
	})
}

func violation(c Contract, file string, line int, detail string) Violation {
	return Violation{
		Category:   c.Category(),
		ContractID: c.ID(),
		Contract:   c.String(),
		File:       file,
		Line:       line,
		Detail:     detail,
	}
}

func (ch *Checker) checkPresent(v *view, c *Present) []Violation {
	if len(v.matches(c)) > 0 {
		return nil
	}
	return []Violation{violation(c, v.cfg.Name, 0,
		fmt.Sprintf("no line matches required pattern %s", c.Display))}
}

// successor returns the index of the line following li within the same
// (config vs. metadata) segment, or -1.
func successor(cfg *lexer.Config, li int) int {
	next := li + 1
	if next >= len(cfg.Lines) || cfg.Lines[next].Meta != cfg.Lines[li].Meta {
		return -1
	}
	return next
}

func (ch *Checker) checkOrdering(v *view, c *Ordering) []Violation {
	var out []Violation
	for _, li := range v.lines(c.First) {
		next := successor(v.cfg, li)
		if next < 0 || v.cfg.Lines[next].Pattern != c.Second {
			line := &v.cfg.Lines[li]
			out = append(out, violation(c, v.cfg.Name, line.Num,
				fmt.Sprintf("line %q is not followed by a line matching %s", line.Raw, c.DisplaySecond)))
		}
	}
	return out
}

// checkTypeScan is the pre-compilation type check: it scans every line
// of the configuration, recomputing the agnostic pattern per line.
func (ch *Checker) checkTypeScan(v *view, c *TypeError) []Violation {
	var out []Violation
	for i := range v.cfg.Lines {
		line := &v.cfg.Lines[i]
		if c.ParamIdx >= len(line.Params) {
			continue
		}
		if line.Params[c.ParamIdx].Type != c.BadType {
			continue
		}
		if lexer.TypeAgnostic(line.Pattern) != c.Agnostic {
			continue
		}
		out = append(out, typeViolation(v, c, line))
	}
	return out
}

// checkTypeLines is the indexed type check: lines is the view's
// agnostic-index bucket for c.Agnostic, so the per-line agnostic
// rewrite is already done.
func (ch *Checker) checkTypeLines(v *view, c *TypeError, lines []int) []Violation {
	var out []Violation
	for _, i := range lines {
		line := &v.cfg.Lines[i]
		if c.ParamIdx >= len(line.Params) {
			continue
		}
		if line.Params[c.ParamIdx].Type != c.BadType {
			continue
		}
		out = append(out, typeViolation(v, c, line))
	}
	return out
}

func typeViolation(v *view, c *TypeError, line *lexer.Line) Violation {
	return violation(c, v.cfg.Name, line.Num,
		fmt.Sprintf("parameter %s has forbidden type [%s] (expected one of %v)",
			lexer.VarName(c.ParamIdx), c.BadType, c.GoodTypes))
}

// numericValues returns the decoded big.Int column of a numeric
// parameter for every line of a pattern, in line order, paired with
// line indexes. The column is decoded once per configuration and
// cached in the view's compiled slot; callers must not mutate it.
func (v *view) numericValues(pattern string, paramIdx int) (vals []*big.Int, at []int) {
	slot, ok := v.cs.numSlots[patternParamKey{pattern, paramIdx}]
	if !ok {
		return decodeNumeric(v.cfg, v.lines(pattern), paramIdx)
	}
	col := &v.numeric[slot]
	if !col.done {
		col.vals, col.at = decodeNumeric(v.cfg, v.lines(pattern), paramIdx)
		col.done = true
	}
	return col.vals, col.at
}

// decodeNumeric extracts the big.Int values of a numeric parameter for
// the given line indexes.
func decodeNumeric(cfg *lexer.Config, lines []int, paramIdx int) (vals []*big.Int, at []int) {
	for _, li := range lines {
		line := &cfg.Lines[li]
		if paramIdx >= len(line.Params) {
			continue
		}
		n, ok := line.Params[paramIdx].Value.(netdata.Num)
		if !ok {
			continue
		}
		vals = append(vals, n.Big())
		at = append(at, li)
	}
	return vals, at
}

// equidistant reports whether consecutive differences are all equal and
// nonzero. Fewer than two values are trivially equidistant.
func equidistant(vals []*big.Int) bool {
	if len(vals) < 2 {
		return true
	}
	diff := new(big.Int).Sub(vals[1], vals[0])
	if diff.Sign() == 0 {
		return false
	}
	for i := 2; i < len(vals); i++ {
		d := new(big.Int).Sub(vals[i], vals[i-1])
		if d.Cmp(diff) != 0 {
			return false
		}
	}
	return true
}

func (ch *Checker) checkSequence(v *view, c *Sequence) []Violation {
	vals, at := v.numericValues(c.Pattern, c.ParamIdx)
	if len(vals) < 2 || equidistant(vals) {
		return nil
	}
	// Localize to the first value that breaks the step. The step is the
	// first consecutive difference; a zero step is itself the break, so
	// the second value (the first duplicate) is the violation — even
	// when later differences vary.
	diff := new(big.Int).Sub(vals[1], vals[0])
	if diff.Sign() == 0 {
		line := &v.cfg.Lines[at[1]]
		return []Violation{violation(c, v.cfg.Name, line.Num,
			fmt.Sprintf("value %s repeats the previous value (sequence step is zero)", vals[1]))}
	}
	for i := 2; i < len(vals); i++ {
		d := new(big.Int).Sub(vals[i], vals[i-1])
		if d.Cmp(diff) != 0 {
			line := &v.cfg.Lines[at[i]]
			return []Violation{violation(c, v.cfg.Name, line.Num,
				fmt.Sprintf("value %s breaks the sequence step %s", vals[i], diff))}
		}
	}
	return nil // unreachable: a nonzero-step non-equidistant column has a break
}

// checkUniqueExistence enforces the per-configuration existence
// component of a unique contract. The violation is file-level (no
// line): there is no line to point at when the definition is missing.
func (ch *Checker) checkUniqueExistence(v *view, c *Unique) []Violation {
	if len(v.lines(c.Pattern)) > 0 {
		return nil
	}
	return []Violation{violation(c, v.cfg.Name, 0,
		fmt.Sprintf("no line defines the unique parameter of %s", c.Display))}
}

// CheckUniqueAcross evaluates only the cross-configuration uniqueness
// component of the set's unique contracts, for callers that parallelize
// per-configuration checks themselves and run the global pass once.
func (ch *Checker) CheckUniqueAcross(cfgs []*lexer.Config) []Violation {
	out := ch.checkUniqueGlobal(cfgs)
	sortViolations(out)
	return out
}

// checkUniqueGlobal enforces global value uniqueness across the batch.
// Each configuration is indexed by pattern once; every unique contract
// then reads only the lines of its own pattern instead of scanning the
// whole batch.
func (ch *Checker) checkUniqueGlobal(cfgs []*lexer.Config) []Violation {
	uniques := make([]*Unique, 0, len(ch.cs.absence))
	for _, c := range ch.cs.absence {
		if u, ok := c.(*Unique); ok {
			uniques = append(uniques, u)
		}
	}
	if len(uniques) == 0 {
		return nil
	}
	// byCfg[ci] maps interned pattern IDs to line indexes of cfgs[ci],
	// restricted to the patterns unique contracts anchor on.
	wanted := make(map[string]int, len(uniques))
	for _, u := range uniques {
		if id, ok := ch.cs.ids[u.Pattern]; ok {
			wanted[u.Pattern] = id
		}
	}
	byCfg := make([]map[int][]int, len(cfgs))
	for ci, cfg := range cfgs {
		idx := make(map[int][]int)
		for i := range cfg.Lines {
			if id, ok := wanted[cfg.Lines[i].Pattern]; ok {
				idx[id] = append(idx[id], i)
			}
		}
		byCfg[ci] = idx
	}
	var out []Violation
	for _, u := range uniques {
		u := u
		id, ok := wanted[u.Pattern]
		if !ok {
			continue
		}
		ch.contained(u, "", func() {
			faultinject.At("contracts.check.unique_global", u.ID())
			type site struct {
				file string
				line int
			}
			seen := make(map[string]site)
			for ci, cfg := range cfgs {
				for _, i := range byCfg[ci][id] {
					line := &cfg.Lines[i]
					if u.ParamIdx >= len(line.Params) {
						continue
					}
					key := line.Params[u.ParamIdx].Value.Key()
					if prev, dup := seen[key]; dup {
						out = append(out, violation(u, cfg.Name, line.Num,
							fmt.Sprintf("value %s duplicates %s:%d",
								line.Params[u.ParamIdx].Value, prev.file, prev.line)))
						continue
					}
					seen[key] = site{file: cfg.Name, line: line.Num}
				}
			}
		})
	}
	return out
}

// UniqueSite is one occurrence of a unique contract's parameter within
// a configuration: the value's canonical key (the uniqueness identity),
// its display rendering (for violation details), and the 1-based line
// number. Sites are always listed in line order, so a merge over
// per-config site lists reproduces the first-seen-wins semantics of a
// direct scan.
type UniqueSite struct {
	Key     string
	Display string
	Line    int
}

// uniqueContracts returns the set's unique contracts in compiled
// (deterministic) order.
func (ch *Checker) uniqueContracts() []*Unique {
	uniques := make([]*Unique, 0, len(ch.cs.absence))
	for _, c := range ch.cs.absence {
		if u, ok := c.(*Unique); ok {
			uniques = append(uniques, u)
		}
	}
	return uniques
}

// UniqueContributions extracts, for every unique contract of the set,
// the ordered value sites of one configuration. The result is what an
// incremental caller caches: replaying it through
// CheckUniqueFromContributions yields exactly the violations a direct
// checkUniqueGlobal scan over the same configuration would contribute.
func (ch *Checker) UniqueContributions(cfg *lexer.Config) map[string][]UniqueSite {
	uniques := ch.uniqueContracts()
	out := make(map[string][]UniqueSite, len(uniques))
	if len(uniques) == 0 {
		return out
	}
	wanted := make(map[string][]*Unique, len(uniques))
	for _, u := range uniques {
		wanted[u.Pattern] = append(wanted[u.Pattern], u)
	}
	for i := range cfg.Lines {
		line := &cfg.Lines[i]
		for _, u := range wanted[line.Pattern] {
			if u.ParamIdx >= len(line.Params) {
				continue
			}
			v := line.Params[u.ParamIdx].Value
			out[u.ID()] = append(out[u.ID()], UniqueSite{
				Key: v.Key(), Display: v.String(), Line: line.Num,
			})
		}
	}
	return out
}

// CheckUniqueFromContributions evaluates the cross-configuration
// uniqueness component from per-configuration site contributions
// (cached or freshly extracted), merged in configuration order.
// names[i] labels contribs[i]'s configuration in violations. It is a
// single-accumulator reduction over the UniqueCombiner, so the result
// is identical to CheckUniqueAcross over the same corpus: the first
// site of a value is the witness, every later site a violation.
func (ch *Checker) CheckUniqueFromContributions(names []string, contribs []map[string][]UniqueSite) []Violation {
	c := ch.UniqueCombiner()
	return c.Reduce([]Accumulator{
		&UniqueAccumulator{ch: ch, names: names, contribs: contribs},
	})
}

// equalsFast reports whether an equals contract can use the hash-based
// witness index: the built-in Equals semantics is exactly key equality,
// so the index is valid unless a user definition overrides Equals.
// Linear-scan mode keeps the pre-compilation pairwise evaluation so it
// stays a faithful baseline.
func (ch *Checker) equalsFast(c *Relational) bool {
	if ch.linear || c.Rel != relations.Equals {
		return false
	}
	_, overridden := ch.custom[relations.Equals]
	return !overridden
}

// selfPair reports whether the contract's forall and witness columns
// are the same (pattern, parameter) — the case where a parameter must
// not witness itself.
func selfPair(c *Relational) bool {
	return c.Pattern2 == c.Pattern1 && c.ParamIdx2 == c.ParamIdx1
}

func (ch *Checker) checkRelational(v *view, c *Relational) []Violation {
	l1s := v.lines(c.Pattern1)
	if len(l1s) == 0 {
		return nil // vacuously true
	}
	t1, ok := ch.transforms[c.Transform1]
	if !ok {
		return []Violation{violation(c, v.cfg.Name, 0,
			fmt.Sprintf("unknown transform %q", c.Transform1))}
	}
	// Equality contracts use the column's key index: one key
	// stringification per forall line instead of one per (forall,
	// witness) pair.
	var eq map[string][]int
	if ch.equalsFast(c) {
		if col := v.column(ch, c.Pattern2, c.ParamIdx2, c.Transform2); col != nil {
			eq = col.equalsIndex()
		}
	}
	var wits []witness
	if eq == nil {
		wits = v.values(ch, c.Pattern2, c.ParamIdx2, c.Transform2)
	}
	self := selfPair(c)
	var out []Violation
	for _, li := range l1s {
		line := &v.cfg.Lines[li]
		if c.ParamIdx1 >= len(line.Params) {
			continue
		}
		v1, ok := t1.Apply(line.Params[c.ParamIdx1].Value)
		if !ok {
			continue
		}
		found := false
		if eq != nil {
			matches := eq[v1.Key()]
			if self {
				// A parameter is not its own witness: some other line
				// must carry the matching value.
				found = len(matches) > 1 || (len(matches) == 1 && matches[0] != li)
			} else {
				found = len(matches) > 0
			}
		} else {
			for _, w := range wits {
				if w.line == li && self {
					continue // a parameter is not its own witness
				}
				if ch.holds(c.Rel, v1, w.value) {
					found = true
					break
				}
			}
		}
		if !found {
			out = append(out, violation(c, v.cfg.Name, line.Num,
				fmt.Sprintf("no witness matching %s relates to value %s",
					c.Display2, line.Params[c.ParamIdx1].Value)))
		}
	}
	return out
}

// FindWitness reports the witness line indexes satisfying the contract
// for the forall line at index li, used by coverage analysis.
func (ch *Checker) findWitnesses(v *view, c *Relational, li int) []int {
	line := &v.cfg.Lines[li]
	if c.ParamIdx1 >= len(line.Params) {
		return nil
	}
	t1, ok := ch.transforms[c.Transform1]
	if !ok {
		return nil
	}
	v1, ok := t1.Apply(line.Params[c.ParamIdx1].Value)
	if !ok {
		return nil
	}
	self := selfPair(c)
	if ch.equalsFast(c) {
		if col := v.column(ch, c.Pattern2, c.ParamIdx2, c.Transform2); col != nil {
			// The key index preserves column (line) order per bucket.
			var out []int
			for _, wl := range col.equalsIndex()[v1.Key()] {
				if wl == li && self {
					continue
				}
				out = append(out, wl)
			}
			return out
		}
	}
	var out []int
	for _, w := range v.values(ch, c.Pattern2, c.ParamIdx2, c.Transform2) {
		if w.line == li && self {
			continue
		}
		if ch.holds(c.Rel, v1, w.value) {
			out = append(out, w.line)
		}
	}
	return out
}
