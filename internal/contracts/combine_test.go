package contracts

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/lexer"
)

// combineCorpus builds a corpus with duplicates planted across distant
// configurations, so any shard split separates a witness from its
// duplicates.
func combineCorpus(t *testing.T, n int) []*lexer.Config {
	t.Helper()
	cfgs := make([]*lexer.Config, n)
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("r%02d", i)
		lb := fmt.Sprintf("10.0.%d.1", i)
		if i%5 == 4 {
			// Every fifth device reuses an earlier loopback.
			lb = fmt.Sprintf("10.0.%d.1", i/5)
		}
		text := fmt.Sprintf("hostname %s\nrouter-id %s\n", host, lb)
		cfgs[i] = cfgFromText(t, host+".cfg", text)
	}
	return cfgs
}

func combineSet() *Set {
	return &Set{Contracts: []Contract{
		&Unique{Pattern: "/hostname r[num]", Display: "/hostname r[a:num]", ParamIdx: 0},
		&Unique{Pattern: "/router-id [ip4]", Display: "/router-id [a:ip4]", ParamIdx: 0},
	}}
}

// TestUniqueCombinerMatchesAcross asserts that for any contiguous
// shard split, reducing per-shard accumulators yields exactly the
// violations of a direct CheckUniqueAcross over the whole corpus.
func TestUniqueCombinerMatchesAcross(t *testing.T) {
	ch := NewChecker(combineSet())
	cfgs := combineCorpus(t, 20)
	want := ch.CheckUniqueAcross(cfgs)
	if len(want) == 0 {
		t.Fatal("corpus planted no duplicates; the test is vacuous")
	}
	for _, shards := range []int{1, 2, 3, 7, 20} {
		c := ch.UniqueCombiner()
		var accs []Accumulator
		per := (len(cfgs) + shards - 1) / shards
		for lo := 0; lo < len(cfgs); lo += per {
			hi := lo + per
			if hi > len(cfgs) {
				hi = len(cfgs)
			}
			acc := c.NewAccumulator()
			for _, cfg := range cfgs[lo:hi] {
				acc.Add(cfg)
			}
			accs = append(accs, acc)
		}
		got := c.Reduce(accs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: Reduce = %+v, want %+v", shards, got, want)
		}
	}
}

// TestUniqueCombinerSitesReplay asserts AddSites over pre-extracted
// contributions (the incremental artifact-replay path) is equivalent
// to folding the lexed configurations directly.
func TestUniqueCombinerSitesReplay(t *testing.T) {
	ch := NewChecker(combineSet())
	cfgs := combineCorpus(t, 12)
	c := ch.UniqueCombiner()

	direct := c.NewAccumulator()
	replay := c.NewAccumulator().(*UniqueAccumulator)
	for _, cfg := range cfgs {
		direct.Add(cfg)
		replay.AddSites(cfg.Name, ch.UniqueContributions(cfg))
	}
	if replay.Len() != len(cfgs) {
		t.Fatalf("replay.Len = %d, want %d", replay.Len(), len(cfgs))
	}
	got := c.Reduce([]Accumulator{replay})
	want := c.Reduce([]Accumulator{direct})
	if len(want) == 0 || !reflect.DeepEqual(got, want) {
		t.Errorf("replayed reduce = %+v, want non-empty %+v", got, want)
	}
}

// TestUniqueCombinerPanicContained asserts Reduce contains a panicking
// unique contract exactly as the direct scan does: lenient skips it
// with a diagnostic, the other contract still reduces.
func TestUniqueCombinerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	set := combineSet()
	bad := set.Contracts[1]
	faultinject.Set("contracts.check.unique_global", faultinject.PanicOn("boom", bad.ID()))

	dc := diag.New()
	ch := NewChecker(set, WithDiagnostics(dc))
	c := ch.UniqueCombiner()
	acc := c.NewAccumulator()
	acc.Add(cfgFromText(t, "r1.cfg", "hostname r9\nrouter-id 10.0.0.1\n"))
	acc.Add(cfgFromText(t, "r2.cfg", "hostname r9\nrouter-id 10.0.0.1\n"))
	vs := c.Reduce([]Accumulator{acc})
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "duplicates r1.cfg") {
		t.Errorf("violations = %+v, want only the hostname duplicate", vs)
	}
	if dc.Len() != 1 || !strings.Contains(dc.All()[0].Message, bad.ID()) {
		t.Errorf("diagnostics = %+v, want one for the skipped contract", dc.All())
	}
}
