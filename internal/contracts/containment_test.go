package contracts

import (
	"errors"
	"strings"
	"testing"

	"concord/internal/diag"
	"concord/internal/faultinject"
	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// TestCheckContractPanicSkipped asserts a panicking contract is
// skipped per configuration with a diagnostic and telemetry count,
// while the remaining contracts still evaluate.
func TestCheckContractPanicSkipped(t *testing.T) {
	defer faultinject.Reset()
	bad := &Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"}
	good := &Present{Pattern: "/hostname [word]", Display: "/hostname [a:word]"}
	set := &Set{Contracts: []Contract{bad, good}}
	injected := errors.New("injected contract fault")
	faultinject.Set("contracts.check.contract", faultinject.PanicOn(injected, bad.ID()))

	dc := diag.New()
	rec := telemetry.NewRecorder()
	ch := NewChecker(set, WithDiagnostics(dc), WithTelemetry(rec))
	// Config violates both contracts; only the good contract's
	// violation survives, the bad contract is skipped.
	cfg := cfgFromText(t, "r1.cfg", "interface Ethernet1\n")
	vs := ch.Check(cfg)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "hostname") {
		t.Errorf("violations = %+v, want only the hostname contract's", vs)
	}
	ds := dc.All()
	if len(ds) != 1 {
		t.Fatalf("diagnostics = %+v, want 1", ds)
	}
	d := ds[0]
	if d.Severity != diag.SevError || d.Stage != "check" || d.Source != "r1.cfg" {
		t.Errorf("diagnostic = %+v", d)
	}
	if !strings.Contains(d.Message, bad.ID()) || !strings.Contains(d.Message, "skipped") {
		t.Errorf("message = %q, want contract ID + skipped", d.Message)
	}
	if !errors.Is(d.AsError(), injected) {
		t.Errorf("diagnostic lost cause: %v", d.AsError())
	}
	if got := rec.Counter("check.contracts_skipped"); got != 1 {
		t.Errorf("check.contracts_skipped = %d, want 1", got)
	}
}

// TestCheckContractPanicPropagates asserts containment is opt-in: a
// checker without a collector, or in strict mode, lets the panic
// escape to the caller's recovery layer.
func TestCheckContractPanicPropagates(t *testing.T) {
	defer faultinject.Reset()
	bad := &Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"}
	set := &Set{Contracts: []Contract{bad}}
	faultinject.Set("contracts.check.contract", faultinject.PanicOn("boom", bad.ID()))
	cfg := cfgFromText(t, "r1.cfg", "interface Ethernet1\n")

	for _, tc := range []struct {
		name string
		ch   *Checker
	}{
		{"no collector", NewChecker(set)},
		{"strict", NewChecker(set, WithDiagnostics(diag.New()), WithStrict(true))},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic did not propagate", tc.name)
				}
			}()
			tc.ch.Check(cfg)
		}()
	}
}

// TestCoverageContractPanicSkipped mirrors the check containment for
// the coverage pass.
func TestCoverageContractPanicSkipped(t *testing.T) {
	defer faultinject.Reset()
	bad := &Present{Pattern: "/hostname [word]", Display: "/hostname [a:word]"}
	set := &Set{Contracts: []Contract{bad}}
	faultinject.Set("contracts.coverage.contract", faultinject.PanicOn("boom", bad.ID()))

	dc := diag.New()
	ch := NewChecker(set, WithDiagnostics(dc))
	cov := ch.Coverage(cfgFromText(t, "r1.cfg", "hostname r1\n"))
	if cov == nil {
		t.Fatal("Coverage = nil, want degraded result")
	}
	if dc.Len() != 1 || !strings.Contains(dc.All()[0].Message, bad.ID()) {
		t.Errorf("diagnostics = %+v", dc.All())
	}
}

// TestCheckUniqueGlobalPanicSkipped covers the cross-configuration
// unique pass: the faulty unique contract is skipped corpus-wide with
// one diagnostic, other contracts unaffected.
func TestCheckUniqueGlobalPanicSkipped(t *testing.T) {
	defer faultinject.Reset()
	u := &Unique{Pattern: "/hostname [word]", Display: "/hostname [a:word]", ParamIdx: 0}
	set := &Set{Contracts: []Contract{u}}
	faultinject.Set("contracts.check.unique_global", faultinject.PanicOn("boom", u.ID()))

	dc := diag.New()
	ch := NewChecker(set, WithDiagnostics(dc))
	vs := ch.CheckUniqueAcross([]*lexer.Config{
		cfgFromText(t, "r1.cfg", "hostname dup\n"),
		cfgFromText(t, "r2.cfg", "hostname dup\n"),
	})
	if len(vs) != 0 {
		t.Errorf("violations = %+v, want none (contract skipped)", vs)
	}
	if dc.Len() != 1 {
		t.Errorf("diagnostics = %+v, want 1", dc.All())
	}
}
