package contracts

import (
	"encoding/json"
	"fmt"
)

// envelope is the on-disk JSON form of a contract: a category tag plus
// the category-specific body.
type envelope struct {
	Category Category        `json:"category"`
	Body     json.RawMessage `json:"contract"`
}

// MarshalJSON serializes the set as a JSON array of tagged contracts,
// the format emitted by `concord learn`.
func (s *Set) MarshalJSON() ([]byte, error) {
	envs := make([]envelope, 0, len(s.Contracts))
	for _, c := range s.Contracts {
		body, err := json.Marshal(c)
		if err != nil {
			return nil, err
		}
		envs = append(envs, envelope{Category: c.Category(), Body: body})
	}
	return json.Marshal(envs)
}

// UnmarshalJSON parses the JSON array form produced by MarshalJSON.
func (s *Set) UnmarshalJSON(data []byte) error {
	var envs []envelope
	if err := json.Unmarshal(data, &envs); err != nil {
		return err
	}
	s.Contracts = s.Contracts[:0]
	for _, e := range envs {
		var c Contract
		switch e.Category {
		case CatPresent:
			c = new(Present)
		case CatOrdering:
			c = new(Ordering)
		case CatType:
			c = new(TypeError)
		case CatSequence:
			c = new(Sequence)
		case CatUnique:
			c = new(Unique)
		case CatRelation:
			c = new(Relational)
		default:
			return fmt.Errorf("contracts: unknown category %q", e.Category)
		}
		if err := json.Unmarshal(e.Body, c); err != nil {
			return fmt.Errorf("contracts: decoding %s contract: %w", e.Category, err)
		}
		s.Contracts = append(s.Contracts, c)
	}
	return nil
}
