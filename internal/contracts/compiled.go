package contracts

import (
	"sync"

	"concord/internal/intern"
	"concord/internal/lexer"
)

// CompiledSet is the immutable, check-optimized form of a contract Set,
// built once per Checker and shared by every configuration evaluation
// (and, through the core engine, by every worker of a sharded CheckAll).
// It interns the pattern strings referenced by contracts to dense
// integer IDs, buckets contracts by category and anchor pattern, and
// pre-allocates cache slots for decoded numeric parameter columns and
// transformed witness columns, so the per-configuration hot path does
// integer indexing instead of string hashing and re-decoding.
//
// Bucket layout:
//
//   - absence: Present contracts (pattern and exact) and the
//     per-configuration existence component of Unique contracts. These
//     detect *missing* lines, so they are evaluated for every
//     configuration and never skipped by the pattern index.
//   - anchored: Ordering, Sequence, and Relational contracts, grouped
//     by the interned ID of their anchor pattern (Ordering.First,
//     Sequence.Pattern, Relational.Pattern1). A configuration that
//     contains no line with the anchor pattern vacuously satisfies the
//     contract, so whole groups are skipped when the configuration's
//     pattern index proves the anchor is absent.
//   - types: TypeError contracts grouped by their type-agnostic
//     pattern. A configuration with no line lexing to that agnostic
//     pattern cannot violate the contract, so these groups are skipped
//     the same way (via the per-configuration agnostic index).
//
// A CompiledSet is safe for concurrent use: everything is read-only
// after Compile except the agnostic-pattern memo, which is a sync.Map.
type CompiledSet struct {
	set *Set

	// ids interns every pattern referenced by a contract (anchors and
	// witness patterns); patterns holds the reverse mapping.
	ids      map[string]int
	patterns []string

	// tab, when non-nil, is the run's string intern table, and
	// denseByTab translates its IDs to this set's dense IDs plus one
	// (0 = the pattern is referenced by no contract). Views over
	// configurations carrying the same table then index lines into the
	// anchor buckets with two array loads instead of hashing the full
	// pattern string per line.
	tab        *intern.Table
	denseByTab []int32

	// absence contracts are evaluated unconditionally (missing-line
	// detection must see configurations where the pattern is absent).
	absence []Contract

	// anchored[id] lists the contracts whose anchor pattern has that
	// interned ID; anchoredN is the total across all buckets.
	anchored  [][]Contract
	anchoredN int

	// typesByAg buckets type contracts by their agnostic pattern;
	// typeN is the total count. agMemo caches the TypeAgnostic
	// rewrite per pattern string across the whole corpus (the rewrite
	// is pure string work and patterns repeat heavily between
	// configurations).
	typesByAg map[string][]*TypeError
	typeN     int
	agMemo    sync.Map // pattern string -> agnostic string

	// numSlots assigns a dense slot to each (pattern, paramIdx) pair
	// used by a Sequence contract; views cache the decoded big.Int
	// column per slot so the column is decoded once per configuration
	// regardless of how many contracts read it.
	numSlots map[patternParamKey]int

	// witSlots assigns a dense slot to each (pattern, paramIdx,
	// transform) witness column used by a Relational contract.
	witSlots map[witKey]int
}

type patternParamKey struct {
	pattern  string
	paramIdx int
}

type witKey struct {
	pattern   string
	paramIdx  int
	transform string
}

// Compile builds the check-optimized form of the set. The set must not
// be mutated afterwards; Checker compiles its set at construction.
func Compile(set *Set) *CompiledSet { return CompileWithInterns(set, nil) }

// CompileWithInterns is Compile with the run's string intern table
// attached: every contract-referenced pattern is also interned into tab
// and a translation array from table IDs to the set's dense IDs is
// built, so per-line anchor lookup during checking becomes array
// indexing for configurations processed with the same table.
func CompileWithInterns(set *Set, tab *intern.Table) *CompiledSet {
	cs := &CompiledSet{
		set:       set,
		ids:       make(map[string]int),
		typesByAg: make(map[string][]*TypeError),
		numSlots:  make(map[patternParamKey]int),
		witSlots:  make(map[witKey]int),
	}
	anchorOf := func(p string) int {
		id := cs.intern(p)
		for len(cs.anchored) <= id {
			cs.anchored = append(cs.anchored, nil)
		}
		return id
	}
	for _, c := range set.Contracts {
		switch c := c.(type) {
		case *Present:
			cs.absence = append(cs.absence, c)
			if !c.Exact {
				// Exact contracts match on line text (the view's byText
				// index), not on the pattern index.
				cs.intern(c.Pattern)
			}
		case *Unique:
			// The existence component is an absence check; the global
			// uniqueness component is handled by checkUniqueGlobal.
			cs.absence = append(cs.absence, c)
			cs.intern(c.Pattern)
		case *Ordering:
			id := anchorOf(c.First)
			cs.anchored[id] = append(cs.anchored[id], c)
			cs.anchoredN++
			cs.intern(c.Second)
		case *Sequence:
			id := anchorOf(c.Pattern)
			cs.anchored[id] = append(cs.anchored[id], c)
			cs.anchoredN++
			cs.numSlot(c.Pattern, c.ParamIdx)
		case *Relational:
			id := anchorOf(c.Pattern1)
			cs.anchored[id] = append(cs.anchored[id], c)
			cs.anchoredN++
			cs.intern(c.Pattern2)
			cs.witSlot(c.Pattern2, c.ParamIdx2, c.Transform2)
		case *TypeError:
			cs.typesByAg[c.Agnostic] = append(cs.typesByAg[c.Agnostic], c)
			cs.typeN++
		}
	}
	// Pad the anchored table to cover witness-only pattern IDs so views
	// can index it without bounds checks against len(ids).
	for len(cs.anchored) < len(cs.patterns) {
		cs.anchored = append(cs.anchored, nil)
	}
	if tab != nil {
		cs.tab = tab
		// Intern every referenced pattern first (growing the table),
		// then size the translation array to the final table length.
		tids := make([]int32, len(cs.patterns))
		for d, p := range cs.patterns {
			tids[d] = tab.ID(p)
		}
		cs.denseByTab = make([]int32, tab.Len()+1)
		for d, tid := range tids {
			cs.denseByTab[tid] = int32(d + 1)
		}
	}
	return cs
}

// intern returns the dense ID of a pattern, assigning one on first use.
func (cs *CompiledSet) intern(p string) int {
	if id, ok := cs.ids[p]; ok {
		return id
	}
	id := len(cs.patterns)
	cs.ids[p] = id
	cs.patterns = append(cs.patterns, p)
	return id
}

// numSlot returns the cache slot for a numeric (pattern, param) column.
func (cs *CompiledSet) numSlot(pattern string, paramIdx int) int {
	k := patternParamKey{pattern, paramIdx}
	if s, ok := cs.numSlots[k]; ok {
		return s
	}
	s := len(cs.numSlots)
	cs.numSlots[k] = s
	return s
}

// witSlot returns the cache slot for a transformed witness column.
func (cs *CompiledSet) witSlot(pattern string, paramIdx int, transform string) int {
	k := witKey{pattern, paramIdx, transform}
	if s, ok := cs.witSlots[k]; ok {
		return s
	}
	s := len(cs.witSlots)
	cs.witSlots[k] = s
	return s
}

// agnostic returns the type-agnostic rewrite of a pattern, memoized
// across configurations.
func (cs *CompiledSet) agnostic(pattern string) string {
	if v, ok := cs.agMemo.Load(pattern); ok {
		return v.(string)
	}
	ag := lexer.TypeAgnostic(pattern)
	cs.agMemo.Store(pattern, ag)
	return ag
}

// Len returns the number of contracts in the underlying set.
func (cs *CompiledSet) Len() int { return cs.set.Len() }
