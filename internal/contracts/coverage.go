package contracts

import (
	"math/big"

	"concord/internal/faultinject"
	"concord/internal/lexer"
)

// CoverageResult reports which lines of one configuration are covered by
// a contract set. A line is covered if removing it would violate at
// least one contract (§3.9). Metadata lines are excluded.
type CoverageResult struct {
	// SourceLines is the denominator: non-blank lines of the original
	// configuration.
	SourceLines int
	// Covered maps covered line indexes (into Config.Lines) to true.
	Covered map[int]bool
	// ByCategory maps each category to its covered line set. Categories
	// may overlap; their percentages can sum to more than the total.
	ByCategory map[Category]map[int]bool
}

// Percent returns the fraction of source lines covered, in [0, 100].
func (r *CoverageResult) Percent() float64 {
	if r.SourceLines == 0 {
		return 0
	}
	return 100 * float64(len(r.Covered)) / float64(r.SourceLines)
}

// CategoryPercent returns the coverage percentage attributable to one
// category.
func (r *CoverageResult) CategoryPercent(cat Category) float64 {
	if r.SourceLines == 0 {
		return 0
	}
	return 100 * float64(len(r.ByCategory[cat])) / float64(r.SourceLines)
}

// Coverage computes per-line coverage of cfg under the checker's
// contract set. Rather than re-checking the configuration once per line,
// each category is analyzed directly:
//
//   - present: a line is covered if it is the only match of a required
//     pattern;
//   - ordering: covered if its removal leaves a preceding forall line
//     without a matching successor;
//   - sequence: covered if the remaining values are no longer
//     equidistant;
//   - unique: covered if it is the configuration's only definition of
//     the unique parameter (the existence component);
//   - relational: covered if it is the sole witness for some forall
//     line;
//   - type: never covered — removing a line cannot create a type
//     violation (the paper makes the same observation).
//
// The analysis is a slight under/over-approximation for block header
// lines: removing a header also reparents its children during context
// embedding, which can vacuously satisfy a contract the header
// witnessed. Exact semantics would require one full re-check per line;
// the approximation matches exact removal for leaf lines.
//
// Coverage shares the compiled contract set and the per-configuration
// pattern index with Check: anchored contract groups (ordering,
// sequence, relational) whose anchor pattern is absent mark no lines
// and are skipped wholesale; absence contracts (present, unique) are
// always consulted.
func (ch *Checker) Coverage(cfg *lexer.Config) *CoverageResult {
	v := ch.newView(cfg)
	res := &CoverageResult{
		SourceLines: cfg.SourceLines,
		Covered:     make(map[int]bool),
		ByCategory:  make(map[Category]map[int]bool),
	}
	mark := func(cat Category, li int) {
		if li < 0 || li >= len(cfg.Lines) || cfg.Lines[li].Meta {
			return
		}
		res.Covered[li] = true
		m := res.ByCategory[cat]
		if m == nil {
			m = make(map[int]bool)
			res.ByCategory[cat] = m
		}
		m[li] = true
	}
	cover := func(c Contract) {
		ch.contained(c, cfg.Name, func() {
			faultinject.At("contracts.coverage.contract", c.ID())
			switch c := c.(type) {
			case *Present:
				if lines := v.matches(c); len(lines) == 1 {
					mark(CatPresent, lines[0])
				}
			case *Unique:
				if lines := v.lines(c.Pattern); len(lines) == 1 {
					mark(CatUnique, lines[0])
				}
			case *Ordering:
				ch.coverOrdering(v, c, mark)
			case *Sequence:
				ch.coverSequence(v, c, mark)
			case *Relational:
				ch.coverRelational(v, c, mark)
			}
		})
	}
	if ch.linear {
		for _, c := range ch.set.Contracts {
			cover(c)
		}
	} else {
		for _, c := range ch.cs.absence {
			cover(c)
		}
		for _, id := range v.presentIDs {
			for _, c := range ch.cs.anchored[id] {
				cover(c)
			}
		}
	}
	ch.rec.Add("coverage.lines_covered", int64(len(res.Covered)))
	ch.flushCache(v)
	return res
}

func (ch *Checker) coverOrdering(v *view, c *Ordering, mark func(Category, int)) {
	for _, li := range v.lines(c.First) {
		next := successor(v.cfg, li)
		if next < 0 {
			continue
		}
		// Removing the successor makes the line after it the new
		// successor; if that no longer matches Second, the removed line
		// was load-bearing.
		after := successor(v.cfg, next)
		if after < 0 || v.cfg.Lines[after].Pattern != c.Second {
			mark(CatOrdering, next)
		}
	}
}

func (ch *Checker) coverSequence(v *view, c *Sequence, mark func(Category, int)) {
	vals, at := v.numericValues(c.Pattern, c.ParamIdx)
	if len(vals) < 3 {
		return
	}
	scratch := make([]*big.Int, 0, len(vals)-1)
	for i := range vals {
		scratch = scratch[:0]
		scratch = append(scratch, vals[:i]...)
		scratch = append(scratch, vals[i+1:]...)
		if !equidistant(scratch) {
			mark(CatSequence, at[i])
		}
	}
}

func (ch *Checker) coverRelational(v *view, c *Relational, mark func(Category, int)) {
	for _, li := range v.lines(c.Pattern1) {
		ws := ch.findWitnesses(v, c, li)
		if len(ws) == 1 {
			mark(CatRelation, ws[0])
		}
	}
}
