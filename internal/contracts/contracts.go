// Package contracts defines Concord's contract model: the six contract
// categories of Table 2 (present, ordering, type, sequence, unique,
// relational), their JSON serialization, their evaluation against
// configurations (checking, §3.8), and per-line configuration coverage
// (§3.9).
package contracts

import (
	"fmt"

	"concord/internal/lexer"
	"concord/internal/relations"
)

// Category names a contract category.
type Category string

// The contract categories from Table 2 of the paper.
const (
	CatPresent  Category = "present"
	CatOrdering Category = "ordering"
	CatType     Category = "type"
	CatSequence Category = "sequence"
	CatUnique   Category = "unique"
	CatRelation Category = "relation"
)

// Categories lists all categories in the paper's table order.
func Categories() []Category {
	return []Category{CatPresent, CatOrdering, CatType, CatSequence, CatUnique, CatRelation}
}

// Stats records the statistical evidence behind a learned contract.
type Stats struct {
	// Support is the number of training configurations in the contract's
	// scope (for most categories, those containing the antecedent
	// pattern).
	Support int `json:"support"`
	// Confidence is the fraction of supporting configurations in which
	// the contract held during learning.
	Confidence float64 `json:"confidence"`
	// Score is the cumulative informativeness score (relational
	// contracts only).
	Score float64 `json:"score,omitempty"`
}

// Contract is one learned or hand-written configuration contract.
type Contract interface {
	// Category returns the contract's category.
	Category() Category
	// ID returns a canonical identity string; two contracts with equal
	// IDs are the same contract.
	ID() string
	// String renders the contract in the paper's notation.
	String() string
	// Stats returns the statistical evidence for the contract.
	Stats() Stats
}

// Present requires at least one line matching Pattern
// (exists l ~ p).
type Present struct {
	// Pattern is the canonical untyped pattern key — or, when Exact is
	// set, the exact embedded line text.
	Pattern string `json:"pattern"`
	// Display is the named-parameter rendering of the pattern.
	Display string `json:"display"`
	// Exact marks a constant-learning contract (§4): the line must match
	// the exact text, data values included.
	Exact bool `json:"exact,omitempty"`
	// Evidence holds the learning statistics.
	Evidence Stats `json:"stats"`
}

// Category implements Contract.
func (c *Present) Category() Category { return CatPresent }

// ID implements Contract.
func (c *Present) ID() string {
	if c.Exact {
		return "present-exact|" + c.Pattern
	}
	return "present|" + c.Pattern
}

// String implements Contract.
func (c *Present) String() string {
	if c.Exact {
		return "exists l = " + c.Display
	}
	return "exists l ~ " + c.Display
}

// Stats implements Contract.
func (c *Present) Stats() Stats { return c.Evidence }

// Ordering requires every line matching First to be immediately followed
// by a line matching Second.
type Ordering struct {
	First         string `json:"first"`
	Second        string `json:"second"`
	DisplayFirst  string `json:"display_first"`
	DisplaySecond string `json:"display_second"`
	Evidence      Stats  `json:"stats"`
}

// Category implements Contract.
func (c *Ordering) Category() Category { return CatOrdering }

// ID implements Contract.
func (c *Ordering) ID() string { return "ordering|" + c.First + "|" + c.Second }

// String implements Contract.
func (c *Ordering) String() string {
	return fmt.Sprintf("forall l1 ~ %s\nexists l2 ~ %s\nequals(index(l1) + 1, index(l2))",
		c.DisplayFirst, c.DisplaySecond)
}

// Stats implements Contract.
func (c *Ordering) Stats() Stats { return c.Evidence }

// TypeError forbids a parameter type: lines whose type-agnostic pattern
// is Agnostic must not use BadType for the parameter at ParamIdx
// (!(exists l ~ p with [BadType])).
type TypeError struct {
	// Agnostic is the type-agnostic pattern (placeholders rewritten to
	// [?]).
	Agnostic string `json:"agnostic"`
	// ParamIdx indexes the leaf parameter the contract constrains.
	ParamIdx int `json:"param"`
	// BadType is the forbidden token type name.
	BadType string `json:"bad_type"`
	// GoodTypes lists the accepted types observed during learning.
	GoodTypes []string `json:"good_types,omitempty"`
	Evidence  Stats    `json:"stats"`
}

// Category implements Contract.
func (c *TypeError) Category() Category { return CatType }

// ID implements Contract.
func (c *TypeError) ID() string {
	return fmt.Sprintf("type|%s|%d|%s", c.Agnostic, c.ParamIdx, c.BadType)
}

// String implements Contract.
func (c *TypeError) String() string {
	return fmt.Sprintf("!(exists l ~ %s with %s:[%s])",
		c.Agnostic, lexer.VarName(c.ParamIdx), c.BadType)
}

// Stats implements Contract.
func (c *TypeError) Stats() Stats { return c.Evidence }

// Sequence requires the values of a numeric parameter to be equidistant
// across the lines matching Pattern within one configuration
// (e.g. seq 10, 20, 30).
type Sequence struct {
	Pattern  string `json:"pattern"`
	Display  string `json:"display"`
	ParamIdx int    `json:"param"`
	Evidence Stats  `json:"stats"`
}

// Category implements Contract.
func (c *Sequence) Category() Category { return CatSequence }

// ID implements Contract.
func (c *Sequence) ID() string { return fmt.Sprintf("sequence|%s|%d", c.Pattern, c.ParamIdx) }

// String implements Contract.
func (c *Sequence) String() string {
	return fmt.Sprintf("sequence(%s) on %s", lexer.VarName(c.ParamIdx), c.Display)
}

// Stats implements Contract.
func (c *Sequence) Stats() Stats { return c.Evidence }

// Unique requires the values of a parameter to be globally unique across
// all configurations, and (because uniqueness is learned from configs
// that define the value) each configuration to define it at least once.
// The existence component is what gives unique contracts nonzero
// coverage in Table 5; see DESIGN.md.
type Unique struct {
	Pattern  string `json:"pattern"`
	Display  string `json:"display"`
	ParamIdx int    `json:"param"`
	Evidence Stats  `json:"stats"`
}

// Category implements Contract.
func (c *Unique) Category() Category { return CatUnique }

// ID implements Contract.
func (c *Unique) ID() string { return fmt.Sprintf("unique|%s|%d", c.Pattern, c.ParamIdx) }

// String implements Contract.
func (c *Unique) String() string {
	return fmt.Sprintf("unique(%s) on %s", lexer.VarName(c.ParamIdx), c.Display)
}

// Stats implements Contract.
func (c *Unique) Stats() Stats { return c.Evidence }

// Relational requires that for every line l1 matching Pattern1, some
// line l2 matching Pattern2 exists in the same configuration with
// Rel(Transform2(l2.param2), Transform1(l1.param1)) — e.g. "every
// interface address is permitted by some prefix-list entry".
type Relational struct {
	Pattern1   string        `json:"pattern1"`
	Display1   string        `json:"display1"`
	ParamIdx1  int           `json:"param1"`
	Transform1 string        `json:"transform1"`
	Rel        relations.Rel `json:"rel"`
	Pattern2   string        `json:"pattern2"`
	Display2   string        `json:"display2"`
	ParamIdx2  int           `json:"param2"`
	Transform2 string        `json:"transform2"`
	Evidence   Stats         `json:"stats"`
}

// Category implements Contract.
func (c *Relational) Category() Category { return CatRelation }

// ID implements Contract.
func (c *Relational) ID() string {
	return fmt.Sprintf("relation|%s|%d|%s|%s|%s|%d|%s",
		c.Pattern1, c.ParamIdx1, c.Transform1, c.Rel, c.Pattern2, c.ParamIdx2, c.Transform2)
}

// String implements Contract.
func (c *Relational) String() string {
	lhs := wrapTransform(c.Transform1, "l1."+lexer.VarName(c.ParamIdx1))
	rhs := wrapTransform(c.Transform2, "l2."+lexer.VarName(c.ParamIdx2))
	var formula string
	if c.Rel == relations.Equals {
		formula = fmt.Sprintf("equals(%s, %s)", lhs, rhs)
	} else {
		// contains(l2.b, l1.a): the witness is the larger operand.
		formula = fmt.Sprintf("%s(%s, %s)", c.Rel, rhs, lhs)
	}
	return fmt.Sprintf("forall l1 ~ %s\nexists l2 ~ %s\n%s", c.Display1, c.Display2, formula)
}

// Stats implements Contract.
func (c *Relational) Stats() Stats { return c.Evidence }

// wrapTransform renders a transform application, keeping identity
// transparent: wrapTransform("hex", "l1.a") = "hex(l1.a)".
func wrapTransform(name, arg string) string {
	if name == "" || name == "id" {
		return arg
	}
	return name + "(" + arg + ")"
}

// Set is a collection of contracts, the unit produced by learning and
// consumed by checking.
type Set struct {
	Contracts []Contract
}

// ByCategory groups the set's contracts by category, preserving order.
func (s *Set) ByCategory() map[Category][]Contract {
	out := make(map[Category][]Contract)
	for _, c := range s.Contracts {
		out[c.Category()] = append(out[c.Category()], c)
	}
	return out
}

// Count returns the number of contracts in the given category.
func (s *Set) Count(cat Category) int {
	n := 0
	for _, c := range s.Contracts {
		if c.Category() == cat {
			n++
		}
	}
	return n
}

// Len returns the total number of contracts.
func (s *Set) Len() int { return len(s.Contracts) }

// Without returns a copy of the set with the listed contract IDs
// removed, plus the number actually suppressed. This backs the operator
// feedback loop of §4: false-positive contracts flagged through the
// report UI are suppressed on future checks.
func (s *Set) Without(ids map[string]bool) (*Set, int) {
	out := &Set{Contracts: make([]Contract, 0, len(s.Contracts))}
	suppressed := 0
	for _, c := range s.Contracts {
		if ids[c.ID()] {
			suppressed++
			continue
		}
		out.Contracts = append(out.Contracts, c)
	}
	return out, suppressed
}
