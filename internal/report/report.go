// Package report renders Concord's outputs: the JSON violation file and
// the user-friendly HTML report with filtering and searching that the
// paper's implementation ships (§4).
package report

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
)

// Report bundles everything a check run produced.
type Report struct {
	// GeneratedAt stamps the run.
	GeneratedAt time.Time `json:"generated_at"`
	// Violations lists all contract violations.
	Violations []contracts.Violation `json:"violations"`
	// Coverage summarizes per-line coverage.
	Coverage CoverageJSON `json:"coverage"`
	// Stats describes the checked corpus.
	Stats core.ProcessStats `json:"stats"`
}

// CoverageJSON is the serializable coverage summary.
type CoverageJSON struct {
	TotalLines   int                `json:"total_lines"`
	CoveredLines int                `json:"covered_lines"`
	Percent      float64            `json:"percent"`
	ByCategory   map[string]float64 `json:"by_category_percent"`
	PerConfig    []ConfigJSON       `json:"per_config"`
}

// ConfigJSON is one configuration's coverage.
type ConfigJSON struct {
	Name        string  `json:"name"`
	SourceLines int     `json:"source_lines"`
	Covered     int     `json:"covered"`
	Percent     float64 `json:"percent"`
}

// New builds a report from a check result.
func New(res *core.CheckResult, now time.Time) *Report {
	r := &Report{
		GeneratedAt: now,
		Violations:  res.Violations,
		Stats:       res.Stats,
		Coverage: CoverageJSON{
			TotalLines:   res.Coverage.TotalLines,
			CoveredLines: res.Coverage.CoveredLines,
			Percent:      res.Coverage.Percent(),
			ByCategory:   make(map[string]float64),
		},
	}
	if r.Violations == nil {
		r.Violations = []contracts.Violation{}
	}
	for _, cat := range contracts.Categories() {
		r.Coverage.ByCategory[string(cat)] = res.Coverage.CategoryPercent(cat)
	}
	for _, cc := range res.Coverage.PerConfig {
		pct := 0.0
		if cc.SourceLines > 0 {
			pct = 100 * float64(cc.Covered) / float64(cc.SourceLines)
		}
		r.Coverage.PerConfig = append(r.Coverage.PerConfig, ConfigJSON{
			Name: cc.Name, SourceLines: cc.SourceLines, Covered: cc.Covered, Percent: pct,
		})
	}
	sort.Slice(r.Coverage.PerConfig, func(i, j int) bool {
		return r.Coverage.PerConfig[i].Name < r.Coverage.PerConfig[j].Name
	})
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// htmlTemplate renders the violation browser: a static page with a
// client-side text filter and per-category toggle, mirroring the
// filtering/searching UI described in §4.
var htmlTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Concord Report</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
 h1 { font-size: 1.4rem; }
 .summary { margin-bottom: 1rem; color: #444; }
 input[type=search] { padding: .4rem; width: 24rem; margin-bottom: 1rem; }
 table { border-collapse: collapse; width: 100%; }
 th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid #ddd;
          vertical-align: top; font-size: .9rem; }
 th { background: #f4f4f8; }
 td.contract { font-family: ui-monospace, monospace; white-space: pre-wrap; }
 .cat { display: inline-block; padding: 0 .4rem; border-radius: .6rem;
        background: #e8e8f5; font-size: .8rem; }
 .controls label { margin-right: .8rem; font-size: .9rem; }
</style>
</head>
<body>
<h1>Concord check report</h1>
<p class="summary">
 Generated {{.GeneratedAt.Format "2006-01-02 15:04:05 MST"}} ·
 {{len .Violations}} violation(s) ·
 coverage {{printf "%.1f" .Coverage.Percent}}% of {{.Coverage.TotalLines}} lines ·
 {{.Stats.Configs}} configuration(s), {{.Stats.Patterns}} pattern(s)
</p>
<div class="controls">
 <input type="search" id="filter" placeholder="filter violations...">
 {{range $cat, $pct := .Coverage.ByCategory}}
  <label><input type="checkbox" class="cat-toggle" value="{{$cat}}" checked> {{$cat}}</label>
 {{end}}
</div>
<table id="violations">
<thead><tr><th></th><th>Category</th><th>File</th><th>Line</th><th>Detail</th><th>Contract</th></tr></thead>
<tbody>
{{range .Violations}}
<tr data-cat="{{.Category}}" data-id="{{.ContractID}}">
 <td><input type="checkbox" class="fp-mark" title="mark as false positive"></td>
 <td><span class="cat">{{.Category}}</span></td>
 <td>{{.File}}</td>
 <td>{{if .Line}}{{.Line}}{{else}}—{{end}}</td>
 <td>{{.Detail}}</td>
 <td class="contract">{{.Contract}}</td>
</tr>
{{end}}
</tbody>
</table>
<h2 style="font-size:1rem">Operator feedback</h2>
<p style="color:#444;font-size:.9rem">
 Tick violations that are false positives; save the suppression list below
 and pass it to <code>concord check -suppress suppressions.json</code>.
</p>
<textarea id="suppressions" rows="4" style="width:100%" readonly>[]</textarea>
<script>
const rows = Array.from(document.querySelectorAll('#violations tbody tr'));
const filter = document.getElementById('filter');
const toggles = Array.from(document.querySelectorAll('.cat-toggle'));
const suppressions = document.getElementById('suppressions');
function refresh() {
  const q = filter.value.toLowerCase();
  const cats = new Set(toggles.filter(t => t.checked).map(t => t.value));
  for (const row of rows) {
    const show = cats.has(row.dataset.cat) &&
      (!q || row.textContent.toLowerCase().includes(q));
    row.style.display = show ? '' : 'none';
  }
}
function refreshSuppressions() {
  const ids = new Set();
  for (const row of rows) {
    const mark = row.querySelector('.fp-mark');
    if (mark && mark.checked) ids.add(row.dataset.id);
  }
  suppressions.value = JSON.stringify(Array.from(ids).sort(), null, 1);
}
filter.addEventListener('input', refresh);
toggles.forEach(t => t.addEventListener('change', refresh));
rows.forEach(r => {
  const mark = r.querySelector('.fp-mark');
  if (mark) mark.addEventListener('change', refreshSuppressions);
});
</script>
</body>
</html>
`))

// WriteHTML renders the report as a standalone HTML page.
func (r *Report) WriteHTML(w io.Writer) error {
	return htmlTemplate.Execute(w, r)
}

// ContractsJSON serializes a learned contract set the way
// `concord learn` emits it, with a small header documenting provenance.
func ContractsJSON(set *contracts.Set, stats core.ProcessStats) ([]byte, error) {
	payload := struct {
		Stats     core.ProcessStats `json:"stats"`
		Contracts *contracts.Set    `json:"contracts"`
	}{Stats: stats, Contracts: set}
	return json.MarshalIndent(payload, "", "  ")
}

// ParseContractsJSON reads a file produced by ContractsJSON. It also
// accepts a bare contract array for hand-written contract files.
func ParseContractsJSON(data []byte) (*contracts.Set, error) {
	var payload struct {
		Contracts *contracts.Set `json:"contracts"`
	}
	if err := json.Unmarshal(data, &payload); err == nil && payload.Contracts != nil {
		return payload.Contracts, nil
	}
	set := &contracts.Set{}
	if err := json.Unmarshal(data, set); err != nil {
		return nil, fmt.Errorf("report: parsing contracts: %w", err)
	}
	return set, nil
}
