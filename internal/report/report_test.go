package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
)

func sampleResult() *core.CheckResult {
	return &core.CheckResult{
		Violations: []contracts.Violation{
			{Category: contracts.CatPresent, ContractID: "present|/x", Contract: "exists l ~ /x",
				File: "dev1.cfg", Line: 0, Detail: "no line matches required pattern /x"},
			{Category: contracts.CatRelation, ContractID: "relation|...", Contract: "forall l1 ~ a\nexists l2 ~ b\nequals(l1.a, l2.a)",
				File: "dev2.cfg", Line: 17, Detail: "no witness"},
		},
		Coverage: core.CoverageSummary{
			TotalLines:   100,
			CoveredLines: 61,
			ByCategory:   map[contracts.Category]int{contracts.CatPresent: 20},
			PerConfig: []core.ConfigCoverage{
				{Name: "dev1.cfg", SourceLines: 50, Covered: 30},
				{Name: "dev2.cfg", SourceLines: 50, Covered: 31},
			},
		},
		Stats: core.ProcessStats{Configs: 2, Lines: 100, Patterns: 12, Parameters: 9},
	}
}

func TestJSONReport(t *testing.T) {
	r := New(sampleResult(), time.Unix(1750000000, 0).UTC())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if _, ok := parsed["violations"]; !ok {
		t.Error("missing violations key")
	}
	cov := parsed["coverage"].(map[string]any)
	if cov["percent"].(float64) != 61 {
		t.Errorf("coverage percent = %v", cov["percent"])
	}
}

func TestHTMLReport(t *testing.T) {
	r := New(sampleResult(), time.Unix(1750000000, 0).UTC())
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	html := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "dev1.cfg", "dev2.cfg", "no witness",
		"equals(l1.a, l2.a)", "61.0", "filter violations",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscapesContent(t *testing.T) {
	res := sampleResult()
	res.Violations[0].Detail = `<script>alert("xss")</script>`
	r := New(res, time.Now())
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `<script>alert`) {
		t.Error("violation content not escaped")
	}
}

func TestContractsJSONRoundTrip(t *testing.T) {
	set := &contracts.Set{Contracts: []contracts.Contract{
		&contracts.Present{Pattern: "/router bgp [num]", Display: "/router bgp [a:num]"},
		&contracts.Unique{Pattern: "/hostname [num]", Display: "/hostname [a:num]"},
	}}
	data, err := ContractsJSON(set, core.ProcessStats{Configs: 3})
	if err != nil {
		t.Fatalf("ContractsJSON: %v", err)
	}
	back, err := ParseContractsJSON(data)
	if err != nil {
		t.Fatalf("ParseContractsJSON: %v", err)
	}
	if back.Len() != 2 {
		t.Errorf("round trip lost contracts: %d", back.Len())
	}
}

func TestParseContractsBareArray(t *testing.T) {
	set := &contracts.Set{Contracts: []contracts.Contract{
		&contracts.Present{Pattern: "/x", Display: "/x"},
	}}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseContractsJSON(data)
	if err != nil {
		t.Fatalf("bare array rejected: %v", err)
	}
	if back.Len() != 1 {
		t.Error("bare array lost contracts")
	}
}

func TestParseContractsInvalid(t *testing.T) {
	if _, err := ParseContractsJSON([]byte("{nope")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestEmptyViolationsSerializeAsArray(t *testing.T) {
	res := sampleResult()
	res.Violations = nil
	r := New(res, time.Now())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"violations": []`) {
		t.Error("nil violations should serialize as an empty array")
	}
}

func TestHTMLIncludesSuppressionUI(t *testing.T) {
	r := New(sampleResult(), time.Now())
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		`data-id="present|/x"`, "fp-mark", "suppressions", "-suppress",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}
