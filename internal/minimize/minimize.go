// Package minimize implements Concord's relational contract minimization
// (§3.6). Contracts over transitive relations form a directed graph
// whose nodes are (pattern, parameter, transformation) triples; an edge
// records a learned "forall n1 exists n2" contract. Because the
// relations compose — if every A-value has a related B-value and every
// B-value a related C-value, then every A-value has a related C-value —
// many contracts are implied by others. Minimization keeps a minimal
// edge set with the same reachability, preserving the set's bug-finding
// power exactly: each strongly connected group (mutual equality) is
// replaced by a simple cycle, and the condensed DAG undergoes transitive
// reduction.
package minimize

import (
	"fmt"
	"sort"

	"concord/internal/contracts"
	"concord/internal/graph"
	"concord/internal/relations"
	"concord/internal/telemetry"
)

// Result reports the effect of one minimization run.
type Result struct {
	// Before and After count relational contracts over transitive
	// relations before and after minimization.
	Before, After int
	// Synthesized counts contracts created for cycle edges that had no
	// learned counterpart (implied by transitivity within an equality
	// group).
	Synthesized int
}

// ReductionFactor returns Before/After (1 if nothing to reduce),
// the metric plotted in Figure 8 of the paper.
func (r Result) ReductionFactor() float64 {
	if r.After == 0 {
		return 1
	}
	return float64(r.Before) / float64(r.After)
}

// node is a (pattern, parameter, transform) triple.
type node struct {
	pattern   string
	idx       int
	transform string
}

func (n node) key() string { return fmt.Sprintf("%s|%d|%s", n.pattern, n.idx, n.transform) }

// edge is a directed contract edge between node ids.
type edge struct{ u, v int }

// SetInstrumented minimizes like Set under a telemetry span, recording
// the reduction as minimize.relational.{before,after} and
// minimize.synthesized counters. A nil recorder degrades to plain Set.
func SetInstrumented(set *contracts.Set, rec *telemetry.Recorder) (*contracts.Set, Result) {
	sp := rec.StartSpan("minimize")
	out, res := Set(set)
	sp.EndCount(res.Before)
	rec.Add("minimize.relational.before", int64(res.Before))
	rec.Add("minimize.relational.after", int64(res.After))
	rec.Add("minimize.synthesized", int64(res.Synthesized))
	return out, res
}

// Set minimizes the relational contracts of a contract set in place,
// returning the new set and the reduction statistics. Non-relational
// contracts and contracts over non-transitive relations pass through
// untouched.
func Set(set *contracts.Set) (*contracts.Set, Result) {
	var rels []*contracts.Relational
	var rest []contracts.Contract
	for _, c := range set.Contracts {
		if r, ok := c.(*contracts.Relational); ok && r.Rel.Transitive() {
			rels = append(rels, r)
		} else {
			rest = append(rest, c)
		}
	}
	kept, res := Relational(rels)
	out := &contracts.Set{Contracts: rest}
	for _, r := range kept {
		out.Contracts = append(out.Contracts, r)
	}
	sort.Slice(out.Contracts, func(i, j int) bool { return out.Contracts[i].ID() < out.Contracts[j].ID() })
	return out, res
}

// Relational minimizes a list of transitive relational contracts,
// processing each relation independently.
func Relational(rels []*contracts.Relational) ([]*contracts.Relational, Result) {
	byRel := make(map[relations.Rel][]*contracts.Relational)
	for _, r := range rels {
		byRel[r.Rel] = append(byRel[r.Rel], r)
	}
	var relOrder []relations.Rel
	for rel := range byRel {
		relOrder = append(relOrder, rel)
	}
	sort.Slice(relOrder, func(i, j int) bool { return relOrder[i] < relOrder[j] })

	res := Result{Before: len(rels)}
	var kept []*contracts.Relational
	for _, rel := range relOrder {
		k, synth := minimizeOne(rel, byRel[rel])
		kept = append(kept, k...)
		res.Synthesized += synth
	}
	res.After = len(kept)
	return kept, res
}

// minimizeOne reduces the contract graph of a single relation.
func minimizeOne(rel relations.Rel, rels []*contracts.Relational) ([]*contracts.Relational, int) {
	// Assign node ids deterministically.
	nodeID := make(map[string]int)
	var nodes []node
	displays := make(map[string]string)
	intern := func(n node, display string) int {
		k := n.key()
		if display != "" {
			displays[k] = display
		}
		id, ok := nodeID[k]
		if !ok {
			id = len(nodes)
			nodeID[k] = id
			nodes = append(nodes, n)
		}
		return id
	}
	contractFor := make(map[edge]*contracts.Relational)
	sorted := append([]*contracts.Relational{}, rels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for _, r := range sorted {
		u := intern(node{r.Pattern1, r.ParamIdx1, r.Transform1}, r.Display1)
		v := intern(node{r.Pattern2, r.ParamIdx2, r.Transform2}, r.Display2)
		e := edge{u, v}
		if _, dup := contractFor[e]; !dup {
			contractFor[e] = r
		}
	}

	g := graph.New(len(nodes))
	for e := range contractFor {
		g.AddEdge(e.u, e.v)
	}
	comp, count := g.SCC()

	// Group members per component, deterministically ordered.
	members := make([][]int, count)
	for id := range nodes {
		members[comp[id]] = append(members[comp[id]], id)
	}
	for _, m := range members {
		sort.Ints(m)
	}

	var out []*contracts.Relational
	synth := 0

	// Cycle edges within each non-trivial SCC.
	for _, m := range members {
		if len(m) < 2 {
			continue
		}
		for i := range m {
			u, v := m[i], m[(i+1)%len(m)]
			if r, ok := contractFor[edge{u, v}]; ok {
				out = append(out, r)
				continue
			}
			out = append(out, synthesize(rel, nodes[u], nodes[v], displays, collectStats(m, contractFor)))
			synth++
		}
	}

	// Cross-component edges: condense, transitively reduce, and keep one
	// representative contract per surviving DAG edge.
	dag := g.Condense(comp, count)
	dag.TransitiveReduce()
	type dagEdge struct{ a, b int }
	keptDag := make(map[dagEdge]bool)
	for _, e := range dag.Edges() {
		keptDag[dagEdge{e[0], e[1]}] = true
	}
	// Representative: smallest contract ID among original edges mapping
	// to the kept DAG edge.
	best := make(map[dagEdge]*contracts.Relational)
	for e, r := range contractFor {
		de := dagEdge{comp[e.u], comp[e.v]}
		if de.a == de.b || !keptDag[de] {
			continue
		}
		if cur, ok := best[de]; !ok || r.ID() < cur.ID() {
			best[de] = r
		}
	}
	var dagEdges []dagEdge
	for de := range best {
		dagEdges = append(dagEdges, de)
	}
	sort.Slice(dagEdges, func(i, j int) bool {
		if dagEdges[i].a != dagEdges[j].a {
			return dagEdges[i].a < dagEdges[j].a
		}
		return dagEdges[i].b < dagEdges[j].b
	})
	for _, de := range dagEdges {
		out = append(out, best[de])
	}
	return out, synth
}

// collectStats merges evidence across a component's contracts: the
// weakest support and confidence, so synthesized contracts never claim
// more evidence than their constituents.
func collectStats(members []int, contractFor map[edge]*contracts.Relational) contracts.Stats {
	inSCC := make(map[int]bool, len(members))
	for _, m := range members {
		inSCC[m] = true
	}
	st := contracts.Stats{Support: -1, Confidence: 2}
	for e, r := range contractFor {
		if !inSCC[e.u] || !inSCC[e.v] {
			continue
		}
		if st.Support < 0 || r.Evidence.Support < st.Support {
			st.Support = r.Evidence.Support
		}
		if r.Evidence.Confidence < st.Confidence {
			st.Confidence = r.Evidence.Confidence
		}
		if r.Evidence.Score > st.Score {
			st.Score = r.Evidence.Score
		}
	}
	if st.Support < 0 {
		st = contracts.Stats{}
	}
	return st
}

// synthesize builds the implied contract for a cycle edge that had no
// learned counterpart.
func synthesize(rel relations.Rel, u, v node, displays map[string]string, st contracts.Stats) *contracts.Relational {
	d1 := displays[u.key()]
	if d1 == "" {
		d1 = u.pattern
	}
	d2 := displays[v.key()]
	if d2 == "" {
		d2 = v.pattern
	}
	return &contracts.Relational{
		Pattern1: u.pattern, Display1: d1, ParamIdx1: u.idx, Transform1: u.transform,
		Rel:      rel,
		Pattern2: v.pattern, Display2: d2, ParamIdx2: v.idx, Transform2: v.transform,
		Evidence: st,
	}
}
