package minimize

import (
	"fmt"
	"math/rand"
	"testing"

	"concord/internal/contracts"
	"concord/internal/graph"
	"concord/internal/relations"
)

// rc builds an equality contract between two pattern nodes (param 0,
// identity transform).
func rc(p1, p2 string) *contracts.Relational {
	return &contracts.Relational{
		Pattern1: p1, Display1: p1, ParamIdx1: 0, Transform1: "id",
		Rel:      relations.Equals,
		Pattern2: p2, Display2: p2, ParamIdx2: 0, Transform2: "id",
		Evidence: contracts.Stats{Support: 10, Confidence: 1, Score: 20},
	}
}

func TestMinimizeCompleteEqualityGroup(t *testing.T) {
	// The paper's p4/p5/p6 example: all six pairwise contracts collapse
	// to a three-edge cycle.
	var rels []*contracts.Relational
	ps := []string{"p4", "p5", "p6"}
	for _, a := range ps {
		for _, b := range ps {
			if a != b {
				rels = append(rels, rc(a, b))
			}
		}
	}
	kept, res := Relational(rels)
	if res.Before != 6 {
		t.Errorf("Before = %d", res.Before)
	}
	if len(kept) != 3 || res.After != 3 {
		t.Fatalf("kept %d contracts, want 3 (cycle)", len(kept))
	}
	// The kept edges must form a single cycle covering all three nodes.
	succ := map[string]string{}
	for _, r := range kept {
		succ[r.Pattern1] = r.Pattern2
	}
	seen := map[string]bool{}
	cur := "p4"
	for i := 0; i < 3; i++ {
		seen[cur] = true
		cur = succ[cur]
	}
	if len(seen) != 3 || cur != "p4" {
		t.Errorf("kept edges do not form a 3-cycle: %v", succ)
	}
	if res.ReductionFactor() != 2 {
		t.Errorf("ReductionFactor = %v, want 2", res.ReductionFactor())
	}
}

func TestMinimizeChain(t *testing.T) {
	// a->b, b->c, a->c: the shortcut is removed.
	rels := []*contracts.Relational{rc("a", "b"), rc("b", "c"), rc("a", "c")}
	kept, res := Relational(rels)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2: %v", len(kept), kept)
	}
	for _, r := range kept {
		if r.Pattern1 == "a" && r.Pattern2 == "c" {
			t.Error("implied shortcut survived")
		}
	}
	if res.Synthesized != 0 {
		t.Errorf("Synthesized = %d", res.Synthesized)
	}
}

func TestMinimizeSynthesizesCycleEdges(t *testing.T) {
	// a<->b and b<->c mutually equal, plus a->c: SCC {a,b,c} is formed
	// via transitivity, and the cycle may need a synthesized edge.
	rels := []*contracts.Relational{
		rc("a", "b"), rc("b", "a"),
		rc("b", "c"), rc("c", "b"),
		rc("a", "c"), rc("c", "a"),
	}
	kept, res := Relational(rels)
	if len(kept) != 3 {
		t.Fatalf("kept %d, want 3", len(kept))
	}
	// Reachability must be preserved: from any node, both others are
	// reachable through the cycle.
	idx := map[string]int{"a": 0, "b": 1, "c": 2}
	g := graph.New(3)
	for _, r := range kept {
		g.AddEdge(idx[r.Pattern1], idx[r.Pattern2])
	}
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if !g.Reachable(u, v) {
				t.Errorf("reachability %d->%d lost", u, v)
			}
		}
	}
	_ = res
}

func TestMinimizeKeepsDistinctRelationsApart(t *testing.T) {
	eq := rc("a", "b")
	sw := rc("a", "b")
	sw.Rel = relations.StartsWith
	kept, _ := Relational([]*contracts.Relational{eq, sw})
	if len(kept) != 2 {
		t.Errorf("contracts over different relations merged: %d", len(kept))
	}
}

func TestMinimizeDifferentTransformsAreDifferentNodes(t *testing.T) {
	// a --hex--> b and b --id--> c do NOT compose (different node for b's
	// two roles is the same only if pattern+param+transform all match).
	r1 := rc("a", "b")
	r1.Transform2 = "hex"
	r2 := rc("b", "c")
	r3 := rc("a", "c")
	kept, _ := Relational([]*contracts.Relational{r1, r2, r3})
	// (a,0,id)->(b,0,hex); (b,0,id)->(c,0,id); (a,0,id)->(c,0,id).
	// No path a->...->c exists via b, so a->c must be kept.
	found := false
	for _, r := range kept {
		if r.Pattern1 == "a" && r.Pattern2 == "c" {
			found = true
		}
	}
	if !found {
		t.Error("a->c removed although not implied (transform mismatch)")
	}
}

func TestMinimizeSet(t *testing.T) {
	set := &contracts.Set{Contracts: []contracts.Contract{
		&contracts.Present{Pattern: "p", Display: "p"},
		rc("a", "b"), rc("b", "c"), rc("a", "c"),
	}}
	out, res := Set(set)
	if out.Count(contracts.CatPresent) != 1 {
		t.Error("non-relational contract lost")
	}
	if out.Count(contracts.CatRelation) != 2 {
		t.Errorf("relational count = %d, want 2", out.Count(contracts.CatRelation))
	}
	if res.Before != 3 || res.After != 2 {
		t.Errorf("res = %+v", res)
	}
}

func TestMinimizeEmpty(t *testing.T) {
	kept, res := Relational(nil)
	if len(kept) != 0 || res.ReductionFactor() != 1 {
		t.Errorf("empty minimization: %v %+v", kept, res)
	}
}

// TestMinimizePreservesBugFinding is the paper's core claim: deleting
// any single node's pattern (simulating a missing line) still triggers a
// violation after minimization whenever it did before. We model this at
// the graph level: for every node with an incoming original edge, the
// minimized graph also has a path into it.
func TestMinimizePreservesBugFinding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(8)
		var rels []*contracts.Relational
		name := func(i int) string { return fmt.Sprintf("n%02d", i) }
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.3 {
					rels = append(rels, rc(name(u), name(v)))
				}
			}
		}
		kept, _ := Relational(rels)

		origIn := map[string]bool{}
		for _, r := range rels {
			origIn[r.Pattern2] = true
		}
		// Build reachability over kept edges.
		idx := map[string]int{}
		for i := 0; i < n; i++ {
			idx[name(i)] = i
		}
		g := graph.New(n)
		keptIn := map[string]bool{}
		for _, r := range kept {
			g.AddEdge(idx[r.Pattern1], idx[r.Pattern2])
			keptIn[r.Pattern2] = true
		}
		// Every node that was a witness target must still be one: if its
		// pattern disappears, some kept contract must point at it.
		for p := range origIn {
			if !keptIn[p] {
				t.Fatalf("trial %d: node %s lost all incoming contracts", trial, p)
			}
		}
		// Reachability equivalence between original and kept graphs.
		og := graph.New(n)
		for _, r := range rels {
			og.AddEdge(idx[r.Pattern1], idx[r.Pattern2])
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if og.Reachable(u, v) != g.Reachable(u, v) {
					t.Fatalf("trial %d: reachability %d->%d changed", trial, u, v)
				}
			}
		}
	}
}

func TestMinimizeQuadraticToLinear(t *testing.T) {
	// n patterns with mutual equality: n^2-n contracts collapse to n.
	const n = 12
	var rels []*contracts.Relational
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				rels = append(rels, rc(fmt.Sprintf("q%02d", u), fmt.Sprintf("q%02d", v)))
			}
		}
	}
	kept, res := Relational(rels)
	if len(kept) != n {
		t.Errorf("kept %d, want %d (simple cycle)", len(kept), n)
	}
	if res.ReductionFactor() < float64(n-1) {
		t.Errorf("ReductionFactor = %v", res.ReductionFactor())
	}
}
