// Package graph implements the directed-graph algorithms behind
// Concord's relational contract minimization (§3.6): Tarjan's strongly
// connected components, SCC condensation, and transitive reduction of a
// DAG. Minimization replaces each fully connected equality group with a
// simple cycle and removes edges implied by transitivity, preserving
// reachability (and therefore bug-finding power) exactly.
package graph

import "sort"

// Digraph is a directed graph over nodes 0..N-1 with an adjacency-set
// representation. The zero value is unusable; use New.
type Digraph struct {
	n   int
	adj []map[int]bool
}

// New creates a digraph with n nodes and no edges.
func New(n int) *Digraph {
	g := &Digraph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts the edge u -> v. Self-loops and duplicates are
// ignored.
func (g *Digraph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	g.adj[u][v] = true
}

// RemoveEdge deletes the edge u -> v if present.
func (g *Digraph) RemoveEdge(u, v int) {
	if u >= 0 && u < g.n {
		delete(g.adj[u], v)
	}
}

// HasEdge reports whether the edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	return u >= 0 && u < g.n && g.adj[u][v]
}

// Succ returns the successors of u in ascending order.
func (g *Digraph) Succ(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the total number of edges.
func (g *Digraph) EdgeCount() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total
}

// Edges returns all edges in deterministic (u, then v) order.
func (g *Digraph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.Succ(u) {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			c.adj[u][v] = true
		}
	}
	return c
}

// Reachable reports whether dest is reachable from src (src reaches
// itself trivially).
func (g *Digraph) Reachable(src, dest int) bool {
	if src == dest {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.adj[u] {
			if v == dest {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm. It returns the component index of each node and the number
// of components. Component indexes follow reverse topological order of
// the condensation (a Tarjan property): if comp[u] < comp[v] then there
// is no path from u to v across components.
func (g *Digraph) SCC() (comp []int, count int) {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	comp = make([]int, g.n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		node int
		succ []int
		i    int
	}
	for start := 0; start < g.n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{node: start, succ: g.Succ(start)}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succ: g.Succ(w)})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// All successors processed: maybe pop a component.
			v := f.node
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, count
}

// Condense builds the condensation DAG of g given an SCC labeling: one
// node per component, with an edge between components whenever any
// cross-component edge exists in g.
func (g *Digraph) Condense(comp []int, count int) *Digraph {
	dag := New(count)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if comp[u] != comp[v] {
				dag.AddEdge(comp[u], comp[v])
			}
		}
	}
	return dag
}

// TopoOrder returns a topological ordering of a DAG (Kahn's algorithm).
// Behavior is undefined if the graph has cycles; callers should condense
// first.
func (g *Digraph) TopoOrder() []int {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			indeg[v]++
		}
	}
	var queue []int
	for i := 0; i < g.n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Succ(u) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order
}

// TransitiveReduce removes every edge (u, w) of a DAG that is implied by
// a longer path from u to w, in place. The result is the unique minimal
// graph with the same reachability relation (Aho, Garey & Ullman 1972).
// The graph must be acyclic.
func (g *Digraph) TransitiveReduce() {
	order := g.TopoOrder()
	pos := make([]int, g.n)
	for i, u := range order {
		pos[u] = i
	}
	// reach[u] = bitset of nodes reachable from u (excluding u itself via
	// the empty path, including everything downstream). Computed in
	// reverse topological order.
	words := (g.n + 63) / 64
	reach := make([][]uint64, g.n)
	setBit := func(bs []uint64, i int) { bs[i/64] |= 1 << (i % 64) }
	getBit := func(bs []uint64, i int) bool { return bs[i/64]&(1<<(i%64)) != 0 }

	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		bs := make([]uint64, words)
		// Successors sorted nearest-first by topological position: if w is
		// reachable from v then pos[v] < pos[w] in every topological order,
		// so v is processed first, its reachability covers w, and the
		// redundant direct edge u->w is removed.
		succ := g.Succ(u)
		sort.Slice(succ, func(a, b int) bool { return pos[succ[a]] < pos[succ[b]] })
		for _, v := range succ {
			if getBit(bs, v) {
				// v already reachable through a previously kept successor:
				// the direct edge is redundant.
				g.RemoveEdge(u, v)
				continue
			}
			setBit(bs, v)
			for w := range reach[v] {
				bs[w] |= reach[v][w]
			}
		}
		reach[u] = bs
	}
}
