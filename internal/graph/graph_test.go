package graph

import (
	"math/rand"
	"testing"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate
	g.AddEdge(1, 1) // self loop ignored
	g.AddEdge(-1, 2)
	g.AddEdge(0, 99)
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	g.RemoveEdge(0, 1)
	if g.EdgeCount() != 0 {
		t.Error("RemoveEdge failed")
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if !g.Reachable(0, 2) {
		t.Error("0 should reach 2")
	}
	if g.Reachable(2, 0) {
		t.Error("2 should not reach 0")
	}
	if !g.Reachable(4, 4) {
		t.Error("node should reach itself")
	}
	if g.Reachable(0, 4) {
		t.Error("0 should not reach 4")
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comp, count := g.SCC()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("cycle nodes should share a component")
	}
	if comp[3] == comp[0] {
		t.Error("node 3 should be its own component")
	}
}

func TestSCCDisconnected(t *testing.T) {
	g := New(3)
	_, count := g.SCC()
	if count != 3 {
		t.Errorf("count = %d, want 3 singleton components", count)
	}
}

func TestCondense(t *testing.T) {
	g := New(5)
	// Two cycles {0,1} and {2,3}, plus edges 1->2 and 3->4.
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comp, count := g.SCC()
	dag := g.Condense(comp, count)
	if dag.N() != 3 {
		t.Fatalf("condensation has %d nodes, want 3", dag.N())
	}
	if dag.EdgeCount() != 2 {
		t.Errorf("condensation has %d edges, want 2", dag.EdgeCount())
	}
	// Condensation must be acyclic.
	c2, n2 := dag.SCC()
	_ = c2
	if n2 != dag.N() {
		t.Error("condensation is not acyclic")
	}
}

func TestTransitiveReduceTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2) // implied
	g.TransitiveReduce()
	if g.HasEdge(0, 2) {
		t.Error("implied edge 0->2 not removed")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("chain edges must survive")
	}
}

func TestTransitiveReduceDiamond(t *testing.T) {
	g := New(4)
	// 0->1->3, 0->2->3, 0->3 (only 0->3 is redundant).
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	g.TransitiveReduce()
	if g.HasEdge(0, 3) {
		t.Error("0->3 should be removed")
	}
	if g.EdgeCount() != 4 {
		t.Errorf("EdgeCount = %d, want 4", g.EdgeCount())
	}
}

func TestTransitiveReduceLongChainShortcut(t *testing.T) {
	const n = 10
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	// Every shortcut is redundant.
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	g.TransitiveReduce()
	if g.EdgeCount() != n-1 {
		t.Errorf("EdgeCount = %d, want %d", g.EdgeCount(), n-1)
	}
}

// TestTransitiveReducePreservesReachability is the core §3.6 invariant:
// after reduction, reachability between every pair of nodes is unchanged,
// and no kept edge is redundant.
func TestTransitiveReducePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(10)
		g := New(n)
		// Random DAG: edges only from lower to higher index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(u, v)
				}
			}
		}
		orig := g.Clone()
		g.TransitiveReduce()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if orig.Reachable(u, v) != g.Reachable(u, v) {
					t.Fatalf("trial %d: reachability %d->%d changed", trial, u, v)
				}
			}
		}
		// Minimality: removing any kept edge must change reachability.
		for _, e := range g.Edges() {
			g2 := g.Clone()
			g2.RemoveEdge(e[0], e[1])
			if g2.Reachable(e[0], e[1]) {
				t.Fatalf("trial %d: kept edge %v is redundant", trial, e)
			}
		}
	}
}

// TestSCCMatchesBruteForce checks Tarjan against mutual-reachability.
func TestSCCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.25 {
					g.AddEdge(u, v)
				}
			}
		}
		comp, _ := g.SCC()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := g.Reachable(u, v) && g.Reachable(v, u)
				if same != (comp[u] == comp[v]) {
					t.Fatalf("trial %d: SCC disagrees for %d,%d", trial, u, v)
				}
			}
		}
	}
}

func TestSCCReverseTopoProperty(t *testing.T) {
	// Tarjan numbers components in reverse topological order: an edge
	// u->v across components implies comp[u] > comp[v].
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		comp, _ := g.SCC()
		for _, e := range g.Edges() {
			if comp[e[0]] != comp[e[1]] && comp[e[0]] < comp[e[1]] {
				t.Fatalf("trial %d: edge %v violates reverse-topo component order", trial, e)
			}
		}
	}
}

func TestTopoOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	order := g.TopoOrder()
	if len(order) != 4 {
		t.Fatalf("TopoOrder len = %d", len(order))
	}
	pos := make(map[int]int)
	for i, u := range order {
		pos[u] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] > pos[e[1]] {
			t.Errorf("edge %v out of topological order", e)
		}
	}
}
