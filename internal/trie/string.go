package trie

// stringNode is a node of the byte-wise string trie. Children are kept
// in a slice sorted by byte so traversal is deterministic and cheap:
// per-position alphabets in configuration text are small, so linear
// scans beat map probes by a wide margin (walking with a map requires
// hashing at every node, which dominated relational-mining profiles).
type stringNode[T any] struct {
	children []stringChild[T]
	payloads []T
	terminal bool
}

type stringChild[T any] struct {
	b byte
	n *stringNode[T]
}

// child returns the child for byte b, or nil.
func (n *stringNode[T]) child(b byte) *stringNode[T] {
	for i := range n.children {
		if n.children[i].b == b {
			return n.children[i].n
		}
	}
	return nil
}

// ensureChild returns the child for byte b, creating it in sorted
// position if needed.
func (n *stringNode[T]) ensureChild(b byte) *stringNode[T] {
	lo := 0
	for lo < len(n.children) && n.children[lo].b < b {
		lo++
	}
	if lo < len(n.children) && n.children[lo].b == b {
		return n.children[lo].n
	}
	c := &stringNode[T]{}
	n.children = append(n.children, stringChild[T]{})
	copy(n.children[lo+1:], n.children[lo:])
	n.children[lo] = stringChild[T]{b: b, n: c}
	return c
}

// StringTrie indexes strings and answers affix queries: which inserted
// strings are prefixes of a query (PrefixesOf), and which inserted
// strings have the query as a prefix (ExtensionsOf). Concord uses one
// forward trie for startswith relations and a second trie over reversed
// strings for endswith relations.
type StringTrie[T any] struct {
	root *stringNode[T]
	size int
}

// NewStringTrie creates an empty string trie.
func NewStringTrie[T any]() *StringTrie[T] {
	return &StringTrie[T]{root: &stringNode[T]{}}
}

// Len reports the number of inserted payloads.
func (t *StringTrie[T]) Len() int { return t.size }

// Insert adds a string with an associated payload. Empty strings are
// allowed and attach to the root.
func (t *StringTrie[T]) Insert(s string, payload T) {
	n := t.root
	for i := 0; i < len(s); i++ {
		n = n.ensureChild(s[i])
	}
	n.terminal = true
	n.payloads = append(n.payloads, payload)
	t.size++
}

// PrefixesOf visits the payloads of every inserted string that is a
// prefix of q (including q itself if inserted), shortest first. If
// proper is true, q itself is excluded. Visiting stops early when visit
// returns false.
func (t *StringTrie[T]) PrefixesOf(q string, proper bool, visit func(payload T) bool) {
	n := t.root
	for i := 0; ; i++ {
		atEnd := i == len(q)
		if n.terminal && !(proper && atEnd) {
			for _, p := range n.payloads {
				if !visit(p) {
					return
				}
			}
		}
		if atEnd {
			return
		}
		n = n.child(q[i])
		if n == nil {
			return
		}
	}
}

// ExtensionsOf visits the payloads of every inserted string that has q as
// a prefix (including q itself if inserted), in lexicographic order. If
// proper is true, q itself is excluded. Visiting stops early when visit
// returns false.
func (t *StringTrie[T]) ExtensionsOf(q string, proper bool, visit func(payload T) bool) {
	n := t.root
	for i := 0; i < len(q); i++ {
		n = n.child(q[i])
		if n == nil {
			return
		}
	}
	t.walk(n, proper, visit)
}

// walk visits all terminal payloads under n depth-first in byte order.
func (t *StringTrie[T]) walk(n *stringNode[T], skipRoot bool, visit func(payload T) bool) bool {
	if n.terminal && !skipRoot {
		for _, p := range n.payloads {
			if !visit(p) {
				return false
			}
		}
	}
	for i := range n.children {
		if !t.walk(n.children[i].n, false, visit) {
			return false
		}
	}
	return true
}

// Reverse returns s with its bytes reversed; used to turn endswith
// queries into startswith queries on a second trie.
func Reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}
