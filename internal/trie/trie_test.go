package trie

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"concord/internal/netdata"
)

func mustPfx4(t *testing.T, s string) netdata.Prefix {
	t.Helper()
	p, err := netdata.ParsePrefix4(s)
	if err != nil {
		t.Fatalf("ParsePrefix4(%q): %v", s, err)
	}
	return p
}

func mustIP4(t *testing.T, s string) netdata.IP {
	t.Helper()
	ip, err := netdata.ParseIP4(s)
	if err != nil {
		t.Fatalf("ParseIP4(%q): %v", s, err)
	}
	return ip
}

func collectContaining(tr *PrefixTrie[string], ip netdata.IP) []string {
	var out []string
	tr.Containing(ip, func(p string) bool { out = append(out, p); return true })
	return out
}

func TestPrefixTrieContaining(t *testing.T) {
	tr := NewPrefixTrie[string](false)
	for _, s := range []string{"0.0.0.0/0", "10.0.0.0/8", "10.14.0.0/16", "10.14.14.34/32", "192.168.0.0/16"} {
		if !tr.Insert(mustPfx4(t, s), s) {
			t.Fatalf("Insert(%s) rejected", s)
		}
	}
	got := collectContaining(tr, mustIP4(t, "10.14.14.34"))
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.14.0.0/16", "10.14.14.34/32"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Containing = %v, want %v (most-general first)", got, want)
	}
	got = collectContaining(tr, mustIP4(t, "172.16.0.1"))
	if len(got) != 1 || got[0] != "0.0.0.0/0" {
		t.Errorf("Containing(172.16.0.1) = %v", got)
	}
}

func TestPrefixTrieContainingPrefix(t *testing.T) {
	tr := NewPrefixTrie[string](false)
	for _, s := range []string{"10.0.0.0/8", "10.14.0.0/16"} {
		tr.Insert(mustPfx4(t, s), s)
	}
	var got []string
	tr.ContainingPrefix(mustPfx4(t, "10.14.14.0/24"), func(p string) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 2 {
		t.Errorf("ContainingPrefix = %v, want both supernets", got)
	}
	got = nil
	// A /8 query matches only the /8 itself, not the /16.
	tr.ContainingPrefix(mustPfx4(t, "10.0.0.0/8"), func(p string) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 1 || got[0] != "10.0.0.0/8" {
		t.Errorf("ContainingPrefix(/8) = %v", got)
	}
}

func TestPrefixTrieFamilyMismatch(t *testing.T) {
	tr := NewPrefixTrie[string](false)
	p6, err := netdata.ParsePrefix6("2001:db8::/32")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Insert(p6, "x") {
		t.Error("v4 trie accepted a v6 prefix")
	}
	ip6, _ := netdata.ParseIP6("2001:db8::1")
	tr.Insert(mustPfx4(t, "0.0.0.0/0"), "default")
	if got := collectContaining(tr, ip6); len(got) != 0 {
		t.Errorf("v4 trie matched a v6 address: %v", got)
	}
}

func TestPrefixTrieEarlyStop(t *testing.T) {
	tr := NewPrefixTrie[string](false)
	tr.Insert(mustPfx4(t, "0.0.0.0/0"), "a")
	tr.Insert(mustPfx4(t, "10.0.0.0/8"), "b")
	n := 0
	tr.Containing(mustIP4(t, "10.1.1.1"), func(string) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d payloads, want 1", n)
	}
}

// TestPrefixTrieMatchesBruteForce is the core correctness property: for
// random prefix sets and random query addresses, trie results equal a
// linear scan using Prefix.ContainsIP.
func TestPrefixTrieMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := NewPrefixTrie[int](false)
		var prefixes []netdata.Prefix
		for i := 0; i < 60; i++ {
			addr := rng.Uint32()
			ip4 := byteIP(addr)
			p, err := netdata.NewPrefix(ip4, rng.Intn(33))
			if err != nil {
				t.Fatal(err)
			}
			prefixes = append(prefixes, p)
			tr.Insert(p, i)
		}
		for q := 0; q < 40; q++ {
			probe := byteIP(rng.Uint32())
			var got []int
			tr.Containing(probe, func(i int) bool { got = append(got, i); return true })
			var want []int
			for i, p := range prefixes {
				if p.ContainsIP(probe) {
					want = append(want, i)
				}
			}
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: got %v want %v", trial, got, want)
				}
			}
		}
	}
}

func byteIP(addr uint32) netdata.IP {
	ip, _ := netdata.ParseIP4("0.0.0.0")
	_ = ip
	// Build via string to reuse the validated constructor.
	s := []byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}
	out, _ := netdata.ParseIP4(ipString(s))
	return out
}

func ipString(b []byte) string {
	var sb strings.Builder
	for i, x := range b {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(itoa(int(x)))
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestStringTriePrefixesOf(t *testing.T) {
	tr := NewStringTrie[string]()
	for _, s := range []string{"/etc", "/etc/bgp", "/etc/bgp/policy.conf", "/var"} {
		tr.Insert(s, s)
	}
	var got []string
	tr.PrefixesOf("/etc/bgp/policy.conf", false, func(p string) bool {
		got = append(got, p)
		return true
	})
	want := []string{"/etc", "/etc/bgp", "/etc/bgp/policy.conf"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("PrefixesOf = %v, want %v", got, want)
	}
	got = nil
	tr.PrefixesOf("/etc/bgp/policy.conf", true, func(p string) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 2 {
		t.Errorf("proper PrefixesOf = %v, want 2 entries", got)
	}
}

func TestStringTrieExtensionsOf(t *testing.T) {
	tr := NewStringTrie[string]()
	for _, s := range []string{"Neighbor-10", "Neighbor-11", "Neighbor-110", "Peer-10"} {
		tr.Insert(s, s)
	}
	var got []string
	tr.ExtensionsOf("Neighbor-11", false, func(p string) bool {
		got = append(got, p)
		return true
	})
	want := []string{"Neighbor-11", "Neighbor-110"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ExtensionsOf = %v, want %v", got, want)
	}
	got = nil
	tr.ExtensionsOf("Neighbor-11", true, func(p string) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 1 || got[0] != "Neighbor-110" {
		t.Errorf("proper ExtensionsOf = %v", got)
	}
}

func TestStringTrieEmpty(t *testing.T) {
	tr := NewStringTrie[int]()
	tr.Insert("", 1)
	var got []int
	tr.PrefixesOf("anything", false, func(i int) bool { got = append(got, i); return true })
	if len(got) != 1 {
		t.Errorf("empty string should prefix everything: %v", got)
	}
}

func TestStringTrieQuickAffix(t *testing.T) {
	// Property: PrefixesOf(q) returns exactly the inserted strings s with
	// strings.HasPrefix(q, s).
	type corpus struct {
		Strs  []string
		Query string
	}
	f := func(c corpus) bool {
		tr := NewStringTrie[string]()
		for _, s := range c.Strs {
			tr.Insert(s, s)
		}
		var got []string
		tr.PrefixesOf(c.Query, false, func(p string) bool { got = append(got, p); return true })
		var want []string
		for _, s := range c.Strs {
			if strings.HasPrefix(c.Query, s) {
				want = append(want, s)
			}
		}
		sort.Strings(got)
		sort.Strings(want)
		return strings.Join(got, "\x00") == strings.Join(want, "\x00")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	if Reverse("abc") != "cba" || Reverse("") != "" || Reverse("x") != "x" {
		t.Error("Reverse broken")
	}
	// Endswith via reversed trie: "10251" ends with "251".
	tr := NewStringTrie[string]()
	tr.Insert(Reverse("251"), "251")
	var got []string
	tr.PrefixesOf(Reverse("10251"), false, func(p string) bool { got = append(got, p); return true })
	if len(got) != 1 || got[0] != "251" {
		t.Errorf("endswith via reverse = %v", got)
	}
}

// BenchmarkPrefixTrieVsLinear demonstrates the asymptotic win behind
// §3.5: containment lookups against N prefixes cost O(bits) in the trie
// vs O(N) for a linear scan.
func BenchmarkPrefixTrieVsLinear(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	tr := NewPrefixTrie[int](false)
	var prefixes []netdata.Prefix
	for i := 0; i < n; i++ {
		ip, _ := netdata.ParseIP4(ipString([]byte{
			byte(10), byte(rng.Intn(256)), byte(rng.Intn(256)), 0,
		}))
		p, _ := netdata.NewPrefix(ip, 8+rng.Intn(25))
		prefixes = append(prefixes, p)
		tr.Insert(p, i)
	}
	probe, _ := netdata.ParseIP4("10.123.45.67")

	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			tr.Containing(probe, func(int) bool { count++; return true })
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			for _, p := range prefixes {
				if p.ContainsIP(probe) {
					count++
				}
			}
		}
	})
}

func BenchmarkStringTrieExtensions(b *testing.B) {
	tr := NewStringTrie[int]()
	for i := 0; i < 4096; i++ {
		tr.Insert(itoa(1000000+i*7), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.ExtensionsOf("100", true, func(int) bool { n++; return n < 64 })
	}
}
