// Package trie provides the relation-finding search structures from
// Concord §3.5: a binary prefix trie for IP-containment queries and a
// byte-wise string trie for affix (startswith / endswith) queries. Both
// reduce relational-contract candidate generation from quadratic
// enumeration to per-value logarithmic lookups.
package trie

import "concord/internal/netdata"

// prefixNode is a node of the binary prefix trie. Payloads attached to a
// node correspond to inserted prefixes that end exactly at that node.
type prefixNode[T any] struct {
	children [2]*prefixNode[T]
	payloads []T
	terminal bool
}

// PrefixTrie indexes IP prefixes of a single family and answers
// "which inserted prefixes contain this address / prefix?" in time
// proportional to the query's bit length. The type parameter T is the
// payload associated with each inserted prefix (for Concord, the
// (pattern, parameter, transformation) source of the value).
type PrefixTrie[T any] struct {
	root *prefixNode[T]
	v6   bool
	size int
}

// NewPrefixTrie creates an empty trie for IPv4 (v6=false) or IPv6
// (v6=true) prefixes.
func NewPrefixTrie[T any](v6 bool) *PrefixTrie[T] {
	return &PrefixTrie[T]{root: &prefixNode[T]{}, v6: v6}
}

// Len reports the number of inserted payloads.
func (t *PrefixTrie[T]) Len() int { return t.size }

// Insert adds a prefix with an associated payload. Prefixes of the wrong
// family are ignored and reported as false.
func (t *PrefixTrie[T]) Insert(p netdata.Prefix, payload T) bool {
	if p.Addr().Is6() != t.v6 {
		return false
	}
	n := t.root
	addr := p.Addr()
	for i := 0; i < p.Len(); i++ {
		b := addr.Bit(i)
		if n.children[b] == nil {
			n.children[b] = &prefixNode[T]{}
		}
		n = n.children[b]
	}
	n.terminal = true
	n.payloads = append(n.payloads, payload)
	t.size++
	return true
}

// Containing visits the payload of every inserted prefix that contains
// the given address, most-general first. It stops early if visit returns
// false. Addresses of the wrong family match nothing.
func (t *PrefixTrie[T]) Containing(ip netdata.IP, visit func(payload T) bool) {
	if ip.Is6() != t.v6 {
		return
	}
	bits := 32
	if t.v6 {
		bits = 128
	}
	n := t.root
	for i := 0; ; i++ {
		if n.terminal {
			for _, p := range n.payloads {
				if !visit(p) {
					return
				}
			}
		}
		if i >= bits {
			return
		}
		n = n.children[ip.Bit(i)]
		if n == nil {
			return
		}
	}
}

// ContainingPrefix visits the payload of every inserted prefix that
// contains (subsumes) the query prefix q: inserted prefixes on q's bit
// path whose length is at most q's length.
func (t *PrefixTrie[T]) ContainingPrefix(q netdata.Prefix, visit func(payload T) bool) {
	if q.Addr().Is6() != t.v6 {
		return
	}
	n := t.root
	addr := q.Addr()
	for i := 0; ; i++ {
		if n.terminal {
			for _, p := range n.payloads {
				if !visit(p) {
					return
				}
			}
		}
		if i >= q.Len() {
			return
		}
		n = n.children[addr.Bit(i)]
		if n == nil {
			return
		}
	}
}
