package format

import (
	"strings"
	"testing"

	"concord/internal/lexer"
)

func yamlPatterns(t *testing.T, text string) []string {
	t.Helper()
	lx := lexer.MustNew()
	cfg, ok := processYAML("y", []byte(text), &lexRun{lx: lx}, DefaultLimits(), nil)
	if !ok {
		t.Fatalf("processYAML bailed out on:\n%s", text)
	}
	var out []string
	for _, l := range cfg.Lines {
		out = append(out, l.Pattern)
	}
	return out
}

func TestYAMLNestedMappings(t *testing.T) {
	pats := yamlPatterns(t, `
network:
  mgmt:
    gateway: 10.0.0.254
    mtu: 9000
  core:
    gateway: 10.0.1.254
`)
	joined := strings.Join(pats, "\n")
	for _, want := range []string{
		"/network:/mgmt:/gateway: [ip4]",
		"/network:/mgmt:/mtu: [num]",
		"/network:/core:/gateway: [ip4]",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestYAMLSequences(t *testing.T) {
	pats := yamlPatterns(t, `
vlans:
  - 100
  - 200
servers:
  - name: ns1
    addr: 10.0.0.53
  - name: ns2
    addr: 10.0.1.53
`)
	joined := strings.Join(pats, "\n")
	if strings.Count(joined, "/vlans:/- [num]") != 2 {
		t.Errorf("sequence scalars wrong:\n%s", joined)
	}
	// Inline "- key: value" items become key-scoped lines; the follow-up
	// mapping lines nest under the item.
	if strings.Count(joined, "name: ns[num]") != 2 {
		t.Errorf("inline map items wrong:\n%s", joined)
	}
	if strings.Count(joined, "addr: [ip4]") != 2 {
		t.Errorf("nested item fields wrong:\n%s", joined)
	}
}

func TestYAMLQuotedScalarsAndComments(t *testing.T) {
	pats := yamlPatterns(t, `
# top comment
host: "10.1.2.3"
label: 'edge'
`)
	joined := strings.Join(pats, "\n")
	if !strings.Contains(joined, "/host: [ip4]") {
		t.Errorf("quoted scalar not unwrapped:\n%s", joined)
	}
	if strings.Contains(joined, "#") {
		t.Errorf("comment leaked:\n%s", joined)
	}
}

func TestYAMLPlainScalarWithColonIsNotAKey(t *testing.T) {
	// IPv6-ish scalars contain colons without a following space.
	pats := yamlPatterns(t, "addr: 2001:db8::1\n")
	if len(pats) != 1 || !strings.Contains(pats[0], "/addr: [ip6]") {
		t.Errorf("patterns = %v", pats)
	}
}

func TestYAMLUnsupportedFallsBack(t *testing.T) {
	lx := lexer.MustNew()
	for _, text := range []string{
		"anchor: &a value\n",
		"ref: *a\n",
		"flow: {a: 1}\n",
		"block: |\n  text\n",
	} {
		if _, ok := processYAML("y", []byte(text), &lexRun{lx: lx}, DefaultLimits(), nil); ok {
			t.Errorf("unsupported construct accepted: %q", text)
		}
	}
	// Process falls back gracefully to indent embedding.
	cfg := Process("y", []byte("top:\n  anchor: &a v\n  other: 1\n"), lx, Options{Embed: true})
	if len(cfg.Lines) == 0 {
		t.Error("fallback produced no lines")
	}
}

func TestYAMLDocumentMarkers(t *testing.T) {
	pats := yamlPatterns(t, "---\nkey: 1\n...\n")
	if len(pats) != 1 {
		t.Errorf("patterns = %v", pats)
	}
}

func TestYAMLThroughProcessEndToEnd(t *testing.T) {
	lx := lexer.MustNew()
	text := "nfInfos:\n  vrfs:\n    - vrfName: NF-VRF-1\n      vlanId: 1101\n    - vrfName: NF-VRF-2\n      vlanId: 1108\n"
	if Detect([]byte(text)) != YAML {
		t.Fatalf("not detected as YAML")
	}
	cfg := Process("meta.yaml", []byte(text), lx, Options{Embed: true})
	joined := ""
	for _, l := range cfg.Lines {
		joined += l.Pattern + "\n"
	}
	if strings.Count(joined, "vlanId: [num]") != 2 {
		t.Errorf("vlanIds not extracted:\n%s", joined)
	}
	// Values parse correctly.
	found := false
	for _, l := range cfg.Lines {
		if strings.Contains(l.Pattern, "vlanId") && len(l.Params) == 1 && l.Params[0].Value.Key() == "num:1101" {
			found = true
		}
	}
	if !found {
		t.Error("vlanId value 1101 not captured")
	}
}
