package format

import (
	"strings"
	"testing"
	"testing/quick"

	"concord/internal/diag"
	"concord/internal/lexer"
)

const aristaExample = `hostname DEV1
!
interface Loopback0
   ip address 10.14.14.34
!
interface Port-Channel11
   evpn ether-segment
      route-target import 00:00:0c:d3:00:0b
!
ip prefix-list loopback
   seq 10 permit 10.14.14.34/32
   seq 20 permit 0.0.0.0/0
!
router bgp 65015
   maximum-paths 64 ecmp 64
   vlan 251
      rd 10.14.14.117:10251
`

func TestDetect(t *testing.T) {
	cases := []struct {
		text string
		want Category
	}{
		{`{"a": 1}`, JSON},
		{`[1, 2, 3]`, JSON},
		{"{not json", Flat},
		{aristaExample, Indent},
		{"set system host-name r1\nset system services ssh\n", Flat},
		{"top:\n  child: 1\n  other: 2\n", YAML},
		{"", Flat},
		{"   \n\t\n", Flat},
	}
	for _, c := range cases {
		if got := Detect([]byte(c.text)); got != c.want {
			t.Errorf("Detect(%.20q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestIndentEmbedding(t *testing.T) {
	lx := lexer.MustNew()
	cfg := Process("dev1", []byte(aristaExample), lx, Options{Embed: true})
	if cfg.SourceLines != 17 {
		t.Errorf("SourceLines = %d, want 17", cfg.SourceLines)
	}
	byRaw := map[string]lexer.Line{}
	for _, l := range cfg.Lines {
		byRaw[l.Raw] = l
	}
	// Leaf under one parent.
	ip := byRaw["ip address 10.14.14.34"]
	if ip.Pattern != "/interface Loopback[num]/ip address [ip4]" {
		t.Errorf("ip pattern = %q", ip.Pattern)
	}
	if ip.Display != "/interface Loopback[num]/ip address [a:ip4]" {
		t.Errorf("ip display = %q", ip.Display)
	}
	// Two levels of nesting (Figure 3).
	rt := byRaw["route-target import 00:00:0c:d3:00:0b"]
	want := "/interface Port-Channel[num]/evpn ether-segment/route-target import [mac]"
	if rt.Pattern != want {
		t.Errorf("rt pattern = %q, want %q", rt.Pattern, want)
	}
	// Context binds no parameters: only the leaf's MAC is captured.
	if len(rt.Params) != 1 || rt.Params[0].Type != "mac" {
		t.Errorf("rt params = %+v", rt.Params)
	}
	// Separator lines reset context.
	bang := byRaw["!"]
	if bang.Pattern != "/!" {
		t.Errorf("bang pattern = %q", bang.Pattern)
	}
	// rd nested under router bgp / vlan.
	rd := byRaw["rd 10.14.14.117:10251"]
	if rd.Pattern != "/router bgp [num]/vlan [num]/rd [ip4]:[num]" {
		t.Errorf("rd pattern = %q", rd.Pattern)
	}
	if len(rd.Params) != 2 {
		t.Errorf("rd params = %+v", rd.Params)
	}
}

func TestIndentSiblingPops(t *testing.T) {
	lx := lexer.MustNew()
	text := "a\n  b\n  c\nd\n"
	cfg := Process("f", []byte(text), lx, Options{Embed: true})
	pats := make([]string, len(cfg.Lines))
	for i, l := range cfg.Lines {
		pats[i] = l.Pattern
	}
	want := []string{"/a", "/a/b", "/a/c", "/d"}
	if strings.Join(pats, ",") != strings.Join(want, ",") {
		t.Errorf("patterns = %v, want %v", pats, want)
	}
}

func TestNoEmbedding(t *testing.T) {
	lx := lexer.MustNew()
	cfg := Process("dev1", []byte(aristaExample), lx, Options{Embed: false})
	for _, l := range cfg.Lines {
		if strings.Count(l.Pattern, "/") > 1 && strings.Contains(l.Pattern[1:], "/interface") {
			t.Errorf("embedding leaked into %q", l.Pattern)
		}
		if !strings.HasPrefix(l.Pattern, "/") {
			t.Errorf("flat patterns still carry the leading slash: %q", l.Pattern)
		}
	}
}

func TestLineNumbersPreserved(t *testing.T) {
	lx := lexer.MustNew()
	cfg := Process("dev1", []byte("a\n\nb\n   c\n"), lx, Options{Embed: true})
	if len(cfg.Lines) != 3 {
		t.Fatalf("lines = %d", len(cfg.Lines))
	}
	if cfg.Lines[0].Num != 1 || cfg.Lines[1].Num != 3 || cfg.Lines[2].Num != 4 {
		t.Errorf("line numbers = %d,%d,%d", cfg.Lines[0].Num, cfg.Lines[1].Num, cfg.Lines[2].Num)
	}
}

func TestTabsAsIndent(t *testing.T) {
	lx := lexer.MustNew()
	cfg := Process("f", []byte("a\n\tb\n"), lx, Options{Embed: true})
	if cfg.Lines[1].Pattern != "/a/b" {
		t.Errorf("tab indent: %q", cfg.Lines[1].Pattern)
	}
}

func TestProcessJSON(t *testing.T) {
	lx := lexer.MustNew()
	text := `{
  "nfInfos": {
    "vrfName": {
      "vlanId": 251,
      "enabled": true
    }
  },
  "servers": ["10.0.0.1", "10.0.0.2"]
}`
	cfg := Process("meta.json", []byte(text), lx, Options{Embed: true})
	var pats []string
	for _, l := range cfg.Lines {
		pats = append(pats, l.Pattern)
	}
	joined := strings.Join(pats, "\n")
	for _, want := range []string{
		"/nfInfos/vrfName/vlanId [num]",
		"/nfInfos/vrfName/enabled [bool]",
		"/servers [ip4]",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing pattern %q in:\n%s", want, joined)
		}
	}
	// Array elements share one pattern (indices are not path segments).
	if strings.Count(joined, "/servers [ip4]") != 2 {
		t.Errorf("array elements should share a pattern:\n%s", joined)
	}
	// Values are captured.
	found := false
	for _, l := range cfg.Lines {
		if l.Pattern == "/nfInfos/vrfName/vlanId [num]" {
			found = true
			if len(l.Params) != 1 || l.Params[0].Value.Key() != "num:251" {
				t.Errorf("vlanId params = %+v", l.Params)
			}
		}
	}
	if !found {
		t.Error("vlanId line missing")
	}
}

func TestProcessJSONLineNumbers(t *testing.T) {
	lx := lexer.MustNew()
	text := "{\n  \"a\": 1,\n  \"b\": 2\n}"
	cfg := Process("m.json", []byte(text), lx, Options{Embed: true})
	if len(cfg.Lines) != 2 {
		t.Fatalf("lines = %d", len(cfg.Lines))
	}
	if cfg.Lines[0].Num != 2 || cfg.Lines[1].Num != 3 {
		t.Errorf("line numbers = %d, %d", cfg.Lines[0].Num, cfg.Lines[1].Num)
	}
}

func TestProcessInvalidJSONFallsBack(t *testing.T) {
	lx := lexer.MustNew()
	// Detect says JSON only when valid, but exercise the fallback inside
	// Process by handing something that validates but trips the walker.
	cfg := Process("x", []byte("{\"a\": 1}"), lx, Options{Embed: true})
	if len(cfg.Lines) != 1 {
		t.Fatalf("lines = %d", len(cfg.Lines))
	}
}

func TestProcessEmpty(t *testing.T) {
	lx := lexer.MustNew()
	cfg := Process("empty", nil, lx, Options{Embed: true})
	if len(cfg.Lines) != 0 || cfg.SourceLines != 0 {
		t.Errorf("empty file produced %d lines", len(cfg.Lines))
	}
}

func TestProcessBinaryJunk(t *testing.T) {
	lx := lexer.MustNew()
	junk := []byte{0x00, 0xff, 0xfe, '\n', 'a', ' ', '1', '\n'}
	dc := diag.New()
	cfg := Process("junk", junk, lx, Options{Embed: true, Diagnostics: dc})
	if !cfg.Skipped || len(cfg.Lines) != 0 {
		t.Errorf("binary junk should be skipped entirely, got Skipped=%v lines=%d",
			cfg.Skipped, len(cfg.Lines))
	}
	if dc.Count(diag.SevError) != 1 {
		t.Errorf("want one error diagnostic for the skipped file, got %v", dc.All())
	}
}

func TestYAMLProcessing(t *testing.T) {
	lx := lexer.MustNew()
	text := "network:\n  vlans:\n    - 100\n    - 200\n  mtu: 9000\n"
	cfg := Process("y.yaml", []byte(text), lx, Options{Embed: true})
	var pats []string
	for _, l := range cfg.Lines {
		pats = append(pats, l.Pattern)
	}
	joined := strings.Join(pats, "\n")
	if !strings.Contains(joined, "/network:/vlans:/- [num]") {
		t.Errorf("yaml list items not embedded:\n%s", joined)
	}
	if !strings.Contains(joined, "/network:/mtu: [num]") {
		t.Errorf("yaml scalar not embedded:\n%s", joined)
	}
}

// TestEveryNonBlankLineSurvivesProcessing is the embedding invariant:
// indent processing emits exactly one Line per non-blank input line,
// preserving raw text and order.
func TestEveryNonBlankLineSurvivesProcessing(t *testing.T) {
	lx := lexer.MustNew()
	f := func(raw string) bool {
		cfg := processIndent("f", []byte(raw), &lexRun{lx: lx}, true, DefaultLimits(), nil)
		var want []string
		for _, l := range strings.Split(raw, "\n") {
			if strings.TrimSpace(strings.TrimRight(l, " \t\r")) != "" {
				want = append(want, strings.TrimSpace(strings.TrimRight(l, " \t\r")))
			}
		}
		if len(cfg.Lines) != len(want) || cfg.SourceLines != len(want) {
			return false
		}
		for i := range want {
			if cfg.Lines[i].Raw != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEmbeddingNestingDepthMatchesIndentation: a line's pattern has one
// context segment per open parent block.
func TestEmbeddingNestingDepthMatchesIndentation(t *testing.T) {
	lx := lexer.MustNew()
	cfg := Process("f", []byte("a\n b\n  c\n   d\ne\n"), lx, Options{Embed: true})
	wantDepth := []int{1, 2, 3, 4, 1}
	for i, l := range cfg.Lines {
		if got := strings.Count(l.Pattern, "/"); got != wantDepth[i] {
			t.Errorf("line %q: depth %d, want %d", l.Raw, got, wantDepth[i])
		}
	}
}
