// Package format implements Concord's configuration format inference and
// context embedding (§3.1). Each input file is categorized as JSON,
// YAML, indentation-based, or flat text; hierarchical formats are then
// flattened into a sequence of lines carrying their parent path, so that
// a line such as "ip address 10.14.14.34" becomes
// "/interface Loopback[num]/ip address 10.14.14.34" and can be
// distinguished from the same command in other contexts.
//
// Context segments are the *untyped* patterns of the parent lines:
// parents never bind parameter values (paper §3.2), because any real
// relationship involving a parent is captured directly on the parent's
// own line.
package format

import (
	"encoding/json"
	"strings"

	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// Category is an inferred configuration data format.
type Category string

// The recognized format categories.
const (
	JSON   Category = "json"
	YAML   Category = "yaml"
	Indent Category = "indent"
	Flat   Category = "flat"
)

// Detect infers the data format category of a configuration file. The
// heuristics mirror the paper's observation that despite thousands of
// configuration dialects, the number of ways to structure hierarchy is
// small: valid JSON documents, YAML-style "key:" documents, files that
// indent blocks, and everything else (flat).
func Detect(text []byte) Category {
	trimmed := strings.TrimSpace(string(text))
	if trimmed == "" {
		return Flat
	}
	if trimmed[0] == '{' || trimmed[0] == '[' {
		if json.Valid([]byte(trimmed)) {
			return JSON
		}
	}
	lines := strings.Split(trimmed, "\n")
	yamlish, indented, total := 0, 0, 0
	for _, l := range lines {
		t := strings.TrimRight(l, " \t\r")
		if strings.TrimSpace(t) == "" {
			continue
		}
		total++
		if len(t) > 0 && (t[0] == ' ' || t[0] == '\t') {
			indented++
		}
		s := strings.TrimSpace(t)
		if isYAMLish(s) {
			yamlish++
		}
	}
	if total == 0 {
		return Flat
	}
	if yamlish*2 >= total && indented > 0 {
		return YAML
	}
	if indented > 0 {
		return Indent
	}
	return Flat
}

// isYAMLish reports whether a trimmed line looks like YAML structure: a
// document marker, a list item, a bare "key:" header, or a single-word
// "key: value" mapping.
func isYAMLish(s string) bool {
	if s == "---" || strings.HasPrefix(s, "- ") || strings.HasSuffix(s, ":") {
		return true
	}
	key, _, ok := strings.Cut(s, ": ")
	if !ok || key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if !(b == '_' || b == '-' || b == '.' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')) {
			return false
		}
	}
	return true
}

// Options controls processing.
type Options struct {
	// Embed enables context embedding for hierarchical formats. When
	// false every format is treated as flat, which is the "Baseline"
	// configuration of Figure 7.
	Embed bool
	// Telemetry, when non-nil, receives per-format detection counters
	// (format.detect.<category>) so corpus composition shows up in the
	// engine's metrics report.
	Telemetry *telemetry.Recorder
}

// Process turns raw file text into a lexed configuration. It detects the
// format, performs context embedding when enabled, and lexes every line.
func Process(name string, text []byte, lx *lexer.Lexer, opts Options) lexer.Config {
	cat := Detect(text)
	opts.Telemetry.Add("format.detect."+string(cat), 1)
	if !opts.Embed {
		cat = Flat
	}
	switch cat {
	case JSON:
		if cfg, ok := processJSON(name, text, lx); ok {
			return cfg
		}
		return processIndent(name, text, lx, false)
	case YAML:
		if cfg, ok := processYAML(name, text, lx); ok {
			return cfg
		}
		return processIndent(name, text, lx, true)
	case Indent:
		return processIndent(name, text, lx, true)
	default:
		return processIndent(name, text, lx, false)
	}
}

// stackEntry is a pending parent block during indent embedding.
type stackEntry struct {
	indent  int
	context string // untyped pattern of the parent line
}

// processIndent handles indentation-based and flat formats. With
// embed=false the parent stack is never populated, producing flat
// patterns prefixed with "/".
func processIndent(name string, text []byte, lx *lexer.Lexer, embed bool) lexer.Config {
	cfg := lexer.Config{Name: name}
	var stack []stackEntry
	lines := strings.Split(string(text), "\n")
	for i, raw := range lines {
		trimmedRight := strings.TrimRight(raw, " \t\r")
		content := strings.TrimSpace(trimmedRight)
		if content == "" {
			continue
		}
		cfg.SourceLines++
		indent := indentWidth(trimmedRight)
		if embed {
			for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
				stack = stack[:len(stack)-1]
			}
		}
		leaf := lx.Lex(content)
		var prefix strings.Builder
		for _, e := range stack {
			prefix.WriteByte('/')
			prefix.WriteString(e.context)
		}
		prefix.WriteByte('/')
		line := lexer.Line{
			File:    name,
			Num:     i + 1,
			Raw:     content,
			Text:    prefix.String() + content,
			Pattern: prefix.String() + leaf.Untyped,
			Display: prefix.String() + leaf.Display,
			Params:  leaf.Params,
		}
		cfg.Lines = append(cfg.Lines, line)
		if embed {
			stack = append(stack, stackEntry{indent: indent, context: leaf.Untyped})
		}
	}
	return cfg
}

// indentWidth computes the leading-whitespace width of a line with tabs
// expanded to four columns.
func indentWidth(s string) int {
	w := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ':
			w++
		case '\t':
			w += 4
		default:
			return w
		}
	}
	return w
}

// processJSON flattens a JSON document into one line per scalar leaf,
// with the object-key path as context. Array indices are deliberately
// omitted from paths so repeated elements share a pattern. Line numbers
// are recovered from decoder byte offsets.
func processJSON(name string, text []byte, lx *lexer.Lexer) (lexer.Config, bool) {
	dec := json.NewDecoder(strings.NewReader(string(text)))
	dec.UseNumber()

	// Precompute byte offset -> line number.
	lineAt := func(off int64) int {
		n := 1
		for i := int64(0); i < off && i < int64(len(text)); i++ {
			if text[i] == '\n' {
				n++
			}
		}
		return n
	}

	cfg := lexer.Config{Name: name}
	var path []string
	var walk func() bool
	emit := func(valueText string, off int64) {
		content := "/" + strings.Join(path, "/")
		if len(path) > 0 {
			content += " "
		}
		content += valueText
		leaf := lx.Lex(valueText)
		prefix := "/" + strings.Join(path, "/")
		if len(path) > 0 {
			prefix += " "
		}
		cfg.SourceLines++
		cfg.Lines = append(cfg.Lines, lexer.Line{
			File:    name,
			Num:     lineAt(off),
			Raw:     content,
			Text:    content,
			Pattern: prefix + leaf.Untyped,
			Display: prefix + leaf.Display,
			Params:  leaf.Params,
		})
	}
	walk = func() bool {
		tok, err := dec.Token()
		if err != nil {
			return false
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				for dec.More() {
					keyTok, err := dec.Token()
					if err != nil {
						return false
					}
					key, _ := keyTok.(string)
					path = append(path, key)
					if !walk() {
						return false
					}
					path = path[:len(path)-1]
				}
				_, err := dec.Token() // closing '}'
				return err == nil
			case '[':
				for dec.More() {
					if !walk() {
						return false
					}
				}
				_, err := dec.Token() // closing ']'
				return err == nil
			}
			return false
		case string:
			emit(t, dec.InputOffset())
			return true
		case json.Number:
			emit(t.String(), dec.InputOffset())
			return true
		case bool:
			if t {
				emit("true", dec.InputOffset())
			} else {
				emit("false", dec.InputOffset())
			}
			return true
		case nil:
			emit("null", dec.InputOffset())
			return true
		}
		return false
	}
	if !walk() {
		return lexer.Config{}, false
	}
	return cfg, true
}
