// Package format implements Concord's configuration format inference and
// context embedding (§3.1). Each input file is categorized as JSON,
// YAML, indentation-based, or flat text; hierarchical formats are then
// flattened into a sequence of lines carrying their parent path, so that
// a line such as "ip address 10.14.14.34" becomes
// "/interface Loopback[num]/ip address 10.14.14.34" and can be
// distinguished from the same command in other contexts.
//
// Context segments are the *untyped* patterns of the parent lines:
// parents never bind parameter values (paper §3.2), because any real
// relationship involving a parent is captured directly on the parent's
// own line.
package format

import (
	"encoding/json"
	"sort"
	"strings"

	"concord/internal/diag"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/telemetry"
)

// Category is an inferred configuration data format.
type Category string

// The recognized format categories.
const (
	JSON   Category = "json"
	YAML   Category = "yaml"
	Indent Category = "indent"
	Flat   Category = "flat"
)

// Detect infers the data format category of a configuration file. The
// heuristics mirror the paper's observation that despite thousands of
// configuration dialects, the number of ways to structure hierarchy is
// small: valid JSON documents, YAML-style "key:" documents, files that
// indent blocks, and everything else (flat).
func Detect(text []byte) Category {
	trimmed := strings.TrimSpace(string(text))
	if trimmed == "" {
		return Flat
	}
	if trimmed[0] == '{' || trimmed[0] == '[' {
		if json.Valid([]byte(trimmed)) {
			return JSON
		}
	}
	lines := strings.Split(trimmed, "\n")
	yamlish, indented, total := 0, 0, 0
	for _, l := range lines {
		t := strings.TrimRight(l, " \t\r")
		if strings.TrimSpace(t) == "" {
			continue
		}
		total++
		if len(t) > 0 && (t[0] == ' ' || t[0] == '\t') {
			indented++
		}
		s := strings.TrimSpace(t)
		if isYAMLish(s) {
			yamlish++
		}
	}
	if total == 0 {
		return Flat
	}
	if yamlish*2 >= total && indented > 0 {
		return YAML
	}
	if indented > 0 {
		return Indent
	}
	return Flat
}

// isYAMLish reports whether a trimmed line looks like YAML structure: a
// document marker, a list item, a bare "key:" header, or a single-word
// "key: value" mapping.
func isYAMLish(s string) bool {
	if s == "---" || strings.HasPrefix(s, "- ") || strings.HasSuffix(s, ":") {
		return true
	}
	key, _, ok := strings.Cut(s, ": ")
	if !ok || key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if !(b == '_' || b == '-' || b == '.' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')) {
			return false
		}
	}
	return true
}

// Options controls processing.
type Options struct {
	// Embed enables context embedding for hierarchical formats. When
	// false every format is treated as flat, which is the "Baseline"
	// configuration of Figure 7.
	Embed bool
	// Limits bounds input processing (file size, line length, nesting
	// depth, lines per config); zero fields select the defaults.
	Limits Limits
	// Telemetry, when non-nil, receives per-format detection counters
	// (format.detect.<category>) so corpus composition shows up in the
	// engine's metrics report.
	Telemetry *telemetry.Recorder
	// Diagnostics, when non-nil, receives input-guard diagnostics:
	// skipped binary or oversized files, truncated lines, capped
	// nesting, exhausted line budgets.
	Diagnostics *diag.Collector
	// Cache, when non-nil, memoizes lexing across repeated lines. The
	// engine shares one cache across all files of a run; entries are
	// only valid for the lexer they were produced with.
	Cache *lexer.Cache
	// Interns, when non-nil, assigns dense PatternID values to emitted
	// lines and is recorded on the returned Config for downstream
	// consumers (mining, contract compilation).
	Interns *intern.Table
	// Baseline selects the pre-optimization learn path: per-line
	// LexLinear with no cache and no interning. Kept for differential
	// testing and benchmarking; output is byte-identical to the fast
	// path (minus PatternID annotations).
	Baseline bool
}

// lexRun bundles the per-file lexing state: strategy selection, the
// shared memoization cache and intern table, and the lexed-line count
// (flushed to telemetry once per file to avoid per-line counter
// traffic).
type lexRun struct {
	lx      *lexer.Lexer
	cache   *lexer.Cache
	interns *intern.Table
	linear  bool
	lines   int64
}

func (r *lexRun) lex(s string) lexer.Lexed {
	r.lines++
	if r.linear {
		return r.lx.LexLinear(s)
	}
	return r.lx.LexCached(r.cache, s)
}

// patternID interns a full pattern key, or reports 0 when interning is
// off (consumers fall back to string keys).
func (r *lexRun) patternID(pattern string) int32 {
	if r.interns == nil {
		return 0
	}
	return r.interns.ID(pattern)
}

// Process turns raw file text into a lexed configuration. It detects the
// format, performs context embedding when enabled, and lexes every line.
// Inputs violating Options.Limits degrade instead of exploding: files
// that are too large or binary return an empty config with Skipped set
// (and an error diagnostic); over-long lines are truncated, over-deep
// nesting capped, and over-budget lines dropped, each with a warning
// diagnostic.
func Process(name string, text []byte, lx *lexer.Lexer, opts Options) lexer.Config {
	lim := opts.Limits.WithDefaults()
	if len(text) > lim.MaxFileSize {
		opts.Diagnostics.Addf(diag.SevError, "process", name, 0,
			"file size %d exceeds limit %d; skipped", len(text), lim.MaxFileSize)
		opts.Telemetry.Add("guard.files_skipped", 1)
		return lexer.Config{Name: name, Skipped: true}
	}
	if looksBinary(text) {
		opts.Diagnostics.Addf(diag.SevError, "process", name, 0,
			"binary or non-UTF-8 content; skipped")
		opts.Telemetry.Add("guard.files_skipped", 1)
		return lexer.Config{Name: name, Skipped: true}
	}
	cat := Detect(text)
	opts.Telemetry.Add("format.detect."+string(cat), 1)
	if !opts.Embed {
		cat = Flat
	}
	r := &lexRun{lx: lx, cache: opts.Cache, interns: opts.Interns, linear: opts.Baseline}
	if r.linear {
		r.cache, r.interns = nil, nil
	}
	var cfg lexer.Config
	switch cat {
	case JSON:
		var ok bool
		if cfg, ok = processJSON(name, text, r, lim, opts.Diagnostics); !ok {
			cfg = processIndent(name, text, r, false, lim, opts.Diagnostics)
		}
	case YAML:
		var ok bool
		if cfg, ok = processYAML(name, text, r, lim, opts.Diagnostics); !ok {
			cfg = processIndent(name, text, r, true, lim, opts.Diagnostics)
		}
	case Indent:
		cfg = processIndent(name, text, r, true, lim, opts.Diagnostics)
	default:
		cfg = processIndent(name, text, r, false, lim, opts.Diagnostics)
	}
	cfg.Interns = r.interns
	opts.Telemetry.Add("lex.lines_lexed", r.lines)
	return cfg
}

// stackEntry is a pending parent block during indent embedding.
type stackEntry struct {
	indent  int
	context string // untyped pattern of the parent line
}

// processIndent handles indentation-based and flat formats. With
// embed=false the parent stack is never populated, producing flat
// patterns prefixed with "/".
func processIndent(name string, text []byte, r *lexRun, embed bool, lim Limits, dc *diag.Collector) lexer.Config {
	g := newGuard(name, lim, dc)
	cfg := lexer.Config{Name: name}
	var stack []stackEntry
	// The joined context prefix is memoized across lines and rebuilt
	// only when the parent stack changes; sibling runs (the common
	// shape of network configs) share one prefix string.
	prefix, prefixDirty := "/", false
	lines := strings.Split(string(text), "\n")
	for i, raw := range lines {
		trimmedRight := strings.TrimRight(raw, " \t\r")
		content := strings.TrimSpace(trimmedRight)
		if content == "" {
			continue
		}
		cfg.SourceLines++
		if g.overBudget(len(cfg.Lines)) {
			continue
		}
		content = g.capLine(content)
		indent := indentWidth(trimmedRight)
		if embed {
			for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
				stack = stack[:len(stack)-1]
				prefixDirty = true
			}
		}
		leaf := r.lex(content)
		if prefixDirty {
			var b strings.Builder
			for _, e := range stack {
				b.WriteByte('/')
				b.WriteString(e.context)
			}
			b.WriteByte('/')
			prefix = b.String()
			prefixDirty = false
		}
		line := lexer.Line{
			File:    name,
			Num:     i + 1,
			Raw:     content,
			Text:    prefix + content,
			Pattern: prefix + leaf.Untyped,
			Display: prefix + leaf.Display,
			Params:  leaf.Params,
		}
		line.PatternID = r.patternID(line.Pattern)
		cfg.Lines = append(cfg.Lines, line)
		if embed && !g.atDepthCap(len(stack)) {
			stack = append(stack, stackEntry{indent: indent, context: leaf.Untyped})
			prefixDirty = true
		}
	}
	g.flush()
	return cfg
}

// indentWidth computes the leading-whitespace width of a line with tabs
// expanded to four columns.
func indentWidth(s string) int {
	w := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ':
			w++
		case '\t':
			w += 4
		default:
			return w
		}
	}
	return w
}

// processJSON flattens a JSON document into one line per scalar leaf,
// with the object-key path as context. Array indices are deliberately
// omitted from paths so repeated elements share a pattern. Line numbers
// are recovered from decoder byte offsets. Documents nested deeper than
// the depth limit keep their deeper keys but stop extending the context
// path, and over-budget leaves are dropped; both degradations are
// summarized as diagnostics.
func processJSON(name string, text []byte, r *lexRun, lim Limits, dc *diag.Collector) (lexer.Config, bool) {
	g := newGuard(name, lim, dc)
	dec := json.NewDecoder(strings.NewReader(string(text)))
	dec.UseNumber()

	// Precompute newline offsets once so offset -> line recovery is a
	// binary search, not a rescan of the file per leaf.
	var newlines []int
	for i, b := range text {
		if b == '\n' {
			newlines = append(newlines, i)
		}
	}
	lineAt := func(off int64) int {
		return sort.SearchInts(newlines, int(off)) + 1
	}

	cfg := lexer.Config{Name: name}
	var path []string
	var walk func() bool
	emit := func(valueText string, off int64) {
		cfg.SourceLines++
		if g.overBudget(len(cfg.Lines)) {
			return
		}
		valueText = g.capLine(valueText)
		content := "/" + strings.Join(path, "/")
		if len(path) > 0 {
			content += " "
		}
		content += valueText
		leaf := r.lex(valueText)
		prefix := "/" + strings.Join(path, "/")
		if len(path) > 0 {
			prefix += " "
		}
		line := lexer.Line{
			File:    name,
			Num:     lineAt(off),
			Raw:     content,
			Text:    content,
			Pattern: prefix + leaf.Untyped,
			Display: prefix + leaf.Display,
			Params:  leaf.Params,
		}
		line.PatternID = r.patternID(line.Pattern)
		cfg.Lines = append(cfg.Lines, line)
	}
	walk = func() bool {
		tok, err := dec.Token()
		if err != nil {
			return false
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				for dec.More() {
					keyTok, err := dec.Token()
					if err != nil {
						return false
					}
					key, _ := keyTok.(string)
					pushed := !g.atDepthCap(len(path))
					if pushed {
						path = append(path, key)
					}
					if !walk() {
						return false
					}
					if pushed {
						path = path[:len(path)-1]
					}
				}
				_, err := dec.Token() // closing '}'
				return err == nil
			case '[':
				for dec.More() {
					if !walk() {
						return false
					}
				}
				_, err := dec.Token() // closing ']'
				return err == nil
			}
			return false
		case string:
			emit(t, dec.InputOffset())
			return true
		case json.Number:
			emit(t.String(), dec.InputOffset())
			return true
		case bool:
			if t {
				emit("true", dec.InputOffset())
			} else {
				emit("false", dec.InputOffset())
			}
			return true
		case nil:
			emit("null", dec.InputOffset())
			return true
		}
		return false
	}
	if !walk() {
		return lexer.Config{}, false
	}
	g.flush()
	return cfg, true
}
