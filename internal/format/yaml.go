package format

import (
	"strings"

	"concord/internal/diag"
	"concord/internal/lexer"
)

// processYAML flattens a YAML-subset document into one line per scalar,
// with the mapping-key path as context — the YAML analogue of the JSON
// flattener. The subset covers what configuration metadata actually
// uses: nested mappings by indentation, block sequences ("- item",
// including inline "- key: value" entries), scalars with optional single
// or double quotes, comments, and document markers. Anchors, aliases,
// flow collections, and multi-line scalars fall back to plain indent
// embedding (the pre-parser is best-effort by design — Concord treats
// everything as text in the end).
func processYAML(name string, text []byte, r *lexRun, lim Limits, dc *diag.Collector) (lexer.Config, bool) {
	type frame struct {
		indent int
		key    string
	}
	g := newGuard(name, lim, dc)
	cfg := lexer.Config{Name: name}
	var stack []frame

	emit := func(num int, path []string, keyPrefix, scalar string) {
		if g.overBudget(len(cfg.Lines)) {
			cfg.SourceLines++
			return
		}
		scalar = g.capLine(scalar)
		content := "/" + strings.Join(path, "/")
		if keyPrefix != "" {
			content += "/" + keyPrefix
		}
		leafText := scalar
		leaf := r.lex(leafText)
		prefix := content
		if leafText != "" {
			prefix += " "
		}
		cfg.SourceLines++
		line := lexer.Line{
			File:    name,
			Num:     num,
			Raw:     strings.TrimSpace(keyPrefix + " " + scalar),
			Text:    prefix + leafText,
			Pattern: prefix + leaf.Untyped,
			Display: prefix + leaf.Display,
			Params:  leaf.Params,
		}
		line.PatternID = r.patternID(line.Pattern)
		cfg.Lines = append(cfg.Lines, line)
	}

	lines := strings.Split(string(text), "\n")
	for i, raw := range lines {
		trimmedRight := strings.TrimRight(raw, " \t\r")
		content := strings.TrimSpace(trimmedRight)
		if content == "" || strings.HasPrefix(content, "#") || content == "---" || content == "..." {
			continue
		}
		// Unsupported constructs bail out to the generic indent embedder.
		if strings.ContainsAny(content, "&*{}") || strings.HasSuffix(content, "|") || strings.HasSuffix(content, ">") {
			return lexer.Config{}, false
		}
		indent := indentWidth(trimmedRight)
		for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
			stack = stack[:len(stack)-1]
		}
		path := make([]string, 0, len(stack))
		for _, f := range stack {
			path = append(path, f.key)
		}

		// Sequence items: "- scalar" or "- key: value".
		if item, ok := strings.CutPrefix(content, "- "); ok {
			item = strings.TrimSpace(item)
			if key, val, isMap := cutYAMLKey(item); isMap {
				if val == "" {
					// "- key:" opens a nested mapping within the item.
					if !g.atDepthCap(len(stack)) {
						stack = append(stack, frame{indent: indent + 2, key: key + ":"})
					}
					continue
				}
				emit(i+1, path, key+":", unquoteYAML(val))
				continue
			}
			emit(i+1, path, "-", unquoteYAML(item))
			continue
		}

		key, val, isMap := cutYAMLKey(content)
		if !isMap {
			// A bare scalar line (uncommon); treat as a value at the
			// current path.
			emit(i+1, path, "", unquoteYAML(content))
			continue
		}
		if val == "" {
			// "key:" opens a nested mapping or sequence.
			if !g.atDepthCap(len(stack)) {
				stack = append(stack, frame{indent: indent, key: key + ":"})
			}
			continue
		}
		emit(i+1, path, key+":", unquoteYAML(val))
	}
	g.flush()
	return cfg, true
}

// cutYAMLKey splits "key: value" (or "key:"), requiring a plausible
// plain-style key.
func cutYAMLKey(s string) (key, value string, ok bool) {
	i := strings.Index(s, ":")
	if i <= 0 {
		return "", "", false
	}
	// "key:value" without a space is not a YAML mapping (it's a plain
	// scalar like an IPv6 address) unless the colon ends the line.
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", false
	}
	key = strings.TrimSpace(s[:i])
	if key == "" || strings.ContainsAny(key, " \t") {
		return "", "", false
	}
	return key, strings.TrimSpace(s[i+1:]), true
}

// unquoteYAML strips one level of single or double quotes.
func unquoteYAML(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
