package format

import (
	"bytes"
	"fmt"
	"unicode/utf8"

	"concord/internal/diag"
)

// Limits bounds input processing so pathological files — multi-megabyte
// single lines, thousand-deep nesting, binary blobs — degrade into
// diagnostics instead of exploding memory or time. The zero value of
// any field selects its default; explicit negative or zero values are
// rejected by Validate (after defaulting, every effective limit is
// positive).
type Limits struct {
	// MaxFileSize is the largest file processed, in bytes; larger files
	// are skipped entirely with an error diagnostic. Default 64 MiB.
	MaxFileSize int
	// MaxLineLen is the longest line lexed, in bytes; longer lines are
	// truncated (at a rune boundary) with a warning diagnostic.
	// Default 64 KiB.
	MaxLineLen int
	// MaxDepth caps the context-embedding nesting depth for indented,
	// YAML, and JSON formats; deeper structure is flattened onto the
	// deepest allowed context with a warning diagnostic. Default 64.
	MaxDepth int
	// MaxLines caps the processed lines (patterns) per configuration;
	// lines beyond the budget are skipped with a warning diagnostic.
	// Default 1,048,576.
	MaxLines int
}

// DefaultLimits returns the default guard limits.
func DefaultLimits() Limits {
	return Limits{
		MaxFileSize: 64 << 20,
		MaxLineLen:  64 << 10,
		MaxDepth:    64,
		MaxLines:    1 << 20,
	}
}

// WithDefaults returns the limits with every zero field replaced by its
// default, so partially-specified limits keep working.
func (l Limits) WithDefaults() Limits {
	def := DefaultLimits()
	if l.MaxFileSize == 0 {
		l.MaxFileSize = def.MaxFileSize
	}
	if l.MaxLineLen == 0 {
		l.MaxLineLen = def.MaxLineLen
	}
	if l.MaxDepth == 0 {
		l.MaxDepth = def.MaxDepth
	}
	if l.MaxLines == 0 {
		l.MaxLines = def.MaxLines
	}
	return l
}

// Validate rejects non-positive limits. Callers that treat zero as "use
// the default" (core.New) apply WithDefaults first, so only explicitly
// nonsensical values reach this error.
func (l Limits) Validate() error {
	check := func(name string, v int) error {
		if v < 1 {
			return fmt.Errorf("format: %s must be positive (got %d)", name, v)
		}
		return nil
	}
	if err := check("MaxFileSize", l.MaxFileSize); err != nil {
		return err
	}
	if err := check("MaxLineLen", l.MaxLineLen); err != nil {
		return err
	}
	if err := check("MaxDepth", l.MaxDepth); err != nil {
		return err
	}
	return check("MaxLines", l.MaxLines)
}

// binarySampleSize bounds the content prefix examined by looksBinary.
const binarySampleSize = 8192

// looksBinary reports whether content is binary data a text pipeline
// should skip: a NUL byte in the leading sample, or a sample that is
// mostly invalid UTF-8.
func looksBinary(text []byte) bool {
	sample := text
	if len(sample) > binarySampleSize {
		sample = sample[:binarySampleSize]
	}
	if bytes.IndexByte(sample, 0) >= 0 {
		return true
	}
	invalid, total := 0, 0
	for i := 0; i < len(sample); {
		r, size := utf8.DecodeRune(sample[i:])
		if r == utf8.RuneError && size == 1 {
			invalid++
		}
		total++
		i += size
	}
	// More than 30% invalid sequences: not a text file. The threshold
	// tolerates legacy single-byte encodings sprinkled through
	// otherwise-ASCII configs.
	return total > 0 && invalid*10 > total*3
}

// guard applies per-line limits during one processing attempt and
// summarizes the degradations as diagnostics. Counters aggregate so a
// 10 MB single-line file yields one diagnostic, not thousands.
type guard struct {
	lim       Limits
	dc        *diag.Collector
	name      string
	truncated int
	capped    int
	skipped   int
}

func newGuard(name string, lim Limits, dc *diag.Collector) *guard {
	return &guard{lim: lim, dc: dc, name: name}
}

// capLine truncates an over-long line at a rune boundary.
func (g *guard) capLine(content string) string {
	if len(content) <= g.lim.MaxLineLen {
		return content
	}
	cut := g.lim.MaxLineLen
	for cut > 0 && !utf8.RuneStart(content[cut]) {
		cut--
	}
	g.truncated++
	return content[:cut]
}

// overBudget reports whether the per-config line budget is exhausted,
// counting the skipped line when it is.
func (g *guard) overBudget(emitted int) bool {
	if emitted < g.lim.MaxLines {
		return false
	}
	g.skipped++
	return true
}

// atDepthCap reports whether the context stack is full, counting the
// line whose context was capped.
func (g *guard) atDepthCap(depth int) bool {
	if depth < g.lim.MaxDepth {
		return false
	}
	g.capped++
	return true
}

// flush emits one summary diagnostic per degradation kind. Call it only
// on a successful processing attempt (abandoned pre-parses stay
// silent).
func (g *guard) flush() {
	if g.truncated > 0 {
		g.dc.Addf(diag.SevWarn, "process", g.name, 0,
			"truncated %d over-long line(s) (limit %d bytes)", g.truncated, g.lim.MaxLineLen)
	}
	if g.capped > 0 {
		g.dc.Addf(diag.SevWarn, "process", g.name, 0,
			"nesting depth capped at %d on %d line(s)", g.lim.MaxDepth, g.capped)
	}
	if g.skipped > 0 {
		g.dc.Addf(diag.SevWarn, "process", g.name, 0,
			"line budget %d exhausted; skipped %d line(s)", g.lim.MaxLines, g.skipped)
	}
}
